package ndsnn

// This file is the benchmark harness entry point: one testing.B benchmark
// per table and figure of the paper, plus the design-choice ablations of
// DESIGN.md §5. Each benchmark regenerates its artifact end to end —
// synthetic dataset, model, training runs for every method, and the
// rendered table/chart on stdout — so `go test -bench=.` reproduces the
// whole evaluation at the scale selected by NDSNN_SCALE (default "bench";
// set NDSNN_FULL=1 for the complete paper grids).
//
// Wall-clock note: one benchmark iteration IS one full experiment, so
// b.N stays at 1 under the default -benchtime. The reported metric of
// interest is not ns/op but the experiment summary printed to stdout and
// the custom accuracy/cost metrics attached via b.ReportMetric.

import (
	"bytes"
	"fmt"
	"os"
	"testing"

	"ndsnn/internal/bench"
	"ndsnn/internal/metrics"
)

func benchOpts() ExperimentOptions {
	return ExperimentOptions{
		Scale: os.Getenv("NDSNN_SCALE"),
		Full:  os.Getenv("NDSNN_FULL") == "1",
	}
}

// runExperimentBench is the shared driver: runs the experiment b.N times
// (in practice once) and emits the rendered artifact to stdout.
func runExperimentBench(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := RunExperiment(id, &buf, benchOpts()); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("\n%s\n", buf.String())
		}
	}
}

// BenchmarkFig1SparsityTrajectories regenerates Fig. 1: the per-epoch
// sparsity of ADMM-style train-prune-retrain, iterative pruning (LTH) and
// NDSNN. The paper's shape: NDSNN trains sparse throughout while the other
// two spend most epochs in the low-sparsity grey region.
func BenchmarkFig1SparsityTrajectories(b *testing.B) {
	runExperimentBench(b, "fig1")
}

// BenchmarkTable1Accuracy regenerates Table I: test accuracy of
// Dense/LTH/SET/RigL/NDSNN across sparsity ratios, architectures and
// datasets. Expected shape: NDSNN leads at 98–99% sparsity with the gap
// widening as sparsity rises.
func BenchmarkTable1Accuracy(b *testing.B) {
	runExperimentBench(b, "table1")
}

// BenchmarkTable2ADMMComparison regenerates Table II: ADMM pruning on
// LeNet-5 vs NDSNN on VGG-16 at 40–75% sparsity, reporting accuracy loss
// against each method's own dense baseline.
func BenchmarkTable2ADMMComparison(b *testing.B) {
	runExperimentBench(b, "table2")
}

// BenchmarkTable3InitialSparsity regenerates Table III: NDSNN accuracy as a
// function of the initial sparsity θi. Expected shape: a shallow curve —
// accuracy varies little across θi.
func BenchmarkTable3InitialSparsity(b *testing.B) {
	runExperimentBench(b, "table3")
}

// BenchmarkFig4SmallTimestep regenerates Fig. 4: NDSNN vs LTH trained at
// T=2 across sparsities on four model/dataset panels.
func BenchmarkFig4SmallTimestep(b *testing.B) {
	runExperimentBench(b, "fig4")
}

// BenchmarkFig5TrainingCost regenerates Fig. 5: normalized training cost
// (spike-rate × density accounting of Sec. IV-C) for Dense/LTH/NDSNN.
// Expected shape: NDSNN ≪ LTH < Dense.
func BenchmarkFig5TrainingCost(b *testing.B) {
	runExperimentBench(b, "fig5")
}

// BenchmarkMemoryFootprint evaluates the Sec. III-D memory model on the
// paper-width architectures (no training; analytic).
func BenchmarkMemoryFootprint(b *testing.B) {
	runExperimentBench(b, "memory")
}

// BenchmarkSynOpsMeasured trains NDSNN models at several sparsities,
// compiles them into the event-driven inference engine, and measures real
// synaptic operations per sample against the dense-MAC bound — the measured
// counterpart of the paper's Sec. IV-C analytic cost model.
func BenchmarkSynOpsMeasured(b *testing.B) {
	runExperimentBench(b, "synops")
}

// BenchmarkAblationGrowCriterion compares gradient vs random regrowth (A1).
func BenchmarkAblationGrowCriterion(b *testing.B) {
	runExperimentBench(b, "ablation-grow")
}

// BenchmarkAblationScheduleShape compares the cubic Eq. 4 ramp against
// linear and step ramps (A2).
func BenchmarkAblationScheduleShape(b *testing.B) {
	runExperimentBench(b, "ablation-shape")
}

// BenchmarkAblationLayerAllocation compares ERK vs uniform layerwise
// sparsity allocation (A3).
func BenchmarkAblationLayerAllocation(b *testing.B) {
	runExperimentBench(b, "ablation-allocation")
}

// BenchmarkAblationSurrogate compares the arctangent surrogate against
// rectangular and sigmoid surrogates (A4).
func BenchmarkAblationSurrogate(b *testing.B) {
	runExperimentBench(b, "ablation-surrogate")
}

// BenchmarkAblationUpdateFrequency sweeps the drop-and-grow period ΔT (A5).
func BenchmarkAblationUpdateFrequency(b *testing.B) {
	runExperimentBench(b, "ablation-deltat")
}

// BenchmarkHeadlineClaim runs the single most important comparison — the
// paper's headline: at extreme sparsity NDSNN preserves accuracy that
// SET/RigL/LTH lose, while training cheaper than LTH — and reports the
// numbers as benchmark metrics. θ=0.95 is the capacity-equivalent of the
// paper's 99% regime at tiny width (see DESIGN.md's scaled-grid note).
func BenchmarkHeadlineClaim(b *testing.B) {
	opts := benchOpts()
	s := bench.ScaleByName(opts.Scale)
	const theta = 0.95
	for i := 0; i < b.N; i++ {
		ds := s.Dataset(bench.CIFAR10, 1007)
		dense, err := bench.Run(s, bench.Spec{Method: bench.MethodDense, Arch: "resnet19", Dataset: bench.CIFAR10, Seed: 7}, ds)
		if err != nil {
			b.Fatal(err)
		}
		nd, err := bench.Run(s, bench.Spec{Method: bench.MethodNDSNN, Arch: "resnet19", Dataset: bench.CIFAR10, Sparsity: theta, Seed: 7}, ds)
		if err != nil {
			b.Fatal(err)
		}
		rigl, err := bench.Run(s, bench.Spec{Method: bench.MethodRigL, Arch: "resnet19", Dataset: bench.CIFAR10, Sparsity: theta, Seed: 7}, ds)
		if err != nil {
			b.Fatal(err)
		}
		lth, err := bench.Run(s, bench.Spec{Method: bench.MethodLTH, Arch: "resnet19", Dataset: bench.CIFAR10, Sparsity: theta, Seed: 7}, ds)
		if err != nil {
			b.Fatal(err)
		}
		ndCost, err := metrics.RelativeTrainingCost(nd.Trajectory, dense.Trajectory)
		if err != nil {
			b.Fatal(err)
		}
		lthCost, err := metrics.RelativeTrainingCost(lth.Trajectory, dense.Trajectory)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(nd.TestAcc*100, "ndsnn-acc-%")
			b.ReportMetric(rigl.TestAcc*100, "rigl-acc-%")
			b.ReportMetric(lth.TestAcc*100, "lth-acc-%")
			b.ReportMetric(ndCost*100, "ndsnn-cost-%dense")
			b.ReportMetric(100*ndCost/lthCost, "ndsnn-cost-%lth")
			fmt.Printf("\nheadline @%.0f%% resnet19/cifar10: ndsnn=%.2f%% rigl=%.2f%% lth=%.2f%% | cost: ndsnn=%.1f%% of dense, %.1f%% of lth\n",
				theta*100, nd.TestAcc*100, rigl.TestAcc*100, lth.TestAcc*100, ndCost*100, 100*ndCost/lthCost)
		}
	}
}
