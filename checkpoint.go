package ndsnn

import (
	"ndsnn/internal/bench"
	"ndsnn/internal/checkpoint"
	"ndsnn/internal/models"
	"ndsnn/internal/snn"
	"ndsnn/internal/sparse"
)

// Typed checkpoint-load failures (branch with errors.Is). SaveCheckpoint
// writes atomically — temp file, fsync, rename — so a crash mid-save leaves
// the previous complete checkpoint in place; these errors classify the
// damage Load found in a file that was corrupted some other way.
var (
	// ErrCheckpointTruncated marks a file shorter than its frame declares —
	// the signature of a kill mid-write.
	ErrCheckpointTruncated = checkpoint.ErrTruncated
	// ErrCheckpointCorrupt marks a checksum or structural mismatch.
	ErrCheckpointCorrupt = checkpoint.ErrCorrupt
	// ErrCheckpointFutureVersion marks a file written by a newer format
	// version than this build understands.
	ErrCheckpointFutureVersion = checkpoint.ErrFutureVersion
)

// SaveCheckpoint persists the trained model (weights, masks, metadata).
func (m *Model) SaveCheckpoint(path string, cfg Config) error {
	cfg = cfg.withDefaults()
	return checkpoint.Save(path, &checkpoint.Checkpoint{
		Arch: cfg.Arch, Dataset: cfg.Dataset, Method: string(cfg.Method),
		Scale: cfg.Scale, Sparsity: cfg.Sparsity,
		TestAccuracy: m.result.TestAccuracy,
		Params:       checkpoint.FromParams(m.net.Params()),
	})
}

// LoadCheckpointModel rebuilds a deployable Model from a checkpoint: the
// network is reconstructed from the stored arch/dataset/scale metadata and
// the stored weights and masks are restored into it. The result supports
// the structural deployment analyses — compiling inference engines (float,
// mixed integer, fully integer), the per-stage dtype table, CSR export and
// platform footprints — which depend only on the restored weights and
// masks.
//
// Caveat: checkpoints store learnable parameters only; BatchNorm running
// statistics are re-initialized, so accuracies measured through a reloaded
// model do not reproduce the recorded TestAccuracy (kept in Result for
// reference). Use the in-process Model returned by TrainModel for accuracy
// work.
func LoadCheckpointModel(path string) (*Model, error) {
	ck, err := checkpoint.Load(path)
	if err != nil {
		return nil, err
	}
	s := bench.ScaleByName(ck.Scale)
	ds := s.Dataset(ck.Dataset, 1000)
	net := models.Build(models.Config{
		Arch: ck.Arch, Classes: ds.Config.Classes,
		InC: ds.Config.C, InH: ds.Config.H, InW: ds.Config.W,
		Timesteps: s.Timesteps, Neuron: snn.DefaultNeuron(),
		Profile: s.Profile, Seed: 1,
	})
	if err := ck.RestoreInto(net.Params()); err != nil {
		return nil, err
	}
	return &Model{
		net:     net,
		result:  &Result{TestAccuracy: ck.TestAccuracy, FinalSparsity: ck.GlobalSparsity()},
		dataset: ds,
	}, nil
}

// CheckpointInfo is the inspection view of a saved model.
type CheckpointInfo struct {
	Arch, Dataset, Method, Scale string
	Sparsity                     float64
	TestAccuracy                 float64
	// GlobalSparsity is recomputed from the stored masks.
	GlobalSparsity float64
	Layers         []LayerSparsity
	// FootprintsMiB maps platform name → deployed CSR footprint.
	FootprintsMiB map[string]float64
	// DenseMiB is the dense FP32 size of the prunable weights.
	DenseMiB float64
}

// InspectCheckpoint loads a checkpoint and summarizes its sparsity and
// deployment footprints without rebuilding the network.
func InspectCheckpoint(path string) (*CheckpointInfo, error) {
	ck, err := checkpoint.Load(path)
	if err != nil {
		return nil, err
	}
	info := &CheckpointInfo{
		Arch: ck.Arch, Dataset: ck.Dataset, Method: ck.Method, Scale: ck.Scale,
		Sparsity: ck.Sparsity, TestAccuracy: ck.TestAccuracy,
		GlobalSparsity: ck.GlobalSparsity(),
		FootprintsMiB:  map[string]float64{},
	}
	var totalBitsPer = map[string]int64{}
	prunableTotal := 0
	for _, cs := range ck.Census() {
		if !cs.Prunable {
			continue
		}
		info.Layers = append(info.Layers, LayerSparsity{
			Name: cs.Name, Shape: cs.Shape, Total: cs.Total, Active: cs.Active,
			Sparsity: 1 - float64(cs.Active)/float64(cs.Total),
		})
		prunableTotal += cs.Total
		rows := cs.Shape[0]
		// CSR accounting from the stored census: NonZero values + column
		// indices, plus rows+1 row pointers.
		for _, p := range sparse.Platforms {
			totalBitsPer[p.Name] += int64(cs.NonZero)*int64(p.WeightBits+sparse.DefaultIndexBits) +
				int64(rows+1)*int64(sparse.DefaultIndexBits)
		}
	}
	for name, bits := range totalBitsPer {
		info.FootprintsMiB[name] = sparse.BitsToMiB(float64(bits))
	}
	info.DenseMiB = sparse.BitsToMiB(sparse.DenseFootprintBits(prunableTotal, sparse.TrainingBits))
	return info, nil
}
