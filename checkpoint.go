package ndsnn

import (
	"ndsnn/internal/checkpoint"
	"ndsnn/internal/sparse"
)

// SaveCheckpoint persists the trained model (weights, masks, metadata).
func (m *Model) SaveCheckpoint(path string, cfg Config) error {
	cfg = cfg.withDefaults()
	return checkpoint.Save(path, &checkpoint.Checkpoint{
		Arch: cfg.Arch, Dataset: cfg.Dataset, Method: string(cfg.Method),
		Scale: cfg.Scale, Sparsity: cfg.Sparsity,
		TestAccuracy: m.result.TestAccuracy,
		Params:       checkpoint.FromParams(m.net.Params()),
	})
}

// CheckpointInfo is the inspection view of a saved model.
type CheckpointInfo struct {
	Arch, Dataset, Method, Scale string
	Sparsity                     float64
	TestAccuracy                 float64
	// GlobalSparsity is recomputed from the stored masks.
	GlobalSparsity float64
	Layers         []LayerSparsity
	// FootprintsMiB maps platform name → deployed CSR footprint.
	FootprintsMiB map[string]float64
	// DenseMiB is the dense FP32 size of the prunable weights.
	DenseMiB float64
}

// InspectCheckpoint loads a checkpoint and summarizes its sparsity and
// deployment footprints without rebuilding the network.
func InspectCheckpoint(path string) (*CheckpointInfo, error) {
	ck, err := checkpoint.Load(path)
	if err != nil {
		return nil, err
	}
	info := &CheckpointInfo{
		Arch: ck.Arch, Dataset: ck.Dataset, Method: ck.Method, Scale: ck.Scale,
		Sparsity: ck.Sparsity, TestAccuracy: ck.TestAccuracy,
		GlobalSparsity: ck.GlobalSparsity(),
		FootprintsMiB:  map[string]float64{},
	}
	var totalBitsPer = map[string]int64{}
	prunableTotal := 0
	for _, cs := range ck.Census() {
		if !cs.Prunable {
			continue
		}
		info.Layers = append(info.Layers, LayerSparsity{
			Name: cs.Name, Shape: cs.Shape, Total: cs.Total, Active: cs.Active,
			Sparsity: 1 - float64(cs.Active)/float64(cs.Total),
		})
		prunableTotal += cs.Total
		rows := cs.Shape[0]
		// CSR accounting from the stored census: NonZero values + column
		// indices, plus rows+1 row pointers.
		for _, p := range sparse.Platforms {
			totalBitsPer[p.Name] += int64(cs.NonZero)*int64(p.WeightBits+sparse.DefaultIndexBits) +
				int64(rows+1)*int64(sparse.DefaultIndexBits)
		}
	}
	for name, bits := range totalBitsPer {
		info.FootprintsMiB[name] = sparse.BitsToMiB(float64(bits))
	}
	info.DenseMiB = sparse.BitsToMiB(sparse.DenseFootprintBits(prunableTotal, sparse.TrainingBits))
	return info, nil
}
