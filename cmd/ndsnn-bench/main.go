// Command ndsnn-bench regenerates the paper's tables and figures.
//
// Examples:
//
//	ndsnn-bench -list
//	ndsnn-bench -exp table1
//	ndsnn-bench -exp fig5 -scale bench
//	ndsnn-bench -exp all -full          # complete paper grids (slow)
package main

import (
	"flag"
	"fmt"
	"os"

	"ndsnn"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment id (see -list), or \"all\"")
		scale = flag.String("scale", "bench", "experiment scale: unit|bench|paper")
		full  = flag.Bool("full", false, "run complete paper grids instead of the reduced defaults")
		seed  = flag.Uint64("seed", 7, "random seed")
		list  = flag.Bool("list", false, "list experiment ids and exit")
		quiet = flag.Bool("quiet", false, "suppress per-run progress")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, id := range ndsnn.ExperimentIDs {
			fmt.Printf("  %-20s %s\n", id, ndsnn.ExperimentDescription[id])
		}
		if *exp == "" && !*list {
			fmt.Println("\nusage: ndsnn-bench -exp <id|all> [-scale unit|bench|paper] [-full]")
			os.Exit(2)
		}
		return
	}

	opts := ndsnn.ExperimentOptions{Scale: *scale, Full: *full, Seed: *seed}
	if !*quiet {
		opts.Progress = func(line string) { fmt.Fprintln(os.Stderr, "  "+line) }
	}
	ids := []string{*exp}
	if *exp == "all" {
		ids = ndsnn.ExperimentIDs
	}
	for _, id := range ids {
		fmt.Printf("\n##### %s — %s (scale=%s) #####\n", id, ndsnn.ExperimentDescription[id], *scale)
		if err := ndsnn.RunExperiment(id, os.Stdout, opts); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	}
}
