// Command ndsnn-inspect summarizes a saved checkpoint: per-layer sparsity,
// recomputed global sparsity, and deployed memory footprints for the
// neuromorphic platforms of Sec. III-D (Loihi 8-bit, HICANN 4-bit,
// FPGA-SyncNN 16-bit).
//
// Example:
//
//	ndsnn-train -method ndsnn -sparsity 0.95 -out model.ckpt
//	ndsnn-inspect -ckpt model.ckpt
//
// The metrics subcommand pretty-prints the live telemetry of a serving
// process that mounted Server.MetricsHandler (or a saved snapshot file):
//
//	ndsnn-inspect metrics -url http://localhost:8080/metrics.json
//	ndsnn-inspect metrics -url snapshot.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"ndsnn"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "metrics" {
		if err := metricsMain(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return
	}
	var (
		ckpt   = flag.String("ckpt", "", "checkpoint path (required)")
		dtypes = flag.Bool("dtypes", false, "compile an inference engine and print its per-stage activation dtype table")
		bits   = flag.Int("bits", 0, "with -dtypes: weight bits (0 = float32 engine)")
		abits  = flag.Int("abits", 0, "with -dtypes: activation bits (0 = weights only; requires -bits)")
		full   = flag.Bool("full", false, "with -dtypes: require a fully-integer pipeline (implies -abits 8; requires -bits)")
	)
	flag.Parse()
	if *ckpt == "" {
		fmt.Fprintln(os.Stderr, "usage: ndsnn-inspect -ckpt model.ckpt [-dtypes [-bits 8 [-abits 8 | -full]]]\n       ndsnn-inspect metrics -url http://host:port/metrics.json")
		os.Exit(2)
	}
	if *dtypes {
		if err := dtypesMain(*ckpt, *bits, *abits, *full); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return
	}
	info, err := ndsnn.InspectCheckpoint(*ckpt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fmt.Printf("checkpoint           : %s\n", *ckpt)
	fmt.Printf("model                : %s (%s, %s, scale=%s)\n", info.Arch, info.Method, info.Dataset, info.Scale)
	fmt.Printf("recorded test acc    : %.2f%%\n", info.TestAccuracy*100)
	fmt.Printf("target sparsity      : %.2f%%\n", info.Sparsity*100)
	fmt.Printf("actual sparsity      : %.2f%%\n", info.GlobalSparsity*100)

	fmt.Printf("\nper-layer sparsity:\n")
	fmt.Printf("  %-16s %-18s %10s %10s %9s\n", "layer", "shape", "total", "active", "sparsity")
	for _, l := range info.Layers {
		fmt.Printf("  %-16s %-18s %10d %10d %8.2f%%\n", l.Name, fmt.Sprint(l.Shape), l.Total, l.Active, l.Sparsity*100)
	}

	fmt.Printf("\ndeployment footprints (CSR, 16-bit indices):\n")
	fmt.Printf("  dense FP32 reference: %.3f MiB\n", info.DenseMiB)
	var names []string
	for name := range info.FootprintsMiB {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		mib := info.FootprintsMiB[name]
		fmt.Printf("  %-14s %.3f MiB (%.1f%% of dense FP32)\n", name, mib, 100*mib/info.DenseMiB)
	}
}

// dtypesMain rebuilds the checkpointed model, compiles the requested engine
// (float32, mixed integer, or fully integer) and prints its per-stage
// activation dtype table — how mixed- vs full-integer deployments are told
// apart edge by edge from the CLI.
func dtypesMain(ckpt string, bits, abits int, full bool) error {
	m, err := ndsnn.LoadCheckpointModel(ckpt)
	if err != nil {
		return err
	}
	var eng *ndsnn.InferenceEngine
	switch {
	case bits == 0 && (abits != 0 || full):
		return fmt.Errorf("-abits/-full require -bits")
	case bits == 0:
		eng, err = m.CompileInference()
	default:
		eng, err = m.CompileQuantizedInferenceConfig(ndsnn.QuantizedInferenceConfig{
			WeightBits: bits, ActivationBits: abits, FullInteger: full,
		})
	}
	if err != nil {
		return err
	}
	if qi := eng.QuantInfo(); qi != nil {
		mode := "mixed"
		if qi.AnalogStages == 0 {
			mode = "fully integer"
		}
		fmt.Printf("engine               : %s (weights int%d", mode, qi.Bits)
		if qi.ActivationBits > 0 {
			fmt.Printf(", activations int%d", qi.ActivationBits)
		}
		fmt.Printf(")\n")
		fmt.Printf("integer coverage     : %d of %d compute stages (%d analog)\n",
			qi.QuantizedStages, qi.ComputeStages, qi.AnalogStages)
	} else {
		fmt.Printf("engine               : float32\n")
	}
	fmt.Printf("\nper-stage activation dtypes:\n")
	fmt.Printf("  %-28s %-12s %-14s %-14s %s\n", "stage", "kind", "in", "out", "arith")
	for _, r := range eng.StageDTypes() {
		arith := "float"
		if r.Integer {
			arith = "integer"
		}
		fmt.Printf("  %-28s %-12s %-14s %-14s %s\n", r.Name, r.Kind, r.In, r.Out, arith)
	}
	return nil
}

// metricsMain implements the metrics subcommand: fetch a telemetry snapshot
// from a live MetricsHandler endpoint (or read a saved one from a file) and
// pretty-print its histograms, counters, gauges and most recent trace.
func metricsMain(args []string) error {
	fs := flag.NewFlagSet("metrics", flag.ExitOnError)
	url := fs.String("url", "http://localhost:8080/metrics.json",
		"metrics JSON endpoint (Server.MetricsHandler) or a snapshot file path")
	raw := fs.Bool("json", false, "dump the raw JSON snapshot instead of the summary")
	if err := fs.Parse(args); err != nil {
		return err
	}
	body, err := openSnapshot(*url)
	if err != nil {
		return err
	}
	defer body.Close()
	if *raw {
		_, err := io.Copy(os.Stdout, body)
		return err
	}
	var snap ndsnn.MetricsSnapshot
	if err := json.NewDecoder(body).Decode(&snap); err != nil {
		return fmt.Errorf("decoding %s: %w", *url, err)
	}
	printSnapshot(snap)
	return nil
}

func openSnapshot(target string) (io.ReadCloser, error) {
	if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") {
		client := &http.Client{Timeout: 10 * time.Second}
		resp, err := client.Get(target)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return nil, fmt.Errorf("GET %s: %s", target, resp.Status)
		}
		return resp.Body, nil
	}
	return os.Open(target)
}

func printSnapshot(snap ndsnn.MetricsSnapshot) {
	fmt.Printf("snapshot taken at %s\n", snap.TakenAt.Format(time.RFC3339))

	if len(snap.Histograms) > 0 {
		fmt.Printf("\nhistograms:\n")
		fmt.Printf("  %-38s %10s %10s %10s %10s %10s\n", "name", "count", "p50", "p90", "p99", "max")
		for _, h := range snap.Histograms {
			fmt.Printf("  %-38s %10d %10s %10s %10s %10s\n",
				h.Name, h.Count, fmtVal(h.P50, h.Unit), fmtVal(h.P90, h.Unit),
				fmtVal(h.P99, h.Unit), fmtVal(h.Max, h.Unit))
		}
	}
	if len(snap.Counters) > 0 {
		fmt.Printf("\ncounters:\n")
		for _, c := range snap.Counters {
			fmt.Printf("  %-38s %12d\n", c.Name, c.Value)
		}
	}
	if len(snap.Gauges) > 0 {
		fmt.Printf("\ngauges:\n")
		for _, g := range snap.Gauges {
			fmt.Printf("  %-38s %12d\n", g.Name, g.Value)
		}
	}
	if n := len(snap.Traces); n > 0 {
		tr := snap.Traces[n-1]
		fmt.Printf("\nlatest trace (%d in ring): kind=%s seq=%d batch=%d start=%s\n",
			n, tr.Kind, tr.Seq, tr.Batch, tr.Start.Format(time.RFC3339Nano))
		for _, sp := range tr.Spans {
			fmt.Printf("  %12s +%-12s %s\n", fmtVal(sp.DurNs, "ns"), fmtVal(sp.StartNs, "ns"), sp.Name)
		}
	}
}

// fmtVal renders a metric value: durations scaled to a readable unit, plain
// integers otherwise.
func fmtVal(v int64, unit string) string {
	if unit != "ns" {
		return fmt.Sprintf("%d", v)
	}
	switch d := time.Duration(v); {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	default:
		return fmt.Sprintf("%dns", v)
	}
}
