// Command ndsnn-inspect summarizes a saved checkpoint: per-layer sparsity,
// recomputed global sparsity, and deployed memory footprints for the
// neuromorphic platforms of Sec. III-D (Loihi 8-bit, HICANN 4-bit,
// FPGA-SyncNN 16-bit).
//
// Example:
//
//	ndsnn-train -method ndsnn -sparsity 0.95 -out model.ckpt
//	ndsnn-inspect -ckpt model.ckpt
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"ndsnn"
)

func main() {
	var (
		ckpt = flag.String("ckpt", "", "checkpoint path (required)")
	)
	flag.Parse()
	if *ckpt == "" {
		fmt.Fprintln(os.Stderr, "usage: ndsnn-inspect -ckpt model.ckpt")
		os.Exit(2)
	}
	info, err := ndsnn.InspectCheckpoint(*ckpt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fmt.Printf("checkpoint           : %s\n", *ckpt)
	fmt.Printf("model                : %s (%s, %s, scale=%s)\n", info.Arch, info.Method, info.Dataset, info.Scale)
	fmt.Printf("recorded test acc    : %.2f%%\n", info.TestAccuracy*100)
	fmt.Printf("target sparsity      : %.2f%%\n", info.Sparsity*100)
	fmt.Printf("actual sparsity      : %.2f%%\n", info.GlobalSparsity*100)

	fmt.Printf("\nper-layer sparsity:\n")
	fmt.Printf("  %-16s %-18s %10s %10s %9s\n", "layer", "shape", "total", "active", "sparsity")
	for _, l := range info.Layers {
		fmt.Printf("  %-16s %-18s %10d %10d %8.2f%%\n", l.Name, fmt.Sprint(l.Shape), l.Total, l.Active, l.Sparsity*100)
	}

	fmt.Printf("\ndeployment footprints (CSR, 16-bit indices):\n")
	fmt.Printf("  dense FP32 reference: %.3f MiB\n", info.DenseMiB)
	var names []string
	for name := range info.FootprintsMiB {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		mib := info.FootprintsMiB[name]
		fmt.Printf("  %-14s %.3f MiB (%.1f%% of dense FP32)\n", name, mib, 100*mib/info.DenseMiB)
	}
}
