// Command ndsnn-train trains one SNN with any of the implemented methods
// (ndsnn, dense, set, rigl, lth, admm) on a synthetic dataset proxy and
// reports per-epoch statistics plus the final test accuracy. A trained
// model can be saved as a checkpoint for ndsnn-inspect.
//
// Examples:
//
//	ndsnn-train -method ndsnn -arch vgg16 -dataset cifar10 -sparsity 0.95
//	ndsnn-train -method rigl -arch resnet19 -sparsity 0.98 -scale bench
//	ndsnn-train -method ndsnn -sparsity 0.9 -out model.ckpt
package main

import (
	"flag"
	"fmt"
	"os"

	"ndsnn"
)

func main() {
	var (
		method   = flag.String("method", "ndsnn", "training method: ndsnn|dense|set|rigl|lth|admm")
		arch     = flag.String("arch", "vgg16", "architecture: vgg16|resnet19|lenet5")
		dataset  = flag.String("dataset", "cifar10", "dataset proxy: cifar10|cifar100|tinyimagenet")
		sparsity = flag.Float64("sparsity", 0.95, "target sparsity (ignored by dense)")
		initial  = flag.Float64("initial-sparsity", 0, "NDSNN initial sparsity θi (0 = paper rule)")
		tsteps   = flag.Int("timesteps", 0, "SNN timesteps T (0 = scale default)")
		scale    = flag.String("scale", "bench", "experiment scale: unit|bench|paper")
		seed     = flag.Uint64("seed", 1, "random seed")
		out      = flag.String("out", "", "write a checkpoint to this path")
		quiet    = flag.Bool("quiet", false, "suppress per-epoch lines")
	)
	flag.Parse()

	cfg := ndsnn.Config{
		Method: ndsnn.Method(*method), Arch: *arch, Dataset: *dataset,
		Sparsity: *sparsity, InitialSparsity: *initial,
		Timesteps: *tsteps, Scale: *scale, Seed: *seed,
	}
	fmt.Printf("training %s/%s on %s (scale=%s, target sparsity %.2f)\n",
		*method, *arch, *dataset, *scale, *sparsity)

	model, res, err := ndsnn.TrainModel(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	if !*quiet {
		for _, h := range res.History {
			fmt.Printf("epoch %3d: loss=%.4f trainAcc=%.3f sparsity=%.3f spikeRate=%.4f lr=%.4f\n",
				h.Epoch, h.Loss, h.TrainAccuracy, h.Sparsity, h.SpikeRate, h.LR)
		}
	}
	fmt.Printf("\ntest accuracy        : %.2f%%\n", res.TestAccuracy*100)
	fmt.Printf("final sparsity       : %.2f%%\n", res.FinalSparsity*100)
	fmt.Printf("mean train sparsity  : %.2f%%\n", res.MeanTrainingSparsity*100)
	fmt.Printf("epochs trained       : %d\n", len(res.History))

	if *out != "" {
		if err := model.SaveCheckpoint(*out, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Printf("checkpoint written   : %s\n", *out)
	}
}
