// Edge deployment: train a sparse SNN with NDSNN, export it to compressed
// sparse row (CSR) format, and size it for the neuromorphic platforms of
// the paper's Sec. III-D — Intel Loihi (8-bit weights), HICANN (4-bit) and
// FPGA SyncNN-style designs (16-bit) — against the dense FP32 reference.
//
//	go run ./examples/edge_deployment
//	go run ./examples/edge_deployment -sparsity 0.99 -scale bench
package main

import (
	"flag"
	"fmt"
	"log"

	"ndsnn"
)

func main() {
	var (
		scale    = flag.String("scale", "unit", "unit|bench|paper")
		arch     = flag.String("arch", "vgg16", "vgg16|resnet19|lenet5")
		sparsity = flag.Float64("sparsity", 0.95, "target sparsity")
	)
	flag.Parse()

	fmt.Printf("== edge deployment study: %s at %.0f%% sparsity (scale=%s) ==\n\n",
		*arch, *sparsity*100, *scale)

	model, res, err := ndsnn.TrainModel(ndsnn.Config{
		Method: ndsnn.NDSNN, Arch: *arch, Dataset: "cifar10",
		Sparsity: *sparsity, Scale: *scale, Seed: 23,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained: test acc %.2f%%, final sparsity %.2f%%\n\n",
		res.TestAccuracy*100, res.FinalSparsity*100)

	fmt.Println("per-layer topology (ERK allocation keeps small layers denser):")
	fmt.Printf("  %-16s %10s %10s %9s\n", "layer", "total", "active", "sparsity")
	for _, l := range model.Layers() {
		fmt.Printf("  %-16s %10d %10d %8.2f%%\n", l.Name, l.Total, l.Active, l.Sparsity*100)
	}

	fmt.Println("\nCSR export (deployment format):")
	var nnz, rows int
	for _, l := range model.ExportCSR() {
		nnz += l.CSR.NNZ()
		rows += l.CSR.Rows
	}
	fmt.Printf("  %d stored synapses across %d CSR rows\n", nnz, rows)

	fmt.Println("\ndeployed footprint by platform (values + 16-bit indices):")
	denseMiB := model.DenseFootprintMiB()
	fmt.Printf("  %-14s %12.4f MiB (dense FP32 reference)\n", "dense-fp32", denseMiB)
	for _, p := range ndsnn.Platforms() {
		mib, err := model.FootprintMiB(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s %12.4f MiB (%5.1f%% of dense)\n", p, mib, 100*mib/denseMiB)
	}

	fmt.Println("\ntraining-memory model (Sec. III-D, FP32 + 16-bit indices):")
	fmt.Printf("  mean training sparsity was %.1f%%: the paper's footprint formula\n", res.MeanTrainingSparsity*100)
	fmt.Printf("  (1-θ)·((1+t)·N·32 + N·16) therefore held throughout training,\n")
	fmt.Printf("  unlike prune-after-training methods that peak at the dense size.\n")

	fmt.Println("\nevent-driven execution (compiled engine, measured — not modeled):")
	eng, err := model.CompileInference()
	if err != nil {
		log.Fatal(err)
	}
	acc, synOps, denseMACs := eng.EvaluateTest(64)
	fmt.Printf("  engine accuracy      : %.2f%% (bit-exact vs the training path)\n", acc*100)
	fmt.Printf("  synaptic ops/sample  : %.0f\n", synOps)
	fmt.Printf("  dense MAC bound      : %.0f\n", denseMACs)
	fmt.Printf("  measured work ratio  : %.2f%%  (≈ spike rate × density)\n", 100*synOps/denseMACs)

	fmt.Println("\naccuracy at platform weight precisions (post-training quantization,")
	fmt.Println("fake-quantized weights through the float engine — SynOps drop because")
	fmt.Println("small weights round to exactly zero):")
	fmt.Printf("  %-14s %6s %12s %16s\n", "platform", "bits", "accuracy", "synops/sample")
	fmt.Printf("  %-14s %6s %11.2f%% %16.0f\n", "fp32", "32", acc*100, synOps)
	for _, p := range ndsnn.Platforms() {
		bits, ok := ndsnn.PlatformBits(p)
		if !ok {
			log.Fatalf("unknown deployment platform %q", p)
		}
		qacc, qsynOps, _, err := model.EvaluateQuantized(bits, 64)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s %6d %11.2f%% %16.0f\n", p, bits, qacc*100, qsynOps)
	}

	fmt.Println("\ninteger execution (packed QCSR engine — the deployed arithmetic):")
	fmt.Printf("  %-14s %6s %12s %15s %12s\n", "platform", "bits", "accuracy", "packed weights", "vs fp32")
	for _, p := range ndsnn.Platforms() {
		bits, _ := ndsnn.PlatformBits(p)
		qeng, err := model.CompileQuantizedInference(bits)
		if err != nil {
			log.Fatal(err)
		}
		qacc, _, _ := qeng.EvaluateTest(64)
		qi := qeng.QuantInfo()
		fmt.Printf("  %-14s %6d %11.2f%% %13d B %11.1fx\n",
			p, bits, qacc*100, qi.PackedValueBytes,
			float64(qi.FloatValueBytes)/float64(qi.PackedValueBytes))
	}
	fmt.Println("  (integer stages cover every spike-fed conv/linear layer; the")
	fmt.Println("  direct-encoding first conv stays float32, as on real deployments)")
}
