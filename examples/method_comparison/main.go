// Method comparison: every sparse-training method in the paper's Table I —
// Dense, LTH, SET, RigL, NDSNN — on the same model, dataset and sparsity,
// with accuracy, training effort and relative training cost side by side.
//
//	go run ./examples/method_comparison            # unit scale, seconds
//	go run ./examples/method_comparison -scale bench -sparsity 0.98
package main

import (
	"flag"
	"fmt"
	"log"

	"ndsnn"
)

func main() {
	var (
		scale    = flag.String("scale", "unit", "unit|bench|paper")
		arch     = flag.String("arch", "lenet5", "vgg16|resnet19|lenet5")
		sparsity = flag.Float64("sparsity", 0.9, "target sparsity for sparse methods")
	)
	flag.Parse()

	fmt.Printf("== method comparison: %s / cifar10 proxy at %.0f%% sparsity (scale=%s) ==\n\n",
		*arch, *sparsity*100, *scale)

	base := ndsnn.Config{Arch: *arch, Dataset: "cifar10", Scale: *scale, Seed: 11}

	denseCfg := base
	denseCfg.Method = ndsnn.Dense
	dense, err := ndsnn.Train(denseCfg)
	if err != nil {
		log.Fatal(err)
	}

	type row struct {
		name   string
		res    *ndsnn.Result
		cost   float64
		epochs int
	}
	rows := []row{{"dense", dense, 1, len(dense.History)}}
	for _, m := range []ndsnn.Method{ndsnn.LTH, ndsnn.SET, ndsnn.RigL, ndsnn.NDSNN} {
		cfg := base
		cfg.Method = m
		cfg.Sparsity = *sparsity
		res, err := ndsnn.Train(cfg)
		if err != nil {
			log.Fatal(err)
		}
		cost, err := ndsnn.RelativeTrainingCost(res, dense)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{string(m), res, cost, len(res.History)})
	}

	fmt.Printf("%-8s %9s %15s %18s %8s %12s\n",
		"method", "acc(%)", "finalSparsity", "meanTrainSparsity", "epochs", "cost(%dense)")
	for _, r := range rows {
		fmt.Printf("%-8s %9.2f %15.3f %18.3f %8d %12.1f\n",
			r.name, r.res.TestAccuracy*100, r.res.FinalSparsity,
			r.res.MeanTrainingSparsity, r.epochs, r.cost*100)
	}

	fmt.Println()
	fmt.Println("reading the table:")
	fmt.Println(" - LTH pays extra epochs (prune-rewind rounds) at low sparsity → high cost;")
	fmt.Println(" - SET/RigL train at the target sparsity throughout but lose accuracy at")
	fmt.Println("   extreme ratios;")
	fmt.Println(" - NDSNN starts denser (θi) and anneals to θf: dense-like accuracy with a")
	fmt.Println("   training cost far below LTH and the dense baseline.")
}
