// Neurogenesis visualization: the analytical schedules that define NDSNN —
// the Eq. 4 cubic sparsity ramp and the Eq. 5 cosine death-rate annealing —
// followed by an actual training run showing the measured trajectory
// tracking the analytical curve (the repository's Fig. 1 in miniature).
//
//	go run ./examples/neurogenesis_viz
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"ndsnn"
)

// asciiCurve renders ys in [0,1] as a small line chart.
func asciiCurve(title string, ys []float64, height int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	width := len(ys)
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for x, y := range ys {
		if y < 0 {
			y = 0
		}
		if y > 1 {
			y = 1
		}
		row := height - 1 - int(y*float64(height-1)+0.5)
		grid[row][x] = '*'
	}
	for r, row := range grid {
		label := "      "
		if r == 0 {
			label = "1.0 | "
		}
		if r == height-1 {
			label = "0.0 | "
		}
		fmt.Fprintf(&b, "%s%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "      %s\n", strings.Repeat("-", width))
	return b.String()
}

func main() {
	// --- Analytical schedules (no training needed) ---
	const (
		thetaI, thetaF = 0.5, 0.95 // initial and final sparsity
		d0, dMin       = 0.5, 0.05 // death-ratio bounds
		steps          = 64
	)
	sparsity := make([]float64, steps+1)
	death := make([]float64, steps+1)
	for t := 0; t <= steps; t++ {
		frac := float64(t) / steps
		r := 1 - frac
		sparsity[t] = thetaF + (thetaI-thetaF)*r*r*r               // Eq. 4
		death[t] = dMin + 0.5*(d0-dMin)*(1+math.Cos(math.Pi*frac)) // Eq. 5
	}
	fmt.Println("== the two laws of neurogenesis-inspired training ==")
	fmt.Println()
	fmt.Print(asciiCurve(fmt.Sprintf("Eq. 4 — sparsity ramp θ(t): %.0f%% → %.0f%% (cubic)", thetaI*100, thetaF*100), sparsity, 10))
	fmt.Println()
	fmt.Print(asciiCurve(fmt.Sprintf("Eq. 5 — death ratio d(t): %.2f → %.2f (cosine)", d0, dMin), death, 10))

	// --- Measured trajectory from a real run ---
	fmt.Println()
	fmt.Println("training a model to watch the live population shrink...")
	res, err := ndsnn.Train(ndsnn.Config{
		Method: ndsnn.NDSNN, Arch: "lenet5", Dataset: "cifar10",
		Sparsity: thetaF, InitialSparsity: thetaI, Scale: "unit", Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("epoch  sparsity  (measured during training)")
	for _, h := range res.History {
		bar := strings.Repeat("█", int(h.Sparsity*40))
		fmt.Printf("%5d  %7.3f  |%s\n", h.Epoch, h.Sparsity, bar)
	}
	fmt.Printf("\nfinal sparsity %.3f (target %.2f); more connections die than are\n", res.FinalSparsity, thetaF)
	fmt.Println("born each ΔT — the neurogenesis dynamic the method is named after.")
}
