// Quickstart: train a spiking VGG-16 from scratch at 95% target sparsity
// with NDSNN and compare it against the dense baseline — the 60-second tour
// of the library.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ndsnn"
)

func main() {
	// "unit" scale finishes in seconds; switch to "bench" for the scale the
	// benchmark harness uses, or "paper" for the full configuration.
	const scale = "unit"

	fmt.Println("== NDSNN quickstart: sparse-from-scratch SNN training ==")
	fmt.Println()

	cfg := ndsnn.Config{
		Method:   ndsnn.NDSNN,
		Arch:     "vgg16",
		Dataset:  "cifar10", // deterministic synthetic CIFAR-10 stand-in
		Sparsity: 0.95,      // final sparsity θf; θi follows the paper's rule
		Scale:    scale,
		Seed:     42,
	}
	fmt.Printf("training %s on %s with %s at %.0f%% target sparsity...\n",
		cfg.Arch, cfg.Dataset, cfg.Method, cfg.Sparsity*100)
	sparse, err := ndsnn.Train(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("training the dense reference...")
	denseCfg := cfg
	denseCfg.Method = ndsnn.Dense
	denseCfg.Sparsity = 0
	dense, err := ndsnn.Train(denseCfg)
	if err != nil {
		log.Fatal(err)
	}

	cost, err := ndsnn.RelativeTrainingCost(sparse, dense)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Printf("dense   : acc %.2f%%  (sparsity 0%%)\n", dense.TestAccuracy*100)
	fmt.Printf("NDSNN   : acc %.2f%%  (final sparsity %.1f%%, mean training sparsity %.1f%%)\n",
		sparse.TestAccuracy*100, sparse.FinalSparsity*100, sparse.MeanTrainingSparsity*100)
	fmt.Printf("training cost: %.1f%% of the dense run (spike-rate × density accounting)\n", cost*100)
	fmt.Println()
	fmt.Println("per-epoch sparsity ramp (Eq. 4 cubic schedule):")
	for _, h := range sparse.History {
		fmt.Printf("  epoch %2d: sparsity %.3f  loss %.3f  train acc %.3f\n",
			h.Epoch, h.Sparsity, h.Loss, h.TrainAccuracy)
	}
}
