package ndsnn

import (
	"fmt"
	"io"
	"sort"

	"ndsnn/internal/bench"
)

// ExperimentIDs lists every reproducible artifact of the paper's evaluation
// plus this repository's ablation studies, in presentation order.
var ExperimentIDs = []string{
	"fig1", "table1", "table2", "table3", "fig4", "fig5", "memory", "synops",
	"sparse-gemm", "event-driven", "sparse-tape", "quant-infer",
	"parallel-kernels", "time-parallel", "serving", "observability",
	"resilience",
	"ablation-grow", "ablation-shape", "ablation-allocation",
	"ablation-surrogate", "ablation-deltat",
}

// ExperimentDescription maps experiment ids to what they reproduce.
var ExperimentDescription = map[string]string{
	"fig1":                "Fig. 1 — sparsity-vs-epoch trajectories of ADMM / LTH / NDSNN",
	"table1":              "Table I — accuracy of Dense/LTH/SET/RigL/NDSNN across sparsities, models, datasets",
	"table2":              "Table II — ADMM (LeNet-5) vs NDSNN (VGG-16) at moderate sparsity",
	"table3":              "Table III — effect of initial sparsity θi on NDSNN accuracy",
	"fig4":                "Fig. 4 — NDSNN vs LTH at small timestep (T=2)",
	"fig5":                "Fig. 5 — normalized training cost of Dense/LTH/NDSNN",
	"memory":              "Sec. III-D — training/inference memory-footprint model",
	"synops":              "measured event-driven SynOps vs the Sec. IV-C analytic cost model",
	"sparse-gemm":         "dense vs CSR training-kernel wall-clock across sparsities (JSON, BENCH_sparse_gemm.json)",
	"event-driven":        "dual-sparse forward: dense vs CSR vs event-driven vs batched-timestep across spike rates (JSON, BENCH_event_driven.json)",
	"sparse-tape":         "sparse temporal tape: backward speedup + peak BPTT cache memory vs the dense-cache baseline (JSON, BENCH_sparse_tape.json)",
	"quant-infer":         "integer event-driven inference: float32 engine vs int8/int4/int16 QCSR per Sec. III-D platform (JSON, BENCH_quant_infer.json)",
	"parallel-kernels":    "thread-scalable event kernels: serial vs banded/blocked parallel + scalar vs unrolled integer accumulates (JSON, BENCH_parallel_kernels.json)",
	"time-parallel":       "time-parallel neurons: sequential LIF vs ParLIF banded-filter membrane across simulation lengths T, spikes exact + grads ≤1e-5 (JSON, BENCH_time_parallel.json)",
	"serving":             "multi-tenant serving: coalesced-batch throughput + p50/p99 latency across concurrency levels, bit-identical to serial (JSON, BENCH_serving.json)",
	"observability":       "telemetry cost: serving p99/throughput with metrics off vs on (overhead gated ≤1%) + per-stage latency/SynOps breakdown (JSON, BENCH_observability.json)",
	"resilience":          "serving failure model: availability + p99 under injected panic/delay faults vs no-fault baseline, shed-rate vs offered load, survivors gated bit-identical (JSON, BENCH_resilience.json)",
	"ablation-grow":       "A1 — gradient vs random regrowth",
	"ablation-shape":      "A2 — cubic vs linear vs step sparsity ramp",
	"ablation-allocation": "A3 — ERK vs uniform layer allocation",
	"ablation-surrogate":  "A4 — surrogate gradient choice",
	"ablation-deltat":     "A5 — mask-update period ΔT sweep",
}

// ExperimentOptions tunes a RunExperiment call.
type ExperimentOptions struct {
	// Scale is "unit", "bench" (default) or "paper".
	Scale string
	// Full runs the complete paper grid instead of the reduced default
	// (only affects table1/table3/fig4, which are large grids).
	Full bool
	// Seed defaults to 7.
	Seed uint64
	// Progress receives per-run status lines; nil disables them.
	Progress func(string)
}

func (o ExperimentOptions) withDefaults() ExperimentOptions {
	if o.Scale == "" {
		o.Scale = "bench"
	}
	if o.Seed == 0 {
		o.Seed = 7
	}
	return o
}

// RunExperiment regenerates one paper artifact, writing the rendered
// table/figure to w. Experiment ids are listed in ExperimentIDs.
func RunExperiment(id string, w io.Writer, opts ExperimentOptions) error {
	opts = opts.withDefaults()
	s := bench.ScaleByName(opts.Scale)
	progress := bench.Progress(opts.Progress)
	switch id {
	case "table1":
		cfg := bench.DefaultTable1(s)
		cfg.Seed = opts.Seed
		if !opts.Full {
			// Reduced default grid: both models, the two CIFAR proxies.
			// Width-scaled models have ~1000× fewer weights than the
			// paper's, so the informative sparsity band shifts left: 95%
			// of a 30k-parameter model leaves as few absolute weights as
			// ~99.9% of VGG-16. {0.80, 0.95} spans moderate → extreme in
			// relative capacity; the full paper grid is behind -full.
			cfg.Datasets = []string{bench.CIFAR10, bench.CIFAR100}
			cfg.Sparsities = []float64{0.80, 0.95}
		}
		cells, err := bench.RunTable1(cfg, progress)
		if err != nil {
			return err
		}
		bench.PrintTable1(w, cells, cfg.Sparsities)
		printTable1Derived(w, cells)
		return nil
	case "table2":
		r, err := bench.RunTable2(s, []float64{0.40, 0.50, 0.60, 0.75}, opts.Seed, progress)
		if err != nil {
			return err
		}
		bench.PrintTable2(w, r)
		return nil
	case "table3":
		targets := []float64{0.95, 0.98}
		initials := []float64{0.5, 0.6, 0.7, 0.8, 0.9}
		archs := []string{"vgg16", "resnet19"}
		datasets := []string{bench.CIFAR10, bench.CIFAR100}
		if !opts.Full {
			targets = []float64{0.90, 0.95}
			initials = []float64{0.5, 0.6, 0.7, 0.8}
			datasets = []string{bench.CIFAR10}
		}
		cells, err := bench.RunTable3(s, archs, datasets, targets, initials, opts.Seed, progress)
		if err != nil {
			return err
		}
		bench.PrintTable3(w, cells)
		return nil
	case "fig1":
		r, err := bench.RunFig1(s, "vgg16", 0.95, opts.Seed, progress)
		if err != nil {
			return err
		}
		bench.PrintFig1(w, r)
		return nil
	case "fig4":
		sparsities := []float64{0.90, 0.95, 0.98, 0.99}
		if !opts.Full {
			sparsities = []float64{0.80, 0.95}
		}
		r, err := bench.RunFig4(s, sparsities, opts.Seed, progress)
		if err != nil {
			return err
		}
		bench.PrintFig4(w, r)
		return nil
	case "fig5":
		r, err := bench.RunFig5(s, 0.95, opts.Seed, progress)
		if err != nil {
			return err
		}
		bench.PrintFig5(w, r)
		return nil
	case "memory":
		for _, arch := range []string{"vgg16", "resnet19"} {
			rep := bench.RunMemory(arch, 10, 32, 5, []float64{0.5, 0.9, 0.95, 0.98, 0.99})
			bench.PrintMemory(w, rep)
		}
		return nil
	case "synops":
		r, err := bench.RunSynOps(s, "vgg16", []float64{0, 0.9, 0.95, 0.99}, opts.Seed, progress)
		if err != nil {
			return err
		}
		bench.PrintSynOps(w, r)
		return nil
	case "sparse-gemm":
		iters := 10
		if opts.Scale == "unit" {
			iters = 3
		}
		rep := bench.RunSparseGEMM([]float64{0.50, 0.90, 0.99}, iters, opts.Seed, progress)
		return bench.PrintSparseGEMM(w, rep)
	case "event-driven":
		iters := 10
		rates := []float64{0.05, 0.10, 0.15}
		sparsities := []float64{0.50, 0.90, 0.99}
		if opts.Scale == "unit" {
			iters = 3
			rates = []float64{0.10}
			sparsities = []float64{0.90}
		}
		rep := bench.RunEventDriven(rates, sparsities, iters, 5, opts.Seed, progress)
		return bench.PrintEventDriven(w, rep)
	case "sparse-tape":
		iters := 10
		rates := []float64{0.05, 0.10, 0.15}
		sparsities := []float64{0.50, 0.90, 0.99}
		if opts.Scale == "unit" {
			iters = 3
			rates = []float64{0.10}
			sparsities = []float64{0.90}
		}
		rep, err := bench.RunSparseTape(rates, sparsities, iters, 5, opts.Seed, progress)
		if err != nil {
			return err
		}
		return bench.PrintSparseTape(w, rep)
	case "parallel-kernels":
		iters := 20
		workerCounts := []int{1, 2, 4, 8}
		if opts.Scale == "unit" {
			iters = 5
			workerCounts = []int{1, 4}
		}
		rep, err := bench.RunParallelKernels(workerCounts, iters, opts.Seed, progress)
		if err != nil {
			return err
		}
		return bench.PrintParallelKernels(w, rep)
	case "time-parallel":
		iters := 7
		timesteps := []int{5, 25, 100}
		if opts.Scale == "unit" {
			iters = 3
			timesteps = []int{5, 25}
		}
		rep, err := bench.RunTimeParallel(timesteps, iters, opts.Seed, progress)
		if err != nil {
			return err
		}
		return bench.PrintTimeParallel(w, rep)
	case "quant-infer":
		// ResNet-19 at 80% sparsity: the bench-scale model that trains far
		// enough from chance for the per-platform accuracy deltas to be
		// signal (the reduced-scale VGG-16 sits at chance, where deep spike
		// dynamics make deltas coin flips), and its residual blocks exercise
		// the integer engine's full stage set.
		rep, err := bench.RunQuantInfer(s, "resnet19", 0.80, opts.Seed, progress)
		if err != nil {
			return err
		}
		return bench.PrintQuantInfer(w, rep)
	case "serving":
		// LeNet-5 keeps the per-request compute small enough that queueing
		// and coalescing — not raw engine latency — dominate the cells.
		concurrency := []int{1, 4, 16, 32}
		maxBatches := []int{1, 4, 16}
		requests := 384
		if opts.Scale == "unit" {
			concurrency = []int{1, 8, 32}
			maxBatches = []int{1, 8}
			requests = 96
		}
		rep, err := bench.RunServing(s, "lenet5", 0.80, concurrency, maxBatches, requests, opts.Seed, progress)
		if err != nil {
			return err
		}
		return bench.PrintServing(w, rep)
	case "observability":
		// Same LeNet-5 serving workload as the serving experiment, but the
		// cells compare metrics-off vs metrics-on arms of the same plan.
		concurrency, requests := 16, 384
		if opts.Scale == "unit" {
			concurrency, requests = 8, 96
		}
		rep, err := bench.RunObservability(s, "lenet5", 0.80, concurrency, requests, opts.Seed, progress)
		if err != nil {
			return err
		}
		return bench.PrintObservability(w, rep)
	case "resilience":
		// Same LeNet-5 workload as the serving experiment, but under injected
		// faults and deadline pressure: the artifact is availability, not
		// throughput.
		concurrency, requests := 16, 384
		if opts.Scale == "unit" {
			concurrency, requests = 8, 96
		}
		rep, err := bench.RunResilience(s, "lenet5", 0.80, concurrency, requests, opts.Seed, progress)
		if err != nil {
			return err
		}
		return bench.PrintResilience(w, rep)
	case "ablation-grow":
		return runAblation(w, s, opts, bench.RunAblationGrowCriterion)
	case "ablation-shape":
		return runAblation(w, s, opts, bench.RunAblationScheduleShape)
	case "ablation-allocation":
		return runAblation(w, s, opts, bench.RunAblationLayerAllocation)
	case "ablation-surrogate":
		return runAblation(w, s, opts, bench.RunAblationSurrogate)
	case "ablation-deltat":
		return runAblation(w, s, opts, bench.RunAblationUpdateFrequency)
	default:
		return fmt.Errorf("ndsnn: unknown experiment %q (known: %v)", id, ExperimentIDs)
	}
}

func runAblation(w io.Writer, s bench.Scale, opts ExperimentOptions,
	run func(bench.Scale, uint64, bench.Progress) (*bench.AblationResult, error)) error {
	r, err := run(s, opts.Seed, bench.Progress(opts.Progress))
	if err != nil {
		return err
	}
	bench.PrintAblation(w, r)
	return nil
}

// printTable1Derived prints the Sec. IV-B style derived claims: where NDSNN
// ranks against each baseline at the highest sparsity.
func printTable1Derived(w io.Writer, cells []bench.Cell) {
	type key struct{ arch, ds string }
	best := map[key]map[string]float64{}
	maxSp := 0.0
	for _, c := range cells {
		if c.Sparsity > maxSp {
			maxSp = c.Sparsity
		}
	}
	for _, c := range cells {
		if c.Sparsity != maxSp || c.Method == bench.MethodDense {
			continue
		}
		k := key{c.Arch, c.Dataset}
		if best[k] == nil {
			best[k] = map[string]float64{}
		}
		best[k][c.Method] = c.Acc
	}
	var keys []key
	for k := range best {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].arch != keys[j].arch {
			return keys[i].arch < keys[j].arch
		}
		return keys[i].ds < keys[j].ds
	})
	fmt.Fprintf(w, "\n--- Derived (Sec. IV-B style): NDSNN vs baselines at θ=%.0f%% ---\n", maxSp*100)
	for _, k := range keys {
		m := best[k]
		nd, ok := m[bench.MethodNDSNN]
		if !ok {
			continue
		}
		fmt.Fprintf(w, "%s/%s:", k.arch, k.ds)
		for _, base := range []string{bench.MethodLTH, bench.MethodSET, bench.MethodRigL} {
			if acc, ok := m[base]; ok {
				fmt.Fprintf(w, "  vs %s %+0.2f pts", base, (nd-acc)*100)
			}
		}
		fmt.Fprintln(w)
	}
}
