module ndsnn

go 1.21
