package ndsnn

import (
	"ndsnn/internal/data"
	"ndsnn/internal/infer"
	"ndsnn/internal/tensor"
)

// InferenceEngine is a compiled event-driven execution of a trained model:
// only active synapses are stored and only nonzero activations propagate,
// the execution model of the neuromorphic platforms the paper targets. Its
// outputs match the training path's eval-mode forward exactly.
type InferenceEngine struct {
	eng *infer.Engine
	ds  *data.Dataset
}

// CompileInference builds the event-driven engine from the trained model.
func (m *Model) CompileInference() (*InferenceEngine, error) {
	eng, err := infer.Compile(m.net)
	if err != nil {
		return nil, err
	}
	return &InferenceEngine{eng: eng, ds: m.dataset}, nil
}

// Classify returns the predicted class of one sample image laid out
// [C,H,W] (use TestSample to fetch dataset samples).
func (e *InferenceEngine) Classify(sample []float32, c, h, w int) int {
	return e.eng.Classify(tensor.FromSlice(sample, c, h, w))
}

// TestSample returns test image i and its label from the model's dataset.
func (e *InferenceEngine) TestSample(i int) (img []float32, c, h, w, label int) {
	cfg := e.ds.Config
	pix := cfg.C * cfg.H * cfg.W
	return e.ds.Test.Images[i*pix : (i+1)*pix], cfg.C, cfg.H, cfg.W, e.ds.Test.Labels[i]
}

// TestLen returns the number of test samples available.
func (e *InferenceEngine) TestLen() int { return e.ds.Test.N() }

// QuantInfo summarizes an integer engine's storage and coverage: which
// precisions it runs at (weight bits, and activation bits when the input is
// grid-quantized), how many compute stages execute in integer and how many
// still run float synaptic arithmetic (AnalogStages — zero is the checkable
// "fully integer" claim), the stored-synapse census (including synapses
// whose level rounded to zero — dead weight the integer kernels skip), and
// the packed value-storage bytes against the float32 engine's 4 bytes per
// synapse.
type QuantInfo struct {
	Bits                           int
	ActivationBits                 int
	FullInteger                    bool
	QuantizedStages, ComputeStages int
	AnalogStages                   int
	StoredSynapses, ZeroQuantized  int64
	PackedValueBytes               int64
	FloatValueBytes                int64
}

// QuantInfo returns the integer-storage summary for engines built by
// CompileQuantizedInference, or nil for float engines.
func (e *InferenceEngine) QuantInfo() *QuantInfo {
	s := e.eng.QuantStats()
	if s == nil {
		return nil
	}
	return &QuantInfo{
		Bits:             s.Bits,
		ActivationBits:   s.ActivationBits,
		FullInteger:      s.FullInteger,
		QuantizedStages:  s.QuantizedStages,
		ComputeStages:    s.ComputeStages,
		AnalogStages:     s.AnalogStages,
		StoredSynapses:   s.StoredSynapses,
		ZeroQuantized:    s.ZeroQuantized,
		PackedValueBytes: s.PackedValueBytes,
		FloatValueBytes:  s.FloatValueBytes,
	}
}

// StageDTypeInfo is one row of an engine's activation dtype table, rendered
// for display: the stage's pipeline name and kind, its input and output
// edge dtypes ("f32", "spike", "int10·0.0625"), and whether its synaptic
// arithmetic runs on integer levels.
type StageDTypeInfo struct {
	Name, Kind string
	In, Out    string
	Integer    bool
}

// StageDTypes returns the engine's per-stage activation dtype table in
// pipeline order (rows nested inside residual blocks are name-prefixed with
// the block's entry). Works on float and integer engines alike; it is how
// mixed- versus fully-integer deployments are told apart edge by edge.
func (e *InferenceEngine) StageDTypes() []StageDTypeInfo {
	rows := e.eng.StageDTypes()
	out := make([]StageDTypeInfo, len(rows))
	for i, r := range rows {
		out[i] = StageDTypeInfo{
			Name: r.Name, Kind: r.Kind,
			In: r.In.String(), Out: r.Out.String(),
			Integer: r.Integer,
		}
	}
	return out
}

// EvaluateTest classifies up to n test samples (0 = all) and returns
// accuracy plus the measured efficiency: synaptic operations per sample and
// the dense-MAC bound a non-event implementation would pay.
func (e *InferenceEngine) EvaluateTest(n int) (acc float64, synOpsPerSample float64, denseMACsPerSample float64) {
	if n <= 0 || n > e.ds.Test.N() {
		n = e.ds.Test.N()
	}
	cfg := e.ds.Config
	pix := cfg.C * cfg.H * cfg.W
	e.eng.ResetStats()
	correct := 0
	for i := 0; i < n; i++ {
		sample := tensor.FromSlice(e.ds.Test.Images[i*pix:(i+1)*pix], cfg.C, cfg.H, cfg.W)
		if e.eng.Classify(sample) == e.ds.Test.Labels[i] {
			correct++
		}
	}
	synOps := float64(e.eng.SynOps()) / float64(n)
	dense := float64(e.eng.DenseMACsPerTimestep() * int64(e.eng.T))
	return float64(correct) / float64(n), synOps, dense
}
