package baselines

import (
	"ndsnn/internal/data"
	"ndsnn/internal/layers"
	"ndsnn/internal/opt"
	"ndsnn/internal/rng"
	"ndsnn/internal/snn"
	"ndsnn/internal/sparse"
	"ndsnn/internal/tensor"
	"ndsnn/internal/train"
)

// ADMMConfig configures ADMM pruning (Deng et al., TNNLS 2021; the paper's
// Table II baseline): a dense training phase with the augmented-Lagrangian
// penalty ρ‖W−Z+U‖² steering weights toward a sparse auxiliary variable Z
// (the per-layer magnitude projection), followed by a hard prune and
// fine-tune. The training phase is dense — exactly the inefficiency the
// paper's Fig. 1 highlights (the orange curve sits at zero sparsity).
type ADMMConfig struct {
	// TargetSparsity is the final per-layer (uniform) sparsity.
	TargetSparsity float64
	// Rho is the penalty coefficient ρ.
	Rho float64
	// ADMMEpochs is the regularized dense-training length.
	ADMMEpochs int
	// FinetuneEpochs is the post-prune fine-tuning length (0 → Common.Epochs).
	FinetuneEpochs int
	// UpdateEvery is the number of epochs between Z/U dual updates.
	UpdateEvery int
}

// WithDefaults fills unset fields.
func (c ADMMConfig) WithDefaults() ADMMConfig {
	if c.TargetSparsity == 0 {
		c.TargetSparsity = 0.5
	}
	if c.Rho == 0 {
		c.Rho = 1e-2
	}
	if c.ADMMEpochs == 0 {
		c.ADMMEpochs = 3
	}
	if c.UpdateEvery == 0 {
		c.UpdateEvery = 1
	}
	return c
}

// TrainADMM runs ADMM pruning and returns the uniform result.
func TrainADMM(net *snn.Network, ds *data.Dataset, common train.Common, cfg ADMMConfig) (*train.Result, error) {
	common = common.WithDefaults()
	cfg = cfg.WithDefaults()
	if cfg.FinetuneEpochs == 0 {
		cfg.FinetuneEpochs = common.Epochs
	}
	r := rng.New(common.Seed)
	prunable := layers.PrunableParams(net.Params())

	// ADMM variables: Z (projected weights) and U (scaled duals).
	zs := make([]*tensor.Tensor, len(prunable))
	us := make([]*tensor.Tensor, len(prunable))
	for i, p := range prunable {
		zs[i] = project(p.W, cfg.TargetSparsity)
		us[i] = tensor.New(p.W.Shape()...)
	}
	dualUpdate := func() {
		for i, p := range prunable {
			// Z = proj(W + U); U += W − Z.
			wu := tensor.Add(p.W, us[i])
			zs[i] = project(wu, cfg.TargetSparsity)
			for j := range us[i].Data {
				us[i].Data[j] += p.W.Data[j] - zs[i].Data[j]
			}
		}
	}

	var history []train.EpochStats
	sgd := opt.NewSGD(common.LR, common.Momentum, common.WeightDecay)
	admmLoop := &train.Loop{
		Net: net, Dataset: ds, Opt: sgd,
		Schedule:   opt.CosineLR{Base: common.LR, Min: common.LRMin, Total: cfg.ADMMEpochs},
		BatchSize:  common.BatchSize,
		Epochs:     cfg.ADMMEpochs,
		MaxBatches: common.MaxBatches,
		Rng:        r.Split(),
	}
	rho := float32(cfg.Rho)
	admmLoop.Hooks.OnGradsReady = func(step int) {
		for i, p := range prunable {
			for j := range p.Grad.Data {
				p.Grad.Data[j] += rho * (p.W.Data[j] - zs[i].Data[j] + us[i].Data[j])
			}
		}
	}
	epochsSinceUpdate := 0
	admmLoop.Hooks.OnEpochEnd = func(stats train.EpochStats) {
		epochsSinceUpdate++
		if epochsSinceUpdate >= cfg.UpdateEvery {
			dualUpdate()
			epochsSinceUpdate = 0
		}
	}
	h, err := admmLoop.Run()
	history = append(history, h...)
	if err != nil {
		return nil, err
	}

	// Hard prune to the target per-layer sparsity and fine-tune.
	for _, p := range prunable {
		keep := sparse.CountForDensity(p.W.Size(), 1-cfg.TargetSparsity)
		p.Mask = sparse.MaskFromKeep(p.W.Shape(), sparse.TopKMagnitude(p.W, keep))
		p.ApplyMask()
	}
	ftOpt := opt.NewSGD(common.LR*0.1, common.Momentum, common.WeightDecay)
	ftLoop := &train.Loop{
		Net: net, Dataset: ds, Opt: ftOpt,
		Schedule:   opt.CosineLR{Base: common.LR * 0.1, Min: common.LRMin, Total: cfg.FinetuneEpochs},
		BatchSize:  common.BatchSize,
		Epochs:     cfg.FinetuneEpochs,
		MaxBatches: common.MaxBatches,
		Rng:        r.Split(),
	}
	h, err = ftLoop.Run()
	history = append(history, h...)
	if err != nil {
		return nil, err
	}
	return &train.Result{
		History:       history,
		TestAcc:       train.Evaluate(net, ds, &ds.Test, common.EvalBatch),
		FinalSparsity: layers.GlobalSparsity(prunable),
		Trajectory:    train.BuildTrajectory("ADMM", history),
	}, nil
}

// project returns the per-layer magnitude projection of w onto the sparsity
// constraint: the largest-(1−θ) fraction survives, the rest becomes zero.
func project(w *tensor.Tensor, sparsity float64) *tensor.Tensor {
	keep := sparse.CountForDensity(w.Size(), 1-sparsity)
	z := tensor.New(w.Shape()...)
	for _, i := range sparse.TopKMagnitude(w, keep) {
		z.Data[i] = w.Data[i]
	}
	return z
}
