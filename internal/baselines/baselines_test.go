package baselines

import (
	"math"
	"testing"

	"ndsnn/internal/data"
	"ndsnn/internal/layers"
	"ndsnn/internal/tensor"
	"ndsnn/internal/testutil"
	"ndsnn/internal/train"
)

func easyData() *data.Dataset { return data.SynthEasy(4, 96, 48, 21) }

func common(epochs int) train.Common {
	return train.Common{
		Epochs: epochs, BatchSize: 16, LR: 0.08, LRMin: 0.001,
		Momentum: 0.9, WeightDecay: 5e-4, Seed: 5,
	}
}

func TestDenseLearnsEasyTask(t *testing.T) {
	net := testutil.TinyNet(4, 2, 1)
	res, err := TrainDense(net, easyData(), common(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.TestAcc < 0.6 {
		t.Fatalf("dense test accuracy = %v, want >= 0.6", res.TestAcc)
	}
	if res.FinalSparsity != 0 {
		t.Fatalf("dense run reports sparsity %v", res.FinalSparsity)
	}
	if len(res.History) != 4 {
		t.Fatalf("history length %d, want 4", len(res.History))
	}
}

func TestDenseLossDecreases(t *testing.T) {
	net := testutil.TinyNet(4, 2, 2)
	res, err := TrainDense(net, easyData(), common(4))
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.History[0].Loss, res.History[len(res.History)-1].Loss
	if last >= first {
		t.Fatalf("loss did not decrease: %v → %v", first, last)
	}
}

func TestSETConstantSparsity(t *testing.T) {
	net := testutil.TinyNet(4, 2, 3)
	res, err := TrainSET(net, easyData(), common(4), DSTConfig{Sparsity: 0.8, DeltaT: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range res.History {
		if math.Abs(h.Sparsity-0.8) > 0.02 {
			t.Fatalf("epoch %d sparsity = %v, want ~0.8 throughout", h.Epoch, h.Sparsity)
		}
	}
	if math.Abs(res.FinalSparsity-0.8) > 0.02 {
		t.Fatalf("final sparsity = %v, want 0.8", res.FinalSparsity)
	}
}

func TestRigLConstantSparsityAndLearns(t *testing.T) {
	net := testutil.TinyNet(4, 2, 4)
	res, err := TrainRigL(net, easyData(), common(5), DSTConfig{Sparsity: 0.7, DeltaT: 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.FinalSparsity-0.7) > 0.02 {
		t.Fatalf("final sparsity = %v, want 0.7", res.FinalSparsity)
	}
	if res.TestAcc < 0.5 {
		t.Fatalf("RigL accuracy = %v, want >= 0.5", res.TestAcc)
	}
}

func TestSETAndRigLMaskConsistency(t *testing.T) {
	for name, trainer := range map[string]func() (*train.Result, error){
		"set": func() (*train.Result, error) {
			return TrainSET(testutil.TinyNet(4, 2, 5), easyData(), common(2), DSTConfig{Sparsity: 0.9, DeltaT: 3})
		},
		"rigl": func() (*train.Result, error) {
			return TrainRigL(testutil.TinyNet(4, 2, 5), easyData(), common(2), DSTConfig{Sparsity: 0.9, DeltaT: 3})
		},
	} {
		if _, err := trainer(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestLTHReachesTargetAndPaysForIt(t *testing.T) {
	net := testutil.TinyNet(4, 2, 6)
	cfg := LTHConfig{TargetSparsity: 0.9, Rounds: 3, EpochsPerRound: 2, FinalEpochs: 3}
	res, err := TrainLTH(net, easyData(), common(3), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.FinalSparsity-0.9) > 0.02 {
		t.Fatalf("LTH final sparsity = %v, want 0.9", res.FinalSparsity)
	}
	// Total effort = 3 rounds × 2 epochs + 3 final = 9 epochs of history.
	if len(res.History) != 9 {
		t.Fatalf("LTH history = %d epochs, want 9", len(res.History))
	}
	// Early rounds train at low sparsity (the paper's grey region).
	if res.History[0].Sparsity != 0 {
		t.Fatalf("first LTH round sparsity = %v, want 0 (dense)", res.History[0].Sparsity)
	}
	last := res.History[len(res.History)-1]
	if math.Abs(last.Sparsity-0.9) > 0.02 {
		t.Fatalf("final-phase sparsity = %v, want 0.9", last.Sparsity)
	}
}

func TestLTHSparsityStaircaseMonotone(t *testing.T) {
	net := testutil.TinyNet(4, 2, 7)
	res, err := TrainLTH(net, easyData(), common(2), LTHConfig{TargetSparsity: 0.8, Rounds: 4, EpochsPerRound: 1, FinalEpochs: 1})
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, h := range res.History {
		if h.Sparsity < prev-1e-9 {
			t.Fatalf("LTH sparsity decreased: %v after %v", h.Sparsity, prev)
		}
		prev = h.Sparsity
	}
}

func TestGlobalMagnitudePruneKeepsLargest(t *testing.T) {
	p1 := makeParam("a", []float32{5, 0.1, 3, 0.2})
	p2 := makeParam("b", []float32{4, 0.3, -6, 0.01})
	globalMagnitudePrune([]*layers.Param{p1, p2}, 4)
	// Largest four magnitudes: 6, 5, 4, 3.
	wantActive := map[string][]int{"a": {0, 2}, "b": {0, 2}}
	for _, p := range []*layers.Param{p1, p2} {
		var active []int
		for i, m := range p.Mask.Data {
			if m != 0 {
				active = append(active, i)
			}
		}
		want := wantActive[p.Name]
		if len(active) != len(want) {
			t.Fatalf("param %s active = %v, want %v", p.Name, active, want)
		}
		for i := range want {
			if active[i] != want[i] {
				t.Fatalf("param %s active = %v, want %v", p.Name, active, want)
			}
		}
	}
}

func TestADMMReachesTargetAndLearns(t *testing.T) {
	net := testutil.TinyNet(4, 2, 8)
	cfg := ADMMConfig{TargetSparsity: 0.5, Rho: 1e-2, ADMMEpochs: 3, FinetuneEpochs: 3, UpdateEvery: 1}
	res, err := TrainADMM(net, easyData(), common(3), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.FinalSparsity-0.5) > 0.03 {
		t.Fatalf("ADMM final sparsity = %v, want 0.5", res.FinalSparsity)
	}
	if res.TestAcc < 0.5 {
		t.Fatalf("ADMM accuracy = %v, want >= 0.5", res.TestAcc)
	}
	// ADMM phase history is dense, finetune is sparse.
	if res.History[0].Sparsity != 0 {
		t.Fatalf("ADMM phase sparsity = %v, want 0", res.History[0].Sparsity)
	}
}

func TestADMMPenaltyPullsTowardProjection(t *testing.T) {
	// After ADMM training, the weights should be closer (relatively) to
	// their sparse projection than a freshly initialized net is — the
	// regularizer's whole point.
	ds := easyData()
	relDist := func(params []*layers.Param) float64 {
		num, den := 0.0, 0.0
		for _, p := range params {
			z := project(p.W, 0.6)
			for i := range p.W.Data {
				d := float64(p.W.Data[i] - z.Data[i])
				num += d * d
				den += float64(p.W.Data[i]) * float64(p.W.Data[i])
			}
		}
		return num / den
	}
	fresh := testutil.TinyNet(4, 2, 9)
	before := relDist(layers.PrunableParams(fresh.Params()))
	net := testutil.TinyNet(4, 2, 9)
	_, err := TrainADMM(net, ds, common(2), ADMMConfig{TargetSparsity: 0.6, Rho: 5e-2, ADMMEpochs: 4, FinetuneEpochs: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Note: TrainADMM hard-prunes at the end, which zeroes the distance by
	// construction; measure on a separate run stopped before pruning is not
	// exposed, so instead verify the pruned model satisfies the constraint.
	after := relDist(layers.PrunableParams(net.Params()))
	if after >= before {
		t.Fatalf("projection distance did not shrink: %v → %v", before, after)
	}
}

func TestDeterministicTraining(t *testing.T) {
	run := func() float64 {
		net := testutil.TinyNet(4, 2, 10)
		res, err := TrainDense(net, easyData(), common(2))
		if err != nil {
			t.Fatal(err)
		}
		return res.TestAcc
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("identical runs differ: %v vs %v", a, b)
	}
}

func makeParam(name string, vals []float32) *layers.Param {
	p := layers.NewParam(name, tensorFrom(vals))
	m := tensorFrom(make([]float32, len(vals)))
	for i := range m.Data {
		m.Data[i] = 1
	}
	p.Mask = m
	return p
}

func tensorFrom(vals []float32) *tensor.Tensor {
	return tensor.FromSlice(vals, len(vals))
}
