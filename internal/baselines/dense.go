// Package baselines implements the comparison methods of the paper's
// evaluation: dense training, the constant-sparsity dynamic methods SET-SNN
// and RigL-SNN, iterative magnitude pruning with weight rewinding (LTH-SNN),
// and ADMM pruning — all on the same SNN substrate and training loop as
// NDSNN so that accuracy and cost comparisons are apples-to-apples.
package baselines

import (
	"ndsnn/internal/data"
	"ndsnn/internal/layers"
	"ndsnn/internal/opt"
	"ndsnn/internal/rng"
	"ndsnn/internal/snn"
	"ndsnn/internal/train"
)

// TrainDense trains the unpruned network; it is both the accuracy reference
// row of Table I and the cost denominator of Fig. 5.
func TrainDense(net *snn.Network, ds *data.Dataset, common train.Common) (*train.Result, error) {
	common = common.WithDefaults()
	r := rng.New(common.Seed)
	sgd := opt.NewSGD(common.LR, common.Momentum, common.WeightDecay)
	loop := &train.Loop{
		Net: net, Dataset: ds, Opt: sgd,
		Schedule:   opt.CosineLR{Base: common.LR, Min: common.LRMin, Total: common.Epochs},
		BatchSize:  common.BatchSize,
		Epochs:     common.Epochs,
		MaxBatches: common.MaxBatches,
		Rng:        r.Split(),
	}
	history, err := loop.Run()
	if err != nil {
		return nil, err
	}
	return &train.Result{
		History:       history,
		TestAcc:       train.Evaluate(net, ds, &ds.Test, common.EvalBatch),
		FinalSparsity: layers.GlobalSparsity(layers.PrunableParams(net.Params())),
		Trajectory:    train.BuildTrajectory("Dense", history),
	}, nil
}
