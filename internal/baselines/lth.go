package baselines

import (
	"math"
	"sort"

	"ndsnn/internal/data"
	"ndsnn/internal/layers"
	"ndsnn/internal/opt"
	"ndsnn/internal/rng"
	"ndsnn/internal/snn"
	"ndsnn/internal/tensor"
	"ndsnn/internal/train"
)

// LTHConfig configures LTH-SNN: iterative magnitude pruning (IMP) with
// weight rewinding, the lottery-ticket procedure the paper reproduces from
// Kim et al. (ECCV 2022). Each round trains the current ticket, prunes the
// globally-smallest active weights down to the round's sparsity, and rewinds
// surviving weights to their initialization; a final training run fits the
// winning ticket. Note the method's cost: (Rounds·EpochsPerRound +
// FinalEpochs) epochs, most of them at low sparsity — the grey region of
// Fig. 1.
type LTHConfig struct {
	// TargetSparsity is the final global sparsity.
	TargetSparsity float64
	// Rounds is the number of prune-rewind iterations.
	Rounds int
	// EpochsPerRound is the training length of each iteration.
	EpochsPerRound int
	// FinalEpochs is the last full training run (0 → Common.Epochs).
	FinalEpochs int
}

// WithDefaults fills unset fields.
func (c LTHConfig) WithDefaults() LTHConfig {
	if c.TargetSparsity == 0 {
		c.TargetSparsity = 0.9
	}
	if c.Rounds == 0 {
		c.Rounds = 3
	}
	if c.EpochsPerRound == 0 {
		c.EpochsPerRound = 2
	}
	return c
}

// TrainLTH runs iterative magnitude pruning with rewinding and returns the
// uniform result; History concatenates every round, so the cost model sees
// the method's full training effort.
func TrainLTH(net *snn.Network, ds *data.Dataset, common train.Common, cfg LTHConfig) (*train.Result, error) {
	common = common.WithDefaults()
	cfg = cfg.WithDefaults()
	if cfg.FinalEpochs == 0 {
		cfg.FinalEpochs = common.Epochs
	}
	r := rng.New(common.Seed)
	allParams := net.Params()
	prunable := layers.PrunableParams(allParams)

	// Snapshot initialization for rewinding.
	w0 := make([]*tensor.Tensor, len(allParams))
	for i, p := range allParams {
		w0[i] = p.W.Clone()
	}
	// Masks start dense.
	for _, p := range prunable {
		m := tensor.New(p.W.Shape()...)
		m.Fill(1)
		p.Mask = m
	}

	var history []train.EpochStats
	runPhase := func(epochs int) error {
		sgd := opt.NewSGD(common.LR, common.Momentum, common.WeightDecay)
		loop := &train.Loop{
			Net: net, Dataset: ds, Opt: sgd,
			Schedule:   opt.CosineLR{Base: common.LR, Min: common.LRMin, Total: epochs},
			BatchSize:  common.BatchSize,
			Epochs:     epochs,
			MaxBatches: common.MaxBatches,
			Rng:        r.Split(),
		}
		h, err := loop.Run()
		history = append(history, h...)
		return err
	}

	totalPrunable := layers.TotalElems(prunable)
	for round := 1; round <= cfg.Rounds; round++ {
		if err := runPhase(cfg.EpochsPerRound); err != nil {
			return nil, err
		}
		// Geometric schedule: after round k the surviving fraction is
		// (1-θf)^(k/Rounds), so each round prunes the same share of the
		// remaining weights.
		remain := math.Pow(1-cfg.TargetSparsity, float64(round)/float64(cfg.Rounds))
		keep := int(remain*float64(totalPrunable) + 0.5)
		globalMagnitudePrune(prunable, keep)
		// Rewind every parameter to initialization (masked positions stay 0).
		for i, p := range allParams {
			p.W.CopyFrom(w0[i])
			p.ApplyMask()
		}
	}
	if err := runPhase(cfg.FinalEpochs); err != nil {
		return nil, err
	}
	return &train.Result{
		History:       history,
		TestAcc:       train.Evaluate(net, ds, &ds.Test, common.EvalBatch),
		FinalSparsity: layers.GlobalSparsity(prunable),
		Trajectory:    train.BuildTrajectory("LTH", history),
	}, nil
}

// globalMagnitudePrune keeps the `keep` largest-|w| weights among the
// currently-active positions across all params and masks out the rest.
func globalMagnitudePrune(params []*layers.Param, keep int) {
	type cand struct {
		mag   float32
		param int
		idx   int
	}
	var cands []cand
	for pi, p := range params {
		for i, m := range p.Mask.Data {
			if m != 0 {
				mag := p.W.Data[i]
				if mag < 0 {
					mag = -mag
				}
				cands = append(cands, cand{mag, pi, i})
			}
		}
	}
	if keep >= len(cands) {
		return
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].mag != cands[j].mag {
			return cands[i].mag > cands[j].mag
		}
		if cands[i].param != cands[j].param {
			return cands[i].param < cands[j].param
		}
		return cands[i].idx < cands[j].idx
	})
	for _, c := range cands[keep:] {
		p := params[c.param]
		p.Mask.Data[c.idx] = 0
		p.W.Data[c.idx] = 0
	}
	for _, p := range params {
		p.InvalidateCSR()
	}
}
