package baselines

import (
	"ndsnn/internal/core"
	"ndsnn/internal/data"
	"ndsnn/internal/layers"
	"ndsnn/internal/opt"
	"ndsnn/internal/rng"
	"ndsnn/internal/snn"
	"ndsnn/internal/train"
)

// DSTConfig configures the constant-sparsity dynamic sparse trainers
// (SET-SNN and RigL-SNN): the model is initialized at the target sparsity
// and every ΔT steps drops a cosine-annealed fraction of the smallest
// active weights and regrows exactly as many — randomly for SET, by
// gradient magnitude for RigL — so sparsity never changes.
type DSTConfig struct {
	// Sparsity is the (constant) global sparsity.
	Sparsity float64
	// DeltaT is the mask-update period in optimizer steps.
	DeltaT int
	// DeathRate0/DeathRateMin parametrize the cosine-annealed update
	// fraction, as in the RigL reference implementation.
	DeathRate0, DeathRateMin float64
	// RampFraction is the portion of training over which the death rate
	// anneals; StopFraction freezes topology afterwards.
	RampFraction, StopFraction float64
	// Distribution is "erk" (reference default) or "uniform".
	Distribution string
}

// WithDefaults fills unset fields with the reference defaults.
func (c DSTConfig) WithDefaults() DSTConfig {
	if c.Sparsity == 0 {
		c.Sparsity = 0.9
	}
	if c.DeltaT == 0 {
		c.DeltaT = 8
	}
	if c.DeathRate0 == 0 {
		c.DeathRate0 = 0.5
	}
	if c.DeathRateMin == 0 {
		c.DeathRateMin = 0.05
	}
	if c.RampFraction == 0 {
		c.RampFraction = 0.75
	}
	if c.StopFraction == 0 {
		c.StopFraction = 0.9
	}
	if c.Distribution == "" {
		c.Distribution = "erk"
	}
	return c
}

// TrainSET trains with SET-SNN (random regrowth).
func TrainSET(net *snn.Network, ds *data.Dataset, common train.Common, cfg DSTConfig) (*train.Result, error) {
	return trainDST(net, ds, common, cfg, core.GrowRandom, "SET")
}

// TrainRigL trains with RigL-SNN (gradient regrowth).
func TrainRigL(net *snn.Network, ds *data.Dataset, common train.Common, cfg DSTConfig) (*train.Result, error) {
	return trainDST(net, ds, common, cfg, core.GrowByGradient, "RigL")
}

func trainDST(net *snn.Network, ds *data.Dataset, common train.Common, cfg DSTConfig, grow core.GrowCriterion, label string) (*train.Result, error) {
	common = common.WithDefaults()
	cfg = cfg.WithDefaults()
	r := rng.New(common.Seed)
	params := layers.PrunableParams(net.Params())
	shapes := core.ShapesOf(params)
	densities := core.Densities(shapes, 1-cfg.Sparsity, cfg.Distribution)
	core.InitMasks(params, densities, r.Split())
	thetas := make([]float64, len(params))
	for i, d := range densities {
		thetas[i] = 1 - d
	}

	sgd := opt.NewSGD(common.LR, common.Momentum, common.WeightDecay)
	loop := &train.Loop{
		Net: net, Dataset: ds, Opt: sgd,
		Schedule:   opt.CosineLR{Base: common.LR, Min: common.LRMin, Total: common.Epochs},
		BatchSize:  common.BatchSize,
		Epochs:     common.Epochs,
		MaxBatches: common.MaxBatches,
		Rng:        r.Split(),
	}
	totalSteps := common.Epochs * loop.StepsPerEpoch()
	rampSteps := int(cfg.RampFraction * float64(totalSteps))
	stopStep := int(cfg.StopFraction * float64(totalSteps))
	rewirer := &core.Rewirer{
		Params: params,
		// Initial == Final: the population is constant, only rewired.
		Schedule:  &core.SparsitySchedule{Initial: thetas, Final: thetas, T0: 0, RampSteps: rampSteps},
		Death:     core.DeathRate{D0: cfg.DeathRate0, DMin: cfg.DeathRateMin, T0: 0, RampSteps: rampSteps},
		Criterion: grow,
		Opt:       sgd,
		Rng:       r.Split(),
	}
	core.ArmSparseCompute(loop, params, grow, cfg.DeltaT, stopStep)
	loop.Hooks.OnStep = func(step int) {
		if cfg.DeltaT > 0 && step%cfg.DeltaT == 0 && step < stopStep {
			rewirer.Apply(step)
		}
	}
	history, err := loop.Run()
	if err != nil {
		return nil, err
	}
	return &train.Result{
		History:       history,
		TestAcc:       train.Evaluate(net, ds, &ds.Test, common.EvalBatch),
		FinalSparsity: layers.GlobalSparsity(params),
		Trajectory:    train.BuildTrajectory(label, history),
	}, nil
}
