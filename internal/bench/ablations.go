package bench

import (
	"fmt"
	"io"
)

// AblationPoint is one variant's outcome in a design-choice study.
type AblationPoint struct {
	Variant string
	Acc     float64
	// MeanTrainSparsity contextualizes cost-side effects.
	MeanTrainSparsity float64
}

// AblationResult is one study: a named axis and its variants.
type AblationResult struct {
	Name   string
	Points []AblationPoint
}

// ablationBase is the shared configuration all studies perturb.
func ablationBase(seed uint64) Spec {
	return Spec{
		Method: MethodNDSNN, Arch: "vgg16", Dataset: CIFAR10,
		Sparsity: 0.95, InitialSparsity: 0.6, Seed: seed,
	}
}

func runVariants(s Scale, name string, variants []struct {
	label string
	mod   func(*Spec)
}, seed uint64, progress Progress) (*AblationResult, error) {
	dataset := s.Dataset(CIFAR10, 1000+seed)
	out := &AblationResult{Name: name}
	for _, v := range variants {
		spec := ablationBase(seed)
		v.mod(&spec)
		res, err := Run(s, spec, dataset)
		if err != nil {
			return nil, fmt.Errorf("ablation %s/%s: %w", name, v.label, err)
		}
		p := AblationPoint{Variant: v.label, Acc: res.TestAcc, MeanTrainSparsity: res.Trajectory.MeanSparsity()}
		out.Points = append(out.Points, p)
		report(progress, "ablation %s %-10s: acc=%.4f meanSparsity=%.3f", name, v.label, p.Acc, p.MeanTrainSparsity)
	}
	return out, nil
}

// RunAblationGrowCriterion compares gradient vs random regrowth (A1).
func RunAblationGrowCriterion(s Scale, seed uint64, progress Progress) (*AblationResult, error) {
	return runVariants(s, "grow-criterion", []struct {
		label string
		mod   func(*Spec)
	}{
		{"gradient", func(sp *Spec) { sp.Grow = "gradient" }},
		{"random", func(sp *Spec) { sp.Grow = "random" }},
	}, seed, progress)
}

// RunAblationScheduleShape compares cubic vs linear vs step ramps (A2).
func RunAblationScheduleShape(s Scale, seed uint64, progress Progress) (*AblationResult, error) {
	return runVariants(s, "schedule-shape", []struct {
		label string
		mod   func(*Spec)
	}{
		{"cubic", func(sp *Spec) { sp.Shape = "cubic" }},
		{"linear", func(sp *Spec) { sp.Shape = "linear" }},
		{"step", func(sp *Spec) { sp.Shape = "step" }},
	}, seed, progress)
}

// RunAblationLayerAllocation compares ERK vs uniform densities (A3).
func RunAblationLayerAllocation(s Scale, seed uint64, progress Progress) (*AblationResult, error) {
	return runVariants(s, "layer-allocation", []struct {
		label string
		mod   func(*Spec)
	}{
		{"erk", func(sp *Spec) { sp.Distribution = "erk" }},
		{"uniform", func(sp *Spec) { sp.Distribution = "uniform" }},
	}, seed, progress)
}

// RunAblationSurrogate compares surrogate gradients (A4).
func RunAblationSurrogate(s Scale, seed uint64, progress Progress) (*AblationResult, error) {
	return runVariants(s, "surrogate", []struct {
		label string
		mod   func(*Spec)
	}{
		{"atan", func(sp *Spec) { sp.Surrogate = "atan" }},
		{"rect", func(sp *Spec) { sp.Surrogate = "rect" }},
		{"sigmoid", func(sp *Spec) { sp.Surrogate = "sigmoid" }},
	}, seed, progress)
}

// RunAblationUpdateFrequency sweeps the mask-update period ΔT (A5).
func RunAblationUpdateFrequency(s Scale, seed uint64, progress Progress) (*AblationResult, error) {
	var variants []struct {
		label string
		mod   func(*Spec)
	}
	for _, dt := range []int{2, 4, 8, 16} {
		dt := dt
		variants = append(variants, struct {
			label string
			mod   func(*Spec)
		}{fmt.Sprintf("dT=%d", dt), func(sp *Spec) { sp.DeltaT = dt }})
	}
	return runVariants(s, "update-frequency", variants, seed, progress)
}

// PrintAblation renders one study.
func PrintAblation(w io.Writer, r *AblationResult) {
	fmt.Fprintf(w, "\n=== Ablation: %s (NDSNN vgg16/cifar10 proxy @95%%) ===\n", r.Name)
	fmt.Fprintf(w, "%-12s %8s %18s\n", "variant", "acc(%)", "meanTrainSparsity")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%-12s %8.2f %18.3f\n", p.Variant, p.Acc*100, p.MeanTrainSparsity)
	}
}
