package bench

import (
	"bytes"
	"ndsnn/internal/metrics"
	"strings"
	"testing"
)

func TestScaleByName(t *testing.T) {
	if ScaleByName("unit").Name != "unit" {
		t.Fatal("unit scale lookup failed")
	}
	if ScaleByName("paper").Name != "paper" {
		t.Fatal("paper scale lookup failed")
	}
	if ScaleByName("anything").Name != "bench" {
		t.Fatal("default scale should be bench")
	}
}

func TestScaleDatasetGeometry(t *testing.T) {
	for _, key := range []string{CIFAR10, CIFAR100, TinyImageNet} {
		ds := ScaleUnit.Dataset(key, 3)
		cfg := ScaleUnit.DatasetCfg[key]
		if ds.Config.Classes != cfg.Classes || ds.Config.H != cfg.Pixels {
			t.Fatalf("%s: got %d classes %dpx, want %d/%d", key, ds.Config.Classes, ds.Config.H, cfg.Classes, cfg.Pixels)
		}
		if ds.Train.N() != cfg.TrainN || ds.Test.N() != cfg.TestN {
			t.Fatalf("%s: split sizes %d/%d", key, ds.Train.N(), ds.Test.N())
		}
	}
}

func TestScaleDatasetUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown dataset did not panic")
		}
	}()
	ScaleUnit.Dataset("imagenet21k", 1)
}

func TestEpochsForTinyImageNetAtPaperScale(t *testing.T) {
	if got := ScalePaper.EpochsFor(TinyImageNet); got != 100 {
		t.Fatalf("paper tinyimagenet epochs = %d, want 100", got)
	}
	if got := ScalePaper.EpochsFor(CIFAR10); got != 300 {
		t.Fatalf("paper cifar10 epochs = %d, want 300", got)
	}
	if got := ScaleUnit.EpochsFor(TinyImageNet); got != ScaleUnit.Epochs {
		t.Fatal("unit scale must not special-case tinyimagenet")
	}
}

func TestInitialSparsityRule(t *testing.T) {
	cases := []struct{ final, want float64 }{
		{0.90, 0.65},
		{0.95, 0.70},
		{0.99, 0.74},
		{0.60, 0.50},
		{0.40, 0.20}, // low target: θi = θf/2 so the population still shrinks
	}
	for _, c := range cases {
		if got := InitialSparsityFor(c.final); got != c.want {
			t.Fatalf("InitialSparsityFor(%v) = %v, want %v", c.final, got, c.want)
		}
	}
}

func TestRunEveryMethodAtUnitScale(t *testing.T) {
	ds := ScaleUnit.Dataset(CIFAR10, 5)
	for _, method := range append([]string{MethodADMM}, Methods...) {
		spec := Spec{Method: method, Arch: "lenet5", Dataset: CIFAR10, Sparsity: 0.8, Seed: 3}
		res, err := Run(ScaleUnit, spec, ds)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if res.TestAcc < 0 || res.TestAcc > 1 {
			t.Fatalf("%s: accuracy %v", method, res.TestAcc)
		}
		if method != MethodDense && (res.FinalSparsity < 0.7 || res.FinalSparsity > 0.9) {
			t.Fatalf("%s: final sparsity %v, want ~0.8", method, res.FinalSparsity)
		}
	}
}

func TestRunUnknownMethodErrors(t *testing.T) {
	if _, err := Run(ScaleUnit, Spec{Method: "magic", Arch: "lenet5", Dataset: CIFAR10}, nil); err == nil {
		t.Fatal("unknown method not rejected")
	}
}

func TestRunBuildsDatasetWhenNil(t *testing.T) {
	res, err := Run(ScaleUnit, Spec{Method: MethodDense, Arch: "lenet5", Dataset: CIFAR10, Seed: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != ScaleUnit.Epochs {
		t.Fatalf("history = %d epochs", len(res.History))
	}
}

func TestRunSpecOverrides(t *testing.T) {
	ds := ScaleUnit.Dataset(CIFAR10, 5)
	res, err := Run(ScaleUnit, Spec{
		Method: MethodNDSNN, Arch: "lenet5", Dataset: CIFAR10,
		Sparsity: 0.9, InitialSparsity: 0.5, Timesteps: 3,
		Surrogate: "rect", Shape: "linear", Distribution: "uniform", Grow: "random", DeltaT: 2,
		Seed: 4,
	}, ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalSparsity < 0.88 || res.FinalSparsity > 0.92 {
		t.Fatalf("final sparsity = %v", res.FinalSparsity)
	}
}

func TestTable1UnitGrid(t *testing.T) {
	cfg := Table1Config{
		Scale:      ScaleUnit,
		Archs:      []string{"lenet5"},
		Datasets:   []string{CIFAR10},
		Sparsities: []float64{0.8, 0.9},
		Methods:    []string{MethodDense, MethodSET, MethodNDSNN},
		Seed:       3,
	}
	var lines []string
	cells, err := RunTable1(cfg, func(l string) { lines = append(lines, l) })
	if err != nil {
		t.Fatal(err)
	}
	// dense once + 2 methods × 2 sparsities = 5 cells.
	if len(cells) != 5 {
		t.Fatalf("got %d cells, want 5", len(cells))
	}
	if len(lines) != 5 {
		t.Fatalf("progress lines = %d", len(lines))
	}
	var buf bytes.Buffer
	PrintTable1(&buf, cells, cfg.Sparsities)
	out := buf.String()
	for _, want := range []string{"lenet5 / cifar10", "dense", "set", "ndsnn", "80%", "90%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestTable2Unit(t *testing.T) {
	r, err := RunTable2(ScaleUnit, []float64{0.5}, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	var buf bytes.Buffer
	PrintTable2(&buf, r)
	if !strings.Contains(buf.String(), "ADMM acc loss") {
		t.Fatalf("Table2 output:\n%s", buf.String())
	}
}

func TestTable3Unit(t *testing.T) {
	cells, err := RunTable3(ScaleUnit, []string{"lenet5"}, []string{CIFAR10},
		[]float64{0.9}, []float64{0.5, 0.7}, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("cells = %d", len(cells))
	}
	var buf bytes.Buffer
	PrintTable3(&buf, cells)
	if !strings.Contains(buf.String(), "Table III") {
		t.Fatal("Table3 header missing")
	}
}

func TestTable3SkipsInvalidInitials(t *testing.T) {
	cells, err := RunTable3(ScaleUnit, []string{"lenet5"}, []string{CIFAR10},
		[]float64{0.6}, []float64{0.7}, 3, nil) // θi > target → skipped
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 0 {
		t.Fatalf("cells = %d, want 0", len(cells))
	}
}

func TestFig1Unit(t *testing.T) {
	r, err := RunFig1(ScaleUnit, "lenet5", 0.9, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Trajectories) != 3 {
		t.Fatalf("trajectories = %d", len(r.Trajectories))
	}
	// The defining shape: NDSNN's mean training sparsity far exceeds both
	// prune-from-dense regimes.
	var admm, lth, nd float64
	for _, tr := range r.Trajectories {
		switch tr.Label {
		case "ADMM":
			admm = tr.MeanSparsity()
		case "LTH":
			lth = tr.MeanSparsity()
		case "NDSNN":
			nd = tr.MeanSparsity()
		}
	}
	if !(nd > lth && nd > admm) {
		t.Fatalf("mean sparsities admm=%v lth=%v ndsnn=%v: NDSNN must be highest", admm, lth, nd)
	}
	var buf bytes.Buffer
	PrintFig1(&buf, r)
	if !strings.Contains(buf.String(), "Fig.1") {
		t.Fatal("Fig1 chart missing")
	}
}

func TestTrainingCostOrderingUnit(t *testing.T) {
	// The Fig. 5 shape on a single cheap pair: NDSNN's spike-rate-weighted
	// training cost must undercut both the dense baseline and LTH (which
	// pays for extra rounds of mostly-dense training).
	s := ScaleUnit
	ds := s.Dataset(CIFAR10, 1003)
	dense, err := Run(s, Spec{Method: MethodDense, Arch: "lenet5", Dataset: CIFAR10, Seed: 3}, ds)
	if err != nil {
		t.Fatal(err)
	}
	lth, err := Run(s, Spec{Method: MethodLTH, Arch: "lenet5", Dataset: CIFAR10, Sparsity: 0.9, Seed: 3}, ds)
	if err != nil {
		t.Fatal(err)
	}
	nd, err := Run(s, Spec{Method: MethodNDSNN, Arch: "lenet5", Dataset: CIFAR10, Sparsity: 0.9, Seed: 3}, ds)
	if err != nil {
		t.Fatal(err)
	}
	lthCost, err := metrics.RelativeTrainingCost(lth.Trajectory, dense.Trajectory)
	if err != nil {
		t.Fatal(err)
	}
	ndCost, err := metrics.RelativeTrainingCost(nd.Trajectory, dense.Trajectory)
	if err != nil {
		t.Fatal(err)
	}
	if !(ndCost < lthCost) {
		t.Fatalf("NDSNN cost %.3f not below LTH cost %.3f", ndCost, lthCost)
	}
	if ndCost >= 1 {
		t.Fatalf("NDSNN cost %.3f not below dense", ndCost)
	}
}

func TestMemoryReport(t *testing.T) {
	r := RunMemory("vgg16", 10, 32, 5, []float64{0.9, 0.95, 0.99})
	if r.Params < 14_000_000 {
		t.Fatalf("paper-width VGG-16 prunable params = %d", r.Params)
	}
	prev := r.DenseMiB
	for _, row := range r.Rows {
		if row.TrainMiB >= prev {
			t.Fatalf("training footprint not decreasing: %v at θ=%v", row.TrainMiB, row.Sparsity)
		}
		prev = row.TrainMiB
		if row.InferenceMiB["HICANN"] >= row.InferenceMiB["Loihi"] {
			t.Fatal("4-bit platform should be smaller than 8-bit")
		}
	}
	var buf bytes.Buffer
	PrintMemory(&buf, r)
	if !strings.Contains(buf.String(), "Loihi") {
		t.Fatal("memory table missing platforms")
	}
}

func TestAblationGrowCriterionUnit(t *testing.T) {
	r, err := RunAblationGrowCriterion(ScaleUnit, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 2 {
		t.Fatalf("points = %d", len(r.Points))
	}
	var buf bytes.Buffer
	PrintAblation(&buf, r)
	if !strings.Contains(buf.String(), "grow-criterion") {
		t.Fatal("ablation output missing")
	}
}
