package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"ndsnn/internal/layers"
	"ndsnn/internal/rng"
	"ndsnn/internal/snn"
	"ndsnn/internal/sparse"
	"ndsnn/internal/tensor"
)

// Event-driven forward benchmark: the measured counterpart of the dual-
// sparsity argument. PR 1's sparse-gemm benchmark showed forward cost
// scaling with weight density; this one shows it additionally scaling with
// spike occupancy — dense vs weight-only CSR vs the event-driven kernel vs
// the batched-timestep kernel, on the same VGG-16-shaped layer, across
// realistic SNN firing rates. Recorded as BENCH_event_driven.json.

// EventDrivenCell is one (spike rate, weight sparsity) measurement.
type EventDrivenCell struct {
	SpikeRate      float64 `json:"spike_rate"`
	WeightSparsity float64 `json:"weight_sparsity"`
	NNZWeights     int     `json:"nnz_weights"`
	// SpikeEvents is the number of non-zeros in the im2col spike matrix.
	SpikeEvents int `json:"spike_events"`
	// Forward wall-clock per timestep, nanoseconds, median of Iters runs.
	DenseNs int64 `json:"dense_ns"`
	// CSRNs is PR 1's weight-only CSR forward.
	CSRNs int64 `json:"csr_ns"`
	// EventNs is the dual-sparse event-driven forward.
	EventNs int64 `json:"event_ns"`
	// BatchedNs is the per-timestep cost of the batched-timestep kernel
	// (one row-pointer traversal for all Timesteps passes).
	BatchedNs int64 `json:"batched_ns"`
	// SpeedupVsCSR is the headline dual-sparsity gain: event-driven over
	// weight-only CSR. SpeedupVsDense compounds both sparsities.
	SpeedupVsCSR   float64 `json:"speedup_vs_csr"`
	SpeedupVsDense float64 `json:"speedup_vs_dense"`
	BatchedVsEvent float64 `json:"batched_vs_event"`
	// MaxAbsDiff is the largest |dense−event| over the forward outputs,
	// including the batched path — the equivalence check riding along.
	MaxAbsDiff float64 `json:"max_abs_diff"`
}

// EventDrivenNetStats is the network-level measured-occupancy rollup: a
// small conv→LIF stack run through snn.Network with the default gates, so
// the JSON records what the engine actually skipped, not just kernel
// microbenchmarks.
type EventDrivenNetStats struct {
	// LIFSpikeRate is the firing probability measured by the LIF layers.
	LIFSpikeRate float64 `json:"lif_spike_rate"`
	// Occupancy is the spike occupancy measured by the conv event path over
	// its im2col expansions (what forward work scales with).
	Occupancy float64 `json:"occupancy"`
	// EventCoverage is the fraction of sample-timesteps routed through an
	// event-driven kernel.
	EventCoverage float64 `json:"event_coverage"`
	// ColumnOccupancy is the fraction of im2col columns with ≥1 spike.
	ColumnOccupancy float64 `json:"column_occupancy"`
}

// EventDrivenReport is the recorded artifact.
type EventDrivenReport struct {
	Layer     string `json:"layer"`
	Rows      int    `json:"rows"`
	Cols      int    `json:"cols"`
	Patch     int    `json:"patch"`
	Timesteps int    `json:"timesteps"`
	Iters     int    `json:"iters"`
	// CSRCrossover is the calibrated dense/CSR crossover density for this
	// layer shape (the adaptive replacement for layers.CSRMaxDensity's 0.5).
	CSRCrossover float64              `json:"csr_crossover"`
	Cells        []EventDrivenCell    `json:"cells"`
	Network      *EventDrivenNetStats `json:"network"`
}

// RunEventDriven measures dense, weight-only CSR, event-driven and
// batched-timestep forwards at the given (spikeRate, weightSparsity) grid on
// a [512, 4608]×[4608, 16] layer (VGG-16 deep stage on a 4×4 map, the same
// shape as the sparse-gemm benchmark), taking the median of iters timed runs
// per path, then rolls up measured occupancy from a small spiking network.
func RunEventDriven(spikeRates, sparsities []float64, iters, timesteps int, seed uint64, progress Progress) *EventDrivenReport {
	const (
		rows  = 512
		cols  = 4608
		patch = 16
	)
	rep := &EventDrivenReport{
		Layer: "vgg16-conv512 (512 filters × 512·3·3 patch, 4×4 map)",
		Rows:  rows, Cols: cols, Patch: patch, Timesteps: timesteps, Iters: iters,
		CSRCrossover: layers.CSRCrossoverDensity(rows, cols, patch),
	}
	for _, sp := range sparsities {
		r := rng.New(seed + uint64(1000*sp))
		w := tensor.New(rows, cols)
		mask := tensor.New(rows, cols)
		for i := range w.Data {
			if r.Float64() >= sp {
				mask.Data[i] = 1
				w.Data[i] = r.NormFloat32()
			}
		}
		c := sparse.EncodeCSRWithMask(w, mask)
		csc := sparse.NewCSCFromCSR(c)
		for _, rate := range spikeRates {
			// One spike raster per timestep: same rate, different patterns,
			// exactly as T unrolled forward passes would see.
			bs := make([]*tensor.Tensor, timesteps)
			evs := make([]*sparse.Events, timesteps)
			for t := 0; t < timesteps; t++ {
				b := tensor.New(cols, patch)
				for i := range b.Data {
					if r.Float64() < rate {
						b.Data[i] = 1
					}
				}
				bs[t] = b
				ev, ok := sparse.EncodeEvents(b)
				if !ok {
					panic("bench: spike raster not binary")
				}
				evs[t] = ev
			}
			yD := tensor.New(rows, patch)
			yC := tensor.New(rows, patch)
			yE := tensor.New(rows, patch)
			yF := tensor.New(rows, timesteps*patch)

			dense := func() { tensor.MatMulSerialInto(yD, w, bs[0], false) }
			csr := func() { sparse.CSRMatMulSerialInto(yC, c, bs[0], false) }
			event := func() { sparse.CSCMatMulEventsSerialInto(yE, csc, evs[0], false) }
			// The batched path pays for the pattern merge inside the timed
			// region: one weight traversal serves all T timesteps.
			batched := func() {
				sparse.CSCMatMulEventsSerialInto(yF, csc, sparse.FuseTimesteps(evs), false)
			}

			cell := EventDrivenCell{
				SpikeRate:      rate,
				WeightSparsity: sp,
				NNZWeights:     c.NNZ(),
				SpikeEvents:    evs[0].NNZ(),
				DenseNs:        medianNs(dense, iters),
				CSRNs:          medianNs(csr, iters),
				EventNs:        medianNs(event, iters),
				BatchedNs:      medianNs(batched, iters) / int64(timesteps),
			}
			if cell.EventNs > 0 {
				cell.SpeedupVsCSR = float64(cell.CSRNs) / float64(cell.EventNs)
				cell.SpeedupVsDense = float64(cell.DenseNs) / float64(cell.EventNs)
			}
			if cell.BatchedNs > 0 {
				cell.BatchedVsEvent = float64(cell.EventNs) / float64(cell.BatchedNs)
			}
			cell.MaxAbsDiff = maxAbsDiff32(yD.Data, yE.Data)
			// Timestep 0 of the fused output must match the per-timestep
			// event output exactly.
			for r := 0; r < rows; r++ {
				if d := maxAbsDiff32(yE.Data[r*patch:(r+1)*patch], yF.Data[r*timesteps*patch:r*timesteps*patch+patch]); d > cell.MaxAbsDiff {
					cell.MaxAbsDiff = d
				}
			}
			rep.Cells = append(rep.Cells, cell)
			report(progress, "event-driven θ=%.2f rate=%.2f: dense=%s csr=%s event=%s batched=%s (event vs csr %.1fx) maxdiff=%.2g",
				sp, rate, time.Duration(cell.DenseNs), time.Duration(cell.CSRNs),
				time.Duration(cell.EventNs), time.Duration(cell.BatchedNs), cell.SpeedupVsCSR, cell.MaxAbsDiff)
		}
	}
	rep.Network = measureNetworkOccupancy(seed, timesteps)
	report(progress, "network rollup: lif-rate=%.3f occupancy=%.3f coverage=%.2f col-occupancy=%.3f",
		rep.Network.LIFSpikeRate, rep.Network.Occupancy, rep.Network.EventCoverage, rep.Network.ColumnOccupancy)
	return rep
}

// measureNetworkOccupancy runs a masked conv→LIF→conv→LIF→linear stack on
// analog input under the default CSR/event gates and returns the measured
// event-path statistics.
func measureNetworkOccupancy(seed uint64, timesteps int) *EventDrivenNetStats {
	r := rng.New(seed*13 + 5)
	c1 := layers.NewConv2d("b.c1", 3, 16, 3, 1, 1, false, r)
	c2 := layers.NewConv2d("b.c2", 16, 16, 3, 1, 1, false, r)
	fc := layers.NewLinear("b.fc", 16*8*8, 10, false, r)
	for _, p := range []*layers.Param{c1.Weight, c2.Weight, fc.Weight} {
		p.Mask = sparse.RandomMask(p.W.Shape(), 0.1, r)
		p.ApplyMask()
	}
	net := &snn.Network{
		Layers: []layers.Layer{
			c1, snn.DefaultNeuron().New(),
			c2, snn.DefaultNeuron().New(),
			layers.NewFlatten(), fc,
		},
		T: timesteps,
	}
	x := tensor.New(4, 3, 8, 8)
	for i := range x.Data {
		x.Data[i] = r.NormFloat32()
	}
	net.Forward(x, false)
	es := net.EventStats()
	stats := &EventDrivenNetStats{
		LIFSpikeRate:    net.SpikeRate(),
		Occupancy:       es.Occupancy(),
		EventCoverage:   es.EventCoverage(),
		ColumnOccupancy: es.ColumnOccupancy(),
	}
	for _, p := range []*layers.Param{c1.Weight, c2.Weight, fc.Weight} {
		p.InvalidateCSR()
	}
	return stats
}

// PrintEventDriven writes the report as indented JSON (the BENCH artifact
// format).
func PrintEventDriven(w io.Writer, r *EventDrivenReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("bench: encode event-driven report: %w", err)
	}
	return nil
}
