package bench

import (
	"fmt"
	"io"

	"ndsnn/internal/metrics"
	"ndsnn/internal/plot"
	"ndsnn/internal/train"
)

// Fig1Result carries the sparsity-vs-epoch trajectories of the three
// sparsification regimes (Fig. 1): train-prune-retrain (ADMM), iterative
// pruning (LTH) and NDSNN.
type Fig1Result struct {
	Arch, Dataset string
	Target        float64
	Trajectories  []*metrics.Trajectory
}

// RunFig1 trains the three regimes and records their sparsity trajectories.
func RunFig1(s Scale, arch string, target float64, seed uint64, progress Progress) (*Fig1Result, error) {
	dataset := s.Dataset(CIFAR10, 1000+seed)
	out := &Fig1Result{Arch: arch, Dataset: CIFAR10, Target: target}
	for _, method := range []string{MethodADMM, MethodLTH, MethodNDSNN} {
		res, err := Run(s, Spec{Method: method, Arch: arch, Dataset: CIFAR10, Sparsity: target, Seed: seed}, dataset)
		if err != nil {
			return nil, fmt.Errorf("fig1 %s: %w", method, err)
		}
		out.Trajectories = append(out.Trajectories, res.Trajectory)
		report(progress, "fig1 %s: %d epochs, mean training sparsity %.3f",
			method, len(res.History), res.Trajectory.MeanSparsity())
	}
	return out, nil
}

// PrintFig1 renders the sparsity-vs-epoch chart.
func PrintFig1(w io.Writer, r *Fig1Result) {
	chart := &plot.LineChart{
		Title:  fmt.Sprintf("Fig.1 — sparsity vs training epoch (%s/%s, target %.0f%%)", r.Arch, r.Dataset, r.Target*100),
		XLabel: "epoch", YLabel: "model sparsity",
		Width: 64, Height: 16, YMin: 0, YMax: 1,
	}
	for _, tr := range r.Trajectories {
		ys := tr.Sparsities()
		xs := make([]float64, len(ys))
		for i := range xs {
			xs[i] = float64(i)
		}
		chart.Series = append(chart.Series, plot.Series{Label: tr.Label, X: xs, Y: ys})
	}
	fmt.Fprintln(w, chart.Render())
	for _, tr := range r.Trajectories {
		fmt.Fprintf(w, "  mean training sparsity %-6s = %.3f over %d epochs\n", tr.Label, tr.MeanSparsity(), len(tr.Points))
	}
}

// Fig4Result carries the small-timestep (T=2) NDSNN-vs-LTH comparison.
type Fig4Result struct {
	Pairs      []Fig4Pair
	Sparsities []float64
}

// Fig4Pair is one (arch, dataset) panel.
type Fig4Pair struct {
	Arch, Dataset string
	LTH, NDSNN    []float64 // accuracy per sparsity
}

// RunFig4 reproduces Fig. 4: NDSNN vs LTH at timestep T=2 across
// sparsities on the four (model, dataset) panels.
func RunFig4(s Scale, sparsities []float64, seed uint64, progress Progress) (*Fig4Result, error) {
	out := &Fig4Result{Sparsities: sparsities}
	for _, pair := range []struct{ arch, ds string }{
		{"vgg16", CIFAR10}, {"vgg16", CIFAR100}, {"resnet19", CIFAR10}, {"resnet19", CIFAR100},
	} {
		dataset := s.Dataset(pair.ds, 1000+seed)
		p := Fig4Pair{Arch: pair.arch, Dataset: pair.ds}
		for _, sp := range sparsities {
			lth, err := Run(s, Spec{Method: MethodLTH, Arch: pair.arch, Dataset: pair.ds, Sparsity: sp, Timesteps: 2, Seed: seed}, dataset)
			if err != nil {
				return nil, err
			}
			nd, err := Run(s, Spec{Method: MethodNDSNN, Arch: pair.arch, Dataset: pair.ds, Sparsity: sp, Timesteps: 2, Seed: seed}, dataset)
			if err != nil {
				return nil, err
			}
			p.LTH = append(p.LTH, lth.TestAcc)
			p.NDSNN = append(p.NDSNN, nd.TestAcc)
			report(progress, "fig4 %s/%s θ=%.2f: lth=%.4f ndsnn=%.4f", pair.arch, pair.ds, sp, lth.TestAcc, nd.TestAcc)
		}
		out.Pairs = append(out.Pairs, p)
	}
	return out, nil
}

// PrintFig4 renders the four panels.
func PrintFig4(w io.Writer, r *Fig4Result) {
	for _, p := range r.Pairs {
		chart := &plot.LineChart{
			Title:  fmt.Sprintf("Fig.4 — accuracy vs sparsity at T=2 (%s/%s)", p.Arch, p.Dataset),
			XLabel: "sparsity", YLabel: "test accuracy",
			Width: 48, Height: 12,
			Series: []plot.Series{
				{Label: "NDSNN", X: r.Sparsities, Y: p.NDSNN},
				{Label: "LTH", X: r.Sparsities, Y: p.LTH},
			},
		}
		fmt.Fprintln(w, chart.Render())
	}
}

// Fig5Entry is one (arch, dataset) group of normalized training costs.
type Fig5Entry struct {
	Arch, Dataset string
	// Costs are percentages of the dense run's training cost.
	DenseCost, LTHCost, NDSNNCost float64
}

// Fig5Result carries the training-cost comparison.
type Fig5Result struct {
	Target  float64
	Entries []Fig5Entry
}

// RunFig5 reproduces Fig. 5: normalized training cost (spike-rate ×
// density accounting of Sec. IV-C) of Dense, LTH and NDSNN.
func RunFig5(s Scale, target float64, seed uint64, progress Progress) (*Fig5Result, error) {
	out := &Fig5Result{Target: target}
	for _, pair := range []struct{ arch, ds string }{
		{"vgg16", CIFAR10}, {"resnet19", CIFAR10}, {"vgg16", CIFAR100}, {"resnet19", CIFAR100},
	} {
		dataset := s.Dataset(pair.ds, 1000+seed)
		runOne := func(method string) (*train.Result, error) {
			return Run(s, Spec{Method: method, Arch: pair.arch, Dataset: pair.ds, Sparsity: target, Seed: seed}, dataset)
		}
		dense, err := runOne(MethodDense)
		if err != nil {
			return nil, err
		}
		lth, err := runOne(MethodLTH)
		if err != nil {
			return nil, err
		}
		nd, err := runOne(MethodNDSNN)
		if err != nil {
			return nil, err
		}
		lthCost, err := metrics.RelativeTrainingCost(lth.Trajectory, dense.Trajectory)
		if err != nil {
			return nil, err
		}
		ndCost, err := metrics.RelativeTrainingCost(nd.Trajectory, dense.Trajectory)
		if err != nil {
			return nil, err
		}
		e := Fig5Entry{
			Arch: pair.arch, Dataset: pair.ds,
			DenseCost: 100, LTHCost: lthCost * 100, NDSNNCost: ndCost * 100,
		}
		out.Entries = append(out.Entries, e)
		report(progress, "fig5 %s/%s: dense=100%% lth=%.1f%% ndsnn=%.1f%% (ndsnn/lth=%.1f%%)",
			pair.arch, pair.ds, e.LTHCost, e.NDSNNCost, 100*e.NDSNNCost/e.LTHCost)
	}
	return out, nil
}

// PrintFig5 renders the grouped bars.
func PrintFig5(w io.Writer, r *Fig5Result) {
	chart := &plot.BarChart{
		Title: fmt.Sprintf("Fig.5 — normalized training cost (dense = 100%%, target sparsity %.0f%%)", r.Target*100),
		Unit:  "%", Width: 40,
	}
	for _, e := range r.Entries {
		chart.Groups = append(chart.Groups, plot.BarGroup{
			Label: fmt.Sprintf("%s / %s", e.Arch, e.Dataset),
			Bars: []plot.Bar{
				{Label: "Dense", Value: e.DenseCost},
				{Label: "LTH", Value: e.LTHCost},
				{Label: "NDSNN", Value: e.NDSNNCost},
			},
		})
	}
	fmt.Fprintln(w, chart.Render())
	for _, e := range r.Entries {
		fmt.Fprintf(w, "  %s/%s: NDSNN cost = %.1f%% of dense, %.1f%% of LTH\n",
			e.Arch, e.Dataset, e.NDSNNCost, 100*e.NDSNNCost/e.LTHCost)
	}
}
