package bench

import (
	"fmt"
	"io"

	"ndsnn/internal/models"
	"ndsnn/internal/snn"
	"ndsnn/internal/sparse"
)

// MemoryRow is one sparsity point of the Section III-D footprint analysis.
type MemoryRow struct {
	Sparsity float64
	// TrainMiB is the FP32 training footprint (weights + t gradient
	// timesteps + CSR indices) in MiB.
	TrainMiB float64
	// InferenceMiB maps platform name → deployed footprint in MiB.
	InferenceMiB map[string]float64
}

// MemoryReport carries the analysis for one architecture.
type MemoryReport struct {
	Arch      string
	Params    int
	Timesteps int
	DenseMiB  float64
	Rows      []MemoryRow
}

// RunMemory evaluates the Section III-D memory model on a real parameter
// census of the paper-width architecture (no training involved).
func RunMemory(arch string, classes, pixels, timesteps int, sparsities []float64) *MemoryReport {
	net := models.Build(models.Config{
		Arch: arch, Classes: classes, InC: 3, InH: pixels, InW: pixels,
		Timesteps: timesteps, Neuron: snn.DefaultNeuron(),
		Profile: models.ProfilePaper, Seed: 1,
	})
	n := models.PrunableCount(net)
	var filters []int
	for _, c := range models.ParamCensus(net) {
		if c.Prunable && len(c.Shape) > 0 {
			filters = append(filters, c.Shape[0])
		}
	}
	rep := &MemoryReport{
		Arch: arch, Params: n, Timesteps: timesteps,
		DenseMiB: sparse.BitsToMiB(sparse.DenseFootprintBits(n, sparse.TrainingBits) * float64(1+timesteps)),
	}
	for _, sp := range sparsities {
		row := MemoryRow{
			Sparsity: sp,
			TrainMiB: sparse.BitsToMiB(sparse.TrainingFootprintExactBits(
				n, filters, sp, timesteps, sparse.TrainingBits, sparse.DefaultIndexBits)),
			InferenceMiB: map[string]float64{},
		}
		for _, p := range sparse.Platforms {
			row.InferenceMiB[p.Name] = sparse.BitsToMiB(sparse.InferenceFootprintBits(
				n, sp, p.WeightBits, sparse.DefaultIndexBits))
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep
}

// PrintMemory renders the footprint table.
func PrintMemory(w io.Writer, r *MemoryReport) {
	fmt.Fprintf(w, "\n=== Sec. III-D memory footprint — %s (%d prunable weights, t=%d) ===\n", r.Arch, r.Params, r.Timesteps)
	fmt.Fprintf(w, "dense FP32 training footprint: %.1f MiB\n", r.DenseMiB)
	fmt.Fprintf(w, "%-9s %12s", "sparsity", "train(MiB)")
	for _, p := range sparse.Platforms {
		fmt.Fprintf(w, " %12s", p.Name+"(MiB)")
	}
	fmt.Fprintln(w)
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-9.2f %12.2f", row.Sparsity, row.TrainMiB)
		for _, p := range sparse.Platforms {
			fmt.Fprintf(w, " %12.3f", row.InferenceMiB[p.Name])
		}
		fmt.Fprintln(w)
	}
}
