package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ndsnn/internal/infer"
	"ndsnn/internal/models"
	"ndsnn/internal/obs"
	"ndsnn/internal/serve"
	"ndsnn/internal/snn"
	"ndsnn/internal/tensor"
)

// Observability benchmark: what does watching cost? The same NDSNN-trained
// model is served twice per engine under identical closed-loop load — once
// bare, once with the full telemetry stack attached (histograms, counters,
// per-stage engine timings, sampled traces) — and the p99/throughput deltas
// are the measured price of observation. The telemetry design budget is ≤1%
// added p99; the run errors if the measured overhead exceeds the gate (after
// noise-robust interleaved repetitions), making the budget a CI property
// rather than a comment. The telemetry-on cells also record the per-stage
// latency/SynOps breakdown the histograms exist to provide. Recorded as
// BENCH_observability.json.

// ObsOverheadGate is the accepted relative p99 inflation with telemetry on.
const ObsOverheadGate = 0.01

// obsReps is how many off/on measurement pairs are interleaved per cell.
// Interleaving (off,on,off,on,…) makes thermal/scheduler drift hit both arms
// equally; taking each arm's best-of keeps one preempted rep from deciding
// the overhead cell on noisy single-core CI hosts.
const obsReps = 3

// ObsStageCell is one engine stage's share of a traced pass.
type ObsStageCell struct {
	Stage string `json:"stage"`
	// MeanNs is the stage's mean wall-clock per traced pass; ShareSynOps its
	// fraction of the engine's total synaptic operations.
	MeanNs      float64 `json:"mean_ns"`
	P50Ns       int64   `json:"p50_ns"`
	ShareSynOps float64 `json:"share_synops"`
}

// ObsCell is one engine's off-vs-on measurement.
type ObsCell struct {
	Engine string `json:"engine"`
	// OffP99Ns/OnP99Ns are each arm's best-of-reps request p99.
	OffP99Ns int64 `json:"off_p99_ns"`
	OnP99Ns  int64 `json:"on_p99_ns"`
	// OffRPS/OnRPS are the matching throughputs.
	OffRPS float64 `json:"off_rps"`
	OnRPS  float64 `json:"on_rps"`
	// OverheadP99 is max(0, OnP99/OffP99 − 1): the relative p99 cost of
	// telemetry, gated ≤ ObsOverheadGate.
	OverheadP99 float64 `json:"overhead_p99"`
	// Mismatches counts served score vectors that differed between the
	// telemetry-on server and the serial reference. Must be 0: observation
	// must not perturb arithmetic.
	Mismatches int64 `json:"mismatches"`
	// Stages is the per-stage breakdown from the telemetry-on arm.
	Stages []ObsStageCell `json:"stages"`
}

// ObsReport is the recorded artifact.
type ObsReport struct {
	Arch     string    `json:"arch"`
	Sparsity float64   `json:"sparsity"`
	Samples  int       `json:"samples"`
	Gate     float64   `json:"gate"`
	Cells    []ObsCell `json:"cells"`
}

// RunObservability trains one NDSNN model and measures the serving-path cost
// of the telemetry stack for the float32 and int8 engines.
func RunObservability(s Scale, arch string, sparsity float64, concurrency, requests int, seed uint64, progress Progress) (*ObsReport, error) {
	ds := s.Dataset(CIFAR10, 2000+seed)
	net := models.Build(models.Config{
		Arch: arch, Classes: ds.Config.Classes,
		InC: ds.Config.C, InH: ds.Config.H, InW: ds.Config.W,
		Timesteps: s.Timesteps, Neuron: snn.DefaultNeuron(),
		Profile: s.Profile, Seed: seed*13 + 5,
	})
	spec := Spec{Method: MethodNDSNN, Arch: arch, Dataset: CIFAR10, Sparsity: sparsity, Seed: seed}
	if _, err := RunOn(s, spec, ds, net); err != nil {
		return nil, err
	}

	n := ds.Test.N()
	if n > 32 {
		n = 32
	}
	pix := ds.Config.C * ds.Config.H * ds.Config.W
	samples := make([]*tensor.Tensor, n)
	for i := range samples {
		samples[i] = tensor.FromSlice(ds.Test.Images[i*pix:(i+1)*pix], ds.Config.C, ds.Config.H, ds.Config.W)
	}

	rep := &ObsReport{Arch: arch, Sparsity: sparsity, Samples: n, Gate: ObsOverheadGate}
	for _, bits := range []int{0, 8} {
		engine := "float32"
		var eng *infer.Engine
		var err error
		if bits == 0 {
			eng, err = infer.Compile(net)
		} else {
			engine = "int8"
			eng, err = infer.CompileQuantized(net, bits)
		}
		if err != nil {
			return nil, err
		}
		ref, _ := serialReference(eng, samples)
		cell, err := runObsCell(net, bits, eng, engine, samples, ref, concurrency, requests)
		if err != nil {
			return nil, err
		}
		rep.Cells = append(rep.Cells, cell)
		report(progress, "observability %s: p99 off=%s on=%s overhead=%.2f%% (gate %.0f%%)",
			engine, time.Duration(cell.OffP99Ns), time.Duration(cell.OnP99Ns),
			100*cell.OverheadP99, 100*ObsOverheadGate)
	}

	for _, cell := range rep.Cells {
		if cell.Mismatches != 0 {
			return nil, fmt.Errorf("bench: %s serving with telemetry diverged from the serial engine on %d requests", cell.Engine, cell.Mismatches)
		}
		if cell.OverheadP99 > ObsOverheadGate {
			return nil, fmt.Errorf("bench: %s telemetry p99 overhead %.2f%% exceeds the %.0f%% gate",
				cell.Engine, 100*cell.OverheadP99, 100*ObsOverheadGate)
		}
		if len(cell.Stages) == 0 {
			return nil, fmt.Errorf("bench: %s telemetry-on cell recorded no per-stage breakdown", cell.Engine)
		}
	}
	return rep, nil
}

// runObsCell interleaves telemetry-off and telemetry-on load runs over the
// same engine plan and reduces each arm to its best (lowest-noise) rep. The
// on-arm compiles a fresh engine so EnableTelemetry's one-time attachment
// happens before traffic, as its contract requires.
func runObsCell(net *snn.Network, bits int, offEng *infer.Engine, engine string,
	samples []*tensor.Tensor, ref [][]float32, concurrency, requests int) (ObsCell, error) {
	onEng, err := compileEngine(net, bits)
	if err != nil {
		return ObsCell{}, err
	}
	reg := obs.New()
	onEng.EnableTelemetry(reg, serve.DefaultTraceEvery)

	cell := ObsCell{Engine: engine}
	var mismatches int64
	for rep := 0; rep < obsReps; rep++ {
		offP99, offRPS, mmOff := obsLoadRun(offEng, nil, samples, ref, concurrency, requests)
		onP99, onRPS, mmOn := obsLoadRun(onEng, reg, samples, ref, concurrency, requests)
		mismatches += mmOff + mmOn
		if cell.OffP99Ns == 0 || offP99 < cell.OffP99Ns {
			cell.OffP99Ns, cell.OffRPS = offP99, offRPS
		}
		if cell.OnP99Ns == 0 || onP99 < cell.OnP99Ns {
			cell.OnP99Ns, cell.OnRPS = onP99, onRPS
		}
	}
	cell.Mismatches = mismatches
	if cell.OffP99Ns > 0 && cell.OnP99Ns > cell.OffP99Ns {
		cell.OverheadP99 = float64(cell.OnP99Ns)/float64(cell.OffP99Ns) - 1
	}
	cell.Stages = stageBreakdown(onEng, reg)
	return cell, nil
}

func compileEngine(net *snn.Network, bits int) (*infer.Engine, error) {
	if bits == 0 {
		return infer.Compile(net)
	}
	return infer.CompileQuantized(net, bits)
}

// obsLoadRun drives one server (metered when reg != nil) with closed-loop
// clients and returns its request p99, throughput and mismatch count.
func obsLoadRun(eng *infer.Engine, reg *obs.Registry, samples []*tensor.Tensor,
	ref [][]float32, concurrency, requests int) (int64, float64, int64) {
	srv := serve.New(eng, serve.Config{
		MaxBatch: 8,
		Linger:   100 * time.Microsecond,
		MaxQueue: concurrency + 8,
		Metrics:  reg,
	})
	defer srv.Close()

	var next, mismatches atomic.Int64
	lats := make([][]int64, concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < concurrency; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				k := next.Add(1) - 1
				if k >= int64(requests) {
					return
				}
				idx := int(k) % len(samples)
				t0 := time.Now()
				scores, err := srv.Infer(context.Background(), samples[idx])
				if err != nil {
					mismatches.Add(1)
					continue
				}
				lats[g] = append(lats[g], time.Since(t0).Nanoseconds())
				for j := range scores {
					if scores[j] != ref[idx][j] {
						mismatches.Add(1)
						break
					}
				}
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []int64
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	var p99 int64
	var rps float64
	if len(all) > 0 {
		p99 = percentileNs(all, 99)
	}
	if elapsed > 0 {
		rps = float64(len(all)) / elapsed.Seconds()
	}
	return p99, rps, mismatches.Load()
}

// stageBreakdown reduces the telemetry-on registry to the per-stage table:
// each compiled stage's mean traced wall-clock and its share of total SynOps.
func stageBreakdown(eng *infer.Engine, reg *obs.Registry) []ObsStageCell {
	tel := eng.Telemetry()
	if tel == nil {
		return nil
	}
	snap := reg.Snapshot()
	var total float64
	names := tel.StageNames()
	ops := make([]float64, len(names))
	for i, name := range names {
		ops[i] = float64(snap.Counter(fmt.Sprintf("infer_stage_synops_total{stage=%q}", name)))
		total += ops[i]
	}
	var out []ObsStageCell
	for i, name := range names {
		h := snap.Hist(fmt.Sprintf("infer_stage_ns{stage=%q}", name))
		if h == nil {
			continue
		}
		c := ObsStageCell{Stage: name, MeanNs: h.Mean, P50Ns: h.P50}
		if total > 0 {
			c.ShareSynOps = ops[i] / total
		}
		out = append(out, c)
	}
	return out
}

// PrintObservability writes the report as indented JSON (the BENCH artifact
// format).
func PrintObservability(w io.Writer, rep *ObsReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return fmt.Errorf("bench: encode observability report: %w", err)
	}
	return nil
}
