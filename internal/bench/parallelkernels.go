package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"ndsnn/internal/rng"
	"ndsnn/internal/sparse"
	"ndsnn/internal/tensor"
)

// Parallel-kernels benchmark: the measured side of the thread-scalable
// sparse kernel layer. On the VGG-16-shaped convolution (512 filters ×
// 512·3·3 patch, 8×8 map) at the paper's operating point (90% weight
// sparsity, 10% spike rate) it measures
//
//   - the banded parallel event forward (sparse.CSCMatMulEventsInto) against
//     the serial kernel at 1/2/4/8 workers, with the bit-identity check
//     riding along (max-abs diff must be exactly 0 — the banded kernel
//     preserves the serial summation order);
//   - the row-blocked parallel events SDDMM (sparse.CSRGradABTEventsInto)
//     against the serial backward-weight kernel, same worker sweep, diff
//     gated at the gradient tolerance;
//   - the register-blocked int8/int4 column accumulates against their scalar
//     reference kernels (exact integer equality required) — the ROADMAP
//     "Integer SIMD" latency item;
//   - a GOMAXPROCS ∈ {1,2,8} equivalence sweep re-checking the diffs under
//     every thread budget, which is the CI smoke's determinism gate.
//
// Thread speedups are hardware-bound: HostCPUs records how many cores the
// measuring host actually had, since worker counts beyond it cannot show
// wall-clock gains (the determinism checks still exercise them). Recorded as
// BENCH_parallel_kernels.json.

// ParallelKernelCell is one worker-count measurement of a kernel pair.
type ParallelKernelCell struct {
	Workers int `json:"workers"`
	// SerialNs / ParallelNs is the wall-clock per kernel call, median of
	// Iters runs.
	SerialNs   int64 `json:"serial_ns"`
	ParallelNs int64 `json:"parallel_ns"`
	// Speedup is SerialNs / ParallelNs.
	Speedup float64 `json:"speedup"`
	// MaxAbsDiff vs the serial kernel: must be 0 for the forward (banded
	// scatter preserves the serial summation order) and ≤ the gradient
	// tolerance for the SDDMM.
	MaxAbsDiff float64 `json:"max_abs_diff"`
}

// IntKernelCell compares one register-blocked integer accumulate against
// its scalar reference.
type IntKernelCell struct {
	Bits     int   `json:"bits"`
	ScalarNs int64 `json:"scalar_ns"`
	// UnrolledNs is the register-blocked kernel's wall-clock.
	UnrolledNs int64 `json:"unrolled_ns"`
	// Speedup is ScalarNs / UnrolledNs.
	Speedup float64 `json:"speedup"`
	// MaxAbsDiff must be 0: integer accumulation is exact at any order.
	MaxAbsDiff float64 `json:"max_abs_diff"`
}

// GOMAXPROCSDiff records the equivalence re-check under one thread budget.
type GOMAXPROCSDiff struct {
	GOMAXPROCS int `json:"gomaxprocs"`
	// ForwardMaxAbsDiff is the banded-vs-serial forward diff (must be 0);
	// GradMaxAbsDiff is the parallel-vs-serial SDDMM diff (≤ tolerance).
	ForwardMaxAbsDiff float64 `json:"forward_max_abs_diff"`
	GradMaxAbsDiff    float64 `json:"grad_max_abs_diff"`
}

// ParallelKernelsReport is the recorded artifact.
type ParallelKernelsReport struct {
	Layer          string  `json:"layer"`
	Rows           int     `json:"rows"`
	Cols           int     `json:"cols"`
	Patch          int     `json:"patch"`
	WeightSparsity float64 `json:"weight_sparsity"`
	SpikeRate      float64 `json:"spike_rate"`
	NNZWeights     int     `json:"nnz_weights"`
	Iters          int     `json:"iters"`
	// HostCPUs is runtime.NumCPU() on the measuring host — the hard ceiling
	// on any thread speedup in this file.
	HostCPUs int `json:"host_cpus"`
	// GOMAXPROCS is the thread budget the timing cells ran under.
	GOMAXPROCS int                  `json:"gomaxprocs"`
	Forward    []ParallelKernelCell `json:"forward"`
	Backward   []ParallelKernelCell `json:"backward"`
	IntKernels []IntKernelCell      `json:"int_kernels"`
	ProcSweep  []GOMAXPROCSDiff     `json:"gomaxprocs_sweep"`
}

// parallelKernelsGradTol is the SDDMM equivalence gate. The row-blocked
// kernel computes every stored position with the serial arithmetic, so the
// expected diff is exactly 0; the gate allows the issue-spec gradient
// tolerance.
const parallelKernelsGradTol = 1e-5

// RunParallelKernels measures the parallel event kernels against their
// serial forms on the VGG-16-shaped bench layer and fails on any equivalence
// violation. workerCounts defaults to {1,2,4,8} when nil.
func RunParallelKernels(workerCounts []int, iters int, seed uint64, progress Progress) (*ParallelKernelsReport, error) {
	const (
		outC     = 512
		ckk      = 512 * 9
		patch    = 64 // 8×8 map
		sparsity = 0.90
		rate     = 0.10
	)
	if workerCounts == nil {
		workerCounts = []int{1, 2, 4, 8}
	}
	r := rng.New(seed*41 + 13)
	w, wcsr := benchMaskedCSR(outC, ckk, 1-sparsity, r)
	_ = w
	wcsc := sparse.NewCSCFromCSR(wcsr)
	spikes := tensor.New(ckk, patch)
	for i := range spikes.Data {
		if r.Float64() < rate {
			spikes.Data[i] = 1
		}
	}
	ev, ok := sparse.EncodeEvents(spikes)
	if !ok {
		return nil, fmt.Errorf("bench: parallel-kernels spike raster rejected as non-binary")
	}
	dy := tensor.New(outC, patch)
	for i := range dy.Data {
		dy.Data[i] = r.NormFloat32()
	}

	rep := &ParallelKernelsReport{
		Layer: "vgg16-conv512 (512 filters × 512·3·3 patch, 8×8 map)",
		Rows:  outC, Cols: ckk, Patch: patch,
		WeightSparsity: sparsity, SpikeRate: rate,
		NNZWeights: wcsr.NNZ(), Iters: iters,
		HostCPUs:   runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	serialFwd := tensor.New(outC, patch)
	fwdNs := medianNs(func() {
		sparse.CSCMatMulEventsSerialInto(serialFwd, wcsc, ev, false)
	}, iters)
	serialGrad := make([]float32, wcsr.NNZ())
	gradNs := medianNs(func() {
		for i := range serialGrad {
			serialGrad[i] = 0
		}
		sparse.CSRGradABTEventsSerial(serialGrad, wcsr, dy, ev)
	}, iters)

	for _, workers := range workerCounts {
		bands := sparse.NewCSCBands(wcsr, workers)
		parFwd := tensor.New(outC, patch)
		pns := medianNs(func() {
			sparse.CSCMatMulEventsInto(parFwd, bands, ev, false)
		}, iters)
		cell := ParallelKernelCell{
			Workers: workers, SerialNs: fwdNs, ParallelNs: pns,
			MaxAbsDiff: maxAbsDiff32(serialFwd.Data, parFwd.Data),
		}
		if pns > 0 {
			cell.Speedup = float64(fwdNs) / float64(pns)
		}
		rep.Forward = append(rep.Forward, cell)
		report(progress, "parallel-kernels forward workers=%d: serial=%s parallel=%s (%.2fx) diff=%g",
			workers, time.Duration(fwdNs), time.Duration(pns), cell.Speedup, cell.MaxAbsDiff)
		if cell.MaxAbsDiff != 0 {
			return rep, fmt.Errorf("bench: parallel-kernels forward workers=%d: banded kernel diverged from serial by %g (must be bit-identical)",
				workers, cell.MaxAbsDiff)
		}

		parGrad := make([]float32, wcsr.NNZ())
		gns := medianNs(func() {
			for i := range parGrad {
				parGrad[i] = 0
			}
			sparse.CSRGradABTEventsInto(parGrad, wcsr, dy, ev, workers)
		}, iters)
		gcell := ParallelKernelCell{
			Workers: workers, SerialNs: gradNs, ParallelNs: gns,
			MaxAbsDiff: maxAbsDiff32(serialGrad, parGrad),
		}
		if gns > 0 {
			gcell.Speedup = float64(gradNs) / float64(gns)
		}
		rep.Backward = append(rep.Backward, gcell)
		report(progress, "parallel-kernels backward workers=%d: serial=%s parallel=%s (%.2fx) diff=%g",
			workers, time.Duration(gradNs), time.Duration(gns), gcell.Speedup, gcell.MaxAbsDiff)
		if gcell.MaxAbsDiff > parallelKernelsGradTol {
			return rep, fmt.Errorf("bench: parallel-kernels backward workers=%d: parallel SDDMM diverged from serial by %g (tolerance %g)",
				workers, gcell.MaxAbsDiff, parallelKernelsGradTol)
		}
	}

	intCells, err := runIntKernelCells(wcsr, ev, iters, progress)
	if err != nil {
		return rep, err
	}
	rep.IntKernels = intCells

	sweep, err := runProcSweep(wcsr, wcsc, ev, dy, serialFwd, serialGrad, progress)
	if err != nil {
		return rep, err
	}
	rep.ProcSweep = sweep
	return rep, nil
}

// benchMaskedCSR builds a [rows,cols] weight matrix at the given density and
// its mask-keyed CSR encoding.
func benchMaskedCSR(rows, cols int, density float64, r *rng.RNG) (*tensor.Tensor, *sparse.CSR) {
	w := tensor.New(rows, cols)
	mask := tensor.New(rows, cols)
	for i := range w.Data {
		if r.Float64() < density {
			mask.Data[i] = 1
			w.Data[i] = r.NormFloat32()
		}
	}
	return w, sparse.EncodeCSRWithMask(w, mask)
}

// runIntKernelCells measures the register-blocked int8/int4 column
// accumulates against their scalar references on the bench layer's pattern
// and one timestep's spike columns.
func runIntKernelCells(wcsr *sparse.CSR, ev *sparse.Events, iters int, progress Progress) ([]IntKernelCell, error) {
	q8 := &sparse.CSCInt8{Rows: wcsr.Rows, Cols: wcsr.Cols}
	csc := sparse.NewCSCFromCSR(wcsr)
	q8.ColPtr = csc.ColPtr
	q8.RowIdx = csc.RowIdx
	q8.Q = make([]int8, len(csc.Val))
	for i, v := range csc.Val {
		lv := int(v * 32)
		if lv > 127 {
			lv = 127
		}
		if lv < -127 {
			lv = -127
		}
		q8.Q[i] = int8(lv)
	}
	q4 := &sparse.CSCInt4{Rows: q8.Rows, Cols: q8.Cols, ColPtr: q8.ColPtr, RowIdx: q8.RowIdx,
		Packed: make([]byte, (len(q8.RowIdx)+1)/2)}
	for p, lv := range q8.Q {
		nib := byte(int(lv)>>4) & 0xF
		if p&1 == 0 {
			q4.Packed[p>>1] |= nib
		} else {
			q4.Packed[p>>1] |= nib << 4
		}
	}
	// One timestep's incoming spike columns: the rows of the event pattern
	// that fired anywhere (the event matmul's outer loop, flattened).
	var cols []int32
	for q := 0; q < ev.Rows; q++ {
		if ev.RowNNZ(q) > 0 {
			cols = append(cols, int32(q))
		}
	}

	var out []IntKernelCell
	accA := make([]int32, q8.Rows)
	accB := make([]int32, q8.Rows)
	measure := func(bits int, scalar, unrolled func([]int32)) (IntKernelCell, error) {
		sNs := medianNs(func() {
			for i := range accA {
				accA[i] = 0
			}
			scalar(accA)
		}, iters)
		uNs := medianNs(func() {
			for i := range accB {
				accB[i] = 0
			}
			unrolled(accB)
		}, iters)
		var diff float64
		for i := range accA {
			if d := accA[i] - accB[i]; d != 0 {
				if fd := float64(d); fd > diff || -fd > diff {
					if fd < 0 {
						fd = -fd
					}
					diff = fd
				}
			}
		}
		cell := IntKernelCell{Bits: bits, ScalarNs: sNs, UnrolledNs: uNs, MaxAbsDiff: diff}
		if uNs > 0 {
			cell.Speedup = float64(sNs) / float64(uNs)
		}
		report(progress, "parallel-kernels int%d accumulate: scalar=%s unrolled=%s (%.2fx) diff=%g",
			bits, time.Duration(sNs), time.Duration(uNs), cell.Speedup, diff)
		if diff != 0 {
			return cell, fmt.Errorf("bench: parallel-kernels int%d accumulate diverged from scalar by %g (integer kernels must be exact)", bits, diff)
		}
		return cell, nil
	}
	c8, err := measure(8,
		func(acc []int32) { sparse.CSCAccumulateColumnsInt8Scalar(acc, q8, cols) },
		func(acc []int32) { sparse.CSCAccumulateColumnsInt8(acc, q8, cols) })
	if err != nil {
		return nil, err
	}
	out = append(out, c8)
	c4, err := measure(4,
		func(acc []int32) { sparse.CSCAccumulateColumnsInt4Scalar(acc, q4, cols) },
		func(acc []int32) { sparse.CSCAccumulateColumnsInt4(acc, q4, cols) })
	if err != nil {
		return nil, err
	}
	out = append(out, c4)
	return out, nil
}

// runProcSweep re-checks the parallel kernels' equivalence under GOMAXPROCS
// ∈ {1, 2, 8}: the diffs must be independent of the thread budget (that is
// the determinism guarantee — band and block boundaries come from the
// Workers knob, never from GOMAXPROCS).
func runProcSweep(wcsr *sparse.CSR, wcsc *sparse.CSC, ev *sparse.Events, dy *tensor.Tensor,
	serialFwd *tensor.Tensor, serialGrad []float32, progress Progress) ([]GOMAXPROCSDiff, error) {
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	bands := sparse.NewCSCBands(wcsr, 8)
	var out []GOMAXPROCSDiff
	for _, procs := range []int{1, 2, 8} {
		runtime.GOMAXPROCS(procs)
		fwd := tensor.New(serialFwd.Dim(0), serialFwd.Dim(1))
		sparse.CSCMatMulEventsInto(fwd, bands, ev, false)
		grad := make([]float32, len(serialGrad))
		sparse.CSRGradABTEventsInto(grad, wcsr, dy, ev, 8)
		d := GOMAXPROCSDiff{
			GOMAXPROCS:        procs,
			ForwardMaxAbsDiff: maxAbsDiff32(serialFwd.Data, fwd.Data),
			GradMaxAbsDiff:    maxAbsDiff32(serialGrad, grad),
		}
		out = append(out, d)
		report(progress, "parallel-kernels GOMAXPROCS=%d: forward diff=%g grad diff=%g",
			procs, d.ForwardMaxAbsDiff, d.GradMaxAbsDiff)
		if d.ForwardMaxAbsDiff != 0 {
			return out, fmt.Errorf("bench: parallel-kernels GOMAXPROCS=%d: forward diverged by %g (must be bit-identical)", procs, d.ForwardMaxAbsDiff)
		}
		if d.GradMaxAbsDiff > parallelKernelsGradTol {
			return out, fmt.Errorf("bench: parallel-kernels GOMAXPROCS=%d: gradients diverged by %g (tolerance %g)", procs, d.GradMaxAbsDiff, parallelKernelsGradTol)
		}
	}
	return out, nil
}

// PrintParallelKernels writes the report as indented JSON (the BENCH
// artifact format).
func PrintParallelKernels(w io.Writer, r *ParallelKernelsReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("bench: encode parallel-kernels report: %w", err)
	}
	return nil
}
