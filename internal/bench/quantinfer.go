package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"

	"ndsnn/internal/infer"
	"ndsnn/internal/models"
	"ndsnn/internal/quant"
	"ndsnn/internal/rng"
	"ndsnn/internal/snn"
	"ndsnn/internal/sparse"
	"ndsnn/internal/tensor"
)

// Quantized-inference benchmark: the measured deployment path for the
// paper's Sec. III-D platform table. An NDSNN-trained model is compiled
// three ways — the float32 event engine, and the integer QCSR engines at
// each platform's weight precision — and evaluated on the same test
// samples, so the JSON records measured latency, measured SynOps, measured
// packed-weight bytes and the measured accuracy delta instead of the
// estimates the table previously carried. Recorded as
// BENCH_quant_infer.json.

// Int8AccuracyTolerance is the pinned acceptable int8-below-fp32 engine
// accuracy gap (one-sided — quantization noise flipping samples *towards*
// correct is not a failure). RunQuantInfer fails when int8 falls further
// below fp32, which is the CI smoke gate: a broken integer path collapses
// to chance accuracy and trips it, while the spike-flip noise of the
// reduced-scale models (deep threshold dynamics amplify ±½-step weight
// perturbations in either direction) stays well inside it.
const Int8AccuracyTolerance = 0.10

// QuantInferRow is the measurement for one platform precision.
type QuantInferRow struct {
	Platform string `json:"platform"`
	Bits     int    `json:"bits"`
	// Acc is the integer engine's test accuracy; AccDelta = Acc − fp32 acc.
	Acc      float64 `json:"acc"`
	AccDelta float64 `json:"acc_delta"`
	// LatencyNsPerSample is the integer engine's measured wall-clock.
	LatencyNsPerSample int64 `json:"latency_ns_per_sample"`
	// SynOpsPerSample drops below the fp32 engine's when weights quantize
	// to exactly zero (dead synapses the integer kernels skip).
	SynOpsPerSample float64 `json:"synops_per_sample"`
	// PackedValueBytes vs FloatValueBytes is the value-storage footprint of
	// the quantized stages (indices and scales are identical either way);
	// MemoryReduction is their ratio (4× at 8 bits, 8× at 4 bits).
	PackedValueBytes int64   `json:"packed_value_bytes"`
	FloatValueBytes  int64   `json:"float_value_bytes"`
	MemoryReduction  float64 `json:"memory_reduction"`
	// QuantizedStages / ComputeStages is the integer coverage (the direct-
	// encoding first conv stays float32).
	QuantizedStages int `json:"quantized_stages"`
	ComputeStages   int `json:"compute_stages"`
	// StoredSynapses / ZeroQuantized is the quantized-stage synapse census.
	StoredSynapses int64 `json:"stored_synapses"`
	ZeroQuantized  int64 `json:"zero_quantized"`
	// MaxAbsDiffVsDequantRef is the largest |integer − float-on-dequantized-
	// weights| over all evaluated output scores — the exactness check riding
	// along (0 at ≤8 bits; 16-bit sums can exceed float32's exact-integer
	// range on large layers).
	MaxAbsDiffVsDequantRef float64 `json:"max_abs_diff_vs_dequant_ref"`
}

// QuantKernelCell is the kernel-level microbenchmark: the float event
// kernel versus its integer twins on the same VGG-16-shaped layer and
// batched-timestep spike pattern, isolating the arithmetic from the
// engine's float stages (LIF, pooling) that dominate end-to-end latency.
type QuantKernelCell struct {
	WeightSparsity float64 `json:"weight_sparsity"`
	SpikeRate      float64 `json:"spike_rate"`
	NNZWeights     int     `json:"nnz_weights"`
	// Wall-clock per kernel call, nanoseconds, median of Iters runs:
	// float32 CSCMatMulEventsSerialInto vs the int8/int4 twins.
	FloatNs int64 `json:"float_ns"`
	Int8Ns  int64 `json:"int8_ns"`
	Int4Ns  int64 `json:"int4_ns"`
	// Int8VsFloat > 1 means the integer accumulate beat the float kernel.
	Int8VsFloat float64 `json:"int8_vs_float"`
	// MaxAbsDiff must be 0: the weights are integer-valued, so all three
	// kernels compute the same exact sums.
	MaxAbsDiff float64 `json:"max_abs_diff"`
}

// FullIntegerCell is the fully-integer pipeline measurement: a LeNet-style
// model (power-of-two avg-pool windows) compiled with 8-bit weights AND
// 8-bit activations under FullInteger, so every compute stage — the
// direct-encoding first conv, both average pools, the post-pool linears —
// runs integer synaptic arithmetic (AnalogStages must be 0, where the mixed
// engine leaves MixedAnalogStages of them float). Alongside latency and the
// accuracy delta it records the activation-memory column: the dtype-aware
// per-request footprint of the inter-stage activation edges (1 bit per
// binary spike, ActivationBits per quantized level) against the same
// buffers at float32 width.
type FullIntegerCell struct {
	Arch           string `json:"arch"`
	WeightBits     int    `json:"weight_bits"`
	ActivationBits int    `json:"activation_bits"`
	// FP32 engine baseline for the same trained model.
	FP32Acc                float64 `json:"fp32_acc"`
	FP32LatencyNsPerSample int64   `json:"fp32_latency_ns_per_sample"`
	FP32SynOpsPerSample    float64 `json:"fp32_synops_per_sample"`
	Acc                    float64 `json:"acc"`
	AccDelta               float64 `json:"acc_delta"`
	LatencyNsPerSample     int64   `json:"latency_ns_per_sample"`
	SynOpsPerSample        float64 `json:"synops_per_sample"`
	// Integer coverage: AnalogStages is 0 by the FullInteger compile
	// guarantee; MixedAnalogStages is what the weights-only engine leaves
	// analog on the same model.
	QuantizedStages   int `json:"quantized_stages"`
	ComputeStages     int `json:"compute_stages"`
	AnalogStages      int `json:"analog_stages"`
	MixedAnalogStages int `json:"mixed_analog_stages"`
	// Activation-memory column (per request, summed over inter-stage edges).
	ActivationPackedBytes     int64   `json:"activation_packed_bytes"`
	ActivationFloatBytes      int64   `json:"activation_float_bytes"`
	ActivationMemoryReduction float64 `json:"activation_memory_reduction"`
	// Equivalence gates on dequantized weights and grid-snapped inputs:
	// both must be exactly 0 (po2×po2 products, sums below 2^24).
	MaxAbsDiffVsMixed      float64 `json:"max_abs_diff_vs_mixed"`
	MaxAbsDiffVsDequantRef float64 `json:"max_abs_diff_vs_dequant_ref"`
}

// QuantInferReport is the recorded artifact.
type QuantInferReport struct {
	Arch     string  `json:"arch"`
	Sparsity float64 `json:"sparsity"`
	Samples  int     `json:"samples"`
	// FP32 engine baseline.
	FP32Acc                float64 `json:"fp32_acc"`
	FP32LatencyNsPerSample int64   `json:"fp32_latency_ns_per_sample"`
	FP32SynOpsPerSample    float64 `json:"fp32_synops_per_sample"`
	// Int8AccTolerance echoes the pinned CI gate.
	Int8AccTolerance float64          `json:"int8_acc_tolerance"`
	Rows             []QuantInferRow  `json:"rows"`
	Kernel           QuantKernelCell  `json:"kernel"`
	FullInteger      *FullIntegerCell `json:"full_integer"`
}

// RunQuantInfer trains one NDSNN model, compiles the float32 event engine
// and the integer QCSR engine at every Sec. III-D platform precision, and
// measures accuracy, latency, SynOps and packed-weight bytes on the same
// test samples. It returns an error when the int8 accuracy diverges from
// fp32 beyond Int8AccuracyTolerance — the CI smoke gate.
func RunQuantInfer(s Scale, arch string, sparsity float64, seed uint64, progress Progress) (*QuantInferReport, error) {
	ds := s.Dataset(CIFAR10, 1000+seed)
	net := models.Build(models.Config{
		Arch: arch, Classes: ds.Config.Classes,
		InC: ds.Config.C, InH: ds.Config.H, InW: ds.Config.W,
		Timesteps: s.Timesteps, Neuron: snn.DefaultNeuron(),
		Profile: s.Profile, Seed: seed*31 + 7,
	})
	spec := Spec{Method: MethodNDSNN, Arch: arch, Dataset: CIFAR10, Sparsity: sparsity, Seed: seed}
	if _, err := RunOn(s, spec, ds, net); err != nil {
		return nil, err
	}

	// The whole test split: accuracy deltas on these reduced-scale models
	// are sample-flip noise, so more samples means a stabler pinned gate.
	n := ds.Test.N()
	pix := ds.Config.C * ds.Config.H * ds.Config.W
	samples := make([]*tensor.Tensor, n)
	for i := range samples {
		samples[i] = tensor.FromSlice(ds.Test.Images[i*pix:(i+1)*pix], ds.Config.C, ds.Config.H, ds.Config.W)
	}

	rep := &QuantInferReport{
		Arch: arch, Sparsity: sparsity, Samples: n,
		Int8AccTolerance: Int8AccuracyTolerance,
	}

	feng, err := infer.Compile(net)
	if err != nil {
		return nil, err
	}
	_, facc, fns := evalEngine(feng, samples, ds.Test.Labels)
	rep.FP32Acc = facc
	rep.FP32LatencyNsPerSample = fns
	rep.FP32SynOpsPerSample = float64(feng.SynOps()) / float64(n)
	report(progress, "quant-infer fp32: acc=%.3f latency=%s/sample synops=%.0f",
		facc, time.Duration(fns), rep.FP32SynOpsPerSample)

	for _, platform := range sparse.Platforms {
		qeng, err := infer.CompileQuantized(net, platform.WeightBits)
		if err != nil {
			return nil, err
		}
		qscores, qacc, qns := evalEngine(qeng, samples, ds.Test.Labels)
		st := qeng.QuantStats()
		row := QuantInferRow{
			Platform: platform.Name, Bits: platform.WeightBits,
			Acc: qacc, AccDelta: qacc - facc,
			LatencyNsPerSample: qns,
			SynOpsPerSample:    float64(qeng.SynOps()) / float64(n),
			PackedValueBytes:   st.PackedValueBytes,
			FloatValueBytes:    st.FloatValueBytes,
			QuantizedStages:    st.QuantizedStages,
			ComputeStages:      st.ComputeStages,
			StoredSynapses:     st.StoredSynapses,
			ZeroQuantized:      st.ZeroQuantized,
		}
		if st.PackedValueBytes > 0 {
			row.MemoryReduction = float64(st.FloatValueBytes) / float64(st.PackedValueBytes)
		}
		// Exactness check: the float engine on the dequantized weights must
		// reproduce the integer engine's scores (bit-exact at ≤8 bits).
		restore, err := infer.QuantizeNetWeights(net, platform.WeightBits)
		if err != nil {
			return nil, err
		}
		deng, err := infer.Compile(net)
		if err != nil {
			restore()
			return nil, err
		}
		dscores, _, _ := evalEngine(deng, samples, ds.Test.Labels)
		restore()
		for i := range qscores {
			row.MaxAbsDiffVsDequantRef = math.Max(row.MaxAbsDiffVsDequantRef, maxAbsDiff32(qscores[i], dscores[i]))
		}
		rep.Rows = append(rep.Rows, row)
		report(progress, "quant-infer %s (int%d): acc=%.3f (Δ%+.3f) latency=%s/sample synops=%.0f mem %.1fx diff=%.2g",
			platform.Name, platform.WeightBits, qacc, row.AccDelta, time.Duration(qns),
			row.SynOpsPerSample, row.MemoryReduction, row.MaxAbsDiffVsDequantRef)
		if platform.WeightBits == 8 {
			if row.MaxAbsDiffVsDequantRef != 0 {
				return nil, fmt.Errorf("bench: int8 engine diverges from its dequantized float reference (max abs diff %g, want exact)", row.MaxAbsDiffVsDequantRef)
			}
			if row.AccDelta < -Int8AccuracyTolerance {
				return nil, fmt.Errorf("bench: int8 accuracy %0.3f diverges from fp32 %0.3f beyond the pinned tolerance %0.2f", qacc, facc, Int8AccuracyTolerance)
			}
		}
	}
	iters := 10
	if s.Name == "unit" {
		iters = 3
	}
	rep.Kernel = runQuantKernel(0.90, 0.10, iters, seed)
	report(progress, "quant-infer kernel θ=%.2f rate=%.2f: float=%s int8=%s int4=%s (int8 vs float %.2fx) diff=%g",
		rep.Kernel.WeightSparsity, rep.Kernel.SpikeRate, time.Duration(rep.Kernel.FloatNs),
		time.Duration(rep.Kernel.Int8Ns), time.Duration(rep.Kernel.Int4Ns),
		rep.Kernel.Int8VsFloat, rep.Kernel.MaxAbsDiff)
	if rep.Kernel.MaxAbsDiff != 0 {
		return nil, fmt.Errorf("bench: integer kernels diverge from the float kernel on integer weights (max abs diff %g)", rep.Kernel.MaxAbsDiff)
	}
	rep.FullInteger, err = runFullInteger(s, sparsity, seed, progress)
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// runFullInteger trains a LeNet-5 (the po2-avg-pool pipeline) and measures
// the fully-integer engine against the fp32 baseline and the weights-only
// mixed engine, enforcing the extended equivalence pins: AnalogStages == 0,
// bit-identity to both the mixed engine and the float reference on
// dequantized weights with grid-snapped inputs, and the pinned accuracy
// tolerance on the real weights.
func runFullInteger(s Scale, sparsity float64, seed uint64, progress Progress) (*FullIntegerCell, error) {
	const arch = "lenet5"
	ds := s.Dataset(CIFAR10, 1100+seed)
	net := models.Build(models.Config{
		Arch: arch, Classes: ds.Config.Classes,
		InC: ds.Config.C, InH: ds.Config.H, InW: ds.Config.W,
		Timesteps: s.Timesteps, Neuron: snn.DefaultNeuron(),
		Profile: s.Profile, Seed: seed*37 + 11,
	})
	spec := Spec{Method: MethodNDSNN, Arch: arch, Dataset: CIFAR10, Sparsity: sparsity, Seed: seed}
	if _, err := RunOn(s, spec, ds, net); err != nil {
		return nil, err
	}
	n := ds.Test.N()
	pix := ds.Config.C * ds.Config.H * ds.Config.W
	samples := make([]*tensor.Tensor, n)
	for i := range samples {
		samples[i] = tensor.FromSlice(ds.Test.Images[i*pix:(i+1)*pix], ds.Config.C, ds.Config.H, ds.Config.W)
	}

	cell := &FullIntegerCell{Arch: arch, WeightBits: 8, ActivationBits: 8}
	feng, err := infer.Compile(net)
	if err != nil {
		return nil, err
	}
	_, facc, fns := evalEngine(feng, samples, ds.Test.Labels)
	cell.FP32Acc = facc
	cell.FP32LatencyNsPerSample = fns
	cell.FP32SynOpsPerSample = float64(feng.SynOps()) / float64(n)

	cfg := infer.QuantConfig{WeightBits: 8, FullInteger: true}
	full, err := infer.CompileQuantizedConfig(net, cfg)
	if err != nil {
		return nil, err
	}
	st := full.QuantStats()
	cell.QuantizedStages = st.QuantizedStages
	cell.ComputeStages = st.ComputeStages
	cell.AnalogStages = st.AnalogStages
	if cell.AnalogStages != 0 {
		return nil, fmt.Errorf("bench: FullInteger %s engine reports %d analog stages, want 0", arch, cell.AnalogStages)
	}
	mixed, err := infer.CompileQuantized(net, 8)
	if err != nil {
		return nil, err
	}
	cell.MixedAnalogStages = mixed.QuantStats().AnalogStages

	_, qacc, qns := evalEngine(full, samples, ds.Test.Labels)
	cell.Acc = qacc
	cell.AccDelta = qacc - facc
	cell.LatencyNsPerSample = qns
	cell.SynOpsPerSample = float64(full.SynOps()) / float64(n)

	// Activation-memory column: size the inter-stage edges from the arena of
	// a served request (dtype-aware bits vs float32 width).
	sc := full.NewScratch()
	full.InferScratch(sc, samples[0])
	cell.ActivationPackedBytes, cell.ActivationFloatBytes = full.ActivationFootprint(sc)
	if cell.ActivationPackedBytes > 0 {
		cell.ActivationMemoryReduction = float64(cell.ActivationFloatBytes) / float64(cell.ActivationPackedBytes)
	}

	// Equivalence pins: on dequantized weights and grid-snapped inputs the
	// fully-integer engine, the mixed engine and the float reference must
	// agree bit for bit.
	grid, ok := full.InputGrid()
	if !ok {
		return nil, fmt.Errorf("bench: FullInteger engine has no input grid")
	}
	snapped := make([]*tensor.Tensor, n)
	for i := range snapped {
		buf := append([]float32(nil), ds.Test.Images[i*pix:(i+1)*pix]...)
		snapped[i] = tensor.FromSlice(grid.SnapSlice(buf), ds.Config.C, ds.Config.H, ds.Config.W)
	}
	restore, err := infer.QuantizeNetWeightsConfig(net, cfg)
	if err != nil {
		return nil, err
	}
	dmixed, err := infer.CompileQuantized(net, 8)
	if err != nil {
		restore()
		return nil, err
	}
	dref, err := infer.Compile(net)
	if err != nil {
		restore()
		return nil, err
	}
	fscores, _, _ := evalEngine(full, snapped, ds.Test.Labels)
	mscores, _, _ := evalEngine(dmixed, snapped, ds.Test.Labels)
	rscores, _, _ := evalEngine(dref, snapped, ds.Test.Labels)
	restore()
	for i := range fscores {
		cell.MaxAbsDiffVsMixed = math.Max(cell.MaxAbsDiffVsMixed, maxAbsDiff32(fscores[i], mscores[i]))
		cell.MaxAbsDiffVsDequantRef = math.Max(cell.MaxAbsDiffVsDequantRef, maxAbsDiff32(fscores[i], rscores[i]))
	}
	report(progress, "quant-infer full-integer %s (w8/a8): acc=%.3f (Δ%+.3f) latency=%s/sample analog=%d (mixed %d) act-mem %.1fx diff vs mixed=%g ref=%g",
		arch, qacc, cell.AccDelta, time.Duration(qns), cell.AnalogStages, cell.MixedAnalogStages,
		cell.ActivationMemoryReduction, cell.MaxAbsDiffVsMixed, cell.MaxAbsDiffVsDequantRef)
	if cell.MaxAbsDiffVsMixed != 0 {
		return nil, fmt.Errorf("bench: fully-integer engine diverges from the mixed engine on dequantized weights (max abs diff %g, want exact)", cell.MaxAbsDiffVsMixed)
	}
	if cell.MaxAbsDiffVsDequantRef != 0 {
		return nil, fmt.Errorf("bench: fully-integer engine diverges from its dequantized float reference (max abs diff %g, want exact)", cell.MaxAbsDiffVsDequantRef)
	}
	if cell.AccDelta < -Int8AccuracyTolerance {
		return nil, fmt.Errorf("bench: fully-integer accuracy %0.3f diverges from fp32 %0.3f beyond the pinned tolerance %0.2f", qacc, facc, Int8AccuracyTolerance)
	}
	return cell, nil
}

// runQuantKernel times the float event kernel against the int8 and packed
// int4 twins on a VGG-16-shaped layer (512 filters × 512·3·3 patch, 4×4
// map — the shape of the event-driven bench) with integer-valued weights in
// [-7,7], so all three precisions represent the matrix exactly and any
// output difference is a kernel bug.
func runQuantKernel(sparsity, rate float64, iters int, seed uint64) QuantKernelCell {
	const (
		rows  = 512
		cols  = 4608
		patch = 16
	)
	r := rng.New(seed*17 + 3)
	w := tensor.New(rows, cols)
	mask := tensor.New(rows, cols)
	for i := range w.Data {
		if r.Float64() >= sparsity {
			l := int8(r.Float64()*15) - 7
			if l == 0 {
				l = 1
			}
			w.Data[i] = float32(l)
			mask.Data[i] = 1
		}
	}
	csc := sparse.NewCSCFromCSR(sparse.EncodeCSRWithMask(w, mask))
	i8 := &sparse.CSCInt8{
		Rows: csc.Rows, Cols: csc.Cols, ColPtr: csc.ColPtr, RowIdx: csc.RowIdx,
		Q: make([]int8, csc.NNZ()),
	}
	for p, v := range csc.Val {
		i8.Q[p] = int8(v)
	}
	i4 := &sparse.CSCInt4{
		Rows: csc.Rows, Cols: csc.Cols, ColPtr: csc.ColPtr, RowIdx: csc.RowIdx,
		Packed: quant.PackInt4(i8.Q),
	}
	b := tensor.New(cols, patch)
	for i := range b.Data {
		if r.Float64() < rate {
			b.Data[i] = 1
		}
	}
	ev, ok := sparse.EncodeEvents(b)
	if !ok {
		panic("bench: spike raster not binary")
	}
	yF := tensor.New(rows, patch)
	y8 := make([]int32, rows*patch)
	y4 := make([]int32, rows*patch)
	cell := QuantKernelCell{
		WeightSparsity: sparsity, SpikeRate: rate, NNZWeights: csc.NNZ(),
		FloatNs: medianNs(func() { sparse.CSCMatMulEventsSerialInto(yF, csc, ev, false) }, iters),
		Int8Ns:  medianNs(func() { sparse.CSCMatMulEventsInt8SerialInto(y8, i8, ev, false) }, iters),
		Int4Ns:  medianNs(func() { sparse.CSCMatMulEventsInt4SerialInto(y4, i4, ev, false) }, iters),
	}
	if cell.Int8Ns > 0 {
		cell.Int8VsFloat = float64(cell.FloatNs) / float64(cell.Int8Ns)
	}
	for i, v := range yF.Data {
		d := math.Abs(float64(v) - float64(y8[i]))
		if d4 := math.Abs(float64(v) - float64(y4[i])); d4 > d {
			d = d4
		}
		if d > cell.MaxAbsDiff {
			cell.MaxAbsDiff = d
		}
	}
	return cell
}

// evalEngine classifies every sample, returning the per-sample score
// vectors, the accuracy, and the measured wall-clock per sample.
func evalEngine(eng *infer.Engine, samples []*tensor.Tensor, labels []int) (scores [][]float32, acc float64, nsPerSample int64) {
	eng.ResetStats()
	scores = make([][]float32, len(samples))
	correct := 0
	start := time.Now()
	for i, s := range samples {
		scores[i] = eng.Infer(s)
		best, bestIdx := scores[i][0], 0
		for j, v := range scores[i][1:] {
			if v > best {
				best = v
				bestIdx = j + 1
			}
		}
		if bestIdx == labels[i] {
			correct++
		}
	}
	elapsed := time.Since(start).Nanoseconds()
	return scores, float64(correct) / float64(len(samples)), elapsed / int64(len(samples))
}

// PrintQuantInfer writes the report as indented JSON (the BENCH artifact
// format).
func PrintQuantInfer(w io.Writer, r *QuantInferReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("bench: encode quant-infer report: %w", err)
	}
	return nil
}
