package bench

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ndsnn/internal/fault"
	"ndsnn/internal/infer"
	"ndsnn/internal/models"
	"ndsnn/internal/serve"
	"ndsnn/internal/snn"
	"ndsnn/internal/tensor"
)

// Resilience benchmark: the serving layer's failure model under measurement.
// The same closed-loop workload as the serving benchmark runs three arms —
// no fault, a periodic injected engine panic, and a periodic injected
// dispatch delay — recording availability (served / attempted) and latency
// percentiles for each, then a shed sweep drives an adaptive-shedding server
// with deadline-carrying clients at rising concurrency to trace shed rate vs
// offered load. Every arm is gated on zero output mismatches among surviving
// requests and on the stats conservation law (admitted == resolved) after a
// clean drain. Recorded as BENCH_resilience.json.

// ResilienceCell is one fault-arm measurement.
type ResilienceCell struct {
	// Fault is "none", "panic" or "delay"; Site names the armed injection
	// site ("" for the baseline).
	Fault string `json:"fault"`
	Site  string `json:"site,omitempty"`
	// Concurrency closed-loop clients attempted Requests requests total.
	Concurrency int `json:"concurrency"`
	Requests    int `json:"requests"`
	// Served requests returned scores; Failed were refused with the typed
	// internal error after a batch was isolated (PanicsIsolated passes).
	Served         int64 `json:"served"`
	Failed         int64 `json:"failed"`
	PanicsIsolated int64 `json:"panics_isolated"`
	// SiteFired counts how often the armed plan actually fired.
	SiteFired int64 `json:"site_fired,omitempty"`
	// AvailabilityPct is 100·Served/Requests — the headline number: an
	// isolated fault costs exactly its own batches, nothing more.
	AvailabilityPct float64 `json:"availability_pct"`
	ThroughputRPS   float64 `json:"throughput_rps"`
	// P50Ns / P99Ns are per-request latencies of the served requests.
	P50Ns int64 `json:"p50_ns"`
	P99Ns int64 `json:"p99_ns"`
	// DrainClean / ConservationOK record the post-workload shutdown checks:
	// the drain flushed everything, and Admitted == Served+Expired+Failed.
	DrainClean     bool `json:"drain_clean"`
	ConservationOK bool `json:"conservation_ok"`
	// Mismatches counts served score vectors differing from the serial
	// reference in any bit. Must be 0 — faults may fail requests, never
	// corrupt survivors.
	Mismatches int64 `json:"mismatches"`
}

// ShedCell is one point of the shed-rate-vs-offered-load sweep: closed-loop
// clients carrying a fixed deadline budget against a single-worker server
// whose backend is deterministically slowed by an injected per-batch delay
// (so the overload point is set by the harness, not by host speed). Offered
// load scales with the client count.
type ShedCell struct {
	Concurrency      int   `json:"concurrency"`
	DeadlineBudgetNs int64 `json:"deadline_budget_ns"`
	// BatchDelayNs is the injected serve.batch delay slowing every dispatch.
	BatchDelayNs int64 `json:"batch_delay_ns"`
	Attempted    int64 `json:"attempted"`
	Admitted     int64 `json:"admitted"`
	Served       int64 `json:"served"`
	// Shed were refused at admission by the EWMA wait predictor; Rejected by
	// the queue bound; Expired ran out of deadline in the queue or in flight.
	Shed     int64 `json:"shed"`
	Rejected int64 `json:"rejected"`
	Expired  int64 `json:"expired"`
	Failed   int64 `json:"failed"`
	// ShedRatePct is 100·Shed/Attempted; ServedPct is 100·Served/Attempted.
	ShedRatePct   float64 `json:"shed_rate_pct"`
	ServedPct     float64 `json:"served_pct"`
	ThroughputRPS float64 `json:"throughput_rps"`
	// PredictedWaitNs is the shedder's EWMA at the end of the cell.
	PredictedWaitNs int64 `json:"predicted_wait_ns"`
	ConservationOK  bool  `json:"conservation_ok"`
	Mismatches      int64 `json:"mismatches"`
}

// ResilienceReport is the recorded artifact.
type ResilienceReport struct {
	Arch     string  `json:"arch"`
	Sparsity float64 `json:"sparsity"`
	Samples  int     `json:"samples"`
	// SerialNsPerSample is the single-caller engine baseline the fault-arm
	// latencies compare against.
	SerialNsPerSample int64            `json:"serial_ns_per_sample"`
	FaultCells        []ResilienceCell `json:"fault_cells"`
	ShedCells         []ShedCell       `json:"shed_cells"`
}

// RunResilience trains one NDSNN model, compiles the float32 engine, and
// measures the serving failure model: availability and p50/p99 with no
// fault, with a periodic injected engine panic (isolated per batch), and
// with a periodic injected dispatch delay — then sweeps concurrency against
// a fixed per-request deadline budget on an adaptive-shedding server. Gates
// (any violation is an error): zero mismatches among served requests in
// every arm, full availability in the no-fault and delay arms, genuine
// isolation in the panic arm (passes panicked, requests failed, and the
// server kept serving), and drain-clean + stats conservation everywhere.
func RunResilience(s Scale, arch string, sparsity float64, concurrency, requests int, seed uint64, progress Progress) (*ResilienceReport, error) {
	defer fault.DisarmAll()
	ds := s.Dataset(CIFAR10, 3000+seed)
	net := models.Build(models.Config{
		Arch: arch, Classes: ds.Config.Classes,
		InC: ds.Config.C, InH: ds.Config.H, InW: ds.Config.W,
		Timesteps: s.Timesteps, Neuron: snn.DefaultNeuron(),
		Profile: s.Profile, Seed: seed*17 + 3,
	})
	spec := Spec{Method: MethodNDSNN, Arch: arch, Dataset: CIFAR10, Sparsity: sparsity, Seed: seed}
	if _, err := RunOn(s, spec, ds, net); err != nil {
		return nil, err
	}

	n := ds.Test.N()
	if n > 32 {
		n = 32
	}
	pix := ds.Config.C * ds.Config.H * ds.Config.W
	samples := make([]*tensor.Tensor, n)
	for i := range samples {
		samples[i] = tensor.FromSlice(ds.Test.Images[i*pix:(i+1)*pix], ds.Config.C, ds.Config.H, ds.Config.W)
	}
	eng, err := infer.Compile(net)
	if err != nil {
		return nil, err
	}
	ref, serialNs := serialReference(eng, samples)
	// Warm the batched path once (arena pools, page faults): the first cell
	// measures availability under faults, not cold-start outliers.
	warm := len(samples)
	if warm > 8 {
		warm = 8
	}
	eng.InferBatch(samples[:warm])
	rep := &ResilienceReport{
		Arch: arch, Sparsity: sparsity, Samples: n, SerialNsPerSample: serialNs,
	}
	report(progress, "resilience serial fp32: %s/sample over %d samples", time.Duration(serialNs), n)

	// Fault arms. The panic plan fires every 13th engine timestep — an odd
	// period, coprime with the simulation length, so it drifts across batch
	// boundaries instead of always felling the same sample slot; the delay
	// plan stalls every 5th dispatch by 1ms.
	arms := []struct {
		fault, site string
		plan        fault.Plan
	}{
		{fault: "none"},
		{fault: "panic", site: "infer.pass", plan: fault.Plan{Mode: fault.Panic, Every: 13}},
		{fault: "delay", site: "serve.batch", plan: fault.Plan{Mode: fault.Delay, Every: 5, Sleep: time.Millisecond}},
	}
	for _, arm := range arms {
		cell, err := runResilienceCell(eng, samples, ref, arm.fault, arm.site, arm.plan, concurrency, requests)
		if err != nil {
			return nil, err
		}
		rep.FaultCells = append(rep.FaultCells, cell)
		report(progress, "resilience %-5s c=%d: availability %.2f%% served=%d failed=%d panics=%d p50=%s p99=%s",
			arm.fault, concurrency, cell.AvailabilityPct, cell.Served, cell.Failed, cell.PanicsIsolated,
			time.Duration(cell.P50Ns), time.Duration(cell.P99Ns))
	}

	// Shed sweep: fixed deadline budget, rising closed-loop concurrency.
	// Every dispatch is slowed by an injected 1ms serve.batch delay so the
	// single worker's capacity — and therefore the overload point — is set
	// by the harness rather than host speed. The budget is denominated in
	// *realized* batch cycles (coarse kernel timers can stretch a 1ms sleep
	// severalfold): three cycles of headroom, so a lone client always fits
	// its deadline while a queue several batches deep cannot.
	const shedDelay = time.Millisecond
	cycle := realizedSleep(shedDelay) + time.Duration(8*serialNs)
	shedBudget := 3 * cycle
	report(progress, "resilience shed calibration: %s nominal sleep realizes a %s batch cycle, budget %s",
		shedDelay, cycle, shedBudget)
	for _, c := range []int{1, concurrency, 4 * concurrency} {
		cell, err := runShedCell(eng, samples, ref, c, requests, shedBudget, shedDelay)
		if err != nil {
			return nil, err
		}
		rep.ShedCells = append(rep.ShedCells, cell)
		report(progress, "resilience shed c=%-3d budget=%s: shed %.1f%% served %.1f%% expired=%d ewma=%s",
			c, shedBudget, cell.ShedRatePct, cell.ServedPct, cell.Expired, time.Duration(cell.PredictedWaitNs))
	}

	// Gates.
	for _, cell := range rep.FaultCells {
		if cell.Mismatches != 0 {
			return nil, fmt.Errorf("bench: resilience %s arm served %d mismatched responses (survivors must be bit-identical)", cell.Fault, cell.Mismatches)
		}
		if !cell.ConservationOK || !cell.DrainClean {
			return nil, fmt.Errorf("bench: resilience %s arm violated shutdown invariants: %+v", cell.Fault, cell)
		}
		switch cell.Fault {
		case "none", "delay":
			if cell.AvailabilityPct != 100 {
				return nil, fmt.Errorf("bench: resilience %s arm lost requests: %+v", cell.Fault, cell)
			}
		case "panic":
			if cell.PanicsIsolated == 0 || cell.Failed == 0 {
				return nil, fmt.Errorf("bench: resilience panic arm injected no faults: %+v", cell)
			}
			if cell.Served == 0 {
				return nil, fmt.Errorf("bench: resilience panic arm: server did not keep serving: %+v", cell)
			}
		}
		if cell.Site != "" && cell.SiteFired == 0 {
			return nil, fmt.Errorf("bench: resilience %s arm armed %s but it never fired", cell.Fault, cell.Site)
		}
	}
	for _, cell := range rep.ShedCells {
		if cell.Mismatches != 0 {
			return nil, fmt.Errorf("bench: resilience shed cell c=%d served %d mismatched responses", cell.Concurrency, cell.Mismatches)
		}
		if !cell.ConservationOK {
			return nil, fmt.Errorf("bench: resilience shed cell c=%d violated conservation: %+v", cell.Concurrency, cell)
		}
	}
	if last := rep.ShedCells[len(rep.ShedCells)-1]; last.Shed == 0 {
		return nil, fmt.Errorf("bench: resilience shed sweep never shed at top concurrency: %+v", last)
	}
	return rep, nil
}

// runResilienceCell drives one fault arm: closed-loop clients against a
// server with the given site armed, every response checked bit-for-bit.
func runResilienceCell(eng *infer.Engine, samples []*tensor.Tensor, ref [][]float32,
	faultMode, siteName string, plan fault.Plan, concurrency, requests int) (ResilienceCell, error) {
	cell := ResilienceCell{Fault: faultMode, Site: siteName, Concurrency: concurrency, Requests: requests}
	var site *fault.Site
	if siteName != "" {
		site = fault.Lookup(siteName)
		if site == nil {
			return cell, fmt.Errorf("bench: fault site %s not registered", siteName)
		}
		if err := site.Arm(plan); err != nil {
			return cell, err
		}
		defer site.Disarm()
	}
	srv := serve.New(eng, serve.Config{
		MaxBatch: 8, Linger: 100 * time.Microsecond, MaxQueue: concurrency + 8,
	})

	var next, mismatches, unexpected atomic.Int64
	lats := make([][]int64, concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < concurrency; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				k := next.Add(1) - 1
				if k >= int64(requests) {
					return
				}
				idx := int(k) % len(samples)
				t0 := time.Now()
				scores, err := srv.Infer(context.Background(), samples[idx])
				if err != nil {
					if !errors.Is(err, serve.ErrInternal) {
						unexpected.Add(1)
					}
					continue
				}
				lats[g] = append(lats[g], time.Since(t0).Nanoseconds())
				for j := range scores {
					if scores[j] != ref[idx][j] {
						mismatches.Add(1)
						break
					}
				}
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if site != nil {
		cell.SiteFired = site.Fired()
	}

	dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	res := srv.Drain(dctx)
	cancel()
	cell.DrainClean = res.Clean

	st := srv.Stats()
	cell.Served = st.Served
	cell.Failed = st.Failed
	cell.PanicsIsolated = st.Panics
	cell.Mismatches = mismatches.Load()
	cell.ConservationOK = st.Resolved() == st.Admitted
	cell.AvailabilityPct = 100 * float64(st.Served) / float64(requests)
	if elapsed > 0 {
		cell.ThroughputRPS = float64(requests) / elapsed.Seconds()
	}
	var all []int64
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	if len(all) > 0 {
		cell.P50Ns = percentileNs(all, 50)
		cell.P99Ns = percentileNs(all, 99)
	}
	if u := unexpected.Load(); u > 0 {
		return cell, fmt.Errorf("bench: resilience %s arm saw %d errors outside the failure model", faultMode, u)
	}
	return cell, nil
}

// realizedSleep measures what a nominal time.Sleep actually costs on this
// host (median of three): kernel timer slack and scheduler throttling can
// stretch a millisecond sleep severalfold, and the shed sweep's deadline
// budget must be priced in realized cycles to mean the same thing anywhere.
func realizedSleep(d time.Duration) time.Duration {
	var got [3]time.Duration
	for i := range got {
		t0 := time.Now()
		time.Sleep(d)
		got[i] = time.Since(t0)
	}
	sort.Slice(got[:], func(i, j int) bool { return got[i] < got[j] })
	return got[1]
}

// runShedCell drives one adaptive-shedding point: closed-loop clients each
// carrying a fixed deadline budget against a shedding server whose queue is
// sized to the client count (so every refusal is the wait predictor, not the
// queue bound) and whose every dispatch is slowed by the injected delay.
func runShedCell(eng *infer.Engine, samples []*tensor.Tensor, ref [][]float32,
	concurrency, requests int, budget, delay time.Duration) (ShedCell, error) {
	cell := ShedCell{
		Concurrency: concurrency, DeadlineBudgetNs: budget.Nanoseconds(),
		BatchDelayNs: delay.Nanoseconds(), Attempted: int64(requests),
	}
	site := fault.Lookup("serve.batch")
	if site == nil {
		return cell, fmt.Errorf("bench: fault site serve.batch not registered")
	}
	if err := site.Arm(fault.Plan{Mode: fault.Delay, Every: 1, Sleep: delay}); err != nil {
		return cell, err
	}
	defer site.Disarm()
	// One dispatcher: dispatches are serialized so queue wait genuinely grows
	// with offered load — with the default worker pool delayed batches just
	// run side by side and the queue never backs up.
	srv := serve.New(eng, serve.Config{
		MaxBatch: 8, Linger: 100 * time.Microsecond, MaxQueue: concurrency + 8,
		Workers: 1, AdaptiveShed: true,
	})

	var next, mismatches, unexpected atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < concurrency; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := next.Add(1) - 1
				if k >= int64(requests) {
					return
				}
				idx := int(k) % len(samples)
				ctx, cancel := context.WithTimeout(context.Background(), budget)
				scores, err := srv.Infer(ctx, samples[idx])
				cancel()
				if err != nil {
					if !errors.Is(err, serve.ErrOverloaded) &&
						!errors.Is(err, context.DeadlineExceeded) &&
						!errors.Is(err, serve.ErrInternal) {
						unexpected.Add(1)
					}
					continue
				}
				for j := range scores {
					if scores[j] != ref[idx][j] {
						mismatches.Add(1)
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	cell.PredictedWaitNs = srv.WaitPrediction().Nanoseconds()

	dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	srv.Drain(dctx)
	cancel()

	st := srv.Stats()
	cell.Admitted = st.Admitted
	cell.Served = st.Served
	cell.Shed = st.Shed
	cell.Rejected = st.Rejected
	cell.Expired = st.Expired()
	cell.Failed = st.Failed
	cell.Mismatches = mismatches.Load()
	cell.ConservationOK = st.Resolved() == st.Admitted
	cell.ShedRatePct = 100 * float64(st.Shed) / float64(requests)
	cell.ServedPct = 100 * float64(st.Served) / float64(requests)
	if elapsed > 0 {
		cell.ThroughputRPS = float64(st.Served) / elapsed.Seconds()
	}
	if u := unexpected.Load(); u > 0 {
		return cell, fmt.Errorf("bench: resilience shed cell c=%d saw %d errors outside the failure model", concurrency, u)
	}
	return cell, nil
}

// PrintResilience writes the report as indented JSON (the BENCH artifact
// format).
func PrintResilience(w io.Writer, r *ResilienceReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("bench: encode resilience report: %w", err)
	}
	return nil
}
