package bench

import (
	"fmt"

	"ndsnn/internal/baselines"
	"ndsnn/internal/core"
	"ndsnn/internal/data"
	"ndsnn/internal/models"
	"ndsnn/internal/snn"
	"ndsnn/internal/train"
)

// Method names understood by Run.
const (
	MethodDense = "dense"
	MethodLTH   = "lth"
	MethodSET   = "set"
	MethodRigL  = "rigl"
	MethodNDSNN = "ndsnn"
	MethodADMM  = "admm"
)

// Methods lists every method in the paper's Table I order plus ADMM.
var Methods = []string{MethodDense, MethodLTH, MethodSET, MethodRigL, MethodNDSNN}

// Spec identifies one training run.
type Spec struct {
	Method   string
	Arch     string // "vgg16", "resnet19", "lenet5"
	Dataset  string // canonical key
	Sparsity float64
	// Timesteps overrides the scale default when > 0 (Fig. 4 uses T=2).
	Timesteps int
	// InitialSparsity overrides NDSNN's θᵢ rule when > 0 (Table III).
	InitialSparsity float64
	// Surrogate overrides the neuron's surrogate gradient ("atan", "rect",
	// "sigmoid"); empty means atan (ablation A4).
	Surrogate string
	// TimeParallel builds the model with ParLIF neurons: the membrane is
	// computed for all T timesteps in one banded filter pass instead of the
	// sequential recurrence (identical soft-reset dynamics; see snn.ParLIF).
	TimeParallel bool
	// Shape overrides NDSNN's ramp shape ("cubic", "linear", "step");
	// empty means cubic (ablation A2).
	Shape string
	// Distribution overrides the layer allocation ("erk", "uniform");
	// empty means erk (ablation A3).
	Distribution string
	// Grow overrides NDSNN's growth criterion ("gradient", "random");
	// empty means gradient (ablation A1).
	Grow string
	// DeltaT overrides the scale's mask-update period when > 0 (ablation A5).
	DeltaT int
	Seed   uint64
}

// InitialSparsityFor is the default θᵢ rule used when a Spec does not pin
// it: the paper picks θᵢ from {0.5..0.8}, lower targets taking lower θᵢ.
// Targets at or below 0.5 (Table II's moderate ratios) start from half the
// target so the population still shrinks.
func InitialSparsityFor(final float64) float64 {
	init := final - 0.25
	if init < 0.5 {
		init = 0.5
	}
	if init > 0.8 {
		init = 0.8
	}
	if init >= final {
		init = final / 2
	}
	return init
}

// Run executes one spec at the given scale and returns the uniform result.
// The dataset may be shared across runs (pass nil to have Run build it).
func Run(s Scale, spec Spec, ds *data.Dataset) (*train.Result, error) {
	if ds == nil {
		ds = s.Dataset(spec.Dataset, 1000+spec.Seed%7)
	}
	t := s.Timesteps
	if spec.Timesteps > 0 {
		t = spec.Timesteps
	}
	neuron := snn.DefaultNeuron()
	if spec.Surrogate != "" {
		neuron.Surrogate = snn.SurrogateByName(spec.Surrogate)
	}
	neuron.TimeParallel = spec.TimeParallel
	net := models.Build(models.Config{
		Arch: spec.Arch, Classes: ds.Config.Classes,
		InC: ds.Config.C, InH: ds.Config.H, InW: ds.Config.W,
		Timesteps: t, Neuron: neuron,
		Profile: s.Profile, Seed: spec.Seed*31 + 7,
	})
	return RunOn(s, spec, ds, net)
}

// RunOn executes a spec against a caller-provided network (which it trains
// in place) — the entry point for callers that need the trained model
// afterwards, e.g. for CSR export.
func RunOn(s Scale, spec Spec, ds *data.Dataset, net *snn.Network) (*train.Result, error) {
	deltaT := s.DeltaT
	if spec.DeltaT > 0 {
		deltaT = spec.DeltaT
	}
	lr := s.LRFor(spec.Arch)
	common := train.Common{
		Epochs: s.EpochsFor(spec.Dataset), BatchSize: s.BatchSize,
		LR: lr, LRMin: lr / 100, Momentum: 0.9, WeightDecay: 5e-4,
		MaxBatches: s.MaxBatches, Seed: spec.Seed + 1,
	}
	switch spec.Method {
	case MethodDense:
		return baselines.TrainDense(net, ds, common)
	case MethodSET:
		return baselines.TrainSET(net, ds, common, baselines.DSTConfig{Sparsity: spec.Sparsity, DeltaT: deltaT, Distribution: spec.Distribution})
	case MethodRigL:
		return baselines.TrainRigL(net, ds, common, baselines.DSTConfig{Sparsity: spec.Sparsity, DeltaT: deltaT, Distribution: spec.Distribution})
	case MethodLTH:
		return baselines.TrainLTH(net, ds, common, baselines.LTHConfig{
			TargetSparsity: spec.Sparsity,
			Rounds:         s.LTHRounds, EpochsPerRound: s.LTHEpochsPerRound,
			FinalEpochs: common.Epochs,
		})
	case MethodADMM:
		return baselines.TrainADMM(net, ds, common, baselines.ADMMConfig{
			TargetSparsity: spec.Sparsity,
			ADMMEpochs:     s.ADMMEpochs, FinetuneEpochs: common.Epochs,
		})
	case MethodNDSNN:
		init := spec.InitialSparsity
		if init == 0 {
			init = InitialSparsityFor(spec.Sparsity)
		}
		out, err := core.TrainNDSNN(net, ds, common, core.Config{
			InitialSparsity: init, FinalSparsity: spec.Sparsity, DeltaT: deltaT,
			Distribution: spec.Distribution,
			Grow:         core.GrowByName(spec.Grow),
			Shape:        core.ShapeByName(spec.Shape),
		})
		if err != nil {
			return nil, err
		}
		return &out.Result, nil
	default:
		return nil, fmt.Errorf("bench: unknown method %q", spec.Method)
	}
}
