// Package bench is the experiment harness: it maps every table and figure
// of the paper to a runnable experiment, at three scales.
//
//   - "unit": seconds-long configurations used by this repository's own
//     tests.
//   - "bench": the default for `go test -bench` and the ndsnn-bench CLI —
//     width-scaled models on reduced synthetic datasets. Absolute accuracies
//     are far below the paper's (smaller models, much less data, CPU
//     budget); what must reproduce is the *shape*: method ordering across
//     sparsities, the training-cost ranking, and the schedule behaviour.
//   - "paper": the full configuration (paper-width models, full class
//     counts and geometry, 300 epochs, T=5). It runs the identical code
//     path and is practical on a large CPU budget only.
//
// Scale also owns the dataset proxies: at reduced scales the CIFAR-100 and
// Tiny-ImageNet stand-ins shrink class counts and geometry proportionally
// (documented in DESIGN.md) while keeping their relative difficulty
// ordering.
package bench

import (
	"fmt"
	"os"

	"ndsnn/internal/data"
	"ndsnn/internal/models"
)

// Scale bundles every knob that trades fidelity for runtime.
type Scale struct {
	Name    string
	Profile models.Profile
	// Epochs / BatchSize / Timesteps mirror the paper's training setup.
	Epochs    int
	BatchSize int
	Timesteps int
	// LR is the initial learning rate (paper: 0.3 at batch 128).
	LR float64
	// PerArchLR overrides LR for specific architectures; width-scaled
	// models want architecture-specific rates (the deep narrow VGG-16
	// trains best hotter than ResNet-19 at tiny width).
	PerArchLR map[string]float64
	// DeltaT is the mask-update period in steps.
	DeltaT int
	// LTHRounds / LTHEpochsPerRound size the iterative-pruning baseline.
	LTHRounds, LTHEpochsPerRound int
	// ADMMEpochs sizes the ADMM regularized phase.
	ADMMEpochs int
	// MaxBatches caps steps per epoch (0 = full).
	MaxBatches int

	// Per-dataset proxy settings: class count, image size, split sizes.
	DatasetCfg map[string]DatasetScale
}

// DatasetScale describes one dataset proxy at this scale.
type DatasetScale struct {
	Classes       int
	Pixels        int
	TrainN, TestN int
}

// Canonical dataset keys.
const (
	CIFAR10      = "cifar10"
	CIFAR100     = "cifar100"
	TinyImageNet = "tinyimagenet"
)

// ScaleUnit is the test-suite scale.
var ScaleUnit = Scale{
	Name: "unit", Profile: models.ProfileTiny,
	Epochs: 2, BatchSize: 16, Timesteps: 2, LR: 0.08, DeltaT: 3,
	LTHRounds: 2, LTHEpochsPerRound: 1, ADMMEpochs: 1,
	DatasetCfg: map[string]DatasetScale{
		CIFAR10:      {Classes: 4, Pixels: 16, TrainN: 96, TestN: 48},
		CIFAR100:     {Classes: 6, Pixels: 16, TrainN: 120, TestN: 60},
		TinyImageNet: {Classes: 8, Pixels: 16, TrainN: 128, TestN: 64},
	},
}

// ScaleBench is the default experiment scale.
var ScaleBench = Scale{
	Name: "bench", Profile: models.ProfileTiny,
	Epochs: 8, BatchSize: 32, Timesteps: 2, LR: 0.1, DeltaT: 4,
	PerArchLR: map[string]float64{"vgg16": 0.2},
	LTHRounds: 2, LTHEpochsPerRound: 2, ADMMEpochs: 3,
	DatasetCfg: map[string]DatasetScale{
		CIFAR10:      {Classes: 10, Pixels: 16, TrainN: 480, TestN: 240},
		CIFAR100:     {Classes: 16, Pixels: 16, TrainN: 640, TestN: 320},
		TinyImageNet: {Classes: 24, Pixels: 24, TrainN: 720, TestN: 360},
	},
}

// ScalePaper is the full-fidelity configuration.
var ScalePaper = Scale{
	Name: "paper", Profile: models.ProfilePaper,
	Epochs: 300, BatchSize: 128, Timesteps: 5, LR: 0.3, DeltaT: 100,
	LTHRounds: 9, LTHEpochsPerRound: 100, ADMMEpochs: 150,
	DatasetCfg: map[string]DatasetScale{
		CIFAR10:      {Classes: 10, Pixels: 32, TrainN: 50000, TestN: 10000},
		CIFAR100:     {Classes: 100, Pixels: 32, TrainN: 50000, TestN: 10000},
		TinyImageNet: {Classes: 200, Pixels: 64, TrainN: 100000, TestN: 10000},
	},
}

// LRFor returns the learning rate for an architecture at this scale.
func (s Scale) LRFor(arch string) float64 {
	if lr, ok := s.PerArchLR[arch]; ok {
		return lr
	}
	return s.LR
}

// ScaleByName resolves "unit", "bench" or "paper" (default bench).
func ScaleByName(name string) Scale {
	switch name {
	case "unit":
		return ScaleUnit
	case "paper":
		return ScalePaper
	default:
		return ScaleBench
	}
}

// ScaleFromEnv reads NDSNN_SCALE (default "bench").
func ScaleFromEnv() Scale {
	return ScaleByName(os.Getenv("NDSNN_SCALE"))
}

// Dataset builds the proxy dataset for a canonical key at this scale.
// Paper scale on Tiny-ImageNet uses the lower epoch budget the paper uses
// (100), which callers handle via EpochsFor.
func (s Scale) Dataset(key string, seed uint64) *data.Dataset {
	cfg, ok := s.DatasetCfg[key]
	if !ok {
		panic(fmt.Sprintf("bench: unknown dataset %q", key))
	}
	noise, jitter := 0.3, 0.06
	if key == TinyImageNet {
		noise, jitter = 0.35, 0.08
	}
	return data.Generate(data.Config{
		Name: fmt.Sprintf("synth-%s-%s", key, s.Name), Classes: cfg.Classes,
		C: 3, H: cfg.Pixels, W: cfg.Pixels,
		TrainN: cfg.TrainN, TestN: cfg.TestN,
		Noise: noise, Jitter: jitter, Seed: seed,
	})
}

// EpochsFor returns the training epochs for a dataset, honoring the paper's
// reduced budget on Tiny-ImageNet (100 epochs vs 300).
func (s Scale) EpochsFor(key string) int {
	if key == TinyImageNet && s.Name == "paper" {
		return 100
	}
	return s.Epochs
}
