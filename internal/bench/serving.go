package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ndsnn/internal/infer"
	"ndsnn/internal/models"
	"ndsnn/internal/serve"
	"ndsnn/internal/snn"
	"ndsnn/internal/tensor"
)

// Serving benchmark: the multi-tenant layer over the compiled event engine.
// An NDSNN-trained model is compiled once and served to closed-loop load
// generators at several concurrency levels and coalescing limits, measuring
// per-request latency percentiles, throughput, and the realized batch size —
// and checking every served score vector bit-for-bit against the serial
// single-caller engine (the re-entrancy guarantee, enforced: any mismatch
// fails the run). Recorded as BENCH_serving.json.

// ServingCell is one load-generator measurement.
type ServingCell struct {
	// Engine is "float32" or "int8" (the QCSR integer engine).
	Engine string `json:"engine"`
	// Concurrency is the number of closed-loop clients (each keeps exactly
	// one request in flight).
	Concurrency int `json:"concurrency"`
	// MaxBatch / LingerNs are the server's coalescing knobs for this cell.
	MaxBatch int   `json:"max_batch"`
	LingerNs int64 `json:"linger_ns"`
	// Requests is how many requests the cell completed.
	Requests int `json:"requests"`
	// ThroughputRPS is completed requests per second of wall-clock.
	ThroughputRPS float64 `json:"throughput_rps"`
	// P50Ns / P99Ns are per-request latency percentiles.
	P50Ns int64 `json:"p50_ns"`
	P99Ns int64 `json:"p99_ns"`
	// MeanBatch is the realized coalescing factor over Batches engine passes.
	MeanBatch float64 `json:"mean_batch"`
	Batches   int64   `json:"batches"`
	// Rejected counts ErrOverloaded fast-fails (0 in these closed-loop cells:
	// the queue is sized to the client count).
	Rejected int64 `json:"rejected"`
	// Mismatches counts served score vectors that differed from the serial
	// reference in any bit. Must be 0.
	Mismatches int64 `json:"mismatches"`
}

// ServingReport is the recorded artifact.
type ServingReport struct {
	Arch     string  `json:"arch"`
	Sparsity float64 `json:"sparsity"`
	Samples  int     `json:"samples"`
	// SerialNsPerSample is the single-caller float32 engine baseline the
	// latency cells compare against.
	SerialNsPerSample int64         `json:"serial_ns_per_sample"`
	Cells             []ServingCell `json:"cells"`
}

// RunServing trains one NDSNN model, compiles the float32 engine (and the
// int8 QCSR engine for the final cell), and drives the serving layer with
// closed-loop load generators: a concurrency sweep at a fixed coalescing
// limit, a coalescing sweep at the top concurrency, and an int8 cell at the
// top concurrency. Every served score vector is checked bit-for-bit against
// the serial single-caller reference; any mismatch (or a non-finite latency
// percentile) is an error — the CI smoke gate.
func RunServing(s Scale, arch string, sparsity float64, concurrency, maxBatches []int, requests int, seed uint64, progress Progress) (*ServingReport, error) {
	ds := s.Dataset(CIFAR10, 2000+seed)
	net := models.Build(models.Config{
		Arch: arch, Classes: ds.Config.Classes,
		InC: ds.Config.C, InH: ds.Config.H, InW: ds.Config.W,
		Timesteps: s.Timesteps, Neuron: snn.DefaultNeuron(),
		Profile: s.Profile, Seed: seed*13 + 5,
	})
	spec := Spec{Method: MethodNDSNN, Arch: arch, Dataset: CIFAR10, Sparsity: sparsity, Seed: seed}
	if _, err := RunOn(s, spec, ds, net); err != nil {
		return nil, err
	}

	n := ds.Test.N()
	if n > 32 {
		n = 32
	}
	pix := ds.Config.C * ds.Config.H * ds.Config.W
	samples := make([]*tensor.Tensor, n)
	for i := range samples {
		samples[i] = tensor.FromSlice(ds.Test.Images[i*pix:(i+1)*pix], ds.Config.C, ds.Config.H, ds.Config.W)
	}

	feng, err := infer.Compile(net)
	if err != nil {
		return nil, err
	}
	fref, serialNs := serialReference(feng, samples)
	rep := &ServingReport{
		Arch: arch, Sparsity: sparsity, Samples: n,
		SerialNsPerSample: serialNs,
	}
	report(progress, "serving serial fp32: %s/sample over %d samples", time.Duration(serialNs), n)

	topConc := concurrency[len(concurrency)-1]
	fixedBatch := maxBatches[len(maxBatches)-1]

	// Concurrency sweep at the largest coalescing limit: p50/p99 and
	// throughput as clients pile on.
	for _, c := range concurrency {
		cell := runServingCell(feng, samples, fref, "float32", c, fixedBatch, servingLinger(fixedBatch), requests)
		rep.Cells = append(rep.Cells, cell)
		report(progress, "serving fp32 c=%d batch≤%d: %.0f req/s p50=%s p99=%s mean batch %.2f",
			c, fixedBatch, cell.ThroughputRPS, time.Duration(cell.P50Ns), time.Duration(cell.P99Ns), cell.MeanBatch)
	}
	// Coalescing sweep at the top concurrency: throughput scaling with the
	// batch limit.
	for _, b := range maxBatches {
		if b == fixedBatch {
			continue // already measured at topConc above
		}
		cell := runServingCell(feng, samples, fref, "float32", topConc, b, servingLinger(b), requests)
		rep.Cells = append(rep.Cells, cell)
		report(progress, "serving fp32 c=%d batch≤%d: %.0f req/s p50=%s p99=%s mean batch %.2f",
			topConc, b, cell.ThroughputRPS, time.Duration(cell.P50Ns), time.Duration(cell.P99Ns), cell.MeanBatch)
	}
	// Integer engine at the top concurrency: the serving layer is
	// engine-agnostic and the bit-identity guarantee holds for QCSR too.
	qeng, err := infer.CompileQuantized(net, 8)
	if err != nil {
		return nil, err
	}
	qref, _ := serialReference(qeng, samples)
	qcell := runServingCell(qeng, samples, qref, "int8", topConc, fixedBatch, servingLinger(fixedBatch), requests)
	rep.Cells = append(rep.Cells, qcell)
	report(progress, "serving int8 c=%d batch≤%d: %.0f req/s p50=%s p99=%s mean batch %.2f",
		topConc, fixedBatch, qcell.ThroughputRPS, time.Duration(qcell.P50Ns), time.Duration(qcell.P99Ns), qcell.MeanBatch)

	for _, cell := range rep.Cells {
		if cell.Mismatches != 0 {
			return nil, fmt.Errorf("bench: %s serving at concurrency %d diverged from the serial engine on %d requests (must be bit-identical)",
				cell.Engine, cell.Concurrency, cell.Mismatches)
		}
		if cell.P99Ns <= 0 || cell.P50Ns <= 0 {
			return nil, fmt.Errorf("bench: %s serving at concurrency %d produced a non-positive latency percentile (p50=%d p99=%d)",
				cell.Engine, cell.Concurrency, cell.P50Ns, cell.P99Ns)
		}
	}
	return rep, nil
}

// servingLinger picks the cell's linger: a short window when coalescing is
// possible (lets batches fill under bursty arrivals), none at batch 1.
func servingLinger(maxBatch int) time.Duration {
	if maxBatch <= 1 {
		return 0
	}
	return 100 * time.Microsecond
}

// serialReference runs the single-caller engine over the samples, returning
// the reference score vectors and the wall-clock per sample.
func serialReference(eng *infer.Engine, samples []*tensor.Tensor) ([][]float32, int64) {
	ref := make([][]float32, len(samples))
	start := time.Now()
	for i, s := range samples {
		ref[i] = eng.Infer(s)
	}
	return ref, time.Since(start).Nanoseconds() / int64(len(samples))
}

// runServingCell drives one server with `concurrency` closed-loop clients
// until `requests` requests complete, checking every response against the
// serial reference.
func runServingCell(eng *infer.Engine, samples []*tensor.Tensor, ref [][]float32,
	engine string, concurrency, maxBatch int, linger time.Duration, requests int) ServingCell {
	srv := serve.New(eng, serve.Config{
		MaxBatch: maxBatch,
		Linger:   linger,
		// Closed-loop clients have one request in flight each, so the queue
		// never needs to hold more than the client count.
		MaxQueue: concurrency + maxBatch,
	})
	defer srv.Close()

	var next, mismatches atomic.Int64
	lats := make([][]int64, concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < concurrency; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				k := next.Add(1) - 1
				if k >= int64(requests) {
					return
				}
				idx := int(k) % len(samples)
				t0 := time.Now()
				scores, err := srv.Infer(context.Background(), samples[idx])
				if err != nil {
					mismatches.Add(1)
					continue
				}
				lats[g] = append(lats[g], time.Since(t0).Nanoseconds())
				for j := range scores {
					if scores[j] != ref[idx][j] {
						mismatches.Add(1)
						break
					}
				}
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []int64
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	st := srv.Stats()
	cell := ServingCell{
		Engine: engine, Concurrency: concurrency,
		MaxBatch: maxBatch, LingerNs: linger.Nanoseconds(),
		Requests:   len(all),
		MeanBatch:  st.MeanBatch(),
		Batches:    st.Batches,
		Rejected:   st.Rejected,
		Mismatches: mismatches.Load(),
	}
	if elapsed > 0 {
		cell.ThroughputRPS = float64(len(all)) / elapsed.Seconds()
	}
	if len(all) > 0 {
		cell.P50Ns = percentileNs(all, 50)
		cell.P99Ns = percentileNs(all, 99)
	}
	return cell
}

// percentileNs returns the p-th percentile of sorted latencies.
func percentileNs(sorted []int64, p int) int64 {
	idx := (len(sorted)*p + 99) / 100
	if idx >= len(sorted) {
		idx = len(sorted)
	}
	if idx < 1 {
		idx = 1
	}
	return sorted[idx-1]
}

// PrintServing writes the report as indented JSON (the BENCH artifact
// format).
func PrintServing(w io.Writer, r *ServingReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("bench: encode serving report: %w", err)
	}
	return nil
}
