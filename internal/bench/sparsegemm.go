package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"

	"ndsnn/internal/rng"
	"ndsnn/internal/sparse"
	"ndsnn/internal/tensor"
)

// Sparse-GEMM microbenchmark: wall-clock of one training step's GEMM trio —
// forward W·col, backward-data Wᵀ·dy, backward-weight dy·colᵀ (active
// positions only on the CSR path) — dense vs CSR on a VGG-16-shaped layer,
// across the sparsity band the Eq. 4 ramp reaches. This is the repository's
// measured counterpart to the paper's "training FLOPs scale with density"
// analysis, recorded as BENCH_sparse_gemm.json.

// SparseGEMMCell is one sparsity level's measurement.
type SparseGEMMCell struct {
	Sparsity float64 `json:"sparsity"`
	NNZ      int     `json:"nnz"`
	// Per-training-step wall-clock (forward + backward-data +
	// backward-weight), nanoseconds, median of Iters runs.
	DenseNsPerStep int64   `json:"dense_ns_per_step"`
	CSRNsPerStep   int64   `json:"csr_ns_per_step"`
	Speedup        float64 `json:"speedup"`
	// MaxAbsDiff is the largest |dense−csr| across the forward and
	// backward-data outputs — the equivalence check riding along with the
	// timing.
	MaxAbsDiff float64 `json:"max_abs_diff"`
}

// SparseGEMMReport is the recorded artifact.
type SparseGEMMReport struct {
	Layer      string           `json:"layer"`
	Rows       int              `json:"rows"`
	Cols       int              `json:"cols"`
	Patch      int              `json:"patch"`
	Iters      int              `json:"iters"`
	Sparsities []SparseGEMMCell `json:"sparsities"`
}

// RunSparseGEMM measures dense vs CSR training-step kernels at the given
// sparsities on a [512, 4608]×[4608, 16] layer (VGG-16 deep stage on a 4×4
// map), taking the median of iters timed runs per path.
func RunSparseGEMM(sparsities []float64, iters int, seed uint64, progress Progress) *SparseGEMMReport {
	const (
		rows  = 512
		cols  = 4608
		patch = 16
	)
	rep := &SparseGEMMReport{
		Layer: "vgg16-conv512 (512 filters × 512·3·3 patch, 4×4 map)",
		Rows:  rows, Cols: cols, Patch: patch, Iters: iters,
	}
	for _, s := range sparsities {
		r := rng.New(seed + uint64(1000*s))
		w := tensor.New(rows, cols)
		mask := tensor.New(rows, cols)
		for i := range w.Data {
			if r.Float64() >= s {
				mask.Data[i] = 1
				w.Data[i] = r.NormFloat32()
			}
		}
		colT := tensor.New(cols, patch)
		dy := tensor.New(rows, patch)
		for i := range colT.Data {
			colT.Data[i] = r.NormFloat32()
		}
		for i := range dy.Data {
			dy.Data[i] = r.NormFloat32()
		}
		c := sparse.EncodeCSRWithMask(w, mask)
		vals := make([]float32, c.NNZ())

		yD := tensor.New(rows, patch)
		yC := tensor.New(rows, patch)
		dcolD := tensor.New(cols, patch)
		dcolC := tensor.New(cols, patch)
		dw := tensor.New(rows, cols)

		dense := func() {
			tensor.MatMulSerialInto(yD, w, colT, false)
			tensor.MatMulABTSerialInto(dw, dy, colT, true)
			tensor.MatMulATBSerialInto(dcolD, w, dy, false)
		}
		csr := func() {
			sparse.CSRMatMulSerialInto(yC, c, colT, false)
			sparse.CSRGradABTSerial(vals, c, dy, colT)
			sparse.CSRMatMulATBSerialInto(dcolC, c, dy, false)
		}
		cell := SparseGEMMCell{
			Sparsity:       s,
			NNZ:            c.NNZ(),
			DenseNsPerStep: medianNs(dense, iters),
			CSRNsPerStep:   medianNs(csr, iters),
		}
		if cell.CSRNsPerStep > 0 {
			cell.Speedup = float64(cell.DenseNsPerStep) / float64(cell.CSRNsPerStep)
		}
		cell.MaxAbsDiff = math.Max(maxAbsDiff32(yD.Data, yC.Data), maxAbsDiff32(dcolD.Data, dcolC.Data))
		rep.Sparsities = append(rep.Sparsities, cell)
		report(progress, "sparse-gemm @%.2f: dense=%s csr=%s speedup=%.1fx maxdiff=%.2g",
			s, time.Duration(cell.DenseNsPerStep), time.Duration(cell.CSRNsPerStep), cell.Speedup, cell.MaxAbsDiff)
	}
	return rep
}

func medianNs(fn func(), iters int) int64 {
	fn() // warm-up
	times := make([]int64, 0, iters)
	for i := 0; i < iters; i++ {
		start := time.Now()
		fn()
		times = append(times, time.Since(start).Nanoseconds())
	}
	for i := 1; i < len(times); i++ {
		for j := i; j > 0 && times[j] < times[j-1]; j-- {
			times[j], times[j-1] = times[j-1], times[j]
		}
	}
	return times[len(times)/2]
}

func maxAbsDiff32(a, b []float32) float64 {
	var m float64
	for i := range a {
		d := math.Abs(float64(a[i] - b[i]))
		if d > m {
			m = d
		}
	}
	return m
}

// PrintSparseGEMM writes the report as indented JSON (the BENCH artifact
// format).
func PrintSparseGEMM(w io.Writer, r *SparseGEMMReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("bench: encode sparse-gemm report: %w", err)
	}
	return nil
}
