package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"ndsnn/internal/layers"
	"ndsnn/internal/rng"
	"ndsnn/internal/snn"
	"ndsnn/internal/sparse"
	"ndsnn/internal/tape"
	"ndsnn/internal/tensor"
)

// Sparse temporal tape benchmark: the measured counterpart of the tape's two
// claims. PR 2's event-driven benchmark showed the *forward* scaling with
// weightDensity × spikeRate; this one shows (a) the *backward* pass doing the
// same once weight gradients consume the replayed event pattern, and (b) the
// BPTT activation-cache footprint dropping to ~occupancy of the dense
// baseline. Gradient equivalence against the dense-cache reference rides
// along as max_abs_grad_diff. Recorded as BENCH_sparse_tape.json.

// SparseTapeCell is one (spike rate, weight sparsity) measurement on the
// VGG-16-shaped convolution.
type SparseTapeCell struct {
	SpikeRate      float64 `json:"spike_rate"`
	WeightSparsity float64 `json:"weight_sparsity"`
	NNZWeights     int     `json:"nnz_weights"`
	// DenseBackwardNs is the per-timestep BPTT backward wall-clock with dense
	// activation caches (the PR 2 baseline: T per-timestep replays);
	// TapeBackwardNs is the time-major tape replay (fused event-pattern SDDMM
	// + one weight traversal for all T timesteps). Medians of Iters runs.
	DenseBackwardNs int64 `json:"dense_backward_ns"`
	TapeBackwardNs  int64 `json:"tape_backward_ns"`
	// BackwardSpeedup is DenseBackwardNs / TapeBackwardNs.
	BackwardSpeedup float64 `json:"backward_speedup"`
	// DenseCacheBytes / TapeCacheBytes is the retained activation-cache
	// footprint of the T cached timesteps under each representation.
	DenseCacheBytes int64 `json:"dense_cache_bytes"`
	TapeCacheBytes  int64 `json:"tape_cache_bytes"`
	// MemoryReduction is DenseCacheBytes / TapeCacheBytes.
	MemoryReduction float64 `json:"memory_reduction"`
	// MaxAbsGradDiff is the largest |dense-cache − tape-replay| over the
	// weight gradient — the equivalence check riding along (must be ≤ 1e-5).
	MaxAbsGradDiff float64 `json:"max_abs_grad_diff"`
}

// SparseTapeNetStats is the network-level rollup: identically-seeded masked
// conv→LIF stacks trained for one batch on the time-major engine with dense
// activation caches vs the event-encoded tape, comparing wall-clock, peak
// activation-cache memory and gradients end-to-end. (The step-major loop
// that used to be the baseline here is deleted; its behavior is pinned as
// golden fixtures in the snn package's equivalence tests.)
type SparseTapeNetStats struct {
	// DenseCacheNs / TapeCacheNs is one forward+backward pass, median of
	// Iters runs, with dense vs event-encoded activation caches.
	DenseCacheNs int64 `json:"dense_cache_ns"`
	TapeCacheNs  int64 `json:"tape_cache_ns"`
	// TapeSpeedup is DenseCacheNs / TapeCacheNs.
	TapeSpeedup float64 `json:"tape_speedup"`
	// DenseCachePeakBytes / TapeCachePeakBytes is the peak BPTT
	// activation-cache memory (tape meter high-water mark) at the end of the
	// training forward, when every timestep of every layer is retained.
	DenseCachePeakBytes int64 `json:"dense_cache_peak_bytes"`
	TapeCachePeakBytes  int64 `json:"tape_cache_peak_bytes"`
	// PeakMemoryReduction is DenseCachePeakBytes / TapeCachePeakBytes.
	PeakMemoryReduction float64 `json:"peak_memory_reduction"`
	// MaxAbsGradDiff is the largest parameter-gradient difference between the
	// two runs (identically seeded networks).
	MaxAbsGradDiff float64 `json:"max_abs_grad_diff"`
	// LIFSpikeRate is the measured firing probability feeding the caches.
	LIFSpikeRate float64 `json:"lif_spike_rate"`
}

// SparseTapeReport is the recorded artifact.
type SparseTapeReport struct {
	Layer     string              `json:"layer"`
	Rows      int                 `json:"rows"`
	Cols      int                 `json:"cols"`
	Patch     int                 `json:"patch"`
	Batch     int                 `json:"batch"`
	Timesteps int                 `json:"timesteps"`
	Iters     int                 `json:"iters"`
	Cells     []SparseTapeCell    `json:"cells"`
	Network   *SparseTapeNetStats `json:"network"`
}

// Gradient-equivalence gates: the fused replay accumulates timesteps in a
// different order than the step-major reference, so a small absolute
// difference is expected float noise (~1e-5 on the unnormalized gradient
// sums of the bench shapes); anything past these bounds is a real
// divergence and fails the run — this is the check the CI smoke run relies
// on.
const (
	tapeCellGradTol = 1e-4
	tapeNetGradTol  = 1e-5
)

// RunSparseTape measures dense-cache vs tape-replay backward passes on a
// VGG-16-shaped convolution (512 filters × 512·3·3 patch on an 8×8 map, the
// deep-stage shape of the sparse-gemm and event-driven benchmarks) across a
// (spikeRate, weightSparsity) grid, then rolls up a network-level
// time-major-vs-step-major comparison. Active-position-only gradients are
// armed (the steady-state training configuration); every cell records the
// gradient difference against the dense-cache reference and the run fails
// if any exceeds its tolerance.
func RunSparseTape(spikeRates, sparsities []float64, iters, timesteps int, seed uint64, progress Progress) (*SparseTapeReport, error) {
	const (
		inC   = 512
		outC  = 512
		side  = 8
		batch = 2
	)
	rep := &SparseTapeReport{
		Layer: "vgg16-conv512 (512 filters × 512·3·3 patch, 8×8 map)",
		Rows:  outC, Cols: inC * 9, Patch: side * side, Batch: batch,
		Timesteps: timesteps, Iters: iters,
	}
	for _, sp := range sparsities {
		for _, rate := range spikeRates {
			r := rng.New(seed + uint64(1000*sp) + uint64(31*rate*100))
			conv := layers.NewConv2d("tape.bench", inC, outC, 3, 1, 1, false, r)
			conv.Weight.Mask = sparse.RandomMask(conv.Weight.W.Shape(), 1-sp, r)
			conv.Weight.ApplyMask()
			conv.Weight.SparseGradOK = true
			// One spike raster per timestep (same rate, different patterns)
			// and one gradient per timestep, exactly as BPTT sees them.
			xs := make([]*tensor.Tensor, timesteps)
			dys := make([]*tensor.Tensor, timesteps)
			for t := 0; t < timesteps; t++ {
				xs[t] = tensor.New(batch, inC, side, side)
				for i := range xs[t].Data {
					if r.Float64() < rate {
						xs[t].Data[i] = 1
					}
				}
				dys[t] = tensor.New(batch, outC, side, side)
				for i := range dys[t].Data {
					dys[t].Data[i] = r.NormFloat32()
				}
			}

			// One measured BPTT replay per mode: time-major forward over the
			// T timesteps (untimed, train=true records the cache), then the
			// timed backward. With dense caches BackwardSeq degenerates to T
			// per-timestep replays — the PR 2 baseline; with the tape it runs
			// the fused event replay.
			measure := func(events bool) (backNs int64, cacheBytes int64, grad *tensor.Tensor) {
				old := tape.CacheEvents
				tape.CacheEvents = events
				defer func() { tape.CacheEvents = old }()
				times := make([]int64, 0, iters)
				for it := 0; it < iters+1; it++ { // first pass is warm-up
					base := tape.CacheBytes()
					conv.ForwardSeq(xs, true)
					cacheBytes = tape.CacheBytes() - base
					conv.Weight.ZeroGrad()
					start := time.Now()
					conv.BackwardSeq(dys)
					ns := time.Since(start).Nanoseconds()
					if it > 0 {
						times = append(times, ns)
					}
				}
				sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
				grad = conv.Weight.Grad.Clone()
				return times[len(times)/2] / int64(timesteps), cacheBytes, grad
			}
			denseNs, denseBytes, denseGrad := measure(false)
			tapeNs, tapeBytes, tapeGrad := measure(true)

			cell := SparseTapeCell{
				SpikeRate:       rate,
				WeightSparsity:  sp,
				NNZWeights:      conv.Weight.ActiveCount(),
				DenseBackwardNs: denseNs,
				TapeBackwardNs:  tapeNs,
				DenseCacheBytes: denseBytes,
				TapeCacheBytes:  tapeBytes,
				MaxAbsGradDiff:  maxAbsDiff32(denseGrad.Data, tapeGrad.Data),
			}
			if tapeNs > 0 {
				cell.BackwardSpeedup = float64(denseNs) / float64(tapeNs)
			}
			if tapeBytes > 0 {
				cell.MemoryReduction = float64(denseBytes) / float64(tapeBytes)
			}
			rep.Cells = append(rep.Cells, cell)
			conv.Weight.InvalidateCSR()
			report(progress, "sparse-tape θ=%.2f rate=%.2f: backward/t dense=%s tape=%s (%.1fx) cache %d→%d B (%.1fx) graddiff=%.2g",
				sp, rate, time.Duration(denseNs), time.Duration(tapeNs), cell.BackwardSpeedup,
				denseBytes, tapeBytes, cell.MemoryReduction, cell.MaxAbsGradDiff)
			if cell.MaxAbsGradDiff > tapeCellGradTol {
				return rep, fmt.Errorf("bench: sparse-tape θ=%.2f rate=%.2f: tape gradients diverge from the dense reference by %g (tolerance %g)",
					sp, rate, cell.MaxAbsGradDiff, tapeCellGradTol)
			}
		}
	}
	rep.Network = measureTapeNetwork(seed, timesteps, iters, progress)
	if rep.Network.MaxAbsGradDiff > tapeNetGradTol {
		return rep, fmt.Errorf("bench: sparse-tape network rollup: event-cache gradients diverge from the dense-cache reference by %g (tolerance %g)",
			rep.Network.MaxAbsGradDiff, tapeNetGradTol)
	}
	return rep, nil
}

// measureTapeNetwork runs one training batch through identically-seeded
// masked conv→LIF stacks on the time-major engine: dense activation caches
// (the replay cost model of the PR 2 baseline) vs the event-encoded tape,
// comparing wall-clock, peak cache bytes and every parameter gradient.
func measureTapeNetwork(seed uint64, timesteps, iters int, progress Progress) *SparseTapeNetStats {
	build := func() *snn.Network {
		r := rng.New(seed*17 + 3)
		c1 := layers.NewConv2d("n.c1", 3, 16, 3, 1, 1, false, r)
		c2 := layers.NewConv2d("n.c2", 16, 16, 3, 1, 1, false, r)
		fc := layers.NewLinear("n.fc", 16*8*8, 10, false, r)
		mr := rng.New(seed*19 + 7)
		for _, p := range []*layers.Param{c1.Weight, c2.Weight, fc.Weight} {
			p.Mask = sparse.RandomMask(p.W.Shape(), 0.1, mr)
			p.ApplyMask()
			p.SparseGradOK = true
		}
		return &snn.Network{
			Layers: []layers.Layer{
				c1, snn.DefaultNeuron().New(),
				c2, snn.DefaultNeuron().New(),
				layers.NewFlatten(), fc,
			},
			T: timesteps,
		}
	}
	r := rng.New(seed*23 + 11)
	x := tensor.New(8, 3, 8, 8)
	for i := range x.Data {
		x.Data[i] = r.NormFloat32()
	}

	// The loss gradient is fixed across iterations and modes (the final layer
	// always emits [8,10] per timestep), so it stays outside the timed region.
	dr := rng.New(seed * 29)
	douts := make([]*tensor.Tensor, timesteps)
	for t := range douts {
		douts[t] = tensor.New(8, 10)
		for i := range douts[t].Data {
			douts[t].Data[i] = dr.NormFloat32()
		}
	}

	run := func(net *snn.Network, events bool) (ns, peak int64, grads []*tensor.Tensor, spikeRate float64) {
		old := tape.CacheEvents
		tape.CacheEvents = events
		defer func() { tape.CacheEvents = old }()
		times := make([]int64, 0, iters)
		for it := 0; it < iters+1; it++ {
			base := tape.CacheBytes()
			net.ZeroGrads()
			start := time.Now()
			net.Forward(x, true)
			// After the training forward every timestep of every layer is
			// retained, so the current size is the pass's high-water mark.
			tape.ResetPeak()
			peak = tape.PeakBytes() - base
			net.Backward(douts)
			ns = time.Since(start).Nanoseconds()
			if it > 0 {
				times = append(times, ns)
			}
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		for _, p := range net.Params() {
			grads = append(grads, p.Grad.Clone())
		}
		return times[len(times)/2], peak, grads, net.SpikeRate()
	}

	dense := build()
	denseNs, densePeak, denseGrads, spikeRate := run(dense, false)
	taped := build()
	tapeNs, tapePeak, tapeGrads, _ := run(taped, true)

	stats := &SparseTapeNetStats{
		DenseCacheNs:        denseNs,
		TapeCacheNs:         tapeNs,
		DenseCachePeakBytes: densePeak,
		TapeCachePeakBytes:  tapePeak,
		LIFSpikeRate:        spikeRate,
	}
	if tapeNs > 0 {
		stats.TapeSpeedup = float64(denseNs) / float64(tapeNs)
	}
	if tapePeak > 0 {
		stats.PeakMemoryReduction = float64(densePeak) / float64(tapePeak)
	}
	for i := range denseGrads {
		if d := maxAbsDiff32(denseGrads[i].Data, tapeGrads[i].Data); d > stats.MaxAbsGradDiff {
			stats.MaxAbsGradDiff = d
		}
	}
	for _, net := range []*snn.Network{dense, taped} {
		for _, p := range net.Params() {
			p.InvalidateCSR()
		}
	}
	report(progress, "network rollup: dense-cache=%s tape=%s (%.2fx) peak cache %d→%d B (%.1fx) lif-rate=%.3f graddiff=%.2g",
		time.Duration(denseNs), time.Duration(tapeNs), stats.TapeSpeedup,
		densePeak, tapePeak, stats.PeakMemoryReduction, spikeRate, stats.MaxAbsGradDiff)
	return stats
}

// PrintSparseTape writes the report as indented JSON (the BENCH artifact
// format).
func PrintSparseTape(w io.Writer, r *SparseTapeReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("bench: encode sparse-tape report: %w", err)
	}
	return nil
}
