package bench

import (
	"fmt"
	"io"

	"ndsnn/internal/infer"
	"ndsnn/internal/models"
	"ndsnn/internal/snn"
	"ndsnn/internal/tensor"
)

// SynOpsRow is one sparsity point of the measured event-driven efficiency
// study: the engine's actual synaptic operations per sample versus the
// dense-MAC bound the paper's Sec. IV-C cost model normalizes against.
type SynOpsRow struct {
	Sparsity        float64
	Acc             float64
	SynOpsPerSample float64
	DenseMACs       float64
	// Ratio = SynOps / DenseMACs; the analytic model predicts
	// ≈ spikeRate × density.
	Ratio float64
}

// SynOpsResult carries the study for one architecture.
type SynOpsResult struct {
	Arch string
	Rows []SynOpsRow
}

// RunSynOps trains models at several sparsities, compiles each into the
// event-driven inference engine and measures real synaptic-op counts on the
// test set — the measured counterpart of the paper's analytic efficiency
// accounting.
func RunSynOps(s Scale, arch string, sparsities []float64, seed uint64, progress Progress) (*SynOpsResult, error) {
	ds := s.Dataset(CIFAR10, 1000+seed)
	out := &SynOpsResult{Arch: arch}
	evalN := ds.Test.N()
	if evalN > 64 {
		evalN = 64
	}
	for _, sp := range sparsities {
		spec := Spec{Method: MethodNDSNN, Arch: arch, Dataset: CIFAR10, Sparsity: sp, Seed: seed}
		if sp == 0 {
			spec.Method = MethodDense
		}
		net := models.Build(models.Config{
			Arch: arch, Classes: ds.Config.Classes,
			InC: ds.Config.C, InH: ds.Config.H, InW: ds.Config.W,
			Timesteps: s.Timesteps, Neuron: snn.DefaultNeuron(),
			Profile: s.Profile, Seed: seed*31 + 7,
		})
		if _, err := RunOn(s, spec, ds, net); err != nil {
			return nil, err
		}
		eng, err := infer.Compile(net)
		if err != nil {
			return nil, err
		}
		pix := ds.Config.C * ds.Config.H * ds.Config.W
		eng.ResetStats()
		correct := 0
		for i := 0; i < evalN; i++ {
			sample := tensor.FromSlice(ds.Test.Images[i*pix:(i+1)*pix], ds.Config.C, ds.Config.H, ds.Config.W)
			if eng.Classify(sample) == ds.Test.Labels[i] {
				correct++
			}
		}
		row := SynOpsRow{
			Sparsity:        sp,
			Acc:             float64(correct) / float64(evalN),
			SynOpsPerSample: float64(eng.SynOps()) / float64(evalN),
			DenseMACs:       float64(eng.DenseMACsPerTimestep() * int64(s.Timesteps)),
		}
		row.Ratio = row.SynOpsPerSample / row.DenseMACs
		out.Rows = append(out.Rows, row)
		report(progress, "synops %s θ=%.2f: acc=%.3f synops/sample=%.0f (%.2f%% of dense MACs)",
			arch, sp, row.Acc, row.SynOpsPerSample, row.Ratio*100)
	}
	return out, nil
}

// PrintSynOps renders the measured efficiency table.
func PrintSynOps(w io.Writer, r *SynOpsResult) {
	fmt.Fprintf(w, "\n=== Measured event-driven efficiency — %s (NDSNN-trained, CIFAR-10 proxy) ===\n", r.Arch)
	fmt.Fprintf(w, "%-9s %8s %18s %16s %12s\n", "sparsity", "acc(%)", "synops/sample", "dense MACs", "ratio(%)")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-9.2f %8.2f %18.0f %16.0f %12.3f\n",
			row.Sparsity, row.Acc*100, row.SynOpsPerSample, row.DenseMACs, row.Ratio*100)
	}
	fmt.Fprintln(w, "ratio ≈ spikeRate × density: the measured confirmation of the Sec. IV-C cost model.")
}
