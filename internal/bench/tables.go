package bench

import (
	"fmt"
	"io"
	"sort"

	"ndsnn/internal/train"
)

// Cell is one (architecture, dataset, method, sparsity) accuracy result.
type Cell struct {
	Arch, Dataset, Method string
	Sparsity              float64
	// Acc is final test accuracy in [0,1]; MeanTrainSparsity and Epochs
	// feed the efficiency discussion.
	Acc               float64
	MeanTrainSparsity float64
	Epochs            int
}

// Progress receives human-readable progress lines ("vgg16/cifar10 ndsnn
// @0.95: acc=…"); nil disables reporting.
type Progress func(line string)

func report(p Progress, format string, args ...interface{}) {
	if p != nil {
		p(fmt.Sprintf(format, args...))
	}
}

// Table1Config parametrizes the Table I reproduction.
type Table1Config struct {
	Scale      Scale
	Archs      []string
	Datasets   []string
	Sparsities []float64
	Methods    []string
	Seed       uint64
}

// DefaultTable1 mirrors the paper's Table I grid.
func DefaultTable1(s Scale) Table1Config {
	return Table1Config{
		Scale:      s,
		Archs:      []string{"vgg16", "resnet19"},
		Datasets:   []string{CIFAR10, CIFAR100, TinyImageNet},
		Sparsities: []float64{0.90, 0.95, 0.98, 0.99},
		Methods:    Methods,
		Seed:       7,
	}
}

// RunTable1 executes the Table I grid. Dense runs once per
// (arch, dataset); sparse methods run per sparsity.
func RunTable1(cfg Table1Config, progress Progress) ([]Cell, error) {
	var cells []Cell
	for _, ds := range cfg.Datasets {
		dataset := cfg.Scale.Dataset(ds, 1000+cfg.Seed)
		for _, arch := range cfg.Archs {
			for _, method := range cfg.Methods {
				sparsities := cfg.Sparsities
				if method == MethodDense {
					sparsities = []float64{0}
				}
				for _, sp := range sparsities {
					res, err := Run(cfg.Scale, Spec{
						Method: method, Arch: arch, Dataset: ds, Sparsity: sp, Seed: cfg.Seed,
					}, dataset)
					if err != nil {
						return cells, fmt.Errorf("table1 %s/%s/%s@%.2f: %w", arch, ds, method, sp, err)
					}
					cell := cellOf(arch, ds, method, sp, res)
					cells = append(cells, cell)
					report(progress, "table1 %s/%s %-5s θ=%.2f: acc=%.4f meanTrainSparsity=%.3f",
						arch, ds, method, sp, cell.Acc, cell.MeanTrainSparsity)
				}
			}
		}
	}
	return cells, nil
}

func cellOf(arch, ds, method string, sp float64, res *train.Result) Cell {
	return Cell{
		Arch: arch, Dataset: ds, Method: method, Sparsity: sp,
		Acc:               res.TestAcc,
		MeanTrainSparsity: res.Trajectory.MeanSparsity(),
		Epochs:            len(res.History),
	}
}

// PrintTable1 renders cells in the paper's layout: one block per
// (dataset, arch) with a sparsity column per ratio and a row per method.
func PrintTable1(w io.Writer, cells []Cell, sparsities []float64) {
	type key struct{ ds, arch string }
	blocks := map[key][]Cell{}
	var order []key
	for _, c := range cells {
		k := key{c.Dataset, c.Arch}
		if _, ok := blocks[k]; !ok {
			order = append(order, k)
		}
		blocks[k] = append(blocks[k], c)
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].ds != order[j].ds {
			return order[i].ds < order[j].ds
		}
		return order[i].arch < order[j].arch
	})
	for _, k := range order {
		fmt.Fprintf(w, "\n=== %s / %s — test accuracy (%%) ===\n", k.arch, k.ds)
		fmt.Fprintf(w, "%-8s", "method")
		for _, sp := range sparsities {
			fmt.Fprintf(w, " %7.0f%%", sp*100)
		}
		fmt.Fprintln(w)
		byMethod := map[string]map[float64]float64{}
		var dense float64
		hasDense := false
		for _, c := range blocks[k] {
			if c.Method == MethodDense {
				dense = c.Acc
				hasDense = true
				continue
			}
			if byMethod[c.Method] == nil {
				byMethod[c.Method] = map[float64]float64{}
			}
			byMethod[c.Method][c.Sparsity] = c.Acc
		}
		if hasDense {
			fmt.Fprintf(w, "%-8s %7.2f (reference, sparsity 0)\n", "dense", dense*100)
		}
		for _, m := range []string{MethodLTH, MethodSET, MethodRigL, MethodNDSNN} {
			row, ok := byMethod[m]
			if !ok {
				continue
			}
			fmt.Fprintf(w, "%-8s", m)
			for _, sp := range sparsities {
				if acc, ok := row[sp]; ok {
					fmt.Fprintf(w, " %7.2f ", acc*100)
				} else {
					fmt.Fprintf(w, " %7s ", "-")
				}
			}
			fmt.Fprintln(w)
		}
	}
}

// Table2Row is one sparsity column of the ADMM-vs-NDSNN comparison.
type Table2Row struct {
	Sparsity            float64
	ADMMAcc, ADMMLoss   float64 // LeNet-5 + ADMM and its loss vs dense LeNet-5
	NDSNNAcc, NDSNNLoss float64 // VGG-16 + NDSNN and its loss vs dense VGG-16
}

// Table2Result carries the rows plus the two dense references.
type Table2Result struct {
	DenseLeNet, DenseVGG float64
	Rows                 []Table2Row
}

// RunTable2 reproduces Table II: ADMM pruning on LeNet-5 vs NDSNN on VGG-16
// (CIFAR-10) at moderate sparsities, reporting accuracy loss vs each
// method's own dense baseline.
func RunTable2(s Scale, sparsities []float64, seed uint64, progress Progress) (*Table2Result, error) {
	dataset := s.Dataset(CIFAR10, 1000+seed)
	out := &Table2Result{}
	denseLe, err := Run(s, Spec{Method: MethodDense, Arch: "lenet5", Dataset: CIFAR10, Seed: seed}, dataset)
	if err != nil {
		return nil, err
	}
	out.DenseLeNet = denseLe.TestAcc
	denseVGG, err := Run(s, Spec{Method: MethodDense, Arch: "vgg16", Dataset: CIFAR10, Seed: seed}, dataset)
	if err != nil {
		return nil, err
	}
	out.DenseVGG = denseVGG.TestAcc
	for _, sp := range sparsities {
		admm, err := Run(s, Spec{Method: MethodADMM, Arch: "lenet5", Dataset: CIFAR10, Sparsity: sp, Seed: seed}, dataset)
		if err != nil {
			return nil, err
		}
		nd, err := Run(s, Spec{Method: MethodNDSNN, Arch: "vgg16", Dataset: CIFAR10, Sparsity: sp,
			InitialSparsity: InitialSparsityFor(sp), Seed: seed}, dataset)
		if err != nil {
			return nil, err
		}
		row := Table2Row{
			Sparsity: sp,
			ADMMAcc:  admm.TestAcc, ADMMLoss: out.DenseLeNet - admm.TestAcc,
			NDSNNAcc: nd.TestAcc, NDSNNLoss: out.DenseVGG - nd.TestAcc,
		}
		out.Rows = append(out.Rows, row)
		report(progress, "table2 θ=%.2f: admm=%.4f (Δ%.4f) ndsnn=%.4f (Δ%.4f)",
			sp, row.ADMMAcc, row.ADMMLoss, row.NDSNNAcc, row.NDSNNLoss)
	}
	return out, nil
}

// PrintTable2 renders the comparison in the paper's layout.
func PrintTable2(w io.Writer, r *Table2Result) {
	fmt.Fprintf(w, "\n=== Table II — ADMM (LeNet-5) vs NDSNN (VGG-16), CIFAR-10 proxy ===\n")
	fmt.Fprintf(w, "%-22s", "sparsity")
	for _, row := range r.Rows {
		fmt.Fprintf(w, " %6.0f%%", row.Sparsity*100)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "LeNet-5 dense: %.2f%%   VGG-16 dense: %.2f%%\n", r.DenseLeNet*100, r.DenseVGG*100)
	line := func(name string, f func(Table2Row) float64) {
		fmt.Fprintf(w, "%-22s", name)
		for _, row := range r.Rows {
			fmt.Fprintf(w, " %6.2f ", f(row)*100)
		}
		fmt.Fprintln(w)
	}
	line("ADMM acc", func(r Table2Row) float64 { return r.ADMMAcc })
	line("ADMM acc loss", func(r Table2Row) float64 { return r.ADMMLoss })
	line("NDSNN acc", func(r Table2Row) float64 { return r.NDSNNAcc })
	line("NDSNN acc loss", func(r Table2Row) float64 { return r.NDSNNLoss })
}

// Table3Cell is one initial-sparsity ablation point.
type Table3Cell struct {
	Arch, Dataset           string
	TargetSparsity, Initial float64
	Acc                     float64
}

// RunTable3 reproduces Table III: the effect of initial sparsity θᵢ on
// final accuracy for fixed targets.
func RunTable3(s Scale, archs, datasets []string, targets, initials []float64, seed uint64, progress Progress) ([]Table3Cell, error) {
	var cells []Table3Cell
	for _, ds := range datasets {
		dataset := s.Dataset(ds, 1000+seed)
		for _, arch := range archs {
			for _, tgt := range targets {
				for _, init := range initials {
					if init >= tgt {
						continue
					}
					res, err := Run(s, Spec{
						Method: MethodNDSNN, Arch: arch, Dataset: ds,
						Sparsity: tgt, InitialSparsity: init, Seed: seed,
					}, dataset)
					if err != nil {
						return cells, err
					}
					cells = append(cells, Table3Cell{Arch: arch, Dataset: ds, TargetSparsity: tgt, Initial: init, Acc: res.TestAcc})
					report(progress, "table3 %s/%s target=%.2f θi=%.1f: acc=%.4f", arch, ds, tgt, init, res.TestAcc)
				}
			}
		}
	}
	return cells, nil
}

// PrintTable3 renders the initial-sparsity study.
func PrintTable3(w io.Writer, cells []Table3Cell) {
	fmt.Fprintf(w, "\n=== Table III — effect of initial sparsity (NDSNN accuracy %%) ===\n")
	fmt.Fprintf(w, "%-8s %-14s %-7s %-5s %s\n", "target", "dataset", "arch", "θi", "acc")
	for _, c := range cells {
		fmt.Fprintf(w, "%-8.2f %-14s %-7s %-5.1f %6.2f\n", c.TargetSparsity, c.Dataset, c.Arch, c.Initial, c.Acc*100)
	}
}
