package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"ndsnn/internal/layers"
	"ndsnn/internal/metrics"
	"ndsnn/internal/rng"
	"ndsnn/internal/snn"
	"ndsnn/internal/sparse"
	"ndsnn/internal/tape"
	"ndsnn/internal/tensor"
)

// Time-parallel neuron benchmark: the measured side of the ParLIF claim.
// A LIF layer is the one place the time-major engine still runs a serial
// per-timestep recurrence; snn.ParLIF replaces it with one banded-filter
// pass over all T membrane values plus an element-local reset correction
// (see internal/sparse.DecayFilter). The trade is explicit: the filter costs
// Band× more arithmetic per element than the Horner recurrence but that
// arithmetic is embarrassingly parallel across neurons, so the wall-clock
// columns track the machine — on one core they show the FLOP surplus, with
// cores they show the recurrence bottleneck removed. The equivalence columns
// are machine-independent. Each cell trains identically-seeded masked conv→LIF
// stacks — per-step LIF vs ParLIF — on one batch and records forward and
// backward wall-clock, the retained tape-cache footprint, the measured
// synaptic operations against the dense-MAC bound, and the equivalence
// columns the acceptance gates ride on: spikes must agree exactly and
// forward outputs / parameter gradients within 1e-5. Recorded as
// BENCH_time_parallel.json.

// TimeParallelCell is one simulation-length measurement.
type TimeParallelCell struct {
	Timesteps int `json:"timesteps"`
	// LIFForwardNs / ParForwardNs is one training forward over all T
	// timesteps (median of Iters runs); likewise for the backward pass.
	LIFForwardNs    int64   `json:"lif_forward_ns"`
	ParForwardNs    int64   `json:"parlif_forward_ns"`
	ForwardSpeedup  float64 `json:"forward_speedup"`
	LIFBackwardNs   int64   `json:"lif_backward_ns"`
	ParBackwardNs   int64   `json:"parlif_backward_ns"`
	BackwardSpeedup float64 `json:"backward_speedup"`
	// LIFTapeCacheBytes / ParTapeCacheBytes is the activation-cache memory
	// retained after the training forward (ParLIF additionally caches its
	// dense membrane sequence for the fused backward).
	LIFTapeCacheBytes int64 `json:"lif_tape_cache_bytes"`
	ParTapeCacheBytes int64 `json:"parlif_tape_cache_bytes"`
	// SynOpsPerSample is the measured event-driven synaptic-operation count
	// for one sample over all T timesteps (ParLIF run), against the dense
	// bound DenseMACsPerSample = per-timestep dense MACs × T.
	SynOpsPerSample    float64 `json:"synops_per_sample"`
	DenseMACsPerSample float64 `json:"dense_macs_per_sample"`
	SynOpsRatio        float64 `json:"synops_ratio"`
	// Equivalence columns: SpikeCountDiff must be exactly 0 (the ParLIF
	// threshold decisions reproduce the sequential LIF's spikes bit-for-bit);
	// the forward and gradient diffs must stay within 1e-5 (banded filter vs
	// Horner recurrence rounding). The run fails past these bounds.
	MaxAbsForwardDiff float64 `json:"max_abs_forward_diff"`
	SpikeCountDiff    float64 `json:"spike_count_diff"`
	MaxAbsGradDiff    float64 `json:"max_abs_grad_diff"`
}

// TimeParallelReport is the recorded artifact.
type TimeParallelReport struct {
	Network string             `json:"network"`
	Batch   int                `json:"batch"`
	Iters   int                `json:"iters"`
	Cells   []TimeParallelCell `json:"cells"`
}

// Equivalence gates for the time-parallel cells. Spikes are binary decisions
// off identical membrane trajectories, so any mismatch at all is a real
// divergence; the float columns carry the explicit-sum vs Horner rounding
// difference of the banded filter, bounded well under 1e-5 on these shapes.
const (
	timeParallelFwdTol  = 1e-5
	timeParallelGradTol = 1e-5
)

// RunTimeParallel measures per-step LIF vs time-parallel ParLIF training
// passes across simulation lengths. Every cell checks equivalence against
// the sequential reference and the run fails if any gate is exceeded.
func RunTimeParallel(timesteps []int, iters int, seed uint64, progress Progress) (*TimeParallelReport, error) {
	rep := &TimeParallelReport{
		Network: "conv16 → LIF → conv16 → LIF → fc10 (3×8×8 input, 10% weight density)",
		Batch:   4,
		Iters:   iters,
	}
	for _, T := range timesteps {
		cell := measureTimeParallel(T, iters, seed)
		rep.Cells = append(rep.Cells, cell)
		report(progress, "time-parallel T=%d: fwd %s→%s (%.2fx) bwd %s→%s (%.2fx) cache %d→%d B spikes±%.0f fwd±%.2g grad±%.2g",
			T, time.Duration(cell.LIFForwardNs), time.Duration(cell.ParForwardNs), cell.ForwardSpeedup,
			time.Duration(cell.LIFBackwardNs), time.Duration(cell.ParBackwardNs), cell.BackwardSpeedup,
			cell.LIFTapeCacheBytes, cell.ParTapeCacheBytes,
			cell.SpikeCountDiff, cell.MaxAbsForwardDiff, cell.MaxAbsGradDiff)
		if cell.SpikeCountDiff != 0 {
			return rep, fmt.Errorf("bench: time-parallel T=%d: ParLIF spike count diverges from sequential LIF by %g (must be exact)",
				T, cell.SpikeCountDiff)
		}
		if cell.MaxAbsForwardDiff > timeParallelFwdTol {
			return rep, fmt.Errorf("bench: time-parallel T=%d: forward outputs diverge by %g (tolerance %g)",
				T, cell.MaxAbsForwardDiff, timeParallelFwdTol)
		}
		if cell.MaxAbsGradDiff > timeParallelGradTol {
			return rep, fmt.Errorf("bench: time-parallel T=%d: gradients diverge by %g (tolerance %g)",
				T, cell.MaxAbsGradDiff, timeParallelGradTol)
		}
	}
	return rep, nil
}

// measureTimeParallel runs one simulation length: identically-seeded stacks,
// identical data, one timed forward+backward per iteration per mode.
func measureTimeParallel(T, iters int, seed uint64) TimeParallelCell {
	const (
		batch = 4
		side  = 8
	)
	build := func(timeParallel bool) *snn.Network {
		r := rng.New(seed*41 + 5)
		neuron := snn.DefaultNeuron()
		neuron.TimeParallel = timeParallel
		c1 := layers.NewConv2d("tp.c1", 3, 16, 3, 1, 1, false, r)
		c2 := layers.NewConv2d("tp.c2", 16, 16, 3, 1, 1, false, r)
		fc := layers.NewLinear("tp.fc", 16*side*side, 10, false, r)
		mr := rng.New(seed*43 + 9)
		for _, p := range []*layers.Param{c1.Weight, c2.Weight, fc.Weight} {
			p.Mask = sparse.RandomMask(p.W.Shape(), 0.1, mr)
			p.ApplyMask()
			p.SparseGradOK = true
		}
		return &snn.Network{
			Layers: []layers.Layer{
				c1, neuron.NewNeuron(),
				c2, neuron.NewNeuron(),
				layers.NewFlatten(), fc,
			},
			T: T,
		}
	}
	r := rng.New(seed*47 + 13)
	x := tensor.New(batch, 3, side, side)
	for i := range x.Data {
		x.Data[i] = r.NormFloat32()
	}
	// Loss gradients scaled like a real rate-decoded loss (1/T per timestep)
	// so gradient magnitudes — and the diff column — stay T-independent.
	dr := rng.New(seed * 53)
	douts := make([]*tensor.Tensor, T)
	for t := range douts {
		douts[t] = tensor.New(batch, 10)
		for i := range douts[t].Data {
			douts[t].Data[i] = dr.NormFloat32() / float32(T)
		}
	}

	type result struct {
		fwdNs, bwdNs, cacheBytes int64
		outs                     []*tensor.Tensor
		grads                    []*tensor.Tensor
		spikes                   float64
		stats                    metrics.EventStats
	}
	run := func(net *snn.Network) result {
		var res result
		net.ResetSpikeStats()
		net.ResetEventStats()
		fwd := make([]int64, 0, iters)
		bwd := make([]int64, 0, iters)
		for it := 0; it < iters+1; it++ { // first pass is warm-up
			base := tape.CacheBytes()
			net.ZeroGrads()
			start := time.Now()
			res.outs = net.Forward(x, true)
			fns := time.Since(start).Nanoseconds()
			res.cacheBytes = tape.CacheBytes() - base
			start = time.Now()
			net.Backward(douts)
			bns := time.Since(start).Nanoseconds()
			if it > 0 {
				fwd = append(fwd, fns)
				bwd = append(bwd, bns)
			}
		}
		sort.Slice(fwd, func(i, j int) bool { return fwd[i] < fwd[j] })
		sort.Slice(bwd, func(i, j int) bool { return bwd[i] < bwd[j] })
		res.fwdNs, res.bwdNs = fwd[len(fwd)/2], bwd[len(bwd)/2]
		for _, p := range net.Params() {
			res.grads = append(res.grads, p.Grad.Clone())
		}
		res.spikes, _ = func() (float64, int64) {
			var sum float64
			var elems int64
			net.Walk(func(l layers.Layer) {
				if rec, ok := l.(snn.SpikeRecorder); ok {
					s, e := rec.SpikeStats()
					sum += s
					elems += e
				}
			})
			return sum, elems
		}()
		res.stats = net.EventStats()
		return res
	}

	lifNet := build(false)
	lif := run(lifNet)
	parNet := build(true)
	par := run(parNet)

	cell := TimeParallelCell{
		Timesteps:         T,
		LIFForwardNs:      lif.fwdNs,
		ParForwardNs:      par.fwdNs,
		LIFBackwardNs:     lif.bwdNs,
		ParBackwardNs:     par.bwdNs,
		LIFTapeCacheBytes: lif.cacheBytes,
		ParTapeCacheBytes: par.cacheBytes,
		SpikeCountDiff:    abs64(lif.spikes - par.spikes),
	}
	if par.fwdNs > 0 {
		cell.ForwardSpeedup = float64(lif.fwdNs) / float64(par.fwdNs)
	}
	if par.bwdNs > 0 {
		cell.BackwardSpeedup = float64(lif.bwdNs) / float64(par.bwdNs)
	}
	for t := range lif.outs {
		if d := maxAbsDiff32(lif.outs[t].Data, par.outs[t].Data); d > cell.MaxAbsForwardDiff {
			cell.MaxAbsForwardDiff = float64(d)
		}
	}
	for i := range lif.grads {
		if d := maxAbsDiff32(lif.grads[i].Data, par.grads[i].Data); d > cell.MaxAbsGradDiff {
			cell.MaxAbsGradDiff = float64(d)
		}
	}

	// Measured synaptic work of the ParLIF run against the dense bound. The
	// dense per-timestep MACs of the stack: each conv costs W.Size() MACs per
	// output pixel (side² of them), the linear its W.Size() once.
	var denseMACs int64
	for _, p := range layers.PrunableParams(parNet.Params()) {
		macs := int64(p.W.Size())
		if len(p.W.Shape()) == 4 {
			macs *= side * side
		}
		denseMACs += macs
	}
	density := 1 - layers.GlobalSparsity(layers.PrunableParams(parNet.Params()))
	cell.DenseMACsPerSample = float64(denseMACs) * float64(T)
	cell.SynOpsPerSample = metrics.MeasuredSynOps(denseMACs, density, par.stats, T)
	if cell.DenseMACsPerSample > 0 {
		cell.SynOpsRatio = cell.SynOpsPerSample / cell.DenseMACsPerSample
	}

	for _, net := range []*snn.Network{lifNet, parNet} {
		for _, p := range net.Params() {
			p.InvalidateCSR()
		}
	}
	return cell
}

func abs64(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// PrintTimeParallel writes the report as indented JSON (the BENCH artifact
// format).
func PrintTimeParallel(w io.Writer, r *TimeParallelReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("bench: encode time-parallel report: %w", err)
	}
	return nil
}
