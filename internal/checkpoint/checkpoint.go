// Package checkpoint persists trained models: every parameter tensor with
// its optional sparsity mask plus run metadata, gob-encoded. Inspection
// tooling operates directly on the stored tensors, so loading does not
// require rebuilding the network.
package checkpoint

import (
	"encoding/gob"
	"fmt"
	"os"

	"ndsnn/internal/layers"
	"ndsnn/internal/tensor"
)

// Param is one stored parameter tensor.
type Param struct {
	Name  string
	Shape []int
	Data  []float32
	// Mask is nil for dense parameters.
	Mask []float32
	// Prunable records whether the tensor participates in sparsification.
	Prunable bool
}

// Checkpoint is the on-disk model representation.
type Checkpoint struct {
	// Metadata describing how the model was produced.
	Arch, Dataset, Method, Scale string
	Sparsity                     float64
	TestAccuracy                 float64
	Params                       []Param
}

// FromParams captures the current state of a parameter list.
func FromParams(params []*layers.Param) []Param {
	out := make([]Param, 0, len(params))
	for _, p := range params {
		sp := Param{
			Name:     p.Name,
			Shape:    p.W.Shape(),
			Data:     append([]float32(nil), p.W.Data...),
			Prunable: !p.NoPrune,
		}
		if p.Mask != nil {
			sp.Mask = append([]float32(nil), p.Mask.Data...)
		}
		out = append(out, sp)
	}
	return out
}

// RestoreInto writes stored tensors back into a matching parameter list
// (same names and shapes, in order).
func (c *Checkpoint) RestoreInto(params []*layers.Param) error {
	if len(params) != len(c.Params) {
		return fmt.Errorf("checkpoint: have %d stored params, target has %d", len(c.Params), len(params))
	}
	for i, p := range params {
		sp := c.Params[i]
		if sp.Name != p.Name {
			return fmt.Errorf("checkpoint: param %d name %q != target %q", i, sp.Name, p.Name)
		}
		if len(sp.Data) != p.W.Size() {
			return fmt.Errorf("checkpoint: param %s size %d != target %d", sp.Name, len(sp.Data), p.W.Size())
		}
		copy(p.W.Data, sp.Data)
		if sp.Mask != nil {
			p.Mask = tensor.FromSlice(append([]float32(nil), sp.Mask...), sp.Shape...)
		} else {
			p.Mask = nil
		}
		p.InvalidateCSR()
	}
	return nil
}

// Save writes the checkpoint to path.
func Save(path string, c *Checkpoint) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close()
	if err := gob.NewEncoder(f).Encode(c); err != nil {
		return fmt.Errorf("checkpoint: encode: %w", err)
	}
	return nil
}

// Load reads a checkpoint from path.
func Load(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close()
	var c Checkpoint
	if err := gob.NewDecoder(f).Decode(&c); err != nil {
		return nil, fmt.Errorf("checkpoint: decode: %w", err)
	}
	return &c, nil
}

// Census summarizes one stored tensor's sparsity.
type Census struct {
	Name     string
	Shape    []int
	Total    int
	Active   int
	NonZero  int
	Prunable bool
}

// Census returns the per-tensor sparsity summary.
func (c *Checkpoint) Census() []Census {
	out := make([]Census, 0, len(c.Params))
	for _, p := range c.Params {
		cs := Census{Name: p.Name, Shape: p.Shape, Total: len(p.Data), Prunable: p.Prunable}
		for _, v := range p.Data {
			if v != 0 {
				cs.NonZero++
			}
		}
		if p.Mask == nil {
			cs.Active = cs.Total
		} else {
			for _, m := range p.Mask {
				if m != 0 {
					cs.Active++
				}
			}
		}
		out = append(out, cs)
	}
	return out
}

// GlobalSparsity returns overall prunable sparsity of the stored model.
func (c *Checkpoint) GlobalSparsity() float64 {
	total, active := 0, 0
	for _, cs := range c.Census() {
		if !cs.Prunable {
			continue
		}
		total += cs.Total
		active += cs.Active
	}
	if total == 0 {
		return 0
	}
	return 1 - float64(active)/float64(total)
}
