// Package checkpoint persists trained models: every parameter tensor with
// its optional sparsity mask plus run metadata, gob-encoded inside a framed,
// integrity-checked container. Inspection tooling operates directly on the
// stored tensors, so loading does not require rebuilding the network.
//
// # On-disk format
//
// A checkpoint file is one frame:
//
//	magic "NDSNCKPT" (8 bytes)
//	format version   (uint16 little-endian)
//	payload length   (uint64 little-endian)
//	payload          (gob-encoded Checkpoint)
//	CRC32-Castagnoli (uint32 little-endian, over everything above it)
//
// Load classifies damage with distinct typed errors: a file shorter than its
// declared frame is ErrTruncated (the signature of a crash mid-write), a
// checksum or structural mismatch is ErrCorrupt (bit rot, torn concurrent
// write), and a version newer than this build understands is
// ErrFutureVersion (never guess at a future layout). Files that do not start
// with the magic are read as legacy headerless gob — checkpoints written
// before the frame existed keep loading.
//
// Save is crash-safe by construction: the frame is written to a temp file in
// the destination directory, fsynced, then renamed over the target — so at
// every instant the destination path holds either the previous complete
// checkpoint or the new complete checkpoint, never a partial write. A kill
// mid-save loses only the temp file, and a torn temp file can never pass
// Load's frame checks.
package checkpoint

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"ndsnn/internal/fault"
	"ndsnn/internal/layers"
	"ndsnn/internal/tensor"
)

// Version is the newest frame version this build writes and understands.
const Version = 1

const (
	magic     = "NDSNCKPT"
	headerLen = len(magic) + 2 + 8 // magic + version + payload length
	footerLen = 4                  // CRC32
)

// Typed load failures. Callers branch with errors.Is.
var (
	// ErrTruncated marks a file shorter than its frame declares — the
	// signature of a crash or kill mid-write.
	ErrTruncated = errors.New("checkpoint: truncated file")
	// ErrCorrupt marks a frame whose checksum or structure does not verify,
	// or a legacy file that is not valid gob.
	ErrCorrupt = errors.New("checkpoint: corrupt file")
	// ErrFutureVersion marks a frame written by a newer format version.
	ErrFutureVersion = errors.New("checkpoint: future format version")
)

// Fault-injection sites of the save path (no-ops unless armed). Each stands
// in for a crash or I/O failure at a distinct point of the write protocol;
// the checkpoint tests arm them to prove the destination file is never left
// in a loadable-but-wrong state.
var (
	// faultSaveWrite fails between two half-writes of the temp file — a torn
	// write / mid-write kill.
	faultSaveWrite = fault.New("checkpoint.save.write", fault.CanError)
	// faultSaveSync fails the pre-rename fsync — data may not be durable.
	faultSaveSync = fault.New("checkpoint.save.sync", fault.CanError)
	// faultSaveRename fails the atomic publish step.
	faultSaveRename = fault.New("checkpoint.save.rename", fault.CanError)
)

// Param is one stored parameter tensor.
type Param struct {
	Name  string
	Shape []int
	Data  []float32
	// Mask is nil for dense parameters.
	Mask []float32
	// Prunable records whether the tensor participates in sparsification.
	Prunable bool
}

// Checkpoint is the on-disk model representation.
type Checkpoint struct {
	// Metadata describing how the model was produced.
	Arch, Dataset, Method, Scale string
	Sparsity                     float64
	TestAccuracy                 float64
	Params                       []Param
}

// FromParams captures the current state of a parameter list.
func FromParams(params []*layers.Param) []Param {
	out := make([]Param, 0, len(params))
	for _, p := range params {
		sp := Param{
			Name:     p.Name,
			Shape:    p.W.Shape(),
			Data:     append([]float32(nil), p.W.Data...),
			Prunable: !p.NoPrune,
		}
		if p.Mask != nil {
			sp.Mask = append([]float32(nil), p.Mask.Data...)
		}
		out = append(out, sp)
	}
	return out
}

// RestoreInto writes stored tensors back into a matching parameter list
// (same names and shapes, in order).
func (c *Checkpoint) RestoreInto(params []*layers.Param) error {
	if len(params) != len(c.Params) {
		return fmt.Errorf("checkpoint: have %d stored params, target has %d", len(c.Params), len(params))
	}
	for i, p := range params {
		sp := c.Params[i]
		if sp.Name != p.Name {
			return fmt.Errorf("checkpoint: param %d name %q != target %q", i, sp.Name, p.Name)
		}
		if len(sp.Data) != p.W.Size() {
			return fmt.Errorf("checkpoint: param %s size %d != target %d", sp.Name, len(sp.Data), p.W.Size())
		}
		copy(p.W.Data, sp.Data)
		if sp.Mask != nil {
			p.Mask = tensor.FromSlice(append([]float32(nil), sp.Mask...), sp.Shape...)
		} else {
			p.Mask = nil
		}
		p.InvalidateCSR()
	}
	return nil
}

// Encode serializes a checkpoint into one complete frame (header, gob
// payload, CRC footer) — the exact bytes Save writes.
func Encode(c *Checkpoint) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString(magic)
	var hdr [10]byte
	binary.LittleEndian.PutUint16(hdr[0:2], Version)
	// Payload length is back-patched once the gob size is known.
	buf.Write(hdr[:])
	if err := gob.NewEncoder(&buf).Encode(c); err != nil {
		return nil, fmt.Errorf("checkpoint: encode: %w", err)
	}
	frame := buf.Bytes()
	plen := uint64(len(frame) - headerLen)
	binary.LittleEndian.PutUint64(frame[len(magic)+2:headerLen], plen)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(frame, castagnoli))
	return append(frame, crc[:]...), nil
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Decode parses one frame (or a legacy headerless gob stream), classifying
// damage with the package's typed errors. This is the byte-level core of
// Load and the fuzz target's entry point.
func Decode(data []byte) (*Checkpoint, error) {
	if !bytes.HasPrefix(data, []byte(magic)) {
		return decodeLegacy(data)
	}
	if len(data) < headerLen {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the %d-byte header", ErrTruncated, len(data), headerLen)
	}
	// Version gates before the checksum: a future version may well checksum
	// differently, and "too new" is the more actionable error.
	ver := binary.LittleEndian.Uint16(data[len(magic):])
	if ver > Version {
		return nil, fmt.Errorf("%w: file is v%d, this build reads ≤ v%d", ErrFutureVersion, ver, Version)
	}
	plen := binary.LittleEndian.Uint64(data[len(magic)+2:])
	if plen > uint64(len(data)) {
		return nil, fmt.Errorf("%w: header declares %d payload bytes, file has %d total", ErrTruncated, plen, len(data))
	}
	need := headerLen + int(plen) + footerLen
	if len(data) < need {
		return nil, fmt.Errorf("%w: frame needs %d bytes, file has %d", ErrTruncated, need, len(data))
	}
	if len(data) > need {
		return nil, fmt.Errorf("%w: %d trailing bytes after the frame", ErrCorrupt, len(data)-need)
	}
	body := data[:headerLen+int(plen)]
	want := binary.LittleEndian.Uint32(data[len(body):])
	if got := crc32.Checksum(body, castagnoli); got != want {
		return nil, fmt.Errorf("%w: CRC mismatch (stored %08x, computed %08x)", ErrCorrupt, want, got)
	}
	var c Checkpoint
	if err := gob.NewDecoder(bytes.NewReader(body[headerLen:])).Decode(&c); err != nil {
		return nil, fmt.Errorf("%w: payload gob: %v", ErrCorrupt, err)
	}
	return &c, nil
}

// decodeLegacy reads the pre-frame format: a bare gob stream with no header
// or checksum. Undetectable truncation is exactly why the frame exists, but
// old files must keep loading.
func decodeLegacy(data []byte) (*Checkpoint, error) {
	var c Checkpoint
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&c); err != nil {
		return nil, fmt.Errorf("%w: legacy gob: %v", ErrCorrupt, err)
	}
	return &c, nil
}

// Save atomically writes the checkpoint to path: encode the full frame,
// write it to a temp file in the destination directory, fsync, rename over
// path, fsync the directory. A crash at any point leaves path holding either
// the previous complete checkpoint or the new one — never a torn frame. On
// error the temp file is removed and path is untouched.
func Save(path string, c *Checkpoint) error {
	frame, err := Encode(c)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: %w", err)
	}
	// Two half-writes with the torn-write fault site between them: an
	// injected failure here models a kill mid-write and leaves path intact.
	half := len(frame) / 2
	if _, err := f.Write(frame[:half]); err != nil {
		return fail(err)
	}
	if err := faultSaveWrite.Err(); err != nil {
		return fail(err)
	}
	if _, err := f.Write(frame[half:]); err != nil {
		return fail(err)
	}
	if err := faultSaveSync.Err(); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := faultSaveRename.Err(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: %w", err)
	}
	// Make the rename itself durable. Best-effort: some filesystems refuse
	// directory fsync, and the data frame is already synced.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// Load reads a checkpoint from path, classifying damage with ErrTruncated,
// ErrCorrupt or ErrFutureVersion (errors.Is). Legacy headerless gob files
// load transparently.
func Load(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return Decode(data)
}

// Census summarizes one stored tensor's sparsity.
type Census struct {
	Name     string
	Shape    []int
	Total    int
	Active   int
	NonZero  int
	Prunable bool
}

// Census returns the per-tensor sparsity summary.
func (c *Checkpoint) Census() []Census {
	out := make([]Census, 0, len(c.Params))
	for _, p := range c.Params {
		cs := Census{Name: p.Name, Shape: p.Shape, Total: len(p.Data), Prunable: p.Prunable}
		for _, v := range p.Data {
			if v != 0 {
				cs.NonZero++
			}
		}
		if p.Mask == nil {
			cs.Active = cs.Total
		} else {
			for _, m := range p.Mask {
				if m != 0 {
					cs.Active++
				}
			}
		}
		out = append(out, cs)
	}
	return out
}

// GlobalSparsity returns overall prunable sparsity of the stored model.
func (c *Checkpoint) GlobalSparsity() float64 {
	total, active := 0, 0
	for _, cs := range c.Census() {
		if !cs.Prunable {
			continue
		}
		total += cs.Total
		active += cs.Active
	}
	if total == 0 {
		return 0
	}
	return 1 - float64(active)/float64(total)
}
