package checkpoint

import (
	"path/filepath"
	"testing"

	"ndsnn/internal/layers"
	"ndsnn/internal/tensor"
)

func sampleParams() []*layers.Param {
	p1 := layers.NewParam("conv.w", tensor.FromSlice([]float32{1, 0, 3, 0}, 2, 2))
	p1.Mask = tensor.FromSlice([]float32{1, 0, 1, 0}, 2, 2)
	p2 := layers.NewParam("fc.b", tensor.FromSlice([]float32{0.5, -0.5}, 2))
	p2.NoPrune = true
	return []*layers.Param{p1, p2}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.ckpt")
	ck := &Checkpoint{
		Arch: "vgg16", Dataset: "cifar10", Method: "ndsnn", Scale: "unit",
		Sparsity: 0.9, TestAccuracy: 0.42,
		Params: FromParams(sampleParams()),
	}
	if err := Save(path, ck); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Arch != "vgg16" || got.TestAccuracy != 0.42 || len(got.Params) != 2 {
		t.Fatalf("loaded %+v", got)
	}
	if got.Params[0].Mask == nil || got.Params[1].Mask != nil {
		t.Fatal("mask presence not preserved")
	}
	if got.Params[0].Data[2] != 3 {
		t.Fatal("weight data corrupted")
	}
}

func TestRestoreInto(t *testing.T) {
	src := sampleParams()
	ck := &Checkpoint{Params: FromParams(src)}
	dst := []*layers.Param{
		layers.NewParam("conv.w", tensor.New(2, 2)),
		layers.NewParam("fc.b", tensor.New(2)),
	}
	if err := ck.RestoreInto(dst); err != nil {
		t.Fatal(err)
	}
	if dst[0].W.Data[2] != 3 || dst[1].W.Data[0] != 0.5 {
		t.Fatal("restore did not copy weights")
	}
	if dst[0].Mask == nil || dst[0].Mask.Data[1] != 0 {
		t.Fatal("restore did not rebuild mask")
	}
}

func TestRestoreIntoMismatch(t *testing.T) {
	ck := &Checkpoint{Params: FromParams(sampleParams())}
	if err := ck.RestoreInto([]*layers.Param{layers.NewParam("x", tensor.New(1))}); err == nil {
		t.Fatal("count mismatch not rejected")
	}
	wrongName := []*layers.Param{
		layers.NewParam("other.w", tensor.New(2, 2)),
		layers.NewParam("fc.b", tensor.New(2)),
	}
	if err := ck.RestoreInto(wrongName); err == nil {
		t.Fatal("name mismatch not rejected")
	}
}

func TestCensusAndGlobalSparsity(t *testing.T) {
	ck := &Checkpoint{Params: FromParams(sampleParams())}
	cs := ck.Census()
	if len(cs) != 2 {
		t.Fatalf("census %v", cs)
	}
	if cs[0].Active != 2 || cs[0].NonZero != 2 || cs[0].Total != 4 {
		t.Fatalf("census[0] = %+v", cs[0])
	}
	if cs[1].Active != 2 {
		t.Fatalf("dense param census = %+v", cs[1])
	}
	// Only the prunable conv counts: 2/4 active → 0.5 sparsity.
	if got := ck.GlobalSparsity(); got != 0.5 {
		t.Fatalf("global sparsity = %v", got)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load("/nonexistent/path.ckpt"); err == nil {
		t.Fatal("missing file not reported")
	}
}
