package checkpoint

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// fuzzSeeds builds the seed inputs shared by the fuzz target and the
// checked-in corpus generator: a valid frame, its interesting truncations,
// header mutations, a legacy gob stream, and plain garbage.
func fuzzSeeds() [][]byte {
	c := &Checkpoint{
		Arch: "vgg16", Dataset: "cifar10", Method: "ndsnn", Scale: "unit",
		Sparsity: 0.9, TestAccuracy: 0.42,
		Params: FromParams(sampleParams()),
	}
	frame, err := Encode(c)
	if err != nil {
		panic(err)
	}
	legacy, err := Encode(c)
	if err != nil {
		panic(err)
	}
	legacyGob := legacy[headerLen : len(legacy)-footerLen]

	flipped := append([]byte(nil), frame...)
	flipped[len(flipped)/2] ^= 0x40

	badVer := append([]byte(nil), frame...)
	badVer[len(magic)] = 0xFF

	seeds := [][]byte{
		frame,
		frame[:headerLen/2],
		frame[:headerLen],
		frame[:len(frame)-footerLen],
		frame[:len(frame)-1],
		flipped,
		badVer,
		append(append([]byte(nil), frame...), 0xEE),
		append([]byte(nil), legacyGob...),
		legacyGob[:len(legacyGob)/2],
		[]byte(magic),
		{},
		[]byte("not a checkpoint at all"),
	}
	out := make([][]byte, len(seeds))
	for i, s := range seeds {
		out[i] = append([]byte(nil), s...)
	}
	return out
}

// FuzzDecode throws arbitrary bytes at the frame parser. The invariants: it
// never panics, every failure is one of the package's typed errors (or the
// legacy-corrupt wrapper), and anything that does load re-encodes into a
// frame that loads back equal — no input may produce a checkpoint the
// writer side cannot represent.
func FuzzDecode(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrFutureVersion) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		frame, err := Encode(c)
		if err != nil {
			t.Fatalf("loaded checkpoint does not re-encode: %v", err)
		}
		c2, err := Decode(frame)
		if err != nil {
			t.Fatalf("re-encoded frame does not load: %v", err)
		}
		if c2.Arch != c.Arch || c2.TestAccuracy != c.TestAccuracy || len(c2.Params) != len(c.Params) {
			t.Fatalf("re-encode round trip drifted: %+v vs %+v", c, c2)
		}
	})
}

// TestGenerateFuzzCorpus regenerates the checked-in seed corpus under
// testdata/fuzz/FuzzDecode when NDSNN_GEN_CORPUS=1 — run after changing the
// frame format or the seed list. Normally it only verifies the corpus files
// replay through Decode without panicking (CI's corpus-only fuzz replay runs
// the same files through the full fuzz harness).
func TestGenerateFuzzCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzDecode")
	if os.Getenv("NDSNN_GEN_CORPUS") == "1" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, s := range fuzzSeeds() {
			body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(s)) + ")\n"
			name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("seed corpus missing (run with NDSNN_GEN_CORPUS=1 to generate): %v", err)
	}
	if len(ents) == 0 {
		t.Fatal("seed corpus directory is empty")
	}
}
