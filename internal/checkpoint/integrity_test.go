package checkpoint

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"ndsnn/internal/fault"
)

func sampleCheckpoint() *Checkpoint {
	return &Checkpoint{
		Arch: "vgg16", Dataset: "cifar10", Method: "ndsnn", Scale: "unit",
		Sparsity: 0.9, TestAccuracy: 0.42,
		Params: FromParams(sampleParams()),
	}
}

func mustEncode(t *testing.T, c *Checkpoint) []byte {
	t.Helper()
	frame, err := Encode(c)
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

// TestTruncationSweep: every strict prefix of a valid frame must fail with a
// typed error — never load, never panic. Prefixes that cut into the magic
// fall through to the legacy path and classify as corrupt; anything with the
// full magic classifies as truncated.
func TestTruncationSweep(t *testing.T) {
	frame := mustEncode(t, sampleCheckpoint())
	for n := 0; n < len(frame); n++ {
		_, err := Decode(frame[:n])
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes loaded", n, len(frame))
		}
		if n >= len(magic) && !errors.Is(err, ErrTruncated) {
			t.Fatalf("prefix of %d bytes: got %v, want ErrTruncated", n, err)
		}
		if n < len(magic) && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("prefix of %d bytes: got %v, want ErrCorrupt (legacy path)", n, err)
		}
	}
}

// TestBitFlipSweep: flipping any single bit in the payload or footer must be
// caught by the CRC (or the gob structure), and header flips must classify
// as one of the typed errors. No flip may yield a silently-wrong load.
func TestBitFlipSweep(t *testing.T) {
	orig := sampleCheckpoint()
	frame := mustEncode(t, orig)
	for i := 0; i < len(frame); i++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), frame...)
			mut[i] ^= 1 << bit
			got, err := Decode(mut)
			if err == nil {
				// A magic-byte flip may coincidentally decode as legacy gob
				// only if gob accepts it — it will not, but assert anyway.
				if got.Arch != orig.Arch || got.TestAccuracy != orig.TestAccuracy {
					t.Fatalf("byte %d bit %d: corrupt frame loaded wrong data", i, bit)
				}
				t.Fatalf("byte %d bit %d: corrupt frame loaded", i, bit)
			}
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrFutureVersion) {
				t.Fatalf("byte %d bit %d: untyped error %v", i, bit, err)
			}
		}
	}
}

// TestFutureVersionRejected: a frame stamped v(Version+1) is refused with
// ErrFutureVersion even though everything else verifies.
func TestFutureVersionRejected(t *testing.T) {
	frame := mustEncode(t, sampleCheckpoint())
	binary.LittleEndian.PutUint16(frame[len(magic):], Version+1)
	// Restamp the CRC so only the version differs.
	body := frame[:len(frame)-footerLen]
	binary.LittleEndian.PutUint32(frame[len(body):], crc32.Checksum(body, castagnoli))
	if _, err := Decode(frame); !errors.Is(err, ErrFutureVersion) {
		t.Fatalf("got %v, want ErrFutureVersion", err)
	}
}

// TestTrailingJunkRejected: bytes after the frame are corruption, not slack.
func TestTrailingJunkRejected(t *testing.T) {
	frame := mustEncode(t, sampleCheckpoint())
	frame = append(frame, 0xEE)
	if _, err := Decode(frame); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
}

// TestLegacyHeaderlessLoads: files written by the pre-frame Save (bare gob)
// still load.
func TestLegacyHeaderlessLoads(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "legacy.ckpt")
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(sampleCheckpoint()); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("legacy load: %v", err)
	}
	if got.Arch != "vgg16" || len(got.Params) != 2 {
		t.Fatalf("legacy load returned %+v", got)
	}
}

// TestSaveCrashMidWriteKeepsPrevious: with the torn-write fault armed, Save
// fails after half the temp file is written — and the destination still
// holds the previous complete checkpoint, byte-identical. The acceptance
// criterion: a mid-write kill never leaves a loadable-but-corrupt file.
func TestSaveCrashMidWriteKeepsPrevious(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.ckpt")
	prev := sampleCheckpoint()
	if err := Save(path, prev); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	next := sampleCheckpoint()
	next.TestAccuracy = 0.99
	for _, site := range []string{"checkpoint.save.write", "checkpoint.save.sync", "checkpoint.save.rename"} {
		s := fault.Lookup(site)
		if s == nil {
			t.Fatalf("site %s not registered", site)
		}
		if err := s.Arm(fault.Plan{Mode: fault.Error, Hit: 1}); err != nil {
			t.Fatal(err)
		}
		err := Save(path, next)
		s.Disarm()
		if !errors.Is(err, fault.ErrInjected) {
			t.Fatalf("%s: Save returned %v, want injected error", site, err)
		}
		after, rerr := os.ReadFile(path)
		if rerr != nil {
			t.Fatalf("%s: destination unreadable after failed save: %v", site, rerr)
		}
		if !bytes.Equal(before, after) {
			t.Fatalf("%s: failed save mutated the destination", site)
		}
		got, lerr := Load(path)
		if lerr != nil || got.TestAccuracy != prev.TestAccuracy {
			t.Fatalf("%s: previous checkpoint not intact: %v %+v", site, lerr, got)
		}
		// No temp litter: the failed save cleans up after itself.
		ents, derr := os.ReadDir(dir)
		if derr != nil {
			t.Fatal(derr)
		}
		if len(ents) != 1 {
			t.Fatalf("%s: %d files left in dir, want just the checkpoint", site, len(ents))
		}
	}

	// Disarmed, the same save succeeds and fully replaces the file.
	if err := Save(path, next); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil || got.TestAccuracy != 0.99 {
		t.Fatalf("post-fault save: %v %+v", err, got)
	}
}

// TestTornTempFrameNeverLoads: the bytes a mid-write kill would leave in the
// temp file (every half-written prefix) are rejected by Decode — so even if
// a torn temp were somehow renamed into place, it could not load.
func TestTornTempFrameNeverLoads(t *testing.T) {
	frame := mustEncode(t, sampleCheckpoint())
	half := len(frame) / 2
	if _, err := Decode(frame[:half]); err == nil {
		t.Fatal("half-written frame loaded")
	}
}

// TestEncodeDecodeRoundTrip pins the frame layout: header fields where the
// format doc says they are, and a byte-exact round trip.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	c := sampleCheckpoint()
	frame := mustEncode(t, c)
	if !bytes.HasPrefix(frame, []byte(magic)) {
		t.Fatal("frame does not start with magic")
	}
	if v := binary.LittleEndian.Uint16(frame[len(magic):]); v != Version {
		t.Fatalf("stamped version %d, want %d", v, Version)
	}
	plen := binary.LittleEndian.Uint64(frame[len(magic)+2:])
	if int(plen) != len(frame)-headerLen-footerLen {
		t.Fatalf("declared payload %d, frame implies %d", plen, len(frame)-headerLen-footerLen)
	}
	got, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.Arch != c.Arch || got.TestAccuracy != c.TestAccuracy || len(got.Params) != len(c.Params) {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if got.Params[0].Data[2] != 3 || got.Params[0].Mask == nil {
		t.Fatal("round trip corrupted tensors")
	}
}
