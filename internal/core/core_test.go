package core

import (
	"math"
	"testing"
	"testing/quick"

	"ndsnn/internal/layers"
	"ndsnn/internal/opt"
	"ndsnn/internal/rng"
	"ndsnn/internal/tensor"
)

func TestScheduleBoundaries(t *testing.T) {
	s := &SparsitySchedule{
		Initial: []float64{0.5, 0.6},
		Final:   []float64{0.9, 0.95},
		T0:      0, RampSteps: 100, Shape: Cubic,
	}
	for l := 0; l < 2; l++ {
		if got := s.At(l, 0); math.Abs(got-s.Initial[l]) > 1e-12 {
			t.Fatalf("layer %d at t=0: %v, want θi=%v", l, got, s.Initial[l])
		}
		if got := s.At(l, 100); math.Abs(got-s.Final[l]) > 1e-12 {
			t.Fatalf("layer %d at t=nΔT: %v, want θf=%v", l, got, s.Final[l])
		}
		if got := s.At(l, 500); math.Abs(got-s.Final[l]) > 1e-12 {
			t.Fatalf("layer %d beyond ramp: %v, want clamped θf", l, got)
		}
		if got := s.At(l, -10); math.Abs(got-s.Initial[l]) > 1e-12 {
			t.Fatalf("layer %d before t0: %v, want θi", l, got)
		}
	}
}

func TestScheduleCubicMatchesEquation4(t *testing.T) {
	s := &SparsitySchedule{Initial: []float64{0.5}, Final: []float64{0.95}, T0: 0, RampSteps: 200, Shape: Cubic}
	for _, step := range []int{0, 25, 50, 100, 150, 199, 200} {
		frac := float64(step) / 200
		want := 0.95 + (0.5-0.95)*math.Pow(1-frac, 3)
		if got := s.At(0, step); math.Abs(got-want) > 1e-12 {
			t.Fatalf("step %d: %v, want Eq.4 value %v", step, got, want)
		}
	}
}

func TestScheduleMonotoneNonDecreasing(t *testing.T) {
	for _, shape := range []ScheduleShape{Cubic, Linear, Step} {
		s := &SparsitySchedule{Initial: []float64{0.5}, Final: []float64{0.99}, T0: 0, RampSteps: 77, Shape: shape}
		prev := -1.0
		for step := -5; step <= 90; step++ {
			got := s.At(0, step)
			if got < prev-1e-12 {
				t.Fatalf("%v: sparsity decreased at step %d", shape, step)
			}
			prev = got
		}
	}
}

func TestScheduleMonotonicityProperty(t *testing.T) {
	f := func(seed uint16) bool {
		r := rng.New(uint64(seed))
		init := 0.3 + 0.4*r.Float64()
		final := init + (0.99-init)*r.Float64()
		ramp := r.Intn(500) + 10
		s := &SparsitySchedule{Initial: []float64{init}, Final: []float64{final}, T0: 0, RampSteps: ramp, Shape: Cubic}
		prev := -1.0
		for step := 0; step <= ramp+10; step += 1 + r.Intn(5) {
			got := s.At(0, step)
			if got < prev-1e-12 || got < init-1e-12 || got > final+1e-12 {
				return false
			}
			prev = got
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleLinearAndStepShapes(t *testing.T) {
	lin := &SparsitySchedule{Initial: []float64{0.4}, Final: []float64{0.8}, T0: 0, RampSteps: 100, Shape: Linear}
	if got := lin.At(0, 50); math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("linear midpoint = %v, want 0.6", got)
	}
	st := &SparsitySchedule{Initial: []float64{0.4}, Final: []float64{0.8}, T0: 0, RampSteps: 100, Shape: Step}
	if got := st.At(0, 99); got != 0.4 {
		t.Fatalf("step shape before end = %v, want 0.4", got)
	}
	if got := st.At(0, 100); got != 0.8 {
		t.Fatalf("step shape at end = %v, want 0.8", got)
	}
}

func TestScheduleGlobalAt(t *testing.T) {
	s := &SparsitySchedule{Initial: []float64{0.5, 0.5}, Final: []float64{0.9, 0.9}, T0: 0, RampSteps: 10, Shape: Linear}
	got := s.GlobalAt(10, []int{100, 300})
	if math.Abs(got-0.9) > 1e-12 {
		t.Fatalf("global sparsity = %v, want 0.9", got)
	}
}

func TestShapeByNameRoundTrip(t *testing.T) {
	for _, name := range []string{"cubic", "linear", "step"} {
		if ShapeByName(name).String() != name {
			t.Fatalf("shape %q did not round-trip", name)
		}
	}
	if ShapeByName("bogus") != Cubic {
		t.Fatal("unknown shape should default to cubic")
	}
}

func TestDeathRateBoundaries(t *testing.T) {
	d := DeathRate{D0: 0.5, DMin: 0.05, T0: 0, RampSteps: 100}
	if got := d.At(0); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("d(0) = %v, want d0", got)
	}
	if got := d.At(100); math.Abs(got-0.05) > 1e-12 {
		t.Fatalf("d(nΔT) = %v, want dmin", got)
	}
	if got := d.At(1000); math.Abs(got-0.05) > 1e-12 {
		t.Fatalf("d beyond ramp = %v, want clamped dmin", got)
	}
	mid := d.At(50)
	want := 0.05 + 0.5*(0.5-0.05) // cos(π/2)=0
	if math.Abs(mid-want) > 1e-12 {
		t.Fatalf("d(mid) = %v, want %v", mid, want)
	}
}

func TestDeathRateMonotoneDecreasing(t *testing.T) {
	d := DeathRate{D0: 0.5, DMin: 0.01, T0: 0, RampSteps: 64}
	prev := 1.0
	for s := 0; s <= 70; s++ {
		got := d.At(s)
		if got > prev+1e-12 {
			t.Fatalf("death rate increased at step %d", s)
		}
		prev = got
	}
}

func TestGrowByName(t *testing.T) {
	if GrowByName("random") != GrowRandom {
		t.Fatal("random lookup failed")
	}
	if GrowByName("gradient") != GrowByGradient {
		t.Fatal("gradient lookup failed")
	}
	if GrowByName("").String() != "gradient" {
		t.Fatal("default should be gradient")
	}
}

// makeMaskedParam builds a parameter with a random mask at the given
// density and random weights/gradients.
func makeMaskedParam(name string, n int, density float64, r *rng.RNG) *layers.Param {
	w := tensor.New(n)
	for i := range w.Data {
		w.Data[i] = r.NormFloat32()
	}
	p := layers.NewParam(name, w)
	p.Mask = tensor.New(n)
	for _, i := range r.Choice(n, int(density*float64(n))) {
		p.Mask.Data[i] = 1
	}
	p.ApplyMask()
	for i := range p.Grad.Data {
		p.Grad.Data[i] = r.NormFloat32()
	}
	return p
}

func newTestRewirer(params []*layers.Param, thetaI, thetaF float64, ramp int) *Rewirer {
	n := len(params)
	init := make([]float64, n)
	final := make([]float64, n)
	for i := range init {
		init[i], final[i] = thetaI, thetaF
	}
	return &Rewirer{
		Params:   params,
		Schedule: &SparsitySchedule{Initial: init, Final: final, T0: 0, RampSteps: ramp, Shape: Cubic},
		Death:    DeathRate{D0: 0.5, DMin: 0.05, T0: 0, RampSteps: ramp},
		Rng:      rng.New(9),
	}
}

func TestRewireFollowsScheduleExactly(t *testing.T) {
	r := rng.New(3)
	params := []*layers.Param{
		makeMaskedParam("a", 400, 0.5, r),
		makeMaskedParam("b", 600, 0.5, r),
	}
	rw := newTestRewirer(params, 0.5, 0.9, 100)
	for step := 10; step <= 100; step += 10 {
		// Refresh gradients so growth has signal.
		for _, p := range params {
			for i := range p.Grad.Data {
				p.Grad.Data[i] = r.NormFloat32()
			}
		}
		stats := rw.Apply(step)
		for li, p := range params {
			wantTheta := rw.Schedule.At(li, step)
			n := p.W.Size()
			wantActive := int(math.Round((1 - wantTheta) * float64(n)))
			if got := p.ActiveCount(); got != wantActive {
				t.Fatalf("step %d layer %d: active=%d, want %d (θ=%v)", step, li, got, wantActive, wantTheta)
			}
		}
		if stats.Dropped < stats.Grown {
			t.Fatalf("step %d: dropped %d < grown %d (population must shrink)", step, stats.Dropped, stats.Grown)
		}
	}
	// After the full ramp, the global sparsity is the target.
	total, active := 0, 0
	for _, p := range params {
		total += p.W.Size()
		active += p.ActiveCount()
	}
	got := 1 - float64(active)/float64(total)
	if math.Abs(got-0.9) > 0.005 {
		t.Fatalf("final sparsity = %v, want 0.9", got)
	}
}

func TestRewireMaskWeightConsistency(t *testing.T) {
	r := rng.New(4)
	p := makeMaskedParam("w", 500, 0.6, r)
	rw := newTestRewirer([]*layers.Param{p}, 0.4, 0.8, 50)
	for step := 5; step <= 60; step += 5 {
		rw.Apply(step)
		if err := p.CheckMaskConsistency(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
}

func TestRewireGrowsHighestGradients(t *testing.T) {
	// Constant sparsity (init == final): each round drops dt·active and
	// grows the same count; grown positions must be the top-gradient zeros.
	w := tensor.New(10)
	copy(w.Data, []float32{1, 0.9, 0.8, 0.01, 0.02, 0, 0, 0, 0, 0})
	p := layers.NewParam("w", w)
	p.Mask = tensor.FromSlice([]float32{1, 1, 1, 1, 1, 0, 0, 0, 0, 0}, 10)
	copy(p.Grad.Data, []float32{0, 0, 0, 0, 0, 9, -8, 0.1, 0.2, 0.3})
	rw := newTestRewirer([]*layers.Param{p}, 0.5, 0.5, 100)
	rw.Death = DeathRate{D0: 0.4, DMin: 0.4, T0: 0, RampSteps: 100}
	stats := rw.Apply(50)
	if stats.Dropped != 2 || stats.Grown != 2 {
		t.Fatalf("dropped %d grown %d, want 2 and 2", stats.Dropped, stats.Grown)
	}
	// Smallest-|w| actives (idx 3, 4) dropped; largest-|grad| zeros (5, 6) grown.
	if p.Mask.Data[3] != 0 || p.Mask.Data[4] != 0 {
		t.Fatalf("wrong drops: mask=%v", p.Mask.Data)
	}
	if p.Mask.Data[5] != 1 || p.Mask.Data[6] != 1 {
		t.Fatalf("wrong grows: mask=%v", p.Mask.Data)
	}
	if p.W.Data[5] != 0 || p.W.Data[6] != 0 {
		t.Fatal("grown weights must start at zero")
	}
}

func TestRewireRandomGrowth(t *testing.T) {
	r := rng.New(5)
	p := makeMaskedParam("w", 300, 0.5, r)
	rw := newTestRewirer([]*layers.Param{p}, 0.5, 0.5, 100)
	rw.Criterion = GrowRandom
	before := p.ActiveCount()
	rw.Apply(50)
	if got := p.ActiveCount(); got != before {
		t.Fatalf("constant-sparsity rewire changed active count: %d → %d", before, got)
	}
}

func TestRewireClearsMomentum(t *testing.T) {
	r := rng.New(6)
	p := makeMaskedParam("w", 100, 0.5, r)
	sgd := opt.NewSGD(0.1, 0.9, 0)
	// Build up momentum everywhere.
	for i := range p.Grad.Data {
		p.Grad.Data[i] = 1
	}
	sgd.Step([]*layers.Param{p})
	rw := newTestRewirer([]*layers.Param{p}, 0.5, 0.9, 10)
	rw.Opt = sgd
	stats := rw.Apply(10)
	if stats.Dropped == 0 {
		t.Fatal("expected drops")
	}
	// Weights at rewired positions must not drift under zero gradient.
	snapshot := p.W.Clone()
	p.Grad.Zero()
	sgd.Step([]*layers.Param{p})
	for i, m := range p.Mask.Data {
		if m == 0 && p.W.Data[i] != 0 {
			t.Fatalf("masked weight %d nonzero after step", i)
		}
		_ = snapshot
	}
}

func TestRewirePanicsWithoutMask(t *testing.T) {
	p := layers.NewParam("w", tensor.New(10))
	rw := newTestRewirer([]*layers.Param{p}, 0.5, 0.9, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("rewire without mask did not panic")
		}
	}()
	rw.Apply(10)
}

func TestRewireStatsSparsity(t *testing.T) {
	s := RewireStats{ActiveAfter: 25, TotalWeights: 100}
	if s.Sparsity() != 0.75 {
		t.Fatalf("stats sparsity = %v", s.Sparsity())
	}
}

func TestInitMasksAppliesDensities(t *testing.T) {
	r := rng.New(7)
	params := []*layers.Param{
		makeDenseParam("a", 200, r),
		makeDenseParam("b", 400, r),
	}
	InitMasks(params, []float64{0.25, 0.5}, r)
	if got := params[0].ActiveCount(); got != 50 {
		t.Fatalf("param a active = %d, want 50", got)
	}
	if got := params[1].ActiveCount(); got != 200 {
		t.Fatalf("param b active = %d, want 200", got)
	}
	for _, p := range params {
		if err := p.CheckMaskConsistency(); err != nil {
			t.Fatal(err)
		}
	}
}

func makeDenseParam(name string, n int, r *rng.RNG) *layers.Param {
	w := tensor.New(n)
	for i := range w.Data {
		w.Data[i] = r.NormFloat32()
	}
	return layers.NewParam(name, w)
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.WithDefaults()
	if cfg.DeltaT <= 0 || cfg.DeathRate0 <= 0 || cfg.RampFraction <= 0 || cfg.Distribution == "" {
		t.Fatalf("defaults incomplete: %+v", cfg)
	}
	if cfg.FinalSparsity < cfg.InitialSparsity {
		t.Fatal("default sparsities inverted")
	}
}

func TestDensitiesUniformVsERK(t *testing.T) {
	shapes := [][]int{{8, 3, 3, 3}, {64, 64, 3, 3}}
	u := Densities(shapes, 0.2, "uniform")
	if u[0] != 0.2 || u[1] != 0.2 {
		t.Fatalf("uniform densities = %v", u)
	}
	e := Densities(shapes, 0.2, "erk")
	if e[0] <= e[1] {
		t.Fatalf("ERK should favor the small layer: %v", e)
	}
}
