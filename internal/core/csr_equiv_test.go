package core_test

import (
	"math"
	"testing"

	"ndsnn/internal/core"
	"ndsnn/internal/layers"
	"ndsnn/internal/snn"
	"ndsnn/internal/testutil"
)

// runNDSNNAtThreshold trains a fresh TinyNet with the CSR path forced on
// (threshold 1) or off (threshold 0) and returns the outcome plus the
// trained network. Both runs share seeds, so any divergence means the sparse
// compute engine changed the training computation.
func runNDSNNAtThreshold(t *testing.T, threshold float64) (*core.Outcome, *snn.Network) {
	t.Helper()
	old := layers.CSRMaxDensity
	layers.CSRMaxDensity = threshold
	defer func() { layers.CSRMaxDensity = old }()
	net := testutil.TinyNet(4, 2, 11)
	cfg := core.Config{
		InitialSparsity: 0.5, FinalSparsity: 0.9,
		DeltaT: 3, DeathRate0: 0.5, DeathRateMin: 0.05,
		RampFraction: 0.7, StopFraction: 0.9,
	}
	out, err := core.TrainNDSNN(net, easyData(), common(3), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return out, net
}

// TestCSRTrainingMatchesDenseReference is the rewire-invalidation test: a
// short NDSNN run (which rewires every ΔT=3 steps) on the CSR compute path
// must reproduce the dense-path reference run — same losses, same rewire
// log, same final weights. A stale CSR cache after any drop-and-grow round
// would diverge within one step.
func TestCSRTrainingMatchesDenseReference(t *testing.T) {
	dense, denseNet := runNDSNNAtThreshold(t, 0)
	csr, csrNet := runNDSNNAtThreshold(t, 1)

	if len(dense.Rewires) == 0 {
		t.Fatal("reference run recorded no rewires; test exercises nothing")
	}
	if len(dense.Rewires) != len(csr.Rewires) {
		t.Fatalf("rewire rounds: dense %d, csr %d", len(dense.Rewires), len(csr.Rewires))
	}
	for i := range dense.Rewires {
		d, c := dense.Rewires[i], csr.Rewires[i]
		if d != c {
			t.Fatalf("rewire round %d differs: dense %+v, csr %+v", i, d, c)
		}
	}
	for e := range dense.History {
		dl, cl := dense.History[e].Loss, csr.History[e].Loss
		if math.Abs(dl-cl) > 1e-5 {
			t.Fatalf("epoch %d loss: dense %v, csr %v", e, dl, cl)
		}
	}
	dp, cp := denseNet.Params(), csrNet.Params()
	for i := range dp {
		for j := range dp[i].W.Data {
			diff := math.Abs(float64(dp[i].W.Data[j] - cp[i].W.Data[j]))
			if diff > 1e-5 {
				t.Fatalf("param %s[%d]: dense %v, csr %v", dp[i].Name, j, dp[i].W.Data[j], cp[i].W.Data[j])
			}
		}
		if dp[i].Mask == nil != (cp[i].Mask == nil) {
			t.Fatalf("param %s mask presence differs", dp[i].Name)
		}
		if dp[i].Mask != nil {
			for j := range dp[i].Mask.Data {
				if dp[i].Mask.Data[j] != cp[i].Mask.Data[j] {
					t.Fatalf("param %s mask[%d] differs", dp[i].Name, j)
				}
			}
		}
	}
	if math.Abs(dense.TestAcc-csr.TestAcc) > 1e-9 {
		t.Fatalf("test accuracy: dense %v, csr %v", dense.TestAcc, csr.TestAcc)
	}
}

// TestCSRPathEngagesDuringNDSNN guards against the engine silently never
// activating: at the default threshold, the θᵢ=0.5 initialization already
// sits at the CSR/dense boundary and the ramp quickly pushes every prunable
// layer into CSR territory.
func TestCSRPathEngagesDuringNDSNN(t *testing.T) {
	_, net := runNDSNNAtThreshold(t, layers.CSRMaxDensity)
	engaged := 0
	for _, p := range layers.PrunableParams(net.Params()) {
		if p.SparseW() != nil {
			engaged++
		}
	}
	if engaged == 0 {
		t.Fatal("no prunable parameter ended training on the CSR path")
	}
}
