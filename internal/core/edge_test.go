package core

import (
	"testing"

	"ndsnn/internal/layers"
	"ndsnn/internal/rng"
	"ndsnn/internal/tensor"
)

// Edge-case and failure-injection tests for the rewirer.

func TestRewireWithNoInactivePositions(t *testing.T) {
	// Fully dense mask at constant schedule: drop dt·N then grow back the
	// same count — growth candidates are exactly the freshly dropped zeros.
	w := tensor.New(50)
	r := rng.New(1)
	for i := range w.Data {
		w.Data[i] = r.NormFloat32()
	}
	p := layers.NewParam("w", w)
	m := tensor.New(50)
	m.Fill(1)
	p.Mask = m
	for i := range p.Grad.Data {
		p.Grad.Data[i] = r.NormFloat32()
	}
	rw := newTestRewirer([]*layers.Param{p}, 0, 0, 100)
	rw.Death = DeathRate{D0: 0.2, DMin: 0.2, RampSteps: 100}
	stats := rw.Apply(50)
	if stats.Dropped != 10 || stats.Grown != 10 {
		t.Fatalf("dropped %d grown %d, want 10/10", stats.Dropped, stats.Grown)
	}
	if p.ActiveCount() != 50 {
		t.Fatalf("active = %d, want 50", p.ActiveCount())
	}
}

func TestRewireAllWeightsDroppable(t *testing.T) {
	// Death rate 1.0 drops every active weight; growth must still restore
	// the schedule's target count.
	r := rng.New(2)
	p := makeMaskedParam("w", 100, 0.5, r)
	rw := newTestRewirer([]*layers.Param{p}, 0.5, 0.5, 100)
	rw.Death = DeathRate{D0: 1, DMin: 1, RampSteps: 100}
	stats := rw.Apply(50)
	if stats.Dropped != 50 {
		t.Fatalf("dropped %d, want all 50 actives", stats.Dropped)
	}
	if p.ActiveCount() != 50 {
		t.Fatalf("active after total rewire = %d, want 50", p.ActiveCount())
	}
}

func TestRewireZeroDeathRateStillFollowsSchedule(t *testing.T) {
	// dmin = 0: during the ramp the schedule minimum forces drops anyway.
	r := rng.New(3)
	p := makeMaskedParam("w", 200, 0.5, r)
	rw := newTestRewirer([]*layers.Param{p}, 0.5, 0.9, 10)
	rw.Death = DeathRate{D0: 0, DMin: 0, RampSteps: 10}
	rw.Apply(10) // end of ramp: target sparsity 0.9 → 20 active
	if got := p.ActiveCount(); got != 20 {
		t.Fatalf("active = %d, want 20 (schedule must dominate a zero death rate)", got)
	}
}

func TestRewireTinyLayer(t *testing.T) {
	// A 3-element layer must survive rounding without going negative or
	// over-full.
	w := tensor.FromSlice([]float32{0.1, -0.2, 0.3}, 3)
	p := layers.NewParam("w", w)
	p.Mask = tensor.FromSlice([]float32{1, 1, 0}, 3)
	p.Grad = tensor.FromSlice([]float32{1, 2, 3}, 3)
	rw := newTestRewirer([]*layers.Param{p}, 1.0/3, 2.0/3, 10)
	for step := 1; step <= 12; step++ {
		rw.Apply(step)
		a := p.ActiveCount()
		if a < 0 || a > 3 {
			t.Fatalf("step %d: active = %d", step, a)
		}
	}
	if got := p.ActiveCount(); got != 1 {
		t.Fatalf("final active = %d, want 1 (θf=2/3 of 3)", got)
	}
}

func TestERKSingleLayer(t *testing.T) {
	d := Densities([][]int{{32, 16, 3, 3}}, 0.1, "erk")
	if len(d) != 1 || d[0] <= 0 || d[0] > 1 {
		t.Fatalf("single-layer ERK = %v", d)
	}
	// With one layer the density must equal the global target exactly.
	if diff := d[0] - 0.1; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("single-layer density = %v, want 0.1", d[0])
	}
}

func TestDeathRateZeroRampIsConstant(t *testing.T) {
	d := DeathRate{D0: 0.5, DMin: 0.1, RampSteps: 0}
	for _, s := range []int{0, 5, 100} {
		if got := d.At(s); got != 0.1 {
			t.Fatalf("zero-ramp death rate at %d = %v, want dmin", s, got)
		}
	}
}

func TestScheduleZeroRampJumpsToFinal(t *testing.T) {
	s := &SparsitySchedule{Initial: []float64{0.5}, Final: []float64{0.9}, RampSteps: 0}
	if got := s.At(0, 0); got != 0.9 {
		t.Fatalf("zero-ramp schedule = %v, want final", got)
	}
}

func TestScheduleOutOfRangeLayerPanics(t *testing.T) {
	s := &SparsitySchedule{Initial: []float64{0.5}, Final: []float64{0.9}, RampSteps: 10}
	defer func() {
		if recover() == nil {
			t.Fatal("layer index out of range did not panic")
		}
	}()
	s.At(3, 0)
}

func TestInitMasksLengthMismatchPanics(t *testing.T) {
	p := makeDenseParam("w", 10, rng.New(4))
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	InitMasks([]*layers.Param{p}, []float64{0.5, 0.5}, rng.New(5))
}
