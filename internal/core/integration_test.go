package core_test

import (
	"math"
	"testing"

	"ndsnn/internal/core"
	"ndsnn/internal/data"
	"ndsnn/internal/layers"
	"ndsnn/internal/testutil"
	"ndsnn/internal/train"
)

func easyData() *data.Dataset { return data.SynthEasy(4, 96, 48, 21) }

func common(epochs int) train.Common {
	return train.Common{
		Epochs: epochs, BatchSize: 16, LR: 0.08, LRMin: 0.001,
		Momentum: 0.9, WeightDecay: 5e-4, Seed: 5,
	}
}

func TestNDSNNTrainsAndReachesTargetSparsity(t *testing.T) {
	net := testutil.TinyNet(4, 2, 11)
	cfg := core.Config{
		InitialSparsity: 0.5, FinalSparsity: 0.9,
		DeltaT: 4, DeathRate0: 0.5, DeathRateMin: 0.05,
		RampFraction: 0.7, StopFraction: 0.9,
	}
	out, err := core.TrainNDSNN(net, easyData(), common(6), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out.FinalSparsity-0.9) > 0.02 {
		t.Fatalf("final sparsity = %v, want 0.9", out.FinalSparsity)
	}
	if out.TestAcc < 0.5 {
		t.Fatalf("NDSNN accuracy = %v, want >= 0.5", out.TestAcc)
	}
	if len(out.Rewires) == 0 {
		t.Fatal("no drop-and-grow rounds recorded")
	}
}

func TestNDSNNSparsityRampIsMonotone(t *testing.T) {
	net := testutil.TinyNet(4, 2, 12)
	cfg := core.Config{InitialSparsity: 0.5, FinalSparsity: 0.95, DeltaT: 3, RampFraction: 0.8}
	out, err := core.TrainNDSNN(net, easyData(), common(5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, rw := range out.Rewires {
		s := rw.Sparsity()
		if s < prev-1e-9 {
			t.Fatalf("rewire sparsity decreased: %v after %v", s, prev)
		}
		prev = s
	}
	first, last := out.Rewires[0], out.Rewires[len(out.Rewires)-1]
	// With ~30 total steps the first round already sits 10-15% into the
	// cubic ramp, so expect θ well below the target but above θi.
	if first.Sparsity() > 0.7 || first.Sparsity() < 0.5 {
		t.Fatalf("first round sparsity = %v, want in [0.5, 0.7]", first.Sparsity())
	}
	if math.Abs(last.Sparsity()-0.95) > 0.01 {
		t.Fatalf("last round sparsity = %v, want θf=0.95", last.Sparsity())
	}
}

func TestNDSNNDropsOutpaceGrows(t *testing.T) {
	// The neurogenesis analogy: during the ramp, every round removes at
	// least as many connections as it creates.
	net := testutil.TinyNet(4, 2, 13)
	cfg := core.Config{InitialSparsity: 0.6, FinalSparsity: 0.9, DeltaT: 4}
	out, err := core.TrainNDSNN(net, easyData(), common(4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, rw := range out.Rewires {
		if rw.Grown > rw.Dropped {
			t.Fatalf("round %d grew %d > dropped %d", i, rw.Grown, rw.Dropped)
		}
	}
}

func TestNDSNNTrajectoryMatchesEquation4(t *testing.T) {
	net := testutil.TinyNet(4, 2, 14)
	cfg := core.Config{
		InitialSparsity: 0.5, FinalSparsity: 0.9,
		DeltaT: 5, RampFraction: 0.75, StopFraction: 0.9,
	}.WithDefaults()
	cm := common(4)
	out, err := core.TrainNDSNN(net, easyData(), cm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct the expected global sparsity at each recorded round and
	// compare. Per-layer rounding can shift the global value slightly.
	params := layers.PrunableParams(net.Params())
	shapes := core.ShapesOf(params)
	densI := core.Densities(shapes, 0.5, "erk")
	densF := core.Densities(shapes, 0.1, "erk")
	thetaI := make([]float64, len(densI))
	thetaF := make([]float64, len(densF))
	for i := range densI {
		thetaI[i], thetaF[i] = 1-densI[i], 1-densF[i]
	}
	stepsPerEpoch := 6 // 96 samples / 16 batch
	totalSteps := cm.Epochs * stepsPerEpoch
	sched := &core.SparsitySchedule{
		Initial: thetaI, Final: thetaF,
		T0: 0, RampSteps: int(cfg.RampFraction * float64(totalSteps)), Shape: core.Cubic,
	}
	sizes := make([]int, len(params))
	for i, p := range params {
		sizes[i] = p.W.Size()
	}
	for _, rw := range out.Rewires {
		want := sched.GlobalAt(rw.Step, sizes)
		if math.Abs(rw.Sparsity()-want) > 0.01 {
			t.Fatalf("step %d: sparsity %v, Eq.4 predicts %v", rw.Step, rw.Sparsity(), want)
		}
	}
}

func TestNDSNNMaskConsistencyThroughout(t *testing.T) {
	net := testutil.TinyNet(4, 2, 15)
	cfg := core.Config{InitialSparsity: 0.5, FinalSparsity: 0.9, DeltaT: 2}
	_, err := core.TrainNDSNN(net, easyData(), common(3), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range layers.PrunableParams(net.Params()) {
		if err := p.CheckMaskConsistency(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestNDSNNRejectsShrinkingSparsity(t *testing.T) {
	net := testutil.TinyNet(4, 2, 16)
	cfg := core.Config{InitialSparsity: 0.9, FinalSparsity: 0.5}
	if _, err := core.TrainNDSNN(net, easyData(), common(2), cfg); err == nil {
		t.Fatal("θf < θi must be rejected")
	}
}

func TestNDSNNUniformDistribution(t *testing.T) {
	net := testutil.TinyNet(4, 2, 17)
	cfg := core.Config{InitialSparsity: 0.5, FinalSparsity: 0.8, DeltaT: 4, Distribution: "uniform"}
	out, err := core.TrainNDSNN(net, easyData(), common(3), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out.FinalSparsity-0.8) > 0.02 {
		t.Fatalf("uniform final sparsity = %v", out.FinalSparsity)
	}
	// Every layer should sit near 0.8 individually under uniform.
	for _, p := range layers.PrunableParams(net.Params()) {
		if math.Abs(p.Sparsity()-0.8) > 0.05 {
			t.Fatalf("param %s sparsity = %v, want ~0.8 (uniform)", p.Name, p.Sparsity())
		}
	}
}

func TestNDSNNDeterministic(t *testing.T) {
	run := func() (float64, float64) {
		net := testutil.TinyNet(4, 2, 18)
		out, err := core.TrainNDSNN(net, easyData(), common(3),
			core.Config{InitialSparsity: 0.5, FinalSparsity: 0.9, DeltaT: 3})
		if err != nil {
			t.Fatal(err)
		}
		return out.TestAcc, out.FinalSparsity
	}
	a1, s1 := run()
	a2, s2 := run()
	if a1 != a2 || s1 != s2 {
		t.Fatalf("identical NDSNN runs differ: acc %v/%v sparsity %v/%v", a1, a2, s1, s2)
	}
}

func TestNDSNNMeanTrainingSparsityBetweenBounds(t *testing.T) {
	// The efficiency claim: average training sparsity lies strictly between
	// θi and θf (unlike LTH, which spends most epochs near zero sparsity).
	net := testutil.TinyNet(4, 2, 19)
	out, err := core.TrainNDSNN(net, easyData(), common(5),
		core.Config{InitialSparsity: 0.5, FinalSparsity: 0.95, DeltaT: 3, RampFraction: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	mean := out.Trajectory.MeanSparsity()
	if mean <= 0.5 || mean >= 0.95 {
		t.Fatalf("mean training sparsity = %v, want within (0.5, 0.95)", mean)
	}
}
