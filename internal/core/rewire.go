package core

import (
	"fmt"

	"ndsnn/internal/layers"
	"ndsnn/internal/opt"
	"ndsnn/internal/rng"
	"ndsnn/internal/sparse"
	"ndsnn/internal/tensor"
)

// GrowCriterion selects how regrown connections are chosen.
type GrowCriterion int

// Grow criteria.
const (
	// GrowByGradient activates the inactive weights with the largest
	// gradient magnitude (RigL-style; the paper's step ❹).
	GrowByGradient GrowCriterion = iota
	// GrowRandom activates uniformly random inactive weights (SET-style;
	// used by the grow-criterion ablation).
	GrowRandom
)

// GrowByName resolves "gradient" or "random" (default gradient).
func GrowByName(name string) GrowCriterion {
	if name == "random" {
		return GrowRandom
	}
	return GrowByGradient
}

func (g GrowCriterion) String() string {
	if g == GrowRandom {
		return "random"
	}
	return "gradient"
}

// RewireStats reports one drop-and-grow round.
type RewireStats struct {
	Step         int
	Dropped      int
	Grown        int
	ActiveAfter  int
	TotalWeights int
	DeathRate    float64
}

// Sparsity returns the overall sparsity after the round.
func (s RewireStats) Sparsity() float64 {
	return 1 - float64(s.ActiveAfter)/float64(s.TotalWeights)
}

// Rewirer executes the paper's drop-and-grow mask update (Algorithm 1's
// ΔT-periodic branch) over a set of masked parameters.
//
// Per layer l at round step t (Eq. 6–9):
//
//	Npreˡ  = active count before the round
//	Dˡ     = d_t · Npreˡ               dropped: smallest-|w| actives
//	Npostˡ = Npreˡ − Dˡ
//	Gˡ     = (1−θˡ_t)·Nˡ − Npostˡ      grown: top-|∇| (or random) inactives
//
// Because θˡ_t rises over training, Gˡ < Dˡ and the live population
// shrinks. When the cosine-annealed d_t would under-shoot the schedule
// (drop fewer than the ramp requires), the drop count is raised to the
// schedule minimum so the Eq. 4 trajectory is followed exactly; Grown
// weights start at zero and with zero optimizer momentum, as in RigL.
type Rewirer struct {
	// Params are the masked, prunable parameters in schedule-layer order.
	Params []*layers.Param
	// Schedule is the Eq. 4 sparsity trajectory.
	Schedule *SparsitySchedule
	// Death is the Eq. 5 drop-ratio annealing.
	Death DeathRate
	// Criterion selects gradient (paper) or random growth.
	Criterion GrowCriterion
	// Opt, when non-nil, has the momentum of rewired positions cleared.
	Opt *opt.SGD
	// Rng drives random growth.
	Rng *rng.RNG
}

// Apply performs one drop-and-grow round at optimizer step t.
func (r *Rewirer) Apply(t int) RewireStats {
	stats := RewireStats{Step: t, DeathRate: r.Death.At(t)}
	for l, p := range r.Params {
		if p.Mask == nil {
			panic(fmt.Sprintf("core: rewire target %s has no mask", p.Name))
		}
		n := p.W.Size()
		stats.TotalWeights += n
		nPre := p.ActiveCount()
		theta := r.Schedule.At(l, t)
		targetNZ := sparse.CountForDensity(n, 1-theta)

		drop := int(stats.DeathRate * float64(nPre))
		// Never drop below what the schedule requires this round…
		if minDrop := nPre - targetNZ; drop < minDrop {
			drop = minDrop
		}
		// …and never drop more than exist.
		if drop > nPre {
			drop = nPre
		}
		if drop < 0 {
			drop = 0
		}
		grow := targetNZ - (nPre - drop)
		if grow < 0 {
			grow = 0
		}

		dropIdx := sparse.BottomKActive(p.W, p.Mask, drop)
		for _, i := range dropIdx {
			p.Mask.Data[i] = 0
			p.W.Data[i] = 0
		}
		var growIdx []int
		switch r.Criterion {
		case GrowRandom:
			growIdx = sparse.RandomInactive(p.Mask, grow, r.Rng)
		default:
			growIdx = sparse.TopKInactive(p.Grad, p.Mask, grow)
		}
		for _, i := range growIdx {
			p.Mask.Data[i] = 1
			p.W.Data[i] = 0 // new connections start at zero (RigL convention)
		}
		if r.Opt != nil {
			r.Opt.ClearVelocityAt(p, dropIdx)
			r.Opt.ClearVelocityAt(p, growIdx)
		}
		// The mask topology changed: the layer's cached CSR encoding no
		// longer matches and must be rebuilt (grown positions would
		// otherwise be invisible to the sparse kernels).
		p.InvalidateCSR()
		stats.Dropped += len(dropIdx)
		stats.Grown += len(growIdx)
		stats.ActiveAfter += p.ActiveCount()
	}
	return stats
}

// InitMasks builds per-layer masks at the given per-layer densities and
// applies them to the weights. It returns the masks in parameter order.
func InitMasks(params []*layers.Param, densities []float64, r *rng.RNG) []*tensor.Tensor {
	if len(params) != len(densities) {
		panic("core: params/densities length mismatch")
	}
	masks := make([]*tensor.Tensor, len(params))
	for i, p := range params {
		m := sparse.RandomMask(p.W.Shape(), densities[i], r)
		p.Mask = m
		p.ApplyMask()
		masks[i] = m
	}
	return masks
}

// ShapesOf extracts parameter shapes (for ERK allocation).
func ShapesOf(params []*layers.Param) [][]int {
	shapes := make([][]int, len(params))
	for i, p := range params {
		shapes[i] = p.W.Shape()
	}
	return shapes
}
