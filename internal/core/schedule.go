// Package core implements the paper's contribution: the Neurogenesis
// Dynamics-inspired sparse training method (NDSNN).
//
// NDSNN trains from scratch with a sparse topology whose per-layer sparsity
// *increases* over training: every ΔT optimizer steps it drops more
// connections (magnitude pruning at a cosine-annealed death ratio, Eq. 5)
// than it regrows (gradient-magnitude top-k among inactive weights,
// Eq. 8–9), so the live-weight population shrinks from an initial sparsity
// θᵢ to the target θ_f along the cubic ramp of Eq. 4 — the analogue of
// hippocampal neurogenesis where neuron death outpaces neuron birth.
package core

import (
	"fmt"
	"math"
)

// ScheduleShape selects the interpolation between initial and final
// sparsity (the paper uses Cubic; Linear and Step exist for the ablation
// study).
type ScheduleShape int

// Schedule shapes.
const (
	Cubic ScheduleShape = iota
	Linear
	Step
)

// ShapeByName resolves "cubic", "linear" or "step" (default cubic).
func ShapeByName(name string) ScheduleShape {
	switch name {
	case "linear":
		return Linear
	case "step":
		return Step
	default:
		return Cubic
	}
}

func (s ScheduleShape) String() string {
	switch s {
	case Linear:
		return "linear"
	case Step:
		return "step"
	default:
		return "cubic"
	}
}

// SparsitySchedule computes the per-layer sparsity trajectory of Eq. 4:
//
//	θˡ_t = θˡ_f + (θˡ_i − θˡ_f)·(1 − (t−t₀)/(nΔT))³
//
// for t ∈ [t₀, t₀+nΔT], clamped to θˡ_f afterwards.
type SparsitySchedule struct {
	// Initial and Final are per-layer sparsity distributions Θᵢ and Θ_f
	// (from ERK at the initial and final global sparsity).
	Initial, Final []float64
	// T0 is the first step of the ramp.
	T0 int
	// RampSteps is n·ΔT, the length of the ramp in optimizer steps.
	RampSteps int
	// Shape selects cubic (paper), linear or step interpolation.
	Shape ScheduleShape
}

// At returns layer l's target sparsity at optimizer step t.
func (s *SparsitySchedule) At(l, t int) float64 {
	if l < 0 || l >= len(s.Final) {
		panic(fmt.Sprintf("core: schedule layer %d out of range", l))
	}
	frac := s.progress(t)
	init, final := s.Initial[l], s.Final[l]
	switch s.Shape {
	case Linear:
		return final + (init-final)*(1-frac)
	case Step:
		if frac >= 1 {
			return final
		}
		return init
	default:
		r := 1 - frac
		return final + (init-final)*r*r*r
	}
}

// progress maps step t to ramp progress in [0,1].
func (s *SparsitySchedule) progress(t int) float64 {
	if s.RampSteps <= 0 {
		return 1
	}
	f := float64(t-s.T0) / float64(s.RampSteps)
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// GlobalAt returns the overall sparsity at step t given per-layer element
// counts.
func (s *SparsitySchedule) GlobalAt(t int, sizes []int) float64 {
	var nz, total float64
	for l, n := range sizes {
		nz += (1 - s.At(l, t)) * float64(n)
		total += float64(n)
	}
	return 1 - nz/total
}

// DeathRate is the cosine-annealed drop ratio of Eq. 5:
//
//	d_t = d_min + ½(d₀ − d_min)(1 + cos(π(t−t₀)/(nΔT)))
//
// clamped to d_min once the ramp completes.
type DeathRate struct {
	// D0 is the initial death ratio (fraction of active weights dropped).
	D0 float64
	// DMin is the minimum death ratio reached at the end of the ramp.
	DMin float64
	// T0 and RampSteps mirror SparsitySchedule.
	T0, RampSteps int
}

// At returns the death ratio at step t.
func (d DeathRate) At(t int) float64 {
	if d.RampSteps <= 0 {
		return d.DMin
	}
	f := float64(t-d.T0) / float64(d.RampSteps)
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	return d.DMin + 0.5*(d.D0-d.DMin)*(1+math.Cos(math.Pi*f))
}
