package core

import (
	"ndsnn/internal/layers"
	"ndsnn/internal/train"
)

// ArmSparseCompute attaches the per-batch gradient-mode switch that lets the
// layers' CSR backward pass skip inactive positions. Weight gradients only
// feed two consumers: the optimizer, which discards masked positions anyway,
// and the gradient-growth criterion, which reads magnitudes at *inactive*
// positions. So every batch may use active-position-only gradients except
// the ones whose gradients an upcoming GrowByGradient rewire will inspect —
// those run the dense backward, exactly like RigL's periodic dense gradient
// evaluation.
//
// The switch keys on the same predicate the trainers' OnStep rewire hook
// uses: a rewire fires after step t when t%deltaT == 0 and t < stopStep.
func ArmSparseCompute(loop *train.Loop, params []*layers.Param, grow GrowCriterion, deltaT, stopStep int) {
	loop.Hooks.OnBatchStart = func(step int) {
		feedsRewire := grow == GrowByGradient && deltaT > 0 && step%deltaT == 0 && step < stopStep
		for _, p := range params {
			p.SparseGradOK = !feedsRewire
		}
	}
}
