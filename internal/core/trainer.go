package core

import (
	"fmt"

	"ndsnn/internal/data"
	"ndsnn/internal/layers"
	"ndsnn/internal/opt"
	"ndsnn/internal/rng"
	"ndsnn/internal/snn"
	"ndsnn/internal/sparse"
	"ndsnn/internal/train"
)

// Config holds the NDSNN hyperparameters (Algorithm 1's inputs).
type Config struct {
	// InitialSparsity θᵢ and FinalSparsity θ_f bound the ramp; the paper's
	// design-exploration picks θᵢ from {0.5..0.9} for θ_f ∈ {0.9..0.99}.
	InitialSparsity float64
	FinalSparsity   float64
	// DeltaT is the mask-update period ΔT in optimizer steps.
	DeltaT int
	// DeathRate0 d₀ and DeathRateMin d_min parametrize Eq. 5.
	DeathRate0   float64
	DeathRateMin float64
	// RampFraction is the portion of total training steps over which the
	// Eq. 4 ramp runs (n·ΔT = RampFraction · totalSteps).
	RampFraction float64
	// StopFraction freezes masks after this portion of training, matching
	// Algorithm 1's t < T_end guard.
	StopFraction float64
	// Distribution selects "erk" (paper) or "uniform" layer allocation.
	Distribution string
	// Grow selects the regrowth criterion (gradient = paper).
	Grow GrowCriterion
	// Shape selects the ramp interpolation (cubic = paper).
	Shape ScheduleShape
}

// WithDefaults fills unset fields with the paper's defaults.
func (c Config) WithDefaults() Config {
	if c.InitialSparsity == 0 && c.FinalSparsity == 0 {
		c.InitialSparsity, c.FinalSparsity = 0.5, 0.9
	}
	if c.DeltaT == 0 {
		c.DeltaT = 8
	}
	if c.DeathRate0 == 0 {
		c.DeathRate0 = 0.5
	}
	if c.DeathRateMin == 0 {
		c.DeathRateMin = 0.05
	}
	if c.RampFraction == 0 {
		c.RampFraction = 0.75
	}
	if c.StopFraction == 0 {
		c.StopFraction = 0.9
	}
	if c.Distribution == "" {
		c.Distribution = "erk"
	}
	return c
}

// Outcome extends the uniform training result with NDSNN's rewiring log.
type Outcome struct {
	train.Result
	// Rewires records every drop-and-grow round.
	Rewires []RewireStats
}

// Densities computes the per-layer density allocation for a global density.
func Densities(shapes [][]int, globalDensity float64, distribution string) []float64 {
	if distribution == "uniform" {
		return sparse.UniformDensities(len(shapes), globalDensity)
	}
	return sparse.ERKDensities(shapes, globalDensity)
}

// TrainNDSNN trains net on ds with the NDSNN method and returns the outcome.
// The network must be freshly initialized (dense); TrainNDSNN sparsifies it
// in place.
func TrainNDSNN(net *snn.Network, ds *data.Dataset, common train.Common, cfg Config) (*Outcome, error) {
	common = common.WithDefaults()
	cfg = cfg.WithDefaults()
	if cfg.FinalSparsity < cfg.InitialSparsity {
		return nil, fmt.Errorf("core: final sparsity %v below initial %v (NDSNN's population must shrink)", cfg.FinalSparsity, cfg.InitialSparsity)
	}
	r := rng.New(common.Seed)
	params := layers.PrunableParams(net.Params())
	shapes := ShapesOf(params)

	densInit := Densities(shapes, 1-cfg.InitialSparsity, cfg.Distribution)
	densFinal := Densities(shapes, 1-cfg.FinalSparsity, cfg.Distribution)
	thetaInit := make([]float64, len(params))
	thetaFinal := make([]float64, len(params))
	for i := range params {
		thetaInit[i] = 1 - densInit[i]
		thetaFinal[i] = 1 - densFinal[i]
	}
	InitMasks(params, densInit, r.Split())

	sgd := opt.NewSGD(common.LR, common.Momentum, common.WeightDecay)
	loop := &train.Loop{
		Net: net, Dataset: ds, Opt: sgd,
		Schedule:   opt.CosineLR{Base: common.LR, Min: common.LRMin, Total: common.Epochs},
		BatchSize:  common.BatchSize,
		Epochs:     common.Epochs,
		MaxBatches: common.MaxBatches,
		Rng:        r.Split(),
	}
	totalSteps := common.Epochs * loop.StepsPerEpoch()
	rampSteps := int(cfg.RampFraction * float64(totalSteps))
	stopStep := int(cfg.StopFraction * float64(totalSteps))
	// Short runs can place the freeze point before the first ΔT multiple
	// past the ramp; always allow one final update so the model actually
	// lands on θ_f.
	if minStop := rampSteps + cfg.DeltaT + 1; stopStep < minStop {
		stopStep = minStop
	}

	rewirer := &Rewirer{
		Params: params,
		Schedule: &SparsitySchedule{
			Initial: thetaInit, Final: thetaFinal,
			T0: 0, RampSteps: rampSteps, Shape: cfg.Shape,
		},
		Death:     DeathRate{D0: cfg.DeathRate0, DMin: cfg.DeathRateMin, T0: 0, RampSteps: rampSteps},
		Criterion: cfg.Grow,
		Opt:       sgd,
		Rng:       r.Split(),
	}
	out := &Outcome{}
	ArmSparseCompute(loop, params, cfg.Grow, cfg.DeltaT, stopStep)
	loop.Hooks.OnStep = func(step int) {
		if cfg.DeltaT > 0 && step%cfg.DeltaT == 0 && step < stopStep {
			out.Rewires = append(out.Rewires, rewirer.Apply(step))
		}
	}
	history, err := loop.Run()
	if err != nil {
		return nil, err
	}
	out.History = history
	out.TestAcc = train.Evaluate(net, ds, &ds.Test, common.EvalBatch)
	out.FinalSparsity = layers.GlobalSparsity(params)
	out.Trajectory = train.BuildTrajectory("NDSNN", history)
	return out, nil
}
