// Package data provides the deterministic synthetic image-classification
// datasets that stand in for CIFAR-10, CIFAR-100 and Tiny-ImageNet.
//
// The real datasets are not redistributable inside this repository and the
// substrate is a CPU-only pure-Go trainer, so each dataset is replaced by a
// procedurally generated counterpart with the same input geometry and class
// count. Every class receives a deterministic signature — an oriented
// grating (texture), a geometric glyph (shape) and a channel mix (color) —
// and every sample perturbs that signature with spatial jitter, amplitude
// jitter and pixel noise. The decision boundaries are non-trivial (classes
// share glyph families and overlap in texture frequency), which is what the
// relative comparison of sparse-training methods needs; see DESIGN.md for
// the substitution argument.
package data

import (
	"fmt"
	"math"

	"ndsnn/internal/rng"
	"ndsnn/internal/tensor"
)

// Config describes a synthetic dataset.
type Config struct {
	Name    string
	Classes int
	// C, H, W are the image channels and spatial size.
	C, H, W int
	// TrainN, TestN are the split sizes.
	TrainN, TestN int
	// Noise is the additive pixel noise σ.
	Noise float64
	// Jitter is the spatial jitter amplitude as a fraction of image size.
	Jitter float64
	// Seed makes generation reproducible.
	Seed uint64
}

// Split holds one dataset split; images are stored flat, sample-major.
type Split struct {
	Images []float32
	Labels []int
}

// N returns the number of samples in the split.
func (s *Split) N() int { return len(s.Labels) }

// Dataset is an in-memory synthetic dataset.
type Dataset struct {
	Config Config
	Train  Split
	Test   Split
}

// classSignature is the deterministic per-class generative recipe.
type classSignature struct {
	angle, freq, phase    float64
	angle2, freq2         float64
	mix                   [3]float64
	kind                  int
	cx, cy, radius        float64
	gratingAmp, glyphAmp  float64
	secondaryContribution float64
}

// glyphFamilies is the number of coarse class families. Classes are
// assigned round-robin to families; a family fixes the glyph kind, rough
// position and texture band, and each class perturbs that base by a small
// delta. Datasets with more classes therefore pack more classes into each
// family and require finer distinctions — the same way CIFAR-100 is harder
// than CIFAR-10 at identical image geometry.
const glyphFamilies = 8

func signatureFor(class int, seed uint64) classSignature {
	fam := class % glyphFamilies
	fr := rng.New(seed ^ (0xd1b54a32d192ed03 * uint64(fam+1)))
	cr := rng.New(seed ^ (0x9e3779b97f4a7c15 * uint64(class+1)))
	cd := func(scale float64) float64 { return (2*cr.Float64() - 1) * scale }

	var sig classSignature
	sig.angle = fr.Float64()*math.Pi + cd(0.25)
	sig.freq = 2 + 4*fr.Float64() + cd(0.8)
	sig.phase = fr.Float64()*2*math.Pi + cd(0.6)
	sig.angle2 = fr.Float64()*math.Pi + cd(0.3)
	sig.freq2 = 3 + 5*fr.Float64() + cd(0.8)
	for i := range sig.mix {
		sig.mix[i] = clamp(0.35+0.65*fr.Float64()+cd(0.15), 0.2, 1.2)
	}
	sig.kind = fam % 4
	sig.cx = clamp(0.25+0.5*fr.Float64()+cd(0.08), 0.2, 0.8)
	sig.cy = clamp(0.25+0.5*fr.Float64()+cd(0.08), 0.2, 0.8)
	sig.radius = clamp(0.12+0.13*fr.Float64()+cd(0.03), 0.08, 0.3)
	sig.gratingAmp = 0.45 + 0.2*fr.Float64()
	sig.glyphAmp = 0.7 + 0.3*fr.Float64()
	sig.secondaryContribution = 0.3 * cr.Float64()
	return sig
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func (sig *classSignature) glyph(u, v float64) float64 {
	du, dv := u-sig.cx+0.5, v-sig.cy+0.5
	switch sig.kind {
	case 0: // disk
		if du*du+dv*dv < sig.radius*sig.radius {
			return 1
		}
	case 1: // square
		if math.Abs(du) < sig.radius && math.Abs(dv) < sig.radius {
			return 1
		}
	case 2: // cross
		if math.Abs(du) < sig.radius/3 || math.Abs(dv) < sig.radius/3 {
			return 1
		}
	default: // ring
		d := math.Sqrt(du*du + dv*dv)
		if math.Abs(d-sig.radius) < sig.radius/3 {
			return 1
		}
	}
	return 0
}

// Generate builds the dataset described by cfg. Both splits draw from the
// same class signatures but disjoint RNG streams.
func Generate(cfg Config) *Dataset {
	if cfg.Classes <= 1 {
		panic("data: need at least 2 classes")
	}
	if cfg.C != 1 && cfg.C != 3 {
		panic(fmt.Sprintf("data: unsupported channel count %d", cfg.C))
	}
	sigs := make([]classSignature, cfg.Classes)
	for c := range sigs {
		sigs[c] = signatureFor(c, cfg.Seed)
	}
	d := &Dataset{Config: cfg}
	d.Train = generateSplit(cfg, sigs, cfg.TrainN, rng.New(cfg.Seed+1))
	d.Test = generateSplit(cfg, sigs, cfg.TestN, rng.New(cfg.Seed+2))
	standardize(&d.Train, &d.Test, cfg)
	return d
}

func generateSplit(cfg Config, sigs []classSignature, n int, r *rng.RNG) Split {
	pix := cfg.C * cfg.H * cfg.W
	s := Split{Images: make([]float32, n*pix), Labels: make([]int, n)}
	for i := 0; i < n; i++ {
		class := i % cfg.Classes // balanced classes
		s.Labels[i] = class
		sig := &sigs[class]
		jx := (2*r.Float64() - 1) * cfg.Jitter
		jy := (2*r.Float64() - 1) * cfg.Jitter
		amp := 0.8 + 0.4*r.Float64()
		base := i * pix
		for ch := 0; ch < cfg.C; ch++ {
			mix := sig.mix[ch%3]
			for y := 0; y < cfg.H; y++ {
				v := float64(y)/float64(cfg.H) - 0.5 + jy
				for x := 0; x < cfg.W; x++ {
					u := float64(x)/float64(cfg.W) - 0.5 + jx
					g := math.Sin(2*math.Pi*sig.freq*(u*math.Cos(sig.angle)+v*math.Sin(sig.angle)) + sig.phase)
					g2 := math.Sin(2 * math.Pi * sig.freq2 * (u*math.Cos(sig.angle2) + v*math.Sin(sig.angle2)))
					val := mix * amp * (sig.gratingAmp*g + sig.secondaryContribution*g2 + sig.glyphAmp*sig.glyph(u, v))
					val += cfg.Noise * r.NormFloat64()
					s.Images[base+ch*cfg.H*cfg.W+y*cfg.W+x] = float32(val)
				}
			}
		}
	}
	return s
}

// standardize shifts/scales both splits using train-split per-channel
// statistics (the usual normalization protocol).
func standardize(train, test *Split, cfg Config) {
	hw := cfg.H * cfg.W
	pix := cfg.C * hw
	for ch := 0; ch < cfg.C; ch++ {
		var sum, sumsq float64
		count := 0
		for i := 0; i < train.N(); i++ {
			base := i*pix + ch*hw
			for j := 0; j < hw; j++ {
				v := float64(train.Images[base+j])
				sum += v
				sumsq += v * v
				count++
			}
		}
		mean := sum / float64(count)
		std := math.Sqrt(sumsq/float64(count) - mean*mean)
		if std < 1e-8 {
			std = 1
		}
		m, inv := float32(mean), float32(1/std)
		for _, s := range []*Split{train, test} {
			for i := 0; i < s.N(); i++ {
				base := i*pix + ch*hw
				for j := 0; j < hw; j++ {
					s.Images[base+j] = (s.Images[base+j] - m) * inv
				}
			}
		}
	}
}

// Batch gathers the samples at idxs into a [len(idxs),C,H,W] tensor and a
// label slice.
func (d *Dataset) Batch(s *Split, idxs []int) (*tensor.Tensor, []int) {
	pix := d.Config.C * d.Config.H * d.Config.W
	x := tensor.New(len(idxs), d.Config.C, d.Config.H, d.Config.W)
	labels := make([]int, len(idxs))
	for bi, i := range idxs {
		copy(x.Data[bi*pix:(bi+1)*pix], s.Images[i*pix:(i+1)*pix])
		labels[bi] = s.Labels[i]
	}
	return x, labels
}

// ShuffledBatches partitions [0,n) into shuffled batches of size batchSize
// (the final short batch is kept).
func ShuffledBatches(n, batchSize int, r *rng.RNG) [][]int {
	perm := r.Perm(n)
	var out [][]int
	for lo := 0; lo < n; lo += batchSize {
		hi := lo + batchSize
		if hi > n {
			hi = n
		}
		out = append(out, perm[lo:hi])
	}
	return out
}

// SequentialBatches partitions [0,n) into in-order batches (for eval).
func SequentialBatches(n, batchSize int) [][]int {
	var out [][]int
	for lo := 0; lo < n; lo += batchSize {
		hi := lo + batchSize
		if hi > n {
			hi = n
		}
		idxs := make([]int, hi-lo)
		for i := range idxs {
			idxs[i] = lo + i
		}
		out = append(out, idxs)
	}
	return out
}
