package data

import (
	"math"
	"testing"

	"ndsnn/internal/rng"
)

func small() *Dataset { return SynthSmall(4, 64, 32, 7) }

func TestShapesAndCounts(t *testing.T) {
	d := small()
	pix := 3 * 16 * 16
	if len(d.Train.Images) != 64*pix {
		t.Fatalf("train images len = %d", len(d.Train.Images))
	}
	if len(d.Test.Images) != 32*pix {
		t.Fatalf("test images len = %d", len(d.Test.Images))
	}
	if d.Train.N() != 64 || d.Test.N() != 32 {
		t.Fatalf("split sizes %d/%d", d.Train.N(), d.Test.N())
	}
}

func TestLabelsBalancedAndInRange(t *testing.T) {
	d := small()
	counts := make([]int, 4)
	for _, l := range d.Train.Labels {
		if l < 0 || l >= 4 {
			t.Fatalf("label %d out of range", l)
		}
		counts[l]++
	}
	for c, n := range counts {
		if n != 16 {
			t.Fatalf("class %d has %d samples, want 16 (balanced)", c, n)
		}
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a := SynthSmall(4, 32, 16, 99)
	b := SynthSmall(4, 32, 16, 99)
	for i := range a.Train.Images {
		if a.Train.Images[i] != b.Train.Images[i] {
			t.Fatal("same seed produced different images")
		}
	}
	c := SynthSmall(4, 32, 16, 100)
	same := true
	for i := range a.Train.Images {
		if a.Train.Images[i] != c.Train.Images[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical images")
	}
}

func TestStandardization(t *testing.T) {
	d := SynthCIFAR10(200, 50, 3)
	hw := 32 * 32
	pix := 3 * hw
	for ch := 0; ch < 3; ch++ {
		var sum, sumsq float64
		n := 0
		for i := 0; i < d.Train.N(); i++ {
			base := i*pix + ch*hw
			for j := 0; j < hw; j++ {
				v := float64(d.Train.Images[base+j])
				sum += v
				sumsq += v * v
				n++
			}
		}
		mean := sum / float64(n)
		std := math.Sqrt(sumsq/float64(n) - mean*mean)
		if math.Abs(mean) > 1e-3 {
			t.Fatalf("channel %d mean = %v, want ~0", ch, mean)
		}
		if math.Abs(std-1) > 1e-3 {
			t.Fatalf("channel %d std = %v, want ~1", ch, std)
		}
	}
}

func TestClassesAreDistinguishable(t *testing.T) {
	// A nearest-class-mean classifier on raw pixels must beat chance by a
	// wide margin on the easy preset — otherwise the generator is broken
	// and no trainer comparison is meaningful.
	d := SynthEasy(4, 128, 64, 11)
	pix := 3 * 16 * 16
	means := make([][]float64, 4)
	counts := make([]int, 4)
	for c := range means {
		means[c] = make([]float64, pix)
	}
	for i := 0; i < d.Train.N(); i++ {
		c := d.Train.Labels[i]
		counts[c]++
		for j := 0; j < pix; j++ {
			means[c][j] += float64(d.Train.Images[i*pix+j])
		}
	}
	for c := range means {
		for j := range means[c] {
			means[c][j] /= float64(counts[c])
		}
	}
	correct := 0
	for i := 0; i < d.Test.N(); i++ {
		best, bestDist := -1, math.Inf(1)
		for c := range means {
			dist := 0.0
			for j := 0; j < pix; j++ {
				diff := float64(d.Test.Images[i*pix+j]) - means[c][j]
				dist += diff * diff
			}
			if dist < bestDist {
				bestDist, best = dist, c
			}
		}
		if best == d.Test.Labels[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(d.Test.N())
	if acc < 0.8 {
		t.Fatalf("nearest-mean accuracy = %v, want >= 0.8 (classes not separable)", acc)
	}
}

func TestHarderPresetIsHarder(t *testing.T) {
	// More classes with the same generator → lower nearest-mean accuracy,
	// i.e. difficulty scales the way CIFAR-10 → CIFAR-100 does.
	nearestMeanAcc := func(d *Dataset) float64 {
		cfg := d.Config
		pix := cfg.C * cfg.H * cfg.W
		means := make([][]float64, cfg.Classes)
		counts := make([]int, cfg.Classes)
		for c := range means {
			means[c] = make([]float64, pix)
		}
		for i := 0; i < d.Train.N(); i++ {
			c := d.Train.Labels[i]
			counts[c]++
			for j := 0; j < pix; j++ {
				means[c][j] += float64(d.Train.Images[i*pix+j])
			}
		}
		for c := range means {
			if counts[c] == 0 {
				continue
			}
			for j := range means[c] {
				means[c][j] /= float64(counts[c])
			}
		}
		correct := 0
		for i := 0; i < d.Test.N(); i++ {
			best, bestDist := -1, math.Inf(1)
			for c := range means {
				dist := 0.0
				for j := 0; j < pix; j++ {
					diff := float64(d.Test.Images[i*pix+j]) - means[c][j]
					dist += diff * diff
				}
				if dist < bestDist {
					bestDist, best = dist, c
				}
			}
			if best == d.Test.Labels[i] {
				correct++
			}
		}
		return float64(correct) / float64(d.Test.N())
	}
	easy := nearestMeanAcc(SynthSmall(4, 160, 80, 5))
	hard := nearestMeanAcc(SynthSmall(24, 960, 480, 5))
	if hard >= easy {
		t.Fatalf("24-class accuracy (%v) should be below 4-class accuracy (%v)", hard, easy)
	}
}

func TestBatchGathersCorrectSamples(t *testing.T) {
	d := small()
	x, labels := d.Batch(&d.Train, []int{3, 7})
	if x.Dim(0) != 2 || x.Dim(1) != 3 || x.Dim(2) != 16 || x.Dim(3) != 16 {
		t.Fatalf("batch shape %v", x.Shape())
	}
	pix := 3 * 16 * 16
	for j := 0; j < pix; j++ {
		if x.Data[j] != d.Train.Images[3*pix+j] {
			t.Fatal("batch sample 0 mismatch")
		}
		if x.Data[pix+j] != d.Train.Images[7*pix+j] {
			t.Fatal("batch sample 1 mismatch")
		}
	}
	if labels[0] != d.Train.Labels[3] || labels[1] != d.Train.Labels[7] {
		t.Fatal("batch labels mismatch")
	}
}

func TestShuffledBatchesPartition(t *testing.T) {
	r := rng.New(1)
	batches := ShuffledBatches(103, 32, r)
	if len(batches) != 4 {
		t.Fatalf("got %d batches, want 4", len(batches))
	}
	seen := make([]bool, 103)
	total := 0
	for _, b := range batches {
		for _, i := range b {
			if seen[i] {
				t.Fatalf("index %d appears twice", i)
			}
			seen[i] = true
			total++
		}
	}
	if total != 103 {
		t.Fatalf("covered %d indices, want 103", total)
	}
}

func TestSequentialBatchesOrder(t *testing.T) {
	batches := SequentialBatches(5, 2)
	if len(batches) != 3 {
		t.Fatalf("got %d batches", len(batches))
	}
	if batches[2][0] != 4 || len(batches[2]) != 1 {
		t.Fatalf("last batch = %v", batches[2])
	}
}

func TestGeneratePanicsOnBadConfig(t *testing.T) {
	for _, cfg := range []Config{
		{Classes: 1, C: 3, H: 8, W: 8, TrainN: 4, TestN: 4},
		{Classes: 4, C: 2, H: 8, W: 8, TrainN: 4, TestN: 4},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("config %+v did not panic", cfg)
				}
			}()
			Generate(cfg)
		}()
	}
}

func TestPresetGeometries(t *testing.T) {
	cases := []struct {
		d       *Dataset
		classes int
		h       int
	}{
		{SynthCIFAR10(10, 10, 1), 10, 32},
		{SynthCIFAR100(100, 100, 1), 100, 32},
		{SynthTinyImageNet(200, 200, 1), 200, 64},
	}
	for _, c := range cases {
		if c.d.Config.Classes != c.classes || c.d.Config.H != c.h || c.d.Config.C != 3 {
			t.Fatalf("%s geometry wrong: %+v", c.d.Config.Name, c.d.Config)
		}
	}
}
