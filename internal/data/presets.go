package data

// Presets mirror the paper's three evaluation datasets in geometry and class
// count; sample counts are parameters because the CPU substrate trains on
// scaled-down splits by default (the "paper" profile raises them).

// SynthCIFAR10 is the CIFAR-10 stand-in: 10 classes of 3×32×32 images.
func SynthCIFAR10(trainN, testN int, seed uint64) *Dataset {
	return Generate(Config{
		Name: "synth-cifar10", Classes: 10, C: 3, H: 32, W: 32,
		TrainN: trainN, TestN: testN, Noise: 0.35, Jitter: 0.08, Seed: seed,
	})
}

// SynthCIFAR100 is the CIFAR-100 stand-in: 100 classes of 3×32×32 images.
func SynthCIFAR100(trainN, testN int, seed uint64) *Dataset {
	return Generate(Config{
		Name: "synth-cifar100", Classes: 100, C: 3, H: 32, W: 32,
		TrainN: trainN, TestN: testN, Noise: 0.35, Jitter: 0.08, Seed: seed,
	})
}

// SynthTinyImageNet is the Tiny-ImageNet stand-in: 200 classes of 3×64×64
// images.
func SynthTinyImageNet(trainN, testN int, seed uint64) *Dataset {
	return Generate(Config{
		Name: "synth-tinyimagenet", Classes: 200, C: 3, H: 64, W: 64,
		TrainN: trainN, TestN: testN, Noise: 0.4, Jitter: 0.1, Seed: seed,
	})
}

// SynthSmall is a miniature dataset for unit tests and fast integration
// runs: configurable class count over 3×16×16 images with mild noise.
func SynthSmall(classes, trainN, testN int, seed uint64) *Dataset {
	return Generate(Config{
		Name: "synth-small", Classes: classes, C: 3, H: 16, W: 16,
		TrainN: trainN, TestN: testN, Noise: 0.2, Jitter: 0.05, Seed: seed,
	})
}

// SynthEasy is a low-noise, jitter-free dataset on which a tiny network
// reaches high accuracy within a couple of epochs; integration tests use it
// to verify that trainers actually learn.
func SynthEasy(classes, trainN, testN int, seed uint64) *Dataset {
	return Generate(Config{
		Name: "synth-easy", Classes: classes, C: 3, H: 16, W: 16,
		TrainN: trainN, TestN: testN, Noise: 0.05, Jitter: 0.02, Seed: seed,
	})
}
