// Package fault is a deterministic fault-injection subsystem: named sites
// compiled into the serving, inference and checkpoint hot paths that can be
// armed to raise panics, inject delays, or return errors at specific hit
// counts (or with a seeded probability), and that cost one atomic pointer
// load when disarmed — the production state.
//
// A site is registered once at package init (fault.New) and evaluated at its
// injection point with Site.Fire (paths that cannot return an error: the
// site may panic or sleep) or Site.Err (error-returning paths). Each site
// declares which modes its call site can absorb (Caps); Arm rejects plans
// the site cannot carry, so a sweep over fault.Sites() arms exactly the
// mode × site matrix the code is built to survive.
//
// Determinism is the point: a Plan fires on an exact hit index (Hit), on a
// fixed period (Every), or with a seeded Bernoulli draw (Prob/Seed over
// internal/rng) — never on wall-clock or unseeded randomness — so a chaos
// run that found a failure replays it exactly. The chaos harness in
// internal/serve sweeps every site under -race asserting the invariants
// that make the resilience layer trustworthy: no hangs, surviving responses
// bit-identical to the serial reference, and request-stats conservation.
package fault

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ndsnn/internal/rng"
)

// Mode is what an armed site does when its plan comes due.
type Mode int

const (
	// Panic throws a PanicValue naming the site — the injected analogue of
	// an engine bug or a corrupted-state crash.
	Panic Mode = 1 + iota
	// Delay sleeps Plan.Sleep — the injected analogue of a stalled
	// dispatcher, a descheduled worker, or slow I/O.
	Delay
	// Error returns Plan.Err (ErrInjected when nil) — the injected analogue
	// of a failed syscall or a dependency error.
	Error
)

// String names the mode for sweep labels.
func (m Mode) String() string {
	switch m {
	case Panic:
		return "panic"
	case Delay:
		return "delay"
	case Error:
		return "error"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Caps declares which modes a site's call site can absorb.
type Caps uint8

const (
	// CanPanic marks sites whose callers recover (or are expected to crash).
	CanPanic Caps = 1 << iota
	// CanDelay marks sites that may sleep without deadlocking their caller.
	CanDelay
	// CanError marks sites evaluated with Site.Err on an error-returning path.
	CanError
)

// Has reports whether c includes the capability needed for mode m.
func (c Caps) Has(m Mode) bool {
	switch m {
	case Panic:
		return c&CanPanic != 0
	case Delay:
		return c&CanDelay != 0
	case Error:
		return c&CanError != 0
	}
	return false
}

// Modes lists the modes c supports, in Panic/Delay/Error order.
func (c Caps) Modes() []Mode {
	var ms []Mode
	for _, m := range []Mode{Panic, Delay, Error} {
		if c.Has(m) {
			ms = append(ms, m)
		}
	}
	return ms
}

// ErrInjected is the default error of Error-mode plans.
var ErrInjected = errors.New("fault: injected error")

// PanicValue is what Panic-mode sites throw, so recovery code (and tests)
// can distinguish injected panics from real ones.
type PanicValue struct{ Site string }

func (p PanicValue) String() string { return "fault: injected panic at " + p.Site }

// Plan describes when an armed site fires and what it does. Exactly one of
// Hit, Every or Prob selects the trigger; all three zero fires on every hit.
type Plan struct {
	Mode Mode
	// Hit fires on exactly the Hit-th hit (1-based) since arming.
	Hit int64
	// Every fires on every Every-th hit (hit indices divisible by Every).
	Every int64
	// Prob fires each hit with this probability, drawn from a generator
	// seeded with Seed — deterministic given the hit sequence.
	Prob float64
	Seed uint64
	// Times caps total fires; 0 is unlimited (Hit alone fires once anyway).
	Times int64
	// Sleep is the Delay-mode duration.
	Sleep time.Duration
	// Err is the Error-mode error; nil means ErrInjected.
	Err error
}

// armed is the mutable state of one armed plan.
type armed struct {
	plan  Plan
	hits  atomic.Int64
	fired atomic.Int64
	mu    sync.Mutex // guards r (rng.RNG is not concurrency-safe)
	r     *rng.RNG
}

// due counts one hit and reports whether the plan fires on it.
func (a *armed) due() bool {
	h := a.hits.Add(1)
	hot := false
	switch {
	case a.plan.Hit > 0:
		hot = h == a.plan.Hit
	case a.plan.Every > 0:
		hot = h%a.plan.Every == 0
	case a.plan.Prob > 0:
		a.mu.Lock()
		hot = a.r.Bernoulli(a.plan.Prob)
		a.mu.Unlock()
	default:
		hot = true
	}
	if !hot {
		return false
	}
	f := a.fired.Add(1)
	return a.plan.Times <= 0 || f <= a.plan.Times
}

// Site is one named injection point. The zero value is invalid; sites are
// created with New at package init and live for the process.
type Site struct {
	name string
	caps Caps
	arm  atomic.Pointer[armed]
}

// Name returns the site's registered name.
func (s *Site) Name() string { return s.name }

// Caps returns the modes the site's call site can absorb.
func (s *Site) Caps() Caps { return s.caps }

// Arm installs a plan, replacing any previous one (hit counts restart).
// Plans whose mode the site cannot absorb are rejected.
func (s *Site) Arm(p Plan) error {
	if !s.caps.Has(p.Mode) {
		return fmt.Errorf("fault: site %s cannot carry mode %s", s.name, p.Mode)
	}
	a := &armed{plan: p}
	if p.Prob > 0 {
		seed := p.Seed
		if seed == 0 {
			seed = 1
		}
		a.r = rng.New(seed)
	}
	s.arm.Store(a)
	return nil
}

// Disarm removes the site's plan; evaluation returns to the one-load no-op.
func (s *Site) Disarm() { s.arm.Store(nil) }

// Armed reports whether a plan is installed.
func (s *Site) Armed() bool { return s.arm.Load() != nil }

// Hits returns how many times the current plan's site was evaluated, and
// Fired how many times it fired. Both are 0 when disarmed.
func (s *Site) Hits() int64 {
	if a := s.arm.Load(); a != nil {
		return a.hits.Load()
	}
	return 0
}

// Fired returns how many times the current plan fired.
func (s *Site) Fired() int64 {
	if a := s.arm.Load(); a != nil {
		return a.fired.Load()
	}
	return 0
}

// Fire evaluates the site on a path that cannot return an error: a due
// Panic plan panics with a PanicValue, a due Delay plan sleeps. Disarmed —
// the production state — it is one atomic load.
func (s *Site) Fire() {
	a := s.arm.Load()
	if a == nil {
		return
	}
	if !a.due() {
		return
	}
	switch a.plan.Mode {
	case Panic:
		panic(PanicValue{Site: s.name})
	case Delay:
		time.Sleep(a.plan.Sleep)
	}
}

// Err evaluates the site on an error-returning path: a due Error plan
// returns its error; Panic and Delay plans behave as Fire. Disarmed it is
// one atomic load and returns nil.
func (s *Site) Err() error {
	a := s.arm.Load()
	if a == nil {
		return nil
	}
	if !a.due() {
		return nil
	}
	switch a.plan.Mode {
	case Panic:
		panic(PanicValue{Site: s.name})
	case Delay:
		time.Sleep(a.plan.Sleep)
		return nil
	case Error:
		if a.plan.Err != nil {
			return a.plan.Err
		}
		return ErrInjected
	}
	return nil
}

var (
	regMu sync.Mutex
	reg   = map[string]*Site{}
)

// New registers a site under a unique name. Call at package init; duplicate
// names panic (two call sites must not share a trigger).
func New(name string, caps Caps) *Site {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := reg[name]; dup {
		panic("fault: duplicate site " + name)
	}
	s := &Site{name: name, caps: caps}
	reg[name] = s
	return s
}

// Lookup returns the site registered under name, or nil.
func Lookup(name string) *Site {
	regMu.Lock()
	defer regMu.Unlock()
	return reg[name]
}

// Sites returns every registered site, sorted by name — the sweep axis of
// the chaos harness.
func Sites() []*Site {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]*Site, 0, len(reg))
	for _, s := range reg {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// DisarmAll disarms every registered site — the chaos harness's per-case
// reset.
func DisarmAll() {
	for _, s := range Sites() {
		s.Disarm()
	}
}
