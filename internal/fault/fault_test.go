package fault_test

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ndsnn/internal/fault"
)

var (
	testFire = fault.New("test.fire", fault.CanPanic|fault.CanDelay)
	testErr  = fault.New("test.err", fault.CanError|fault.CanDelay)
)

// TestDisarmedIsNoOp: an unarmed site never fires, never counts, never errs.
func TestDisarmedIsNoOp(t *testing.T) {
	for i := 0; i < 100; i++ {
		testFire.Fire()
		if err := testErr.Err(); err != nil {
			t.Fatalf("disarmed site returned %v", err)
		}
	}
	if testFire.Hits() != 0 || testFire.Fired() != 0 {
		t.Fatalf("disarmed site counted hits: %d/%d", testFire.Hits(), testFire.Fired())
	}
}

// TestHitFiresExactlyOnce: Hit=N fires on exactly the Nth evaluation.
func TestHitFiresExactlyOnce(t *testing.T) {
	defer testErr.Disarm()
	if err := testErr.Arm(fault.Plan{Mode: fault.Error, Hit: 3}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		err := testErr.Err()
		if (i == 3) != (err != nil) {
			t.Fatalf("hit %d: err=%v, want error exactly at hit 3", i, err)
		}
		if err != nil && !errors.Is(err, fault.ErrInjected) {
			t.Fatalf("hit %d: err=%v, want ErrInjected", i, err)
		}
	}
	if got := testErr.Fired(); got != 1 {
		t.Fatalf("fired %d times, want 1", got)
	}
}

// TestEveryWithTimesCap: Every=2 fires on even hits until Times is spent.
func TestEveryWithTimesCap(t *testing.T) {
	defer testErr.Disarm()
	custom := errors.New("boom")
	if err := testErr.Arm(fault.Plan{Mode: fault.Error, Every: 2, Times: 2, Err: custom}); err != nil {
		t.Fatal(err)
	}
	var fired []int
	for i := 1; i <= 10; i++ {
		if err := testErr.Err(); err != nil {
			if !errors.Is(err, custom) {
				t.Fatalf("hit %d: got %v, want custom error", i, err)
			}
			fired = append(fired, i)
		}
	}
	if len(fired) != 2 || fired[0] != 2 || fired[1] != 4 {
		t.Fatalf("fired at hits %v, want [2 4]", fired)
	}
}

// TestPanicCarriesSiteName: Panic mode throws an identifiable PanicValue.
func TestPanicCarriesSiteName(t *testing.T) {
	defer testFire.Disarm()
	if err := testFire.Arm(fault.Plan{Mode: fault.Panic, Hit: 1}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		pv, ok := r.(fault.PanicValue)
		if !ok || pv.Site != "test.fire" {
			t.Fatalf("recovered %#v, want PanicValue{test.fire}", r)
		}
	}()
	testFire.Fire()
	t.Fatal("armed panic site did not panic")
}

// TestDelaySleeps: Delay mode sleeps roughly the configured duration.
func TestDelaySleeps(t *testing.T) {
	defer testFire.Disarm()
	if err := testFire.Arm(fault.Plan{Mode: fault.Delay, Hit: 1, Sleep: 20 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	testFire.Fire()
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("delay slept %v, want ≥ 20ms (minus scheduler slack)", d)
	}
}

// TestProbIsSeededDeterministic: the same seed yields the same fire pattern.
func TestProbIsSeededDeterministic(t *testing.T) {
	defer testErr.Disarm()
	pattern := func(seed uint64) []bool {
		if err := testErr.Arm(fault.Plan{Mode: fault.Error, Prob: 0.5, Seed: seed}); err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 64)
		for i := range out {
			out[i] = testErr.Err() != nil
		}
		return out
	}
	a, b := pattern(42), pattern(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("hit %d: seed-42 patterns diverge", i)
		}
	}
	c := pattern(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 64-hit patterns (suspicious)")
	}
}

// TestArmRejectsUnsupportedMode: caps gate what a sweep may arm.
func TestArmRejectsUnsupportedMode(t *testing.T) {
	if err := testFire.Arm(fault.Plan{Mode: fault.Error}); err == nil {
		testFire.Disarm()
		t.Fatal("Error-mode plan armed on a site without CanError")
	}
	if err := testErr.Arm(fault.Plan{Mode: fault.Panic}); err == nil {
		testErr.Disarm()
		t.Fatal("Panic-mode plan armed on a site without CanPanic")
	}
}

// TestRegistryAndSweepSurface: registered sites are enumerable and
// resettable — the chaos harness's contract.
func TestRegistryAndSweepSurface(t *testing.T) {
	if fault.Lookup("test.fire") != testFire {
		t.Fatal("Lookup did not return the registered site")
	}
	found := 0
	for _, s := range fault.Sites() {
		if s == testFire || s == testErr {
			found++
		}
	}
	if found != 2 {
		t.Fatalf("Sites() surfaced %d of the 2 test sites", found)
	}
	if err := testErr.Arm(fault.Plan{Mode: fault.Error}); err != nil {
		t.Fatal(err)
	}
	fault.DisarmAll()
	if testErr.Armed() {
		t.Fatal("DisarmAll left a site armed")
	}
}

// TestConcurrentEvaluation: armed-site evaluation is race-free and the
// Times cap holds under contention (run with -race).
func TestConcurrentEvaluation(t *testing.T) {
	defer testErr.Disarm()
	if err := testErr.Arm(fault.Plan{Mode: fault.Error, Every: 3, Times: 5}); err != nil {
		t.Fatal(err)
	}
	var fired atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if testErr.Err() != nil {
					fired.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if got := fired.Load(); got != 5 {
		t.Fatalf("Times=5 cap fired %d errors under contention", got)
	}
}

// TestCapsModes pins the sweep axis derivation.
func TestCapsModes(t *testing.T) {
	ms := (fault.CanPanic | fault.CanError).Modes()
	if len(ms) != 2 || ms[0] != fault.Panic || ms[1] != fault.Error {
		t.Fatalf("Modes() = %v, want [panic error]", ms)
	}
	if fault.Panic.String() != "panic" || fault.Delay.String() != "delay" || fault.Error.String() != "error" {
		t.Fatal("Mode.String labels changed — sweep case names depend on them")
	}
}
