package infer_test

import (
	"sync"
	"testing"

	"ndsnn/internal/baselines"
	"ndsnn/internal/data"
	"ndsnn/internal/infer"
	"ndsnn/internal/tensor"
	"ndsnn/internal/testutil"
	"ndsnn/internal/train"
)

// Re-entrancy pins for the plan/scratch split: one compiled engine served
// from many goroutines must reproduce the serial single-caller outputs
// bit-for-bit (float32, int8 and int4 engines alike), the SynOps roll-up
// must not lose counts, and steady-state requests must reuse — not
// reallocate — their arena buffers. CI runs this file under -race.

func buildTrainedEngine(t *testing.T, bits int, seed uint64) (*infer.Engine, []*tensor.Tensor) {
	t.Helper()
	ds := data.SynthEasy(4, 64, 16, seed)
	net := testutil.TinyNet(4, 3, seed)
	_, err := baselines.TrainDense(net, ds, train.Common{
		Epochs: 2, BatchSize: 16, LR: 0.05, Momentum: 0.9, WeightDecay: 5e-4, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	var eng *infer.Engine
	switch {
	case bits == 0:
		eng, err = infer.Compile(net)
	case bits < 0: // fully-integer pipeline at -bits weight bits, 8-bit activations
		eng, err = infer.CompileQuantizedConfig(net, infer.QuantConfig{WeightBits: -bits, FullInteger: true})
	default:
		eng, err = infer.CompileQuantized(net, bits)
	}
	if err != nil {
		t.Fatal(err)
	}
	pix := ds.Config.C * ds.Config.H * ds.Config.W
	samples := make([]*tensor.Tensor, ds.Test.N())
	for i := range samples {
		samples[i] = tensor.FromSlice(ds.Test.Images[i*pix:(i+1)*pix], ds.Config.C, ds.Config.H, ds.Config.W)
	}
	return eng, samples
}

// TestConcurrentInferBitIdentical: N goroutines × {float32, int8, int4,
// fully-integer} engines classify the same samples concurrently and must
// match the serial reference exactly. The fully-integer arm exercises the
// new graded kernels (aquant boundary, level×level accumulate) under -race.
func TestConcurrentInferBitIdentical(t *testing.T) {
	for _, tc := range []struct {
		name string
		bits int
	}{
		{"float32", 0}, {"int8", 8}, {"int4", 4}, {"fullint8", -8},
	} {
		t.Run(tc.name, func(t *testing.T) {
			eng, samples := buildTrainedEngine(t, tc.bits, 51)
			ref := make([][]float32, len(samples))
			for i, s := range samples {
				ref[i] = eng.Infer(s)
			}

			const goroutines = 8
			const rounds = 6
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for r := 0; r < rounds; r++ {
						idx := (g + r*goroutines) % len(samples)
						got := eng.Infer(samples[idx])
						for j := range got {
							if got[j] != ref[idx][j] {
								t.Errorf("goroutine %d sample %d score %d: %v != serial %v",
									g, idx, j, got[j], ref[idx][j])
								return
							}
						}
					}
				}(g)
			}
			wg.Wait()
		})
	}
}

// TestInferBatchBitIdentical: the stage-major batched pass must equal
// per-sample serial inference exactly, at every batch size.
func TestInferBatchBitIdentical(t *testing.T) {
	eng, samples := buildTrainedEngine(t, 0, 53)
	ref := make([][]float32, len(samples))
	for i, s := range samples {
		ref[i] = eng.Infer(s)
	}
	for _, b := range []int{1, 2, 3, 8, len(samples)} {
		outs := eng.InferBatch(samples[:b])
		if len(outs) != b {
			t.Fatalf("batch %d: got %d outputs", b, len(outs))
		}
		for i := range outs {
			for j := range outs[i] {
				if outs[i][j] != ref[i][j] {
					t.Fatalf("batch %d sample %d score %d: %v != serial %v", b, i, j, outs[i][j], ref[i][j])
				}
			}
		}
	}
}

// TestConcurrentSynOpsRollUp: concurrent requests must aggregate exactly the
// serial SynOps total (the satellite fix for the old engine-owned counter
// race).
func TestConcurrentSynOpsRollUp(t *testing.T) {
	eng, samples := buildTrainedEngine(t, 0, 55)
	eng.ResetStats()
	for _, s := range samples {
		eng.Infer(s)
	}
	want := eng.SynOps()

	eng.ResetStats()
	var wg sync.WaitGroup
	for _, s := range samples {
		wg.Add(1)
		go func(s *tensor.Tensor) {
			defer wg.Done()
			eng.Infer(s)
		}(s)
	}
	wg.Wait()
	if got := eng.SynOps(); got != want {
		t.Fatalf("concurrent SynOps %d != serial %d", got, want)
	}
}

// TestInferAllocsSteadyState: after warm-up, repeated requests must recycle
// their arena (activation buffers, event lists, membrane state) instead of
// reallocating. The pre-refactor engine allocated every inter-stage buffer
// and event list per timestep — hundreds of allocations per request on the
// tiny net; the pooled arena leaves only the returned score copy and a few
// pool/interface crumbs.
func TestInferAllocsSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated by the race detector")
	}
	eng, samples := buildTrainedEngine(t, 0, 57)
	sample := samples[0]
	for i := 0; i < 4; i++ {
		eng.Infer(sample) // warm the pooled arena's capacities
	}
	avg := testing.AllocsPerRun(50, func() { eng.Infer(sample) })
	if avg > 8 {
		t.Fatalf("steady-state Infer allocates %.1f objects per request; arena reuse is broken (want ≤ 8)", avg)
	}
}

// BenchmarkInferAllocs reports steady-state allocations and wall-clock per
// single-sample request (the allocs-per-op evidence for the scratch reuse
// satellite).
func BenchmarkInferAllocs(b *testing.B) {
	ds := data.SynthEasy(4, 64, 16, 59)
	net := testutil.TinyNet(4, 3, 59)
	if _, err := baselines.TrainDense(net, ds, train.Common{
		Epochs: 1, BatchSize: 16, LR: 0.05, Momentum: 0.9, Seed: 9,
	}); err != nil {
		b.Fatal(err)
	}
	eng, err := infer.Compile(net)
	if err != nil {
		b.Fatal(err)
	}
	pix := ds.Config.C * ds.Config.H * ds.Config.W
	sample := tensor.FromSlice(ds.Test.Images[:pix], ds.Config.C, ds.Config.H, ds.Config.W)
	eng.Infer(sample)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Infer(sample)
	}
}
