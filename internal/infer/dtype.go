package infer

import "fmt"

// The typed activation IR. Every edge between compiled stages carries a
// DType describing the values flowing across it, and the compiler walker
// propagates dtypes through the pipeline instead of flipping a single
// "binary" flag. Three kinds cover the engine:
//
//   - AnalogF32: arbitrary float32 activations (the direct-encoding network
//     input, conv/linear pre-activations after the requant affine, float
//     average pooling);
//   - BinarySpike: {0,1} spike trains (LIF outputs; preserved by max
//     pooling and reshapes);
//   - QuantInt: activations on a signed integer grid with a power-of-two
//     scale — every value is exactly level×Scale in float32, so the
//     float32-backed activation buffers carry integer levels losslessly and
//     an integer stage recovers them with one exact multiply (1/Scale is
//     also a power of two).
//
// A stage is "integer" when its synaptic arithmetic — the O(events ×
// synapses) accumulate that dominates the work — runs in int32. The O(n)
// per-neuron epilogues (requant affine, LIF threshold) stay in float32 here
// for bit-identity with the training path, but on a grid input with po2
// scales those float ops compute exactly what fixed-point hardware would.
type DType struct {
	// Kind discriminates the edge type.
	Kind DKind
	// Bits is the signed level width of a QuantInt edge (informational for
	// memory accounting and overflow reasoning; the kernels use int32).
	Bits int
	// Scale is the QuantInt grid step, a power of two.
	Scale float32
}

// DKind enumerates the activation edge kinds.
type DKind uint8

const (
	// AnalogF32 marks arbitrary float32 activations.
	AnalogF32 DKind = iota
	// BinarySpike marks {0,1} spike trains.
	BinarySpike
	// QuantInt marks activations on a signed po2-scaled integer grid.
	QuantInt
)

var (
	dtAnalog = DType{Kind: AnalogF32}
	dtSpike  = DType{Kind: BinarySpike}
)

// String renders the dtype for stage tables: "f32", "spike", "int8·2^-6".
func (d DType) String() string {
	switch d.Kind {
	case BinarySpike:
		return "spike"
	case QuantInt:
		return fmt.Sprintf("int%d·%g", d.Bits, d.Scale)
	default:
		return "f32"
	}
}

// onGrid reports whether the edge's values lie on an exact integer grid —
// the precondition for integer event accumulation.
func (d DType) onGrid() bool { return d.Kind == BinarySpike || d.Kind == QuantInt }

// gridScale returns the grid step (1 for spikes, 0 for analog edges).
func (d DType) gridScale() float32 {
	switch d.Kind {
	case BinarySpike:
		return 1
	case QuantInt:
		return d.Scale
	default:
		return 0
	}
}

// maxLevel bounds the magnitude of the integer levels on a grid edge.
func (d DType) maxLevel() int64 {
	switch d.Kind {
	case BinarySpike:
		return 1
	case QuantInt:
		return int64(1)<<(d.Bits-1) - 1
	default:
		return 0
	}
}

// bitWidth is the per-element storage cost of the edge in bits: 1 for
// spikes, Bits for quantized levels, 32 for analog float32.
func (d DType) bitWidth() int {
	switch d.Kind {
	case BinarySpike:
		return 1
	case QuantInt:
		return d.Bits
	default:
		return 32
	}
}

// normQuant views a spike edge as the quantized grid it is ({0,1} =
// 2-bit levels at scale 1), so the join rule below needs one case.
func (d DType) normQuant() DType {
	if d.Kind == BinarySpike {
		return DType{Kind: QuantInt, Bits: 2, Scale: 1}
	}
	return d
}

// joinDTypes reconciles the dtypes of two edges that sum elementwise into
// one (the residual-block join). The rule of the lattice:
//
//   - identical dtypes join to themselves (a spike sum is NOT binary —
//     see below — so identical spikes still fall through to the grid rule);
//   - two grid edges with the same scale stay on that grid: the sum of
//     levels is a level, one bit wider (|a+b| ≤ 2·maxLevel);
//   - everything else — any analog operand, or grids with different scales
//     (their sum lands off both grids) — joins to AnalogF32.
//
// This replaces the old compiler's raw save/restore of a boolean, which had
// no rule at all for branches that disagreed.
func joinDTypes(a, b DType) DType {
	if a.Kind == AnalogF32 || b.Kind == AnalogF32 {
		return dtAnalog
	}
	an, bn := a.normQuant(), b.normQuant()
	if an.Scale != bn.Scale {
		return dtAnalog
	}
	bits := an.Bits
	if bn.Bits > bits {
		bits = bn.Bits
	}
	return DType{Kind: QuantInt, Bits: bits + 1, Scale: an.Scale}
}

// bitsForLevel returns the smallest signed width whose level range covers
// ±maxLevel.
func bitsForLevel(maxLevel int64) int {
	bits := 2
	for int64(1)<<(bits-1)-1 < maxLevel {
		bits++
	}
	return bits
}

// isPo2 reports whether n is a positive power of two — the window-size
// condition under which an integer average pool divides exactly (the /n is
// a shift on the po2 grid).
func isPo2(n int) bool { return n > 0 && n&(n-1) == 0 }

// StageDType is one row of an engine's per-stage dtype table: the stage's
// instrument-style name, its input and output edge dtypes, and whether its
// synaptic arithmetic runs in integer. Rows nested inside a residual block
// are name-prefixed with the block's entry ("03_residual/...").
type StageDType struct {
	Name string
	// Kind is the stage kind label ("conv", "qconv", "intavgpool", ...).
	Kind string
	// In/Out are the dtypes of the stage's input and output edges.
	In, Out DType
	// Integer marks stages whose synaptic arithmetic (or requant boundary)
	// runs on integer levels.
	Integer bool

	// slot is the stage's output activation slot (-1 when the stage aliases
	// its input buffer) — the hook ActivationFootprint sizes edges with.
	slot int
}

// StageDTypes returns the engine's per-stage dtype table in pipeline order
// (residual-internal stages follow their block's row). Available on float
// and integer engines alike; on quantized engines the same table is exposed
// as QuantStats.Stages.
func (e *Engine) StageDTypes() []StageDType { return e.stageDT }

// stageInteger reports whether a stage's synaptic arithmetic (or, for the
// activation-requant boundary, its grid projection) runs on integer levels.
func stageInteger(s stage) bool {
	switch s.(type) {
	case *qconvStage, *qlinearStage, *intAvgPoolStage, *aquantStage:
		return true
	default:
		return false
	}
}

// stageOutSlot returns a stage's output activation slot, or -1 when its
// output aliases the input buffer (flatten) or lives in nested stages
// (residual — its internal rows carry the slots).
func stageOutSlot(s stage) int {
	switch st := s.(type) {
	case *convStage:
		return st.slot
	case *qconvStage:
		return st.slot
	case *linearStage:
		return st.slot
	case *qlinearStage:
		return st.slot
	case *affineStage:
		return st.slot
	case *lifStage:
		return st.slot
	case *parLIFStage:
		return st.slot
	case *maxPoolStage:
		return st.slot
	case *avgPoolStage:
		return st.slot
	case *intAvgPoolStage:
		return st.slot
	case *aquantStage:
		return st.slot
	default:
		return -1
	}
}

// ActivationFootprint sizes the engine's inter-stage activation edges from
// the arena of a request it just served (call after InferScratch on sc):
// packedBytes is the dtype-aware storage — 1 bit per binary spike, Bits per
// quantized level, 32 per analog float32, rounded up to bytes per edge —
// and floatBytes is the same buffers at float32 width. Their ratio is the
// activation-memory reduction of an integer pipeline; edges that alias
// their input (flatten) are skipped.
func (e *Engine) ActivationFootprint(sc *Scratch) (packedBytes, floatBytes int64) {
	for _, st := range e.stageDT {
		if st.slot < 0 || st.slot >= len(sc.acts) {
			continue
		}
		elems := int64(len(sc.acts[st.slot].data))
		packedBytes += (elems*int64(st.Out.bitWidth()) + 7) / 8
		floatBytes += 4 * elems
	}
	return packedBytes, floatBytes
}
