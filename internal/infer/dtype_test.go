package infer

import (
	"math"
	"math/rand"
	"testing"
)

func TestJoinDTypes(t *testing.T) {
	q8 := DType{Kind: QuantInt, Bits: 8, Scale: 0.25}
	q6 := DType{Kind: QuantInt, Bits: 6, Scale: 0.25}
	qOther := DType{Kind: QuantInt, Bits: 8, Scale: 0.5}
	cases := []struct {
		name string
		a, b DType
		want DType
	}{
		{"analog wins left", dtAnalog, dtSpike, dtAnalog},
		{"analog wins right", q8, dtAnalog, dtAnalog},
		{"analog both", dtAnalog, dtAnalog, dtAnalog},
		// Two {0,1} spike trains sum to {0,1,2}: one bit wider than the
		// 2-bit level view of a spike, still on the unit grid.
		{"spike+spike widens", dtSpike, dtSpike, DType{Kind: QuantInt, Bits: 3, Scale: 1}},
		{"same grid widens", q8, q6, DType{Kind: QuantInt, Bits: 9, Scale: 0.25}},
		{"grid order symmetric", q6, q8, DType{Kind: QuantInt, Bits: 9, Scale: 0.25}},
		// Different scales: the sum leaves both grids, so the edge is analog.
		{"scale mismatch analog", q8, qOther, dtAnalog},
		{"spike vs coarse grid analog", dtSpike, qOther, dtAnalog},
		{"spike vs unit grid", dtSpike, DType{Kind: QuantInt, Bits: 5, Scale: 1}, DType{Kind: QuantInt, Bits: 6, Scale: 1}},
	}
	for _, c := range cases {
		if got := joinDTypes(c.a, c.b); got != c.want {
			t.Fatalf("%s: joinDTypes(%v, %v) = %v, want %v", c.name, c.a, c.b, got, c.want)
		}
	}
}

func TestJoinDTypesSumRepresentable(t *testing.T) {
	// Property: whenever the join stays on a grid, any sum a+b of values
	// representable on the operand grids is representable on the joined grid.
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 500; trial++ {
		mk := func() DType {
			if rng.Intn(4) == 0 {
				return dtSpike
			}
			return DType{Kind: QuantInt, Bits: 2 + rng.Intn(10), Scale: float32(math.Ldexp(1, rng.Intn(8)-6))}
		}
		a, b := mk(), mk()
		j := joinDTypes(a, b)
		if j.Kind != QuantInt {
			continue
		}
		maxSum := a.maxLevel()*int64(a.gridScale()/j.Scale) + b.maxLevel()*int64(b.gridScale()/j.Scale)
		if maxSum > j.maxLevel() {
			t.Fatalf("join(%v, %v) = %v cannot hold max sum level %d", a, b, j, maxSum)
		}
	}
}

func TestBitsForLevel(t *testing.T) {
	cases := []struct {
		maxLevel int64
		want     int
	}{{1, 2}, {2, 3}, {3, 3}, {4, 4}, {127, 8}, {128, 9}, {508, 10}, {32767, 16}}
	for _, c := range cases {
		if got := bitsForLevel(c.maxLevel); got != c.want {
			t.Fatalf("bitsForLevel(%d) = %d, want %d", c.maxLevel, got, c.want)
		}
	}
}

func TestIsPo2(t *testing.T) {
	for _, n := range []int{1, 2, 4, 16, 1024} {
		if !isPo2(n) {
			t.Fatalf("isPo2(%d) = false", n)
		}
	}
	for _, n := range []int{0, -2, 3, 6, 9, 12} {
		if isPo2(n) {
			t.Fatalf("isPo2(%d) = true", n)
		}
	}
}

// floatAvgPool is the float reference mean over full (unclipped) windows.
func floatAvgPool(in []float32, c, h, w, k, stride int) []float32 {
	oh := (h-k)/stride + 1
	ow := (w-k)/stride + 1
	out := make([]float32, c*oh*ow)
	for p := 0; p < c; p++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				var sum float32
				for ki := 0; ki < k; ki++ {
					for kj := 0; kj < k; kj++ {
						sum += in[p*h*w+(oy*stride+ki)*w+ox*stride+kj]
					}
				}
				out[p*oh*ow+oy*ow+ox] = sum / float32(k*k)
			}
		}
	}
	return out
}

// intAvgPoolRun drives an intAvgPoolStage directly on grid-snapped data.
func intAvgPoolRun(t *testing.T, data []float32, c, h, w, k, stride int, scale float32) []float32 {
	t.Helper()
	s := &intAvgPoolStage{
		k: k, stride: stride,
		invIn:    1 / scale,
		outScale: scale / float32(k*k),
		slot:     0,
	}
	sc := &Scratch{acts: make([]act, 1)}
	in := &act{shape: []int{c, h, w}, data: data}
	out := s.step(sc, in)
	return append([]float32(nil), out.data...)
}

// TestIntAvgPoolExactForPo2Windows is the satellite property test: for
// power-of-two windows (k² po2) the int32-sum-plus-shift pool equals the
// float mean bit for bit on any grid input, at any grid scale.
func TestIntAvgPoolExactForPo2Windows(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for _, tc := range []struct{ k, stride, h, w int }{
		{2, 2, 8, 8}, {2, 2, 6, 10}, {4, 4, 8, 8}, {2, 1, 5, 7}, {4, 2, 10, 10},
	} {
		for _, scale := range []float32{1, 0.125, 0.0078125} {
			c := 3
			data := make([]float32, c*tc.h*tc.w)
			for i := range data {
				// Integer levels in ±200: products and window sums stay far
				// below 2^24, so the float reference is itself exact.
				data[i] = float32(rng.Intn(401)-200) * scale
			}
			got := intAvgPoolRun(t, data, c, tc.h, tc.w, tc.k, tc.stride, scale)
			want := floatAvgPool(data, c, tc.h, tc.w, tc.k, tc.stride)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("k=%d stride=%d scale=%v: element %d integer pool %v != float mean %v (po2 window must be exact)",
						tc.k, tc.stride, scale, i, got[i], want[i])
				}
			}
		}
	}
}

// TestIntAvgPoolBoundedErrorOtherwise: a non-po2 window (k=3, k²=9) cannot
// divide exactly on the grid — the compiler never selects the integer pool
// for it — but the construction's error against the float mean is still
// bounded by float32 rounding of the one division. Driving the stage with a
// synthetic outScale = scale/9 pins that bound.
func TestIntAvgPoolBoundedErrorOtherwise(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	k, stride, c, h, w := 3, 3, 2, 9, 9
	scale := float32(0.25)
	data := make([]float32, c*h*w)
	for i := range data {
		data[i] = float32(rng.Intn(401)-200) * scale
	}
	s := &intAvgPoolStage{k: k, stride: stride, invIn: 1 / scale, outScale: scale / float32(k*k), slot: 0}
	sc := &Scratch{acts: make([]act, 1)}
	out := s.step(sc, &act{shape: []int{c, h, w}, data: data})
	want := floatAvgPool(data, c, h, w, k, stride)
	for i := range want {
		diff := math.Abs(float64(out.data[i] - want[i]))
		// One float32 rounding of sum·(scale/9) vs (sum·scale)/9: relative
		// error ≤ 2 ulps ≈ 2.4e-7 of the magnitude.
		if tol := 2.4e-7*math.Abs(float64(want[i])) + 1e-12; diff > tol {
			t.Fatalf("k=3 element %d: integer pool %v vs float mean %v, diff %v exceeds rounding bound %v",
				i, out.data[i], want[i], diff, tol)
		}
	}
}

func TestIntAvgPoolPanicsOffGrid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("integer avg pool accepted an off-grid element")
		}
	}()
	s := &intAvgPoolStage{k: 2, stride: 2, invIn: 1, outScale: 0.25, slot: 0}
	sc := &Scratch{acts: make([]act, 1)}
	s.step(sc, &act{shape: []int{1, 2, 2}, data: []float32{1, 0.5, 0, 1}})
}
