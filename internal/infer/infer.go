// Package infer implements an event-driven sparse inference engine — the
// execution model the paper's efficiency claims target (Loihi-class
// neuromorphic hardware and SyncNN-style FPGA designs).
//
// A trained spiking network is compiled into a pipeline where:
//
//   - batch-norm layers are folded into per-channel affine transforms of
//     the preceding convolution/linear accumulator (a standard deployment
//     rewrite, exact in eval mode);
//   - convolutions and linear layers store only active (masked-in, nonzero)
//     synapses, indexed by presynaptic position, and process *events*: the
//     nonzero activations of the previous stage. Work is therefore
//     proportional to (spike rate × density), the quantity the paper's
//     Sec. IV-C cost model estimates analytically — the engine measures it
//     directly as accumulated synaptic operations (SynOps);
//   - LIF neurons keep per-timestep membrane state exactly as in training.
//
// The engine processes one sample at a time (inference semantics) and is
// verified elementwise against the training path's eval-mode forward.
package infer

import (
	"fmt"

	"ndsnn/internal/layers"
	"ndsnn/internal/snn"
	"ndsnn/internal/tensor"
)

// Event is one nonzero activation: flat index plus value (graded spikes
// generalize binary events and make average pooling composable).
type Event struct {
	Idx int32
	Val float32
}

// act is the activation flowing between stages: a dense buffer plus its
// event list (the nonzero entries).
type act struct {
	shape  []int // [C,H,W] or [D]
	data   []float32
	events []Event
}

func newAct(shape []int) *act {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return &act{shape: shape, data: make([]float32, n)}
}

// refreshEvents rebuilds the event list from the dense buffer.
func (a *act) refreshEvents() {
	a.events = a.events[:0]
	for i, v := range a.data {
		if v != 0 {
			a.events = append(a.events, Event{int32(i), v})
		}
	}
}

// stage is one compiled pipeline element, advanced one timestep at a time.
type stage interface {
	step(in *act) *act
	reset()
}

// Engine is a compiled event-driven inference pipeline.
type Engine struct {
	stages  []stage
	T       int
	classes int
	synOps  int64
}

// SynOps returns the synaptic operations accumulated since the last
// ResetStats: one op per (event × active synapse) accumulate.
func (e *Engine) SynOps() int64 { return e.synOps }

// ResetStats zeroes the SynOps counter.
func (e *Engine) ResetStats() { e.synOps = 0 }

// DenseMACsPerTimestep returns the MAC count a dense, non-event
// implementation would spend per timestep on one sample — the denominator
// of the measured efficiency ratio.
func (e *Engine) DenseMACsPerTimestep() int64 {
	var total int64
	for _, s := range e.stages {
		if d, ok := s.(interface{ denseMACs() int64 }); ok {
			total += d.denseMACs()
		}
	}
	return total
}

// Compile builds an engine from a trained network. The network is read, not
// modified; BN running statistics must reflect training (i.e. compile after
// training, as with any deployment export).
func Compile(net *snn.Network) (*Engine, error) {
	e := &Engine{T: net.T}
	stages, err := compileLayers(net.Layers, &e.synOps)
	if err != nil {
		return nil, err
	}
	e.stages = stages
	return e, nil
}

func compileLayers(ls []layers.Layer, ops *int64) ([]stage, error) {
	var out []stage
	for i := 0; i < len(ls); i++ {
		switch l := ls[i].(type) {
		case *layers.Conv2d:
			var bn *layers.BatchNorm
			if i+1 < len(ls) {
				if b, ok := ls[i+1].(*layers.BatchNorm); ok {
					bn = b
					i++
				}
			}
			out = append(out, newConvStage(l, bn, ops))
		case *layers.Linear:
			var bn *layers.BatchNorm
			if i+1 < len(ls) {
				if b, ok := ls[i+1].(*layers.BatchNorm); ok {
					bn = b
					i++
				}
			}
			out = append(out, newLinearStage(l, bn, ops))
		case *layers.BatchNorm:
			out = append(out, newAffineStage(l))
		case *snn.LIF:
			out = append(out, &lifStage{cfg: l.Config})
		case *layers.MaxPool2d:
			out = append(out, &maxPoolStage{k: l.K, stride: l.Stride})
		case *layers.AvgPool2d:
			out = append(out, &avgPoolStage{k: l.K, stride: l.Stride})
		case *layers.Flatten:
			out = append(out, &flattenStage{})
		case *layers.Dropout:
			// Identity at inference.
		case *snn.ResidualBlock:
			rs, err := compileResidual(l, ops)
			if err != nil {
				return nil, err
			}
			out = append(out, rs)
		default:
			return nil, fmt.Errorf("infer: cannot compile layer of type %T", l)
		}
	}
	return out, nil
}

func compileResidual(b *snn.ResidualBlock, ops *int64) (stage, error) {
	main, err := compileLayers([]layers.Layer{b.Conv1, b.BN1, b.LIF1, b.Conv2, b.BN2}, ops)
	if err != nil {
		return nil, err
	}
	var shortcut []stage
	if b.SCConv != nil {
		shortcut, err = compileLayers([]layers.Layer{b.SCConv, b.SCBN}, ops)
		if err != nil {
			return nil, err
		}
	}
	return &residualStage{main: main, shortcut: shortcut, out: &lifStage{cfg: b.LIF2.Config}}, nil
}

// Reset clears all temporal state (between samples).
func (e *Engine) Reset() {
	for _, s := range e.stages {
		s.reset()
	}
}

// Infer runs one sample (shape [C,H,W], direct encoding) through T
// timesteps and returns the time-averaged output of the final stage.
func (e *Engine) Infer(sample *tensor.Tensor) []float32 {
	e.Reset()
	in := &act{shape: sample.Shape(), data: sample.Data}
	var avg []float32
	for t := 0; t < e.T; t++ {
		in.refreshEvents()
		cur := in
		for _, s := range e.stages {
			cur = s.step(cur)
		}
		if avg == nil {
			avg = make([]float32, len(cur.data))
		}
		for i, v := range cur.data {
			avg[i] += v
		}
	}
	inv := 1 / float32(e.T)
	for i := range avg {
		avg[i] *= inv
	}
	return avg
}

// Classify returns the argmax class for one sample.
func (e *Engine) Classify(sample *tensor.Tensor) int {
	scores := e.Infer(sample)
	best, bestIdx := scores[0], 0
	for i, v := range scores[1:] {
		if v > best {
			best = v
			bestIdx = i + 1
		}
	}
	return bestIdx
}
