// Package infer implements an event-driven sparse inference engine — the
// execution model the paper's efficiency claims target (Loihi-class
// neuromorphic hardware and SyncNN-style FPGA designs).
//
// A trained spiking network is compiled into a pipeline where:
//
//   - batch-norm layers are folded into per-channel affine transforms of
//     the preceding convolution/linear accumulator (a standard deployment
//     rewrite, exact in eval mode);
//   - convolutions and linear layers store only active (masked-in, nonzero)
//     synapses, indexed by presynaptic position, and process *events*: the
//     nonzero activations of the previous stage. Work is therefore
//     proportional to (spike rate × density), the quantity the paper's
//     Sec. IV-C cost model estimates analytically — the engine measures it
//     directly as accumulated synaptic operations (SynOps);
//   - LIF neurons keep per-timestep membrane state exactly as in training.
//
// The engine processes one sample at a time (inference semantics) and is
// verified elementwise against the training path's eval-mode forward.
package infer

import (
	"fmt"

	"ndsnn/internal/layers"
	"ndsnn/internal/snn"
	"ndsnn/internal/tensor"
)

// Event is one nonzero activation: flat index plus value (graded spikes
// generalize binary events and make average pooling composable).
type Event struct {
	Idx int32
	Val float32
}

// act is the activation flowing between stages: a dense buffer plus its
// event list (the nonzero entries).
type act struct {
	shape  []int // [C,H,W] or [D]
	data   []float32
	events []Event
}

func newAct(shape []int) *act {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return &act{shape: shape, data: make([]float32, n)}
}

// refreshEvents rebuilds the event list from the dense buffer.
func (a *act) refreshEvents() {
	a.events = a.events[:0]
	for i, v := range a.data {
		if v != 0 {
			a.events = append(a.events, Event{int32(i), v})
		}
	}
}

// stage is one compiled pipeline element, advanced one timestep at a time.
type stage interface {
	step(in *act) *act
	reset()
}

// Engine is a compiled event-driven inference pipeline.
type Engine struct {
	stages  []stage
	T       int
	classes int
	synOps  int64
	quant   *QuantStats
	// qweights records, per integer stage, the trained parameter and the
	// QCSR it was quantized to — the mapping QuantizeNetWeights uses to
	// materialize the dequantized float reference.
	qweights []quantizedWeight
}

// QuantStats summarizes the integer engine's storage: how many compute
// stages run in integer, the stored synapse census, and the value-storage
// bytes of the packed representation versus the float32 engine. Nil on
// float engines.
type QuantStats struct {
	// Bits is the requested weight precision.
	Bits int
	// QuantizedStages counts conv/linear stages computing in integer;
	// ComputeStages counts all conv/linear stages (the difference runs in
	// float32 — analog-input stages such as the direct-encoding first conv).
	QuantizedStages, ComputeStages int
	// StoredSynapses counts synapses stored by quantized stages;
	// ZeroQuantized of them rounded to level zero and are skipped by the
	// integer kernels (the measured SynOps reduction of quantization).
	StoredSynapses, ZeroQuantized int64
	// PackedValueBytes is the quantized value storage of the quantized
	// stages (two synapses per byte at 4 bits); FloatValueBytes is what the
	// float32 engine stores for the same synapses (4 bytes each). Index and
	// scale storage is identical between the two engines and excluded.
	PackedValueBytes, FloatValueBytes int64
}

// QuantStats returns the integer-storage summary, or nil for a float
// engine.
func (e *Engine) QuantStats() *QuantStats { return e.quant }

// SynOps returns the synaptic operations accumulated since the last
// ResetStats: one op per (event × active synapse) accumulate.
func (e *Engine) SynOps() int64 { return e.synOps }

// ResetStats zeroes the SynOps counter.
func (e *Engine) ResetStats() { e.synOps = 0 }

// DenseMACsPerTimestep returns the MAC count a dense, non-event
// implementation would spend per timestep on one sample — the denominator
// of the measured efficiency ratio.
func (e *Engine) DenseMACsPerTimestep() int64 {
	var total int64
	for _, s := range e.stages {
		if d, ok := s.(interface{ denseMACs() int64 }); ok {
			total += d.denseMACs()
		}
	}
	return total
}

// Compile builds an engine from a trained network. The network is read, not
// modified; BN running statistics must reflect training (i.e. compile after
// training, as with any deployment export).
func Compile(net *snn.Network) (*Engine, error) {
	e := &Engine{T: net.T}
	c := &compiler{eng: e}
	stages, err := c.compile(net.Layers)
	if err != nil {
		return nil, err
	}
	e.stages = stages
	return e, nil
}

// CompileQuantized builds the integer engine: conv/linear stages whose
// inputs are spike trains store QCSR-quantized weights (per-output-channel
// power-of-two scales, int8 levels, packed two-per-byte at 4 bits) and
// accumulate events in int32 — the accumulator only returns to float at the
// stage boundary, where the dequantization scale and the folded BN affine
// apply before the next LIF threshold compare. Stages fed analog activations
// (the direct-encoding first conv, anything after average pooling) stay in
// float32, the standard mixed-precision deployment split; QuantStats reports
// the resulting coverage. bits spans the Sec. III-D platform range, 2–16.
func CompileQuantized(net *snn.Network, bits int) (*Engine, error) {
	if bits < 2 || bits > 16 {
		return nil, fmt.Errorf("infer: unsupported bit width %d (want 2..16)", bits)
	}
	e := &Engine{T: net.T, quant: &QuantStats{Bits: bits}}
	c := &compiler{eng: e, bits: bits}
	stages, err := c.compile(net.Layers)
	if err != nil {
		return nil, err
	}
	e.stages = stages
	return e, nil
}

// compiler walks the layer list turning layers into stages. It tracks
// whether the activation flowing into the next stage is a binary spike
// train — the precondition for integer event accumulation: LIF outputs are
// {0,1}, max pooling and reshapes preserve binaryness, while the network
// input (direct encoding), average pooling and standalone BN affines are
// analog. With bits set, conv/linear stages compile to integer exactly when
// their input is binary.
type compiler struct {
	eng    *Engine
	bits   int  // 0 compiles the float32 engine
	binary bool // is the current activation a {0,1} spike train?
}

func (c *compiler) compile(ls []layers.Layer) ([]stage, error) {
	ops := &c.eng.synOps
	var out []stage
	for i := 0; i < len(ls); i++ {
		switch l := ls[i].(type) {
		case *layers.Conv2d:
			var bn *layers.BatchNorm
			if i+1 < len(ls) {
				if b, ok := ls[i+1].(*layers.BatchNorm); ok {
					bn = b
					i++
				}
			}
			if c.quantizing() {
				s, err := newQConvStage(l, bn, c.bits, ops, c.eng)
				if err != nil {
					return nil, err
				}
				out = append(out, s)
			} else {
				out = append(out, newConvStage(l, bn, ops))
			}
			c.countComputeStage()
			c.binary = false
		case *layers.Linear:
			var bn *layers.BatchNorm
			if i+1 < len(ls) {
				if b, ok := ls[i+1].(*layers.BatchNorm); ok {
					bn = b
					i++
				}
			}
			if c.quantizing() {
				s, err := newQLinearStage(l, bn, c.bits, ops, c.eng)
				if err != nil {
					return nil, err
				}
				out = append(out, s)
			} else {
				out = append(out, newLinearStage(l, bn, ops))
			}
			c.countComputeStage()
			c.binary = false
		case *layers.BatchNorm:
			out = append(out, newAffineStage(l))
			c.binary = false
		case *snn.LIF:
			out = append(out, &lifStage{cfg: l.Config})
			c.binary = true
		case *layers.MaxPool2d:
			// Max pooling of {0,1} spikes stays {0,1}.
			out = append(out, &maxPoolStage{k: l.K, stride: l.Stride})
		case *layers.AvgPool2d:
			out = append(out, &avgPoolStage{k: l.K, stride: l.Stride})
			c.binary = false
		case *layers.Flatten:
			out = append(out, &flattenStage{})
		case *layers.Dropout:
			// Identity at inference.
		case *snn.ResidualBlock:
			rs, err := c.compileResidual(l)
			if err != nil {
				return nil, err
			}
			out = append(out, rs)
		default:
			return nil, fmt.Errorf("infer: cannot compile layer of type %T", l)
		}
	}
	return out, nil
}

func (c *compiler) quantizing() bool { return c.bits > 0 && c.binary }

func (c *compiler) countComputeStage() {
	if c.eng.quant != nil {
		c.eng.quant.ComputeStages++
	}
}

func (c *compiler) compileResidual(b *snn.ResidualBlock) (stage, error) {
	// Both paths see the block's input, so the shortcut restarts from the
	// main path's entry binaryness; the block's output LIF re-binarizes.
	binaryIn := c.binary
	main, err := c.compile([]layers.Layer{b.Conv1, b.BN1, b.LIF1, b.Conv2, b.BN2})
	if err != nil {
		return nil, err
	}
	var shortcut []stage
	if b.SCConv != nil {
		c.binary = binaryIn
		shortcut, err = c.compile([]layers.Layer{b.SCConv, b.SCBN})
		if err != nil {
			return nil, err
		}
	}
	c.binary = true
	return &residualStage{main: main, shortcut: shortcut, out: &lifStage{cfg: b.LIF2.Config}}, nil
}

// Reset clears all temporal state (between samples).
func (e *Engine) Reset() {
	for _, s := range e.stages {
		s.reset()
	}
}

// Infer runs one sample (shape [C,H,W], direct encoding) through T
// timesteps and returns the time-averaged output of the final stage.
func (e *Engine) Infer(sample *tensor.Tensor) []float32 {
	e.Reset()
	in := &act{shape: sample.Shape(), data: sample.Data}
	var avg []float32
	for t := 0; t < e.T; t++ {
		in.refreshEvents()
		cur := in
		for _, s := range e.stages {
			cur = s.step(cur)
		}
		if avg == nil {
			avg = make([]float32, len(cur.data))
		}
		for i, v := range cur.data {
			avg[i] += v
		}
	}
	inv := 1 / float32(e.T)
	for i := range avg {
		avg[i] *= inv
	}
	return avg
}

// Classify returns the argmax class for one sample.
func (e *Engine) Classify(sample *tensor.Tensor) int {
	scores := e.Infer(sample)
	best, bestIdx := scores[0], 0
	for i, v := range scores[1:] {
		if v > best {
			best = v
			bestIdx = i + 1
		}
	}
	return bestIdx
}
