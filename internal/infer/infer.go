// Package infer implements an event-driven sparse inference engine — the
// execution model the paper's efficiency claims target (Loihi-class
// neuromorphic hardware and SyncNN-style FPGA designs).
//
// A trained spiking network is compiled into a pipeline where:
//
//   - batch-norm layers are folded into per-channel affine transforms of
//     the preceding convolution/linear accumulator (a standard deployment
//     rewrite, exact in eval mode);
//   - convolutions and linear layers store only active (masked-in, nonzero)
//     synapses, indexed by presynaptic position, and process *events*: the
//     nonzero activations of the previous stage. Work is therefore
//     proportional to (spike rate × density), the quantity the paper's
//     Sec. IV-C cost model estimates analytically — the engine measures it
//     directly as accumulated synaptic operations (SynOps);
//   - LIF neurons keep per-timestep membrane state exactly as in training.
//
// A compiled Engine is an immutable plan and safe for concurrent use: all
// per-request mutable state (activation buffers, event lists, membrane
// state, integer accumulators, the SynOps tally) lives in pooled Scratch
// arenas — see scratch.go — so any number of goroutines may call Infer,
// InferBatch or Classify on one engine simultaneously, each producing
// exactly the serial single-caller result. The engine processes one sample
// per request (inference semantics) and is verified elementwise against the
// training path's eval-mode forward.
package infer

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"ndsnn/internal/fault"
	"ndsnn/internal/layers"
	"ndsnn/internal/quant"
	"ndsnn/internal/snn"
	"ndsnn/internal/tensor"
)

// faultPass fires once per inference timestep — the injected analogue of an
// engine bug mid-pass (panic) or a stalled stage (delay). A panic here
// abandons the pass's scratch arenas: release only runs after a pass
// completes normally, so nothing possibly-poisoned returns to the pool. The
// serving layer's chaos harness arms this site to prove batch isolation.
var faultPass = fault.New("infer.pass", fault.CanPanic|fault.CanDelay)

// Event is one nonzero activation: flat index plus value (graded spikes
// generalize binary events and make average pooling composable).
type Event struct {
	Idx int32
	Val float32
}

// act is the activation flowing between stages: a dense buffer plus its
// event list (the nonzero entries). Every act lives in a Scratch slot, so
// its buffer and event-list capacity are recycled across requests.
type act struct {
	shape  []int // [C,H,W] or [D]
	data   []float32
	events []Event
}

// refreshEvents rebuilds the event list from the dense buffer, reusing the
// list's capacity.
func (a *act) refreshEvents() {
	a.events = a.events[:0]
	for i, v := range a.data {
		if v != 0 {
			a.events = append(a.events, Event{int32(i), v})
		}
	}
}

// stage is one compiled pipeline element, advanced one timestep at a time.
// A stage is immutable after compile: all mutable state lives in the
// Scratch slots the compiler assigned to it.
type stage interface {
	step(sc *Scratch, in *act) *act
}

// Engine is a compiled event-driven inference pipeline — the immutable,
// shareable plan. Concurrent callers are served from pooled Scratch arenas;
// the only engine-level mutable state is the atomic SynOps roll-up.
type Engine struct {
	stages  []stage
	T       int
	classes int
	synOps  atomic.Int64
	quant   *QuantStats
	// qweights records, per integer stage, the trained parameter and the
	// QCSR it was quantized to — the mapping QuantizeNetWeights uses to
	// materialize the dequantized float reference.
	qweights []quantizedWeight
	// stageDT is the per-stage dtype table built by the compiler walker
	// (see dtype.go); inputGrid is the activation grid of the input requant
	// boundary, zero unless the engine was compiled with ActivationBits.
	stageDT   []StageDType
	inputGrid quant.ActGrid

	// Scratch-arena slot layout, fixed at compile time.
	nAct, nLIF, nInt, nOps int
	pool                   sync.Pool

	// tel is the optional telemetry state (see telemetry.go). Nil — the
	// default — keeps every hot-path hook a single branch.
	tel *Telemetry
}

// QuantStats summarizes the integer engine's storage: how many compute
// stages run in integer, the stored synapse census, and the value-storage
// bytes of the packed representation versus the float32 engine. Nil on
// float engines.
type QuantStats struct {
	// Bits is the requested weight precision.
	Bits int
	// ActivationBits is the requested activation precision (0: activations
	// stay analog/binary — the mixed engine); FullInteger records that the
	// compile demanded, and verified, zero analog compute stages.
	ActivationBits int
	FullInteger    bool
	// QuantizedStages counts conv/linear stages computing in integer;
	// ComputeStages counts all conv/linear stages (the difference runs in
	// float32 — analog-input stages such as the direct-encoding first conv).
	QuantizedStages, ComputeStages int
	// AnalogStages counts compute stages whose synaptic arithmetic runs in
	// float32: unquantized conv/linear stages, float average pools, and
	// standalone BN affines. Zero is the checkable "fully integer" claim —
	// every remaining float op is an O(neurons) epilogue (requant affine,
	// LIF threshold) operating on exact grid values.
	AnalogStages int
	// Stages is the per-stage dtype table (also via Engine.StageDTypes).
	Stages []StageDType
	// StoredSynapses counts synapses stored by quantized stages;
	// ZeroQuantized of them rounded to level zero and are skipped by the
	// integer kernels (the measured SynOps reduction of quantization).
	StoredSynapses, ZeroQuantized int64
	// PackedValueBytes is the quantized value storage of the quantized
	// stages (two synapses per byte at 4 bits); FloatValueBytes is what the
	// float32 engine stores for the same synapses (4 bytes each). Index and
	// scale storage is identical between the two engines and excluded.
	PackedValueBytes, FloatValueBytes int64
}

// QuantStats returns the integer-storage summary, or nil for a float
// engine.
func (e *Engine) QuantStats() *QuantStats { return e.quant }

// SynOps returns the synaptic operations accumulated since the last
// ResetStats: one op per (event × active synapse) accumulate. Requests
// accumulate into their Scratch arena and roll up here atomically when they
// finish, so concurrent callers never race on the counter.
func (e *Engine) SynOps() int64 { return e.synOps.Load() }

// ResetStats zeroes the SynOps counter.
func (e *Engine) ResetStats() { e.synOps.Store(0) }

// DenseMACsPerTimestep returns the MAC count a dense, non-event
// implementation would spend per timestep on one sample — the denominator
// of the measured efficiency ratio.
func (e *Engine) DenseMACsPerTimestep() int64 {
	var total int64
	for _, s := range e.stages {
		if d, ok := s.(interface{ denseMACs() int64 }); ok {
			total += d.denseMACs()
		}
	}
	return total
}

// Compile builds an engine from a trained network. The network is read, not
// modified; BN running statistics must reflect training (i.e. compile after
// training, as with any deployment export).
func Compile(net *snn.Network) (*Engine, error) {
	e := &Engine{T: net.T}
	c := &compiler{eng: e, dt: dtAnalog}
	stages, err := c.compile(net.Layers)
	if err != nil {
		return nil, err
	}
	e.finish(stages, c)
	return e, nil
}

// QuantConfig selects the integer engine's precisions.
type QuantConfig struct {
	// WeightBits is the QCSR weight precision, 2–16 (the Sec. III-D
	// platform range).
	WeightBits int
	// ActivationBits, when nonzero (2–16), quantizes activations too: the
	// network input is snapped onto a power-of-two ActGrid by an explicit
	// requant boundary stage, grid-fed conv/linear stages accumulate graded
	// integer levels, and power-of-two average-pool windows run as int32
	// sum + shift — the fully-integer pipeline. 0 keeps the mixed engine:
	// only binary-spike-fed stages compute in integer.
	ActivationBits int
	// FullInteger makes "fully integer" a compile-time guarantee: the
	// compile fails, naming the offending stages, if any compute stage
	// still runs float synaptic arithmetic. Implies ActivationBits=8 when
	// ActivationBits is unset.
	FullInteger bool
	// InputMaxAbs is the input activation range the ActGrid covers.
	// 0 defaults to 1 — the direct-encoding pixel range.
	InputMaxAbs float32
}

func (cfg QuantConfig) withDefaults() QuantConfig {
	if cfg.FullInteger && cfg.ActivationBits == 0 {
		cfg.ActivationBits = 8
	}
	if cfg.InputMaxAbs == 0 {
		cfg.InputMaxAbs = 1
	}
	return cfg
}

// CompileQuantized builds the mixed integer engine: conv/linear stages whose
// inputs are spike trains store QCSR-quantized weights (per-output-channel
// power-of-two scales, int8 levels, packed two-per-byte at 4 bits) and
// accumulate events in int32 — the accumulator only returns to float at the
// stage boundary, where the dequantization scale and the folded BN affine
// apply before the next LIF threshold compare. Stages fed analog activations
// (the direct-encoding first conv, anything after average pooling) stay in
// float32, the standard mixed-precision deployment split; QuantStats reports
// the resulting coverage. bits spans the Sec. III-D platform range, 2–16.
// For integer activations too, see CompileQuantizedConfig.
func CompileQuantized(net *snn.Network, bits int) (*Engine, error) {
	return CompileQuantizedConfig(net, QuantConfig{WeightBits: bits})
}

// CompileQuantizedConfig builds the integer engine described by cfg. With
// ActivationBits set, the compiler walker propagates the typed activation
// IR (dtype.go) through the pipeline: an input requant boundary snaps the
// sample onto a po2 activation grid, conv/linear stages fed grid values
// accumulate level×level products in int32, power-of-two average-pool
// windows sum levels in int32 and rescale by a shift, and QuantStats
// reports the per-stage dtype table plus the remaining analog compute
// stages (zero on a fully-integer pipeline). Because every grid scale is a
// power of two, the engine stays bit-identical to the float engine running
// on the dequantized weights (grid-snapped inputs, ≤8-bit weights) — the
// PR 4 equivalence pin extended to the fully-integer path.
func CompileQuantizedConfig(net *snn.Network, cfg QuantConfig) (*Engine, error) {
	cfg = cfg.withDefaults()
	if cfg.WeightBits < 2 || cfg.WeightBits > 16 {
		return nil, fmt.Errorf("infer: unsupported bit width %d (want 2..16)", cfg.WeightBits)
	}
	e := &Engine{T: net.T, quant: &QuantStats{
		Bits: cfg.WeightBits, ActivationBits: cfg.ActivationBits, FullInteger: cfg.FullInteger,
	}}
	c := &compiler{eng: e, cfg: cfg, dt: dtAnalog}
	var stages []stage
	if cfg.ActivationBits > 0 {
		g, err := quant.NewActGrid(cfg.InputMaxAbs, cfg.ActivationBits)
		if err != nil {
			return nil, err
		}
		e.inputGrid = g
		aq := &aquantStage{grid: g, slot: c.actSlot()}
		stages = append(stages, aq)
		din := c.dt
		c.dt = DType{Kind: QuantInt, Bits: cfg.ActivationBits, Scale: g.Scale}
		c.record(aq, din, c.dt)
	}
	rest, err := c.compile(net.Layers)
	if err != nil {
		return nil, err
	}
	stages = append(stages, rest...)
	e.finish(stages, c)
	if cfg.FullInteger {
		if names := e.analogStageNames(); len(names) > 0 {
			return nil, fmt.Errorf("infer: FullInteger requested but %d stage(s) still run float synaptic arithmetic: %s",
				len(names), strings.Join(names, ", "))
		}
	}
	return e, nil
}

// InputGrid returns the activation grid of the engine's input requant
// boundary; ok is false when the engine was compiled without
// ActivationBits. Samples already on this grid pass the boundary unchanged,
// which is what the full-integer equivalence pins snap their inputs with.
func (e *Engine) InputGrid() (g quant.ActGrid, ok bool) {
	return e.inputGrid, e.inputGrid.Bits != 0
}

// analogStageNames lists the compute stages still running float synaptic
// arithmetic — the FullInteger compile check and its error detail.
func (e *Engine) analogStageNames() []string {
	var names []string
	for _, st := range e.stageDT {
		switch st.Kind {
		case "conv", "linear", "avgpool", "affine":
			if !st.Integer {
				names = append(names, st.Name)
			}
		}
	}
	return names
}

// finish freezes the compiled plan: stages, the arena slot layout, and the
// scratch pool serving Infer/InferBatch.
func (e *Engine) finish(stages []stage, c *compiler) {
	e.stages = stages
	e.nAct, e.nLIF, e.nInt, e.nOps = c.nAct, c.nLIF, c.nInt, c.nOps
	if e.quant != nil {
		e.quant.Stages = e.stageDT
	}
	e.pool.New = func() any { return e.NewScratch() }
}

// acquire draws a pooled arena; release returns it for reuse. With
// telemetry enabled, acquire classifies the draw as a pool hit (recycled
// arena: its buffers are warm) or miss (freshly allocated by pool.New).
func (e *Engine) acquire() *Scratch {
	sc := e.pool.Get().(*Scratch)
	if t := e.tel; t != nil {
		if sc.fresh {
			t.poolMiss.Inc()
		} else {
			t.poolHit.Inc()
		}
	}
	sc.fresh = false
	return sc
}
func (e *Engine) release(sc *Scratch) { e.pool.Put(sc) }

// compiler walks the layer list turning layers into stages, and assigns
// every stage its Scratch slots (activation buffer, membrane state, integer
// accumulators, band tallies) — the arena layout shared by all requests. It
// also propagates the typed activation IR (dtype.go): dt is the dtype of
// the edge flowing into the next stage — LIF outputs are BinarySpike, max
// pooling and reshapes preserve their input dtype, conv/linear requant
// affines and float average pooling produce AnalogF32, the input requant
// boundary and the integer average pool produce QuantInt grids, and the
// residual join reconciles its branches with joinDTypes. With WeightBits
// set, conv/linear stages compile to integer exactly when their input edge
// is on a grid (BinarySpike, or QuantInt when ActivationBits is set).
type compiler struct {
	eng *Engine
	cfg QuantConfig // zero value compiles the float32 engine
	dt  DType       // dtype of the edge flowing into the next stage

	// Dtype-table naming state: prefix/seq build instrument-style row names
	// ("02_lif", "03_residual/00_qconv", ...).
	prefix string
	seq    int

	// Arena slot counters — the layout under assignment.
	nAct, nLIF, nInt, nOps int
}

// record appends stage s's row to the engine's dtype table.
func (c *compiler) record(s stage, in, out DType) {
	c.recordKind(stageKind(s), in, out, stageInteger(s), stageOutSlot(s))
}

// recordKind appends a dtype-table row for a pseudo-stage (the residual
// join) or with explicit attributes.
func (c *compiler) recordKind(kind string, in, out DType, integer bool, slot int) {
	name := fmt.Sprintf("%s%02d_%s", c.prefix, c.seq, kind)
	c.seq++
	c.eng.stageDT = append(c.eng.stageDT, StageDType{
		Name: name, Kind: kind, In: in, Out: out, Integer: integer, slot: slot,
	})
}

func (c *compiler) actSlot() int { s := c.nAct; c.nAct++; return s }
func (c *compiler) lifSlot() int { s := c.nLIF; c.nLIF++; return s }
func (c *compiler) intSlot() int { s := c.nInt; c.nInt++; return s }
func (c *compiler) opsSlot() int { s := c.nOps; c.nOps++; return s }

// newLIFStage builds a LIF stage with its activation and membrane slots.
func (c *compiler) newLIFStage(cfg snn.NeuronConfig) *lifStage {
	return &lifStage{cfg: cfg, slot: c.actSlot(), stateSlot: c.lifSlot()}
}

// neuronStage compiles a spiking layer (LIF or ParLIF) into its stage.
func (c *compiler) neuronStage(l layers.Layer) (stage, error) {
	switch nl := l.(type) {
	case *snn.LIF:
		return c.newLIFStage(nl.Config), nil
	case *snn.ParLIF:
		return &parLIFStage{
			cfg: nl.Config, soft: nl.ResetMode == snn.ParResetSoft,
			slot: c.actSlot(), stateSlot: c.lifSlot(),
		}, nil
	default:
		return nil, fmt.Errorf("infer: cannot compile neuron of type %T", l)
	}
}

func (c *compiler) compile(ls []layers.Layer) ([]stage, error) {
	var out []stage
	for i := 0; i < len(ls); i++ {
		switch l := ls[i].(type) {
		case *layers.Conv2d:
			var bn *layers.BatchNorm
			if i+1 < len(ls) {
				if b, ok := ls[i+1].(*layers.BatchNorm); ok {
					bn = b
					i++
				}
			}
			din := c.dt
			var s stage
			if c.quantizing() {
				qs, err := newQConvStage(l, bn, c)
				if err != nil {
					return nil, err
				}
				s = qs
			} else {
				s = newConvStage(l, bn, c)
			}
			out = append(out, s)
			c.countComputeStage(c.quantizing())
			c.dt = dtAnalog
			c.record(s, din, c.dt)
		case *layers.Linear:
			var bn *layers.BatchNorm
			if i+1 < len(ls) {
				if b, ok := ls[i+1].(*layers.BatchNorm); ok {
					bn = b
					i++
				}
			}
			din := c.dt
			var s stage
			if c.quantizing() {
				qs, err := newQLinearStage(l, bn, c)
				if err != nil {
					return nil, err
				}
				s = qs
			} else {
				s = newLinearStage(l, bn, c)
			}
			out = append(out, s)
			c.countComputeStage(c.quantizing())
			c.dt = dtAnalog
			c.record(s, din, c.dt)
		case *layers.BatchNorm:
			din := c.dt
			s := newAffineStage(l, c)
			out = append(out, s)
			c.countAnalogStage()
			c.dt = dtAnalog
			c.record(s, din, c.dt)
		case *snn.LIF:
			din := c.dt
			s := c.newLIFStage(l.Config)
			out = append(out, s)
			c.dt = dtSpike
			c.record(s, din, c.dt)
		case *snn.ParLIF:
			s, err := c.neuronStage(l)
			if err != nil {
				return nil, err
			}
			din := c.dt
			out = append(out, s)
			c.dt = dtSpike
			c.record(s, din, c.dt)
		case *layers.MaxPool2d:
			// Max of values on a grid is a grid value: dtype preserved.
			s := &maxPoolStage{k: l.K, stride: l.Stride, slot: c.actSlot()}
			out = append(out, s)
			c.record(s, c.dt, c.dt)
		case *layers.AvgPool2d:
			din := c.dt
			var s stage
			if c.cfg.ActivationBits > 0 && din.onGrid() && isPo2(l.K*l.K) {
				// Grid-fed power-of-two window: int32 sum + po2 shift, no
				// float round-trip; the output stays on a grid.
				s = newIntAvgPoolStage(l, din, c)
			} else {
				s = &avgPoolStage{k: l.K, stride: l.Stride, slot: c.actSlot()}
				c.countAnalogStage()
				c.dt = dtAnalog
			}
			out = append(out, s)
			c.record(s, din, c.dt)
		case *layers.Flatten:
			s := &flattenStage{slot: c.actSlot()}
			out = append(out, s)
			c.record(s, c.dt, c.dt)
		case *layers.Dropout:
			// Identity at inference.
		case *snn.ResidualBlock:
			din := c.dt
			// Reserve the block's row so it precedes its internal rows.
			idx := len(c.eng.stageDT)
			c.eng.stageDT = append(c.eng.stageDT, StageDType{})
			rs, err := c.compileResidual(l)
			if err != nil {
				return nil, err
			}
			out = append(out, rs)
			c.eng.stageDT[idx] = StageDType{
				Name: fmt.Sprintf("%s%02d_residual", c.prefix, c.seq),
				Kind: "residual", In: din, Out: c.dt, slot: -1,
			}
			c.seq++
		default:
			return nil, fmt.Errorf("infer: cannot compile layer of type %T", l)
		}
	}
	return out, nil
}

// quantizing reports whether the next conv/linear stage compiles to
// integer: weights are being quantized and the incoming edge carries exact
// integer levels (binary spikes, or a QuantInt grid).
func (c *compiler) quantizing() bool { return c.cfg.WeightBits > 0 && c.dt.onGrid() }

func (c *compiler) countComputeStage(quantized bool) {
	if q := c.eng.quant; q != nil {
		q.ComputeStages++
		if !quantized {
			q.AnalogStages++
		}
	}
}

// countAnalogStage tallies a non-conv/linear stage that performs float
// arithmetic on activations (float average pool, standalone BN affine).
func (c *compiler) countAnalogStage() {
	if q := c.eng.quant; q != nil {
		q.AnalogStages++
	}
}

func (c *compiler) compileResidual(b *snn.ResidualBlock) (stage, error) {
	// Both paths see the block's input edge, so the shortcut restarts from
	// the main path's entry dtype; the join reconciles whatever the two
	// branches produce (joinDTypes — an identity shortcut keeps its spike
	// dtype while the main path's BN epilogue is analog, so the sum edge is
	// analog), and the block's output neuron re-binarizes.
	dtIn := c.dt
	outerPrefix, outerSeq := c.prefix, c.seq
	c.prefix = fmt.Sprintf("%s%02d_residual/", outerPrefix, outerSeq)
	c.seq = 0
	main, err := c.compile([]layers.Layer{b.Conv1, b.BN1, b.LIF1, b.Conv2, b.BN2})
	if err != nil {
		return nil, err
	}
	dtMain := c.dt
	dtShort := dtIn
	var shortcut []stage
	if b.SCConv != nil {
		c.dt = dtIn
		shortcut, err = c.compile([]layers.Layer{b.SCConv, b.SCBN})
		if err != nil {
			return nil, err
		}
		dtShort = c.dt
	}
	dtSum := joinDTypes(dtMain, dtShort)
	sumSlot := c.actSlot()
	c.recordKind("sum", dtMain, dtSum, dtSum.onGrid(), sumSlot)
	c.dt = dtSum
	outStage, err := c.neuronStage(b.LIF2)
	if err != nil {
		return nil, err
	}
	c.dt = dtSpike
	c.record(outStage, dtSum, c.dt)
	c.prefix, c.seq = outerPrefix, outerSeq
	return &residualStage{
		main: main, shortcut: shortcut,
		out: outStage, sumSlot: sumSlot,
	}, nil
}

// Infer runs one sample (shape [C,H,W], direct encoding) through T
// timesteps and returns the time-averaged output of the final stage. Safe
// for concurrent use; the request is served from a pooled arena.
func (e *Engine) Infer(sample *tensor.Tensor) []float32 {
	sc := e.acquire()
	out := e.InferScratch(sc, sample)
	res := append([]float32(nil), out...)
	e.release(sc)
	return res
}

// InferScratch runs one sample using the caller's arena. The returned slice
// is owned by the arena and valid only until its next request — callers
// that keep scores across requests must copy them (Infer does). Use this
// when managing arenas explicitly; otherwise call Infer.
func (e *Engine) InferScratch(sc *Scratch, sample *tensor.Tensor) []float32 {
	return e.inferScratch(sc, sample, nil)
}

func (e *Engine) inferScratch(sc *Scratch, sample *tensor.Tensor, pt *PassTrace) []float32 {
	sc.begin()
	t0, tracked := e.beginPass(sc, pt != nil)
	in := &sc.input
	in.shape = appendShape(in.shape[:0], sample)
	in.data = sample.Data
	for t := 0; t < e.T; t++ {
		faultPass.Fire()
		in.refreshEvents()
		cur := e.stepStages(sc, in)
		if len(sc.avg) == 0 {
			sc.avg = growFloat32(sc.avg, len(cur.data))
		}
		for i, v := range cur.data {
			sc.avg[i] += v
		}
	}
	inv := 1 / float32(e.T)
	for i := range sc.avg {
		sc.avg[i] *= inv
	}
	e.synOps.Add(sc.synOps)
	sc.synOps = 0
	if tracked {
		e.endPass(sc, t0, "infer", 1, pt)
	} else if pt != nil {
		pt.Spans = pt.Spans[:0]
	}
	return sc.avg
}

// InferBatch runs a batch of single-sample requests through the pipeline
// stage-major: at every timestep each stage processes all samples before
// the pipeline advances, so a stage's compiled weight tables are traversed
// while cache-hot for the whole batch (the serving layer's coalescing win —
// the FuseTimesteps argument applied across requests instead of across
// timesteps). Every sample's arithmetic and operation order are exactly
// Infer's, so outputs are bit-identical to serial single-sample calls. Safe
// for concurrent use.
func (e *Engine) InferBatch(samples []*tensor.Tensor) [][]float32 {
	return e.inferBatch(samples, nil)
}

// InferBatchTraced is InferBatch with trace collection: when telemetry is
// enabled, the pass is force-traced and its per-stage span breakdown —
// aggregated across the batch's samples — is written into pt instead of the
// engine's own trace ring, so the caller (the serving layer) can fold the
// engine segments into a larger request trace. With telemetry disabled,
// pt.Spans comes back empty and the call is exactly InferBatch. Outputs are
// bit-identical to InferBatch and to serial Infer calls either way.
func (e *Engine) InferBatchTraced(samples []*tensor.Tensor, pt *PassTrace) [][]float32 {
	return e.inferBatch(samples, pt)
}

func (e *Engine) inferBatch(samples []*tensor.Tensor, pt *PassTrace) [][]float32 {
	n := len(samples)
	if n == 0 {
		if pt != nil {
			pt.Spans = pt.Spans[:0]
		}
		return nil
	}
	if n == 1 {
		sc := e.acquire()
		res := append([]float32(nil), e.inferScratch(sc, samples[0], pt)...)
		e.release(sc)
		return [][]float32{res}
	}
	scs := make([]*Scratch, n)
	cur := make([]*act, n)
	for i, s := range samples {
		sc := e.acquire()
		sc.begin()
		sc.input.shape = appendShape(sc.input.shape[:0], s)
		sc.input.data = s.Data
		scs[i] = sc
	}
	// Telemetry for the whole coalesced pass accumulates on the first arena:
	// per-stage SynOps sum over samples, per-stage wall-clock measured around
	// the stage-major inner loop (the batch's aggregate, matching how the
	// pass actually spends time).
	sc0 := scs[0]
	t0, tracked := e.beginPass(sc0, pt != nil)
	if !tracked && pt != nil {
		pt.Spans = pt.Spans[:0]
	}
	if tracked && sc0.timed {
		for _, sc := range scs[1:] {
			sc.timeRequant = true
			sc.requantNS = 0
		}
	}
	for t := 0; t < e.T; t++ {
		faultPass.Fire()
		for i := range scs {
			scs[i].input.refreshEvents()
			cur[i] = &scs[i].input
		}
		if tracked {
			e.stepStagesBatch(scs, cur, sc0)
		} else {
			for _, st := range e.stages {
				for i := range scs {
					cur[i] = st.step(scs[i], cur[i])
				}
			}
		}
		for i, sc := range scs {
			if len(sc.avg) == 0 {
				sc.avg = growFloat32(sc.avg, len(cur[i].data))
			}
			for j, v := range cur[i].data {
				sc.avg[j] += v
			}
		}
	}
	out := make([][]float32, n)
	inv := 1 / float32(e.T)
	for i, sc := range scs {
		res := make([]float32, len(sc.avg))
		for j, v := range sc.avg {
			res[j] = v * inv
		}
		out[i] = res
		e.synOps.Add(sc.synOps)
		sc.synOps = 0
	}
	if tracked {
		if sc0.timed {
			for _, sc := range scs[1:] {
				sc0.requantNS += sc.requantNS
				sc.timeRequant = false
			}
		}
		e.endPass(sc0, t0, "infer", n, pt)
	}
	for _, sc := range scs {
		e.release(sc)
	}
	return out
}

// appendShape appends a tensor's dimensions to dst without the copy
// Tensor.Shape makes — the request path must not allocate per sample.
func appendShape(dst []int, t *tensor.Tensor) []int {
	for i := 0; i < t.NumDims(); i++ {
		dst = append(dst, t.Dim(i))
	}
	return dst
}

// Classify returns the argmax class for one sample. Safe for concurrent use.
func (e *Engine) Classify(sample *tensor.Tensor) int {
	sc := e.acquire()
	scores := e.InferScratch(sc, sample)
	best, bestIdx := scores[0], 0
	for i, v := range scores[1:] {
		if v > best {
			best = v
			bestIdx = i + 1
		}
	}
	e.release(sc)
	return bestIdx
}
