package infer_test

import (
	"math"
	"testing"

	"ndsnn/internal/baselines"
	"ndsnn/internal/core"
	"ndsnn/internal/data"
	"ndsnn/internal/infer"
	"ndsnn/internal/models"
	"ndsnn/internal/rng"
	"ndsnn/internal/snn"
	"ndsnn/internal/tensor"
	"ndsnn/internal/testutil"
	"ndsnn/internal/train"
)

// trainBriefly runs a couple of epochs so BN running statistics move away
// from their initialization (the engine must match real deployed stats).
func trainBriefly(t *testing.T, net *snn.Network, ds *data.Dataset) {
	t.Helper()
	_, err := baselines.TrainDense(net, ds, train.Common{
		Epochs: 2, BatchSize: 16, LR: 0.05, Momentum: 0.9, WeightDecay: 5e-4, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
}

// assertEquivalent checks engine output equals the training path's
// eval-mode rate-decoded output for a handful of samples.
func assertEquivalent(t *testing.T, net *snn.Network, eng *infer.Engine, ds *data.Dataset, samples int) {
	t.Helper()
	pix := ds.Config.C * ds.Config.H * ds.Config.W
	for i := 0; i < samples; i++ {
		x, _ := ds.Batch(&ds.Test, []int{i})
		outs := net.Forward(x, false)
		want := snn.MeanOutput(outs)
		sample := tensor.FromSlice(ds.Test.Images[i*pix:(i+1)*pix], ds.Config.C, ds.Config.H, ds.Config.W)
		got := eng.Infer(sample)
		if len(got) != want.Size() {
			t.Fatalf("sample %d: engine produced %d scores, want %d", i, len(got), want.Size())
		}
		for j := range got {
			if math.Abs(float64(got[j]-want.Data[j])) > 2e-4 {
				t.Fatalf("sample %d score %d: engine %v vs training path %v", i, j, got[j], want.Data[j])
			}
		}
	}
}

func TestEngineMatchesTrainingPathTinyNet(t *testing.T) {
	ds := data.SynthEasy(4, 64, 16, 31)
	net := testutil.TinyNet(4, 3, 1)
	trainBriefly(t, net, ds)
	eng, err := infer.Compile(net)
	if err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, net, eng, ds, 8)
}

func TestEngineMatchesTrainingPathLeNetAvgPool(t *testing.T) {
	ds := data.Generate(data.Config{
		Name: "t", Classes: 4, C: 3, H: 32, W: 32,
		TrainN: 32, TestN: 8, Noise: 0.2, Jitter: 0.05, Seed: 5,
	})
	net := models.Build(models.Config{
		Arch: "lenet5", Classes: 4, InC: 3, InH: 32, InW: 32,
		Timesteps: 2, Neuron: snn.DefaultNeuron(), Profile: models.ProfileTiny, Seed: 3,
	})
	trainBriefly(t, net, ds)
	eng, err := infer.Compile(net)
	if err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, net, eng, ds, 4)
}

func TestEngineMatchesTrainingPathResNet(t *testing.T) {
	ds := data.SynthSmall(4, 32, 8, 17)
	net := models.Build(models.Config{
		Arch: "resnet19", Classes: 4, InC: 3, InH: 16, InW: 16,
		Timesteps: 2, Neuron: snn.DefaultNeuron(), Profile: models.ProfileTiny, Seed: 4,
	})
	trainBriefly(t, net, ds)
	eng, err := infer.Compile(net)
	if err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, net, eng, ds, 3)
}

func TestEngineMatchesSparseModel(t *testing.T) {
	// The point of the engine: sparse (NDSNN-trained) weights. Equivalence
	// must hold with masks applied.
	ds := data.SynthEasy(4, 64, 16, 33)
	net := testutil.TinyNet(4, 2, 6)
	_, err := core.TrainNDSNN(net, ds, train.Common{
		Epochs: 3, BatchSize: 16, LR: 0.05, Momentum: 0.9, WeightDecay: 5e-4, Seed: 2,
	}, core.Config{InitialSparsity: 0.5, FinalSparsity: 0.9, DeltaT: 4})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := infer.Compile(net)
	if err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, net, eng, ds, 8)
}

func TestEngineMatchesHardResetModel(t *testing.T) {
	ds := data.SynthEasy(4, 32, 8, 35)
	r := rng.New(12)
	neuron := snn.NeuronConfig{Alpha: 0.5, Threshold: 1, DetachReset: true, HardReset: true}
	net := &snn.Network{T: 3, Layers: testutil.TinyNet(4, 3, 12).Layers}
	// Swap LIFs for hard-reset neurons.
	for i, l := range net.Layers {
		if _, ok := l.(*snn.LIF); ok {
			net.Layers[i] = neuron.New()
		}
	}
	_ = r
	trainBriefly(t, net, ds)
	eng, err := infer.Compile(net)
	if err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, net, eng, ds, 4)
}

func TestSynOpsScaleWithSparsity(t *testing.T) {
	ds := data.SynthEasy(4, 64, 16, 37)
	pix := ds.Config.C * ds.Config.H * ds.Config.W
	sample := tensor.FromSlice(ds.Test.Images[:pix], 3, 16, 16)

	opsAt := func(sparsity float64) int64 {
		net := testutil.TinyNet(4, 2, 8)
		if sparsity > 0 {
			_, err := core.TrainNDSNN(net, ds, train.Common{
				Epochs: 2, BatchSize: 16, LR: 0.05, Momentum: 0.9, Seed: 2,
			}, core.Config{InitialSparsity: sparsity / 2, FinalSparsity: sparsity, DeltaT: 4})
			if err != nil {
				t.Fatal(err)
			}
		} else {
			trainBriefly(t, net, ds)
		}
		eng, err := infer.Compile(net)
		if err != nil {
			t.Fatal(err)
		}
		eng.ResetStats()
		eng.Infer(sample)
		return eng.SynOps()
	}
	dense := opsAt(0)
	sparse90 := opsAt(0.9)
	if sparse90 >= dense/2 {
		t.Fatalf("90%%-sparse SynOps (%d) not well below dense (%d)", sparse90, dense)
	}
}

func TestSynOpsBelowDenseMACs(t *testing.T) {
	// Event-driven ops must undercut the dense-MAC bound because spikes are
	// sparse even in a dense-weight model.
	ds := data.SynthEasy(4, 64, 16, 39)
	net := testutil.TinyNet(4, 2, 9)
	trainBriefly(t, net, ds)
	eng, err := infer.Compile(net)
	if err != nil {
		t.Fatal(err)
	}
	pix := ds.Config.C * ds.Config.H * ds.Config.W
	sample := tensor.FromSlice(ds.Test.Images[:pix], 3, 16, 16)
	eng.ResetStats()
	eng.Infer(sample)
	denseBound := eng.DenseMACsPerTimestep() * int64(net.T)
	if eng.SynOps() >= denseBound {
		t.Fatalf("SynOps %d not below dense bound %d", eng.SynOps(), denseBound)
	}
}

func TestEngineClassifyAgreesWithTrainingPath(t *testing.T) {
	ds := data.SynthEasy(4, 96, 24, 41)
	net := testutil.TinyNet(4, 2, 10)
	trainBriefly(t, net, ds)
	eng, err := infer.Compile(net)
	if err != nil {
		t.Fatal(err)
	}
	pix := ds.Config.C * ds.Config.H * ds.Config.W
	agree := 0
	for i := 0; i < ds.Test.N(); i++ {
		x, _ := ds.Batch(&ds.Test, []int{i})
		outs := net.Forward(x, false)
		want := snn.MeanOutput(outs).ArgMaxRow(0)
		sample := tensor.FromSlice(ds.Test.Images[i*pix:(i+1)*pix], 3, 16, 16)
		if eng.Classify(sample) == want {
			agree++
		}
	}
	if agree != ds.Test.N() {
		t.Fatalf("engine agrees on %d/%d test samples", agree, ds.Test.N())
	}
}

func TestEngineDeterministicAcrossResets(t *testing.T) {
	ds := data.SynthEasy(4, 32, 8, 43)
	net := testutil.TinyNet(4, 2, 11)
	trainBriefly(t, net, ds)
	eng, err := infer.Compile(net)
	if err != nil {
		t.Fatal(err)
	}
	pix := ds.Config.C * ds.Config.H * ds.Config.W
	sample := tensor.FromSlice(ds.Test.Images[:pix], 3, 16, 16)
	a := eng.Infer(sample)
	b := eng.Infer(sample)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("repeated inference differs (state leak between samples)")
		}
	}
}

func TestEngineMatchesTimeParallelModel(t *testing.T) {
	// ParLIF neurons: training runs the banded time-parallel membrane while
	// the compiled engine streams the equivalent sequential recurrence, so
	// this also pins the two formulations against each other end to end
	// (residual blocks included — their output neuron compiles per type).
	ds := data.SynthSmall(4, 32, 8, 19)
	neuron := snn.DefaultNeuron()
	neuron.TimeParallel = true
	net := models.Build(models.Config{
		Arch: "resnet19", Classes: 4, InC: 3, InH: 16, InW: 16,
		Timesteps: 4, Neuron: neuron, Profile: models.ProfileTiny, Seed: 6,
	})
	if _, ok := net.Layers[2].(*snn.ParLIF); !ok {
		t.Fatalf("expected ParLIF stem neuron, got %T", net.Layers[2])
	}
	trainBriefly(t, net, ds)
	eng, err := infer.Compile(net)
	if err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, net, eng, ds, 3)
}
