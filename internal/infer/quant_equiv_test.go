package infer_test

import (
	"math"
	"strings"
	"testing"

	"ndsnn/internal/core"
	"ndsnn/internal/data"
	"ndsnn/internal/infer"
	"ndsnn/internal/layers"
	"ndsnn/internal/models"
	"ndsnn/internal/rng"
	"ndsnn/internal/snn"
	"ndsnn/internal/tensor"
	"ndsnn/internal/testutil"
	"ndsnn/internal/train"
)

// assertBitIdentical pins the integer engine against the float engine
// running on the dequantized weights: the QCSR grid uses power-of-two
// scales, so every float partial sum the reference performs is exact and
// the two engines must agree bit for bit.
func assertBitIdentical(t *testing.T, qeng, ref *infer.Engine, ds *data.Dataset, samples int) {
	t.Helper()
	pix := ds.Config.C * ds.Config.H * ds.Config.W
	for i := 0; i < samples; i++ {
		sample := tensor.FromSlice(ds.Test.Images[i*pix:(i+1)*pix], ds.Config.C, ds.Config.H, ds.Config.W)
		got := qeng.Infer(sample)
		want := ref.Infer(sample)
		if len(got) != len(want) {
			t.Fatalf("sample %d: %d scores vs %d", i, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("sample %d score %d: integer engine %v != dequantized float reference %v (must be bit-identical)",
					i, j, got[j], want[j])
			}
		}
	}
}

// quantEquivCheck compiles the integer engine at bits, materializes the
// dequantized float reference via QuantizeNetWeights, and pins bitwise
// equality (plus training-path agreement at the float engine's tolerance).
func quantEquivCheck(t *testing.T, net *snn.Network, ds *data.Dataset, bits, samples int) {
	t.Helper()
	qeng, err := infer.CompileQuantized(net, bits)
	if err != nil {
		t.Fatal(err)
	}
	restore, err := infer.QuantizeNetWeights(net, bits)
	if err != nil {
		t.Fatal(err)
	}
	defer restore()
	ref, err := infer.Compile(net)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, qeng, ref, ds, samples)
	// And the fake-quantized training-path forward agrees at the float
	// engine's established tolerance (BN-fold op-order rounding only).
	pix := ds.Config.C * ds.Config.H * ds.Config.W
	for i := 0; i < samples; i++ {
		x, _ := ds.Batch(&ds.Test, []int{i})
		want := snn.MeanOutput(net.Forward(x, false))
		sample := tensor.FromSlice(ds.Test.Images[i*pix:(i+1)*pix], ds.Config.C, ds.Config.H, ds.Config.W)
		got := qeng.Infer(sample)
		for j := range got {
			if math.Abs(float64(got[j]-want.Data[j])) > 2e-4 {
				t.Fatalf("sample %d score %d: integer engine %v vs fake-quantized training path %v", i, j, got[j], want.Data[j])
			}
		}
	}
}

func TestQuantizedEngineBitIdenticalTinyNet(t *testing.T) {
	ds := data.SynthEasy(4, 64, 16, 51)
	net := testutil.TinyNet(4, 3, 21)
	trainBriefly(t, net, ds)
	for _, bits := range []int{8, 4, 16} {
		quantEquivCheck(t, net, ds, bits, 8)
	}
}

func TestQuantizedEngineBitIdenticalSparseModel(t *testing.T) {
	// The deployment case: NDSNN-trained sparse weights, quantized.
	ds := data.SynthEasy(4, 64, 16, 53)
	net := testutil.TinyNet(4, 2, 26)
	_, err := core.TrainNDSNN(net, ds, train.Common{
		Epochs: 3, BatchSize: 16, LR: 0.05, Momentum: 0.9, WeightDecay: 5e-4, Seed: 2,
	}, core.Config{InitialSparsity: 0.5, FinalSparsity: 0.9, DeltaT: 4})
	if err != nil {
		t.Fatal(err)
	}
	quantEquivCheck(t, net, ds, 8, 8)
	quantEquivCheck(t, net, ds, 4, 8)
}

func TestQuantizedEngineBitIdenticalResNet(t *testing.T) {
	ds := data.SynthSmall(4, 32, 8, 55)
	net := models.Build(models.Config{
		Arch: "resnet19", Classes: 4, InC: 3, InH: 16, InW: 16,
		Timesteps: 2, Neuron: snn.DefaultNeuron(), Profile: models.ProfileTiny, Seed: 6,
	})
	trainBriefly(t, net, ds)
	quantEquivCheck(t, net, ds, 8, 3)
}

func TestQuantizedEngineBitIdenticalLeNetAvgPool(t *testing.T) {
	// Average pooling produces graded events, so LeNet only quantizes its
	// spike-fed tail; the mixed integer/float pipeline must still match the
	// dequantized reference bit for bit.
	ds := data.Generate(data.Config{
		Name: "t", Classes: 4, C: 3, H: 32, W: 32,
		TrainN: 32, TestN: 8, Noise: 0.2, Jitter: 0.05, Seed: 9,
	})
	net := models.Build(models.Config{
		Arch: "lenet5", Classes: 4, InC: 3, InH: 32, InW: 32,
		Timesteps: 2, Neuron: snn.DefaultNeuron(), Profile: models.ProfileTiny, Seed: 8,
	})
	trainBriefly(t, net, ds)
	qeng, err := infer.CompileQuantized(net, 8)
	if err != nil {
		t.Fatal(err)
	}
	st := qeng.QuantStats()
	if st.QuantizedStages == 0 || st.QuantizedStages >= st.ComputeStages {
		t.Fatalf("LeNet coverage should be partial (analog avg-pool inputs): %d of %d", st.QuantizedStages, st.ComputeStages)
	}
	quantEquivCheck(t, net, ds, 8, 4)
}

func TestQuantizedEngineSkipsAnalogFirstConv(t *testing.T) {
	ds := data.SynthEasy(4, 32, 8, 57)
	net := testutil.TinyNet(4, 2, 31)
	trainBriefly(t, net, ds)
	qeng, err := infer.CompileQuantized(net, 8)
	if err != nil {
		t.Fatal(err)
	}
	st := qeng.QuantStats()
	// TinyNet has conv1 (analog direct-encoded input), conv2 and fc
	// (spike-fed): exactly two of three stages quantize.
	if st.ComputeStages != 3 || st.QuantizedStages != 2 {
		t.Fatalf("TinyNet coverage %d of %d, want 2 of 3", st.QuantizedStages, st.ComputeStages)
	}
	if st.FloatValueBytes != 4*st.PackedValueBytes {
		t.Fatalf("int8 value storage not 4x smaller: packed=%d float=%d", st.PackedValueBytes, st.FloatValueBytes)
	}
}

func TestQuantizedEngineSynOpsDropWithPrecision(t *testing.T) {
	// Lower precision rounds more weights to level zero; the integer
	// kernels skip them, so measured SynOps must not increase as precision
	// falls — and must drop strictly at 2 bits for real weight
	// distributions.
	ds := data.SynthEasy(4, 64, 16, 59)
	net := testutil.TinyNet(4, 2, 36)
	trainBriefly(t, net, ds)
	pix := ds.Config.C * ds.Config.H * ds.Config.W
	sample := tensor.FromSlice(ds.Test.Images[:pix], 3, 16, 16)
	opsAt := func(bits int) int64 {
		eng, err := infer.CompileQuantized(net, bits)
		if err != nil {
			t.Fatal(err)
		}
		eng.ResetStats()
		eng.Infer(sample)
		return eng.SynOps()
	}
	ops16, ops8, ops2 := opsAt(16), opsAt(8), opsAt(2)
	if ops8 > ops16 || ops2 > ops8 {
		t.Fatalf("SynOps increased with coarser quantization: 16b=%d 8b=%d 2b=%d", ops16, ops8, ops2)
	}
	if ops2 >= ops16 {
		t.Fatalf("2-bit SynOps %d not below 16-bit %d (zero-rounded synapses must stop costing work)", ops2, ops16)
	}
}

// snapSample returns sample i of the dataset's test split with every pixel
// projected onto the engine's input grid — the inputs under which the
// full-integer engine, the mixed engine, and the float reference all see
// exactly the same activations.
func snapSample(t *testing.T, eng *infer.Engine, ds *data.Dataset, i int) *tensor.Tensor {
	t.Helper()
	g, ok := eng.InputGrid()
	if !ok {
		t.Fatal("engine has no input grid (compiled without ActivationBits?)")
	}
	pix := ds.Config.C * ds.Config.H * ds.Config.W
	buf := append([]float32(nil), ds.Test.Images[i*pix:(i+1)*pix]...)
	return tensor.FromSlice(g.SnapSlice(buf), ds.Config.C, ds.Config.H, ds.Config.W)
}

// fullIntegerEquivCheck is the PR 4 equivalence pin extended to the
// fully-integer engine: with every weight dequantized onto its QCSR grid
// and inputs snapped onto the input ActGrid, the fully-integer engine, the
// PR 4 mixed engine, and the float engine must agree bit for bit — po2×po2
// products are exact and every integer partial sum stays far below 2^24.
func fullIntegerEquivCheck(t *testing.T, net *snn.Network, ds *data.Dataset, samples int) {
	t.Helper()
	cfg := infer.QuantConfig{WeightBits: 8, FullInteger: true}
	full, err := infer.CompileQuantizedConfig(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := full.QuantStats()
	if st.AnalogStages != 0 {
		t.Fatalf("FullInteger engine reports %d analog stages, want 0; table: %v", st.AnalogStages, st.Stages)
	}
	if !st.FullInteger || st.ActivationBits != 8 {
		t.Fatalf("QuantStats not reporting the full-integer config: %+v", st)
	}
	restore, err := infer.QuantizeNetWeightsConfig(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer restore()
	ref, err := infer.Compile(net)
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := infer.CompileQuantized(net, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < samples; i++ {
		sample := snapSample(t, full, ds, i)
		got := full.Infer(sample)
		want := ref.Infer(sample)
		mid := mixed.Infer(sample)
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("sample %d score %d: full-integer engine %v != dequantized float reference %v (must be bit-identical)",
					i, j, got[j], want[j])
			}
			if got[j] != mid[j] {
				t.Fatalf("sample %d score %d: full-integer engine %v != mixed engine %v on dequantized weights (must be bit-identical)",
					i, j, got[j], mid[j])
			}
		}
	}
}

func TestFullIntegerEngineBitIdenticalLeNet(t *testing.T) {
	// The headline pipeline: LeNet's analog first conv, both avg pools, and
	// the post-pool graded stages all run integer under FullInteger, where
	// the mixed engine left them analog.
	ds := data.Generate(data.Config{
		Name: "t", Classes: 4, C: 3, H: 32, W: 32,
		TrainN: 32, TestN: 8, Noise: 0.2, Jitter: 0.05, Seed: 9,
	})
	net := models.Build(models.Config{
		Arch: "lenet5", Classes: 4, InC: 3, InH: 32, InW: 32,
		Timesteps: 2, Neuron: snn.DefaultNeuron(), Profile: models.ProfileTiny, Seed: 8,
	})
	trainBriefly(t, net, ds)
	mixed, err := infer.CompileQuantized(net, 8)
	if err != nil {
		t.Fatal(err)
	}
	if mixed.QuantStats().AnalogStages == 0 {
		t.Fatal("mixed LeNet engine should still have analog stages — the contrast the refactor exists to close")
	}
	fullIntegerEquivCheck(t, net, ds, 4)
}

func TestFullIntegerEngineBitIdenticalTinyNet(t *testing.T) {
	ds := data.SynthEasy(4, 64, 16, 51)
	net := testutil.TinyNet(4, 3, 21)
	trainBriefly(t, net, ds)
	fullIntegerEquivCheck(t, net, ds, 8)
}

func TestFullIntegerCompileFailsOnNonPo2Pool(t *testing.T) {
	// A 3×3 average pool cannot divide exactly on a po2 grid, so the walker
	// keeps it float — and FullInteger must refuse to compile rather than
	// silently ship a mixed pipeline, naming the offending stage.
	r := rng.New(77)
	net := &snn.Network{
		T: 2,
		Layers: []layers.Layer{
			layers.NewConv2d("conv1", 3, 4, 3, 1, 1, false, r),
			layers.NewBatchNorm("conv1.bn", 4),
			snn.DefaultNeuron().New(),
			layers.NewAvgPool2d(3, 3),
			layers.NewFlatten(),
			layers.NewLinear("fc", 4*5*5, 4, true, r),
		},
	}
	_, err := infer.CompileQuantizedConfig(net, infer.QuantConfig{WeightBits: 8, FullInteger: true})
	if err == nil {
		t.Fatal("FullInteger compile accepted a float 3×3 avg pool")
	}
	if !strings.Contains(err.Error(), "avgpool") {
		t.Fatalf("FullInteger error does not name the offending stage: %v", err)
	}
	// Without the guarantee flag the same net compiles as a (valid) mixed
	// pipeline that reports its residual analog work.
	eng, err := infer.CompileQuantizedConfig(net, infer.QuantConfig{WeightBits: 8, ActivationBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	if eng.QuantStats().AnalogStages == 0 {
		t.Fatal("3×3-pool pipeline cannot be fully integer; AnalogStages must be nonzero")
	}
}

func TestResidualDTypeReconciliation(t *testing.T) {
	// Regression for the old save/restore of a raw binary flag: a residual
	// whose branches disagree on dtype — the identity shortcut keeps the
	// block input's spike edge while the main path's BN epilogue is analog —
	// must reconcile the sum edge to f32 via the lattice join, and the
	// compiled engine must still match the dequantized float reference.
	ds := data.SynthSmall(4, 32, 8, 55)
	net := models.Build(models.Config{
		Arch: "resnet19", Classes: 4, InC: 3, InH: 16, InW: 16,
		Timesteps: 2, Neuron: snn.DefaultNeuron(), Profile: models.ProfileTiny, Seed: 6,
	})
	trainBriefly(t, net, ds)
	eng, err := infer.CompileQuantized(net, 8)
	if err != nil {
		t.Fatal(err)
	}
	sums := 0
	for _, st := range eng.QuantStats().Stages {
		if st.Kind != "sum" {
			continue
		}
		sums++
		if st.In.Kind != infer.AnalogF32 || st.Out.Kind != infer.AnalogF32 {
			t.Fatalf("residual sum %s reconciled to %v + shortcut → %v, want analog f32 on both edges", st.Name, st.In, st.Out)
		}
	}
	if sums == 0 {
		t.Fatal("resnet19 dtype table lists no residual sum rows")
	}
	quantEquivCheck(t, net, ds, 8, 2)
}

func TestQuantizeNetWeightsRestores(t *testing.T) {
	ds := data.SynthEasy(4, 32, 8, 61)
	net := testutil.TinyNet(4, 2, 41)
	trainBriefly(t, net, ds)
	eng, err := infer.Compile(net)
	if err != nil {
		t.Fatal(err)
	}
	pix := ds.Config.C * ds.Config.H * ds.Config.W
	sample := tensor.FromSlice(ds.Test.Images[:pix], 3, 16, 16)
	before := eng.Infer(sample)
	restore, err := infer.QuantizeNetWeights(net, 4)
	if err != nil {
		t.Fatal(err)
	}
	restore()
	eng2, err := infer.Compile(net)
	if err != nil {
		t.Fatal(err)
	}
	after := eng2.Infer(sample)
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("QuantizeNetWeights restore did not reproduce the original network")
		}
	}
}
