package infer_test

import (
	"math"
	"testing"

	"ndsnn/internal/core"
	"ndsnn/internal/data"
	"ndsnn/internal/infer"
	"ndsnn/internal/models"
	"ndsnn/internal/snn"
	"ndsnn/internal/tensor"
	"ndsnn/internal/testutil"
	"ndsnn/internal/train"
)

// assertBitIdentical pins the integer engine against the float engine
// running on the dequantized weights: the QCSR grid uses power-of-two
// scales, so every float partial sum the reference performs is exact and
// the two engines must agree bit for bit.
func assertBitIdentical(t *testing.T, qeng, ref *infer.Engine, ds *data.Dataset, samples int) {
	t.Helper()
	pix := ds.Config.C * ds.Config.H * ds.Config.W
	for i := 0; i < samples; i++ {
		sample := tensor.FromSlice(ds.Test.Images[i*pix:(i+1)*pix], ds.Config.C, ds.Config.H, ds.Config.W)
		got := qeng.Infer(sample)
		want := ref.Infer(sample)
		if len(got) != len(want) {
			t.Fatalf("sample %d: %d scores vs %d", i, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("sample %d score %d: integer engine %v != dequantized float reference %v (must be bit-identical)",
					i, j, got[j], want[j])
			}
		}
	}
}

// quantEquivCheck compiles the integer engine at bits, materializes the
// dequantized float reference via QuantizeNetWeights, and pins bitwise
// equality (plus training-path agreement at the float engine's tolerance).
func quantEquivCheck(t *testing.T, net *snn.Network, ds *data.Dataset, bits, samples int) {
	t.Helper()
	qeng, err := infer.CompileQuantized(net, bits)
	if err != nil {
		t.Fatal(err)
	}
	restore, err := infer.QuantizeNetWeights(net, bits)
	if err != nil {
		t.Fatal(err)
	}
	defer restore()
	ref, err := infer.Compile(net)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, qeng, ref, ds, samples)
	// And the fake-quantized training-path forward agrees at the float
	// engine's established tolerance (BN-fold op-order rounding only).
	pix := ds.Config.C * ds.Config.H * ds.Config.W
	for i := 0; i < samples; i++ {
		x, _ := ds.Batch(&ds.Test, []int{i})
		want := snn.MeanOutput(net.Forward(x, false))
		sample := tensor.FromSlice(ds.Test.Images[i*pix:(i+1)*pix], ds.Config.C, ds.Config.H, ds.Config.W)
		got := qeng.Infer(sample)
		for j := range got {
			if math.Abs(float64(got[j]-want.Data[j])) > 2e-4 {
				t.Fatalf("sample %d score %d: integer engine %v vs fake-quantized training path %v", i, j, got[j], want.Data[j])
			}
		}
	}
}

func TestQuantizedEngineBitIdenticalTinyNet(t *testing.T) {
	ds := data.SynthEasy(4, 64, 16, 51)
	net := testutil.TinyNet(4, 3, 21)
	trainBriefly(t, net, ds)
	for _, bits := range []int{8, 4, 16} {
		quantEquivCheck(t, net, ds, bits, 8)
	}
}

func TestQuantizedEngineBitIdenticalSparseModel(t *testing.T) {
	// The deployment case: NDSNN-trained sparse weights, quantized.
	ds := data.SynthEasy(4, 64, 16, 53)
	net := testutil.TinyNet(4, 2, 26)
	_, err := core.TrainNDSNN(net, ds, train.Common{
		Epochs: 3, BatchSize: 16, LR: 0.05, Momentum: 0.9, WeightDecay: 5e-4, Seed: 2,
	}, core.Config{InitialSparsity: 0.5, FinalSparsity: 0.9, DeltaT: 4})
	if err != nil {
		t.Fatal(err)
	}
	quantEquivCheck(t, net, ds, 8, 8)
	quantEquivCheck(t, net, ds, 4, 8)
}

func TestQuantizedEngineBitIdenticalResNet(t *testing.T) {
	ds := data.SynthSmall(4, 32, 8, 55)
	net := models.Build(models.Config{
		Arch: "resnet19", Classes: 4, InC: 3, InH: 16, InW: 16,
		Timesteps: 2, Neuron: snn.DefaultNeuron(), Profile: models.ProfileTiny, Seed: 6,
	})
	trainBriefly(t, net, ds)
	quantEquivCheck(t, net, ds, 8, 3)
}

func TestQuantizedEngineBitIdenticalLeNetAvgPool(t *testing.T) {
	// Average pooling produces graded events, so LeNet only quantizes its
	// spike-fed tail; the mixed integer/float pipeline must still match the
	// dequantized reference bit for bit.
	ds := data.Generate(data.Config{
		Name: "t", Classes: 4, C: 3, H: 32, W: 32,
		TrainN: 32, TestN: 8, Noise: 0.2, Jitter: 0.05, Seed: 9,
	})
	net := models.Build(models.Config{
		Arch: "lenet5", Classes: 4, InC: 3, InH: 32, InW: 32,
		Timesteps: 2, Neuron: snn.DefaultNeuron(), Profile: models.ProfileTiny, Seed: 8,
	})
	trainBriefly(t, net, ds)
	qeng, err := infer.CompileQuantized(net, 8)
	if err != nil {
		t.Fatal(err)
	}
	st := qeng.QuantStats()
	if st.QuantizedStages == 0 || st.QuantizedStages >= st.ComputeStages {
		t.Fatalf("LeNet coverage should be partial (analog avg-pool inputs): %d of %d", st.QuantizedStages, st.ComputeStages)
	}
	quantEquivCheck(t, net, ds, 8, 4)
}

func TestQuantizedEngineSkipsAnalogFirstConv(t *testing.T) {
	ds := data.SynthEasy(4, 32, 8, 57)
	net := testutil.TinyNet(4, 2, 31)
	trainBriefly(t, net, ds)
	qeng, err := infer.CompileQuantized(net, 8)
	if err != nil {
		t.Fatal(err)
	}
	st := qeng.QuantStats()
	// TinyNet has conv1 (analog direct-encoded input), conv2 and fc
	// (spike-fed): exactly two of three stages quantize.
	if st.ComputeStages != 3 || st.QuantizedStages != 2 {
		t.Fatalf("TinyNet coverage %d of %d, want 2 of 3", st.QuantizedStages, st.ComputeStages)
	}
	if st.FloatValueBytes != 4*st.PackedValueBytes {
		t.Fatalf("int8 value storage not 4x smaller: packed=%d float=%d", st.PackedValueBytes, st.FloatValueBytes)
	}
}

func TestQuantizedEngineSynOpsDropWithPrecision(t *testing.T) {
	// Lower precision rounds more weights to level zero; the integer
	// kernels skip them, so measured SynOps must not increase as precision
	// falls — and must drop strictly at 2 bits for real weight
	// distributions.
	ds := data.SynthEasy(4, 64, 16, 59)
	net := testutil.TinyNet(4, 2, 36)
	trainBriefly(t, net, ds)
	pix := ds.Config.C * ds.Config.H * ds.Config.W
	sample := tensor.FromSlice(ds.Test.Images[:pix], 3, 16, 16)
	opsAt := func(bits int) int64 {
		eng, err := infer.CompileQuantized(net, bits)
		if err != nil {
			t.Fatal(err)
		}
		eng.ResetStats()
		eng.Infer(sample)
		return eng.SynOps()
	}
	ops16, ops8, ops2 := opsAt(16), opsAt(8), opsAt(2)
	if ops8 > ops16 || ops2 > ops8 {
		t.Fatalf("SynOps increased with coarser quantization: 16b=%d 8b=%d 2b=%d", ops16, ops8, ops2)
	}
	if ops2 >= ops16 {
		t.Fatalf("2-bit SynOps %d not below 16-bit %d (zero-rounded synapses must stop costing work)", ops2, ops16)
	}
}

func TestQuantizeNetWeightsRestores(t *testing.T) {
	ds := data.SynthEasy(4, 32, 8, 61)
	net := testutil.TinyNet(4, 2, 41)
	trainBriefly(t, net, ds)
	eng, err := infer.Compile(net)
	if err != nil {
		t.Fatal(err)
	}
	pix := ds.Config.C * ds.Config.H * ds.Config.W
	sample := tensor.FromSlice(ds.Test.Images[:pix], 3, 16, 16)
	before := eng.Infer(sample)
	restore, err := infer.QuantizeNetWeights(net, 4)
	if err != nil {
		t.Fatal(err)
	}
	restore()
	eng2, err := infer.Compile(net)
	if err != nil {
		t.Fatal(err)
	}
	after := eng2.Infer(sample)
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("QuantizeNetWeights restore did not reproduce the original network")
		}
	}
}
