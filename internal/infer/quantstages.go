package infer

import (
	"fmt"
	"sync/atomic"
	"time"

	"ndsnn/internal/layers"
	"ndsnn/internal/quant"
	"ndsnn/internal/snn"
	"ndsnn/internal/sparse"
	"ndsnn/internal/tensor"
)

// Quantized stages: the integer twins of convStage/linearStage. Weights are
// stored as QCSR levels (per-output-channel power-of-two scales) and events
// accumulate in int32; the accumulator leaves integer exactly once per
// output element and timestep, at the requantization affine
//
//	y = bnScale·(s·acc + bias) + bnShift  =  M·acc + C
//
// with M = bnScale·s the composed requantization multiplier (a shift of
// bnScale, since s is a power of two) and C = bnScale·bias + bnShift. The
// affine is evaluated in the factored form — the same float operation order
// as the float stages — so the integer engine is bit-identical to the float
// engine running on the dequantized weights: s is a power of two, making
// every dequantized level s·q and every partial sum s·Σq exact in float32.
// Like their float twins the integer stages are immutable plans: the int32
// accumulator and the event-index staging list live in arena slots.

// quantizedWeight records which trained parameter an integer stage
// quantized, and to what.
type quantizedWeight struct {
	p *layers.Param
	q *quant.QCSR
}

// quantizeWeight encodes a parameter's weight matrix (value-keyed: exact
// zeros — masked-out weights — are not stored) and quantizes it onto the
// per-channel QCSR grid, registering the pair on the engine.
func quantizeWeight(p *layers.Param, bits int, e *Engine) (*quant.QCSR, error) {
	rows := p.W.Dim(0)
	w2d := p.W.Reshape(rows, p.W.Size()/rows)
	q, err := quant.QuantizeCSR(sparse.EncodeCSR(w2d), bits, true)
	if err != nil {
		return nil, err
	}
	e.qweights = append(e.qweights, quantizedWeight{p: p, q: q})
	st := e.quant
	st.QuantizedStages++
	st.StoredSynapses += int64(q.NNZ())
	for p := 0; p < q.NNZ(); p++ {
		if q.Level(p) == 0 {
			st.ZeroQuantized++
		}
	}
	st.PackedValueBytes += q.PackedValueBytes()
	st.FloatValueBytes += 4 * int64(q.NNZ())
	return q, nil
}

// qconvEntry is one active quantized synapse of an event-driven
// convolution, grouped by presynaptic channel.
type qconvEntry struct {
	f      int32 // output channel
	ki, kj int32 // kernel offsets
	q      int32 // quantized level (dequantize with deq[f])
}

// qconvStage is the integer event-driven convolution with optional folded
// BN. Geometry and post-accumulation op order mirror convStage exactly,
// including the sparse.Workers output-channel banding
// (bandEntriesByChannel): integer accumulation is exact at any order, but
// the banded walk nevertheless preserves the serial per-element event
// order, matching the float stage's determinism argument.
type qconvStage struct {
	inC, outC, k, stride, pad int
	perChannel                [][]qconvEntry
	bands                     [][][]qconvEntry // [band][channel]entries; nil when serial
	deq                       []float32        // per-output-channel dequantization scale
	bias                      []float32        // conv bias (may be nil)
	scale, shift              []float32        // folded BN (may be nil)
	slot, accSlot, opsSlot    int
	inHW                      atomic.Int64
}

func newQConvStage(l *layers.Conv2d, bn *layers.BatchNorm, c *compiler) (*qconvStage, error) {
	qc, err := quantizeWeight(l.Weight, c.bits, c.eng)
	if err != nil {
		return nil, err
	}
	s := &qconvStage{
		inC: l.InC, outC: l.OutC, k: l.K, stride: l.Stride, pad: l.Pad,
		perChannel: make([][]qconvEntry, l.InC),
		deq:        make([]float32, l.OutC),
		slot:       c.actSlot(), accSlot: c.intSlot(), opsSlot: c.opsSlot(),
	}
	kk := l.K * l.K
	for f := 0; f < l.OutC; f++ {
		s.deq[f] = qc.RowScale(f)
		for p := qc.RowPtr[f]; p < qc.RowPtr[f+1]; p++ {
			lv := qc.Level(int(p))
			if lv == 0 {
				continue // dead synapse: rounded to zero at this precision
			}
			col := int(qc.ColIdx[p])
			ci := col / kk
			ki := (col % kk) / l.K
			kj := col % l.K
			s.perChannel[ci] = append(s.perChannel[ci], qconvEntry{int32(f), int32(ki), int32(kj), lv})
		}
	}
	s.bands = bandEntriesByChannel(s.perChannel, l.OutC, sparse.EffectiveWorkers(l.OutC),
		func(en qconvEntry) int32 { return en.f })
	if l.Bias != nil {
		s.bias = append([]float32(nil), l.Bias.W.Data...)
	}
	if bn != nil {
		s.scale, s.shift = bnFold(bn)
	}
	return s, nil
}

func (s *qconvStage) denseMACs() int64 {
	return convDenseMACs(int(s.inHW.Load()), s.outC, s.inC, s.k, s.stride, s.pad)
}

func (s *qconvStage) step(sc *Scratch, in *act) *act {
	h, w := in.shape[1], in.shape[2]
	s.inHW.Store(int64(h * w))
	oh := tensor.ConvOutSize(h, s.k, s.stride, s.pad)
	ow := tensor.ConvOutSize(w, s.k, s.stride, s.pad)
	out := sc.actBuf3(s.slot, s.outC, oh, ow)
	p := oh * ow
	acc := sc.int32Buf(s.accSlot, s.outC*p)
	for _, ev := range in.events {
		if ev.Val != 1 {
			panic(fmt.Sprintf("infer: quantized conv stage received non-binary event %v (compile-time binary propagation violated)", ev.Val))
		}
	}
	var ops int64
	if s.bands != nil {
		bandOps := sc.opsBuf(s.opsSlot, len(s.bands))
		tensor.ParallelStrips(len(s.bands), func(b int) {
			bandOps[b] = qconvScatterEvents(acc, in.events, s.bands[b],
				h, w, oh, ow, p, s.stride, s.pad)
		})
		for _, n := range bandOps {
			ops += n
		}
	} else {
		ops = qconvScatterEvents(acc, in.events, s.perChannel, h, w, oh, ow, p, s.stride, s.pad)
	}
	sc.synOps += ops
	var rqStart time.Time
	if sc.timeRequant {
		rqStart = time.Now()
	}
	for f := 0; f < s.outC; f++ {
		d := s.deq[f]
		var b float32
		if s.bias != nil {
			b = s.bias[f]
		}
		arow := acc[f*p : (f+1)*p]
		row := out.data[f*p : (f+1)*p]
		if s.scale != nil {
			scl, sh := s.scale[f], s.shift[f]
			for i := range row {
				row[i] = scl*(d*float32(arow[i])+b) + sh
			}
		} else if b != 0 {
			for i := range row {
				row[i] = d*float32(arow[i]) + b
			}
		} else {
			for i := range row {
				row[i] = d * float32(arow[i])
			}
		}
	}
	if sc.timeRequant {
		sc.requantNS += time.Since(rqStart).Nanoseconds()
	}
	out.refreshEvents()
	return out
}

// qconvScatterEvents accumulates every (spike × quantized synapse)
// contribution of one timestep into the int32 accumulator — convScatterEvents
// with the multiply dropped (binary events × integer levels = adds). Returns
// the accumulate count (SynOps).
func qconvScatterEvents(acc []int32, events []Event, perChannel [][]qconvEntry,
	h, w, oh, ow, p, stride, pad int) int64 {
	var ops int64
	for _, ev := range events {
		idx := int(ev.Idx)
		ci := idx / (h * w)
		rem := idx % (h * w)
		y := rem / w
		x := rem % w
		for _, en := range perChannel[ci] {
			ny := y + pad - int(en.ki)
			nx := x + pad - int(en.kj)
			if ny < 0 || nx < 0 || ny%stride != 0 || nx%stride != 0 {
				continue
			}
			oy, ox := ny/stride, nx/stride
			if oy >= oh || ox >= ow {
				continue
			}
			acc[int(en.f)*p+oy*ow+ox] += en.q
			ops++
		}
	}
	return ops
}

// qlinearStage is the integer event-driven fully-connected layer: incoming
// spike indices select quantized weight columns via the int8/int4 CSC
// kernels (packed nibbles computed from directly at 4 bits), accumulating
// into int32; 9–16-bit levels take an equivalent int16 entry walk.
type qlinearStage struct {
	in, out                int
	w8                     *sparse.CSCInt8 // bits ≤ 8, except packed 4-bit
	w4                     *sparse.CSCInt4 // bits == 4
	perInput               [][]qlinEntry   // bits ≥ 9
	deq                    []float32
	bias                   []float32
	scale, shift           []float32
	slot, accSlot, idxSlot int
}

// qlinEntry is one stored synapse of the 9–16-bit fallback walk.
type qlinEntry struct {
	out int32
	q   int32
}

func newQLinearStage(l *layers.Linear, bn *layers.BatchNorm, c *compiler) (*qlinearStage, error) {
	qc, err := quantizeWeight(l.Weight, c.bits, c.eng)
	if err != nil {
		return nil, err
	}
	s := &qlinearStage{
		in: l.In, out: l.Out, deq: make([]float32, l.Out),
		slot: c.actSlot(), accSlot: c.intSlot(), idxSlot: c.intSlot(),
	}
	for o := 0; o < l.Out; o++ {
		s.deq[o] = qc.RowScale(o)
	}
	switch {
	case c.bits == 4:
		s.w4 = qc.CSCInt4()
	case c.bits <= 8:
		s.w8 = qc.CSCInt8()
	default:
		s.perInput = make([][]qlinEntry, l.In)
		for o := 0; o < l.Out; o++ {
			for p := qc.RowPtr[o]; p < qc.RowPtr[o+1]; p++ {
				if lv := qc.Level(int(p)); lv != 0 {
					s.perInput[qc.ColIdx[p]] = append(s.perInput[qc.ColIdx[p]], qlinEntry{int32(o), lv})
				}
			}
		}
	}
	if l.Bias != nil {
		s.bias = append([]float32(nil), l.Bias.W.Data...)
	}
	if bn != nil {
		s.scale, s.shift = bnFold(bn)
	}
	return s, nil
}

func (s *qlinearStage) denseMACs() int64 { return int64(s.in) * int64(s.out) }

func (s *qlinearStage) step(sc *Scratch, in *act) *act {
	out := sc.actBuf1(s.slot, s.out)
	acc := sc.int32Buf(s.accSlot, s.out)
	idxs := sc.ints[s.idxSlot][:0]
	for _, ev := range in.events {
		if ev.Val != 1 {
			panic(fmt.Sprintf("infer: quantized linear stage received non-binary event %v (compile-time binary propagation violated)", ev.Val))
		}
		idxs = append(idxs, ev.Idx)
	}
	sc.ints[s.idxSlot] = idxs
	switch {
	case s.w4 != nil:
		sc.synOps += sparse.CSCAccumulateColumnsInt4(acc, s.w4, idxs)
	case s.w8 != nil:
		sc.synOps += sparse.CSCAccumulateColumnsInt8(acc, s.w8, idxs)
	default:
		var ops int64
		for _, q := range idxs {
			for _, en := range s.perInput[q] {
				acc[en.out] += en.q
				ops++
			}
		}
		sc.synOps += ops
	}
	var rqStart time.Time
	if sc.timeRequant {
		rqStart = time.Now()
	}
	for o := range out.data {
		v := s.deq[o] * float32(acc[o])
		var b float32
		if s.bias != nil {
			b = s.bias[o]
		}
		if s.scale != nil {
			out.data[o] = s.scale[o]*(v+b) + s.shift[o]
		} else {
			out.data[o] = v + b
		}
	}
	if sc.timeRequant {
		sc.requantNS += time.Since(rqStart).Nanoseconds()
	}
	out.refreshEvents()
	return out
}

// QuantizeNetWeights fake-quantizes, in place, exactly the weights that
// CompileQuantized(net, bits) computes in integer — the spike-fed
// conv/linear layers — onto the QCSR grid (per-output-channel power-of-two
// scales). The mutated float network is the dequantized reference the
// integer engine is pinned against: its eval-mode forward, and the float
// engine compiled from it, produce bit-identical outputs to the integer
// engine at ≤8 bits. The returned restore function undoes the mutation
// (and drops any cached CSR encodings built from the quantized values).
func QuantizeNetWeights(net *snn.Network, bits int) (restore func(), err error) {
	eng, err := CompileQuantized(net, bits)
	if err != nil {
		return nil, err
	}
	snapshots := make([]*tensor.Tensor, len(eng.qweights))
	params := make([]*layers.Param, len(eng.qweights))
	for i, qw := range eng.qweights {
		snapshots[i] = qw.p.W.Clone()
		params[i] = qw.p
		dq := qw.q.Dequantize().Decode()
		qw.p.W.CopyFrom(dq.Reshape(qw.p.W.Shape()...))
		qw.p.InvalidateCSR()
	}
	return func() {
		for i, p := range params {
			p.W.CopyFrom(snapshots[i])
			p.InvalidateCSR()
		}
	}, nil
}
