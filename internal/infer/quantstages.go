package infer

import (
	"fmt"
	"sync/atomic"
	"time"

	"ndsnn/internal/layers"
	"ndsnn/internal/quant"
	"ndsnn/internal/snn"
	"ndsnn/internal/sparse"
	"ndsnn/internal/tensor"
)

// Quantized stages: the integer twins of convStage/linearStage. Weights are
// stored as QCSR levels (per-output-channel power-of-two scales) and events
// accumulate in int32; the accumulator leaves integer exactly once per
// output element and timestep, at the requantization affine
//
//	y = bnScale·(s·acc + bias) + bnShift  =  M·acc + C
//
// with M = bnScale·s the composed requantization multiplier (a shift of
// bnScale, since s is a power of two) and C = bnScale·bias + bnShift. The
// affine is evaluated in the factored form — the same float operation order
// as the float stages — so the integer engine is bit-identical to the float
// engine running on the dequantized weights: s is a power of two, making
// every dequantized level s·q and every partial sum s·Σq exact in float32.
// Like their float twins the integer stages are immutable plans: the int32
// accumulator and the event-index staging list live in arena slots.

// quantizedWeight records which trained parameter an integer stage
// quantized, and to what.
type quantizedWeight struct {
	p *layers.Param
	q *quant.QCSR
}

// quantizeWeight encodes a parameter's weight matrix (value-keyed: exact
// zeros — masked-out weights — are not stored) and quantizes it onto the
// per-channel QCSR grid, registering the pair on the engine.
func quantizeWeight(p *layers.Param, bits int, e *Engine) (*quant.QCSR, error) {
	rows := p.W.Dim(0)
	w2d := p.W.Reshape(rows, p.W.Size()/rows)
	q, err := quant.QuantizeCSR(sparse.EncodeCSR(w2d), bits, true)
	if err != nil {
		return nil, err
	}
	e.qweights = append(e.qweights, quantizedWeight{p: p, q: q})
	st := e.quant
	st.QuantizedStages++
	st.StoredSynapses += int64(q.NNZ())
	for p := 0; p < q.NNZ(); p++ {
		if q.Level(p) == 0 {
			st.ZeroQuantized++
		}
	}
	st.PackedValueBytes += q.PackedValueBytes()
	st.FloatValueBytes += 4 * int64(q.NNZ())
	return q, nil
}

// qconvEntry is one active quantized synapse of an event-driven
// convolution, grouped by presynaptic channel.
type qconvEntry struct {
	f      int32 // output channel
	ki, kj int32 // kernel offsets
	q      int32 // quantized level (dequantize with deq[f])
}

// qconvStage is the integer event-driven convolution with optional folded
// BN. Geometry and post-accumulation op order mirror convStage exactly,
// including the sparse.Workers output-channel banding
// (bandEntriesByChannel): integer accumulation is exact at any order, but
// the banded walk nevertheless preserves the serial per-element event
// order, matching the float stage's determinism argument.
//
// The stage accepts either grid dtype (dtype.go). Fed binary spikes
// (invIn == 0) the accumulate is pure adds; fed a QuantInt edge the stage
// recovers each event's integer level with one exact multiply (1/scale is
// a power of two) and accumulates level×level products — the quantized
// analog-input convolution of the fully-integer pipeline. Either way the
// requantization multiplier deq folds the input grid's scale (po2 × po2 is
// exact), so the stage remains bit-identical to the float stage running on
// dequantized weights and grid inputs.
type qconvStage struct {
	inC, outC, k, stride, pad int
	perChannel                [][]qconvEntry
	bands                     [][][]qconvEntry // [band][channel]entries; nil when serial
	deq                       []float32        // per-output-channel dequantization scale (× input grid scale)
	invIn                     float32          // 1/input grid scale; 0 on binary-spike inputs
	bias                      []float32        // conv bias (may be nil)
	scale, shift              []float32        // folded BN (may be nil)
	slot, accSlot, opsSlot    int
	inHW                      atomic.Int64
}

func newQConvStage(l *layers.Conv2d, bn *layers.BatchNorm, c *compiler) (*qconvStage, error) {
	qc, err := quantizeWeight(l.Weight, c.cfg.WeightBits, c.eng)
	if err != nil {
		return nil, err
	}
	s := &qconvStage{
		inC: l.InC, outC: l.OutC, k: l.K, stride: l.Stride, pad: l.Pad,
		perChannel: make([][]qconvEntry, l.InC),
		deq:        make([]float32, l.OutC),
		slot:       c.actSlot(), accSlot: c.intSlot(), opsSlot: c.opsSlot(),
	}
	inScale := float32(1)
	if c.dt.Kind == QuantInt {
		s.invIn = 1 / c.dt.Scale
		inScale = c.dt.Scale
	}
	kk := l.K * l.K
	for f := 0; f < l.OutC; f++ {
		s.deq[f] = qc.RowScale(f) * inScale
		for p := qc.RowPtr[f]; p < qc.RowPtr[f+1]; p++ {
			lv := qc.Level(int(p))
			if lv == 0 {
				continue // dead synapse: rounded to zero at this precision
			}
			col := int(qc.ColIdx[p])
			ci := col / kk
			ki := (col % kk) / l.K
			kj := col % l.K
			s.perChannel[ci] = append(s.perChannel[ci], qconvEntry{int32(f), int32(ki), int32(kj), lv})
		}
	}
	s.bands = bandEntriesByChannel(s.perChannel, l.OutC, sparse.EffectiveWorkers(l.OutC),
		func(en qconvEntry) int32 { return en.f })
	if l.Bias != nil {
		s.bias = append([]float32(nil), l.Bias.W.Data...)
	}
	if bn != nil {
		s.scale, s.shift = bnFold(bn)
	}
	return s, nil
}

func (s *qconvStage) denseMACs() int64 {
	return convDenseMACs(int(s.inHW.Load()), s.outC, s.inC, s.k, s.stride, s.pad)
}

func (s *qconvStage) step(sc *Scratch, in *act) *act {
	h, w := in.shape[1], in.shape[2]
	s.inHW.Store(int64(h * w))
	oh := tensor.ConvOutSize(h, s.k, s.stride, s.pad)
	ow := tensor.ConvOutSize(w, s.k, s.stride, s.pad)
	out := sc.actBuf3(s.slot, s.outC, oh, ow)
	p := oh * ow
	acc := sc.int32Buf(s.accSlot, s.outC*p)
	if s.invIn != 0 {
		// Validate the whole event list once, before any banded goroutine
		// touches it: every event must sit exactly on the input grid.
		for _, ev := range in.events {
			if lv := ev.Val * s.invIn; float32(int32(lv)) != lv {
				panic(fmt.Sprintf("infer: quantized conv stage received off-grid event %v (compile-time dtype propagation violated)", ev.Val))
			}
		}
	} else {
		for _, ev := range in.events {
			if ev.Val != 1 {
				panic(fmt.Sprintf("infer: quantized conv stage received non-binary event %v (compile-time dtype propagation violated)", ev.Val))
			}
		}
	}
	var ops int64
	if s.bands != nil {
		bandOps := sc.opsBuf(s.opsSlot, len(s.bands))
		tensor.ParallelStrips(len(s.bands), func(b int) {
			if s.invIn != 0 {
				bandOps[b] = qconvScatterEventsGraded(acc, in.events, s.bands[b],
					h, w, oh, ow, p, s.stride, s.pad, s.invIn)
			} else {
				bandOps[b] = qconvScatterEvents(acc, in.events, s.bands[b],
					h, w, oh, ow, p, s.stride, s.pad)
			}
		})
		for _, n := range bandOps {
			ops += n
		}
	} else if s.invIn != 0 {
		ops = qconvScatterEventsGraded(acc, in.events, s.perChannel, h, w, oh, ow, p, s.stride, s.pad, s.invIn)
	} else {
		ops = qconvScatterEvents(acc, in.events, s.perChannel, h, w, oh, ow, p, s.stride, s.pad)
	}
	sc.synOps += ops
	var rqStart time.Time
	if sc.timeRequant {
		rqStart = time.Now()
	}
	for f := 0; f < s.outC; f++ {
		d := s.deq[f]
		var b float32
		if s.bias != nil {
			b = s.bias[f]
		}
		arow := acc[f*p : (f+1)*p]
		row := out.data[f*p : (f+1)*p]
		if s.scale != nil {
			scl, sh := s.scale[f], s.shift[f]
			for i := range row {
				row[i] = scl*(d*float32(arow[i])+b) + sh
			}
		} else if b != 0 {
			for i := range row {
				row[i] = d*float32(arow[i]) + b
			}
		} else {
			for i := range row {
				row[i] = d * float32(arow[i])
			}
		}
	}
	if sc.timeRequant {
		sc.requantNS += time.Since(rqStart).Nanoseconds()
	}
	out.refreshEvents()
	return out
}

// qconvScatterEvents accumulates every (spike × quantized synapse)
// contribution of one timestep into the int32 accumulator — convScatterEvents
// with the multiply dropped (binary events × integer levels = adds). Returns
// the accumulate count (SynOps).
func qconvScatterEvents(acc []int32, events []Event, perChannel [][]qconvEntry,
	h, w, oh, ow, p, stride, pad int) int64 {
	var ops int64
	for _, ev := range events {
		idx := int(ev.Idx)
		ci := idx / (h * w)
		rem := idx % (h * w)
		y := rem / w
		x := rem % w
		for _, en := range perChannel[ci] {
			ny := y + pad - int(en.ki)
			nx := x + pad - int(en.kj)
			if ny < 0 || nx < 0 || ny%stride != 0 || nx%stride != 0 {
				continue
			}
			oy, ox := ny/stride, nx/stride
			if oy >= oh || ox >= ow {
				continue
			}
			acc[int(en.f)*p+oy*ow+ox] += en.q
			ops++
		}
	}
	return ops
}

// qconvScatterEventsGraded is qconvScatterEvents for a QuantInt input edge:
// each event carries an integer level (recovered exactly — 1/scale is a
// power of two; step validated the event list), and the accumulate is
// level×level products instead of adds. The op count (SynOps) is unchanged:
// one op per (event × active synapse), whatever the event's magnitude.
func qconvScatterEventsGraded(acc []int32, events []Event, perChannel [][]qconvEntry,
	h, w, oh, ow, p, stride, pad int, invIn float32) int64 {
	var ops int64
	for _, ev := range events {
		lvl := int32(ev.Val * invIn)
		idx := int(ev.Idx)
		ci := idx / (h * w)
		rem := idx % (h * w)
		y := rem / w
		x := rem % w
		for _, en := range perChannel[ci] {
			ny := y + pad - int(en.ki)
			nx := x + pad - int(en.kj)
			if ny < 0 || nx < 0 || ny%stride != 0 || nx%stride != 0 {
				continue
			}
			oy, ox := ny/stride, nx/stride
			if oy >= oh || ox >= ow {
				continue
			}
			acc[int(en.f)*p+oy*ow+ox] += en.q * lvl
			ops++
		}
	}
	return ops
}

// qlinearStage is the integer event-driven fully-connected layer: incoming
// spike indices select quantized weight columns via the int8/int4 CSC
// kernels (packed nibbles computed from directly at 4 bits), accumulating
// into int32; 9–16-bit levels take an equivalent int16 entry walk. A
// QuantInt input edge (graded events — the fully-integer pipeline's
// avg-pool outputs) takes the entry walk at every width, multiplying each
// synapse level by the event's recovered integer level.
type qlinearStage struct {
	in, out                int
	w8                     *sparse.CSCInt8 // binary input, bits ≤ 8 (except packed 4-bit)
	w4                     *sparse.CSCInt4 // binary input, bits == 4
	perInput               [][]qlinEntry   // bits ≥ 9, or any width on a graded input
	deq                    []float32
	invIn                  float32 // 1/input grid scale; 0 on binary-spike inputs
	bias                   []float32
	scale, shift           []float32
	slot, accSlot, idxSlot int
}

// qlinEntry is one stored synapse of the entry-walk path (9–16-bit levels,
// or graded inputs at any width).
type qlinEntry struct {
	out int32
	q   int32
}

func newQLinearStage(l *layers.Linear, bn *layers.BatchNorm, c *compiler) (*qlinearStage, error) {
	qc, err := quantizeWeight(l.Weight, c.cfg.WeightBits, c.eng)
	if err != nil {
		return nil, err
	}
	s := &qlinearStage{
		in: l.In, out: l.Out, deq: make([]float32, l.Out),
		slot: c.actSlot(), accSlot: c.intSlot(), idxSlot: c.intSlot(),
	}
	inScale := float32(1)
	if c.dt.Kind == QuantInt {
		s.invIn = 1 / c.dt.Scale
		inScale = c.dt.Scale
	}
	for o := 0; o < l.Out; o++ {
		s.deq[o] = qc.RowScale(o) * inScale
	}
	switch {
	case s.invIn == 0 && c.cfg.WeightBits == 4:
		s.w4 = qc.CSCInt4()
	case s.invIn == 0 && c.cfg.WeightBits <= 8:
		s.w8 = qc.CSCInt8()
	default:
		s.perInput = make([][]qlinEntry, l.In)
		for o := 0; o < l.Out; o++ {
			for p := qc.RowPtr[o]; p < qc.RowPtr[o+1]; p++ {
				if lv := qc.Level(int(p)); lv != 0 {
					s.perInput[qc.ColIdx[p]] = append(s.perInput[qc.ColIdx[p]], qlinEntry{int32(o), lv})
				}
			}
		}
	}
	if l.Bias != nil {
		s.bias = append([]float32(nil), l.Bias.W.Data...)
	}
	if bn != nil {
		s.scale, s.shift = bnFold(bn)
	}
	return s, nil
}

func (s *qlinearStage) denseMACs() int64 { return int64(s.in) * int64(s.out) }

func (s *qlinearStage) step(sc *Scratch, in *act) *act {
	out := sc.actBuf1(s.slot, s.out)
	acc := sc.int32Buf(s.accSlot, s.out)
	if s.invIn != 0 {
		var ops int64
		for _, ev := range in.events {
			lv := ev.Val * s.invIn
			lvl := int32(lv)
			if float32(lvl) != lv {
				panic(fmt.Sprintf("infer: quantized linear stage received off-grid event %v (compile-time dtype propagation violated)", ev.Val))
			}
			for _, en := range s.perInput[ev.Idx] {
				acc[en.out] += en.q * lvl
				ops++
			}
		}
		sc.synOps += ops
	} else {
		idxs := sc.ints[s.idxSlot][:0]
		for _, ev := range in.events {
			if ev.Val != 1 {
				panic(fmt.Sprintf("infer: quantized linear stage received non-binary event %v (compile-time dtype propagation violated)", ev.Val))
			}
			idxs = append(idxs, ev.Idx)
		}
		sc.ints[s.idxSlot] = idxs
		switch {
		case s.w4 != nil:
			sc.synOps += sparse.CSCAccumulateColumnsInt4(acc, s.w4, idxs)
		case s.w8 != nil:
			sc.synOps += sparse.CSCAccumulateColumnsInt8(acc, s.w8, idxs)
		default:
			var ops int64
			for _, q := range idxs {
				for _, en := range s.perInput[q] {
					acc[en.out] += en.q
					ops++
				}
			}
			sc.synOps += ops
		}
	}
	var rqStart time.Time
	if sc.timeRequant {
		rqStart = time.Now()
	}
	for o := range out.data {
		v := s.deq[o] * float32(acc[o])
		var b float32
		if s.bias != nil {
			b = s.bias[o]
		}
		if s.scale != nil {
			out.data[o] = s.scale[o]*(v+b) + s.shift[o]
		} else {
			out.data[o] = v + b
		}
	}
	if sc.timeRequant {
		sc.requantNS += time.Since(rqStart).Nanoseconds()
	}
	out.refreshEvents()
	return out
}

// aquantStage is the explicit requantization boundary the walker inserts
// where an analog edge must become a quantized one — today, at the network
// input when ActivationBits is set (direct encoding feeds analog pixel
// intensities). It snaps every element onto the ActGrid (round to integer
// level, clamp, dequantize — exact in float32 since the scale is a power of
// two), so everything downstream sees values that carry integer levels
// losslessly.
type aquantStage struct {
	grid quant.ActGrid
	slot int
}

func (s *aquantStage) step(sc *Scratch, in *act) *act {
	out := sc.actBufShape(s.slot, in.shape)
	for i, v := range in.data {
		out.data[i] = s.grid.Snap(v)
	}
	out.refreshEvents()
	return out
}

// intAvgPoolStage is the integer average pool of the fully-integer
// pipeline: windows sum integer levels in int32 and the single multiply by
// outScale = inScale/k² performs both the dequantization and the mean in
// one exact step (k² is a power of two, so inScale/k² is still a power of
// two and the output lands on a k²-times-finer grid — no float round-trip,
// no division). The walker only selects this stage when the input edge is
// on a grid and k² is a power of two; otherwise the float avgPoolStage
// runs. Every window covers exactly k² elements: ConvOutSize floors, so
// (oh−1)·stride+k ≤ h always — a clipped border window (which the float
// stage would average over a smaller, non-po2 count) cannot occur.
type intAvgPoolStage struct {
	k, stride int
	invIn     float32 // 1/input grid scale (exact po2)
	outScale  float32 // input grid scale / k²
	slot      int
}

func newIntAvgPoolStage(l *layers.AvgPool2d, din DType, c *compiler) *intAvgPoolStage {
	s := &intAvgPoolStage{
		k: l.K, stride: l.Stride,
		invIn:    1 / din.gridScale(),
		outScale: din.gridScale() / float32(l.K*l.K),
		slot:     c.actSlot(),
	}
	c.dt = DType{
		Kind:  QuantInt,
		Bits:  bitsForLevel(din.maxLevel() * int64(l.K*l.K)),
		Scale: s.outScale,
	}
	return s
}

func (s *intAvgPoolStage) step(sc *Scratch, in *act) *act {
	c, h, w := in.shape[0], in.shape[1], in.shape[2]
	oh := tensor.ConvOutSize(h, s.k, s.stride, 0)
	ow := tensor.ConvOutSize(w, s.k, s.stride, 0)
	out := sc.actBuf3(s.slot, c, oh, ow)
	for p := 0; p < c; p++ {
		inBase := p * h * w
		outBase := p * oh * ow
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				iy0, ix0 := oy*s.stride, ox*s.stride
				var sum int32
				for ki := 0; ki < s.k; ki++ {
					rowBase := inBase + (iy0+ki)*w
					for kj := 0; kj < s.k; kj++ {
						lv := in.data[rowBase+ix0+kj] * s.invIn
						lvl := int32(lv)
						if float32(lvl) != lv {
							panic(fmt.Sprintf("infer: integer avg pool received off-grid element %v (compile-time dtype propagation violated)", in.data[rowBase+ix0+kj]))
						}
						sum += lvl
					}
				}
				out.data[outBase+oy*ow+ox] = float32(sum) * s.outScale
			}
		}
	}
	out.refreshEvents()
	return out
}

// QuantizeNetWeights fake-quantizes, in place, exactly the weights that
// CompileQuantized(net, bits) computes in integer — the spike-fed
// conv/linear layers — onto the QCSR grid (per-output-channel power-of-two
// scales). The mutated float network is the dequantized reference the
// integer engine is pinned against: its eval-mode forward, and the float
// engine compiled from it, produce bit-identical outputs to the integer
// engine at ≤8 bits. The returned restore function undoes the mutation
// (and drops any cached CSR encodings built from the quantized values).
func QuantizeNetWeights(net *snn.Network, bits int) (restore func(), err error) {
	return QuantizeNetWeightsConfig(net, QuantConfig{WeightBits: bits})
}

// QuantizeNetWeightsConfig is QuantizeNetWeights for a full QuantConfig: it
// fake-quantizes exactly the weights that CompileQuantizedConfig(net, cfg)
// computes in integer — under FullInteger, every conv and linear layer. The
// dequantized-reference equivalence then extends to the fully-integer
// engine, provided the reference's inputs are snapped onto the engine's
// InputGrid first.
func QuantizeNetWeightsConfig(net *snn.Network, cfg QuantConfig) (restore func(), err error) {
	eng, err := CompileQuantizedConfig(net, cfg)
	if err != nil {
		return nil, err
	}
	snapshots := make([]*tensor.Tensor, len(eng.qweights))
	params := make([]*layers.Param, len(eng.qweights))
	for i, qw := range eng.qweights {
		snapshots[i] = qw.p.W.Clone()
		params[i] = qw.p
		dq := qw.q.Dequantize().Decode()
		qw.p.W.CopyFrom(dq.Reshape(qw.p.W.Shape()...))
		qw.p.InvalidateCSR()
	}
	return func() {
		for i, p := range params {
			p.W.CopyFrom(snapshots[i])
			p.InvalidateCSR()
		}
	}, nil
}
