//go:build !race

package infer_test

// raceEnabled gates allocation-count assertions: the race detector's shadow
// bookkeeping allocates, so allocs-per-op numbers are meaningless under it.
const raceEnabled = false
