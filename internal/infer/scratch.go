package infer

import "ndsnn/internal/obs"

// The engine's re-entrancy split: a compiled Engine is an immutable plan
// (weight tables, folded affines, band layouts) shared by any number of
// concurrent callers, while every piece of mutable per-request state lives
// in a Scratch arena. The compiler assigns each stage fixed slot indices
// into the arena at compile time, so a request's entire working set — the
// activation buffers flowing between stages, their event lists, LIF
// membrane state, integer accumulators, per-band SynOps tallies — is
// carried by one heap object that a sync.Pool recycles across requests.
// Steady-state inference therefore allocates (almost) nothing: event-list
// and buffer capacity established by the first few requests is reused by
// every later one (pinned by TestInferAllocsSteadyState).

// Scratch is the per-request mutable arena of one engine. A Scratch belongs
// to exactly one in-flight request at a time; distinct goroutines use
// distinct arenas (Engine.Infer and Engine.InferBatch manage a pool
// internally). A Scratch is engine-specific: using it with a different
// engine than the one that created it is invalid.
type Scratch struct {
	acts   []act      // activation slots, one per producing stage
	lif    []lifState // membrane-state slots, one per LIF stage
	ints   [][]int32  // int32 slots: integer accumulators, event-index lists
	ops    [][]int64  // per-band SynOps tally slots of banded stages
	input  act        // the network input (aliases the sample, owns its event list)
	avg    []float32  // time-averaged output accumulator
	synOps int64      // request-local SynOps, rolled into the engine atomically

	// Telemetry accumulators (see telemetry.go). Sized lazily by beginPass
	// when the engine has telemetry enabled; a warm arena reuses them, so
	// telemetry-on steady state stays allocation-free.
	stageOps    []int64    // per-stage SynOps of the current pass
	stageNS     []int64    // per-stage wall-clock ns (traced passes only)
	spans       []obs.Span // reused span buffer for trace flushes
	requantNS   int64      // requantization sub-timing of the integer stages
	timed       bool       // this pass carries per-stage wall-clock tracing
	timeRequant bool       // the integer stages time their requant affines
	fresh       bool       // arena was just allocated (pool-miss accounting)
}

// lifState is one LIF stage's per-request temporal state.
type lifState struct {
	v, oPrev []float32
}

// NewScratch allocates an arena sized for this engine's compiled slot
// layout. Buffers inside it grow lazily on first use and are retained for
// reuse. Most callers never need this: Infer and InferBatch draw arenas
// from the engine's internal pool.
func (e *Engine) NewScratch() *Scratch {
	return &Scratch{
		acts:  make([]act, e.nAct),
		lif:   make([]lifState, e.nLIF),
		ints:  make([][]int32, e.nInt),
		ops:   make([][]int64, e.nOps),
		fresh: true,
	}
}

// begin resets the arena's temporal state for a fresh request: membrane
// state zeroes in place (keeping capacity), the SynOps tally restarts, and
// the output accumulator empties. Activation and integer slots need no
// reset — every stage fully (re)initializes its slot each step.
func (sc *Scratch) begin() {
	for i := range sc.lif {
		zeroFloat32(sc.lif[i].v)
		zeroFloat32(sc.lif[i].oPrev)
	}
	sc.avg = sc.avg[:0]
	sc.synOps = 0
}

// actAt returns slot's activation buffer resized to n and zeroed, with an
// empty event list (capacity retained).
func (sc *Scratch) actAt(slot, n int) *act {
	a := &sc.acts[slot]
	if cap(a.data) < n {
		a.data = make([]float32, n)
	} else {
		a.data = a.data[:n]
		zeroFloat32(a.data)
	}
	a.events = a.events[:0]
	return a
}

// actBuf3 returns slot's activation buffer shaped [c,h,w], zeroed.
func (sc *Scratch) actBuf3(slot, c, h, w int) *act {
	a := sc.actAt(slot, c*h*w)
	a.shape = append(a.shape[:0], c, h, w)
	return a
}

// actBuf1 returns slot's activation buffer shaped [n], zeroed.
func (sc *Scratch) actBuf1(slot, n int) *act {
	a := sc.actAt(slot, n)
	a.shape = append(a.shape[:0], n)
	return a
}

// actBufShape returns slot's activation buffer with a copy of shape, zeroed.
func (sc *Scratch) actBufShape(slot int, shape []int) *act {
	n := 1
	for _, d := range shape {
		n *= d
	}
	a := sc.actAt(slot, n)
	a.shape = append(a.shape[:0], shape...)
	return a
}

// int32Buf returns slot's int32 buffer resized to n and zeroed.
func (sc *Scratch) int32Buf(slot, n int) []int32 {
	buf := sc.ints[slot]
	if cap(buf) < n {
		buf = make([]int32, n)
	} else {
		buf = buf[:n]
		for i := range buf {
			buf[i] = 0
		}
	}
	sc.ints[slot] = buf
	return buf
}

// opsBuf returns slot's int64 buffer resized to n and zeroed — the per-band
// SynOps tallies of a banded parallel scatter.
func (sc *Scratch) opsBuf(slot, n int) []int64 {
	buf := sc.ops[slot]
	if cap(buf) < n {
		buf = make([]int64, n)
	} else {
		buf = buf[:n]
		for i := range buf {
			buf[i] = 0
		}
	}
	sc.ops[slot] = buf
	return buf
}

// lifBuf returns slot's membrane-state pair sized to n. Within a request the
// size is stable and state persists across timesteps; a size change (first
// use, or a different input geometry than the arena last served) reallocates
// zeroed state.
func (sc *Scratch) lifBuf(slot, n int) (v, oPrev []float32) {
	st := &sc.lif[slot]
	if len(st.v) != n {
		if cap(st.v) >= n && cap(st.oPrev) >= n {
			st.v = st.v[:n]
			st.oPrev = st.oPrev[:n]
			zeroFloat32(st.v)
			zeroFloat32(st.oPrev)
		} else {
			st.v = make([]float32, n)
			st.oPrev = make([]float32, n)
		}
	}
	return st.v, st.oPrev
}

func zeroFloat32(s []float32) {
	for i := range s {
		s[i] = 0
	}
}

// growFloat32 returns a zeroed float32 buffer of length n, reusing buf's
// storage when it is large enough.
func growFloat32(buf []float32, n int) []float32 {
	if cap(buf) < n {
		return make([]float32, n)
	}
	buf = buf[:n]
	zeroFloat32(buf)
	return buf
}
