package infer

import (
	"math"
	"sync/atomic"

	"ndsnn/internal/layers"
	"ndsnn/internal/snn"
	"ndsnn/internal/sparse"
	"ndsnn/internal/tensor"
)

// Stages are immutable compiled plans: constructors freeze the weight
// tables, folded affines and band layouts, and step routes every mutable
// buffer through the request's Scratch arena (each stage owns fixed slot
// indices assigned at compile time). The only post-compile writes a stage
// performs on itself are atomics (the conv stages' last-seen spatial size,
// recorded for the dense-MAC bound), so one stage instance serves any
// number of concurrent requests.

// bnFold extracts the eval-mode affine (scale, shift) of a BatchNorm:
// y = scale·x + shift with scale = γ/√(σ²+ε), shift = β − scale·μ.
func bnFold(bn *layers.BatchNorm) (scale, shift []float32) {
	scale = make([]float32, bn.C)
	shift = make([]float32, bn.C)
	for c := 0; c < bn.C; c++ {
		s := bn.Gamma.W.Data[c] / float32(math.Sqrt(float64(bn.RunningVar.Data[c]+bn.Eps)))
		scale[c] = s
		shift[c] = bn.Beta.W.Data[c] - s*bn.RunningMean.Data[c]
	}
	return scale, shift
}

// convEntry is one active synapse of an event-driven convolution, grouped
// by presynaptic channel.
type convEntry struct {
	f      int32 // output channel
	ki, kj int32 // kernel offsets
	w      float32
}

// convStage is an event-driven convolution with optional folded BN. When
// compiled with sparse.Workers > 1 the synapse table is pre-bucketed into
// that many output-channel bands (balanced by synapse count; see
// bandEntriesByChannel) and step scatters every band concurrently on the
// shared worker pool.
type convStage struct {
	inC, outC, k, stride, pad int
	perChannel                [][]convEntry
	bands                     [][][]convEntry // [band][channel]entries; nil when serial
	bias                      []float32       // conv bias (may be nil)
	scale, shift              []float32       // folded BN (may be nil)
	activeSynapses            int64
	slot, opsSlot             int
	inHW                      atomic.Int64 // last seen spatial size (for dense MACs)
}

func newConvStage(l *layers.Conv2d, bn *layers.BatchNorm, c *compiler) *convStage {
	s := &convStage{
		inC: l.InC, outC: l.OutC, k: l.K, stride: l.Stride, pad: l.Pad,
		perChannel: make([][]convEntry, l.InC),
		slot:       c.actSlot(), opsSlot: c.opsSlot(),
	}
	w := l.Weight.W
	for f := 0; f < l.OutC; f++ {
		for ci := 0; ci < l.InC; ci++ {
			for ki := 0; ki < l.K; ki++ {
				for kj := 0; kj < l.K; kj++ {
					v := w.At(f, ci, ki, kj)
					if v != 0 {
						s.perChannel[ci] = append(s.perChannel[ci], convEntry{int32(f), int32(ki), int32(kj), v})
						s.activeSynapses++
					}
				}
			}
		}
	}
	s.bands = bandEntriesByChannel(s.perChannel, l.OutC, sparse.EffectiveWorkers(l.OutC),
		func(en convEntry) int32 { return en.f })
	if l.Bias != nil {
		s.bias = append([]float32(nil), l.Bias.W.Data...)
	}
	if bn != nil {
		s.scale, s.shift = bnFold(bn)
	}
	return s
}

// bandEntriesByChannel splits a per-channel synapse table (entries ascending
// in output unit fOf(entry) within each channel, as the compile loops
// produce them) into `workers` output-unit bands balanced by synapse count —
// the shared banding of the float and quantized conv stages. Bands write
// disjoint output rows, so they scatter concurrently without
// synchronization, and each output element still receives its contributions
// in the serial event order: banded stepping is bit-identical to serial
// stepping. It returns nil for workers <= 1 — the serial layout. Each
// band's per-channel slices alias the original table (contiguous f-runs),
// so banding costs no synapse copies.
func bandEntriesByChannel[E any](perChannel [][]E, outC, workers int, fOf func(E) int32) [][][]E {
	if workers <= 1 {
		return nil
	}
	perF := make([]int64, outC+1)
	var total int64
	for _, entries := range perChannel {
		total += int64(len(entries))
		for _, en := range entries {
			perF[fOf(en)+1]++
		}
	}
	if total == 0 {
		return nil
	}
	for f := 0; f < outC; f++ {
		perF[f+1] += perF[f]
	}
	bands := make([][][]E, 0, workers)
	f := 0
	for b := 0; b < workers; b++ {
		target := total * int64(b+1) / int64(workers)
		fHi := f
		for fHi < outC && (b == workers-1 || perF[fHi] < target) {
			fHi++
		}
		if b == workers-1 {
			fHi = outC
		}
		band := make([][]E, len(perChannel))
		for c, entries := range perChannel {
			lo := 0
			for lo < len(entries) && int(fOf(entries[lo])) < f {
				lo++
			}
			hi := lo
			for hi < len(entries) && int(fOf(entries[hi])) < fHi {
				hi++
			}
			band[c] = entries[lo:hi]
		}
		bands = append(bands, band)
		f = fHi
	}
	return bands
}

func (s *convStage) denseMACs() int64 {
	return convDenseMACs(int(s.inHW.Load()), s.outC, s.inC, s.k, s.stride, s.pad)
}

// convDenseMACs is the dense-implementation MAC bound of a convolution —
// outC·inC·k²·outHW — from the last seen (square) spatial size, shared by
// the float and integer conv stages.
func convDenseMACs(inHW, outC, inC, k, stride, pad int) int64 {
	if inHW == 0 {
		return 0
	}
	inH := int(math.Sqrt(float64(inHW)))
	oh := tensor.ConvOutSize(inH, k, stride, pad)
	return int64(outC*inC*k*k) * int64(oh*oh)
}

func (s *convStage) step(sc *Scratch, in *act) *act {
	h, w := in.shape[1], in.shape[2]
	s.inHW.Store(int64(h * w))
	oh := tensor.ConvOutSize(h, s.k, s.stride, s.pad)
	ow := tensor.ConvOutSize(w, s.k, s.stride, s.pad)
	out := sc.actBuf3(s.slot, s.outC, oh, ow)
	p := oh * ow
	var ops int64
	if s.bands != nil {
		// Parallel scatter: every band streams the same events in the same
		// order into its private output-channel rows — bit-identical to the
		// serial walk below, at any GOMAXPROCS.
		bandOps := sc.opsBuf(s.opsSlot, len(s.bands))
		tensor.ParallelStrips(len(s.bands), func(b int) {
			bandOps[b] = convScatterEvents(out.data, in.events, s.bands[b],
				h, w, oh, ow, p, s.stride, s.pad)
		})
		for _, n := range bandOps {
			ops += n
		}
	} else {
		ops = convScatterEvents(out.data, in.events, s.perChannel, h, w, oh, ow, p, s.stride, s.pad)
	}
	sc.synOps += ops
	for f := 0; f < s.outC; f++ {
		var b float32
		if s.bias != nil {
			b = s.bias[f]
		}
		row := out.data[f*p : (f+1)*p]
		if s.scale != nil {
			scl, sh := s.scale[f], s.shift[f]
			for i := range row {
				row[i] = scl*(row[i]+b) + sh
			}
		} else if b != 0 {
			for i := range row {
				row[i] += b
			}
		}
	}
	out.refreshEvents()
	return out
}

// convScatterEvents accumulates every (event × synapse) contribution of one
// timestep into the output buffer — the shared inner walk of the serial and
// banded float conv stage. Returns the accumulate count (SynOps).
func convScatterEvents(out []float32, events []Event, perChannel [][]convEntry,
	h, w, oh, ow, p, stride, pad int) int64 {
	var ops int64
	for _, ev := range events {
		idx := int(ev.Idx)
		ci := idx / (h * w)
		rem := idx % (h * w)
		y := rem / w
		x := rem % w
		for _, en := range perChannel[ci] {
			// Output position such that y = oy·stride + ki - pad.
			ny := y + pad - int(en.ki)
			nx := x + pad - int(en.kj)
			if ny < 0 || nx < 0 || ny%stride != 0 || nx%stride != 0 {
				continue
			}
			oy, ox := ny/stride, nx/stride
			if oy >= oh || ox >= ow {
				continue
			}
			out[int(en.f)*p+oy*ow+ox] += en.w * ev.Val
			ops++
		}
	}
	return ops
}

// linearEntry is one active synapse of an event-driven linear layer,
// grouped by presynaptic index.
type linearEntry struct {
	out int32
	w   float32
}

// linearStage is an event-driven fully-connected layer with folded BN.
type linearStage struct {
	in, out        int
	perInput       [][]linearEntry
	bias           []float32
	scale, shift   []float32
	activeSynapses int64
	slot           int
}

func newLinearStage(l *layers.Linear, bn *layers.BatchNorm, c *compiler) *linearStage {
	s := &linearStage{in: l.In, out: l.Out, perInput: make([][]linearEntry, l.In), slot: c.actSlot()}
	for o := 0; o < l.Out; o++ {
		for i := 0; i < l.In; i++ {
			v := l.Weight.W.Data[o*l.In+i]
			if v != 0 {
				s.perInput[i] = append(s.perInput[i], linearEntry{int32(o), v})
				s.activeSynapses++
			}
		}
	}
	if l.Bias != nil {
		s.bias = append([]float32(nil), l.Bias.W.Data...)
	}
	if bn != nil {
		s.scale, s.shift = bnFold(bn)
	}
	return s
}

func (s *linearStage) denseMACs() int64 { return int64(s.in) * int64(s.out) }

func (s *linearStage) step(sc *Scratch, in *act) *act {
	out := sc.actBuf1(s.slot, s.out)
	var ops int64
	for _, ev := range in.events {
		for _, en := range s.perInput[ev.Idx] {
			out.data[en.out] += en.w * ev.Val
			ops++
		}
	}
	sc.synOps += ops
	for o := range out.data {
		var b float32
		if s.bias != nil {
			b = s.bias[o]
		}
		if s.scale != nil {
			out.data[o] = s.scale[o]*(out.data[o]+b) + s.shift[o]
		} else {
			out.data[o] += b
		}
	}
	out.refreshEvents()
	return out
}

// affineStage applies a standalone BN's eval affine.
type affineStage struct {
	scale, shift []float32
	slot         int
}

func newAffineStage(bn *layers.BatchNorm, c *compiler) *affineStage {
	s := &affineStage{slot: c.actSlot()}
	s.scale, s.shift = bnFold(bn)
	return s
}

func (s *affineStage) step(sc *Scratch, in *act) *act {
	out := sc.actBufShape(s.slot, in.shape)
	chans := len(s.scale)
	per := len(in.data) / chans
	for c := 0; c < chans; c++ {
		for i := 0; i < per; i++ {
			out.data[c*per+i] = s.scale[c]*in.data[c*per+i] + s.shift[c]
		}
	}
	out.refreshEvents()
	return out
}

// lifStage replicates the training LIF dynamics (soft or hard reset). The
// membrane state lives in the request's arena (stateSlot), so concurrent
// requests carry independent temporal state.
type lifStage struct {
	cfg             snn.NeuronConfig
	slot, stateSlot int
}

func (s *lifStage) step(sc *Scratch, in *act) *act {
	n := len(in.data)
	mv, oPrev := sc.lifBuf(s.stateSlot, n)
	out := sc.actBufShape(s.slot, in.shape)
	cfg := s.cfg
	for i, x := range in.data {
		var v float32
		if cfg.HardReset {
			v = cfg.Alpha*mv[i]*(1-oPrev[i]) + x
		} else {
			v = cfg.Alpha*mv[i] + x - cfg.Threshold*oPrev[i]
		}
		mv[i] = v
		if v >= cfg.Threshold {
			out.data[i] = 1
		}
	}
	copy(oPrev, out.data)
	out.refreshEvents()
	return out
}

// parLIFStage replicates ParLIF's deterministic dynamics. Inference streams
// one timestep at a time, so the stage runs the sequential recurrence the
// time-parallel training formulation is equivalent to: v[t] = α·v[t-1] + I[t]
// (− ϑ·o[t-1] with the soft reset). Stochastic firing is a training-time
// regularizer; the compiled engine thresholds deterministically, the standard
// MAP readout, so serving stays reproducible and batch-order independent.
type parLIFStage struct {
	cfg             snn.NeuronConfig
	soft            bool
	slot, stateSlot int
}

func (s *parLIFStage) step(sc *Scratch, in *act) *act {
	n := len(in.data)
	mv, oPrev := sc.lifBuf(s.stateSlot, n)
	out := sc.actBufShape(s.slot, in.shape)
	cfg := s.cfg
	for i, x := range in.data {
		v := cfg.Alpha*mv[i] + x
		if s.soft {
			v -= cfg.Threshold * oPrev[i]
		}
		mv[i] = v
		if v >= cfg.Threshold {
			out.data[i] = 1
		}
	}
	copy(oPrev, out.data)
	out.refreshEvents()
	return out
}

// maxPoolStage pools densely (cheap relative to synaptic work), writing
// into its arena slot.
type maxPoolStage struct {
	k, stride int
	slot      int
}

func (s *maxPoolStage) step(sc *Scratch, in *act) *act {
	c, h, w := in.shape[0], in.shape[1], in.shape[2]
	oh := tensor.ConvOutSize(h, s.k, s.stride, 0)
	ow := tensor.ConvOutSize(w, s.k, s.stride, 0)
	out := sc.actBuf3(s.slot, c, oh, ow)
	for p := 0; p < c; p++ {
		inBase := p * h * w
		outBase := p * oh * ow
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				iy0, ix0 := oy*s.stride, ox*s.stride
				best := in.data[inBase+iy0*w+ix0]
				for ki := 0; ki < s.k; ki++ {
					iy := iy0 + ki
					if iy >= h {
						break
					}
					rowBase := inBase + iy*w
					for kj := 0; kj < s.k; kj++ {
						ix := ix0 + kj
						if ix >= w {
							break
						}
						if v := in.data[rowBase+ix]; v > best {
							best = v
						}
					}
				}
				out.data[outBase+oy*ow+ox] = best
			}
		}
	}
	out.refreshEvents()
	return out
}

// avgPoolStage pools densely; outputs are graded events.
type avgPoolStage struct {
	k, stride int
	slot      int
}

func (s *avgPoolStage) step(sc *Scratch, in *act) *act {
	c, h, w := in.shape[0], in.shape[1], in.shape[2]
	oh := tensor.ConvOutSize(h, s.k, s.stride, 0)
	ow := tensor.ConvOutSize(w, s.k, s.stride, 0)
	out := sc.actBuf3(s.slot, c, oh, ow)
	for p := 0; p < c; p++ {
		inBase := p * h * w
		outBase := p * oh * ow
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				iy0, ix0 := oy*s.stride, ox*s.stride
				var sum float32
				count := 0
				for ki := 0; ki < s.k; ki++ {
					iy := iy0 + ki
					if iy >= h {
						break
					}
					rowBase := inBase + iy*w
					for kj := 0; kj < s.k; kj++ {
						ix := ix0 + kj
						if ix >= w {
							break
						}
						sum += in.data[rowBase+ix]
						count++
					}
				}
				out.data[outBase+oy*ow+ox] = sum / float32(count)
			}
		}
	}
	out.refreshEvents()
	return out
}

// flattenStage reshapes to a vector. Its slot only ever aliases the
// incoming buffer and event list — no copy, no allocation.
type flattenStage struct {
	slot int
}

func (s *flattenStage) step(sc *Scratch, in *act) *act {
	a := &sc.acts[s.slot]
	a.shape = append(a.shape[:0], len(in.data))
	a.data = in.data
	a.events = in.events
	return a
}

// residualStage runs both paths and the output neuron (a LIF or ParLIF
// stage, whichever the block was built with).
type residualStage struct {
	main     []stage
	shortcut []stage
	out      stage
	sumSlot  int
}

func (s *residualStage) step(sc *Scratch, in *act) *act {
	cur := in
	for _, st := range s.main {
		cur = st.step(sc, cur)
	}
	short := in
	for _, st := range s.shortcut {
		short = st.step(sc, short)
	}
	sum := sc.actBufShape(s.sumSlot, cur.shape)
	copy(sum.data, cur.data)
	for i, v := range short.data {
		sum.data[i] += v
	}
	sum.refreshEvents()
	return s.out.step(sc, sum)
}
