package infer

import (
	"context"
	"fmt"
	"runtime/pprof"
	"sync/atomic"
	"time"

	"ndsnn/internal/obs"
)

// Engine telemetry: per-pass latency, per-stage SynOps, and sampled
// per-stage wall-clock tracing, recorded into an obs.Registry.
//
// The instrumentation is layered by cost so the ≤1% overhead budget holds:
//
//   - telemetry disabled (the default): every hot-path hook is one nil
//     check on e.tel — the engine runs the exact pre-telemetry loops;
//   - telemetry enabled, untraced pass (the common case): one histogram
//     record for the pass latency, plus per-stage SynOps deltas — integer
//     subtract/add per stage per timestep, rolled up as one atomic add per
//     stage per pass. No clock reads inside the stage loop;
//   - traced pass (one in TraceEvery): per-stage wall-clock timing, pprof
//     goroutine labels (so CPU profiles segment by stage), requantization
//     sub-timing inside the integer stages, and a span breakdown pushed to
//     the registry's trace ring.
//
// None of the hooks touch the arithmetic: outputs are bit-identical with
// telemetry on, off, or traced (pinned by TestTelemetryBitIdentical).

// Telemetry is an engine's recording state. It is created by
// EnableTelemetry and immutable afterwards; all mutation goes through the
// obs instruments, which are atomic.
type Telemetry struct {
	reg        *obs.Registry
	passNS     *obs.Histogram   // infer_pass_ns: wall-clock of one pass (sample or batch)
	stageNS    []*obs.Histogram // infer_stage_ns{stage=...}: per-stage total ns of a traced pass
	stageOps   []*obs.Counter   // infer_stage_synops_total{stage=...}
	poolHit    *obs.Counter     // scratch arena served from the pool
	poolMiss   *obs.Counter     // scratch arena freshly allocated
	names      []string         // "00_conv", "01_lif", ... per top-level stage
	labels     []context.Context
	base       context.Context
	traceEvery uint32
	seq        atomic.Uint32
}

// DefaultTraceEvery is the sampling period used when EnableTelemetry is
// given traceEvery == 0: one pass in eight carries full per-stage timing.
const DefaultTraceEvery = 8

// EnableTelemetry attaches a registry to the engine. traceEvery sets the
// tracing sample period (0 → DefaultTraceEvery; negative → never trace,
// keeping only the pass histogram and SynOps counters). Call it once,
// before the engine serves traffic — it is not synchronized against
// in-flight passes. A nil registry leaves telemetry disabled.
func (e *Engine) EnableTelemetry(reg *obs.Registry, traceEvery int) {
	if reg == nil {
		return
	}
	if traceEvery == 0 {
		traceEvery = DefaultTraceEvery
	}
	t := &Telemetry{reg: reg, base: context.Background()}
	if traceEvery > 0 {
		t.traceEvery = uint32(traceEvery)
	}
	t.passNS = reg.Histogram("infer_pass_ns", "ns")
	t.poolHit = reg.Counter("infer_scratch_pool_hit_total")
	t.poolMiss = reg.Counter("infer_scratch_pool_miss_total")
	for i, s := range e.stages {
		name := fmt.Sprintf("%02d_%s", i, stageKind(s))
		t.names = append(t.names, name)
		t.stageNS = append(t.stageNS, reg.Histogram(fmt.Sprintf("infer_stage_ns{stage=%q}", name), "ns"))
		t.stageOps = append(t.stageOps, reg.Counter(fmt.Sprintf("infer_stage_synops_total{stage=%q}", name)))
		t.labels = append(t.labels, pprof.WithLabels(t.base, pprof.Labels("infer_stage", name)))
	}
	e.tel = t
}

// Telemetry returns the attached telemetry state (nil when disabled).
func (e *Engine) Telemetry() *Telemetry { return e.tel }

// StageNames returns the per-stage instrument names ("00_conv", ...) in
// pipeline order, or nil when telemetry is disabled.
func (t *Telemetry) StageNames() []string {
	if t == nil {
		return nil
	}
	return t.names
}

// sample decides whether the next pass carries full tracing.
func (t *Telemetry) sample() bool {
	return t.traceEvery > 0 && t.seq.Add(1)%t.traceEvery == 0
}

// stageKind names a compiled stage for metric labels.
func stageKind(s stage) string {
	switch s.(type) {
	case *convStage:
		return "conv"
	case *qconvStage:
		return "qconv"
	case *linearStage:
		return "linear"
	case *qlinearStage:
		return "qlinear"
	case *affineStage:
		return "affine"
	case *lifStage:
		return "lif"
	case *parLIFStage:
		return "parlif"
	case *maxPoolStage:
		return "maxpool"
	case *avgPoolStage:
		return "avgpool"
	case *intAvgPoolStage:
		return "intavgpool"
	case *aquantStage:
		return "aquant"
	case *flattenStage:
		return "flatten"
	case *residualStage:
		return "residual"
	default:
		return "stage"
	}
}

// PassTrace receives the span breakdown of one traced pass — the hook the
// serving layer uses to fold per-stage engine segments into its own
// queue/assembly trace instead of the engine pushing a separate ring entry.
// The Spans buffer is reused across calls; the caller owns it.
type PassTrace struct {
	Spans []obs.Span
}

// beginPass prepares a pass's telemetry accumulators on the arena and
// decides whether this pass is traced. Returns the pass start time and
// whether telemetry is active at all; with telemetry disabled it is a
// single branch.
func (e *Engine) beginPass(sc *Scratch, forceTrace bool) (time.Time, bool) {
	t := e.tel
	if t == nil {
		return time.Time{}, false
	}
	n := len(e.stages)
	sc.stageOps = growInt64(sc.stageOps, n)
	sc.timed = forceTrace || t.sample()
	sc.timeRequant = false
	if sc.timed {
		sc.stageNS = growInt64(sc.stageNS, n)
		sc.timeRequant = true
		sc.requantNS = 0
	}
	return time.Now(), true
}

// endPass flushes a pass's accumulators: the pass latency, one atomic add
// per stage with nonzero SynOps, and — on traced passes — the per-stage
// latency histograms plus the span breakdown, delivered to pt when the
// caller collects it (the serving layer) or pushed to the trace ring
// otherwise. Only call when beginPass reported telemetry active.
func (e *Engine) endPass(sc *Scratch, t0 time.Time, kind string, batch int, pt *PassTrace) {
	t := e.tel
	t.passNS.Record(time.Since(t0).Nanoseconds())
	for i := range t.stageOps {
		if v := sc.stageOps[i]; v != 0 {
			t.stageOps[i].Add(v)
		}
	}
	if !sc.timed {
		if pt != nil {
			pt.Spans = pt.Spans[:0]
		}
		return
	}
	var off int64
	spans := sc.spans[:0]
	for i, h := range t.stageNS {
		d := sc.stageNS[i]
		h.Record(d)
		spans = append(spans, obs.Span{Name: t.names[i], StartNs: off, DurNs: d})
		off += d
	}
	if sc.requantNS > 0 {
		// Requantization is a sub-segment of the integer stages' time, not
		// additional time: overlay it at offset zero rather than extending
		// the cumulative layout.
		spans = append(spans, obs.Span{Name: "requant", StartNs: 0, DurNs: sc.requantNS})
	}
	sc.spans = spans
	sc.timed = false
	sc.timeRequant = false
	if pt != nil {
		pt.Spans = append(pt.Spans[:0], spans...)
	} else {
		t.reg.Ring().Push(kind, t0, batch, spans)
	}
}

// stepStages advances every stage one timestep for a single-sample pass.
// The telemetry-off path is the exact pre-telemetry loop.
func (e *Engine) stepStages(sc *Scratch, cur *act) *act {
	t := e.tel
	if t == nil {
		for _, s := range e.stages {
			cur = s.step(sc, cur)
		}
		return cur
	}
	if sc.timed {
		for i, s := range e.stages {
			prevOps := sc.synOps
			pprof.SetGoroutineLabels(t.labels[i])
			start := time.Now()
			cur = s.step(sc, cur)
			sc.stageNS[i] += time.Since(start).Nanoseconds()
			sc.stageOps[i] += sc.synOps - prevOps
		}
		pprof.SetGoroutineLabels(t.base)
		return cur
	}
	for i, s := range e.stages {
		prevOps := sc.synOps
		cur = s.step(sc, cur)
		sc.stageOps[i] += sc.synOps - prevOps
	}
	return cur
}

// stepStagesBatch advances every stage one timestep for a coalesced pass,
// accumulating the batch's telemetry on sc0: per-stage SynOps summed over
// samples always, per-stage wall-clock around the stage-major inner loop
// when the pass is traced. Only called when telemetry is active; the
// telemetry-off batch loop stays inline in inferBatch.
func (e *Engine) stepStagesBatch(scs []*Scratch, cur []*act, sc0 *Scratch) {
	t := e.tel
	for si, st := range e.stages {
		var start time.Time
		if sc0.timed {
			pprof.SetGoroutineLabels(t.labels[si])
			start = time.Now()
		}
		for i := range scs {
			prevOps := scs[i].synOps
			cur[i] = st.step(scs[i], cur[i])
			sc0.stageOps[si] += scs[i].synOps - prevOps
		}
		if sc0.timed {
			sc0.stageNS[si] += time.Since(start).Nanoseconds()
		}
	}
	if sc0.timed {
		pprof.SetGoroutineLabels(t.base)
	}
}

// growInt64 returns a zeroed int64 buffer of length n, reusing buf's
// storage when it is large enough.
func growInt64(buf []int64, n int) []int64 {
	if cap(buf) < n {
		return make([]int64, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}
