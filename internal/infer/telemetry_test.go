package infer_test

import (
	"strings"
	"testing"

	"ndsnn/internal/data"
	"ndsnn/internal/infer"
	"ndsnn/internal/obs"
	"ndsnn/internal/tensor"
	"ndsnn/internal/testutil"
)

// telemetryFixture returns a briefly trained tiny net's engines (float and
// 8-bit integer) plus a few test samples.
func telemetryFixture(t *testing.T) (*infer.Engine, *infer.Engine, []*tensor.Tensor) {
	t.Helper()
	ds := data.SynthEasy(4, 64, 16, 51)
	net := testutil.TinyNet(4, 2, 13)
	trainBriefly(t, net, ds)
	eng, err := infer.Compile(net)
	if err != nil {
		t.Fatal(err)
	}
	qeng, err := infer.CompileQuantized(net, 8)
	if err != nil {
		t.Fatal(err)
	}
	pix := ds.Config.C * ds.Config.H * ds.Config.W
	var samples []*tensor.Tensor
	for i := 0; i < 6; i++ {
		samples = append(samples, tensor.FromSlice(ds.Test.Images[i*pix:(i+1)*pix], 3, 16, 16))
	}
	return eng, qeng, samples
}

func TestTelemetryBitIdentical(t *testing.T) {
	// Telemetry only times and counts — enabling it (with every pass traced,
	// the most instrumented mode) must not move a single output bit, on
	// either the float or the integer engine, single-sample or batched.
	eng, qeng, samples := telemetryFixture(t)
	for _, e := range []*infer.Engine{eng, qeng} {
		var before [][]float32
		for _, s := range samples {
			before = append(before, e.Infer(s))
		}
		batchBefore := e.InferBatch(samples)
		e.EnableTelemetry(obs.New(), 1)
		for i, s := range samples {
			got := e.Infer(s)
			for j := range got {
				if got[j] != before[i][j] {
					t.Fatalf("sample %d score %d: %v with telemetry vs %v without", i, j, got[j], before[i][j])
				}
			}
		}
		var pt infer.PassTrace
		for bi, row := range e.InferBatchTraced(samples, &pt) {
			for j := range row {
				if row[j] != batchBefore[bi][j] {
					t.Fatalf("batch sample %d score %d moved under telemetry", bi, j)
				}
			}
		}
		if len(pt.Spans) == 0 {
			t.Fatal("traced batch returned no spans")
		}
	}
}

func TestTelemetryPerStageAccounting(t *testing.T) {
	eng, qeng, samples := telemetryFixture(t)
	_ = eng
	reg := obs.New()
	qeng.EnableTelemetry(reg, 1)
	qeng.ResetStats()
	for _, s := range samples {
		qeng.Infer(s)
	}
	qeng.InferBatch(samples)
	s := reg.Snapshot()

	// Per-stage SynOps must sum exactly to the engine roll-up: the stage
	// deltas partition the same tally.
	var perStage int64
	for _, name := range qeng.Telemetry().StageNames() {
		perStage += s.Counter(`infer_stage_synops_total{stage="` + name + `"}`)
	}
	if perStage != qeng.SynOps() {
		t.Fatalf("per-stage SynOps %d != engine SynOps %d", perStage, qeng.SynOps())
	}

	// Every pass was traced: pass and per-stage latency histograms carry one
	// record per pass, and the trace ring holds infer-kind traces with the
	// stage span layout plus the integer engine's requant overlay.
	passes := uint64(len(samples) + 1) // 6 single + 1 batch
	if h := s.Hist("infer_pass_ns"); h == nil || h.Count != passes {
		t.Fatalf("infer_pass_ns count: %+v, want %d", h, passes)
	}
	// The direct-encoding first conv stays float (analog input); a later
	// spike-fed conv must have compiled to integer.
	names := qeng.Telemetry().StageNames()
	if !strings.Contains(strings.Join(names, " "), "qconv") {
		t.Fatalf("stage names: %v, want a qconv stage", names)
	}
	if h := s.Hist(`infer_stage_ns{stage="` + names[0] + `"}`); h == nil || h.Count != passes {
		t.Fatalf("stage histogram: %+v, want %d records", h, passes)
	}
	if len(s.Traces) == 0 {
		t.Fatal("no traces in ring")
	}
	last := s.Traces[len(s.Traces)-1]
	if last.Kind != "infer" || last.Batch != len(samples) {
		t.Fatalf("last trace kind=%q batch=%d, want infer/%d", last.Kind, last.Batch, len(samples))
	}
	sawRequant := false
	for _, sp := range last.Spans {
		if sp.Name == "requant" {
			sawRequant = true
		}
	}
	if !sawRequant {
		t.Fatalf("integer engine trace missing requant span: %+v", last.Spans)
	}

	// Pool accounting: every arena draw is classified, misses only allocate.
	hits := s.Counter("infer_scratch_pool_hit_total")
	misses := s.Counter("infer_scratch_pool_miss_total")
	if misses < 1 || hits+misses != int64(2*len(samples)) {
		t.Fatalf("pool hit/miss %d/%d, want %d total with ≥1 miss", hits, misses, 2*len(samples))
	}
}

func TestTelemetryDisabledTraceCollect(t *testing.T) {
	// InferBatchTraced without telemetry degrades to InferBatch with an
	// empty span buffer — the serving layer need not special-case it.
	eng, _, samples := telemetryFixture(t)
	pt := infer.PassTrace{Spans: make([]obs.Span, 3)}
	want := eng.InferBatch(samples)
	got := eng.InferBatchTraced(samples, &pt)
	if len(pt.Spans) != 0 {
		t.Fatalf("disabled engine left %d spans", len(pt.Spans))
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatal("outputs moved")
			}
		}
	}
}

func TestTelemetryAllocFreeSteadyState(t *testing.T) {
	// With telemetry on and every pass traced — the most expensive mode —
	// warmed steady-state inference must not allocate: telemetry
	// accumulators live in the arena, spans reuse their buffer, and the
	// trace ring recycles slot storage.
	eng, qeng, samples := telemetryFixture(t)
	for _, e := range []*infer.Engine{eng, qeng} {
		e.EnableTelemetry(obs.New(), 1)
		sc := e.NewScratch()
		// Warm past the trace ring depth so every slot's span storage exists.
		for i := 0; i < 72; i++ {
			e.InferScratch(sc, samples[0])
		}
		if allocs := testing.AllocsPerRun(100, func() { e.InferScratch(sc, samples[0]) }); allocs != 0 {
			t.Fatalf("traced steady-state InferScratch allocates %.1f objects/op, want 0", allocs)
		}
	}
}
