package layers

import (
	"fmt"
	"math"

	"ndsnn/internal/tensor"
)

// BatchNorm normalizes per channel over the batch (and spatial dims for 4-D
// inputs), with learned affine parameters. For SNNs it is applied
// independently at each timestep, which is the per-step variant of the
// threshold-dependent BN used by directly-trained deep SNNs; running
// statistics are tracked across all timesteps for inference.
type BatchNorm struct {
	C        int
	Eps      float32
	Momentum float32

	// Gamma (scale) and Beta (shift), each of shape [C].
	Gamma *Param
	Beta  *Param

	// Running statistics for eval mode.
	RunningMean *tensor.Tensor
	RunningVar  *tensor.Tensor

	caches cacheStack[*bnCache]
}

type bnCache struct {
	xhat   *tensor.Tensor
	invstd []float32
	b, s   int // batch size, spatial size
}

// NewBatchNorm constructs a BatchNorm over c channels (gamma=1, beta=0).
func NewBatchNorm(name string, c int) *BatchNorm {
	g := tensor.New(c)
	g.Fill(1)
	rv := tensor.New(c)
	rv.Fill(1)
	bn := &BatchNorm{
		C: c, Eps: 1e-5, Momentum: 0.1,
		Gamma:       NewParam(name+".gamma", g),
		Beta:        NewParam(name+".beta", tensor.New(c)),
		RunningMean: tensor.New(c),
		RunningVar:  rv,
	}
	bn.Gamma.NoDecay, bn.Gamma.NoPrune = true, true
	bn.Beta.NoDecay, bn.Beta.NoPrune = true, true
	return bn
}

// dims interprets x as [B, C, S] where S is the flattened spatial extent.
func (l *BatchNorm) dims(x *tensor.Tensor) (b, s int) {
	switch x.NumDims() {
	case 2:
		if x.Dim(1) != l.C {
			panic(fmt.Sprintf("layers: BatchNorm expects %d channels, got %v", l.C, x.Shape()))
		}
		return x.Dim(0), 1
	case 4:
		if x.Dim(1) != l.C {
			panic(fmt.Sprintf("layers: BatchNorm expects %d channels, got %v", l.C, x.Shape()))
		}
		return x.Dim(0), x.Dim(2) * x.Dim(3)
	default:
		panic(fmt.Sprintf("layers: BatchNorm supports 2-D/4-D inputs, got %v", x.Shape()))
	}
}

// Forward normalizes one timestep.
func (l *BatchNorm) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	b, s := l.dims(x)
	out := tensor.New(x.Shape()...)
	cs := l.C * s
	if !train {
		for c := 0; c < l.C; c++ {
			mean := l.RunningMean.Data[c]
			invstd := float32(1 / math.Sqrt(float64(l.RunningVar.Data[c]+l.Eps)))
			g, bta := l.Gamma.W.Data[c], l.Beta.W.Data[c]
			for bi := 0; bi < b; bi++ {
				base := bi*cs + c*s
				for i := 0; i < s; i++ {
					out.Data[base+i] = g*(x.Data[base+i]-mean)*invstd + bta
				}
			}
		}
		return out
	}

	n := float64(b * s)
	cache := &bnCache{xhat: tensor.New(x.Shape()...), invstd: make([]float32, l.C), b: b, s: s}
	for c := 0; c < l.C; c++ {
		var sum, sumsq float64
		for bi := 0; bi < b; bi++ {
			base := bi*cs + c*s
			for i := 0; i < s; i++ {
				v := float64(x.Data[base+i])
				sum += v
				sumsq += v * v
			}
		}
		mean := sum / n
		variance := sumsq/n - mean*mean
		if variance < 0 {
			variance = 0
		}
		invstd := float32(1 / math.Sqrt(variance+float64(l.Eps)))
		cache.invstd[c] = invstd
		meanF := float32(mean)
		g, bta := l.Gamma.W.Data[c], l.Beta.W.Data[c]
		for bi := 0; bi < b; bi++ {
			base := bi*cs + c*s
			for i := 0; i < s; i++ {
				xh := (x.Data[base+i] - meanF) * invstd
				cache.xhat.Data[base+i] = xh
				out.Data[base+i] = g*xh + bta
			}
		}
		l.RunningMean.Data[c] = (1-l.Momentum)*l.RunningMean.Data[c] + l.Momentum*meanF
		l.RunningVar.Data[c] = (1-l.Momentum)*l.RunningVar.Data[c] + l.Momentum*float32(variance)
	}
	l.caches.push(cache)
	return out
}

// Backward computes the standard batch-norm gradient for the most recent
// cached timestep.
func (l *BatchNorm) Backward(dy *tensor.Tensor) *tensor.Tensor {
	cache := l.caches.pop()
	b, s := cache.b, cache.s
	cs := l.C * s
	n := float32(b * s)
	dx := tensor.New(dy.Shape()...)
	for c := 0; c < l.C; c++ {
		var sumDy, sumDyXhat float64
		for bi := 0; bi < b; bi++ {
			base := bi*cs + c*s
			for i := 0; i < s; i++ {
				d := float64(dy.Data[base+i])
				sumDy += d
				sumDyXhat += d * float64(cache.xhat.Data[base+i])
			}
		}
		l.Beta.Grad.Data[c] += float32(sumDy)
		l.Gamma.Grad.Data[c] += float32(sumDyXhat)
		g := l.Gamma.W.Data[c]
		invstd := cache.invstd[c]
		meanDy := float32(sumDy) / n
		meanDyXhat := float32(sumDyXhat) / n
		for bi := 0; bi < b; bi++ {
			base := bi*cs + c*s
			for i := 0; i < s; i++ {
				xh := cache.xhat.Data[base+i]
				dx.Data[base+i] = g * invstd * (dy.Data[base+i] - meanDy - xh*meanDyXhat)
			}
		}
	}
	return dx
}

// Params returns gamma and beta.
func (l *BatchNorm) Params() []*Param { return []*Param{l.Gamma, l.Beta} }

// Reset drops cached timesteps (running statistics persist).
func (l *BatchNorm) Reset() { l.caches.clear() }
