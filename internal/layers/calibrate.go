package layers

import (
	"sync"
	"time"

	"ndsnn/internal/rng"
	"ndsnn/internal/sparse"
	"ndsnn/internal/tensor"
)

// Adaptive CSRMaxDensity: instead of the hard-coded 0.5 default, measure the
// density at which the CSR forward kernel actually stops beating dense GEMM
// on this hardware for a given layer shape. The crossover depends on the
// relative cost of indexed loads vs contiguous multiply-adds and on how much
// of the operands fits in cache, so it varies by machine and by shape —
// measured values on typical x86 are nearer 0.7 than 0.5.

// calibrationCache memoizes measured crossovers per probe shape so a network
// with many same-shaped layers pays for one probe.
var calibrationCache struct {
	sync.Mutex
	m map[[3]int]float64
}

// csrProbeIters is the number of timed repetitions per probe point (median
// taken); small because the probe only needs to rank two kernels, not
// produce publishable numbers.
const csrProbeIters = 3

// CSRCrossoverDensity measures the live-weight density at which the CSR
// forward kernel's wall-clock matches dense GEMM for a [rows,cols]×[cols,
// patch] product — the calibrated replacement for the CSRMaxDensity default.
// Oversized shapes are clamped to a cache-friendly proxy (the crossover is a
// per-element property, so a shrunken probe ranks the kernels the same way
// at a fraction of the cost), and results are memoized per probe shape. The
// returned density is clamped to [0.05, 0.95].
func CSRCrossoverDensity(rows, cols, patch int) float64 {
	// Clamp to the proxy shape: big enough to escape fixed overheads, small
	// enough that a full calibration stays in the tens of milliseconds.
	if rows > 96 {
		rows = 96
	}
	if cols > 768 {
		cols = 768
	}
	if patch > 32 {
		patch = 32
	}
	if patch < 4 {
		patch = 4
	}
	key := [3]int{rows, cols, patch}
	calibrationCache.Lock()
	if d, ok := calibrationCache.m[key]; ok {
		calibrationCache.Unlock()
		return d
	}
	calibrationCache.Unlock()

	d := measureCrossover(rows, cols, patch)

	calibrationCache.Lock()
	if calibrationCache.m == nil {
		calibrationCache.m = map[[3]int]float64{}
	}
	calibrationCache.m[key] = d
	calibrationCache.Unlock()
	return d
}

func measureCrossover(rows, cols, patch int) float64 {
	r := rng.New(0x5eed)
	b := tensor.New(cols, patch)
	for i := range b.Data {
		b.Data[i] = r.NormFloat32()
	}
	yD := tensor.New(rows, patch)
	yC := tensor.New(rows, patch)
	w := tensor.New(rows, cols)
	mask := tensor.New(rows, cols)

	probes := []float64{0.2, 0.35, 0.5, 0.65, 0.8, 0.95}
	speedups := make([]float64, len(probes))
	for i, density := range probes {
		w.Zero()
		mask.Zero()
		for j := range w.Data {
			if r.Float64() < density {
				mask.Data[j] = 1
				w.Data[j] = r.NormFloat32()
			}
		}
		c := sparse.EncodeCSRWithMask(w, mask)
		dense := medianProbeNs(func() { tensor.MatMulSerialInto(yD, w, b, false) })
		csr := medianProbeNs(func() { sparse.CSRMatMulSerialInto(yC, c, b, false) })
		if csr <= 0 {
			csr = 1
		}
		speedups[i] = float64(dense) / float64(csr)
	}
	// speedup decreases with density; find where it crosses 1 and linearly
	// interpolate between the bracketing probes.
	if speedups[0] < 1 {
		return 0.05 // CSR never wins at probed densities: keep it nearly off
	}
	for i := 1; i < len(probes); i++ {
		if speedups[i] < 1 {
			lo, hi := probes[i-1], probes[i]
			sLo, sHi := speedups[i-1], speedups[i]
			t := (sLo - 1) / (sLo - sHi)
			return lo + t*(hi-lo)
		}
	}
	return 0.95 // CSR wins everywhere probed
}

func medianProbeNs(fn func()) int64 {
	fn() // warm-up
	times := make([]int64, 0, csrProbeIters)
	for i := 0; i < csrProbeIters; i++ {
		start := time.Now()
		fn()
		times = append(times, time.Since(start).Nanoseconds())
	}
	for i := 1; i < len(times); i++ {
		for j := i; j > 0 && times[j] < times[j-1]; j-- {
			times[j], times[j-1] = times[j-1], times[j]
		}
	}
	return times[len(times)/2]
}

// CalibrateCSR measures the dense/CSR crossover for this convolution's GEMM
// shape on inputs of the given spatial size and stores it as the weight's
// per-param CSRMaxDensity override. Returns the measured crossover.
func (l *Conv2d) CalibrateCSR(inH, inW int) float64 {
	oh := tensor.ConvOutSize(inH, l.K, l.Stride, l.Pad)
	ow := tensor.ConvOutSize(inW, l.K, l.Stride, l.Pad)
	d := CSRCrossoverDensity(l.OutC, l.InC*l.K*l.K, oh*ow)
	l.Weight.CSRMaxDensity = d
	return d
}

// CalibrateCSR measures the dense/CSR crossover for this linear layer's GEMM
// shape at the given batch size and stores it as the weight's per-param
// CSRMaxDensity override. Returns the measured crossover.
func (l *Linear) CalibrateCSR(batch int) float64 {
	if batch < 1 {
		batch = 1
	}
	d := CSRCrossoverDensity(l.Out, l.In, batch)
	l.Weight.CSRMaxDensity = d
	return d
}
