package layers

import (
	"fmt"
	"runtime"
	"sync"

	"ndsnn/internal/rng"
	"ndsnn/internal/sparse"
	"ndsnn/internal/tensor"
)

// Conv2d is a 2-D convolution over [B,C,H,W] inputs with square kernels,
// symmetric zero padding and an im2col/GEMM implementation parallelized
// across the batch.
type Conv2d struct {
	InC, OutC, K, Stride, Pad int

	// Weight has shape [OutC, InC, K, K]; Bias (optional) has shape [OutC].
	Weight *Param
	Bias   *Param

	xs cacheStack[*tensor.Tensor]
}

// NewConv2d constructs a convolution layer with Kaiming-normal weights.
// When withBias is false the layer has no bias term (the usual choice when a
// BatchNorm follows).
func NewConv2d(name string, inC, outC, k, stride, pad int, withBias bool, r *rng.RNG) *Conv2d {
	w := tensor.New(outC, inC, k, k)
	KaimingNormal(w, inC*k*k, r)
	l := &Conv2d{
		InC: inC, OutC: outC, K: k, Stride: stride, Pad: pad,
		Weight: NewParam(name+".w", w),
	}
	if withBias {
		l.Bias = NewParam(name+".b", tensor.New(outC))
		l.Bias.NoDecay = true
		l.Bias.NoPrune = true
	}
	return l
}

// Forward computes one timestep of the convolution.
func (l *Conv2d) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	b, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	if c != l.InC {
		panic(fmt.Sprintf("layers: %s expects %d input channels, got %d", l.Weight.Name, l.InC, c))
	}
	oh := tensor.ConvOutSize(h, l.K, l.Stride, l.Pad)
	ow := tensor.ConvOutSize(w, l.K, l.Stride, l.Pad)
	p := oh * ow
	ckk := c * l.K * l.K
	out := tensor.New(b, l.OutC, oh, ow)
	wmat := l.Weight.W.Reshape(l.OutC, ckk)
	wcsr := l.Weight.SparseW()
	tensor.ParallelFor(b, l.OutC*ckk*p, func(lo, hi int) {
		col := make([]float32, ckk*p)
		colT := tensor.FromSlice(col, ckk, p)
		for bi := lo; bi < hi; bi++ {
			tensor.Im2Col(col, x.Data[bi*c*h*w:(bi+1)*c*h*w], c, h, w, l.K, l.K, l.Stride, l.Pad, oh, ow)
			yb := tensor.FromSlice(out.Data[bi*l.OutC*p:(bi+1)*l.OutC*p], l.OutC, p)
			if wcsr != nil {
				sparse.CSRMatMulSerialInto(yb, wcsr, colT, false)
			} else {
				tensor.MatMulSerialInto(yb, wmat, colT, false)
			}
			if l.Bias != nil {
				for f := 0; f < l.OutC; f++ {
					bv := l.Bias.W.Data[f]
					row := yb.Data[f*p : (f+1)*p]
					for j := range row {
						row[j] += bv
					}
				}
			}
		}
	})
	if train {
		l.xs.push(x)
	}
	return out
}

// Backward computes input gradients and accumulates weight/bias gradients
// for the most recent cached timestep.
func (l *Conv2d) Backward(dy *tensor.Tensor) *tensor.Tensor {
	x := l.xs.pop()
	b, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh, ow := dy.Dim(2), dy.Dim(3)
	p := oh * ow
	ckk := c * l.K * l.K
	dx := tensor.New(b, c, h, w)
	wmat := l.Weight.W.Reshape(l.OutC, ckk)
	wcsr := l.Weight.SparseW()
	// dX always rides the CSR path when available; dW does so only when the
	// trainer has declared active-position-only gradients acceptable.
	sparseGrad := wcsr != nil && l.Weight.SparseGradOK

	procs := runtime.GOMAXPROCS(0)
	if procs > b {
		procs = b
	}
	if procs < 1 {
		procs = 1
	}
	chunk := (b + procs - 1) / procs
	dwParts := make([]*tensor.Tensor, 0, procs)
	valParts := make([][]float32, 0, procs)
	dbParts := make([][]float32, 0, procs)
	var wg sync.WaitGroup
	for lo := 0; lo < b; lo += chunk {
		hi := lo + chunk
		if hi > b {
			hi = b
		}
		var dwLocal *tensor.Tensor
		var valLocal []float32
		if sparseGrad {
			valLocal = make([]float32, wcsr.NNZ())
			valParts = append(valParts, valLocal)
		} else {
			dwLocal = tensor.New(l.OutC, ckk)
			dwParts = append(dwParts, dwLocal)
		}
		var dbLocal []float32
		if l.Bias != nil {
			dbLocal = make([]float32, l.OutC)
		}
		dbParts = append(dbParts, dbLocal)
		wg.Add(1)
		go func(lo, hi int, dwLocal *tensor.Tensor, valLocal, dbLocal []float32) {
			defer wg.Done()
			col := make([]float32, ckk*p)
			colT := tensor.FromSlice(col, ckk, p)
			dcol := make([]float32, ckk*p)
			dcolT := tensor.FromSlice(dcol, ckk, p)
			for bi := lo; bi < hi; bi++ {
				tensor.Im2Col(col, x.Data[bi*c*h*w:(bi+1)*c*h*w], c, h, w, l.K, l.K, l.Stride, l.Pad, oh, ow)
				dyb := tensor.FromSlice(dy.Data[bi*l.OutC*p:(bi+1)*l.OutC*p], l.OutC, p)
				if sparseGrad {
					sparse.CSRGradABTSerial(valLocal, wcsr, dyb, colT)
				} else {
					tensor.MatMulABTSerialInto(dwLocal, dyb, colT, true)
				}
				if wcsr != nil {
					sparse.CSRMatMulATBSerialInto(dcolT, wcsr, dyb, false)
				} else {
					tensor.MatMulATBSerialInto(dcolT, wmat, dyb, false)
				}
				tensor.Col2Im(dx.Data[bi*c*h*w:(bi+1)*c*h*w], dcol, c, h, w, l.K, l.K, l.Stride, l.Pad, oh, ow)
				if dbLocal != nil {
					for f := 0; f < l.OutC; f++ {
						var s float32
						for _, v := range dyb.Data[f*p : (f+1)*p] {
							s += v
						}
						dbLocal[f] += s
					}
				}
			}
		}(lo, hi, dwLocal, valLocal, dbLocal)
	}
	wg.Wait()
	gw := l.Weight.Grad.Reshape(l.OutC, ckk)
	for _, part := range dwParts {
		gw.AddInPlace(part)
	}
	for _, part := range valParts {
		sparse.AddValsInto(gw, wcsr, part)
	}
	if l.Bias != nil {
		for _, part := range dbParts {
			for f, v := range part {
				l.Bias.Grad.Data[f] += v
			}
		}
	}
	return dx
}

// Params returns the weight and optional bias.
func (l *Conv2d) Params() []*Param {
	if l.Bias != nil {
		return []*Param{l.Weight, l.Bias}
	}
	return []*Param{l.Weight}
}

// Reset drops cached timesteps.
func (l *Conv2d) Reset() { l.xs.clear() }
