package layers

import (
	"fmt"
	"runtime"
	"sync"

	"ndsnn/internal/metrics"
	"ndsnn/internal/rng"
	"ndsnn/internal/sparse"
	"ndsnn/internal/tensor"
)

// Conv2d is a 2-D convolution over [B,C,H,W] inputs with square kernels,
// symmetric zero padding and an im2col/GEMM implementation parallelized
// across the batch.
type Conv2d struct {
	InC, OutC, K, Stride, Pad int

	// Weight has shape [OutC, InC, K, K]; Bias (optional) has shape [OutC].
	Weight *Param
	Bias   *Param

	xs     cacheStack[*tensor.Tensor]
	events eventTally
}

// NewConv2d constructs a convolution layer with Kaiming-normal weights.
// When withBias is false the layer has no bias term (the usual choice when a
// BatchNorm follows).
func NewConv2d(name string, inC, outC, k, stride, pad int, withBias bool, r *rng.RNG) *Conv2d {
	w := tensor.New(outC, inC, k, k)
	KaimingNormal(w, inC*k*k, r)
	l := &Conv2d{
		InC: inC, OutC: outC, K: k, Stride: stride, Pad: pad,
		Weight: NewParam(name+".w", w),
	}
	if withBias {
		l.Bias = NewParam(name+".b", tensor.New(outC))
		l.Bias.NoDecay = true
		l.Bias.NoPrune = true
	}
	return l
}

// Forward computes one timestep of the convolution.
//
// When the weight is CSR-encoded and the input turns out to be a binary
// spike tensor (detected while building the im2col expansion), the forward
// takes the dual-sparse event-driven kernel: work scales with
// weightDensity × spikeOccupancy instead of weightDensity alone. Inputs
// whose occupancy exceeds EventMaxRate, or that contain analog values (the
// first layer under direct encoding, or post-BatchNorm currents), fall back
// to the weight-only CSR or dense GEMM path. All three paths produce
// bit-identical outputs.
func (l *Conv2d) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	b, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	if c != l.InC {
		panic(fmt.Sprintf("layers: %s expects %d input channels, got %d", l.Weight.Name, l.InC, c))
	}
	oh := tensor.ConvOutSize(h, l.K, l.Stride, l.Pad)
	ow := tensor.ConvOutSize(w, l.K, l.Stride, l.Pad)
	p := oh * ow
	ckk := c * l.K * l.K
	out := tensor.New(b, l.OutC, oh, ow)
	wmat := l.Weight.W.Reshape(l.OutC, ckk)
	wcsr := l.Weight.SparseW()
	var wcsc *sparse.CSC
	if wcsr != nil {
		// The event kernel wants column-compressed weights (spikes select
		// weight columns); gathered once here, shared read-only by workers.
		wcsc = l.Weight.SparseWCSC()
	}
	maxRate := EventMaxRate
	tensor.ParallelFor(b, l.OutC*ckk*p, func(lo, hi int) {
		col := make([]float32, ckk*p)
		colT := tensor.FromSlice(col, ckk, p)
		var tally metrics.EventStats
		var rowPtr, evIdx []int32
		var colSeen []bool
		if wcsr != nil {
			rowPtr = make([]int32, ckk+1)
			colSeen = make([]bool, p)
		}
		for bi := lo; bi < hi; bi++ {
			src := x.Data[bi*c*h*w : (bi+1)*c*h*w]
			yb := tensor.FromSlice(out.Data[bi*l.OutC*p:(bi+1)*l.OutC*p], l.OutC, p)
			tally.Forwards++
			eventDone := false
			if wcsr != nil {
				var binary bool
				evIdx, binary = tensor.Im2ColEvents(col, src, c, h, w, l.K, l.K, l.Stride, l.Pad, oh, ow, rowPtr, evIdx[:0])
				if binary {
					ev := sparse.Events{Rows: ckk, Cols: p, RowPtr: rowPtr, ColIdx: evIdx}
					tally.Entries += int64(ckk * p)
					tally.ActiveEntries += int64(ev.NNZ())
					tally.Cols += int64(p)
					tally.ActiveCols += countActiveCols(evIdx, colSeen)
					// maxRate > 0 keeps the documented kill switch honest:
					// at 0, even all-zero (occupancy 0) inputs stay on the
					// weight-only path.
					if maxRate > 0 && ev.Occupancy() <= maxRate {
						sparse.CSCMatMulEventsSerialInto(yb, wcsc, &ev, false)
						tally.EventForwards++
						eventDone = true
					}
				}
			} else {
				tensor.Im2Col(col, src, c, h, w, l.K, l.K, l.Stride, l.Pad, oh, ow)
			}
			if !eventDone {
				if wcsr != nil {
					sparse.CSRMatMulSerialInto(yb, wcsr, colT, false)
				} else {
					tensor.MatMulSerialInto(yb, wmat, colT, false)
				}
			}
			if l.Bias != nil {
				for f := 0; f < l.OutC; f++ {
					bv := l.Bias.W.Data[f]
					row := yb.Data[f*p : (f+1)*p]
					for j := range row {
						row[j] += bv
					}
				}
			}
		}
		l.events.add(tally)
	})
	if train {
		l.xs.push(x)
	}
	return out
}

// countActiveCols counts the distinct column indices in evIdx, using seen as
// scratch (reset on entry; must cover every index in evIdx).
func countActiveCols(evIdx []int32, seen []bool) int64 {
	for j := range seen {
		seen[j] = false
	}
	var n int64
	for _, j := range evIdx {
		if !seen[j] {
			seen[j] = true
			n++
		}
	}
	return n
}

// EventStats returns the event-driven fast-path counters accumulated since
// the last ResetEventStats.
func (l *Conv2d) EventStats() metrics.EventStats { return l.events.snapshot() }

// ResetEventStats zeroes the event-path counters.
func (l *Conv2d) ResetEventStats() { l.events.reset() }

// Backward computes input gradients and accumulates weight/bias gradients
// for the most recent cached timestep.
func (l *Conv2d) Backward(dy *tensor.Tensor) *tensor.Tensor {
	x := l.xs.pop()
	b, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh, ow := dy.Dim(2), dy.Dim(3)
	p := oh * ow
	ckk := c * l.K * l.K
	dx := tensor.New(b, c, h, w)
	wmat := l.Weight.W.Reshape(l.OutC, ckk)
	wcsr := l.Weight.SparseW()
	// dX always rides the CSR path when available; dW does so only when the
	// trainer has declared active-position-only gradients acceptable.
	sparseGrad := wcsr != nil && l.Weight.SparseGradOK

	procs := runtime.GOMAXPROCS(0)
	if procs > b {
		procs = b
	}
	if procs < 1 {
		procs = 1
	}
	chunk := (b + procs - 1) / procs
	dwParts := make([]*tensor.Tensor, 0, procs)
	valParts := make([][]float32, 0, procs)
	dbParts := make([][]float32, 0, procs)
	var wg sync.WaitGroup
	for lo := 0; lo < b; lo += chunk {
		hi := lo + chunk
		if hi > b {
			hi = b
		}
		var dwLocal *tensor.Tensor
		var valLocal []float32
		if sparseGrad {
			valLocal = make([]float32, wcsr.NNZ())
			valParts = append(valParts, valLocal)
		} else {
			dwLocal = tensor.New(l.OutC, ckk)
			dwParts = append(dwParts, dwLocal)
		}
		var dbLocal []float32
		if l.Bias != nil {
			dbLocal = make([]float32, l.OutC)
		}
		dbParts = append(dbParts, dbLocal)
		wg.Add(1)
		go func(lo, hi int, dwLocal *tensor.Tensor, valLocal, dbLocal []float32) {
			defer wg.Done()
			col := make([]float32, ckk*p)
			colT := tensor.FromSlice(col, ckk, p)
			dcol := make([]float32, ckk*p)
			dcolT := tensor.FromSlice(dcol, ckk, p)
			for bi := lo; bi < hi; bi++ {
				tensor.Im2Col(col, x.Data[bi*c*h*w:(bi+1)*c*h*w], c, h, w, l.K, l.K, l.Stride, l.Pad, oh, ow)
				dyb := tensor.FromSlice(dy.Data[bi*l.OutC*p:(bi+1)*l.OutC*p], l.OutC, p)
				if sparseGrad {
					sparse.CSRGradABTSerial(valLocal, wcsr, dyb, colT)
				} else {
					tensor.MatMulABTSerialInto(dwLocal, dyb, colT, true)
				}
				if wcsr != nil {
					sparse.CSRMatMulATBSerialInto(dcolT, wcsr, dyb, false)
				} else {
					tensor.MatMulATBSerialInto(dcolT, wmat, dyb, false)
				}
				tensor.Col2Im(dx.Data[bi*c*h*w:(bi+1)*c*h*w], dcol, c, h, w, l.K, l.K, l.Stride, l.Pad, oh, ow)
				if dbLocal != nil {
					for f := 0; f < l.OutC; f++ {
						var s float32
						for _, v := range dyb.Data[f*p : (f+1)*p] {
							s += v
						}
						dbLocal[f] += s
					}
				}
			}
		}(lo, hi, dwLocal, valLocal, dbLocal)
	}
	wg.Wait()
	gw := l.Weight.Grad.Reshape(l.OutC, ckk)
	for _, part := range dwParts {
		gw.AddInPlace(part)
	}
	for _, part := range valParts {
		sparse.AddValsInto(gw, wcsr, part)
	}
	if l.Bias != nil {
		for _, part := range dbParts {
			for f, v := range part {
				l.Bias.Grad.Data[f] += v
			}
		}
	}
	return dx
}

// Params returns the weight and optional bias.
func (l *Conv2d) Params() []*Param {
	if l.Bias != nil {
		return []*Param{l.Weight, l.Bias}
	}
	return []*Param{l.Weight}
}

// Reset drops cached timesteps.
func (l *Conv2d) Reset() { l.xs.clear() }
