package layers

import (
	"fmt"
	"runtime"
	"sync"

	"ndsnn/internal/metrics"
	"ndsnn/internal/rng"
	"ndsnn/internal/sparse"
	"ndsnn/internal/tape"
	"ndsnn/internal/tensor"
)

// Conv2d is a 2-D convolution over [B,C,H,W] inputs with square kernels,
// symmetric zero padding and an im2col/GEMM implementation parallelized
// across the batch.
type Conv2d struct {
	InC, OutC, K, Stride, Pad int

	// Weight has shape [OutC, InC, K, K]; Bias (optional) has shape [OutC].
	Weight *Param
	Bias   *Param

	// xs is the layer's BPTT tape: per-timestep inputs, event-encoded when
	// they are binary spike tensors (see package tape). Backward replays it.
	xs     tape.Stack
	events eventTally
}

// NewConv2d constructs a convolution layer with Kaiming-normal weights.
// When withBias is false the layer has no bias term (the usual choice when a
// BatchNorm follows).
func NewConv2d(name string, inC, outC, k, stride, pad int, withBias bool, r *rng.RNG) *Conv2d {
	w := tensor.New(outC, inC, k, k)
	KaimingNormal(w, inC*k*k, r)
	l := &Conv2d{
		InC: inC, OutC: outC, K: k, Stride: stride, Pad: pad,
		Weight: NewParam(name+".w", w),
	}
	if withBias {
		l.Bias = NewParam(name+".b", tensor.New(outC))
		l.Bias.NoDecay = true
		l.Bias.NoPrune = true
	}
	return l
}

// convScratch bundles the per-worker buffers of the im2col/GEMM loop.
type convScratch struct {
	col     []float32
	colT    *tensor.Tensor
	rowPtr  []int32
	evIdx   []int32
	colSeen []bool
}

func newConvScratch(ckk, p int, withEvents bool) *convScratch {
	s := &convScratch{col: make([]float32, ckk*p)}
	s.colT = tensor.FromSlice(s.col, ckk, p)
	if withEvents {
		s.rowPtr = make([]int32, ckk+1)
		s.colSeen = make([]bool, p)
	}
	return s
}

func (l *Conv2d) geometry(x *tensor.Tensor) (b, c, h, w, oh, ow, p, ckk int) {
	b, c, h, w = x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	if c != l.InC {
		panic(fmt.Sprintf("layers: %s expects %d input channels, got %d", l.Weight.Name, l.InC, c))
	}
	oh = tensor.ConvOutSize(h, l.K, l.Stride, l.Pad)
	ow = tensor.ConvOutSize(w, l.K, l.Stride, l.Pad)
	p = oh * ow
	ckk = c * l.K * l.K
	return
}

// forwardSample runs one sample-timestep's GEMM into yb (shape [OutC, p]),
// choosing between the event-driven, weight-only CSR and dense paths exactly
// as documented on Forward, and adds the bias. A non-nil wbands routes the
// event path through the banded parallel kernel (sparse.Workers > 1);
// outputs are bit-identical either way.
func (l *Conv2d) forwardSample(yb *tensor.Tensor, src []float32, c, h, w, oh, ow int,
	wmat *tensor.Tensor, wcsr *sparse.CSR, wcsc *sparse.CSC, wbands *sparse.CSCBands, s *convScratch,
	tally *metrics.EventStats, maxRate float64) {
	p := oh * ow
	ckk := c * l.K * l.K
	tally.Forwards++
	eventDone := false
	if wcsr != nil {
		var binary bool
		s.evIdx, binary = tensor.Im2ColEvents(s.col, src, c, h, w, l.K, l.K, l.Stride, l.Pad, oh, ow, s.rowPtr, s.evIdx[:0])
		if binary {
			ev := sparse.Events{Rows: ckk, Cols: p, RowPtr: s.rowPtr, ColIdx: s.evIdx}
			tally.Entries += int64(ckk * p)
			tally.ActiveEntries += int64(ev.NNZ())
			tally.Cols += int64(p)
			tally.ActiveCols += countActiveCols(s.evIdx, s.colSeen)
			// maxRate > 0 keeps the documented kill switch honest: at 0, even
			// all-zero (occupancy 0) inputs stay on the weight-only path.
			if maxRate > 0 && ev.Occupancy() <= maxRate {
				if wbands != nil {
					sparse.CSCMatMulEventsInto(yb, wbands, &ev, false)
				} else {
					sparse.CSCMatMulEventsSerialInto(yb, wcsc, &ev, false)
				}
				tally.EventForwards++
				eventDone = true
			}
		}
	} else {
		tensor.Im2Col(s.col, src, c, h, w, l.K, l.K, l.Stride, l.Pad, oh, ow)
	}
	if !eventDone {
		if wcsr != nil {
			sparse.CSRMatMulSerialInto(yb, wcsr, s.colT, false)
		} else {
			tensor.MatMulSerialInto(yb, wmat, s.colT, false)
		}
	}
	l.addBias(yb, p)
}

func (l *Conv2d) addBias(yb *tensor.Tensor, p int) {
	if l.Bias == nil {
		return
	}
	for f := 0; f < l.OutC; f++ {
		bv := l.Bias.W.Data[f]
		row := yb.Data[f*p : (f+1)*p]
		for j := range row {
			row[j] += bv
		}
	}
}

// Forward computes one timestep of the convolution.
//
// When the weight is CSR-encoded and the input turns out to be a binary
// spike tensor (detected while building the im2col expansion), the forward
// takes the dual-sparse event-driven kernel: work scales with
// weightDensity × spikeOccupancy instead of weightDensity alone. Inputs
// whose occupancy exceeds EventMaxRate, or that contain analog values (the
// first layer under direct encoding, or post-BatchNorm currents), fall back
// to the weight-only CSR or dense GEMM path. All three paths produce
// bit-identical outputs.
//
// During training the input is recorded on the layer's tape — event-encoded
// when binary — and Backward replays it.
func (l *Conv2d) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	b, c, h, w, oh, ow, p, ckk := l.geometry(x)
	out := tensor.New(b, l.OutC, oh, ow)
	wmat := l.Weight.W.Reshape(l.OutC, ckk)
	wcsr := l.Weight.SparseW()
	var wcsc *sparse.CSC
	var wbands *sparse.CSCBands
	if wcsr != nil {
		// The event kernel wants column-compressed weights (spikes select
		// weight columns); gathered once here, shared read-only by workers.
		// Batches too narrow to fill sparse.Workers batch-parallel lanes
		// take the row-banded bucketing instead: the per-sample event GEMM
		// itself fans out (bit-identical results). Wide batches already
		// saturate the host, so they skip the banded gather entirely.
		if b < sparse.EffectiveWorkers(l.OutC) {
			wbands = l.Weight.SparseWCSCBands()
		}
		if wbands == nil {
			wcsc = l.Weight.SparseWCSC()
		}
	}
	maxRate := EventMaxRate
	tensor.ParallelFor(b, l.OutC*ckk*p, func(lo, hi int) {
		s := newConvScratch(ckk, p, wcsr != nil)
		var tally metrics.EventStats
		for bi := lo; bi < hi; bi++ {
			src := x.Data[bi*c*h*w : (bi+1)*c*h*w]
			yb := tensor.FromSlice(out.Data[bi*l.OutC*p:(bi+1)*l.OutC*p], l.OutC, p)
			l.forwardSample(yb, src, c, h, w, oh, ow, wmat, wcsr, wcsc, wbands, s, &tally, maxRate)
		}
		l.events.add(tally)
	})
	if train {
		l.xs.Push(x)
	}
	return out
}

// ForwardSeq is the time-major fast path: it processes all T timesteps of a
// batch in one call. When the weight is CSR-encoded and a sample's inputs
// are binary across every timestep (with fused occupancy at most
// EventMaxRate), the T event patterns are merged with sparse.FuseTimesteps
// and a single CSCMatMulEventsSerialInto computes all T products in one
// traversal of the weight matrix — the batched-timestep GEMM, end-to-end.
// Samples with analog or high-occupancy timesteps fall back to the same
// per-timestep decisions Forward makes. Outputs are bit-identical to T
// Forward calls, and the tape records the same per-timestep entries.
func (l *Conv2d) ForwardSeq(xs []*tensor.Tensor, train bool) []*tensor.Tensor {
	T := len(xs)
	if T == 0 {
		return nil
	}
	wcsr := l.Weight.SparseW()
	if wcsr == nil || T == 1 {
		// No fusion opportunity: drive the per-timestep path.
		outs := make([]*tensor.Tensor, T)
		for t, x := range xs {
			outs[t] = l.Forward(x, train)
		}
		return outs
	}
	b, c, h, w, oh, ow, p, ckk := l.geometry(xs[0])
	for _, x := range xs[1:] {
		if !x.SameShape(xs[0]) {
			panic(fmt.Sprintf("layers: %s ForwardSeq timestep shapes diverge: %v vs %v", l.Weight.Name, x.Shape(), xs[0].Shape()))
		}
	}
	wmat := l.Weight.W.Reshape(l.OutC, ckk)
	// Same narrow-batch gate as Forward: kernel-level fan-out only when the
	// batch dimension cannot fill the workers on its own.
	var wbands *sparse.CSCBands
	if b < sparse.EffectiveWorkers(l.OutC) {
		wbands = l.Weight.SparseWCSCBands()
	}
	var wcsc *sparse.CSC
	if wbands == nil {
		wcsc = l.Weight.SparseWCSC()
	}
	outs := make([]*tensor.Tensor, T)
	for t := range outs {
		outs[t] = tensor.New(b, l.OutC, oh, ow)
	}
	maxRate := EventMaxRate
	chw := c * h * w
	tensor.ParallelFor(b, T*l.OutC*ckk*p, func(lo, hi int) {
		s := newConvScratch(ckk, p, true)
		// Per-timestep pattern buffers, reused across samples; the fused call
		// needs all T patterns alive at once.
		rowPtrs := make([][]int32, T)
		evIdxs := make([][]int32, T)
		evs := make([]*sparse.Events, T)
		for t := range rowPtrs {
			rowPtrs[t] = make([]int32, ckk+1)
		}
		var flat []int32
		ybuf := tensor.New(l.OutC, T*p)
		var tally metrics.EventStats
		for bi := lo; bi < hi; bi++ {
			// Pass 1: extract every timestep's event pattern straight from
			// the input (O(chw + K²·nnz) — the fused kernel never reads a
			// dense column matrix); abandon fusion on the first analog
			// timestep.
			fusable := true
			totalNNZ := 0
			for t := 0; t < T; t++ {
				src := xs[t].Data[bi*chw : (bi+1)*chw]
				flat = flat[:0]
				for i, v := range src {
					if v == 0 {
						continue
					}
					if v != 1 {
						fusable = false
						break
					}
					flat = append(flat, int32(i))
				}
				if !fusable {
					break
				}
				evIdxs[t] = tensor.Im2ColPatternFromEvents(flat, c, h, w, l.K, l.K, l.Stride, l.Pad, oh, ow, rowPtrs[t], evIdxs[t][:0])
				evs[t] = &sparse.Events{Rows: ckk, Cols: p, RowPtr: rowPtrs[t], ColIdx: evIdxs[t]}
				totalNNZ += evs[t].NNZ()
			}
			occ := float64(totalNNZ) / float64(T*ckk*p)
			if fusable && maxRate > 0 && occ <= maxRate {
				for t := 0; t < T; t++ {
					tally.Forwards++
					tally.EventForwards++
					tally.Entries += int64(ckk * p)
					tally.ActiveEntries += int64(evs[t].NNZ())
					tally.Cols += int64(p)
					tally.ActiveCols += countActiveCols(evIdxs[t], s.colSeen)
				}
				fused := sparse.FuseTimesteps(evs)
				if wbands != nil {
					sparse.CSCMatMulEventsInto(ybuf, wbands, fused, false)
				} else {
					sparse.CSCMatMulEventsSerialInto(ybuf, wcsc, fused, false)
				}
				// Timestep t's output is ybuf[:, t·p:(t+1)·p].
				for t := 0; t < T; t++ {
					yb := tensor.FromSlice(outs[t].Data[bi*l.OutC*p:(bi+1)*l.OutC*p], l.OutC, p)
					for f := 0; f < l.OutC; f++ {
						copy(yb.Data[f*p:(f+1)*p], ybuf.Data[f*T*p+t*p:f*T*p+(t+1)*p])
					}
					l.addBias(yb, p)
				}
			} else {
				// Mixed or high-occupancy sample: per-timestep decisions,
				// identical to Forward (which re-tallies from scratch).
				for t := 0; t < T; t++ {
					src := xs[t].Data[bi*chw : (bi+1)*chw]
					yb := tensor.FromSlice(outs[t].Data[bi*l.OutC*p:(bi+1)*l.OutC*p], l.OutC, p)
					l.forwardSample(yb, src, c, h, w, oh, ow, wmat, wcsr, wcsc, wbands, s, &tally, maxRate)
				}
			}
		}
		l.events.add(tally)
	})
	if train {
		for _, x := range xs {
			l.xs.Push(x)
		}
	}
	return outs
}

// countActiveCols counts the distinct column indices in evIdx, using seen as
// scratch (reset on entry; must cover every index in evIdx).
func countActiveCols(evIdx []int32, seen []bool) int64 {
	for j := range seen {
		seen[j] = false
	}
	var n int64
	for _, j := range evIdx {
		if !seen[j] {
			seen[j] = true
			n++
		}
	}
	return n
}

// EventStats returns the event-driven fast-path counters accumulated since
// the last ResetEventStats.
func (l *Conv2d) EventStats() metrics.EventStats { return l.events.snapshot() }

// ResetEventStats zeroes the event-path counters.
func (l *Conv2d) ResetEventStats() { l.events.reset() }

// parallelGrad is the shared batch-partition/gradient-reduction scaffolding
// of the backward paths: it splits [0,b) across up to GOMAXPROCS workers,
// hands each a private gradient accumulator (a pattern-aligned vals slice
// when sparseGrad, else a dense dW tensor; plus a bias part when the layer
// has one), and after all workers finish folds the parts into
// Weight.Grad/Bias.Grad. body processes samples [lo,hi) and must only write
// its own accumulators.
func (l *Conv2d) parallelGrad(b, ckk int, wcsr *sparse.CSR, sparseGrad bool,
	body func(lo, hi int, dwLocal *tensor.Tensor, valLocal, dbLocal []float32)) {
	procs := runtime.GOMAXPROCS(0)
	if procs > b {
		procs = b
	}
	if procs < 1 {
		procs = 1
	}
	chunk := (b + procs - 1) / procs
	dwParts := make([]*tensor.Tensor, 0, procs)
	valParts := make([][]float32, 0, procs)
	dbParts := make([][]float32, 0, procs)
	var wg sync.WaitGroup
	for lo := 0; lo < b; lo += chunk {
		hi := lo + chunk
		if hi > b {
			hi = b
		}
		var dwLocal *tensor.Tensor
		var valLocal []float32
		if sparseGrad {
			valLocal = make([]float32, wcsr.NNZ())
			valParts = append(valParts, valLocal)
		} else {
			dwLocal = tensor.New(l.OutC, ckk)
			dwParts = append(dwParts, dwLocal)
		}
		var dbLocal []float32
		if l.Bias != nil {
			dbLocal = make([]float32, l.OutC)
		}
		dbParts = append(dbParts, dbLocal)
		wg.Add(1)
		go func(lo, hi int, dwLocal *tensor.Tensor, valLocal, dbLocal []float32) {
			defer wg.Done()
			body(lo, hi, dwLocal, valLocal, dbLocal)
		}(lo, hi, dwLocal, valLocal, dbLocal)
	}
	wg.Wait()
	gw := l.Weight.Grad.Reshape(l.OutC, ckk)
	for _, part := range dwParts {
		gw.AddInPlace(part)
	}
	for _, part := range valParts {
		sparse.AddValsInto(gw, wcsr, part)
	}
	if l.Bias != nil {
		for _, part := range dbParts {
			for f, v := range part {
				l.Bias.Grad.Data[f] += v
			}
		}
	}
}

// Backward computes input gradients and accumulates weight/bias gradients
// for the most recent cached timestep, replaying the tape: an event-encoded
// record rebuilds the im2col event pattern straight from the recorded
// spikes, and when active-position-only gradients are allowed the weight
// gradient consumes the pattern directly (CSRGradABTEventsSerial), skipping
// zero-spike rows — backward-weight work then scales with
// weightDensity × spikeOccupancy like the forward pass.
func (l *Conv2d) Backward(dy *tensor.Tensor) *tensor.Tensor {
	rec := l.xs.Pop()
	shape := rec.Shape()
	b, c, h, w := shape[0], shape[1], shape[2], shape[3]
	oh, ow := dy.Dim(2), dy.Dim(3)
	p := oh * ow
	ckk := c * l.K * l.K
	chw := c * h * w
	dx := tensor.New(b, c, h, w)
	wmat := l.Weight.W.Reshape(l.OutC, ckk)
	wcsr := l.Weight.SparseW()
	xDense := rec.Dense()
	xEv := rec.Events()
	// dX always rides the CSR path when available; dW does so only when the
	// trainer has declared active-position-only gradients acceptable.
	sparseGrad := wcsr != nil && l.Weight.SparseGradOK
	// Kernel-level SDDMM fan-out pays off only when the batch partition
	// leaves workers idle; wide batches keep the serial per-sample kernels.
	kernelWorkers := 1
	if wcsr != nil && b < sparse.EffectiveWorkers(wcsr.Rows) {
		kernelWorkers = sparse.EffectiveWorkers(wcsr.Rows)
	}

	l.parallelGrad(b, ckk, wcsr, sparseGrad, func(lo, hi int, dwLocal *tensor.Tensor, valLocal, dbLocal []float32) {
		col := make([]float32, ckk*p)
		colT := tensor.FromSlice(col, ckk, p)
		dcol := make([]float32, ckk*p)
		dcolT := tensor.FromSlice(dcol, ckk, p)
		var xbuf []float32
		var rowPtr, evIdx []int32
		if xEv != nil {
			rowPtr = make([]int32, ckk+1)
			if !sparseGrad {
				xbuf = make([]float32, chw)
			}
		}
		for bi := lo; bi < hi; bi++ {
			var ev *sparse.Events
			if xEv != nil && sparseGrad {
				// Replay: rebuild this sample's im2col event pattern straight
				// from the recorded input-space events — O(K²·nnz), no dense
				// expansion; the events SDDMM below never reads the column
				// matrix.
				flat := xEv.ColIdx[xEv.RowPtr[bi]:xEv.RowPtr[bi+1]]
				evIdx = tensor.Im2ColPatternFromEvents(flat, c, h, w, l.K, l.K, l.Stride, l.Pad, oh, ow, rowPtr, evIdx[:0])
				ev = &sparse.Events{Rows: ckk, Cols: p, RowPtr: rowPtr, ColIdx: evIdx}
			} else if xEv != nil {
				// Dense weight gradients need the full column matrix: decode
				// the sample's spikes, expand, erase in O(nnz).
				xEv.ScatterRowInto(bi, xbuf, 1)
				tensor.Im2Col(col, xbuf, c, h, w, l.K, l.K, l.Stride, l.Pad, oh, ow)
				xEv.ScatterRowInto(bi, xbuf, 0)
			} else {
				tensor.Im2Col(col, xDense.Data[bi*chw:(bi+1)*chw], c, h, w, l.K, l.K, l.Stride, l.Pad, oh, ow)
			}
			dyb := tensor.FromSlice(dy.Data[bi*l.OutC*p:(bi+1)*l.OutC*p], l.OutC, p)
			if sparseGrad {
				// kernelWorkers > 1 fans the SDDMM out over nnz-balanced row
				// blocks of the weight pattern (bit-identical accumulation;
				// each vals[p] is owned by one worker).
				if ev != nil {
					sparse.CSRGradABTEventsInto(valLocal, wcsr, dyb, ev, kernelWorkers)
				} else {
					sparse.CSRGradABTInto(valLocal, wcsr, dyb, colT, kernelWorkers)
				}
			} else {
				tensor.MatMulABTSerialInto(dwLocal, dyb, colT, true)
			}
			if wcsr != nil {
				sparse.CSRMatMulATBSerialInto(dcolT, wcsr, dyb, false)
			} else {
				tensor.MatMulATBSerialInto(dcolT, wmat, dyb, false)
			}
			tensor.Col2Im(dx.Data[bi*chw:(bi+1)*chw], dcol, c, h, w, l.K, l.K, l.Stride, l.Pad, oh, ow)
			if dbLocal != nil {
				for f := 0; f < l.OutC; f++ {
					var s float32
					for _, v := range dyb.Data[f*p : (f+1)*p] {
						s += v
					}
					dbLocal[f] += s
				}
			}
		}
	})
	return dx
}

// BackwardSeq consumes all T timestep gradients at once — the time-major
// backward replay. When every recorded timestep is event-encoded, the weight
// is CSR and active-position-only gradients are armed, the T im2col event
// patterns are rebuilt straight from the tape, merged by FuseTimesteps, and
// consumed by ONE events SDDMM against the column-concatenated dy — and
// backward-data likewise pays a single weight traversal for all T timesteps.
// The per-position pattern overhead and the CSR index loads amortize by T,
// which is where the tape's backward speedup lives. Anything else falls back
// to T Backward calls in reverse order. Input gradients are bit-identical to
// the step-major replay; weight/bias gradients accumulate the timesteps in
// ascending instead of descending order (float rounding only).
func (l *Conv2d) BackwardSeq(dys []*tensor.Tensor) []*tensor.Tensor {
	T := len(dys)
	wcsr := l.Weight.SparseW()
	fused := T > 1 && wcsr != nil && l.Weight.SparseGradOK && l.xs.Len() >= T
	if fused {
		for i := 0; i < T; i++ {
			if !l.xs.Peek(i).IsEvents() {
				fused = false
				break
			}
		}
	}
	if !fused {
		dxs := make([]*tensor.Tensor, T)
		for t := T - 1; t >= 0; t-- {
			dxs[t] = l.Backward(dys[t])
		}
		return dxs
	}
	recs := make([]*sparse.Events, T)
	var shape []int
	for t := T - 1; t >= 0; t-- {
		rec := l.xs.Pop()
		recs[t] = rec.Events()
		shape = rec.Shape()
	}
	b, c, h, w := shape[0], shape[1], shape[2], shape[3]
	oh, ow := dys[0].Dim(2), dys[0].Dim(3)
	p := oh * ow
	ckk := c * l.K * l.K
	chw := c * h * w
	dxs := make([]*tensor.Tensor, T)
	for t := range dxs {
		dxs[t] = tensor.New(b, c, h, w)
	}
	// Kernel-level SDDMM fan-out only when the batch partition leaves
	// workers idle, as in Backward.
	kernelWorkers := 1
	if b < sparse.EffectiveWorkers(wcsr.Rows) {
		kernelWorkers = sparse.EffectiveWorkers(wcsr.Rows)
	}

	l.parallelGrad(b, ckk, wcsr, true, func(lo, hi int, _ *tensor.Tensor, valLocal, dbLocal []float32) {
		rowPtrs := make([][]int32, T)
		evIdxs := make([][]int32, T)
		evs := make([]*sparse.Events, T)
		for t := range rowPtrs {
			rowPtrs[t] = make([]int32, ckk+1)
		}
		dyF := tensor.New(l.OutC, T*p)
		dcolF := tensor.New(ckk, T*p)
		dcol := make([]float32, ckk*p)
		for bi := lo; bi < hi; bi++ {
			for t := 0; t < T; t++ {
				flat := recs[t].ColIdx[recs[t].RowPtr[bi]:recs[t].RowPtr[bi+1]]
				evIdxs[t] = tensor.Im2ColPatternFromEvents(flat, c, h, w, l.K, l.K, l.Stride, l.Pad, oh, ow, rowPtrs[t], evIdxs[t][:0])
				evs[t] = &sparse.Events{Rows: ckk, Cols: p, RowPtr: rowPtrs[t], ColIdx: evIdxs[t]}
				// Column-concatenate the timestep gradients: dyF[f] holds
				// [t0 | t1 | …], matching the fused pattern's layout.
				src := dys[t].Data[bi*l.OutC*p : (bi+1)*l.OutC*p]
				for f := 0; f < l.OutC; f++ {
					copy(dyF.Data[f*T*p+t*p:f*T*p+(t+1)*p], src[f*p:(f+1)*p])
				}
			}
			evF := sparse.FuseTimesteps(evs)
			sparse.CSRGradABTEventsInto(valLocal, wcsr, dyF, evF, kernelWorkers)
			sparse.CSRMatMulATBSerialInto(dcolF, wcsr, dyF, false)
			for t := 0; t < T; t++ {
				for cc := 0; cc < ckk; cc++ {
					copy(dcol[cc*p:(cc+1)*p], dcolF.Data[cc*T*p+t*p:cc*T*p+(t+1)*p])
				}
				tensor.Col2Im(dxs[t].Data[bi*chw:(bi+1)*chw], dcol, c, h, w, l.K, l.K, l.Stride, l.Pad, oh, ow)
			}
			if dbLocal != nil {
				for f := 0; f < l.OutC; f++ {
					var s float32
					for _, v := range dyF.Data[f*T*p : (f+1)*T*p] {
						s += v
					}
					dbLocal[f] += s
				}
			}
		}
	})
	return dxs
}

// Params returns the weight and optional bias.
func (l *Conv2d) Params() []*Param {
	if l.Bias != nil {
		return []*Param{l.Weight, l.Bias}
	}
	return []*Param{l.Weight}
}

// Reset drops cached timesteps.
func (l *Conv2d) Reset() { l.xs.Clear() }
