package layers_test

import (
	"math"
	"testing"

	"ndsnn/internal/layers"
	"ndsnn/internal/rng"
	"ndsnn/internal/sparse"
	"ndsnn/internal/tensor"
)

// withCSRDensity runs fn with layers.CSRMaxDensity forced to d and restores
// the previous threshold afterwards. The cached per-param decision must be
// dropped by the caller (InvalidateCSR) when flipping thresholds on a live
// parameter.
func withCSRDensity(d float64, fn func()) {
	old := layers.CSRMaxDensity
	layers.CSRMaxDensity = d
	defer func() { layers.CSRMaxDensity = old }()
	fn()
}

func maskParam(p *layers.Param, density float64, r *rng.RNG) {
	p.Mask = sparse.RandomMask(p.W.Shape(), density, r)
	p.ApplyMask()
}

func randInput(r *rng.RNG, shape ...int) *tensor.Tensor {
	x := tensor.New(shape...)
	for i := range x.Data {
		x.Data[i] = r.NormFloat32()
	}
	return x
}

func maxDiff(a, b *tensor.Tensor) float64 {
	var m float64
	for i := range a.Data {
		d := math.Abs(float64(a.Data[i] - b.Data[i]))
		if d > m {
			m = d
		}
	}
	return m
}

// runLayer pushes x through one forward+backward and returns (y, dx, grad).
func runLayer(l layers.Layer, p *layers.Param, x, dy *tensor.Tensor) (*tensor.Tensor, *tensor.Tensor, *tensor.Tensor) {
	p.ZeroGrad()
	y := l.Forward(x.Clone(), true)
	dx := l.Backward(dy.Clone())
	return y, dx, p.Grad.Clone()
}

func TestConv2dCSRPathMatchesDense(t *testing.T) {
	for _, density := range []float64{0.02, 0.1, 0.4} {
		r := rng.New(31)
		l := layers.NewConv2d("c", 4, 8, 3, 1, 1, true, r)
		maskParam(l.Weight, density, r)
		x := randInput(r, 2, 4, 6, 6)
		dy := randInput(r, 2, 8, 6, 6)

		var yD, dxD, gD, yS, dxS, gS *tensor.Tensor
		withCSRDensity(0, func() { yD, dxD, gD = runLayer(l, l.Weight, x, dy) })
		l.Weight.InvalidateCSR()
		withCSRDensity(1, func() {
			if l.Weight.SparseW() == nil {
				t.Fatal("CSR path not engaged")
			}
			yS, dxS, gS = runLayer(l, l.Weight, x, dy)
		})
		l.Weight.InvalidateCSR()

		if d := maxDiff(yD, yS); d > 1e-5 {
			t.Fatalf("density %v: forward differs by %v", density, d)
		}
		if d := maxDiff(dxD, dxS); d > 1e-5 {
			t.Fatalf("density %v: dx differs by %v", density, d)
		}
		// SparseGradOK is false, so gradients must match densely.
		if d := maxDiff(gD, gS); d > 1e-5 {
			t.Fatalf("density %v: dense grad differs by %v", density, d)
		}

		// With SparseGradOK, gradients must match at active positions and be
		// zero at inactive ones.
		l.Weight.SparseGradOK = true
		withCSRDensity(1, func() { _, _, gS = runLayer(l, l.Weight, x, dy) })
		l.Weight.SparseGradOK = false
		l.Weight.InvalidateCSR()
		for i, m := range l.Weight.Mask.Data {
			if m != 0 {
				if d := math.Abs(float64(gS.Data[i] - gD.Data[i])); d > 1e-5 {
					t.Fatalf("density %v: sparse grad at active %d differs by %v", density, i, d)
				}
			} else if gS.Data[i] != 0 {
				t.Fatalf("density %v: sparse grad at inactive %d = %v", density, i, gS.Data[i])
			}
		}
	}
}

func TestLinearCSRPathMatchesDense(t *testing.T) {
	for _, density := range []float64{0.02, 0.1, 0.4} {
		r := rng.New(33)
		l := layers.NewLinear("fc", 40, 12, true, r)
		maskParam(l.Weight, density, r)
		x := randInput(r, 5, 40)
		dy := randInput(r, 5, 12)

		var yD, dxD, gD, yS, dxS, gS *tensor.Tensor
		withCSRDensity(0, func() { yD, dxD, gD = runLayer(l, l.Weight, x, dy) })
		l.Weight.InvalidateCSR()
		withCSRDensity(1, func() {
			if l.Weight.SparseW() == nil {
				t.Fatal("CSR path not engaged")
			}
			yS, dxS, gS = runLayer(l, l.Weight, x, dy)
		})
		l.Weight.InvalidateCSR()

		if d := maxDiff(yD, yS); d > 1e-5 {
			t.Fatalf("density %v: forward differs by %v", density, d)
		}
		if d := maxDiff(dxD, dxS); d > 1e-5 {
			t.Fatalf("density %v: dx differs by %v", density, d)
		}
		if d := maxDiff(gD, gS); d > 1e-5 {
			t.Fatalf("density %v: dense grad differs by %v", density, d)
		}

		l.Weight.SparseGradOK = true
		withCSRDensity(1, func() { _, _, gS = runLayer(l, l.Weight, x, dy) })
		l.Weight.SparseGradOK = false
		l.Weight.InvalidateCSR()
		for i, m := range l.Weight.Mask.Data {
			if m != 0 {
				if d := math.Abs(float64(gS.Data[i] - gD.Data[i])); d > 1e-5 {
					t.Fatalf("density %v: sparse grad at active %d differs by %v", density, i, d)
				}
			} else if gS.Data[i] != 0 {
				t.Fatalf("density %v: sparse grad at inactive %d = %v", density, i, gS.Data[i])
			}
		}
	}
}

// TestCSRCacheInvalidationOnMaskChange simulates a drop-and-grow round by
// hand: grow a previously-inactive weight, invalidate, and check the CSR
// forward sees it. Without invalidation the grown weight would be invisible
// to the cached pattern.
func TestCSRCacheInvalidationOnMaskChange(t *testing.T) {
	r := rng.New(35)
	l := layers.NewLinear("fc", 20, 6, false, r)
	maskParam(l.Weight, 0.2, r)
	x := randInput(r, 3, 20)

	withCSRDensity(1, func() {
		_ = l.Forward(x.Clone(), false) // builds the cache
		// Grow one inactive position and give it a non-zero value (as an
		// optimizer step after a rewire would).
		grown := -1
		for i, m := range l.Weight.Mask.Data {
			if m == 0 {
				grown = i
				break
			}
		}
		if grown < 0 {
			t.Fatal("no inactive position to grow")
		}
		l.Weight.Mask.Data[grown] = 1
		l.Weight.W.Data[grown] = 2.5
		l.Weight.InvalidateCSR()

		yS := l.Forward(x.Clone(), false)
		var yD *tensor.Tensor
		layers.CSRMaxDensity = 0
		l.Weight.InvalidateCSR()
		yD = l.Forward(x.Clone(), false)
		if d := maxDiff(yD, yS); d > 1e-5 {
			t.Fatalf("post-grow forward differs by %v (stale CSR cache?)", d)
		}
	})
	l.Weight.InvalidateCSR()
}
