package layers

import (
	"ndsnn/internal/rng"
	"ndsnn/internal/tensor"
)

// Dropout zeroes a random subset of activations during training, scaling the
// survivors by 1/(1-p) (inverted dropout). Following standard SNN practice,
// one mask is drawn per batch and shared across all timesteps, so the
// temporal spike statistics of a surviving unit are untouched.
type Dropout struct {
	P float64

	r     *rng.RNG
	mask  *tensor.Tensor // current batch's mask, lazily (re)created
	steps int            // forwards since Reset, to track backward pairing
}

// NewDropout constructs a dropout layer with drop probability p.
func NewDropout(p float64, r *rng.RNG) *Dropout { return &Dropout{P: p, r: r} }

// Forward applies the batch mask to one timestep.
func (l *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || l.P <= 0 {
		return x
	}
	if l.mask == nil || l.mask.Size() != x.Size() {
		l.mask = tensor.New(x.Shape()...)
		scale := float32(1 / (1 - l.P))
		for i := range l.mask.Data {
			if !l.r.Bernoulli(l.P) {
				l.mask.Data[i] = scale
			}
		}
	}
	l.steps++
	return tensor.Mul(x, l.mask)
}

// Backward applies the same mask to the gradient.
func (l *Dropout) Backward(dy *tensor.Tensor) *tensor.Tensor {
	if l.P <= 0 || l.mask == nil {
		return dy
	}
	l.steps--
	return tensor.Mul(dy, l.mask)
}

// Params returns nil; dropout has no parameters.
func (l *Dropout) Params() []*Param { return nil }

// Reset discards the batch mask so the next batch draws a fresh one.
func (l *Dropout) Reset() {
	l.mask = nil
	l.steps = 0
}
