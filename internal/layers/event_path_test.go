package layers_test

import (
	"testing"

	"ndsnn/internal/layers"
	"ndsnn/internal/rng"
	"ndsnn/internal/sparse"
	"ndsnn/internal/tensor"
)

// withEventRate runs fn with layers.EventMaxRate forced to rate and restores
// the previous gate afterwards.
func withEventRate(rate float64, fn func()) {
	old := layers.EventMaxRate
	layers.EventMaxRate = rate
	defer func() { layers.EventMaxRate = old }()
	fn()
}

// spikeTensor builds a binary {0,1} tensor with the given firing rate.
// rate 0 and 1 exercise the all-zero and all-ones edge cases.
func spikeTensor(r *rng.RNG, rate float64, shape ...int) *tensor.Tensor {
	x := tensor.New(shape...)
	for i := range x.Data {
		if r.Float64() < rate {
			x.Data[i] = 1
		}
	}
	return x
}

var eventRates = []float64{0, 0.05, 0.5, 1.0}

// TestConv2dEventPathMatchesDense is the layer-level event-driven ≡ dense
// property: for binary inputs across spike rates (including all-zero and
// all-ones), the event-driven forward must match the dense forward within
// 1e-5 (it is in fact bit-identical).
func TestConv2dEventPathMatchesDense(t *testing.T) {
	for _, rate := range eventRates {
		r := rng.New(201 + uint64(rate*100))
		l := layers.NewConv2d("c", 4, 8, 3, 1, 1, true, r)
		maskParam(l.Weight, 0.2, r)
		x := spikeTensor(r, rate, 2, 4, 6, 6)

		var yD, yE *tensor.Tensor
		withCSRDensity(0, func() { yD = l.Forward(x.Clone(), false) })
		l.Weight.InvalidateCSR()
		withCSRDensity(1, func() {
			withEventRate(1, func() { yE = l.Forward(x.Clone(), false) })
		})
		l.Weight.InvalidateCSR()

		st := l.EventStats()
		if st.EventForwards != st.Forwards/2 || st.EventForwards == 0 {
			t.Fatalf("rate %v: event path took %d of %d forwards, want the CSR half", rate, st.EventForwards, st.Forwards)
		}
		if d := maxDiff(yD, yE); d > 1e-5 {
			t.Fatalf("rate %v: event forward differs from dense by %v", rate, d)
		}
		// Occupancy is measured over the im2col expansion, so sanity-check
		// the bounds and the exact edge cases rather than an exact count.
		if rate == 0 && st.ActiveEntries != 0 {
			t.Fatalf("all-zero input recorded %d active entries", st.ActiveEntries)
		}
		if rate == 1 && st.ActiveCols != st.Cols {
			t.Fatalf("all-ones input: %d of %d columns active", st.ActiveCols, st.Cols)
		}
		if st.ActiveEntries > st.Entries || st.ActiveCols > st.Cols {
			t.Fatalf("rate %v: counters inconsistent: %+v", rate, st)
		}
	}
}

func TestLinearEventPathMatchesDense(t *testing.T) {
	for _, rate := range eventRates {
		r := rng.New(211 + uint64(rate*100))
		l := layers.NewLinear("fc", 40, 12, true, r)
		maskParam(l.Weight, 0.15, r)
		x := spikeTensor(r, rate, 5, 40)

		var yD, yE *tensor.Tensor
		withCSRDensity(0, func() { yD = l.Forward(x.Clone(), false) })
		l.Weight.InvalidateCSR()
		withCSRDensity(1, func() {
			withEventRate(1, func() { yE = l.Forward(x.Clone(), false) })
		})
		l.Weight.InvalidateCSR()

		st := l.EventStats()
		if st.EventForwards == 0 {
			t.Fatalf("rate %v: event path never engaged", rate)
		}
		if d := maxDiff(yD, yE); d > 1e-5 {
			t.Fatalf("rate %v: event forward differs from dense by %v", rate, d)
		}
	}
}

// TestEventPathFallsBackOnAnalogInput checks that non-binary inputs are
// routed to the weight-only CSR kernel and still match dense exactly.
func TestEventPathFallsBackOnAnalogInput(t *testing.T) {
	r := rng.New(221)
	l := layers.NewConv2d("c", 3, 6, 3, 1, 1, false, r)
	maskParam(l.Weight, 0.2, r)
	x := randInput(r, 2, 3, 5, 5) // analog currents, not spikes

	var yD, yS *tensor.Tensor
	withCSRDensity(0, func() { yD = l.Forward(x.Clone(), false) })
	l.Weight.InvalidateCSR()
	withCSRDensity(1, func() {
		withEventRate(1, func() { yS = l.Forward(x.Clone(), false) })
	})
	l.Weight.InvalidateCSR()

	if st := l.EventStats(); st.EventForwards != 0 {
		t.Fatalf("analog input took the event path %d times", st.EventForwards)
	}
	if d := maxDiff(yD, yS); d > 1e-5 {
		t.Fatalf("analog fallback differs from dense by %v", d)
	}
}

// TestEventMaxRateGate checks that the occupancy gate routes high-rate spike
// tensors away from the event kernel.
func TestEventMaxRateGate(t *testing.T) {
	r := rng.New(231)
	l := layers.NewConv2d("c", 3, 6, 3, 1, 1, false, r)
	maskParam(l.Weight, 0.2, r)
	x := spikeTensor(r, 0.9, 2, 3, 5, 5)
	withCSRDensity(1, func() {
		withEventRate(0.3, func() { l.Forward(x.Clone(), false) })
	})
	l.Weight.InvalidateCSR()
	st := l.EventStats()
	if st.EventForwards != 0 {
		t.Fatalf("90%% occupancy input took the event path %d times (gate 0.3)", st.EventForwards)
	}
	if st.ActiveEntries == 0 {
		t.Fatal("binary input not measured despite gate rejection")
	}

	// EventMaxRate = 0 is a kill switch: even an all-zero input (occupancy
	// 0) must stay on the weight-only path.
	l.ResetEventStats()
	silent := tensor.New(2, 3, 5, 5)
	withCSRDensity(1, func() {
		withEventRate(0, func() { l.Forward(silent, false) })
	})
	l.Weight.InvalidateCSR()
	if st := l.EventStats(); st.EventForwards != 0 {
		t.Fatalf("EventMaxRate=0 still routed %d forwards event-driven", st.EventForwards)
	}
}

// TestParamCSRMaxDensityOverride checks that the calibrated per-param
// threshold overrides the package default in both directions.
func TestParamCSRMaxDensityOverride(t *testing.T) {
	r := rng.New(241)
	p := layers.NewParam("w", tensor.New(8, 20))
	p.Mask = sparse.RandomMask(p.W.Shape(), 0.5, r)
	p.ApplyMask()

	withCSRDensity(1, func() {
		p.CSRMaxDensity = 0.01 // calibrated: CSR never wins for this shape
		if p.SparseW() != nil {
			t.Fatal("override low: SparseW should be nil")
		}
		p.CSRMaxDensity = 0.99 // calibrated: CSR wins at any density
		if p.SparseW() == nil {
			t.Fatal("override high: SparseW should engage")
		}
	})
	p.InvalidateCSR()
	withCSRDensity(0, func() {
		p.CSRMaxDensity = 0.99 // override beats the global kill switch too
		if p.SparseW() == nil {
			t.Fatal("per-param override should beat the package default")
		}
	})
}

// TestCSRCrossoverDensity sanity-checks the calibration probe: a plausible
// crossover in range, memoized, and wired through the layer helpers.
func TestCSRCrossoverDensity(t *testing.T) {
	d := layers.CSRCrossoverDensity(16, 64, 8)
	if d < 0.05 || d > 0.95 {
		t.Fatalf("crossover %v outside [0.05, 0.95]", d)
	}
	if d2 := layers.CSRCrossoverDensity(16, 64, 8); d2 != d {
		t.Fatalf("memoized probe returned %v then %v", d, d2)
	}
	r := rng.New(251)
	conv := layers.NewConv2d("c", 4, 8, 3, 1, 1, false, r)
	if got := conv.CalibrateCSR(6, 6); got != conv.Weight.CSRMaxDensity || got <= 0 {
		t.Fatalf("conv calibration not stored: got %v, param %v", got, conv.Weight.CSRMaxDensity)
	}
	lin := layers.NewLinear("fc", 64, 16, false, r)
	if got := lin.CalibrateCSR(4); got != lin.Weight.CSRMaxDensity || got <= 0 {
		t.Fatalf("linear calibration not stored: got %v, param %v", got, lin.Weight.CSRMaxDensity)
	}
}
