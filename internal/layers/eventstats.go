package layers

import (
	"sync/atomic"

	"ndsnn/internal/metrics"
)

// Event-path accounting: Conv2d and Linear tally how the event-driven
// forward fast path engaged (metrics.EventStats documents the fields) and
// expose the counters through EventStats/ResetEventStats; internal/snn
// aggregates them across a network so the efficiency accounting reflects
// actually-skipped work rather than the analytic spikeRate × density model
// alone. Linear layers have no im2col column structure and leave
// Cols/ActiveCols zero.

// EventRecorder is implemented by layers that maintain event-path counters.
type EventRecorder interface {
	EventStats() metrics.EventStats
	ResetEventStats()
}

// eventTally is the layer-side accumulator behind the EventStats method.
// Conv2d updates it from the per-batch worker goroutines, so all fields are
// atomics; workers pre-aggregate per chunk and publish once to keep the
// atomic traffic negligible next to the GEMMs.
type eventTally struct {
	forwards, eventForwards int64
	entries, activeEntries  int64
	cols, activeCols        int64
}

func (t *eventTally) add(c metrics.EventStats) {
	atomic.AddInt64(&t.forwards, c.Forwards)
	atomic.AddInt64(&t.eventForwards, c.EventForwards)
	atomic.AddInt64(&t.entries, c.Entries)
	atomic.AddInt64(&t.activeEntries, c.ActiveEntries)
	atomic.AddInt64(&t.cols, c.Cols)
	atomic.AddInt64(&t.activeCols, c.ActiveCols)
}

func (t *eventTally) snapshot() metrics.EventStats {
	return metrics.EventStats{
		Forwards:      atomic.LoadInt64(&t.forwards),
		EventForwards: atomic.LoadInt64(&t.eventForwards),
		Entries:       atomic.LoadInt64(&t.entries),
		ActiveEntries: atomic.LoadInt64(&t.activeEntries),
		Cols:          atomic.LoadInt64(&t.cols),
		ActiveCols:    atomic.LoadInt64(&t.activeCols),
	}
}

func (t *eventTally) reset() {
	atomic.StoreInt64(&t.forwards, 0)
	atomic.StoreInt64(&t.eventForwards, 0)
	atomic.StoreInt64(&t.entries, 0)
	atomic.StoreInt64(&t.activeEntries, 0)
	atomic.StoreInt64(&t.cols, 0)
	atomic.StoreInt64(&t.activeCols, 0)
}
