package layers

import (
	"math"

	"ndsnn/internal/rng"
	"ndsnn/internal/tensor"
)

// KaimingNormal fills t with N(0, sqrt(2/fanIn)) values, the standard
// initialization for layers followed by ReLU-like (spiking) nonlinearities.
func KaimingNormal(t *tensor.Tensor, fanIn int, r *rng.RNG) {
	std := float32(math.Sqrt(2.0 / float64(fanIn)))
	for i := range t.Data {
		t.Data[i] = r.NormFloat32() * std
	}
}

// KaimingUniform fills t with U(-b, b), b = sqrt(6/fanIn).
func KaimingUniform(t *tensor.Tensor, fanIn int, r *rng.RNG) {
	bound := float32(math.Sqrt(6.0 / float64(fanIn)))
	for i := range t.Data {
		t.Data[i] = (2*r.Float32() - 1) * bound
	}
}

// XavierNormal fills t with N(0, sqrt(2/(fanIn+fanOut))).
func XavierNormal(t *tensor.Tensor, fanIn, fanOut int, r *rng.RNG) {
	std := float32(math.Sqrt(2.0 / float64(fanIn+fanOut)))
	for i := range t.Data {
		t.Data[i] = r.NormFloat32() * std
	}
}
