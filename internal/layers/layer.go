// Package layers implements the neural-network layer library used to build
// spiking networks: convolution, linear, batch normalization, pooling,
// flatten and dropout, each with an explicit backward pass.
//
// Temporal protocol. SNNs are trained with backpropagation through time
// (BPTT): a network processes T timesteps per sample. A Layer's Forward is
// called once per timestep in order t = 0..T-1 (with train=true during
// training so the layer caches what its backward needs), and Backward is
// called once per timestep in reverse order t = T-1..0. Stateless layers
// maintain a stack of per-timestep caches; stateful layers (the LIF neuron
// in package snn) additionally carry error signals across Backward calls.
// Reset clears all temporal state and caches between batches.
//
// Weight gradients accumulate across timesteps (paper Eq. 2c sums over t),
// and across Backward calls until ZeroGrad, which matches how the optimizer
// consumes them once per batch.
package layers

import "ndsnn/internal/tensor"

// Layer is one stage of a temporally-unrolled spiking network.
type Layer interface {
	// Forward processes one timestep. When train is true the layer caches
	// whatever its Backward needs for this timestep.
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward consumes the output gradient for the most recent uncommitted
	// timestep (reverse order) and returns the input gradient. Parameter
	// gradients accumulate.
	Backward(dy *tensor.Tensor) *tensor.Tensor
	// Params returns the layer's trainable parameters (may be empty).
	Params() []*Param
	// Reset clears temporal state and cached activations.
	Reset()
}

// cacheStack is a simple LIFO of per-timestep caches shared by the
// stateless layers.
type cacheStack[T any] struct{ items []T }

func (s *cacheStack[T]) push(v T) { s.items = append(s.items, v) }

func (s *cacheStack[T]) pop() T {
	if len(s.items) == 0 {
		panic("layers: Backward called with no cached timestep (forgot train=true or too many Backward calls)")
	}
	v := s.items[len(s.items)-1]
	s.items = s.items[:len(s.items)-1]
	return v
}

func (s *cacheStack[T]) clear() { s.items = s.items[:0] }

func (s *cacheStack[T]) len() int { return len(s.items) }
