package layers_test

import (
	"math"
	"testing"

	"ndsnn/internal/layers"
	"ndsnn/internal/rng"
	"ndsnn/internal/tensor"
	"ndsnn/internal/testutil"
)

func TestConv2dGradients(t *testing.T) {
	r := rng.New(1)
	l := layers.NewConv2d("c", 3, 4, 3, 1, 1, true, r)
	testutil.GradCheck(t, "conv3x3", l, testutil.GradCheckConfig{InShape: []int{2, 3, 6, 6}, Timesteps: 3})
}

func TestConv2dStridedGradients(t *testing.T) {
	r := rng.New(2)
	l := layers.NewConv2d("c", 2, 3, 3, 2, 1, false, r)
	testutil.GradCheck(t, "conv-stride2", l, testutil.GradCheckConfig{InShape: []int{2, 2, 7, 7}, Timesteps: 2})
}

func TestConv2d1x1Gradients(t *testing.T) {
	r := rng.New(3)
	l := layers.NewConv2d("c", 4, 2, 1, 1, 0, false, r)
	testutil.GradCheck(t, "conv1x1", l, testutil.GradCheckConfig{InShape: []int{2, 4, 5, 5}, Timesteps: 2})
}

func TestConv2dMatchesDirectReference(t *testing.T) {
	r := rng.New(4)
	l := layers.NewConv2d("c", 3, 5, 3, 1, 1, true, r)
	x := tensor.New(2, 3, 8, 8)
	for i := range x.Data {
		x.Data[i] = r.NormFloat32()
	}
	got := l.Forward(x, false)
	want := tensor.Conv2DDirect(x, l.Weight.W, l.Bias.W, 1, 1)
	if !got.SameShape(want) {
		t.Fatalf("shape %v vs %v", got.Shape(), want.Shape())
	}
	for i := range want.Data {
		if math.Abs(float64(got.Data[i]-want.Data[i])) > 1e-4 {
			t.Fatalf("element %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestConv2dOutputShape(t *testing.T) {
	r := rng.New(5)
	l := layers.NewConv2d("c", 3, 8, 3, 2, 1, false, r)
	out := l.Forward(tensor.New(4, 3, 32, 32), false)
	want := []int{4, 8, 16, 16}
	for i, d := range want {
		if out.Dim(i) != d {
			t.Fatalf("output shape %v, want %v", out.Shape(), want)
		}
	}
}

func TestConv2dChannelMismatchPanics(t *testing.T) {
	r := rng.New(6)
	l := layers.NewConv2d("c", 3, 4, 3, 1, 1, false, r)
	defer func() {
		if recover() == nil {
			t.Fatal("channel mismatch did not panic")
		}
	}()
	l.Forward(tensor.New(1, 5, 8, 8), false)
}

func TestLinearGradients(t *testing.T) {
	r := rng.New(7)
	l := layers.NewLinear("fc", 10, 6, true, r)
	testutil.GradCheck(t, "linear", l, testutil.GradCheckConfig{InShape: []int{4, 10}, Timesteps: 3})
}

func TestLinearNoBiasGradients(t *testing.T) {
	r := rng.New(8)
	l := layers.NewLinear("fc", 5, 3, false, r)
	testutil.GradCheck(t, "linear-nobias", l, testutil.GradCheckConfig{InShape: []int{2, 5}, Timesteps: 2})
}

func TestLinearKnownValues(t *testing.T) {
	r := rng.New(9)
	l := layers.NewLinear("fc", 2, 2, true, r)
	copy(l.Weight.W.Data, []float32{1, 2, 3, 4}) // W = [[1,2],[3,4]]
	copy(l.Bias.W.Data, []float32{10, 20})
	x := tensor.FromSlice([]float32{1, 1}, 1, 2)
	y := l.Forward(x, false)
	if y.Data[0] != 13 || y.Data[1] != 27 {
		t.Fatalf("linear output = %v, want [13 27]", y.Data)
	}
}

func TestBatchNormGradients4D(t *testing.T) {
	l := layers.NewBatchNorm("bn", 3)
	testutil.GradCheck(t, "batchnorm4d", l, testutil.GradCheckConfig{InShape: []int{4, 3, 5, 5}, Timesteps: 2, Tol: 3e-2})
}

func TestBatchNormGradients2D(t *testing.T) {
	l := layers.NewBatchNorm("bn", 6)
	testutil.GradCheck(t, "batchnorm2d", l, testutil.GradCheckConfig{InShape: []int{8, 6}, Timesteps: 2, Tol: 3e-2})
}

func TestBatchNormNormalizesTrainingBatch(t *testing.T) {
	l := layers.NewBatchNorm("bn", 2)
	r := rng.New(10)
	x := tensor.New(16, 2, 4, 4)
	for i := range x.Data {
		x.Data[i] = r.NormFloat32()*3 + 5
	}
	y := l.Forward(x, true)
	// Per-channel mean ~0, var ~1.
	for c := 0; c < 2; c++ {
		var sum, sumsq float64
		n := 0
		for bi := 0; bi < 16; bi++ {
			for s := 0; s < 16; s++ {
				v := float64(y.Data[bi*32+c*16+s])
				sum += v
				sumsq += v * v
				n++
			}
		}
		mean := sum / float64(n)
		variance := sumsq/float64(n) - mean*mean
		if math.Abs(mean) > 1e-3 {
			t.Fatalf("channel %d mean = %v, want ~0", c, mean)
		}
		if math.Abs(variance-1) > 1e-2 {
			t.Fatalf("channel %d var = %v, want ~1", c, variance)
		}
	}
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	l := layers.NewBatchNorm("bn", 1)
	r := rng.New(11)
	// Feed many training batches with mean 4, std 2.
	for i := 0; i < 200; i++ {
		x := tensor.New(32, 1, 2, 2)
		for j := range x.Data {
			x.Data[j] = r.NormFloat32()*2 + 4
		}
		l.Forward(x, true)
		l.Reset()
	}
	// In eval, an input at the running mean maps near beta (0).
	x := tensor.New(1, 1, 2, 2)
	x.Fill(4)
	y := l.Forward(x, false)
	if math.Abs(float64(y.Data[0])) > 0.15 {
		t.Fatalf("eval output at running mean = %v, want ~0", y.Data[0])
	}
}

func TestBatchNormUnsupportedRankPanics(t *testing.T) {
	l := layers.NewBatchNorm("bn", 2)
	defer func() {
		if recover() == nil {
			t.Fatal("3-D input did not panic")
		}
	}()
	l.Forward(tensor.New(2, 2, 2), false)
}

func TestMaxPoolGradients(t *testing.T) {
	l := layers.NewMaxPool2d(2, 2)
	// eps must stay below typical gaps between window elements.
	testutil.GradCheck(t, "maxpool", l, testutil.GradCheckConfig{InShape: []int{2, 2, 4, 4}, Timesteps: 2, Eps: 1e-3, Tol: 3e-2})
}

func TestAvgPoolGradients(t *testing.T) {
	l := layers.NewAvgPool2d(2, 2)
	testutil.GradCheck(t, "avgpool", l, testutil.GradCheckConfig{InShape: []int{2, 2, 4, 4}, Timesteps: 2})
}

func TestFlattenRoundTrip(t *testing.T) {
	l := layers.NewFlatten()
	x := tensor.New(2, 3, 4, 4)
	for i := range x.Data {
		x.Data[i] = float32(i)
	}
	y := l.Forward(x, true)
	if y.Dim(0) != 2 || y.Dim(1) != 48 {
		t.Fatalf("flatten shape = %v", y.Shape())
	}
	dy := tensor.New(2, 48)
	dx := l.Backward(dy)
	if dx.NumDims() != 4 || dx.Dim(1) != 3 {
		t.Fatalf("flatten backward shape = %v", dx.Shape())
	}
}

func TestDropoutEvalIsIdentity(t *testing.T) {
	r := rng.New(12)
	l := layers.NewDropout(0.5, r)
	x := tensor.New(4, 10)
	x.Fill(3)
	y := l.Forward(x, false)
	for i, v := range y.Data {
		if v != 3 {
			t.Fatalf("eval dropout changed element %d: %v", i, v)
		}
	}
}

func TestDropoutMaskSharedAcrossTimesteps(t *testing.T) {
	r := rng.New(13)
	l := layers.NewDropout(0.5, r)
	x := tensor.New(2, 32)
	x.Fill(1)
	y1 := l.Forward(x, true)
	y2 := l.Forward(x, true)
	for i := range y1.Data {
		if y1.Data[i] != y2.Data[i] {
			t.Fatal("dropout mask differs between timesteps in the same batch")
		}
	}
	l.Reset()
	y3 := l.Forward(x, true)
	same := true
	for i := range y1.Data {
		if y1.Data[i] != y3.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("dropout mask did not change after Reset")
	}
}

func TestDropoutZeroRateIsIdentity(t *testing.T) {
	l := layers.NewDropout(0, rng.New(14))
	x := tensor.New(2, 5)
	x.Fill(2)
	y := l.Forward(x, true)
	for _, v := range y.Data {
		if v != 2 {
			t.Fatal("dropout with p=0 modified input")
		}
	}
}

func TestDropoutPreservesExpectation(t *testing.T) {
	r := rng.New(15)
	l := layers.NewDropout(0.3, r)
	x := tensor.New(1, 20000)
	x.Fill(1)
	y := l.Forward(x, true)
	mean := y.Mean()
	if math.Abs(mean-1) > 0.03 {
		t.Fatalf("inverted dropout mean = %v, want ~1", mean)
	}
}

func TestParamMaskHelpers(t *testing.T) {
	w := tensor.FromSlice([]float32{1, 2, 3, 4}, 4)
	p := layers.NewParam("p", w)
	if p.ActiveCount() != 4 || p.Sparsity() != 0 {
		t.Fatalf("dense param: active=%d sparsity=%v", p.ActiveCount(), p.Sparsity())
	}
	p.Mask = tensor.FromSlice([]float32{1, 0, 1, 0}, 4)
	if p.ActiveCount() != 2 {
		t.Fatalf("ActiveCount = %d, want 2", p.ActiveCount())
	}
	if p.Sparsity() != 0.5 {
		t.Fatalf("Sparsity = %v, want 0.5", p.Sparsity())
	}
	if err := p.CheckMaskConsistency(); err == nil {
		t.Fatal("inconsistent mask not reported")
	}
	p.ApplyMask()
	if err := p.CheckMaskConsistency(); err != nil {
		t.Fatalf("mask still inconsistent after ApplyMask: %v", err)
	}
	if p.W.Data[0] != 1 || p.W.Data[2] != 3 {
		t.Fatal("ApplyMask clobbered active weights")
	}
}

func TestGlobalSparsity(t *testing.T) {
	p1 := layers.NewParam("a", tensor.New(10))
	p2 := layers.NewParam("b", tensor.New(10))
	p2.Mask = tensor.New(10) // all masked out
	got := layers.GlobalSparsity([]*layers.Param{p1, p2})
	if got != 0.5 {
		t.Fatalf("GlobalSparsity = %v, want 0.5", got)
	}
}

func TestPrunableParamsFilters(t *testing.T) {
	p1 := layers.NewParam("w", tensor.New(4))
	p2 := layers.NewParam("b", tensor.New(4))
	p2.NoPrune = true
	got := layers.PrunableParams([]*layers.Param{p1, p2})
	if len(got) != 1 || got[0] != p1 {
		t.Fatalf("PrunableParams = %v", got)
	}
}

func TestBackwardWithoutForwardPanics(t *testing.T) {
	r := rng.New(16)
	l := layers.NewLinear("fc", 3, 2, false, r)
	defer func() {
		if recover() == nil {
			t.Fatal("Backward without cached Forward did not panic")
		}
	}()
	l.Backward(tensor.New(1, 2))
}

func TestGradAccumulationAcrossTimesteps(t *testing.T) {
	// Two identical timesteps must produce exactly twice the one-step grad.
	r := rng.New(17)
	l := layers.NewLinear("fc", 4, 3, false, r)
	x := tensor.New(2, 4)
	for i := range x.Data {
		x.Data[i] = r.NormFloat32()
	}
	dy := tensor.New(2, 3)
	for i := range dy.Data {
		dy.Data[i] = r.NormFloat32()
	}

	l.Forward(x, true)
	l.Backward(dy)
	oneStep := l.Weight.Grad.Clone()

	l.Reset()
	l.Weight.ZeroGrad()
	l.Forward(x, true)
	l.Forward(x, true)
	l.Backward(dy)
	l.Backward(dy)
	for i := range oneStep.Data {
		want := 2 * oneStep.Data[i]
		if math.Abs(float64(l.Weight.Grad.Data[i]-want)) > 1e-4 {
			t.Fatalf("grad accumulation: %v, want %v", l.Weight.Grad.Data[i], want)
		}
	}
}

func TestKaimingInitStatistics(t *testing.T) {
	r := rng.New(18)
	w := tensor.New(64, 64, 3, 3)
	layers.KaimingNormal(w, 64*9, r)
	var sum, sumsq float64
	for _, v := range w.Data {
		sum += float64(v)
		sumsq += float64(v) * float64(v)
	}
	n := float64(w.Size())
	mean := sum / n
	std := math.Sqrt(sumsq/n - mean*mean)
	wantStd := math.Sqrt(2.0 / float64(64*9))
	if math.Abs(mean) > 0.001 {
		t.Fatalf("kaiming mean = %v", mean)
	}
	if math.Abs(std-wantStd)/wantStd > 0.05 {
		t.Fatalf("kaiming std = %v, want ~%v", std, wantStd)
	}
}
