package layers

import (
	"fmt"

	"ndsnn/internal/metrics"
	"ndsnn/internal/rng"
	"ndsnn/internal/sparse"
	"ndsnn/internal/tape"
	"ndsnn/internal/tensor"
)

// Linear is a fully-connected layer: y = x·Wᵀ + b for x of shape [B,In].
type Linear struct {
	In, Out int

	// Weight has shape [Out, In]; Bias (optional) has shape [Out].
	Weight *Param
	Bias   *Param

	// xs is the layer's BPTT tape: per-timestep inputs, event-encoded when
	// they are binary spike tensors (see package tape). Backward replays it.
	xs     tape.Stack
	events eventTally
}

// NewLinear constructs a fully-connected layer with Kaiming-normal weights.
func NewLinear(name string, in, out int, withBias bool, r *rng.RNG) *Linear {
	w := tensor.New(out, in)
	KaimingNormal(w, in, r)
	l := &Linear{In: in, Out: out, Weight: NewParam(name+".w", w)}
	if withBias {
		l.Bias = NewParam(name+".b", tensor.New(out))
		l.Bias.NoDecay = true
		l.Bias.NoPrune = true
	}
	return l
}

// Forward computes one timestep: y = x·Wᵀ (+ bias).
//
// Like Conv2d, a CSR-encoded weight combined with a binary spike input below
// EventMaxRate occupancy takes the dual-sparse event-driven path (each
// incoming spike scatter-adds one CSC weight column); analog or dense-weight
// inputs use the weight-only CSR or dense GEMM. All paths are bit-identical.
// During training the input is recorded on the layer's tape, event-encoded
// when binary.
func (l *Linear) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.NumDims() != 2 || x.Dim(1) != l.In {
		panic(fmt.Sprintf("layers: %s expects [B,%d] input, got %v", l.Weight.Name, l.In, x.Shape()))
	}
	var out *tensor.Tensor
	var tally metrics.EventStats
	tally.Forwards = int64(x.Dim(0))
	if wcsr := l.Weight.SparseW(); wcsr != nil {
		if ev, ok := sparse.EncodeEvents(x); ok {
			tally.Entries = int64(x.Size())
			tally.ActiveEntries = int64(ev.NNZ())
			// The maxRate > 0 guard keeps EventMaxRate=0 a true kill
			// switch even for all-zero (occupancy 0) inputs.
			if maxRate := EventMaxRate; maxRate > 0 && ev.Occupancy() <= maxRate {
				out = tensor.New(x.Dim(0), l.Out)
				// Batches too narrow to fill sparse.Workers sample-parallel
				// lanes take the banded kernel: workers own output-feature
				// bands instead of samples. Bit-identical either way. The
				// width check comes first so wide batches never pay the
				// banded encoding's O(nnz) value gather just to discard it.
				var bands *sparse.CSCBands
				if x.Dim(0) < sparse.EffectiveWorkers(l.Out) {
					bands = l.Weight.SparseWCSCBands()
				}
				if bands != nil {
					sparse.MatMulEventsCSCBandsInto(out, ev, bands, false)
				} else {
					sparse.MatMulEventsCSCInto(out, ev, l.Weight.SparseWCSC(), false)
				}
				tally.EventForwards = tally.Forwards
			}
		}
		if out == nil {
			out = tensor.New(x.Dim(0), l.Out)
			sparse.MatMulDenseCSRTInto(out, x, wcsr, false)
		}
	} else {
		out = tensor.MatMulABT(x, l.Weight.W)
	}
	l.events.add(tally)
	if l.Bias != nil {
		b := x.Dim(0)
		for bi := 0; bi < b; bi++ {
			row := out.Data[bi*l.Out : (bi+1)*l.Out]
			for j := range row {
				row[j] += l.Bias.W.Data[j]
			}
		}
	}
	if train {
		l.xs.Push(x)
	}
	return out
}

// Backward accumulates dW += dyᵀ·x and db += Σ_b dy, and returns dx = dy·W,
// replaying the tape for x. Three backward-weight kernels serve the sparse
// path: an event-encoded record feeds CSRGradATBEventsInto directly (work
// scales with the recorded spike count), and dense records choose between
// the column-strided reference and the blocked/transposed SDDMM by layer
// width (GradATBTransposeMinCols).
func (l *Linear) Backward(dy *tensor.Tensor) *tensor.Tensor {
	rec := l.xs.Pop()
	wcsr := l.Weight.SparseW()
	if wcsr != nil && l.Weight.SparseGradOK {
		vals := make([]float32, wcsr.NNZ())
		if rec.IsEvents() {
			sparse.CSRGradATBEventsInto(vals, wcsr, dy, rec.Events())
		} else if wcsr.Cols >= GradATBTransposeMinCols {
			sparse.CSRGradATBTransposedInto(vals, wcsr, dy, rec.Dense())
		} else {
			sparse.CSRGradATBInto(vals, wcsr, dy, rec.Dense())
		}
		sparse.AddValsInto(l.Weight.Grad, wcsr, vals)
	} else {
		// Dense weight gradients (growth batches, unmasked layers) need the
		// full activation; Materialize is transient, one timestep at a time.
		tensor.MatMulATBInto(l.Weight.Grad, dy, rec.Materialize(), true)
	}
	if l.Bias != nil {
		b := dy.Dim(0)
		for bi := 0; bi < b; bi++ {
			row := dy.Data[bi*l.Out : (bi+1)*l.Out]
			for j, v := range row {
				l.Bias.Grad.Data[j] += v
			}
		}
	}
	if wcsr != nil {
		dx := tensor.New(dy.Dim(0), l.In)
		sparse.MatMulDenseCSRInto(dx, dy, wcsr, false)
		return dx
	}
	return tensor.MatMul(dy, l.Weight.W)
}

// BackwardSeq consumes all T timestep gradients at once — the linear layer's
// time-major fused replay, mirroring Conv2d.BackwardSeq. When every recorded
// timestep is event-encoded, the weight is CSR and active-position-only
// gradients are armed, the T recorded spike patterns are row-stacked into one
// [T·B, In] pattern (sparse.StackTimesteps: timesteps become extra batch
// samples) and consumed by ONE events SDDMM against the row-stacked dy, and
// backward-data likewise pays a single weight traversal for all T timesteps —
// the fused-dy replay the per-timestep Backward repeated T times. Anything
// else falls back to T Backward calls in reverse order. Input gradients are
// bit-identical to the per-timestep replay; weight/bias gradients accumulate
// the timesteps in ascending instead of descending order (float rounding
// only).
func (l *Linear) BackwardSeq(dys []*tensor.Tensor) []*tensor.Tensor {
	T := len(dys)
	wcsr := l.Weight.SparseW()
	fused := T > 1 && wcsr != nil && l.Weight.SparseGradOK && l.xs.Len() >= T
	if fused {
		for i := 0; i < T; i++ {
			if !l.xs.Peek(i).IsEvents() {
				fused = false
				break
			}
		}
	}
	if !fused {
		dxs := make([]*tensor.Tensor, T)
		for t := T - 1; t >= 0; t-- {
			dxs[t] = l.Backward(dys[t])
		}
		return dxs
	}
	recs := make([]*sparse.Events, T)
	for t := T - 1; t >= 0; t-- {
		recs[t] = l.xs.Pop().Events()
	}
	b := dys[0].Dim(0)
	dyS := tensor.New(T*b, l.Out)
	for t, dy := range dys {
		copy(dyS.Data[t*b*l.Out:(t+1)*b*l.Out], dy.Data)
	}
	evS := sparse.StackTimesteps(recs)
	vals := make([]float32, wcsr.NNZ())
	sparse.CSRGradATBEventsInto(vals, wcsr, dyS, evS)
	sparse.AddValsInto(l.Weight.Grad, wcsr, vals)
	if l.Bias != nil {
		for i := 0; i < T*b; i++ {
			row := dyS.Data[i*l.Out : (i+1)*l.Out]
			for j, v := range row {
				l.Bias.Grad.Data[j] += v
			}
		}
	}
	// One weight traversal serves every timestep's input gradient; the
	// per-timestep views alias disjoint slices of the stacked result.
	dxS := tensor.New(T*b, l.In)
	sparse.MatMulDenseCSRInto(dxS, dyS, wcsr, false)
	dxs := make([]*tensor.Tensor, T)
	for t := range dxs {
		dxs[t] = tensor.FromSlice(dxS.Data[t*b*l.In:(t+1)*b*l.In], b, l.In)
	}
	return dxs
}

// EventStats returns the event-driven fast-path counters accumulated since
// the last ResetEventStats.
func (l *Linear) EventStats() metrics.EventStats { return l.events.snapshot() }

// ResetEventStats zeroes the event-path counters.
func (l *Linear) ResetEventStats() { l.events.reset() }

// Params returns the weight and optional bias.
func (l *Linear) Params() []*Param {
	if l.Bias != nil {
		return []*Param{l.Weight, l.Bias}
	}
	return []*Param{l.Weight}
}

// Reset drops cached timesteps.
func (l *Linear) Reset() { l.xs.Clear() }
