package layers

import (
	"fmt"

	"ndsnn/internal/rng"
	"ndsnn/internal/sparse"
	"ndsnn/internal/tensor"
)

// Linear is a fully-connected layer: y = x·Wᵀ + b for x of shape [B,In].
type Linear struct {
	In, Out int

	// Weight has shape [Out, In]; Bias (optional) has shape [Out].
	Weight *Param
	Bias   *Param

	xs cacheStack[*tensor.Tensor]
}

// NewLinear constructs a fully-connected layer with Kaiming-normal weights.
func NewLinear(name string, in, out int, withBias bool, r *rng.RNG) *Linear {
	w := tensor.New(out, in)
	KaimingNormal(w, in, r)
	l := &Linear{In: in, Out: out, Weight: NewParam(name+".w", w)}
	if withBias {
		l.Bias = NewParam(name+".b", tensor.New(out))
		l.Bias.NoDecay = true
		l.Bias.NoPrune = true
	}
	return l
}

// Forward computes one timestep: y = x·Wᵀ (+ bias).
func (l *Linear) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.NumDims() != 2 || x.Dim(1) != l.In {
		panic(fmt.Sprintf("layers: %s expects [B,%d] input, got %v", l.Weight.Name, l.In, x.Shape()))
	}
	var out *tensor.Tensor
	if wcsr := l.Weight.SparseW(); wcsr != nil {
		out = tensor.New(x.Dim(0), l.Out)
		sparse.MatMulDenseCSRTInto(out, x, wcsr, false)
	} else {
		out = tensor.MatMulABT(x, l.Weight.W)
	}
	if l.Bias != nil {
		b := x.Dim(0)
		for bi := 0; bi < b; bi++ {
			row := out.Data[bi*l.Out : (bi+1)*l.Out]
			for j := range row {
				row[j] += l.Bias.W.Data[j]
			}
		}
	}
	if train {
		l.xs.push(x)
	}
	return out
}

// Backward accumulates dW += dyᵀ·x and db += Σ_b dy, and returns dx = dy·W.
func (l *Linear) Backward(dy *tensor.Tensor) *tensor.Tensor {
	x := l.xs.pop()
	wcsr := l.Weight.SparseW()
	if wcsr != nil && l.Weight.SparseGradOK {
		vals := make([]float32, wcsr.NNZ())
		sparse.CSRGradATBInto(vals, wcsr, dy, x)
		sparse.AddValsInto(l.Weight.Grad, wcsr, vals)
	} else {
		tensor.MatMulATBInto(l.Weight.Grad, dy, x, true)
	}
	if l.Bias != nil {
		b := dy.Dim(0)
		for bi := 0; bi < b; bi++ {
			row := dy.Data[bi*l.Out : (bi+1)*l.Out]
			for j, v := range row {
				l.Bias.Grad.Data[j] += v
			}
		}
	}
	if wcsr != nil {
		dx := tensor.New(dy.Dim(0), l.In)
		sparse.MatMulDenseCSRInto(dx, dy, wcsr, false)
		return dx
	}
	return tensor.MatMul(dy, l.Weight.W)
}

// Params returns the weight and optional bias.
func (l *Linear) Params() []*Param {
	if l.Bias != nil {
		return []*Param{l.Weight, l.Bias}
	}
	return []*Param{l.Weight}
}

// Reset drops cached timesteps.
func (l *Linear) Reset() { l.xs.clear() }
