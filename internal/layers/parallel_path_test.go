package layers_test

import (
	"runtime"
	"testing"

	"ndsnn/internal/layers"
	"ndsnn/internal/rng"
	"ndsnn/internal/sparse"
	"ndsnn/internal/tensor"
)

// Layer-level pins for the thread-scalable kernel engine: with the
// sparse.Workers knob on, forward outputs must stay bit-identical to the
// serial (Workers=0) configuration and backward gradients within 1e-5 (they
// are in fact bit-identical for a fixed batch partition), swept across
// GOMAXPROCS and spike rates. These are the tests the CI GOMAXPROCS=1-vs-4
// smoke and the race job lean on.

// withWorkers runs fn with the sparse.Workers knob forced to w.
func withWorkers(w int, fn func()) {
	old := sparse.Workers
	sparse.Workers = w
	defer func() { sparse.Workers = old }()
	fn()
}

// withProcs runs fn under each GOMAXPROCS in the sweep.
func withProcs(fn func(procs int)) {
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	for _, procs := range []int{1, 2, 8} {
		runtime.GOMAXPROCS(procs)
		fn(procs)
	}
}

func TestConv2dParallelForwardBitIdentical(t *testing.T) {
	withProcs(func(procs int) {
		for _, rate := range eventRates {
			r := rng.New(701 + uint64(rate*100))
			l := layers.NewConv2d("c", 4, 16, 3, 1, 1, true, r)
			maskParam(l.Weight, 0.2, r)
			x := spikeTensor(r, rate, 3, 4, 6, 6)
			var ySerial, yPar *tensor.Tensor
			withCSRDensity(1, func() {
				withEventRate(1, func() {
					withWorkers(0, func() { ySerial = l.Forward(x.Clone(), false) })
					withWorkers(8, func() { yPar = l.Forward(x.Clone(), false) })
				})
			})
			l.Weight.InvalidateCSR()
			for i := range ySerial.Data {
				if ySerial.Data[i] != yPar.Data[i] {
					t.Fatalf("procs=%d rate=%v: parallel conv forward not bit-identical at %d", procs, rate, i)
				}
			}
		}
	})
}

func TestConv2dParallelBackwardMatchesSerial(t *testing.T) {
	withProcs(func(procs int) {
		for _, rate := range eventRates {
			run := func(workers int) (*tensor.Tensor, *tensor.Tensor) {
				r := rng.New(709 + uint64(rate*100))
				l := layers.NewConv2d("c", 4, 16, 3, 1, 1, false, r)
				maskParam(l.Weight, 0.2, r)
				l.Weight.SparseGradOK = true
				x := spikeTensor(r, rate, 3, 4, 6, 6)
				dy := tensor.New(3, 16, 6, 6)
				for i := range dy.Data {
					dy.Data[i] = r.NormFloat32()
				}
				var dx *tensor.Tensor
				withCSRDensity(1, func() {
					withEventRate(1, func() {
						withWorkers(workers, func() {
							l.Forward(x, true)
							dx = l.Backward(dy)
						})
					})
				})
				return l.Weight.Grad.Clone(), dx
			}
			gSerial, dxSerial := run(0)
			gPar, dxPar := run(8)
			if d := maxDiff(gSerial, gPar); d > 1e-5 {
				t.Fatalf("procs=%d rate=%v: parallel conv weight grad differs by %v", procs, rate, d)
			}
			if d := maxDiff(dxSerial, dxPar); d > 1e-5 {
				t.Fatalf("procs=%d rate=%v: parallel conv input grad differs by %v", procs, rate, d)
			}
		}
	})
}

func TestLinearParallelForwardBitIdentical(t *testing.T) {
	withProcs(func(procs int) {
		for _, rate := range eventRates {
			r := rng.New(719 + uint64(rate*100))
			l := layers.NewLinear("fc", 40, 24, true, r)
			maskParam(l.Weight, 0.2, r)
			// Batch narrower than the worker count: the banded kernel engages.
			x := spikeTensor(r, rate, 3, 40)
			var ySerial, yPar *tensor.Tensor
			withCSRDensity(1, func() {
				withEventRate(1, func() {
					withWorkers(0, func() { ySerial = l.Forward(x.Clone(), false) })
					withWorkers(8, func() { yPar = l.Forward(x.Clone(), false) })
				})
			})
			l.Weight.InvalidateCSR()
			for i := range ySerial.Data {
				if ySerial.Data[i] != yPar.Data[i] {
					t.Fatalf("procs=%d rate=%v: banded linear forward not bit-identical at %d", procs, rate, i)
				}
			}
		}
	})
}

// TestLinearBackwardSeqMatchesPerTimestep pins the fused time-major linear
// replay (one stacked events SDDMM + one backward-data weight traversal)
// against T per-timestep Backward calls: input gradients bit-identical,
// weight/bias gradients within float reordering tolerance.
func TestLinearBackwardSeqMatchesPerTimestep(t *testing.T) {
	const T, b, in, out = 4, 3, 40, 12
	for _, rate := range eventRates {
		build := func() (*layers.Linear, []*tensor.Tensor, []*tensor.Tensor) {
			r := rng.New(727 + uint64(rate*100))
			l := layers.NewLinear("fc", in, out, true, r)
			maskParam(l.Weight, 0.25, r)
			l.Weight.SparseGradOK = true
			xs := make([]*tensor.Tensor, T)
			dys := make([]*tensor.Tensor, T)
			for t2 := 0; t2 < T; t2++ {
				xs[t2] = spikeTensor(r, rate, b, in)
				dys[t2] = tensor.New(b, out)
				for i := range dys[t2].Data {
					dys[t2].Data[i] = r.NormFloat32()
				}
			}
			return l, xs, dys
		}

		var gRef, bRef *tensor.Tensor
		var dxRef []*tensor.Tensor
		withCSRDensity(1, func() {
			withEventRate(1, func() {
				// Reference: per-timestep replay in reverse order.
				l, xs, dys := build()
				for _, x := range xs {
					l.Forward(x, true)
				}
				dxRef = make([]*tensor.Tensor, T)
				for t2 := T - 1; t2 >= 0; t2-- {
					dxRef[t2] = l.Backward(dys[t2])
				}
				gRef, bRef = l.Weight.Grad.Clone(), l.Bias.Grad.Clone()

				// Fused: BackwardSeq consumes the whole tape at once.
				l2, xs2, dys2 := build()
				for _, x := range xs2 {
					l2.Forward(x, true)
				}
				dxs := l2.BackwardSeq(dys2)
				if d := maxDiff(gRef, l2.Weight.Grad); d > 1e-5 {
					t.Fatalf("rate %v: fused linear weight grad differs by %v", rate, d)
				}
				if d := maxDiff(bRef, l2.Bias.Grad); d > 1e-5 {
					t.Fatalf("rate %v: fused linear bias grad differs by %v", rate, d)
				}
				for t2 := 0; t2 < T; t2++ {
					for i := range dxRef[t2].Data {
						if dxRef[t2].Data[i] != dxs[t2].Data[i] {
							t.Fatalf("rate %v: fused dx[%d] not bit-identical at %d", rate, t2, i)
						}
					}
				}
			})
		})
	}
}

// TestLinearBackwardSeqFallsBackOnDenseRecords pins the fused path's gate:
// analog (dense-recorded) timesteps must take the per-timestep fallback and
// still produce correct gradients.
func TestLinearBackwardSeqFallsBackOnDenseRecords(t *testing.T) {
	const T, b, in, out = 3, 2, 20, 8
	build := func() *layers.Linear {
		br := rng.New(733)
		bl := layers.NewLinear("fc", in, out, false, br)
		maskParam(bl.Weight, 0.3, br)
		bl.Weight.SparseGradOK = true
		return bl
	}
	l, ref := build(), build()
	r := rng.New(739)

	xs := make([]*tensor.Tensor, T)
	dys := make([]*tensor.Tensor, T)
	for t2 := 0; t2 < T; t2++ {
		xs[t2] = tensor.New(b, in)
		dys[t2] = tensor.New(b, out)
		for i := range xs[t2].Data {
			xs[t2].Data[i] = r.NormFloat32() // analog: dense records
		}
		for i := range dys[t2].Data {
			dys[t2].Data[i] = r.NormFloat32()
		}
	}
	withCSRDensity(1, func() {
		for _, x := range xs {
			l.Forward(x.Clone(), true)
			ref.Forward(x.Clone(), true)
		}
		l.BackwardSeq(dys)
		for t2 := T - 1; t2 >= 0; t2-- {
			ref.Backward(dys[t2])
		}
	})
	if d := maxDiff(ref.Weight.Grad, l.Weight.Grad); d != 0 {
		t.Fatalf("dense-record fallback grads differ by %v", d)
	}
}
