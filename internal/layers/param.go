package layers

import (
	"fmt"

	"ndsnn/internal/sparse"
	"ndsnn/internal/tensor"
)

// Param is a trainable tensor with its accumulated gradient and an optional
// binary sparsity mask.
//
// Invariant maintained by the sparse trainers: when Mask is non-nil, W is
// element-wise consistent with it (W[i] == 0 wherever Mask[i] == 0). Grad is
// always computed dense — gradient-based growth criteria (RigL, NDSNN) need
// gradient magnitudes at inactive positions — and the optimizer re-applies
// the mask after every step.
type Param struct {
	// Name identifies the parameter in logs and checkpoints, e.g. "conv3.w".
	Name string
	// W holds the parameter values.
	W *tensor.Tensor
	// Grad holds the accumulated dense gradient, same shape as W.
	Grad *tensor.Tensor
	// Mask is nil for dense parameters; otherwise a 0/1 tensor shaped like W.
	Mask *tensor.Tensor
	// NoDecay excludes the parameter from weight decay (biases, BN affines).
	NoDecay bool
	// NoPrune excludes the parameter from sparsification entirely; the
	// sparse methods in this repository prune weight matrices only, never
	// biases or normalization affines (matching the reference
	// implementations of SET/RigL/NDSNN).
	NoPrune bool
	// SparseGradOK permits backward passes to compute this parameter's
	// weight gradient only at active (mask=1) positions. The trainers flip
	// it off for batches whose gradients feed a gradient-growth rewire
	// decision, which needs magnitudes at inactive positions too. It is
	// false by default so gradient checks and baselines stay exact.
	SparseGradOK bool
	// CSRMaxDensity, when > 0, overrides the package-level CSRMaxDensity
	// threshold for this parameter — the calibrated per-layer-shape
	// dense/CSR crossover measured by CalibrateCSR. Zero means "use the
	// package default".
	CSRMaxDensity float64

	// csr/csc/cscBands cache the sparse encodings of W managed by
	// SparseW/SparseWCSC/SparseWCSCBands/InvalidateCSR; csrDensity caches the
	// mask's live-weight density for the threshold check (-1 = not measured
	// since the last invalidation).
	csr        *sparse.CSR
	csc        *sparse.CSC
	cscBands   *sparse.CSCBands
	csrDensity float64
}

// NewParam allocates a parameter with a zero gradient.
func NewParam(name string, w *tensor.Tensor) *Param {
	return &Param{Name: name, W: w, Grad: tensor.New(w.Shape()...), csrDensity: -1}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// ApplyMask zeroes W wherever Mask is zero. It is a no-op for dense params.
// Callers reach for it right after changing the mask, so it also drops the
// cached CSR encoding.
func (p *Param) ApplyMask() {
	if p.Mask == nil {
		return
	}
	for i, m := range p.Mask.Data {
		if m == 0 {
			p.W.Data[i] = 0
		}
	}
	p.InvalidateCSR()
}

// ActiveCount returns the number of active (mask=1) weights, or the total
// element count for dense parameters.
func (p *Param) ActiveCount() int {
	if p.Mask == nil {
		return p.W.Size()
	}
	n := 0
	for _, m := range p.Mask.Data {
		if m != 0 {
			n++
		}
	}
	return n
}

// Sparsity returns the fraction of weights that are masked out (0 for dense).
func (p *Param) Sparsity() float64 {
	return 1 - float64(p.ActiveCount())/float64(p.W.Size())
}

// CheckMaskConsistency returns an error if any masked-out weight is non-zero.
func (p *Param) CheckMaskConsistency() error {
	if p.Mask == nil {
		return nil
	}
	for i, m := range p.Mask.Data {
		if m == 0 && p.W.Data[i] != 0 {
			return fmt.Errorf("param %s: weight %d is %v but masked out", p.Name, i, p.W.Data[i])
		}
	}
	return nil
}

// ZeroGrads clears the gradients of all params.
func ZeroGrads(params []*Param) {
	for _, p := range params {
		p.ZeroGrad()
	}
}

// PrunableParams filters params down to those eligible for sparsification.
func PrunableParams(params []*Param) []*Param {
	var out []*Param
	for _, p := range params {
		if !p.NoPrune {
			out = append(out, p)
		}
	}
	return out
}

// TotalElems returns the summed element count of the given params.
func TotalElems(params []*Param) int {
	n := 0
	for _, p := range params {
		n += p.W.Size()
	}
	return n
}

// TotalActive returns the summed active-weight count of the given params.
func TotalActive(params []*Param) int {
	n := 0
	for _, p := range params {
		n += p.ActiveCount()
	}
	return n
}

// GlobalSparsity returns the overall sparsity across the given params.
func GlobalSparsity(params []*Param) float64 {
	total := TotalElems(params)
	if total == 0 {
		return 0
	}
	return 1 - float64(TotalActive(params))/float64(total)
}
