package layers

import "ndsnn/internal/tensor"

// MaxPool2d applies k×k max pooling with a given stride.
type MaxPool2d struct {
	K, Stride int

	caches cacheStack[*poolCache]
}

type poolCache struct {
	idx     []int32
	inShape []int
}

// NewMaxPool2d constructs a max-pooling layer.
func NewMaxPool2d(k, stride int) *MaxPool2d { return &MaxPool2d{K: k, Stride: stride} }

// Forward pools one timestep.
func (l *MaxPool2d) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out, idx := tensor.MaxPool(x, l.K, l.Stride)
	if train {
		l.caches.push(&poolCache{idx: idx, inShape: x.Shape()})
	}
	return out
}

// Backward routes gradients to the argmax positions.
func (l *MaxPool2d) Backward(dy *tensor.Tensor) *tensor.Tensor {
	c := l.caches.pop()
	return tensor.MaxPoolBackward(dy, c.idx, c.inShape)
}

// Params returns nil; pooling has no parameters.
func (l *MaxPool2d) Params() []*Param { return nil }

// Reset drops cached timesteps.
func (l *MaxPool2d) Reset() { l.caches.clear() }

// AvgPool2d applies k×k average pooling with a given stride.
type AvgPool2d struct {
	K, Stride int

	shapes cacheStack[[]int]
}

// NewAvgPool2d constructs an average-pooling layer.
func NewAvgPool2d(k, stride int) *AvgPool2d { return &AvgPool2d{K: k, Stride: stride} }

// Forward pools one timestep.
func (l *AvgPool2d) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := tensor.AvgPool(x, l.K, l.Stride)
	if train {
		l.shapes.push(x.Shape())
	}
	return out
}

// Backward spreads gradients uniformly over each window.
func (l *AvgPool2d) Backward(dy *tensor.Tensor) *tensor.Tensor {
	return tensor.AvgPoolBackward(dy, l.K, l.Stride, l.shapes.pop())
}

// Params returns nil; pooling has no parameters.
func (l *AvgPool2d) Params() []*Param { return nil }

// Reset drops cached timesteps.
func (l *AvgPool2d) Reset() { l.shapes.clear() }

// Flatten reshapes [B,C,H,W] to [B,C*H*W].
type Flatten struct {
	shapes cacheStack[[]int]
}

// NewFlatten constructs a flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Forward flattens one timestep.
func (l *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if train {
		l.shapes.push(x.Shape())
	}
	b := x.Dim(0)
	return x.Reshape(b, x.Size()/b)
}

// Backward restores the cached input shape.
func (l *Flatten) Backward(dy *tensor.Tensor) *tensor.Tensor {
	return dy.Reshape(l.shapes.pop()...)
}

// Params returns nil; flatten has no parameters.
func (l *Flatten) Params() []*Param { return nil }

// Reset drops cached timesteps.
func (l *Flatten) Reset() { l.shapes.clear() }
