package layers

import "ndsnn/internal/sparse"

// Sparse compute engine: masked parameters cache a CSR encoding of their
// weight matrix so Conv2d/Linear can run sparsity-proportional kernels
// instead of dense GEMM. The cache has two freshness levels:
//
//   - Pattern: the CSR topology equals the mask. It is invalidated explicitly
//     (InvalidateCSR) whenever the mask changes — drop-and-grow rewires, mask
//     initialization, LTH pruning, checkpoint restores, ApplyMask.
//   - Values: weight values drift every optimizer step, so SparseW re-gathers
//     them into the cached pattern on every call. The gather is O(nnz) and
//     disappears next to the O(nnz·columns) GEMM it feeds.
//
// Grown-at-zero weights are part of the pattern (EncodeCSRWithMask keys on
// the mask, not the value), so a freshly rewired layer computes through the
// same positions the mask declares live.

// CSRMaxDensity is the live-weight density above which layers stay on the
// dense GEMM path: around 50% density the per-nonzero index overhead of CSR
// outweighs the skipped work. It is a variable so tests can force either
// path (0 disables CSR, 1 enables it at any density); the threshold is
// consulted on every SparseW call, so changing it affects live parameters
// without an explicit invalidation.
//
// The 0.5 default is conservative — on most hardware the measured crossover
// is higher because the dense kernels cannot skip zeros. Use
// CSRCrossoverDensity / the layers' CalibrateCSR methods to replace it with
// a measured per-layer-shape threshold (stored in Param.CSRMaxDensity, which
// overrides this global when set).
var CSRMaxDensity = 0.5

// EventMaxRate is the spike occupancy (fraction of non-zero activation
// entries) above which the event-driven forward falls back to the
// weight-only CSR kernel. The event kernels replace each stored weight's
// n-wide multiply-add sweep with one indexed add per spike, so they win
// while occupancy × (indexed-add cost) < (contiguous multiply-add cost);
// past roughly a third occupancy the scattered writes lose. Like
// CSRMaxDensity it is a variable so tests and benchmarks can force either
// path (0 disables the event path, 1 takes it for any binary input).
var EventMaxRate = 0.3

// GradATBTransposeMinCols is the linear-layer width (input features) at and
// above which the sparse backward-weight SDDMM uses the blocked/transposed
// kernel (sparse.CSRGradATBTransposedInto) instead of the column-strided
// reference. The transposed variant pays an O(batch·(Out+In)) operand
// transpose to make every per-position dot product stream two contiguous
// rows; on wide layers the strided walk misses cache badly enough that the
// transpose amortizes almost immediately, while on narrow layers it is pure
// overhead. Like CSRMaxDensity and EventMaxRate it is a variable so tests
// and benchmarks can force either kernel (0 always transposes, a huge value
// never does). Event-encoded tape records bypass the choice entirely — they
// feed the event kernel.
var GradATBTransposeMinCols = 128

// SparseW returns the cached CSR encoding of the parameter's weight matrix
// (reshaped to [Dim(0), Size/Dim(0)] — one row per output unit/filter), with
// values freshly gathered from W. It returns nil when the parameter is
// unmasked or too dense for CSR to win; callers fall back to dense GEMM.
//
// Not safe for concurrent use: layers call it once per Forward/Backward
// before fanning out across the batch.
func (p *Param) SparseW() *sparse.CSR {
	if !p.csrEligible() {
		return nil
	}
	if p.csr != nil {
		p.csr.GatherValues(p.W)
		return p.csr
	}
	rows := p.W.Dim(0)
	cols := p.W.Size() / rows
	p.csr = sparse.EncodeCSRWithMask(p.W.Reshape(rows, cols), p.Mask.Reshape(rows, cols))
	return p.csr
}

// csrEligible reports whether the sparse path should engage: the parameter
// is masked and its live-weight density is at most the effective threshold.
// The density is counted once per topology (the pattern is fixed until the
// next invalidation); the threshold is compared on every call (O(1)) so
// flipping it takes effect immediately on live parameters. A calibrated
// per-param threshold (CalibrateCSR) overrides the package default.
func (p *Param) csrEligible() bool {
	if p.Mask == nil {
		return false
	}
	if p.csrDensity < 0 {
		p.csrDensity = float64(p.ActiveCount()) / float64(p.W.Size())
	}
	limit := CSRMaxDensity
	if p.CSRMaxDensity > 0 {
		limit = p.CSRMaxDensity
	}
	return p.csrDensity <= limit
}

// SparseWCSC returns the cached CSC (column-compressed) view of the
// parameter's weight matrix with freshly gathered values — the access order
// the event-driven forward needs (incoming spikes select weight columns).
// It returns nil exactly when SparseW does; the CSC pattern is derived from
// the CSR pattern and shares its invalidation. Only the CSC values are
// gathered here, so callers that need both views (the conv forward, for its
// per-sample dense-input fallback) pay one O(nnz) gather per view, not two.
//
// Not safe for concurrent use, like SparseW.
func (p *Param) SparseWCSC() *sparse.CSC {
	if !p.csrEligible() {
		return nil
	}
	if p.csc == nil {
		if p.csr == nil {
			p.SparseW() // materialize the pattern once
		}
		// NewCSCFromCSR copies whatever values the CSR holds, which may be
		// stale if SparseW was not called this step — re-gather to be safe
		// (once per topology, O(nnz)).
		p.csc = sparse.NewCSCFromCSR(p.csr)
	}
	p.csc.GatherValues(p.W)
	return p.csc
}

// SparseWCSCBands returns the row-banded CSC view of the parameter's weight
// matrix with freshly gathered values, pre-bucketed into sparse.Workers
// destination bands — the operand of the parallel event kernels
// (sparse.CSCMatMulEventsInto, sparse.MatMulEventsCSCBandsInto). It returns
// nil when SparseW does, or when sparse.Workers <= 1 (callers then use the
// flat CSC and the serial kernels). The banding shares the CSR pattern's
// invalidation and is rebuilt when the Workers knob changes, so band
// boundaries always reflect the current knob.
//
// Not safe for concurrent use, like SparseW.
func (p *Param) SparseWCSCBands() *sparse.CSCBands {
	workers := sparse.EffectiveWorkers(p.W.Dim(0))
	if workers <= 1 || !p.csrEligible() {
		return nil
	}
	if p.cscBands == nil || len(p.cscBands.Bands) != workers {
		if p.csr == nil {
			p.SparseW() // materialize the pattern once
		}
		p.cscBands = sparse.NewCSCBands(p.csr, workers)
	}
	p.cscBands.GatherValues(p.W)
	return p.cscBands
}

// CSRCached reports whether a CSR encoding is currently cached — an
// introspection hook for tests that pin the cache-discipline contract
// (e.g. that weight-mutating operations like quantization invalidate).
func (p *Param) CSRCached() bool { return p.csr != nil }

// InvalidateCSR drops the cached CSR/CSC/banded encodings and density. Call
// after any change to the mask topology; value-only changes (optimizer
// steps, weight rewinds) do not need it because SparseW re-gathers values on
// every call.
func (p *Param) InvalidateCSR() {
	p.csr = nil
	p.csc = nil
	p.cscBands = nil
	p.csrDensity = -1
}
