package layers

import "ndsnn/internal/sparse"

// Sparse compute engine: masked parameters cache a CSR encoding of their
// weight matrix so Conv2d/Linear can run sparsity-proportional kernels
// instead of dense GEMM. The cache has two freshness levels:
//
//   - Pattern: the CSR topology equals the mask. It is invalidated explicitly
//     (InvalidateCSR) whenever the mask changes — drop-and-grow rewires, mask
//     initialization, LTH pruning, checkpoint restores, ApplyMask.
//   - Values: weight values drift every optimizer step, so SparseW re-gathers
//     them into the cached pattern on every call. The gather is O(nnz) and
//     disappears next to the O(nnz·columns) GEMM it feeds.
//
// Grown-at-zero weights are part of the pattern (EncodeCSRWithMask keys on
// the mask, not the value), so a freshly rewired layer computes through the
// same positions the mask declares live.

// CSRMaxDensity is the live-weight density above which layers stay on the
// dense GEMM path: around 50% density the per-nonzero index overhead of CSR
// outweighs the skipped work. It is a variable so tests can force either
// path (0 disables CSR, 1 enables it at any density); the threshold is
// consulted on every SparseW call, so changing it affects live parameters
// without an explicit invalidation.
var CSRMaxDensity = 0.5

// SparseW returns the cached CSR encoding of the parameter's weight matrix
// (reshaped to [Dim(0), Size/Dim(0)] — one row per output unit/filter), with
// values freshly gathered from W. It returns nil when the parameter is
// unmasked or too dense for CSR to win; callers fall back to dense GEMM.
//
// Not safe for concurrent use: layers call it once per Forward/Backward
// before fanning out across the batch.
func (p *Param) SparseW() *sparse.CSR {
	if p.Mask == nil {
		return nil
	}
	if p.csrDensity < 0 {
		// Count actives once per topology; the pattern is fixed until the
		// next invalidation, so the density is too.
		p.csrDensity = float64(p.ActiveCount()) / float64(p.W.Size())
	}
	// Compared on every call (O(1)) so flipping CSRMaxDensity takes effect
	// immediately on live parameters.
	if p.csrDensity > CSRMaxDensity {
		return nil
	}
	if p.csr != nil {
		p.csr.GatherValues(p.W)
		return p.csr
	}
	rows := p.W.Dim(0)
	cols := p.W.Size() / rows
	p.csr = sparse.EncodeCSRWithMask(p.W.Reshape(rows, cols), p.Mask.Reshape(rows, cols))
	return p.csr
}

// InvalidateCSR drops the cached CSR encoding and density. Call after any
// change to the mask topology; value-only changes (optimizer steps, weight
// rewinds) do not need it because SparseW re-gathers values on every call.
func (p *Param) InvalidateCSR() {
	p.csr = nil
	p.csrDensity = -1
}
