// Package loss implements the rate-decoded losses used to train SNN
// classifiers: softmax cross-entropy (and an MSE alternative) on the
// time-averaged output of the network's final layer.
package loss

import (
	"math"

	"ndsnn/internal/tensor"
)

// CrossEntropyRate computes softmax cross-entropy on the mean over
// timesteps of the network outputs and returns the mean loss over the batch
// along with the per-timestep output gradients (each dL/douts[t] =
// (softmax - onehot)/(B·T)) ready to feed Network.Backward.
func CrossEntropyRate(outs []*tensor.Tensor, labels []int) (float64, []*tensor.Tensor) {
	avg := meanOutputs(outs)
	b, c := avg.Dim(0), avg.Dim(1)
	if len(labels) != b {
		panic("loss: label count does not match batch size")
	}
	probs, total := softmaxCE(avg, labels)
	// dL/davg = (p - y)/B; dL/douts[t] = dL/davg · 1/T.
	scale := float32(1.0 / (float64(b) * float64(len(outs))))
	davg := tensor.New(b, c)
	for bi := 0; bi < b; bi++ {
		for j := 0; j < c; j++ {
			g := probs.Data[bi*c+j]
			if j == labels[bi] {
				g -= 1
			}
			davg.Data[bi*c+j] = g * scale
		}
	}
	grads := make([]*tensor.Tensor, len(outs))
	for t := range outs {
		grads[t] = davg
	}
	return total / float64(b), grads
}

// MSERate computes mean-squared error between the time-averaged output and
// a one-hot target (the alternative SNN loss), returning the batch-mean loss
// and per-timestep gradients.
func MSERate(outs []*tensor.Tensor, labels []int) (float64, []*tensor.Tensor) {
	avg := meanOutputs(outs)
	b, c := avg.Dim(0), avg.Dim(1)
	if len(labels) != b {
		panic("loss: label count does not match batch size")
	}
	var total float64
	scale := float32(2.0 / (float64(b) * float64(c) * float64(len(outs))))
	davg := tensor.New(b, c)
	for bi := 0; bi < b; bi++ {
		for j := 0; j < c; j++ {
			target := float32(0)
			if j == labels[bi] {
				target = 1
			}
			diff := avg.Data[bi*c+j] - target
			total += float64(diff) * float64(diff)
			davg.Data[bi*c+j] = diff * scale
		}
	}
	grads := make([]*tensor.Tensor, len(outs))
	for t := range outs {
		grads[t] = davg
	}
	return total / (float64(b) * float64(c)), grads
}

// Predictions returns the argmax class of the time-averaged outputs.
func Predictions(outs []*tensor.Tensor) []int {
	avg := meanOutputs(outs)
	b := avg.Dim(0)
	preds := make([]int, b)
	for bi := 0; bi < b; bi++ {
		preds[bi] = avg.ArgMaxRow(bi)
	}
	return preds
}

// CountCorrect returns how many predictions match the labels.
func CountCorrect(outs []*tensor.Tensor, labels []int) int {
	preds := Predictions(outs)
	n := 0
	for i, p := range preds {
		if p == labels[i] {
			n++
		}
	}
	return n
}

func meanOutputs(outs []*tensor.Tensor) *tensor.Tensor {
	if len(outs) == 0 {
		panic("loss: empty output sequence")
	}
	avg := outs[0].Clone()
	for _, o := range outs[1:] {
		avg.AddInPlace(o)
	}
	avg.Scale(1 / float32(len(outs)))
	return avg
}

// softmaxCE returns the softmax probabilities and the summed (not averaged)
// negative log-likelihood.
func softmaxCE(logits *tensor.Tensor, labels []int) (*tensor.Tensor, float64) {
	b, c := logits.Dim(0), logits.Dim(1)
	probs := tensor.New(b, c)
	var total float64
	for bi := 0; bi < b; bi++ {
		row := logits.Data[bi*c : (bi+1)*c]
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(float64(v - maxv))
			probs.Data[bi*c+j] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for j := 0; j < c; j++ {
			probs.Data[bi*c+j] *= inv
		}
		p := float64(probs.Data[bi*c+labels[bi]])
		if p < 1e-12 {
			p = 1e-12
		}
		total += -math.Log(p)
	}
	return probs, total
}
