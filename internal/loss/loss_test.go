package loss

import (
	"math"
	"testing"

	"ndsnn/internal/rng"
	"ndsnn/internal/tensor"
)

func TestCrossEntropyUniformLogits(t *testing.T) {
	// Zero logits over C classes → loss = ln(C).
	out := tensor.New(2, 4)
	l, grads := CrossEntropyRate([]*tensor.Tensor{out}, []int{0, 3})
	if math.Abs(l-math.Log(4)) > 1e-6 {
		t.Fatalf("loss = %v, want ln4 = %v", l, math.Log(4))
	}
	if len(grads) != 1 {
		t.Fatalf("got %d grad tensors, want 1", len(grads))
	}
}

func TestCrossEntropyPerfectPrediction(t *testing.T) {
	out := tensor.FromSlice([]float32{50, 0, 0}, 1, 3)
	l, _ := CrossEntropyRate([]*tensor.Tensor{out}, []int{0})
	if l > 1e-6 {
		t.Fatalf("confident correct prediction loss = %v, want ~0", l)
	}
}

func TestCrossEntropyGradientSignsAndSum(t *testing.T) {
	out := tensor.FromSlice([]float32{1, 2, 3}, 1, 3)
	_, grads := CrossEntropyRate([]*tensor.Tensor{out}, []int{1})
	g := grads[0]
	// Gradient at the true class is negative, others positive; rows sum to 0.
	if g.Data[1] >= 0 {
		t.Fatalf("true-class grad = %v, want < 0", g.Data[1])
	}
	if g.Data[0] <= 0 || g.Data[2] <= 0 {
		t.Fatalf("other-class grads = %v %v, want > 0", g.Data[0], g.Data[2])
	}
	sum := g.Data[0] + g.Data[1] + g.Data[2]
	if math.Abs(float64(sum)) > 1e-6 {
		t.Fatalf("grad row sum = %v, want 0", sum)
	}
}

func TestCrossEntropyGradientMatchesFiniteDifference(t *testing.T) {
	r := rng.New(1)
	T, B, C := 3, 2, 5
	outs := make([]*tensor.Tensor, T)
	for i := range outs {
		outs[i] = tensor.New(B, C)
		for j := range outs[i].Data {
			outs[i].Data[j] = r.NormFloat32()
		}
	}
	labels := []int{2, 4}
	_, grads := CrossEntropyRate(outs, labels)
	const eps = 1e-3
	for ti := 0; ti < T; ti++ {
		for j := 0; j < B*C; j++ {
			outs[ti].Data[j] += eps
			up, _ := CrossEntropyRate(outs, labels)
			outs[ti].Data[j] -= 2 * eps
			down, _ := CrossEntropyRate(outs, labels)
			outs[ti].Data[j] += eps
			numeric := (up - down) / (2 * eps)
			analytic := float64(grads[ti].Data[j])
			if math.Abs(numeric-analytic) > 1e-4 {
				t.Fatalf("t=%d j=%d: analytic %v vs numeric %v", ti, j, analytic, numeric)
			}
		}
	}
}

func TestMSERateGradientMatchesFiniteDifference(t *testing.T) {
	r := rng.New(2)
	T, B, C := 2, 2, 3
	outs := make([]*tensor.Tensor, T)
	for i := range outs {
		outs[i] = tensor.New(B, C)
		for j := range outs[i].Data {
			outs[i].Data[j] = r.Float32()
		}
	}
	labels := []int{0, 2}
	_, grads := MSERate(outs, labels)
	const eps = 1e-3
	for ti := 0; ti < T; ti++ {
		for j := 0; j < B*C; j++ {
			outs[ti].Data[j] += eps
			up, _ := MSERate(outs, labels)
			outs[ti].Data[j] -= 2 * eps
			down, _ := MSERate(outs, labels)
			outs[ti].Data[j] += eps
			numeric := (up - down) / (2 * eps)
			analytic := float64(grads[ti].Data[j])
			if math.Abs(numeric-analytic) > 1e-4 {
				t.Fatalf("t=%d j=%d: analytic %v vs numeric %v", ti, j, analytic, numeric)
			}
		}
	}
}

func TestMSERatePerfectTarget(t *testing.T) {
	out := tensor.FromSlice([]float32{1, 0, 0}, 1, 3)
	l, _ := MSERate([]*tensor.Tensor{out}, []int{0})
	if l != 0 {
		t.Fatalf("perfect MSE = %v, want 0", l)
	}
}

func TestPredictionsAveragesOverTime(t *testing.T) {
	// Class 0 wins at t0, class 1 wins at t1, but the average favors 1.
	o1 := tensor.FromSlice([]float32{1.0, 0.8}, 1, 2)
	o2 := tensor.FromSlice([]float32{0.0, 1.0}, 1, 2)
	preds := Predictions([]*tensor.Tensor{o1, o2})
	if preds[0] != 1 {
		t.Fatalf("prediction = %d, want 1 (rate-decoded)", preds[0])
	}
}

func TestCountCorrect(t *testing.T) {
	out := tensor.FromSlice([]float32{
		2, 1, 0,
		0, 5, 1,
		1, 0, 9,
	}, 3, 3)
	n := CountCorrect([]*tensor.Tensor{out}, []int{0, 1, 0})
	if n != 2 {
		t.Fatalf("CountCorrect = %d, want 2", n)
	}
}

func TestLabelMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched labels did not panic")
		}
	}()
	CrossEntropyRate([]*tensor.Tensor{tensor.New(2, 3)}, []int{0})
}

func TestEmptyOutputsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty outputs did not panic")
		}
	}()
	CrossEntropyRate(nil, nil)
}
