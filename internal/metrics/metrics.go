// Package metrics implements the paper's efficiency accounting: the
// spike-rate-weighted relative training-cost model of Section IV-C, an
// event-driven synaptic-operation estimator, and trajectory recording used
// to regenerate Fig. 1 and Fig. 5.
package metrics

import "fmt"

// EpochPoint is one epoch of a training trajectory.
type EpochPoint struct {
	Epoch     int
	Sparsity  float64
	Density   float64
	SpikeRate float64
	TrainAcc  float64
	Loss      float64
}

// Trajectory records per-epoch training state for one run.
type Trajectory struct {
	Label  string
	Points []EpochPoint
}

// Add appends an epoch point.
func (t *Trajectory) Add(p EpochPoint) { t.Points = append(t.Points, p) }

// Sparsities returns the per-epoch sparsity series (Fig. 1's y-axis).
func (t *Trajectory) Sparsities() []float64 {
	out := make([]float64, len(t.Points))
	for i, p := range t.Points {
		out[i] = p.Sparsity
	}
	return out
}

// SpikeRates returns the per-epoch spike-rate series.
func (t *Trajectory) SpikeRates() []float64 {
	out := make([]float64, len(t.Points))
	for i, p := range t.Points {
		out[i] = p.SpikeRate
	}
	return out
}

// Densities returns the per-epoch density series.
func (t *Trajectory) Densities() []float64 {
	out := make([]float64, len(t.Points))
	for i, p := range t.Points {
		out[i] = p.Density
	}
	return out
}

// MeanSparsity returns the average training sparsity, the quantity that
// drives the paper's memory argument (higher average sparsity = cheaper
// training).
func (t *Trajectory) MeanSparsity() float64 {
	if len(t.Points) == 0 {
		return 0
	}
	s := 0.0
	for _, p := range t.Points {
		s += p.Sparsity
	}
	return s / float64(len(t.Points))
}

// RelativeTrainingCost implements Section IV-C: the computation cost of a
// sparse run relative to a dense reference. Epoch i of the sparse run costs
// spikeRate_s[i] × density_s[i]; epoch j of the dense run costs
// spikeRate_d[j]. The relative cost is the ratio of the summed costs, so a
// method that trains for more epochs (e.g. LTH's repeated cycles) pays for
// them. Returns an error if either run is empty.
func RelativeTrainingCost(sparse, dense *Trajectory) (float64, error) {
	if len(sparse.Points) == 0 || len(dense.Points) == 0 {
		return 0, fmt.Errorf("metrics: empty trajectory (sparse %d, dense %d points)", len(sparse.Points), len(dense.Points))
	}
	var num, den float64
	for _, p := range sparse.Points {
		num += p.SpikeRate * p.Density
	}
	for _, p := range dense.Points {
		den += p.SpikeRate * 1.0
	}
	if den == 0 {
		return 0, fmt.Errorf("metrics: dense reference has zero spike activity")
	}
	return num / den, nil
}

// SynapticOps estimates event-driven synaptic operations for processing one
// sample: every active weight fires only when its presynaptic neuron
// spikes, so ops = denseMACs × density × spikeRate × timesteps.
func SynapticOps(denseMACs int64, density, spikeRate float64, timesteps int) float64 {
	return float64(denseMACs) * density * spikeRate * float64(timesteps)
}

// EventStats aggregates the per-layer spike-occupancy counters of the
// event-driven forward engine (layers.EventCounters, rolled up by
// snn.Network.EventStats). Where SynapticOps predicts skipped work from the
// analytic spikeRate × density model, these counters record what the engine
// actually measured — and therefore actually skipped — at each layer's
// activation matrix.
//
// The counters are cumulative since their last reset, not per-Forward: any
// consumer that reports per-window figures (an epoch, a benchmark iteration)
// must call the network's ResetEventStats at the window start, exactly as
// train.Loop.RunEpoch does, or MeasuredSynOps and friends will silently
// accumulate every Forward since the counters were born.
type EventStats struct {
	// Forwards / EventForwards count sample-timesteps processed vs routed
	// through an event-driven kernel.
	Forwards, EventForwards int64
	// Entries / ActiveEntries count activation-matrix entries inspected on
	// binary inputs vs the subset that were spikes.
	Entries, ActiveEntries int64
	// Cols / ActiveCols count im2col output columns vs those with at least
	// one spike in the receptive field (conv layers only).
	Cols, ActiveCols int64
}

// Merge accumulates another layer's (or network's) counters into e.
func (e *EventStats) Merge(o EventStats) {
	e.Forwards += o.Forwards
	e.EventForwards += o.EventForwards
	e.Entries += o.Entries
	e.ActiveEntries += o.ActiveEntries
	e.Cols += o.Cols
	e.ActiveCols += o.ActiveCols
}

// Occupancy returns the measured fraction of activation entries that were
// spikes — the measured counterpart of a trajectory's SpikeRate, and the
// factor by which the event-driven kernels shrink the forward work.
func (e EventStats) Occupancy() float64 {
	if e.Entries == 0 {
		return 0
	}
	return float64(e.ActiveEntries) / float64(e.Entries)
}

// EventCoverage returns the fraction of sample-timesteps that ran
// event-driven.
func (e EventStats) EventCoverage() float64 {
	if e.Forwards == 0 {
		return 0
	}
	return float64(e.EventForwards) / float64(e.Forwards)
}

// ColumnOccupancy returns the fraction of im2col output columns with at
// least one spike — the whole-column skip opportunity left on the table by
// kernels that only mask columns instead of consuming events.
func (e EventStats) ColumnOccupancy() float64 {
	if e.Cols == 0 {
		return 0
	}
	return float64(e.ActiveCols) / float64(e.Cols)
}

// MeasuredSynOps is SynapticOps with the engine's measured spike occupancy
// substituted for the analytic spike rate: the synaptic-operation count the
// dual-sparse forward actually performed, rather than the one the cost model
// predicts. Pass counters covering exactly one report window (see the
// EventStats reset discipline above); occupancy is a ratio, so mixing
// windows skews it toward whichever saw more traffic.
func MeasuredSynOps(denseMACs int64, density float64, e EventStats, timesteps int) float64 {
	return SynapticOps(denseMACs, density, e.Occupancy(), timesteps)
}

// Accuracy is a convenience pair used in result tables.
type Accuracy struct {
	Top1 float64
}

// Confusion builds a confusion matrix from predictions.
func Confusion(classes int, preds, labels []int) [][]int {
	m := make([][]int, classes)
	for i := range m {
		m[i] = make([]int, classes)
	}
	for i, p := range preds {
		if p >= 0 && p < classes && labels[i] >= 0 && labels[i] < classes {
			m[labels[i]][p]++
		}
	}
	return m
}
