package metrics

import (
	"math"
	"testing"
)

func traj(label string, rates, densities []float64) *Trajectory {
	t := &Trajectory{Label: label}
	for i := range rates {
		t.Add(EpochPoint{Epoch: i, SpikeRate: rates[i], Density: densities[i], Sparsity: 1 - densities[i]})
	}
	return t
}

func TestRelativeCostDenseVsItself(t *testing.T) {
	d := traj("dense", []float64{0.2, 0.2, 0.2}, []float64{1, 1, 1})
	c, err := RelativeTrainingCost(d, d)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-1) > 1e-12 {
		t.Fatalf("dense vs dense cost = %v, want 1", c)
	}
}

func TestRelativeCostSparseCheaper(t *testing.T) {
	dense := traj("dense", []float64{0.2, 0.2}, []float64{1, 1})
	sparseRun := traj("sparse", []float64{0.2, 0.2}, []float64{0.1, 0.1})
	c, err := RelativeTrainingCost(sparseRun, dense)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-0.1) > 1e-12 {
		t.Fatalf("sparse cost = %v, want 0.1", c)
	}
}

func TestRelativeCostPaysForExtraEpochs(t *testing.T) {
	// LTH-style: same density per epoch but 3× the epochs costs 3×.
	dense := traj("dense", []float64{0.2}, []float64{1})
	lth := traj("lth", []float64{0.2, 0.2, 0.2}, []float64{1, 1, 1})
	c, err := RelativeTrainingCost(lth, dense)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-3) > 1e-12 {
		t.Fatalf("3-epoch cost = %v, want 3", c)
	}
}

func TestRelativeCostWeightsSpikeRate(t *testing.T) {
	// Lower spike rate → proportionally cheaper at equal density.
	dense := traj("dense", []float64{0.4}, []float64{1})
	quiet := traj("quiet", []float64{0.1}, []float64{1})
	c, err := RelativeTrainingCost(quiet, dense)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-0.25) > 1e-12 {
		t.Fatalf("quiet cost = %v, want 0.25", c)
	}
}

func TestRelativeCostErrors(t *testing.T) {
	dense := traj("dense", []float64{0.2}, []float64{1})
	if _, err := RelativeTrainingCost(&Trajectory{}, dense); err == nil {
		t.Fatal("empty sparse trajectory not rejected")
	}
	if _, err := RelativeTrainingCost(dense, &Trajectory{}); err == nil {
		t.Fatal("empty dense trajectory not rejected")
	}
	zero := traj("z", []float64{0}, []float64{1})
	if _, err := RelativeTrainingCost(dense, zero); err == nil {
		t.Fatal("zero-activity dense reference not rejected")
	}
}

func TestTrajectoryAccessors(t *testing.T) {
	tr := traj("x", []float64{0.1, 0.3}, []float64{0.5, 0.25})
	if got := tr.SpikeRates(); got[0] != 0.1 || got[1] != 0.3 {
		t.Fatalf("SpikeRates = %v", got)
	}
	if got := tr.Densities(); got[0] != 0.5 || got[1] != 0.25 {
		t.Fatalf("Densities = %v", got)
	}
	if got := tr.Sparsities(); got[0] != 0.5 || got[1] != 0.75 {
		t.Fatalf("Sparsities = %v", got)
	}
	if got := tr.MeanSparsity(); math.Abs(got-0.625) > 1e-12 {
		t.Fatalf("MeanSparsity = %v", got)
	}
}

func TestMeanSparsityEmpty(t *testing.T) {
	if (&Trajectory{}).MeanSparsity() != 0 {
		t.Fatal("empty trajectory mean sparsity should be 0")
	}
}

func TestSynapticOps(t *testing.T) {
	// 1000 MACs, 10% density, 20% spike rate, 5 timesteps → 100 ops.
	got := SynapticOps(1000, 0.1, 0.2, 5)
	if math.Abs(got-100) > 1e-9 {
		t.Fatalf("SynapticOps = %v, want 100", got)
	}
}

func TestConfusionMatrix(t *testing.T) {
	m := Confusion(3, []int{0, 1, 2, 1}, []int{0, 1, 1, 1})
	if m[0][0] != 1 || m[1][1] != 2 || m[1][2] != 1 {
		t.Fatalf("confusion = %v", m)
	}
	total := 0
	for _, row := range m {
		for _, v := range row {
			total += v
		}
	}
	if total != 4 {
		t.Fatalf("confusion total = %d, want 4", total)
	}
}

func TestConfusionIgnoresOutOfRange(t *testing.T) {
	m := Confusion(2, []int{5}, []int{0})
	for _, row := range m {
		for _, v := range row {
			if v != 0 {
				t.Fatal("out-of-range prediction counted")
			}
		}
	}
}

func TestEventStats(t *testing.T) {
	var e EventStats
	e.Merge(EventStats{Forwards: 10, EventForwards: 5, Entries: 100, ActiveEntries: 10, Cols: 20, ActiveCols: 15})
	e.Merge(EventStats{Forwards: 10, EventForwards: 10, Entries: 100, ActiveEntries: 30, Cols: 20, ActiveCols: 5})
	if e.Occupancy() != 0.2 {
		t.Fatalf("occupancy %v, want 0.2", e.Occupancy())
	}
	if e.EventCoverage() != 0.75 {
		t.Fatalf("coverage %v, want 0.75", e.EventCoverage())
	}
	if e.ColumnOccupancy() != 0.5 {
		t.Fatalf("column occupancy %v, want 0.5", e.ColumnOccupancy())
	}
	// Measured synops substitutes the measured occupancy for the analytic
	// spike rate: 1000 MACs × 0.1 density × 0.2 occupancy × 5 timesteps.
	if got := MeasuredSynOps(1000, 0.1, e, 5); math.Abs(got-100) > 1e-9 {
		t.Fatalf("measured synops %v, want 100", got)
	}
	var zero EventStats
	if zero.Occupancy() != 0 || zero.EventCoverage() != 0 || zero.ColumnOccupancy() != 0 {
		t.Fatal("zero-value EventStats must report zero rates")
	}
}
