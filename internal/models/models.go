// Package models builds the paper's evaluation architectures as spiking
// networks: VGG-16 and ResNet-19 (accuracy tables) and LeNet-5 (the ADMM
// comparison), each definable at full paper width or at width-scaled
// profiles that make CPU training tractable while preserving the layer
// structure, the ERK allocation geometry and the drop/grow code paths.
package models

import (
	"fmt"
	"math"

	"ndsnn/internal/layers"
	"ndsnn/internal/rng"
	"ndsnn/internal/snn"
)

// Profile scales an architecture's width. The paper profile is 1×; the
// mini/tiny profiles shrink channel and FC widths for CPU benches and tests.
type Profile struct {
	Name string
	// Width multiplies convolution channel counts.
	Width float64
	// FCWidth multiplies hidden fully-connected widths.
	FCWidth float64
}

// Predefined profiles.
var (
	ProfilePaper = Profile{Name: "paper", Width: 1, FCWidth: 1}
	ProfileMini  = Profile{Name: "mini", Width: 1.0 / 8, FCWidth: 1.0 / 8}
	ProfileTiny  = Profile{Name: "tiny", Width: 1.0 / 16, FCWidth: 1.0 / 16}
)

// ProfileByName resolves "paper", "mini" or "tiny" (default mini).
func ProfileByName(name string) Profile {
	switch name {
	case "paper":
		return ProfilePaper
	case "tiny":
		return ProfileTiny
	default:
		return ProfileMini
	}
}

func (p Profile) scale(c int) int {
	s := int(math.Round(float64(c) * p.Width))
	if s < 4 {
		s = 4
	}
	return s
}

func (p Profile) scaleFC(c int) int {
	s := int(math.Round(float64(c) * p.FCWidth))
	if s < 16 {
		s = 16
	}
	return s
}

// Config describes a model to build.
type Config struct {
	// Arch is "vgg16", "resnet19" or "lenet5".
	Arch string
	// Classes is the output dimension.
	Classes int
	// InC/InH/InW describe the input geometry.
	InC, InH, InW int
	// Timesteps is the SNN simulation length T.
	Timesteps int
	// Neuron configures every LIF in the model.
	Neuron snn.NeuronConfig
	// Profile scales the width.
	Profile Profile
	// Seed controls weight initialization.
	Seed uint64
}

// Build constructs the requested architecture. Every network runs the tape
// engine's time-major (layer-major) schedule, where the fused-timestep
// kernels and the ParLIF sequence fast paths live; the old step-major loop
// is pinned as golden fixtures in the snn package's equivalence tests.
func Build(cfg Config) *snn.Network {
	switch cfg.Arch {
	case "vgg16":
		return VGG16(cfg)
	case "resnet19":
		return ResNet19(cfg)
	case "lenet5":
		return LeNet5(cfg)
	default:
		panic(fmt.Sprintf("models: unknown architecture %q", cfg.Arch))
	}
}

// vgg16Plan is the classic 13-convolution layout; "M" entries are 2×2 max
// pools.
var vgg16Plan = []interface{}{
	64, 64, "M",
	128, 128, "M",
	256, 256, 256, "M",
	512, 512, 512, "M",
	512, 512, 512, "M",
}

// VGG16 builds the spiking VGG-16: 13 conv(3×3)+BN+LIF stages with max
// pools, then a three-layer spiking classifier (the paper's 16 weighted
// layers). Pools that would shrink the spatial size below 1 are skipped, and
// any remaining spatial extent is removed by a global average pool, so the
// same architecture accepts 16/32/64-pixel inputs.
func VGG16(cfg Config) *snn.Network {
	r := rng.New(cfg.Seed)
	var ls []layers.Layer
	inC := cfg.InC
	size := cfg.InH
	convIdx := 0
	for _, item := range vgg16Plan {
		switch v := item.(type) {
		case int:
			outC := cfg.Profile.scale(v)
			convIdx++
			name := fmt.Sprintf("conv%d", convIdx)
			ls = append(ls,
				layers.NewConv2d(name, inC, outC, 3, 1, 1, false, r),
				layers.NewBatchNorm(name+".bn", outC),
				cfg.Neuron.NewNeuron(),
			)
			inC = outC
		case string:
			if size >= 2 {
				ls = append(ls, layers.NewMaxPool2d(2, 2))
				size /= 2
			}
		}
	}
	if size > 1 {
		ls = append(ls, layers.NewAvgPool2d(size, size))
		size = 1
	}
	fcW := cfg.Profile.scaleFC(512)
	// Hidden classifier layers carry BN like the conv stages: without it the
	// spiking classifier's firing rate collapses at narrow widths (the same
	// reason directly-trained deep SNNs normalize every weighted stage).
	ls = append(ls,
		layers.NewFlatten(),
		layers.NewLinear("fc1", inC, fcW, true, r),
		layers.NewBatchNorm("fc1.bn", fcW),
		cfg.Neuron.NewNeuron(),
		layers.NewLinear("fc2", fcW, fcW, true, r),
		layers.NewBatchNorm("fc2.bn", fcW),
		cfg.Neuron.NewNeuron(),
		layers.NewLinear("fc3", fcW, cfg.Classes, true, r),
	)
	return &snn.Network{Layers: ls, T: cfg.Timesteps}
}

// ResNet19 builds the spiking ResNet-19 of directly-trained deep SNNs:
// conv(128)+BN+LIF, three residual stages of [3,3,2] basic blocks with
// channels [128,256,512] (stride 2 entering stages 2 and 3), global average
// pooling, then fc(256)+LIF and the classifier — 17 convolutions and 2
// fully-connected layers.
func ResNet19(cfg Config) *snn.Network {
	r := rng.New(cfg.Seed)
	c1 := cfg.Profile.scale(128)
	c2 := cfg.Profile.scale(256)
	c3 := cfg.Profile.scale(512)
	var ls []layers.Layer
	ls = append(ls,
		layers.NewConv2d("stem", cfg.InC, c1, 3, 1, 1, false, r),
		layers.NewBatchNorm("stem.bn", c1),
		cfg.Neuron.NewNeuron(),
	)
	size := cfg.InH
	stage := func(name string, inC, outC, blocks, stride int) int {
		for b := 0; b < blocks; b++ {
			s := 1
			ic := outC
			if b == 0 {
				s = stride
				ic = inC
			}
			ls = append(ls, snn.NewResidualBlock(fmt.Sprintf("%s.b%d", name, b), ic, outC, s, cfg.Neuron, r))
		}
		size /= stride
		return outC
	}
	c := stage("stage1", c1, c1, 3, 1)
	c = stage("stage2", c, c2, 3, 2)
	c = stage("stage3", c, c3, 2, 2)
	if size > 1 {
		ls = append(ls, layers.NewAvgPool2d(size, size))
	}
	fcW := cfg.Profile.scaleFC(256)
	ls = append(ls,
		layers.NewFlatten(),
		layers.NewLinear("fc1", c, fcW, true, r),
		layers.NewBatchNorm("fc1.bn", fcW),
		cfg.Neuron.NewNeuron(),
		layers.NewLinear("fc2", fcW, cfg.Classes, true, r),
	)
	return &snn.Network{Layers: ls, T: cfg.Timesteps}
}

// LeNet5 builds the spiking LeNet-5 used in the ADMM comparison (Table II):
// conv(6,5×5), pool, conv(16,5×5), pool, then 120-84-classes spiking
// classifier.
func LeNet5(cfg Config) *snn.Network {
	r := rng.New(cfg.Seed)
	c1 := cfg.Profile.scale(6)
	c2 := cfg.Profile.scale(16)
	f1 := cfg.Profile.scaleFC(120)
	f2 := cfg.Profile.scaleFC(84)
	// Classic LeNet geometry: 5×5 valid convolutions with 2×2 pools.
	size := cfg.InH
	size = size - 4 // conv1
	size /= 2       // pool1
	size = size - 4 // conv2
	size /= 2       // pool2
	if size < 1 {
		panic(fmt.Sprintf("models: input %dx%d too small for LeNet-5", cfg.InH, cfg.InW))
	}
	ls := []layers.Layer{
		layers.NewConv2d("conv1", cfg.InC, c1, 5, 1, 0, false, r),
		layers.NewBatchNorm("conv1.bn", c1),
		cfg.Neuron.NewNeuron(),
		layers.NewAvgPool2d(2, 2),
		layers.NewConv2d("conv2", c1, c2, 5, 1, 0, false, r),
		layers.NewBatchNorm("conv2.bn", c2),
		cfg.Neuron.NewNeuron(),
		layers.NewAvgPool2d(2, 2),
		layers.NewFlatten(),
		layers.NewLinear("fc1", c2*size*size, f1, true, r),
		layers.NewBatchNorm("fc1.bn", f1),
		cfg.Neuron.NewNeuron(),
		layers.NewLinear("fc2", f1, f2, true, r),
		layers.NewBatchNorm("fc2.bn", f2),
		cfg.Neuron.NewNeuron(),
		layers.NewLinear("fc3", f2, cfg.Classes, true, r),
	}
	return &snn.Network{Layers: ls, T: cfg.Timesteps}
}

// ParamCount returns the total number of trainable scalars in the network.
func ParamCount(net *snn.Network) int {
	n := 0
	for _, p := range net.Params() {
		n += p.W.Size()
	}
	return n
}

// PrunableCount returns the number of weights eligible for sparsification.
func PrunableCount(net *snn.Network) int {
	n := 0
	for _, p := range layers.PrunableParams(net.Params()) {
		n += p.W.Size()
	}
	return n
}

// Census describes one parameter tensor for reports and ERK allocation.
type Census struct {
	Name     string
	Shape    []int
	Size     int
	Prunable bool
}

// ParamCensus lists every parameter tensor in order.
func ParamCensus(net *snn.Network) []Census {
	var out []Census
	for _, p := range net.Params() {
		out = append(out, Census{Name: p.Name, Shape: p.W.Shape(), Size: p.W.Size(), Prunable: !p.NoPrune})
	}
	return out
}
