package models

import (
	"strings"
	"testing"

	"ndsnn/internal/layers"
	"ndsnn/internal/snn"
	"ndsnn/internal/tensor"
)

func cfgFor(arch string, profile Profile, h int, classes int) Config {
	return Config{
		Arch: arch, Classes: classes, InC: 3, InH: h, InW: h,
		Timesteps: 2, Neuron: snn.DefaultNeuron(), Profile: profile, Seed: 1,
	}
}

func TestVGG16PaperParamCount(t *testing.T) {
	// 13 convs + 3 FCs at full width on 32×32/10-class inputs.
	// Conv weights: 3·64·9 + 64·64·9 + 64·128·9 + 128·128·9 + 128·256·9 +
	// 2×256·256·9 + 256·512·9 + 2×512·512·9 + 3×512·512·9 = 14,710,464.
	// FC: (512·512+512) + (512·512+512) + (512·10+10) = 530,442.
	// BN affines: conv 2×(64+64+128+128+256×3+512×6) = 8,448 plus the two
	// classifier BNs 2×(512+512) = 2,048.
	net := Build(cfgFor("vgg16", ProfilePaper, 32, 10))
	want := 14710464 + 530442 + 8448 + 2048
	if got := ParamCount(net); got != want {
		t.Fatalf("VGG-16 paper params = %d, want %d", got, want)
	}
}

func TestResNet19PaperParamCount(t *testing.T) {
	net := Build(cfgFor("resnet19", ProfilePaper, 32, 10))
	got := ParamCount(net)
	// ResNet-19 at full width is ~12.6M parameters; accept the exact
	// computed value and guard the order of magnitude.
	if got < 12_000_000 || got > 14_000_000 {
		t.Fatalf("ResNet-19 paper params = %d, want ~12-14M", got)
	}
}

func TestMiniProfilesShrink(t *testing.T) {
	full := ParamCount(Build(cfgFor("vgg16", ProfilePaper, 32, 10)))
	mini := ParamCount(Build(cfgFor("vgg16", ProfileMini, 32, 10)))
	tiny := ParamCount(Build(cfgFor("vgg16", ProfileTiny, 32, 10)))
	if !(tiny < mini && mini < full) {
		t.Fatalf("profile ordering violated: %d %d %d", tiny, mini, full)
	}
	if mini > full/20 {
		t.Fatalf("mini profile too large: %d vs %d", mini, full)
	}
}

func TestForwardShapesAllArchitectures(t *testing.T) {
	cases := []struct {
		arch    string
		h       int
		classes int
	}{
		{"vgg16", 32, 10},
		{"vgg16", 64, 200},
		{"vgg16", 16, 4},
		{"resnet19", 32, 10},
		{"resnet19", 64, 200},
		{"lenet5", 32, 10},
	}
	for _, c := range cases {
		net := Build(cfgFor(c.arch, ProfileTiny, c.h, c.classes))
		x := tensor.New(2, 3, c.h, c.h)
		outs := net.Forward(x, false)
		if len(outs) != 2 {
			t.Fatalf("%s: %d timestep outputs", c.arch, len(outs))
		}
		for _, o := range outs {
			if o.Dim(0) != 2 || o.Dim(1) != c.classes {
				t.Fatalf("%s h=%d: output shape %v, want [2 %d]", c.arch, c.h, o.Shape(), c.classes)
			}
		}
	}
}

func TestBackwardRunsAllArchitectures(t *testing.T) {
	for _, arch := range []string{"vgg16", "resnet19", "lenet5"} {
		net := Build(cfgFor(arch, ProfileTiny, 32, 4))
		x := tensor.New(2, 3, 32, 32)
		outs := net.Forward(x, true)
		douts := make([]*tensor.Tensor, len(outs))
		for i := range douts {
			douts[i] = tensor.New(outs[i].Shape()...)
			douts[i].Fill(0.1)
		}
		net.Backward(douts)
		nonzeroGrad := false
		for _, p := range net.Params() {
			if p.Grad.CountNonZero() > 0 {
				nonzeroGrad = true
				break
			}
		}
		if !nonzeroGrad {
			t.Fatalf("%s: backward produced all-zero gradients", arch)
		}
	}
}

func TestLeNetGeometryPanicsWhenTooSmall(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("LeNet on 8x8 did not panic")
		}
	}()
	Build(cfgFor("lenet5", ProfilePaper, 8, 10))
}

func TestUnknownArchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown arch did not panic")
		}
	}()
	Build(cfgFor("alexnet", ProfilePaper, 32, 10))
}

func TestParamCensus(t *testing.T) {
	net := Build(cfgFor("lenet5", ProfileTiny, 32, 10))
	census := ParamCensus(net)
	total := 0
	prunable := 0
	for _, c := range census {
		total += c.Size
		if c.Prunable {
			prunable += c.Size
		}
		if c.Name == "" || len(c.Shape) == 0 {
			t.Fatalf("census entry incomplete: %+v", c)
		}
	}
	if total != ParamCount(net) {
		t.Fatalf("census total %d != ParamCount %d", total, ParamCount(net))
	}
	if prunable != PrunableCount(net) {
		t.Fatalf("census prunable %d != PrunableCount %d", prunable, PrunableCount(net))
	}
	if prunable >= total {
		t.Fatal("expected some non-prunable params (BN affines, biases)")
	}
}

func TestPrunableExcludesBNAndBias(t *testing.T) {
	net := Build(cfgFor("vgg16", ProfileTiny, 32, 10))
	for _, p := range net.Params() {
		prunable := !p.NoPrune
		isAux := strings.Contains(p.Name, ".bn") || strings.HasSuffix(p.Name, ".gamma") ||
			strings.HasSuffix(p.Name, ".beta") || strings.HasSuffix(p.Name, ".b")
		if isAux && prunable {
			t.Fatalf("aux param %s is marked prunable", p.Name)
		}
		if !isAux && !prunable {
			t.Fatalf("weight param %s is not prunable", p.Name)
		}
	}
}

func TestResNet19HasResidualBlocks(t *testing.T) {
	net := Build(cfgFor("resnet19", ProfileTiny, 32, 10))
	blocks := 0
	for _, l := range net.Layers {
		if _, ok := l.(*snn.ResidualBlock); ok {
			blocks++
		}
	}
	if blocks != 8 {
		t.Fatalf("ResNet-19 has %d residual blocks, want 8 (3+3+2)", blocks)
	}
}

func TestVGG16ConvAndFCCount(t *testing.T) {
	net := Build(cfgFor("vgg16", ProfileTiny, 32, 10))
	convs, fcs := 0, 0
	net.Walk(func(l layers.Layer) {
		switch l.(type) {
		case *layers.Conv2d:
			convs++
		case *layers.Linear:
			fcs++
		}
	})
	if convs != 13 || fcs != 3 {
		t.Fatalf("VGG-16 has %d convs and %d FCs, want 13 and 3", convs, fcs)
	}
}

func TestResNet19ConvAndFCCount(t *testing.T) {
	net := Build(cfgFor("resnet19", ProfileTiny, 32, 10))
	convs, fcs := 0, 0
	net.Walk(func(l layers.Layer) {
		switch c := l.(type) {
		case *layers.Conv2d:
			// Projection shortcuts (1×1) are not counted in the "19".
			if c.K == 3 {
				convs++
			}
		case *layers.Linear:
			fcs++
		}
	})
	if convs != 17 || fcs != 2 {
		t.Fatalf("ResNet-19 has %d 3x3 convs and %d FCs, want 17 and 2", convs, fcs)
	}
}

func TestProfileByName(t *testing.T) {
	if ProfileByName("paper").Width != 1 {
		t.Fatal("paper profile wrong")
	}
	if ProfileByName("tiny").Width != 1.0/16 {
		t.Fatal("tiny profile wrong")
	}
	if ProfileByName("unknown").Name != "mini" {
		t.Fatal("default profile should be mini")
	}
}

func TestDeterministicBuild(t *testing.T) {
	a := Build(cfgFor("lenet5", ProfileTiny, 32, 10))
	b := Build(cfgFor("lenet5", ProfileTiny, 32, 10))
	pa, pb := a.Params(), b.Params()
	for i := range pa {
		for j := range pa[i].W.Data {
			if pa[i].W.Data[j] != pb[i].W.Data[j] {
				t.Fatal("same seed produced different weights")
			}
		}
	}
}
