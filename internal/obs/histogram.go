package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Log-bucketed latency histogram, HdrHistogram-style: each octave of the
// int64 value range is split into 16 linear sub-buckets, so any recorded
// value lands in a bucket whose width is at most 1/16 of its magnitude. That
// bounds every bucket-derived quantile to ≤6.25% relative error while keeping
// the whole histogram a fixed array of atomic counters — recording is exactly
// one atomic add, snapshots are a lock-free array copy, and snapshots merge
// by element-wise addition (the property the serving layer needs to combine
// per-dispatcher views).

const (
	// histSubBits is log2 of the sub-buckets per octave; 4 → 16 sub-buckets
	// → ≤ 2^-4 = 6.25% relative quantile error.
	histSubBits    = 4
	histSubBuckets = 1 << histSubBits
	// histBuckets covers the full non-negative int64 range: values below
	// histSubBuckets map exactly to their own bucket, every octave up to
	// 2^63-1 (floor-log2 exponent 4..62) contributes histSubBuckets more.
	histBuckets = (62-histSubBits+1)*histSubBuckets + histSubBuckets
)

// bucketIndex maps a value to its bucket. Negative values clamp to bucket 0.
// The mapping is monotonic, so bucket order preserves value order — the
// property Quantile relies on.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	uv := uint64(v)
	if uv < histSubBuckets {
		return int(uv)
	}
	e := bits.Len64(uv) - 1 // floor(log2), ≥ histSubBits
	sub := (uv >> (uint(e) - histSubBits)) & (histSubBuckets - 1)
	return (e-histSubBits+1)*histSubBuckets + int(sub)
}

// bucketBound returns the largest value mapping to bucket idx — the
// representative Quantile reports, an upper bound of every value in the
// bucket and at most 6.25% above the smallest.
func bucketBound(idx int) int64 {
	if idx < histSubBuckets {
		return int64(idx)
	}
	e := uint(idx/histSubBuckets + histSubBits - 1)
	sub := int64(idx % histSubBuckets)
	w := int64(1) << (e - histSubBits)
	lo := (histSubBuckets + sub) << (e - histSubBits)
	return lo + w - 1
}

// Histogram is a lock-free log-bucketed value distribution. The zero value is
// NOT usable — obtain histograms from Registry.Histogram — but a nil
// *Histogram is: every method on nil is a no-op (one branch), which is how
// telemetry compiles out of hot paths when disabled.
type Histogram struct {
	name    string
	unit    string
	buckets [histBuckets]atomic.Uint64
}

// Name returns the metric name (may carry a {label="value"} suffix).
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// Record adds one observation: exactly one atomic add. Nil-safe (one branch
// when disabled); negative values clamp to zero.
func (h *Histogram) Record(v int64) {
	if h == nil {
		return
	}
	h.buckets[bucketIndex(v)].Add(1)
}

// Snapshot returns a consistent-enough copy of the histogram for reporting:
// each bucket is read atomically (records racing the copy land in either the
// snapshot or the next one, never torn).
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{}
	if h == nil {
		return s
	}
	s.Name, s.Unit = h.name, h.unit
	s.Counts = make([]uint64, histBuckets)
	for i := range h.buckets {
		c := h.buckets[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}

// HistSnapshot is a point-in-time copy of a Histogram. Snapshots are plain
// values: mergeable, serializable, and safe to keep.
type HistSnapshot struct {
	Name  string `json:"name"`
	Unit  string `json:"unit,omitempty"`
	Count uint64 `json:"count"`
	// Counts holds the per-bucket tallies (len histBuckets; omitted from
	// JSON in favor of the derived quantiles).
	Counts []uint64 `json:"-"`
	// Derived summary fields populated by Finalize for serialization.
	P50  int64   `json:"p50"`
	P90  int64   `json:"p90"`
	P99  int64   `json:"p99"`
	Max  int64   `json:"max"`
	Mean float64 `json:"mean"`
}

// Merge adds another snapshot's tallies into this one (bucket layouts are
// identical by construction). Empty snapshots merge as no-ops.
func (s *HistSnapshot) Merge(o HistSnapshot) {
	if o.Count == 0 {
		return
	}
	if s.Counts == nil {
		s.Counts = make([]uint64, histBuckets)
	}
	for i, c := range o.Counts {
		s.Counts[i] += c
	}
	s.Count += o.Count
	s.Finalize()
}

// Quantile returns the q-th quantile (q in [0,1]) as the upper bound of the
// bucket holding the ⌈q·Count⌉-th smallest observation — always ≥ the true
// value at that rank and at most 6.25% above it. Returns 0 on an empty
// snapshot.
func (s *HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 || len(s.Counts) == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			return bucketBound(i)
		}
	}
	return bucketBound(histBuckets - 1)
}

// ApproxMean returns the bucket-midpoint mean (same ≤6.25% relative error as
// the quantiles; 0 on an empty snapshot).
func (s *HistSnapshot) ApproxMean() float64 {
	if s.Count == 0 || len(s.Counts) == 0 {
		return 0
	}
	var sum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		hi := bucketBound(i)
		var lo int64
		if i >= histSubBuckets {
			lo = bucketBound(i-1) + 1
		} else {
			lo = hi
		}
		sum += float64(c) * (float64(lo+hi) / 2)
	}
	return sum / float64(s.Count)
}

// MaxValue returns the upper bound of the highest occupied bucket (0 when
// empty).
func (s *HistSnapshot) MaxValue() int64 {
	for i := len(s.Counts) - 1; i >= 0; i-- {
		if s.Counts[i] != 0 {
			return bucketBound(i)
		}
	}
	return 0
}

// Finalize fills the derived summary fields (P50/P90/P99/Max/Mean) from the
// bucket tallies, making the snapshot self-describing after serialization.
func (s *HistSnapshot) Finalize() {
	s.P50 = s.Quantile(0.50)
	s.P90 = s.Quantile(0.90)
	s.P99 = s.Quantile(0.99)
	s.Max = s.MaxValue()
	s.Mean = s.ApproxMean()
}
