package obs

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// refQuantile mirrors Quantile's rank convention on a sorted reference
// slice: the ⌈q·n⌉-th smallest value.
func refQuantile(sorted []int64, q float64) int64 {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// checkQuantiles records values into a histogram and asserts every quantile
// against the sorted-slice reference within the documented bound: reported ≥
// reference and reported ≤ reference·(1+2^-histSubBits).
func checkQuantiles(t *testing.T, name string, values []int64) {
	t.Helper()
	h := &Histogram{name: name}
	for _, v := range values {
		h.Record(v)
	}
	sorted := append([]int64(nil), values...)
	for i, v := range sorted {
		if v < 0 {
			sorted[i] = 0 // Record clamps negatives
		}
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	s := h.Snapshot()
	if s.Count != uint64(len(values)) {
		t.Fatalf("%s: count %d, want %d", name, s.Count, len(values))
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
		got := s.Quantile(q)
		ref := refQuantile(sorted, q)
		if got < ref {
			t.Errorf("%s: q%.3f = %d below reference %d", name, q, got, ref)
		}
		slack := ref/(1<<histSubBits) + 1 // ≤6.25% relative + integer slack
		ceil := ref + slack
		if ceil < ref { // overflow near MaxInt64
			ceil = math.MaxInt64
		}
		if got > ceil {
			t.Errorf("%s: q%.3f = %d above bound %d (reference %d)", name, q, got, ceil, ref)
		}
	}
	if max := s.MaxValue(); max < sorted[len(sorted)-1] {
		t.Errorf("%s: max %d below true max %d", name, max, sorted[len(sorted)-1])
	}
}

func TestHistogramQuantilesAdversarial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	allZero := make([]int64, 1000)
	singleBucket := make([]int64, 500)
	for i := range singleBucket {
		singleBucket[i] = 42
	}
	smallExact := make([]int64, 256)
	for i := range smallExact {
		smallExact[i] = int64(i % 16) // the exact small-value buckets
	}
	wideSpread := make([]int64, 2000)
	for i := range wideSpread {
		wideSpread[i] = int64(rng.Intn(1_000_000_000)) // 1e9 spread
	}
	exponential := make([]int64, 2000)
	for i := range exponential {
		exponential[i] = int64(math.Exp(rng.Float64() * 20))
	}
	bimodal := make([]int64, 1000)
	for i := range bimodal {
		if i%2 == 0 {
			bimodal[i] = 100
		} else {
			bimodal[i] = 900_000_000
		}
	}
	negatives := []int64{-5, -1, 0, 3, 1000}
	huge := []int64{math.MaxInt64, math.MaxInt64 / 2, 1}

	checkQuantiles(t, "all-zero", allZero)
	checkQuantiles(t, "single-bucket", singleBucket)
	checkQuantiles(t, "small-exact", smallExact)
	checkQuantiles(t, "1e9-spread", wideSpread)
	checkQuantiles(t, "exponential", exponential)
	checkQuantiles(t, "bimodal", bimodal)
	checkQuantiles(t, "negatives-clamp", negatives)
	checkQuantiles(t, "max-int64", huge)
}

func TestHistogramSmallValuesExact(t *testing.T) {
	// Values below histSubBuckets occupy dedicated buckets: quantiles on them
	// are exact, not just bounded.
	h := &Histogram{name: "exact"}
	for v := int64(0); v < histSubBuckets; v++ {
		h.Record(v)
	}
	s := h.Snapshot()
	if got := s.Quantile(0.5); got != histSubBuckets/2-1 {
		t.Fatalf("p50 over 0..%d = %d, want %d", histSubBuckets-1, got, histSubBuckets/2-1)
	}
	if got := s.Quantile(1); got != histSubBuckets-1 {
		t.Fatalf("p100 = %d, want %d", got, histSubBuckets-1)
	}
}

func TestBucketMappingMonotonicAndBounded(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 15, 16, 17, 31, 32, 100, 1023, 1024, 1 << 20, 1 << 40, math.MaxInt64} {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex not monotonic at %d: %d < %d", v, idx, prev)
		}
		prev = idx
		if idx < 0 || idx >= histBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, idx)
		}
		bound := bucketBound(idx)
		if bound < v {
			t.Fatalf("bucketBound(%d) = %d below the value %d that maps there", idx, bound, v)
		}
		if v >= histSubBuckets {
			if rel := float64(bound-v) / float64(v); rel > 1.0/(1<<histSubBits) {
				t.Fatalf("bucketBound(%d)=%d overshoots %d by %.4f (> %.4f)", idx, bound, v, rel, 1.0/(1<<histSubBits))
			}
		} else if bound != v {
			t.Fatalf("small value %d not exact: bound %d", v, bound)
		}
	}
	if bucketBound(histBuckets-1) != math.MaxInt64 {
		t.Fatalf("top bucket bound %d, want MaxInt64", bucketBound(histBuckets-1))
	}
}

func TestHistogramMerge(t *testing.T) {
	a := &Histogram{name: "a"}
	b := &Histogram{name: "b"}
	var all []int64
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		v := int64(rng.Intn(1 << 30))
		all = append(all, v)
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
	}
	merged := a.Snapshot()
	merged.Merge(b.Snapshot())
	whole := &Histogram{name: "whole"}
	for _, v := range all {
		whole.Record(v)
	}
	ws := whole.Snapshot()
	if merged.Count != ws.Count {
		t.Fatalf("merged count %d, want %d", merged.Count, ws.Count)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if merged.Quantile(q) != ws.Quantile(q) {
			t.Fatalf("merge changed q%.2f: %d vs %d", q, merged.Quantile(q), ws.Quantile(q))
		}
	}
	// Merging an empty snapshot is a no-op.
	before := merged.Count
	merged.Merge(HistSnapshot{})
	if merged.Count != before {
		t.Fatalf("empty merge changed count")
	}
}

func TestHistogramRecordAllocFree(t *testing.T) {
	h := New().Histogram("alloc", "ns")
	if allocs := testing.AllocsPerRun(1000, func() { h.Record(12345) }); allocs != 0 {
		t.Fatalf("Record allocates %.1f objects/op, want 0", allocs)
	}
	var nilH *Histogram
	if allocs := testing.AllocsPerRun(1000, func() { nilH.Record(12345) }); allocs != 0 {
		t.Fatalf("nil Record allocates %.1f objects/op, want 0", allocs)
	}
}

// TestHistogramConcurrentHammer drives concurrent record/snapshot/merge —
// the -race pin of the lock-free claim. No assertion beyond totals: the
// interesting property is race-cleanliness plus no lost increments.
func TestHistogramConcurrentHammer(t *testing.T) {
	h := New().Histogram("hammer", "ns")
	const (
		writers = 8
		perW    = 20000
	)
	var readers, writersWG sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent snapshot+merge readers.
	for i := 0; i < 2; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			acc := HistSnapshot{}
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := h.Snapshot()
				acc.Merge(s)
				_ = s.Quantile(0.99)
			}
		}()
	}
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perW; i++ {
				h.Record(int64(rng.Intn(1 << 22)))
			}
		}(w)
	}
	writersWG.Wait()
	close(stop)
	readers.Wait()
	if got := h.Snapshot().Count; got != writers*perW {
		t.Fatalf("lost increments: %d recorded, want %d", got, writers*perW)
	}
}
