// Package obs is the zero-dependency telemetry core of the serving and
// training paths: lock-free log-bucketed latency histograms (one atomic add
// per record, mergeable snapshots with p50/p90/p99 at ≤6.25% relative
// error), monotonic counters, callback gauges, and a fixed-size ring of
// recent request traces.
//
// The design constraint is that telemetry must be free when disabled and
// nearly free when enabled:
//
//   - every recording type (*Histogram, *Counter, *TraceRing) is nil-safe:
//     a nil receiver is a disabled recorder and every method on it is a
//     single predictable branch, so instrumented hot paths carry no cost
//     until a Registry is attached;
//   - enabled recording allocates nothing on the steady-state path: a
//     histogram record is one atomic add into a fixed bucket array, a
//     counter is one atomic add, and trace ring slots reuse their span
//     storage across pushes;
//   - all recording is race-clean at any GOMAXPROCS: histograms and
//     counters are pure atomics, the trace ring takes a short mutex only on
//     the (sampled) tracing path.
//
// A Registry names and owns a set of metrics and exposes three surfaces:
// typed Snapshot() values for tests and facades, a Prometheus-text-format
// writer, and an opt-in http.Handler (see prometheus.go).
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonic atomic counter. A nil *Counter is a disabled
// recorder: Add/Inc on nil are single-branch no-ops.
type Counter struct {
	name string
	v    atomic.Int64
}

// Name returns the metric name.
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Add increments the counter by n. Nil-safe.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. Nil-safe.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// gauge is a named callback sampled at snapshot time — the natural shape for
// values another subsystem already maintains (tape.CacheBytes, queue depth).
type gauge struct {
	name string
	fn   func() int64
}

// counterFunc is a callback-backed monotonic counter: a subsystem that
// already keeps its own atomic total (serve.Stats, the tensor worker pool)
// exports it without double counting.
type counterFunc struct {
	name string
	fn   func() int64
}

// Registry names and owns a set of metrics. All methods are safe for
// concurrent use; metric constructors are idempotent by name (asking for an
// existing name returns the existing instrument). A nil *Registry is a
// disabled registry: constructors return nil instruments, which record
// nothing.
type Registry struct {
	mu           sync.Mutex
	hists        []*Histogram
	histByName   map[string]*Histogram
	counters     []*Counter
	ctrByName    map[string]*Counter
	counterFuncs []counterFunc
	gauges       []gauge
	ring         *TraceRing
}

// New creates an empty registry with a trace ring of the default depth (64).
func New() *Registry {
	return &Registry{
		histByName: map[string]*Histogram{},
		ctrByName:  map[string]*Counter{},
		ring:       NewTraceRing(64),
	}
}

// Histogram returns the named histogram, creating it on first use. The name
// may carry a Prometheus-style label suffix, e.g. `infer_stage_ns{stage="03_lif"}`.
// unit is advisory ("ns", "bytes", "samples"). Nil-safe: a nil registry
// returns a nil (disabled) histogram.
func (r *Registry) Histogram(name, unit string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histByName[name]; ok {
		return h
	}
	h := &Histogram{name: name, unit: unit}
	r.histByName[name] = h
	r.hists = append(r.hists, h)
	return h
}

// Counter returns the named counter, creating it on first use. Nil-safe.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.ctrByName[name]; ok {
		return c
	}
	c := &Counter{name: name}
	r.ctrByName[name] = c
	r.counters = append(r.counters, c)
	return c
}

// CounterFunc registers a callback-backed monotonic counter, replacing any
// previous registration under the same name (so re-wiring a subsystem is
// idempotent). Nil-safe.
func (r *Registry) CounterFunc(name string, fn func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.counterFuncs {
		if r.counterFuncs[i].name == name {
			r.counterFuncs[i].fn = fn
			return
		}
	}
	r.counterFuncs = append(r.counterFuncs, counterFunc{name, fn})
}

// Gauge registers a callback gauge sampled at snapshot time, replacing any
// previous registration under the same name. Nil-safe.
func (r *Registry) Gauge(name string, fn func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.gauges {
		if r.gauges[i].name == name {
			r.gauges[i].fn = fn
			return
		}
	}
	r.gauges = append(r.gauges, gauge{name, fn})
}

// Ring returns the registry's trace ring (nil on a nil registry).
func (r *Registry) Ring() *TraceRing {
	if r == nil {
		return nil
	}
	return r.ring
}

// MetricValue is one counter or gauge sample in a snapshot.
type MetricValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// Snapshot is a typed point-in-time view of a registry — the surface tests
// and facades consume. Histograms come finalized (quantiles populated);
// traces are ordered oldest to newest.
type Snapshot struct {
	Histograms []HistSnapshot `json:"histograms"`
	Counters   []MetricValue  `json:"counters"`
	Gauges     []MetricValue  `json:"gauges"`
	Traces     []Trace        `json:"traces,omitempty"`
	TakenAt    time.Time      `json:"taken_at"`
}

// Hist returns the named histogram snapshot, or nil if absent.
func (s Snapshot) Hist(name string) *HistSnapshot {
	for i := range s.Histograms {
		if s.Histograms[i].Name == name {
			return &s.Histograms[i]
		}
	}
	return nil
}

// Counter returns the named counter's value (0 if absent).
func (s Snapshot) Counter(name string) int64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// Gauge returns the named gauge's sampled value (0 if absent).
func (s Snapshot) Gauge(name string) int64 {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value
		}
	}
	return 0
}

// Snapshot captures every registered metric. Safe to call concurrently with
// recording; a nil registry yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	s.TakenAt = time.Now()
	if r == nil {
		return s
	}
	r.mu.Lock()
	hists := append([]*Histogram(nil), r.hists...)
	counters := append([]*Counter(nil), r.counters...)
	cfs := append([]counterFunc(nil), r.counterFuncs...)
	gauges := append([]gauge(nil), r.gauges...)
	ring := r.ring
	r.mu.Unlock()

	for _, h := range hists {
		hs := h.Snapshot()
		hs.Finalize()
		s.Histograms = append(s.Histograms, hs)
	}
	for _, c := range counters {
		s.Counters = append(s.Counters, MetricValue{c.name, c.Value()})
	}
	for _, cf := range cfs {
		s.Counters = append(s.Counters, MetricValue{cf.name, cf.fn()})
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	for _, g := range gauges {
		s.Gauges = append(s.Gauges, MetricValue{g.name, g.fn()})
	}
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	s.Traces = ring.Snapshot()
	return s
}
