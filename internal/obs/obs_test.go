package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	// A nil registry and nil instruments are fully disabled recorders: every
	// call is a no-op, never a panic.
	var r *Registry
	h := r.Histogram("h", "ns")
	c := r.Counter("c")
	r.Gauge("g", func() int64 { return 1 })
	r.CounterFunc("cf", func() int64 { return 1 })
	ring := r.Ring()
	h.Record(5)
	c.Add(3)
	c.Inc()
	ring.Push("k", time.Now(), 1, []Span{{Name: "s", DurNs: 1}})
	if h != nil || c != nil || ring != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	if c.Value() != 0 || h.Name() != "" || ring.Len() != 0 || ring.Snapshot() != nil {
		t.Fatal("nil instruments must read as empty")
	}
	s := r.Snapshot()
	if len(s.Histograms) != 0 || len(s.Counters) != 0 || len(s.Gauges) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	hs := h.Snapshot()
	if hs.Quantile(0.5) != 0 || hs.ApproxMean() != 0 {
		t.Fatal("nil histogram snapshot must be empty")
	}
}

func TestRegistryIdempotentNames(t *testing.T) {
	r := New()
	h1 := r.Histogram("same", "ns")
	h2 := r.Histogram("same", "ns")
	if h1 != h2 {
		t.Fatal("Histogram not idempotent by name")
	}
	c1, c2 := r.Counter("c"), r.Counter("c")
	if c1 != c2 {
		t.Fatal("Counter not idempotent by name")
	}
	v := int64(1)
	r.Gauge("g", func() int64 { return v })
	r.Gauge("g", func() int64 { return v * 10 }) // replaces
	if got := r.Snapshot().Gauge("g"); got != 10 {
		t.Fatalf("gauge re-registration: got %d, want 10", got)
	}
	r.CounterFunc("cf", func() int64 { return 7 })
	r.CounterFunc("cf", func() int64 { return 8 })
	if got := r.Snapshot().Counter("cf"); got != 8 {
		t.Fatalf("counterfunc re-registration: got %d, want 8", got)
	}
}

func TestSnapshotAccessors(t *testing.T) {
	r := New()
	r.Histogram("lat_ns", "ns").Record(100)
	r.Counter("served").Add(4)
	r.Gauge("depth", func() int64 { return 2 })
	s := r.Snapshot()
	if hs := s.Hist("lat_ns"); hs == nil || hs.Count != 1 || hs.P50 < 100 {
		t.Fatalf("Hist accessor: %+v", s.Hist("lat_ns"))
	}
	if s.Counter("served") != 4 || s.Gauge("depth") != 2 {
		t.Fatal("Counter/Gauge accessors wrong")
	}
	if s.Hist("missing") != nil || s.Counter("missing") != 0 || s.Gauge("missing") != 0 {
		t.Fatal("missing metrics must read as empty")
	}
}

func TestTraceRingWrapAndReuse(t *testing.T) {
	ring := NewTraceRing(3)
	for i := 0; i < 5; i++ {
		ring.Push("serve", time.Unix(int64(i), 0), i+1, []Span{{Name: "q", DurNs: int64(i)}})
	}
	got := ring.Snapshot()
	if len(got) != 3 {
		t.Fatalf("ring kept %d traces, want 3", len(got))
	}
	// Oldest→newest, and the 3 newest of the 5 pushes survive.
	for i, tr := range got {
		wantSeq := uint64(3 + i)
		if tr.Seq != wantSeq {
			t.Fatalf("trace %d: seq %d, want %d", i, tr.Seq, wantSeq)
		}
		if len(tr.Spans) != 1 || tr.Spans[0].Name != "q" {
			t.Fatalf("trace %d spans corrupted: %+v", i, tr.Spans)
		}
	}
	// The snapshot's spans are copies: later pushes must not mutate it.
	ring.Push("serve", time.Now(), 9, []Span{{Name: "other", DurNs: 99}})
	if got[0].Spans[0].Name != "q" {
		t.Fatal("snapshot aliases ring storage")
	}
	if ring.Len() != 6 {
		t.Fatalf("Len=%d, want 6", ring.Len())
	}
}

func TestTraceRingPushAllocFree(t *testing.T) {
	ring := NewTraceRing(4)
	spans := []Span{{Name: "a", DurNs: 1}, {Name: "b", StartNs: 1, DurNs: 2}}
	// Warm every slot so span storage capacity is established.
	for i := 0; i < 8; i++ {
		ring.Push("serve", time.Time{}, 1, spans)
	}
	if allocs := testing.AllocsPerRun(1000, func() { ring.Push("serve", time.Time{}, 1, spans) }); allocs != 0 {
		t.Fatalf("warm Push allocates %.1f objects/op, want 0", allocs)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := New()
	r.Counter("serve_served_total").Add(3)
	r.Gauge("tape_cache_bytes", func() int64 { return 4096 })
	h := r.Histogram(`infer_stage_ns{stage="03_lif"}`, "ns")
	for i := 0; i < 100; i++ {
		h.Record(1000)
	}
	r.Histogram("plain hist!", "ns").Record(5)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE serve_served_total counter",
		"serve_served_total 3",
		"# TYPE tape_cache_bytes gauge",
		"tape_cache_bytes 4096",
		"# TYPE infer_stage_ns summary",
		`infer_stage_ns{stage="03_lif",quantile="0.5"}`,
		`infer_stage_ns_count{stage="03_lif"} 100`,
		"# TYPE plain_hist_ summary", // sanitized
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n---\n%s", want, out)
		}
	}
}

func TestHandler(t *testing.T) {
	r := New()
	r.Counter("c").Inc()
	r.Ring().Push("serve", time.Now(), 2, []Span{{Name: "queue_wait", DurNs: 10}})
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	for path, want := range map[string]string{
		"/metrics":      "# TYPE c counter",
		"/metrics.json": `"counters"`,
	} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		buf := make([]byte, 1<<16)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		if !strings.Contains(sb.String(), want) {
			t.Errorf("%s missing %q:\n%s", path, want, sb.String())
		}
	}
	resp, err := srv.Client().Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("unknown path: status %d, want 404", resp.StatusCode)
	}

	nilSrv := httptest.NewServer(Handler(nil))
	defer nilSrv.Close()
	resp, err = nilSrv.Client().Get(nilSrv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("nil registry handler: status %d, want 404", resp.StatusCode)
	}
}
