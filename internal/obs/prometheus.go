package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Prometheus text exposition. Histograms are written as summaries (the
// quantiles are already bucket-derived, so re-encoding the log buckets as
// `le`-style cumulative buckets would only add transfer weight), counters
// and callback counters as counters, gauges as gauges. Metric names may
// carry a `{label="value"}` suffix (the per-stage instruments do); the
// writer splits it off and merges the quantile label into the label set.

// splitName separates `base{labels}` into base and the inner label string
// (empty when the name carries no labels).
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return sanitizeMetricName(name), ""
	}
	return sanitizeMetricName(name[:i]), strings.TrimSuffix(name[i+1:], "}")
}

// sanitizeMetricName maps a metric name onto the Prometheus grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func sanitizeMetricName(s string) string {
	var b strings.Builder
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// promLabels joins label fragments into a `{...}` suffix ("" when empty).
func promLabels(parts ...string) string {
	var nonEmpty []string
	for _, p := range parts {
		if p != "" {
			nonEmpty = append(nonEmpty, p)
		}
	}
	if len(nonEmpty) == 0 {
		return ""
	}
	return "{" + strings.Join(nonEmpty, ",") + "}"
}

// WritePrometheus writes the registry's current state in the Prometheus text
// exposition format. Nil-safe (writes nothing).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	s := r.Snapshot()
	types := map[string]string{} // base name → emitted TYPE, to emit each once
	emitType := func(base, typ string) {
		if types[base] == "" {
			fmt.Fprintf(w, "# TYPE %s %s\n", base, typ)
			types[base] = typ
		}
	}
	for _, c := range s.Counters {
		base, labels := splitName(c.Name)
		emitType(base, "counter")
		fmt.Fprintf(w, "%s%s %d\n", base, promLabels(labels), c.Value)
	}
	for _, g := range s.Gauges {
		base, labels := splitName(g.Name)
		emitType(base, "gauge")
		fmt.Fprintf(w, "%s%s %d\n", base, promLabels(labels), g.Value)
	}
	for _, h := range s.Histograms {
		base, labels := splitName(h.Name)
		emitType(base, "summary")
		for _, q := range []struct {
			q string
			v int64
		}{{"0.5", h.P50}, {"0.9", h.P90}, {"0.99", h.P99}} {
			fmt.Fprintf(w, "%s%s %d\n", base, promLabels(labels, `quantile="`+q.q+`"`), q.v)
		}
		fmt.Fprintf(w, "%s_sum%s %d\n", base, promLabels(labels), int64(h.Mean*float64(h.Count)))
		fmt.Fprintf(w, "%s_count%s %d\n", base, promLabels(labels), h.Count)
	}
	return nil
}

// Handler returns an http.Handler exposing the registry: the Prometheus text
// format at "/" and "/metrics", and the typed JSON snapshot (histograms
// finalized, recent traces included) at "/metrics.json" — the endpoint
// `ndsnn-inspect metrics` pretty-prints. Mount it on an opt-in listener; the
// core never opens sockets on its own. Nil-safe: a nil registry serves 404s.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if r == nil {
			http.NotFound(w, req)
			return
		}
		switch req.URL.Path {
		case "/", "/metrics":
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = r.WritePrometheus(w)
		case "/metrics.json":
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(r.Snapshot())
		default:
			http.NotFound(w, req)
		}
	})
}
