package obs

import (
	"sync"
	"time"
)

// Request tracing: a fixed-size ring of the most recent traced requests.
// Tracing is sampled (the serving and inference layers trace one pass in N),
// so the ring holds a representative window of recent behavior — what was a
// request actually waiting on: the queue, batch assembly, a particular
// compute stage, requantization — without retaining unbounded history.
//
// A trace's span list is not a strict timeline: per-stage compute segments
// are aggregated across the pass's T timesteps (stage 3's span is the total
// time stage 3 ran for this request, summed over timesteps), then laid out
// cumulatively so the list reads as a proportional breakdown of the pass.

// Span is one segment of a trace: a named duration at a cumulative offset
// (nanoseconds from the trace start).
type Span struct {
	Name    string `json:"name"`
	StartNs int64  `json:"start_ns"`
	DurNs   int64  `json:"dur_ns"`
}

// Trace is one traced request (or coalesced batch pass).
type Trace struct {
	// Seq increases by one per push; gaps in a snapshot mean the ring wrapped.
	Seq uint64 `json:"seq"`
	// Start is the wall-clock begin of the traced work.
	Start time.Time `json:"start"`
	// Kind labels the writer: "serve" for a coalesced serving pass, "infer"
	// for a direct engine request.
	Kind string `json:"kind"`
	// Batch is the number of samples the traced pass carried (1 for direct
	// single-sample requests).
	Batch int `json:"batch"`
	// Spans is the segment breakdown (queue wait, batch assembly, per-stage
	// compute, requantization).
	Spans []Span `json:"spans"`
}

// TraceRing is a fixed-size ring of recent traces. Pushes reuse each slot's
// span storage, so steady-state tracing allocates nothing once every slot
// has grown to the working span count. A nil *TraceRing is a disabled ring:
// Push on nil is a single-branch no-op.
type TraceRing struct {
	mu    sync.Mutex
	slots []Trace
	next  int
	seq   uint64
}

// NewTraceRing creates a ring holding the n most recent traces (n clamped to
// at least 1).
func NewTraceRing(n int) *TraceRing {
	if n < 1 {
		n = 1
	}
	return &TraceRing{slots: make([]Trace, n)}
}

// Push records one trace, copying spans into the ring's reused slot storage
// (the caller keeps ownership of its span buffer). Nil-safe.
func (r *TraceRing) Push(kind string, start time.Time, batch int, spans []Span) {
	if r == nil {
		return
	}
	r.mu.Lock()
	slot := &r.slots[r.next]
	r.next = (r.next + 1) % len(r.slots)
	r.seq++
	slot.Seq = r.seq
	slot.Start = start
	slot.Kind = kind
	slot.Batch = batch
	slot.Spans = append(slot.Spans[:0], spans...)
	r.mu.Unlock()
}

// Len reports how many traces have been pushed in total (not the ring depth).
func (r *TraceRing) Len() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Snapshot returns the retained traces ordered oldest to newest, with span
// lists deep-copied so the caller's view cannot be overwritten by later
// pushes. Nil-safe (returns nil).
func (r *TraceRing) Snapshot() []Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Trace, 0, len(r.slots))
	for i := 0; i < len(r.slots); i++ {
		slot := r.slots[(r.next+i)%len(r.slots)]
		if slot.Seq == 0 {
			continue // never written
		}
		slot.Spans = append([]Span(nil), slot.Spans...)
		out = append(out, slot)
	}
	return out
}
