// Package opt implements the optimizer and learning-rate schedules the
// paper trains with: SGD with momentum and weight decay, and the SGDR
// cosine-annealing schedule (also reused for the NDSNN death-ratio decay).
package opt

import (
	"math"

	"ndsnn/internal/layers"
)

// SGD is stochastic gradient descent with classical momentum and decoupled-
// from-masks weight decay. For masked (sparse) parameters the update is
// restricted to active weights: after each step the mask is re-applied to
// both the weights and the velocity, so inactive positions hold no hidden
// momentum when they are later regrown (matching the SET/RigL reference
// behaviour of re-initializing grown weights' optimizer state).
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64

	velocity map[*layers.Param][]float32
}

// NewSGD constructs the optimizer with the paper's defaults when zeros are
// passed: momentum 0.9, weight decay 5e-4.
func NewSGD(lr, momentum, weightDecay float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, WeightDecay: weightDecay,
		velocity: make(map[*layers.Param][]float32)}
}

// Step applies one update to every parameter using its accumulated gradient.
func (o *SGD) Step(params []*layers.Param) {
	lr := float32(o.LR)
	mom := float32(o.Momentum)
	wd := float32(o.WeightDecay)
	for _, p := range params {
		v := o.velocity[p]
		if v == nil {
			v = make([]float32, p.W.Size())
			o.velocity[p] = v
		}
		gd, wdata := p.Grad.Data, p.W.Data
		var mask []float32
		if p.Mask != nil {
			mask = p.Mask.Data
		}
		for i := range wdata {
			g := gd[i]
			if wd != 0 && !p.NoDecay {
				g += wd * wdata[i]
			}
			v[i] = mom*v[i] + g
			wdata[i] -= lr * v[i]
			if mask != nil && mask[i] == 0 {
				wdata[i] = 0
				v[i] = 0
			}
		}
	}
}

// ResetVelocity clears momentum state (used by LTH when rewinding weights).
func (o *SGD) ResetVelocity() {
	o.velocity = make(map[*layers.Param][]float32)
}

// ClearVelocityAt zeroes the velocity of specific elements of a parameter,
// used when drop-and-grow rewires the mask mid-training.
func (o *SGD) ClearVelocityAt(p *layers.Param, idxs []int) {
	v := o.velocity[p]
	if v == nil {
		return
	}
	for _, i := range idxs {
		v[i] = 0
	}
}

// CosineLR implements SGDR-style cosine annealing (Loshchilov & Hutter,
// ICLR 2017) without restarts: lr(e) interpolates from Base to Min over
// Total epochs along a half cosine.
type CosineLR struct {
	Base, Min float64
	Total     int
}

// At returns the learning rate for epoch e (clamped to [0, Total]).
func (s CosineLR) At(e int) float64 {
	if s.Total <= 0 {
		return s.Base
	}
	if e < 0 {
		e = 0
	}
	if e > s.Total {
		e = s.Total
	}
	return s.Min + 0.5*(s.Base-s.Min)*(1+math.Cos(math.Pi*float64(e)/float64(s.Total)))
}

// StepLR decays the learning rate by Gamma every StepSize epochs.
type StepLR struct {
	Base     float64
	StepSize int
	Gamma    float64
}

// At returns the learning rate for epoch e.
func (s StepLR) At(e int) float64 {
	if s.StepSize <= 0 {
		return s.Base
	}
	return s.Base * math.Pow(s.Gamma, float64(e/s.StepSize))
}

// Schedule yields a learning rate per epoch.
type Schedule interface {
	At(epoch int) float64
}
