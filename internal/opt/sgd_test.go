package opt

import (
	"math"
	"testing"

	"ndsnn/internal/layers"
	"ndsnn/internal/tensor"
)

func TestSGDPlainStep(t *testing.T) {
	p := layers.NewParam("w", tensor.FromSlice([]float32{1, 2}, 2))
	copy(p.Grad.Data, []float32{0.5, -0.5})
	o := NewSGD(0.1, 0, 0)
	o.Step([]*layers.Param{p})
	if math.Abs(float64(p.W.Data[0]-0.95)) > 1e-6 || math.Abs(float64(p.W.Data[1]-2.05)) > 1e-6 {
		t.Fatalf("after step: %v, want [0.95 2.05]", p.W.Data)
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	// With constant gradient g and momentum m, velocity after two steps is
	// g·(1+m); weight = w0 - lr·g - lr·g(1+m).
	p := layers.NewParam("w", tensor.FromSlice([]float32{0}, 1))
	o := NewSGD(1, 0.9, 0)
	p.Grad.Data[0] = 1
	o.Step([]*layers.Param{p})
	if p.W.Data[0] != -1 {
		t.Fatalf("after step 1: %v, want -1", p.W.Data[0])
	}
	p.Grad.Data[0] = 1
	o.Step([]*layers.Param{p})
	if math.Abs(float64(p.W.Data[0]-(-2.9))) > 1e-6 {
		t.Fatalf("after step 2: %v, want -2.9", p.W.Data[0])
	}
}

func TestSGDWeightDecay(t *testing.T) {
	p := layers.NewParam("w", tensor.FromSlice([]float32{10}, 1))
	o := NewSGD(0.1, 0, 0.1)
	o.Step([]*layers.Param{p}) // grad 0, decay pulls toward 0
	if math.Abs(float64(p.W.Data[0]-9.9)) > 1e-5 {
		t.Fatalf("after decay step: %v, want 9.9", p.W.Data[0])
	}
}

func TestSGDNoDecayParamSkipsDecay(t *testing.T) {
	p := layers.NewParam("gamma", tensor.FromSlice([]float32{1}, 1))
	p.NoDecay = true
	o := NewSGD(0.1, 0, 0.1)
	o.Step([]*layers.Param{p})
	if p.W.Data[0] != 1 {
		t.Fatalf("NoDecay param changed: %v", p.W.Data[0])
	}
}

func TestSGDMaskedUpdateKeepsZeros(t *testing.T) {
	p := layers.NewParam("w", tensor.FromSlice([]float32{1, 0, 3}, 3))
	p.Mask = tensor.FromSlice([]float32{1, 0, 1}, 3)
	copy(p.Grad.Data, []float32{1, 5, 1}) // dense gradient, even at masked position
	o := NewSGD(0.1, 0.9, 0)
	o.Step([]*layers.Param{p})
	if p.W.Data[1] != 0 {
		t.Fatalf("masked weight became %v", p.W.Data[1])
	}
	if p.W.Data[0] >= 1 || p.W.Data[2] >= 3 {
		t.Fatal("active weights not updated")
	}
	// Velocity at the masked position must be cleared (no hidden momentum).
	p.Grad.Zero()
	p.Mask.Data[1] = 1 // grow the connection
	o.Step([]*layers.Param{p})
	if p.W.Data[1] != 0 {
		t.Fatalf("grown weight moved by stale momentum: %v", p.W.Data[1])
	}
}

func TestSGDResetVelocity(t *testing.T) {
	p := layers.NewParam("w", tensor.FromSlice([]float32{0}, 1))
	o := NewSGD(1, 0.9, 0)
	p.Grad.Data[0] = 1
	o.Step([]*layers.Param{p})
	o.ResetVelocity()
	p.W.Data[0] = 0
	p.Grad.Data[0] = 1
	o.Step([]*layers.Param{p})
	if p.W.Data[0] != -1 {
		t.Fatalf("velocity survived reset: %v", p.W.Data[0])
	}
}

func TestSGDClearVelocityAt(t *testing.T) {
	p := layers.NewParam("w", tensor.FromSlice([]float32{0, 0}, 2))
	o := NewSGD(1, 0.9, 0)
	copy(p.Grad.Data, []float32{1, 1})
	o.Step([]*layers.Param{p})
	o.ClearVelocityAt(p, []int{0})
	p.Grad.Zero()
	o.Step([]*layers.Param{p})
	// Element 0's momentum was cleared → stays at -1; element 1 coasts.
	if p.W.Data[0] != -1 {
		t.Fatalf("cleared element moved: %v", p.W.Data[0])
	}
	if p.W.Data[1] != -1.9 {
		t.Fatalf("uncleared element = %v, want -1.9", p.W.Data[1])
	}
}

func TestCosineLRBoundaries(t *testing.T) {
	s := CosineLR{Base: 0.3, Min: 0.001, Total: 100}
	if got := s.At(0); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("At(0) = %v, want 0.3", got)
	}
	if got := s.At(100); math.Abs(got-0.001) > 1e-12 {
		t.Fatalf("At(100) = %v, want 0.001", got)
	}
	mid := s.At(50)
	want := 0.001 + 0.5*(0.3-0.001)
	if math.Abs(mid-want) > 1e-12 {
		t.Fatalf("At(50) = %v, want %v", mid, want)
	}
}

func TestCosineLRMonotoneDecreasing(t *testing.T) {
	s := CosineLR{Base: 0.1, Min: 0, Total: 50}
	prev := math.Inf(1)
	for e := 0; e <= 50; e++ {
		lr := s.At(e)
		if lr > prev {
			t.Fatalf("lr increased at epoch %d", e)
		}
		prev = lr
	}
}

func TestCosineLRClampsOutOfRange(t *testing.T) {
	s := CosineLR{Base: 0.1, Min: 0.01, Total: 10}
	if s.At(-5) != s.At(0) {
		t.Fatal("negative epoch not clamped")
	}
	if s.At(99) != s.At(10) {
		t.Fatal("epoch beyond total not clamped")
	}
}

func TestStepLR(t *testing.T) {
	s := StepLR{Base: 1, StepSize: 10, Gamma: 0.1}
	if s.At(0) != 1 || s.At(9) != 1 {
		t.Fatal("first interval wrong")
	}
	if math.Abs(s.At(10)-0.1) > 1e-12 {
		t.Fatalf("At(10) = %v", s.At(10))
	}
	if math.Abs(s.At(25)-0.01) > 1e-12 {
		t.Fatalf("At(25) = %v", s.At(25))
	}
}
