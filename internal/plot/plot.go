// Package plot renders the paper's figures as ASCII charts: multi-series
// line charts (Fig. 1's sparsity-vs-epoch curves, Fig. 4's accuracy-vs-
// sparsity curves) and grouped bar charts (Fig. 5's normalized training
// cost). The output is deterministic text, suitable for terminals, logs and
// EXPERIMENTS.md.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line of (x, y) points.
type Series struct {
	Label string
	X, Y  []float64
}

// LineChart renders one or more series on a shared grid. Width/height are
// the plotting-area dimensions in characters.
type LineChart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int
	Height int
	// YMin/YMax fix the y-range; when both are zero the range is computed
	// from the data.
	YMin, YMax float64
	Series     []Series
}

var seriesMarks = []byte{'*', 'o', '+', 'x', '#', '@'}

// Render draws the chart into a string.
func (c *LineChart) Render() string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 60
	}
	if h <= 0 {
		h = 16
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if math.IsInf(xmin, 1) {
		return c.Title + "\n(no data)\n"
	}
	if c.YMin != 0 || c.YMax != 0 {
		ymin, ymax = c.YMin, c.YMax
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	for si, s := range c.Series {
		mark := seriesMarks[si%len(seriesMarks)]
		for i := range s.X {
			col := int(math.Round((s.X[i] - xmin) / (xmax - xmin) * float64(w-1)))
			y := s.Y[i]
			if y < ymin {
				y = ymin
			}
			if y > ymax {
				y = ymax
			}
			row := h - 1 - int(math.Round((y-ymin)/(ymax-ymin)*float64(h-1)))
			if col >= 0 && col < w && row >= 0 && row < h {
				grid[row][col] = mark
			}
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	for r, row := range grid {
		var label string
		switch r {
		case 0:
			label = fmt.Sprintf("%8.3f", ymax)
		case h - 1:
			label = fmt.Sprintf("%8.3f", ymin)
		default:
			label = strings.Repeat(" ", 8)
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, string(row))
	}
	fmt.Fprintf(&b, "%s +%s+\n", strings.Repeat(" ", 8), strings.Repeat("-", w))
	fmt.Fprintf(&b, "%s  %-*.6g%*.6g\n", strings.Repeat(" ", 8), w/2, xmin, w-w/2, xmax)
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&b, "%s  x: %s   y: %s\n", strings.Repeat(" ", 8), c.XLabel, c.YLabel)
	}
	for si, s := range c.Series {
		fmt.Fprintf(&b, "%s   %c %s\n", strings.Repeat(" ", 8), seriesMarks[si%len(seriesMarks)], s.Label)
	}
	return b.String()
}

// Bar is one labeled value in a bar group.
type Bar struct {
	Label string
	Value float64
}

// BarGroup is a cluster of bars sharing an x-axis label.
type BarGroup struct {
	Label string
	Bars  []Bar
}

// BarChart renders grouped horizontal bars (deterministic, ASCII).
type BarChart struct {
	Title string
	// Unit annotates values, e.g. "%".
	Unit   string
	Width  int
	Groups []BarGroup
}

// Render draws the chart into a string.
func (c *BarChart) Render() string {
	w := c.Width
	if w <= 0 {
		w = 40
	}
	maxVal := 0.0
	maxLabel := 0
	for _, g := range c.Groups {
		for _, b := range g.Bars {
			maxVal = math.Max(maxVal, b.Value)
			if n := len(b.Label); n > maxLabel {
				maxLabel = n
			}
		}
	}
	if maxVal == 0 {
		maxVal = 1
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	for _, g := range c.Groups {
		fmt.Fprintf(&b, "%s\n", g.Label)
		for _, bar := range g.Bars {
			n := int(math.Round(bar.Value / maxVal * float64(w)))
			if n < 0 {
				n = 0
			}
			fmt.Fprintf(&b, "  %-*s |%s %.2f%s\n", maxLabel, bar.Label, strings.Repeat("█", n), bar.Value, c.Unit)
		}
	}
	return b.String()
}
