package plot

import (
	"strings"
	"testing"
)

func TestLineChartRendersAllSeries(t *testing.T) {
	c := &LineChart{
		Title: "sparsity vs epoch",
		Width: 40, Height: 10,
		Series: []Series{
			{Label: "NDSNN", X: []float64{0, 1, 2}, Y: []float64{0.5, 0.7, 0.9}},
			{Label: "LTH", X: []float64{0, 1, 2}, Y: []float64{0, 0.3, 0.9}},
		},
	}
	out := c.Render()
	if !strings.Contains(out, "sparsity vs epoch") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "NDSNN") || !strings.Contains(out, "LTH") {
		t.Fatal("legend missing")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatal("series marks missing")
	}
}

func TestLineChartEmpty(t *testing.T) {
	c := &LineChart{Title: "empty"}
	out := c.Render()
	if !strings.Contains(out, "(no data)") {
		t.Fatalf("empty chart rendering = %q", out)
	}
}

func TestLineChartDeterministic(t *testing.T) {
	c := &LineChart{Series: []Series{{Label: "a", X: []float64{0, 1}, Y: []float64{1, 2}}}}
	if c.Render() != c.Render() {
		t.Fatal("chart rendering is nondeterministic")
	}
}

func TestLineChartFixedRangeClamps(t *testing.T) {
	c := &LineChart{
		Width: 20, Height: 5, YMin: 0, YMax: 1,
		Series: []Series{{Label: "a", X: []float64{0, 1}, Y: []float64{-5, 7}}},
	}
	out := c.Render()
	if !strings.Contains(out, "1.000") || !strings.Contains(out, "0.000") {
		t.Fatalf("fixed range labels missing:\n%s", out)
	}
}

func TestLineChartSingularValues(t *testing.T) {
	// A flat series and single x must not divide by zero.
	c := &LineChart{Series: []Series{{Label: "flat", X: []float64{3}, Y: []float64{2}}}}
	out := c.Render()
	if out == "" {
		t.Fatal("no output")
	}
}

func TestBarChartRendersValues(t *testing.T) {
	c := &BarChart{
		Title: "training cost", Unit: "%", Width: 20,
		Groups: []BarGroup{
			{Label: "VGG-16", Bars: []Bar{{"Dense", 100}, {"LTH", 33.5}, {"NDSNN", 10.5}}},
		},
	}
	out := c.Render()
	for _, want := range []string{"training cost", "VGG-16", "Dense", "100.00%", "10.50%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// The dense bar must be the longest.
	lines := strings.Split(out, "\n")
	lenOf := func(name string) int {
		for _, l := range lines {
			if strings.Contains(l, name) {
				return strings.Count(l, "█")
			}
		}
		return -1
	}
	if !(lenOf("Dense") > lenOf("LTH") && lenOf("LTH") > lenOf("NDSNN")) {
		t.Fatalf("bar lengths not ordered:\n%s", out)
	}
}

func TestBarChartZeroValues(t *testing.T) {
	c := &BarChart{Groups: []BarGroup{{Label: "g", Bars: []Bar{{"a", 0}}}}}
	out := c.Render()
	if !strings.Contains(out, "0.00") {
		t.Fatalf("zero bar missing:\n%s", out)
	}
}
