package quant

import (
	"fmt"
	"math"
)

// ActGrid is a per-tensor activation quantization grid: signed symmetric
// integer levels with a single power-of-two scale (Po2Scale, the same grid
// family as the QCSR weight rows). Because the scale is a power of two,
// every dequantized value level×Scale is exact in float32 — an activation
// snapped onto the grid carries its integer level losslessly through float
// storage, which is what lets the inference engine keep float32-backed
// activation buffers while the integer stages recover exact levels with one
// multiply. Requantization between two po2 grids is a bit shift.
type ActGrid struct {
	// Bits is the signed level width: levels span [-(2^(Bits-1)-1), 2^(Bits-1)-1].
	Bits int
	// Scale is the grid step, a power of two.
	Scale float32
}

// NewActGrid builds the bits-wide grid covering [-maxAbs, maxAbs]:
// Scale = Po2Scale(maxAbs, bits), so no in-range value clamps and the
// round-trip error bound |v − Dequantize(Quantize(v))| ≤ Scale/2 holds over
// the whole range (pinned by the round-trip property test).
func NewActGrid(maxAbs float32, bits int) (ActGrid, error) {
	if bits < 2 || bits > 16 {
		return ActGrid{}, fmt.Errorf("quant: unsupported activation bit width %d (want 2..16)", bits)
	}
	if !(maxAbs > 0) {
		return ActGrid{}, fmt.Errorf("quant: activation range max %v must be positive", maxAbs)
	}
	return ActGrid{Bits: bits, Scale: Po2Scale(maxAbs, bits)}, nil
}

// Quantize rounds v to its integer level, clamped to the grid's range.
func (g ActGrid) Quantize(v float32) int32 {
	levels := int32(1)<<(g.Bits-1) - 1
	l := int32(math.Round(float64(v) / float64(g.Scale)))
	if l > levels {
		l = levels
	}
	if l < -levels {
		l = -levels
	}
	return l
}

// Dequantize returns level q's grid value, exact in float32 (po2 scale).
func (g ActGrid) Dequantize(q int32) float32 { return float32(q) * g.Scale }

// Snap projects v onto the grid: Dequantize(Quantize(v)). Idempotent, exact
// zeros stay zero, and |v − Snap(v)| ≤ Scale/2 for in-range v.
func (g ActGrid) Snap(v float32) float32 { return g.Dequantize(g.Quantize(v)) }

// SnapSlice snaps every element of dst in place and returns it.
func (g ActGrid) SnapSlice(dst []float32) []float32 {
	for i, v := range dst {
		dst[i] = g.Snap(v)
	}
	return dst
}
