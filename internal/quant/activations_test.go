package quant

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewActGridValidation(t *testing.T) {
	for _, bits := range []int{0, 1, 17, -3} {
		if _, err := NewActGrid(1, bits); err == nil {
			t.Fatalf("NewActGrid accepted invalid bit width %d", bits)
		}
	}
	for _, maxAbs := range []float32{0, -1, float32(math.Inf(-1))} {
		if _, err := NewActGrid(maxAbs, 8); err == nil {
			t.Fatalf("NewActGrid accepted non-positive range max %v", maxAbs)
		}
	}
}

func TestActGridScaleIsPo2(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		maxAbs := float32(math.Exp(rng.Float64()*8 - 4))
		bits := 2 + rng.Intn(15)
		g, err := NewActGrid(maxAbs, bits)
		if err != nil {
			t.Fatal(err)
		}
		if frac, _ := math.Frexp(float64(g.Scale)); frac != 0.5 {
			t.Fatalf("scale %v for maxAbs=%v bits=%d is not a power of two", g.Scale, maxAbs, bits)
		}
		// The grid must cover the declared range: the extreme level
		// dequantizes to at least maxAbs.
		levels := int32(1)<<(g.Bits-1) - 1
		if g.Dequantize(levels) < maxAbs {
			t.Fatalf("grid top %v below range max %v (bits=%d scale=%v)",
				g.Dequantize(levels), maxAbs, bits, g.Scale)
		}
	}
}

// TestActGridRoundTripBound is the activation round-trip property test: for
// in-range v, |v − Snap(v)| ≤ Scale/2, Snap is idempotent, and exact zeros
// stay zero.
func TestActGridRoundTripBound(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, bits := range []int{2, 4, 8, 12, 16} {
		maxAbs := float32(math.Exp(rng.Float64()*6 - 3))
		g, err := NewActGrid(maxAbs, bits)
		if err != nil {
			t.Fatal(err)
		}
		bound := g.Scale / 2
		for trial := 0; trial < 2000; trial++ {
			v := (2*rng.Float32() - 1) * maxAbs
			s := g.Snap(v)
			if d := float32(math.Abs(float64(v - s))); d > bound {
				t.Fatalf("bits=%d scale=%v: |%v - Snap| = %v exceeds Scale/2 = %v", bits, g.Scale, v, d, bound)
			}
			if g.Snap(s) != s {
				t.Fatalf("Snap not idempotent at %v (bits=%d)", v, bits)
			}
		}
		if g.Snap(0) != 0 || g.Quantize(0) != 0 {
			t.Fatalf("zero does not survive the grid (bits=%d)", bits)
		}
	}
}

func TestActGridClampsOutOfRange(t *testing.T) {
	g, err := NewActGrid(1, 8)
	if err != nil {
		t.Fatal(err)
	}
	levels := int32(1)<<(g.Bits-1) - 1
	if q := g.Quantize(1e6); q != levels {
		t.Fatalf("huge positive quantized to %d, want clamp at %d", q, levels)
	}
	if q := g.Quantize(-1e6); q != -levels {
		t.Fatalf("huge negative quantized to %d, want clamp at %d", q, -levels)
	}
}

func TestActGridSnapSlice(t *testing.T) {
	g, err := NewActGrid(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	vs := []float32{0, 0.1, -0.7, 1.5, -2}
	got := g.SnapSlice(append([]float32(nil), vs...))
	for i, v := range vs {
		if got[i] != g.Snap(v) {
			t.Fatalf("SnapSlice[%d] = %v, want %v", i, got[i], g.Snap(v))
		}
	}
}
