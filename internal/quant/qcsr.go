package quant

import (
	"fmt"
	"math"

	"ndsnn/internal/sparse"
)

// QCSR is a sparse weight matrix quantized to signed integer levels — the
// packed deployment form of the Sec. III-D platforms (Loihi 8-bit synapses,
// HICANN 4-bit, SyncNN-style FPGA designs up to 16-bit). The sparsity
// pattern is *shared* with the float CSR it was quantized from (RowPtr and
// ColIdx alias the source arrays — one row per output channel/filter, the
// same [F, C·Kh·Kw] reshape as layers.Param's cached encoding); only the
// value storage changes:
//
//   - Bits ≤ 8: one int8 level per stored synapse (Q). At exactly 4 bits the
//     deployment layout additionally packs two levels per byte (Packed),
//     which is what the integer linear kernels compute from and what the
//     memory accounting reports.
//   - Bits 9–16: one int16 level per synapse (Q16).
//
// Scales are powers of two (Po2Scale), per output channel by default, so
// dequantization level·scale is exact in float32 and hardware requantizes
// with a shift instead of a multiplier. value = level × scale(row).
type QCSR struct {
	Rows, Cols int
	// Bits is the signed level width: levels span [-(2^(Bits-1)-1), 2^(Bits-1)-1].
	Bits int
	// PerChannel records whether Scales holds one scale per row (true) or a
	// single per-tensor scale (false).
	PerChannel bool
	// RowPtr/ColIdx alias the source CSR's index arrays (shared pattern).
	RowPtr []int32
	ColIdx []int32
	// Q holds one quantized level per stored synapse when Bits ≤ 8.
	Q []int8
	// Q16 holds the levels when Bits ≥ 9.
	Q16 []int16
	// Packed is the two-levels-per-byte deployment layout, present only when
	// Bits == 4 (low nibble = even entry, high nibble = odd entry).
	Packed []byte
	// Scales has Rows entries (PerChannel) or one (per-tensor), every entry a
	// power of two or zero (all-zero row).
	Scales []float32
}

// Po2Scale returns the smallest power of two ≥ maxAbs/levels for a signed
// bits-wide grid — the quantization step such that round(v/scale) never
// exceeds ±levels and requantization is a bit shift. Zero maxAbs yields a
// zero scale (the all-zero row quantizes to all-zero levels).
func Po2Scale(maxAbs float32, bits int) float32 {
	if maxAbs == 0 {
		return 0
	}
	levels := float64(int32(1)<<(bits-1) - 1)
	frac, exp := math.Frexp(float64(maxAbs) / levels)
	if frac == 0.5 {
		exp--
	}
	return float32(math.Ldexp(1, exp))
}

// QuantizeCSR quantizes a float CSR onto the bits-wide power-of-two grid,
// sharing the source's index arrays. With perChannel each row (output
// channel) gets its own scale from its max absolute value — the standard
// deployment choice, and what the BN-fold requantization multiplier
// composes with; otherwise one per-tensor scale covers the whole matrix.
func QuantizeCSR(c *sparse.CSR, bits int, perChannel bool) (*QCSR, error) {
	if bits < 2 || bits > 16 {
		return nil, fmt.Errorf("quant: unsupported bit width %d", bits)
	}
	q := &QCSR{
		Rows: c.Rows, Cols: c.Cols, Bits: bits, PerChannel: perChannel,
		RowPtr: c.RowPtr, ColIdx: c.ColIdx,
	}
	if perChannel {
		q.Scales = make([]float32, c.Rows)
		for r := 0; r < c.Rows; r++ {
			q.Scales[r] = Po2Scale(maxAbsRange(c.Val[c.RowPtr[r]:c.RowPtr[r+1]]), bits)
		}
	} else {
		q.Scales = []float32{Po2Scale(maxAbsRange(c.Val), bits)}
	}
	levels := int32(1)<<(bits-1) - 1
	quantize := func(r int, v float32) int32 {
		s := q.RowScale(r)
		if s == 0 {
			return 0
		}
		l := int32(math.Round(float64(v / s)))
		if l > levels {
			l = levels
		}
		if l < -levels {
			l = -levels
		}
		return l
	}
	if bits <= 8 {
		q.Q = make([]int8, c.NNZ())
		for r := 0; r < c.Rows; r++ {
			for p := c.RowPtr[r]; p < c.RowPtr[r+1]; p++ {
				q.Q[p] = int8(quantize(r, c.Val[p]))
			}
		}
		if bits == 4 {
			q.Packed = PackInt4(q.Q)
		}
	} else {
		q.Q16 = make([]int16, c.NNZ())
		for r := 0; r < c.Rows; r++ {
			for p := c.RowPtr[r]; p < c.RowPtr[r+1]; p++ {
				q.Q16[p] = int16(quantize(r, c.Val[p]))
			}
		}
	}
	return q, nil
}

func maxAbsRange(vals []float32) float32 {
	m := float32(0)
	for _, v := range vals {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// NNZ returns the number of stored synapses.
func (q *QCSR) NNZ() int { return len(q.ColIdx) }

// Level returns the quantized integer level of stored entry p.
func (q *QCSR) Level(p int) int32 {
	if q.Q16 != nil {
		return int32(q.Q16[p])
	}
	return int32(q.Q[p])
}

// RowScale returns the dequantization scale for row r (the per-tensor scale
// when PerChannel is false).
func (q *QCSR) RowScale(r int) float32 {
	if q.PerChannel {
		return q.Scales[r]
	}
	return q.Scales[0]
}

// Dequantize reconstructs the float CSR (level × scale per entry), sharing
// the index arrays. Because scales are powers of two the reconstruction is
// exact in float32: it is the reference grid the integer engine's outputs
// are pinned against.
func (q *QCSR) Dequantize() *sparse.CSR {
	c := &sparse.CSR{
		Rows: q.Rows, Cols: q.Cols,
		RowPtr: q.RowPtr, ColIdx: q.ColIdx,
		Val: make([]float32, q.NNZ()),
	}
	for r := 0; r < q.Rows; r++ {
		s := q.RowScale(r)
		for p := q.RowPtr[r]; p < q.RowPtr[r+1]; p++ {
			c.Val[p] = float32(q.Level(int(p))) * s
		}
	}
	return c
}

// PackedValueBytes returns the deployed byte count of the value storage
// alone: ⌈nnz/2⌉ at 4 bits (two per byte), nnz at 5–8 bits, 2·nnz at 9–16
// bits. Indices and scales are accounted separately (MemoryBits) because
// the float engine pays them identically.
func (q *QCSR) PackedValueBytes() int64 {
	switch {
	case q.Packed != nil:
		return int64(len(q.Packed))
	case q.Q16 != nil:
		return 2 * int64(q.NNZ())
	default:
		return int64(q.NNZ())
	}
}

// MemoryBits returns the full deployed storage cost with idxBits-wide
// indices: packed values + column indices + row pointers + the float32
// scales. It is the quantized counterpart of sparse.CSR.MemoryBits.
func (q *QCSR) MemoryBits(idxBits int) int64 {
	return 8*q.PackedValueBytes() +
		int64(q.NNZ())*int64(idxBits) +
		int64(q.Rows+1)*int64(idxBits) +
		int64(len(q.Scales))*32
}

// CSCInt8 transposes the quantized matrix into the column-compressed
// integer form the event-driven linear kernels consume (incoming spikes
// select weight columns). Levels that quantized to exactly zero are dropped
// — they are dead synapses, and skipping them is where the measured SynOps
// reduction of quantization comes from. Requires Bits ≤ 8.
func (q *QCSR) CSCInt8() *sparse.CSCInt8 {
	if q.Q == nil {
		panic(fmt.Sprintf("quant: CSCInt8 requires ≤8-bit levels (have %d)", q.Bits))
	}
	nnz := 0
	for _, l := range q.Q {
		if l != 0 {
			nnz++
		}
	}
	t := &sparse.CSCInt8{
		Rows: q.Rows, Cols: q.Cols,
		ColPtr: make([]int32, q.Cols+1),
		RowIdx: make([]int32, nnz),
		Q:      make([]int8, nnz),
	}
	for p, j := range q.ColIdx {
		if q.Q[p] != 0 {
			t.ColPtr[j+1]++
		}
	}
	for j := 0; j < q.Cols; j++ {
		t.ColPtr[j+1] += t.ColPtr[j]
	}
	next := make([]int32, q.Cols)
	copy(next, t.ColPtr[:q.Cols])
	for r := 0; r < q.Rows; r++ {
		for p := q.RowPtr[r]; p < q.RowPtr[r+1]; p++ {
			if q.Q[p] == 0 {
				continue
			}
			j := q.ColIdx[p]
			t.RowIdx[next[j]] = int32(r)
			t.Q[next[j]] = q.Q[p]
			next[j]++
		}
	}
	return t
}

// CSCInt4 is CSCInt8 with the values re-packed two-per-byte — the HICANN
// deployment form, computed from directly by the packed int4 kernel.
// Requires Bits == 4.
func (q *QCSR) CSCInt4() *sparse.CSCInt4 {
	if q.Bits != 4 {
		panic(fmt.Sprintf("quant: CSCInt4 requires 4-bit levels (have %d)", q.Bits))
	}
	c8 := q.CSCInt8()
	return &sparse.CSCInt4{
		Rows: c8.Rows, Cols: c8.Cols,
		ColPtr: c8.ColPtr, RowIdx: c8.RowIdx,
		Packed: PackInt4(c8.Q),
	}
}

// PackInt4 packs signed 4-bit levels (each in [-7,7]) two per byte: entry 2i
// in the low nibble of byte i, entry 2i+1 in the high nibble. An odd count
// leaves the final high nibble zero. Levels outside the 4-bit range panic —
// they indicate quantization at the wrong width, not recoverable input.
func PackInt4(q []int8) []byte {
	out := make([]byte, (len(q)+1)/2)
	for i, v := range q {
		if v < -7 || v > 7 {
			panic(fmt.Sprintf("quant: level %d at entry %d outside int4 range", v, i))
		}
		nib := byte(v) & 0xF
		if i%2 == 0 {
			out[i/2] = nib
		} else {
			out[i/2] |= nib << 4
		}
	}
	return out
}

// UnpackInt4 reverses PackInt4, returning the first n sign-extended levels.
func UnpackInt4(packed []byte, n int) []int8 {
	out := make([]int8, n)
	for i := range out {
		b := packed[i/2]
		if i%2 == 0 {
			out[i] = int8(b<<4) >> 4
		} else {
			out[i] = int8(b) >> 4
		}
	}
	return out
}
