package quant

import (
	"math"
	"testing"

	"ndsnn/internal/layers"
	"ndsnn/internal/rng"
	"ndsnn/internal/sparse"
	"ndsnn/internal/tensor"
)

func randomCSR(rows, cols int, density float64, r *rng.RNG) *sparse.CSR {
	w := tensor.New(rows, cols)
	for i := range w.Data {
		if r.Float64() < density {
			w.Data[i] = r.NormFloat32()
		}
	}
	return sparse.EncodeCSR(w)
}

func TestPo2ScaleProperties(t *testing.T) {
	r := rng.New(3)
	for _, bits := range []int{2, 4, 8, 16} {
		levels := float64(int32(1)<<(bits-1) - 1)
		for i := 0; i < 200; i++ {
			maxAbs := float32(math.Exp(float64(r.NormFloat32()) * 4))
			s := Po2Scale(maxAbs, bits)
			// A power of two…
			frac, _ := math.Frexp(float64(s))
			if frac != 0.5 {
				t.Fatalf("Po2Scale(%v,%d)=%v is not a power of two", maxAbs, bits, s)
			}
			// …covering the range without clamping…
			if float64(maxAbs)/float64(s) > levels+0.5 {
				t.Fatalf("Po2Scale(%v,%d)=%v clamps: maxAbs/s=%v > levels %v", maxAbs, bits, s, float64(maxAbs)/float64(s), levels)
			}
			// …within 2x of the optimal uniform step.
			if float64(s) > 2*float64(maxAbs)/levels {
				t.Fatalf("Po2Scale(%v,%d)=%v loses more than 2x vs optimal %v", maxAbs, bits, s, float64(maxAbs)/levels)
			}
		}
	}
	if Po2Scale(0, 8) != 0 {
		t.Fatal("zero maxAbs must give a zero scale")
	}
}

func TestPackInt4RoundTrip(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 100; trial++ {
		n := int(r.Float64()*33) + 1 // 1..33, both parities
		q := make([]int8, n)
		for i := range q {
			q[i] = int8(r.Float64()*15) - 7 // [-7, 7]
		}
		packed := PackInt4(q)
		if len(packed) != (n+1)/2 {
			t.Fatalf("packed %d levels into %d bytes, want %d", n, len(packed), (n+1)/2)
		}
		got := UnpackInt4(packed, n)
		for i := range q {
			if got[i] != q[i] {
				t.Fatalf("trial %d entry %d: %d → pack → unpack → %d", trial, i, q[i], got[i])
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range level accepted by PackInt4")
		}
	}()
	PackInt4([]int8{8})
}

func TestQuantizeCSRGridAndSharing(t *testing.T) {
	r := rng.New(11)
	c := randomCSR(24, 40, 0.3, r)
	for _, bits := range []int{2, 4, 8, 12, 16} {
		for _, perChannel := range []bool{true, false} {
			q, err := QuantizeCSR(c, bits, perChannel)
			if err != nil {
				t.Fatal(err)
			}
			// Indices are shared, not copied.
			if &q.RowPtr[0] != &c.RowPtr[0] || &q.ColIdx[0] != &c.ColIdx[0] {
				t.Fatal("QCSR must alias the source CSR's index arrays")
			}
			levels := int32(1)<<(bits-1) - 1
			dq := q.Dequantize()
			for row := 0; row < q.Rows; row++ {
				s := q.RowScale(row)
				for p := q.RowPtr[row]; p < q.RowPtr[row+1]; p++ {
					l := q.Level(int(p))
					if l > levels || l < -levels {
						t.Fatalf("bits=%d level %d outside ±%d", bits, l, levels)
					}
					// Rounding error bounded by half a step.
					if err := math.Abs(float64(c.Val[p] - dq.Val[p])); err > float64(s)/2+1e-12 {
						t.Fatalf("bits=%d perChannel=%v entry %d: error %v > s/2 = %v", bits, perChannel, p, err, s/2)
					}
					// Dequantization is exact: level × power-of-two scale.
					if dq.Val[p] != float32(l)*s {
						t.Fatalf("dequantized value %v != level %d × scale %v", dq.Val[p], l, s)
					}
				}
			}
		}
	}
	if _, err := QuantizeCSR(c, 1, true); err == nil {
		t.Fatal("1-bit width accepted")
	}
	if _, err := QuantizeCSR(c, 17, true); err == nil {
		t.Fatal("17-bit width accepted")
	}
}

func TestPerChannelScalesTighterThanPerTensor(t *testing.T) {
	// Per-channel scales never exceed the per-tensor scale (row maxima are
	// bounded by the global maximum and Po2Scale is monotone), so the
	// per-entry rounding error bound is uniformly tighter.
	r := rng.New(13)
	c := randomCSR(16, 32, 0.5, r)
	// Give rows very different magnitudes so the property is non-trivial.
	for row := 0; row < c.Rows; row++ {
		scale := float32(math.Exp(float64(row-8) / 2))
		for p := c.RowPtr[row]; p < c.RowPtr[row+1]; p++ {
			c.Val[p] *= scale
		}
	}
	pc, err := QuantizeCSR(c, 8, true)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := QuantizeCSR(c, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	tensorScale := pt.RowScale(0)
	var pcErr, ptErr float64
	for row := 0; row < c.Rows; row++ {
		if pc.RowScale(row) > tensorScale {
			t.Fatalf("row %d per-channel scale %v exceeds per-tensor scale %v", row, pc.RowScale(row), tensorScale)
		}
	}
	dpc, dpt := pc.Dequantize(), pt.Dequantize()
	for p := range c.Val {
		pcErr = math.Max(pcErr, math.Abs(float64(c.Val[p]-dpc.Val[p])))
		ptErr = math.Max(ptErr, math.Abs(float64(c.Val[p]-dpt.Val[p])))
	}
	if pcErr > ptErr {
		t.Fatalf("per-channel max error %v worse than per-tensor %v", pcErr, ptErr)
	}
}

func TestQCSRCSCFormsDropZeroLevels(t *testing.T) {
	r := rng.New(17)
	c := randomCSR(12, 20, 0.4, r)
	q, err := QuantizeCSR(c, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	nonzero := 0
	for p := 0; p < q.NNZ(); p++ {
		if q.Level(p) != 0 {
			nonzero++
		}
	}
	c8 := q.CSCInt8()
	c4 := q.CSCInt4()
	if c8.NNZ() != nonzero || c4.NNZ() != nonzero {
		t.Fatalf("CSC forms store %d/%d synapses, want %d live levels", c8.NNZ(), c4.NNZ(), nonzero)
	}
	// Both forms must agree entry-wise with a dense reconstruction.
	dq := q.Dequantize().Decode()
	dense8 := tensor.New(q.Rows, q.Cols)
	for col := 0; col < q.Cols; col++ {
		for p := c8.ColPtr[col]; p < c8.ColPtr[col+1]; p++ {
			row := int(c8.RowIdx[p])
			dense8.Data[row*q.Cols+col] = float32(c8.Q[p]) * q.RowScale(row)
			if int32(c8.Q[p]) != c4.Level(p) {
				t.Fatalf("int4 nibble %d decodes to %d, want %d", p, c4.Level(p), c8.Q[p])
			}
		}
	}
	for i := range dq.Data {
		if dq.Data[i] != dense8.Data[i] {
			t.Fatalf("CSC reconstruction mismatch at %d: %v vs %v", i, dense8.Data[i], dq.Data[i])
		}
	}
}

func TestQCSRMemoryAccounting(t *testing.T) {
	r := rng.New(19)
	c := randomCSR(8, 16, 0.6, r)
	nnz := int64(c.NNZ())
	cases := []struct {
		bits  int
		bytes int64
	}{{8, nnz}, {4, (nnz + 1) / 2}, {16, 2 * nnz}, {12, 2 * nnz}, {6, nnz}}
	for _, tc := range cases {
		q, err := QuantizeCSR(c, tc.bits, true)
		if err != nil {
			t.Fatal(err)
		}
		if got := q.PackedValueBytes(); got != tc.bytes {
			t.Fatalf("bits=%d packed value bytes %d, want %d", tc.bits, got, tc.bytes)
		}
		want := 8*tc.bytes + nnz*16 + int64(c.Rows+1)*16 + int64(c.Rows)*32
		if got := q.MemoryBits(16); got != want {
			t.Fatalf("bits=%d MemoryBits %d, want %d", tc.bits, got, want)
		}
	}
}

func TestQuantizeParamsInvalidatesCSRCache(t *testing.T) {
	// Regression for the stale-cache bug: QuantizeParams mutates W in
	// place, so a CSR encoding gathered beforehand would keep stale values
	// (and keep paying SynOps for weights that quantized to exactly zero).
	r := rng.New(23)
	w := tensor.New(8, 12)
	mask := tensor.New(8, 12)
	for i := range w.Data {
		if r.Float64() < 0.3 {
			mask.Data[i] = 1
			w.Data[i] = r.NormFloat32()
		}
	}
	p := layers.NewParam("q.w", w)
	p.Mask = mask
	if p.SparseW() == nil {
		t.Fatal("test setup: param not CSR-eligible")
	}
	if !p.CSRCached() {
		t.Fatal("test setup: CSR cache not populated")
	}
	if _, err := QuantizeParams([]*layers.Param{p}, 4); err != nil {
		t.Fatal(err)
	}
	if p.CSRCached() {
		t.Fatal("QuantizeParams left a stale CSR cache behind")
	}
}
