// Package quant implements post-training weight quantization to the
// per-platform precisions of the paper's Section III-D (Loihi 8-bit,
// HICANN 4-bit, FPGA 4–16-bit): symmetric uniform quantization with a
// per-tensor scale, applied to the active weights of a trained model so the
// accuracy cost of each deployment target can be measured rather than
// assumed.
package quant

import (
	"fmt"
	"math"

	"ndsnn/internal/layers"
	"ndsnn/internal/tensor"
)

// Quantize rounds w to a signed b-bit grid with a symmetric per-tensor
// scale chosen from the max absolute value, returning the dequantized
// tensor (fake quantization) and the scale. Zeros stay exactly zero, so
// sparsity is preserved.
func Quantize(w *tensor.Tensor, bits int) (*tensor.Tensor, float32, error) {
	if bits < 2 || bits > 16 {
		return nil, 0, fmt.Errorf("quant: unsupported bit width %d", bits)
	}
	maxAbs := float32(0)
	for _, v := range w.Data {
		a := v
		if a < 0 {
			a = -a
		}
		if a > maxAbs {
			maxAbs = a
		}
	}
	out := tensor.New(w.Shape()...)
	if maxAbs == 0 {
		return out, 0, nil
	}
	levels := float32(int32(1)<<(bits-1)) - 1 // e.g. 127 for 8 bits
	scale := maxAbs / levels
	for i, v := range w.Data {
		q := float32(math.Round(float64(v / scale)))
		if q > levels {
			q = levels
		}
		if q < -levels {
			q = -levels
		}
		out.Data[i] = q * scale
	}
	return out, scale, nil
}

// QuantizeParams fake-quantizes every prunable parameter in place,
// returning per-tensor scales keyed by name. Masks and non-prunable
// parameters (BN affines, biases) are untouched, matching mixed-precision
// deployments that keep normalization in higher precision.
//
// Mutating W drops the parameter's cached CSR/CSC encodings: small weights
// round to exactly zero under quantization, and an encoding gathered from
// the pre-quantization values would keep paying synaptic work (and stale
// density) for those dead synapses. Callers restoring the weights afterwards
// must invalidate again (EvaluateQuantized does).
func QuantizeParams(params []*layers.Param, bits int) (map[string]float32, error) {
	scales := make(map[string]float32, len(params))
	for _, p := range params {
		if p.NoPrune {
			continue
		}
		q, scale, err := Quantize(p.W, bits)
		if err != nil {
			return nil, err
		}
		p.W.CopyFrom(q)
		p.InvalidateCSR()
		scales[p.Name] = scale
	}
	return scales, nil
}

// MaxError returns the largest absolute rounding error of quantizing w to
// bits, a cheap proxy for the expected accuracy impact.
func MaxError(w *tensor.Tensor, bits int) (float64, error) {
	q, _, err := Quantize(w, bits)
	if err != nil {
		return 0, err
	}
	maxErr := 0.0
	for i, v := range w.Data {
		e := math.Abs(float64(v - q.Data[i]))
		if e > maxErr {
			maxErr = e
		}
	}
	return maxErr, nil
}
