package quant

import (
	"math"
	"testing"
	"testing/quick"

	"ndsnn/internal/layers"
	"ndsnn/internal/rng"
	"ndsnn/internal/tensor"
)

func TestQuantizePreservesZeros(t *testing.T) {
	w := tensor.FromSlice([]float32{0, 0.5, -0.3, 0}, 4)
	q, _, err := Quantize(w, 8)
	if err != nil {
		t.Fatal(err)
	}
	if q.Data[0] != 0 || q.Data[3] != 0 {
		t.Fatal("zeros not preserved (sparsity would be destroyed)")
	}
}

func TestQuantizeBoundedError(t *testing.T) {
	r := rng.New(1)
	w := tensor.New(1000)
	for i := range w.Data {
		w.Data[i] = r.NormFloat32()
	}
	for _, bits := range []int{4, 8, 16} {
		q, scale, err := Quantize(w, bits)
		if err != nil {
			t.Fatal(err)
		}
		for i := range w.Data {
			if e := math.Abs(float64(w.Data[i] - q.Data[i])); e > float64(scale)/2+1e-6 {
				t.Fatalf("%d-bit error %v exceeds scale/2 = %v", bits, e, scale/2)
			}
		}
	}
}

func TestQuantizeErrorShrinksWithBits(t *testing.T) {
	r := rng.New(2)
	w := tensor.New(500)
	for i := range w.Data {
		w.Data[i] = r.NormFloat32()
	}
	e4, err := MaxError(w, 4)
	if err != nil {
		t.Fatal(err)
	}
	e8, err := MaxError(w, 8)
	if err != nil {
		t.Fatal(err)
	}
	e16, err := MaxError(w, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !(e16 < e8 && e8 < e4) {
		t.Fatalf("errors not decreasing: 4b=%v 8b=%v 16b=%v", e4, e8, e16)
	}
}

func TestQuantizeIdempotent(t *testing.T) {
	// Quantizing an already-quantized tensor changes nothing.
	r := rng.New(3)
	w := tensor.New(100)
	for i := range w.Data {
		w.Data[i] = r.NormFloat32()
	}
	q1, _, err := Quantize(w, 6)
	if err != nil {
		t.Fatal(err)
	}
	q2, _, err := Quantize(q1, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range q1.Data {
		if math.Abs(float64(q1.Data[i]-q2.Data[i])) > 1e-6 {
			t.Fatalf("not idempotent at %d: %v vs %v", i, q1.Data[i], q2.Data[i])
		}
	}
}

func TestQuantizeGridProperty(t *testing.T) {
	// Every quantized value must be an integer multiple of the scale.
	f := func(seed uint16) bool {
		r := rng.New(uint64(seed))
		w := tensor.New(64)
		for i := range w.Data {
			w.Data[i] = r.NormFloat32() * 3
		}
		q, scale, err := Quantize(w, 5)
		if err != nil || scale == 0 {
			return err == nil
		}
		for _, v := range q.Data {
			ratio := float64(v / scale)
			if math.Abs(ratio-math.Round(ratio)) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizeAllZerosTensor(t *testing.T) {
	w := tensor.New(10)
	q, scale, err := Quantize(w, 8)
	if err != nil {
		t.Fatal(err)
	}
	if scale != 0 || q.CountNonZero() != 0 {
		t.Fatal("all-zero tensor mishandled")
	}
}

func TestQuantizeRejectsBadBits(t *testing.T) {
	w := tensor.New(4)
	for _, bits := range []int{0, 1, 17, -3} {
		if _, _, err := Quantize(w, bits); err == nil {
			t.Fatalf("bits=%d accepted", bits)
		}
	}
}

func TestQuantizeParamsSkipsNonPrunable(t *testing.T) {
	w := tensor.FromSlice([]float32{0.111, -0.222}, 2)
	p1 := layers.NewParam("conv.w", w)
	bnW := tensor.FromSlice([]float32{1.2345}, 1)
	p2 := layers.NewParam("bn.gamma", bnW)
	p2.NoPrune = true
	scales, err := QuantizeParams([]*layers.Param{p1, p2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := scales["conv.w"]; !ok {
		t.Fatal("prunable param not quantized")
	}
	if _, ok := scales["bn.gamma"]; ok {
		t.Fatal("non-prunable param quantized")
	}
	if p2.W.Data[0] != 1.2345 {
		t.Fatal("BN affine modified")
	}
}

func TestQuantizePreservesMaskConsistency(t *testing.T) {
	r := rng.New(4)
	w := tensor.New(100)
	mask := tensor.New(100)
	for i := range w.Data {
		if r.Bernoulli(0.3) {
			w.Data[i] = r.NormFloat32()
			mask.Data[i] = 1
		}
	}
	p := layers.NewParam("w", w)
	p.Mask = mask
	if _, err := QuantizeParams([]*layers.Param{p}, 4); err != nil {
		t.Fatal(err)
	}
	if err := p.CheckMaskConsistency(); err != nil {
		t.Fatalf("quantization broke sparsity: %v", err)
	}
}
