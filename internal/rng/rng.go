// Package rng provides deterministic pseudo-random number generation for
// reproducible experiments.
//
// The generator is xoshiro256** seeded through splitmix64, implemented from
// the public-domain reference algorithms. It is intentionally independent of
// math/rand so that experiment outputs are bit-stable across Go releases.
// Every trainer, dataset generator and initializer in this repository draws
// from an *RNG stream derived from a single experiment seed, which makes
// whole training runs reproducible from one uint64.
package rng

import "math"

// RNG is a deterministic xoshiro256** pseudo-random number generator.
// It is not safe for concurrent use; derive per-goroutine streams with Split.
type RNG struct {
	s [4]uint64

	// Box-Muller cache for NormFloat64.
	hasGauss bool
	gauss    float64
}

// splitmix64 advances the seed expansion state and returns the next value.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator deterministically seeded from seed.
func New(seed uint64) *RNG {
	r := &RNG{}
	x := seed
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split derives an independent generator from r's stream. The derived stream
// is decorrelated by reseeding through splitmix64, so parent and child can be
// used concurrently (each by a single goroutine).
func (r *RNG) Split() *RNG {
	return New(r.Uint64())
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Float32 returns a uniform value in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) * (1.0 / (1 << 24))
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	// Lemire-style rejection-free mapping is overkill here; modulo bias is
	// negligible for the small n used in this repository, but we still use
	// the high bits via multiplication which is bias-free for n << 2^32.
	return int((r.Uint64() >> 32) * uint64(n) >> 32)
}

// Perm returns a random permutation of [0, n) using Fisher-Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n indices in place via the provided swap func.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// NormFloat64 returns a standard normal deviate using the Box-Muller
// transform (pair-cached).
func (r *RNG) NormFloat64() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.gauss = v * f
	r.hasGauss = true
	return u * f
}

// NormFloat32 returns a standard normal deviate as float32.
func (r *RNG) NormFloat32() float32 { return float32(r.NormFloat64()) }

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool { return r.Float64() < p }

// Choice returns k distinct indices sampled uniformly from [0, n) in random
// order. It panics if k > n.
func (r *RNG) Choice(n, k int) []int {
	if k > n {
		panic("rng: Choice called with k > n")
	}
	p := r.Perm(n)
	return p[:k]
}
