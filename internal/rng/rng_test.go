package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical draws out of 100", same)
	}
}

func TestZeroSeedIsValid(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 95 {
		t.Fatalf("zero seed produced only %d distinct values out of 100", len(seen))
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat32Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		v := r.Float32()
		if v < 0 || v >= 1 {
			t.Fatalf("Float32 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(99)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 10, 1000} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnCoversAllValues(t *testing.T) {
	r := New(11)
	seen := make([]bool, 10)
	for i := 0; i < 10000; i++ {
		seen[r.Intn(10)] = true
	}
	for v, ok := range seen {
		if !ok {
			t.Fatalf("Intn(10) never produced %d in 10000 draws", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(5)
	f := func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(2024)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(8)
	child := parent.Split()
	// The child must not replay the parent's stream.
	a := make([]uint64, 50)
	for i := range a {
		a[i] = parent.Uint64()
	}
	matches := 0
	for i := 0; i < 50; i++ {
		if child.Uint64() == a[i] {
			matches++
		}
	}
	if matches > 0 {
		t.Fatalf("child stream replays parent: %d matches", matches)
	}
}

func TestChoiceDistinct(t *testing.T) {
	r := New(13)
	idx := r.Choice(20, 8)
	if len(idx) != 8 {
		t.Fatalf("Choice returned %d values, want 8", len(idx))
	}
	seen := map[int]bool{}
	for _, v := range idx {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("Choice produced invalid or duplicate index %d", v)
		}
		seen[v] = true
	}
}

func TestChoicePanicsWhenKTooLarge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Choice(3, 4) did not panic")
		}
	}()
	New(1).Choice(3, 4)
}

func TestBernoulliExtremes(t *testing.T) {
	r := New(21)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := New(17)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, len(xs))
	for _, v := range xs {
		if seen[v] {
			t.Fatalf("duplicate value %d after shuffle", v)
		}
		seen[v] = true
	}
}
