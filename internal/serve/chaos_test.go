package serve_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"ndsnn/internal/fault"
	"ndsnn/internal/serve"
)

// The chaos harness: every serving-path fault site is armed in every mode its
// call site can absorb, a concurrent workload is driven through the server,
// and the invariants that make the failure model trustworthy are asserted —
// the workload never hangs, every surviving response is bit-identical to the
// serial reference, only the typed errors of the failure model escape, and
// the stats conservation law Admitted == Served + Expired + Failed holds at
// shutdown. Run under -race in CI (the chaos job).

// chaosPlan is the deterministic plan a sweep case arms: periodic triggers
// with a fire cap, so every case injects a known number of faults and then
// lets the server prove it kept serving.
func chaosPlan(mode fault.Mode) fault.Plan {
	switch mode {
	case fault.Panic:
		return fault.Plan{Mode: fault.Panic, Every: 7, Times: 3}
	case fault.Delay:
		return fault.Plan{Mode: fault.Delay, Every: 3, Sleep: 200 * time.Microsecond}
	case fault.Error:
		return fault.Plan{Mode: fault.Error, Every: 7, Times: 3}
	}
	panic("unknown mode")
}

// servingSites returns the registered fault sites the serving workload
// reaches: the serve.* admission/dispatch/delivery sites and the engine's
// per-timestep infer.* site. (The checkpoint.save.* sites are swept by their
// own armed tests in internal/checkpoint — a serving workload never hits
// them.)
func servingSites(t *testing.T) []*fault.Site {
	t.Helper()
	var out []*fault.Site
	for _, s := range fault.Sites() {
		if strings.HasPrefix(s.Name(), "serve.") || strings.HasPrefix(s.Name(), "infer.") {
			out = append(out, s)
		}
	}
	if len(out) < 4 {
		t.Fatalf("expected ≥4 serving fault sites, registry has %d", len(out))
	}
	return out
}

// TestChaosSweep arms each serving fault site in each supported mode and
// asserts the full failure model under concurrency.
func TestChaosSweep(t *testing.T) {
	eng, samples := buildEngine(t, 0, 51)
	ref := serialScores(eng, samples)
	for _, site := range servingSites(t) {
		for _, mode := range site.Caps().Modes() {
			t.Run(site.Name()+"/"+mode.String(), func(t *testing.T) {
				defer fault.DisarmAll()
				srv := serve.New(eng, serve.Config{
					MaxBatch: 4, Linger: 100 * time.Microsecond, MaxQueue: 256, Workers: 2,
				})
				if err := site.Arm(chaosPlan(mode)); err != nil {
					t.Fatal(err)
				}

				const n = 96
				type outcome struct {
					idx    int
					scores []float32
					err    error
				}
				outcomes := make(chan outcome, n)
				var wg sync.WaitGroup
				for i := 0; i < n; i++ {
					wg.Add(1)
					go func(i int) {
						defer wg.Done()
						idx := i % len(samples)
						sc, err := srv.Infer(context.Background(), samples[idx])
						outcomes <- outcome{idx: idx, scores: sc, err: err}
					}(i)
				}

				// Invariant 1: no hangs. Every caller unblocks even with the
				// fault firing mid-flight.
				finished := make(chan struct{})
				go func() { wg.Wait(); close(finished) }()
				select {
				case <-finished:
				case <-time.After(60 * time.Second):
					t.Fatalf("workload hung with %s armed in %s mode", site.Name(), mode)
				}

				drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				res := srv.Drain(drainCtx)
				cancel()
				if !res.Clean {
					// Everything resolved before Drain was called, so a forced
					// drain means requests leaked.
					t.Fatalf("drain after quiesced workload not clean: %+v", res)
				}

				// Invariant 2: survivors are bit-identical to the serial
				// reference; failures carry only the failure model's typed
				// errors.
				close(outcomes)
				var served, failed int64
				for o := range outcomes {
					if o.err != nil {
						if !errors.Is(o.err, serve.ErrInternal) {
							t.Fatalf("unexpected error type under %s/%s: %v", site.Name(), mode, o.err)
						}
						failed++
						continue
					}
					served++
					assertExact(t, o.scores, ref[o.idx], "surviving request")
				}

				// Invariant 3: stats conservation.
				st := srv.Stats()
				if st.Admitted != n {
					t.Fatalf("admitted %d of %d (queue 256 cannot overflow here): %+v", st.Admitted, n, st)
				}
				if got := st.Resolved(); got != st.Admitted {
					t.Fatalf("conservation violated: resolved %d != admitted %d: %+v", got, st.Admitted, st)
				}
				if st.Served != served || st.Failed != failed {
					t.Fatalf("caller-observed outcomes (served %d, failed %d) disagree with stats %+v", served, failed, st)
				}

				// The armed site must actually have been exercised, and after a
				// destructive fault the server must have kept serving.
				if site.Hits() == 0 {
					t.Fatalf("site %s was armed but never evaluated", site.Name())
				}
				switch mode {
				case fault.Panic, fault.Error:
					if st.Panics == 0 {
						t.Fatalf("%s armed in %s mode but no pass was isolated: %+v", site.Name(), mode, st)
					}
					if st.Served == 0 {
						t.Fatalf("server did not keep serving after isolated %s at %s: %+v", mode, site.Name(), st)
					}
					if st.Failed == 0 {
						t.Fatalf("isolated %s at %s failed no requests: %+v", mode, site.Name(), st)
					}
				case fault.Delay:
					if st.Served != n {
						t.Fatalf("delay fault must not fail requests: %+v", st)
					}
				}
			})
		}
	}
}

// TestServerSurvivesEnginePanic is the minimal panic-isolation pin: one
// injected engine panic fails exactly the requests of its batch with
// ErrInternal, and the very next request on the same server succeeds
// bit-identically — the arena the doomed pass abandoned never poisons a
// later pass.
func TestServerSurvivesEnginePanic(t *testing.T) {
	defer fault.DisarmAll()
	eng, samples := buildEngine(t, 0, 53)
	ref := serialScores(eng, samples)
	srv := serve.New(eng, serve.Config{MaxBatch: 1, Workers: 1})
	defer srv.Close()

	site := fault.Lookup("infer.pass")
	if site == nil {
		t.Fatal("infer.pass site not registered")
	}
	if err := site.Arm(fault.Plan{Mode: fault.Panic, Hit: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Infer(context.Background(), samples[0]); !errors.Is(err, serve.ErrInternal) {
		t.Fatalf("request during engine panic: got %v, want ErrInternal", err)
	}
	// Hit fired once; subsequent passes run clean even while armed.
	for i := 0; i < 8; i++ {
		scores, err := srv.Infer(context.Background(), samples[i%len(samples)])
		if err != nil {
			t.Fatalf("request %d after isolated panic: %v", i, err)
		}
		assertExact(t, scores, ref[i%len(samples)], "post-panic request")
	}
	st := srv.Stats()
	if st.Panics != 1 || st.Failed != 1 || st.Served != 8 {
		t.Fatalf("isolation stats: %+v (want Panics 1, Failed 1, Served 8)", st)
	}
	if got := st.Resolved(); got != st.Admitted {
		t.Fatalf("conservation after isolation: resolved %d != admitted %d", got, st.Admitted)
	}
}

// TestServerPanicMessageNamesSite pins that an isolated injected panic
// surfaces the fault site in its error text — the operator-facing breadcrumb.
func TestServerPanicMessageNamesSite(t *testing.T) {
	defer fault.DisarmAll()
	eng, samples := buildEngine(t, 0, 55)
	srv := serve.New(eng, serve.Config{MaxBatch: 1, Workers: 1})
	defer srv.Close()
	site := fault.Lookup("serve.batch")
	if err := site.Arm(fault.Plan{Mode: fault.Panic, Hit: 1}); err != nil {
		t.Fatal(err)
	}
	_, err := srv.Infer(context.Background(), samples[0])
	if !errors.Is(err, serve.ErrInternal) {
		t.Fatalf("got %v, want ErrInternal", err)
	}
	if !strings.Contains(err.Error(), "serve.batch") {
		t.Fatalf("isolated panic error %q does not name the panic site", err)
	}
}
