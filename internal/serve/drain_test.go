package serve_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"ndsnn/internal/fault"
	"ndsnn/internal/serve"
	"ndsnn/internal/tensor"
)

// Drain / Close lifecycle matrix: graceful drain under load, forced drain
// with stragglers, Close racing in-flight work, and idempotent combinations.
// Run under -race in CI.

// TestServerDrainUnderLoad floods a deliberately slow server (injected
// dispatch delay) and drains it with a generous deadline: the drain must
// flush everything — every caller gets its scores or a typed refusal, and the
// conservation law holds with DrainClean recorded.
func TestServerDrainUnderLoad(t *testing.T) {
	defer fault.DisarmAll()
	eng, samples := buildEngine(t, 0, 61)
	ref := serialScores(eng, samples)
	srv := serve.New(eng, serve.Config{MaxBatch: 2, MaxQueue: 64, Workers: 1})
	site := fault.Lookup("serve.batch")
	if err := site.Arm(fault.Plan{Mode: fault.Delay, Sleep: time.Millisecond}); err != nil {
		t.Fatal(err)
	}

	const n = 32
	type outcome struct {
		idx    int
		scores []float32
		err    error
	}
	outcomes := make(chan outcome, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			idx := i % len(samples)
			sc, err := srv.Infer(context.Background(), samples[idx])
			outcomes <- outcome{idx: idx, scores: sc, err: err}
		}(i)
	}
	// Let the queue build behind the slowed dispatcher, then drain mid-load.
	time.Sleep(2 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	res := srv.Drain(ctx)
	cancel()
	wg.Wait()
	close(outcomes)

	if !res.Clean || res.Stragglers != 0 {
		t.Fatalf("drain under load with a generous deadline was not clean: %+v", res)
	}
	var served int64
	for o := range outcomes {
		switch {
		case o.err == nil:
			served++
			assertExact(t, o.scores, ref[o.idx], "drained request")
		case errors.Is(o.err, serve.ErrClosed):
			// Lost the admission race against markClosed — refused, never
			// admitted.
		default:
			t.Fatalf("unexpected error during drain: %v", o.err)
		}
	}
	st := srv.Stats()
	if st.Served != served || st.Served != st.Admitted {
		t.Fatalf("every admitted request must be served by a clean drain: served %d, stats %+v", served, st)
	}
	if got := st.Resolved(); got != st.Admitted {
		t.Fatalf("conservation after drain: resolved %d != admitted %d", got, st.Admitted)
	}
	if st.DrainClean != 1 || st.DrainForced != 0 {
		t.Fatalf("drain outcome counters: %+v", st)
	}
}

// TestServerDrainForced pins the straggler path deterministically: requests
// queued in a dispatcherless server cannot flush, so a short-deadline Drain
// must fail exactly those requests with ErrClosed, count them as stragglers,
// and still satisfy conservation.
func TestServerDrainForced(t *testing.T) {
	eng, samples := buildEngine(t, 0, 63)
	srv := serve.NewUnstarted(eng, serve.Config{MaxBatch: 4, MaxQueue: 8})

	const n = 4
	results := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			_, err := srv.Infer(context.Background(), samples[i%len(samples)])
			results <- err
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.QueueLen() < n {
		if time.Now().After(deadline) {
			t.Fatal("requests never queued")
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	res := srv.Drain(ctx)
	cancel()
	if res.Clean || res.Stragglers != n {
		t.Fatalf("forced drain result: %+v (want forced with %d stragglers)", res, n)
	}
	for i := 0; i < n; i++ {
		if err := <-results; !errors.Is(err, serve.ErrClosed) {
			t.Fatalf("straggler %d: got %v, want ErrClosed", i, err)
		}
	}
	st := srv.Stats()
	if st.Failed != n || st.DrainForced != 1 || st.DrainStragglers != n || st.DrainClean != 0 {
		t.Fatalf("forced drain stats: %+v", st)
	}
	if got := st.Resolved(); got != st.Admitted {
		t.Fatalf("conservation after forced drain: resolved %d != admitted %d", got, st.Admitted)
	}
}

// TestServerCloseWhileInflight races Close against a concurrent request
// storm: every caller must unblock with either exact scores or ErrClosed,
// never hang, and the conservation law must hold afterwards.
func TestServerCloseWhileInflight(t *testing.T) {
	eng, samples := buildEngine(t, 0, 65)
	ref := serialScores(eng, samples)
	srv := serve.New(eng, serve.Config{MaxBatch: 4, MaxQueue: 128, Workers: 2})

	const n = 64
	type outcome struct {
		idx    int
		scores []float32
		err    error
	}
	outcomes := make(chan outcome, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			idx := i % len(samples)
			sc, err := srv.Infer(context.Background(), samples[idx])
			outcomes <- outcome{idx: idx, scores: sc, err: err}
		}(i)
	}
	time.Sleep(500 * time.Microsecond)
	srv.Close()

	finished := make(chan struct{})
	go func() { wg.Wait(); close(finished) }()
	select {
	case <-finished:
	case <-time.After(30 * time.Second):
		t.Fatal("callers hung across Close")
	}
	close(outcomes)
	for o := range outcomes {
		switch {
		case o.err == nil:
			assertExact(t, o.scores, ref[o.idx], "request completed across Close")
		case errors.Is(o.err, serve.ErrClosed):
		default:
			t.Fatalf("unexpected error across Close: %v", o.err)
		}
	}
	st := srv.Stats()
	if got := st.Resolved(); got != st.Admitted {
		t.Fatalf("conservation after Close-while-inflight: resolved %d != admitted %d: %+v", got, st.Admitted, st)
	}
}

// TestServerDrainCloseIdempotent: Drain → Drain → Close (and Close → Drain)
// converge without deadlock or double-counting.
func TestServerDrainCloseIdempotent(t *testing.T) {
	eng, samples := buildEngine(t, 0, 67)
	srv := serve.New(eng, serve.Config{MaxBatch: 2, Workers: 1})
	if _, err := srv.Infer(context.Background(), samples[0]); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if res := srv.Drain(ctx); !res.Clean {
		t.Fatalf("first drain: %+v", res)
	}
	if res := srv.Drain(ctx); !res.Clean || res.Stragglers != 0 {
		t.Fatalf("second drain: %+v", res)
	}
	srv.Close() // after drain: nothing left to do, must not hang
	if _, err := srv.Infer(context.Background(), samples[0]); !errors.Is(err, serve.ErrClosed) {
		t.Fatalf("post-drain submit: got %v, want ErrClosed", err)
	}
	st := srv.Stats()
	if st.Served != 1 || st.Resolved() != st.Admitted {
		t.Fatalf("idempotent lifecycle stats: %+v", st)
	}

	// Close first, then Drain: an already-shut server drains clean instantly.
	srv2 := serve.New(eng, serve.Config{Workers: 1})
	srv2.Close()
	if res := srv2.Drain(ctx); !res.Clean {
		t.Fatalf("drain after close: %+v", res)
	}
}

// TestServerHealthy pins the readiness flag across the lifecycle.
func TestServerHealthy(t *testing.T) {
	eng, _ := buildEngine(t, 0, 69)
	srv := serve.New(eng, serve.Config{Workers: 1})
	if !srv.Healthy() {
		t.Fatal("fresh server not healthy")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Drain(ctx)
	if srv.Healthy() {
		t.Fatal("drained server still healthy")
	}
	srv.Close()
	if srv.Healthy() {
		t.Fatal("closed server still healthy")
	}
}

// TestServerAdaptiveShed pins the deadline-aware shedder deterministically
// via the seeded-EWMA test hook: a request whose deadline budget is below the
// predicted queue wait is refused with ErrOverloaded and counted as Shed; a
// request with a generous budget or no deadline is admitted.
func TestServerAdaptiveShed(t *testing.T) {
	eng, samples := buildEngine(t, 0, 71)
	srv := serve.NewUnstarted(eng, serve.Config{MaxQueue: 8, AdaptiveShed: true})
	srv.SetWaitEWMA(50 * time.Millisecond)

	tight, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := srv.Infer(tight, samples[0]); !errors.Is(err, serve.ErrOverloaded) {
		t.Fatalf("under-budget request: got %v, want ErrOverloaded", err)
	}
	if st := srv.Stats(); st.Shed != 1 || st.Admitted != 0 || st.Rejected != 0 {
		t.Fatalf("shed stats: %+v", st)
	}

	// A generous deadline clears the predictor and admits.
	roomy, cancel2 := context.WithTimeout(context.Background(), time.Minute)
	defer cancel2()
	done := make(chan error, 1)
	go func() {
		_, err := srv.Infer(roomy, samples[0])
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.QueueLen() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("roomy request never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	srv.DispatchOnce()
	if err := <-done; err != nil {
		t.Fatalf("roomy request: %v", err)
	}

	// No deadline: never shed, whatever the predictor says.
	go func() {
		_, err := srv.Infer(context.Background(), samples[0])
		done <- err
	}()
	for srv.QueueLen() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("deadline-free request never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	srv.DispatchOnce()
	if err := <-done; err != nil {
		t.Fatalf("deadline-free request: %v", err)
	}
	if st := srv.Stats(); st.Shed != 1 || st.Served != 2 {
		t.Fatalf("post-admission stats: %+v", st)
	}
	srv.Close()
}

// TestServerObservesWait pins that dispatch feeds realized queue waits into
// the shedder's EWMA on a live server.
func TestServerObservesWait(t *testing.T) {
	eng, samples := buildEngine(t, 0, 73)
	srv := serve.NewUnstarted(eng, serve.Config{MaxQueue: 8, AdaptiveShed: true})
	done := make(chan error, 1)
	go func() {
		_, err := srv.Infer(context.Background(), samples[0])
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.QueueLen() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	// The request has now waited ≥ 1ms in the queue; dispatch must fold that
	// wait into the predictor.
	time.Sleep(time.Millisecond)
	srv.DispatchOnce()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := srv.WaitPrediction(); got <= 0 {
		t.Fatalf("EWMA not updated after dispatch: %v", got)
	}
	srv.Close()
}

// TestServerValidation: nil, empty and mis-shaped samples are refused with
// ErrBadRequest before touching the queue — and counted as Invalid, not
// Rejected.
func TestServerValidation(t *testing.T) {
	eng, samples := buildEngine(t, 0, 75)
	srv := serve.New(eng, serve.Config{Workers: 1, InputShape: []int{3, 16, 16}})
	defer srv.Close()
	ctx := context.Background()

	cases := []struct {
		name   string
		sample *tensor.Tensor
	}{
		{"nil", nil},
		{"empty", &tensor.Tensor{}},
		{"wrong-rank", tensor.New(3, 16)},
		{"wrong-dim", tensor.New(3, 16, 8)},
	}
	for _, tc := range cases {
		if _, err := srv.Infer(ctx, tc.sample); !errors.Is(err, serve.ErrBadRequest) {
			t.Fatalf("%s sample: got %v, want ErrBadRequest", tc.name, err)
		}
	}
	if _, err := srv.Classify(ctx, nil); !errors.Is(err, serve.ErrBadRequest) {
		t.Fatalf("Classify(nil): want ErrBadRequest")
	}
	st := srv.Stats()
	if st.Invalid != int64(len(cases))+1 || st.Admitted != 0 {
		t.Fatalf("validation stats: %+v", st)
	}

	// A well-shaped sample passes validation and serves.
	if _, err := srv.Infer(ctx, samples[0]); err != nil {
		t.Fatalf("valid sample refused: %v", err)
	}
}
