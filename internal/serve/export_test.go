package serve

import (
	"time"

	"ndsnn/internal/infer"
)

// Test-only hooks: admission control and deadline-drop behaviour are queue
// states that a running dispatcher races to drain, so the tests build
// servers with no dispatchers and step them by hand.

// NewUnstarted builds a Server with zero dispatcher goroutines. Submissions
// enqueue (or fast-fail) normally but nothing drains the queue until
// DispatchOnce is called; Close still drains stranded requests with
// ErrClosed.
func NewUnstarted(eng *infer.Engine, cfg Config) *Server {
	s := &Server{
		eng:  eng,
		cfg:  cfg.withDefaults(),
		stop: make(chan struct{}),
	}
	s.queue = make(chan *request, s.cfg.MaxQueue)
	s.initTelemetry()
	return s
}

// QueueLen reports how many requests are currently queued.
func (s *Server) QueueLen() int { return len(s.queue) }

// SetWaitEWMA seeds the adaptive shedder's queue-wait predictor so shedding
// decisions are deterministic in tests.
func (s *Server) SetWaitEWMA(d time.Duration) { s.waitEWMA.Store(d.Nanoseconds()) }

// DispatchOnce runs a single dispatcher iteration if anything is queued:
// coalesce around the oldest request, drop expired ones, run the batch.
// Telemetry-enabled servers get a fresh trace scratch per call — the tests
// step synchronously, so buffer reuse is irrelevant here.
func (s *Server) DispatchOnce() {
	select {
	case req := <-s.queue:
		var t0 time.Time
		var ds *dispatchScratch
		if s.tel != nil {
			t0 = time.Now()
			ds = &dispatchScratch{}
		}
		s.runBatch(s.coalesce(req), t0, ds)
	default:
	}
}
