package serve

import (
	"context"
	"errors"
	"time"

	"ndsnn/internal/rng"
	"ndsnn/internal/tensor"
)

// RetryPolicy tunes overload backoff for Retry/InferRetry. The zero value is
// usable: every field has a default.
type RetryPolicy struct {
	// Attempts is the total number of submissions (the first try plus
	// retries). Default 4.
	Attempts int
	// Base is the backoff before the first retry; each subsequent backoff
	// doubles it, capped at Max. Default 1ms.
	Base time.Duration
	// Max caps the exponential backoff. Default 128ms.
	Max time.Duration
	// Seed seeds the jitter draw (deterministic per policy use). Default 1.
	Seed uint64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Attempts < 1 {
		p.Attempts = 4
	}
	if p.Base <= 0 {
		p.Base = time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = 128 * time.Millisecond
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// Retry runs fn, retrying only on ErrOverloaded with jittered exponential
// backoff: before retry k the caller sleeps a uniform draw from [b/2, b)
// where b = min(Base·2^(k-1), Max) — full-magnitude jitter so a burst of
// shed callers decorrelates instead of re-colliding. Any other error (and
// success) returns immediately; ctx expiry during a backoff sleep returns
// ctx.Err(). The jitter sequence is seeded, so a retry schedule replays
// deterministically.
func Retry(ctx context.Context, p RetryPolicy, fn func(context.Context) error) error {
	p = p.withDefaults()
	r := rng.New(p.Seed)
	backoff := p.Base
	var err error
	for attempt := 1; ; attempt++ {
		err = fn(ctx)
		if err == nil || !errors.Is(err, ErrOverloaded) || attempt >= p.Attempts {
			return err
		}
		sleep := backoff/2 + time.Duration(r.Float64()*float64(backoff/2))
		timer := time.NewTimer(sleep)
		select {
		case <-ctx.Done():
			timer.Stop()
			return ctx.Err()
		case <-timer.C:
		}
		if backoff < p.Max {
			backoff *= 2
			if backoff > p.Max {
				backoff = p.Max
			}
		}
	}
}

// InferRetry is Infer with overload backoff: shed or queue-full submissions
// are retried per policy (counted in Stats.Retries); every other outcome —
// scores, bad request, deadline, closed server — passes straight through.
func (s *Server) InferRetry(ctx context.Context, p RetryPolicy, sample *tensor.Tensor) ([]float32, error) {
	var scores []float32
	first := true
	err := Retry(ctx, p, func(ctx context.Context) error {
		if !first {
			s.retries.Add(1)
		}
		first = false
		var err error
		scores, err = s.Infer(ctx, sample)
		return err
	})
	if err != nil {
		return nil, err
	}
	return scores, nil
}
