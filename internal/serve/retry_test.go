package serve_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"ndsnn/internal/serve"
)

// TestRetryOnlyOnOverload: Retry re-runs fn only for ErrOverloaded — success
// and every other error return immediately.
func TestRetryOnlyOnOverload(t *testing.T) {
	fast := serve.RetryPolicy{Attempts: 4, Base: 100 * time.Microsecond}

	calls := 0
	err := serve.Retry(context.Background(), fast, func(context.Context) error {
		calls++
		if calls < 3 {
			return serve.ErrOverloaded
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("overload then success: err %v after %d calls, want nil after 3", err, calls)
	}

	calls = 0
	boom := errors.New("boom")
	err = serve.Retry(context.Background(), fast, func(context.Context) error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) || calls != 1 {
		t.Fatalf("non-overload error: err %v after %d calls, want boom after 1", err, calls)
	}

	calls = 0
	err = serve.Retry(context.Background(), fast, func(context.Context) error {
		calls++
		return serve.ErrBadRequest
	})
	if !errors.Is(err, serve.ErrBadRequest) || calls != 1 {
		t.Fatalf("bad request: err %v after %d calls, want immediate ErrBadRequest", err, calls)
	}

	calls = 0
	err = serve.Retry(context.Background(), fast, func(context.Context) error {
		calls++
		return serve.ErrOverloaded
	})
	if !errors.Is(err, serve.ErrOverloaded) || calls != fast.Attempts {
		t.Fatalf("persistent overload: err %v after %d calls, want ErrOverloaded after %d", err, calls, fast.Attempts)
	}
}

// TestRetryHonorsContext: a context canceled during the backoff sleep aborts
// the retry loop with ctx.Err().
func TestRetryHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	done := make(chan error, 1)
	go func() {
		done <- serve.Retry(ctx, serve.RetryPolicy{Attempts: 10, Base: time.Hour}, func(context.Context) error {
			calls++
			return serve.ErrOverloaded
		})
	}()
	time.Sleep(time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
		if calls != 1 {
			t.Fatalf("fn called %d times, want 1 (hour-long backoff)", calls)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Retry did not honor context cancellation")
	}
}

// TestInferRetryCountsRetries: against a permanently full queue, InferRetry
// re-submits per policy and the server counts each re-submission.
func TestInferRetryCountsRetries(t *testing.T) {
	eng, samples := buildEngine(t, 0, 81)
	// Dispatcherless server with a 1-deep queue: park one request so every
	// further submission is ErrOverloaded deterministically.
	srv := serve.NewUnstarted(eng, serve.Config{MaxBatch: 1, MaxQueue: 1})
	parked := make(chan error, 1)
	go func() {
		_, err := srv.Infer(context.Background(), samples[0])
		parked <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.QueueLen() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("parked request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	p := serve.RetryPolicy{Attempts: 3, Base: 100 * time.Microsecond}
	_, err := srv.InferRetry(context.Background(), p, samples[0])
	if !errors.Is(err, serve.ErrOverloaded) {
		t.Fatalf("got %v, want ErrOverloaded after exhausted retries", err)
	}
	st := srv.Stats()
	if st.Retries != int64(p.Attempts-1) || st.Rejected != int64(p.Attempts) {
		t.Fatalf("retry stats: %+v (want Retries %d, Rejected %d)", st, p.Attempts-1, p.Attempts)
	}

	// Free the queue; a retried submission now lands and serves exactly.
	srv.DispatchOnce()
	if err := <-parked; err != nil {
		t.Fatal(err)
	}
	scores, err := srv.InferRetry(contextWithDispatch(srv), p, samples[1])
	if err != nil {
		t.Fatalf("InferRetry on a free queue: %v", err)
	}
	assertExact(t, scores, eng.Infer(samples[1]), "retried request")
	srv.Close()
}

// contextWithDispatch returns a background context and pumps DispatchOnce
// until the server quiesces — InferRetry blocks synchronously, so dispatch
// must run concurrently on an unstarted server.
func contextWithDispatch(srv *serve.Server) context.Context {
	go func() {
		for i := 0; i < 10000; i++ {
			srv.DispatchOnce()
			time.Sleep(100 * time.Microsecond)
		}
	}()
	return context.Background()
}
