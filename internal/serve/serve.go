// Package serve is the multi-tenant serving layer over the compiled
// event-driven inference engine: one immutable engine (float or QCSR
// integer) shared by any number of concurrent callers, fronted by a
// coalescing queue.
//
// The serving primitive is request coalescing: concurrent single-sample
// Classify/Infer calls are batched into one stage-major engine pass
// (Engine.InferBatch), which traverses each stage's compiled weight tables
// while cache-hot for the whole batch — the FuseTimesteps amortization
// argument applied across requests instead of across timesteps. Because the
// batched pass preserves every sample's exact serial arithmetic, serving
// output is bit-identical to the serial single-caller engine.
//
// The lifecycle of a request:
//
//  1. Admission. The queue is bounded (Config.MaxQueue); a full queue
//     fast-fails with ErrOverloaded instead of building unbounded latency —
//     callers shed load or retry with backoff. A closed server fails with
//     ErrClosed.
//  2. Coalescing. A dispatcher goroutine takes the oldest request, then
//     greedily drains the queue up to Config.MaxBatch; if the batch is
//     underfull and Config.Linger > 0 it holds the batch open up to that
//     long for stragglers. Linger trades batch-1 latency for throughput.
//  3. Deadlines. Every request carries a context.Context. Expired requests
//     are dropped at dispatch (before any compute) with the context's
//     error; a caller whose context expires mid-flight unblocks immediately
//     with ctx.Err() while the already-admitted sample finishes its batch
//     (the result is discarded — the engine pass is not interruptible).
//  4. Execution. The live batch runs one InferBatch pass; each caller gets
//     its own score vector.
//
// Stats exposes served/rejected/expired counts and the realized coalescing
// (batches vs batched samples) for capacity tuning.
package serve

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ndsnn/internal/infer"
	"ndsnn/internal/tensor"
)

// ErrOverloaded is returned by Infer/Classify when the admission queue is
// full — the fast-fail signal to shed or defer load.
var ErrOverloaded = errors.New("serve: queue full (over capacity)")

// ErrClosed is returned for requests submitted to (or stranded in) a closed
// server.
var ErrClosed = errors.New("serve: server closed")

// Config tunes one Server. The zero value is usable: every field has a
// sensible default applied by New.
type Config struct {
	// MaxBatch caps how many queued single-sample requests coalesce into
	// one batched engine pass. 1 disables coalescing. Default 8.
	MaxBatch int
	// Linger is how long a dispatcher holds an underfull batch open waiting
	// for more requests. 0 (default) never waits: a batch is whatever the
	// queue holds at dispatch — under sustained load batches still fill,
	// because requests queue up while the previous pass computes.
	Linger time.Duration
	// MaxQueue bounds the admission queue; submissions beyond it fast-fail
	// with ErrOverloaded. Default 4×MaxBatch (at least MaxBatch).
	MaxQueue int
	// Workers is the number of dispatcher goroutines running batched engine
	// passes concurrently. Default GOMAXPROCS.
	Workers int
}

// withDefaults normalizes a Config.
func (c Config) withDefaults() Config {
	if c.MaxBatch < 1 {
		c.MaxBatch = 8
	}
	if c.MaxQueue < 1 {
		c.MaxQueue = 4 * c.MaxBatch
	}
	if c.MaxQueue < c.MaxBatch {
		c.MaxQueue = c.MaxBatch
	}
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Stats is a snapshot of a server's counters.
type Stats struct {
	// Served counts requests answered with scores.
	Served int64
	// Rejected counts admissions fast-failed with ErrOverloaded.
	Rejected int64
	// Expired counts requests dropped at dispatch because their context was
	// already done (deadline exceeded or canceled before compute).
	Expired int64
	// Batches counts engine passes; BatchedSamples counts the samples they
	// carried. BatchedSamples/Batches is the realized coalescing factor.
	Batches        int64
	BatchedSamples int64
}

// MeanBatch returns the realized mean coalesced batch size (0 before any
// pass).
func (s Stats) MeanBatch() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.BatchedSamples) / float64(s.Batches)
}

// request is one queued inference.
type request struct {
	ctx    context.Context
	sample *tensor.Tensor
	done   chan response // buffered(1): dispatcher never blocks on delivery
}

type response struct {
	scores []float32
	err    error
}

// Server fronts one compiled engine with admission control and request
// coalescing. All methods are safe for concurrent use.
type Server struct {
	eng   *infer.Engine
	cfg   Config
	queue chan *request
	stop  chan struct{}
	wg    sync.WaitGroup

	mu     sync.RWMutex
	closed bool

	served, rejected, expired, batches, batched atomic.Int64
}

// New starts a server over a compiled engine. The engine must not be
// recompiled or mutated while serving (engines are immutable plans, so this
// only rules out swapping the pointer's target). Callers own the engine and
// may share it with other servers or direct Infer callers — all outputs
// remain bit-identical.
func New(eng *infer.Engine, cfg Config) *Server {
	s := &Server{
		eng:  eng,
		cfg:  cfg.withDefaults(),
		stop: make(chan struct{}),
	}
	s.queue = make(chan *request, s.cfg.MaxQueue)
	s.wg.Add(s.cfg.Workers)
	for i := 0; i < s.cfg.Workers; i++ {
		go s.dispatch()
	}
	return s
}

// Config returns the normalized configuration the server runs with.
func (s *Server) Config() Config { return s.cfg }

// Infer submits one sample (shape [C,H,W], direct encoding) and blocks
// until its scores are ready, its context expires, or admission fails. The
// returned slice is owned by the caller.
func (s *Server) Infer(ctx context.Context, sample *tensor.Tensor) ([]float32, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	req := &request{ctx: ctx, sample: sample, done: make(chan response, 1)}
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, ErrClosed
	}
	select {
	case s.queue <- req:
		s.mu.RUnlock()
	default:
		s.mu.RUnlock()
		s.rejected.Add(1)
		return nil, ErrOverloaded
	}
	select {
	case resp := <-req.done:
		if resp.err == nil {
			s.served.Add(1)
		}
		return resp.scores, resp.err
	case <-ctx.Done():
		// The sample may still ride its batch; the buffered done channel
		// absorbs the late (discarded) result.
		return nil, ctx.Err()
	}
}

// Classify submits one sample and returns its argmax class.
func (s *Server) Classify(ctx context.Context, sample *tensor.Tensor) (int, error) {
	scores, err := s.Infer(ctx, sample)
	if err != nil {
		return 0, err
	}
	best, bestIdx := scores[0], 0
	for i, v := range scores[1:] {
		if v > best {
			best = v
			bestIdx = i + 1
		}
	}
	return bestIdx, nil
}

// Stats returns a snapshot of the server's counters.
func (s *Server) Stats() Stats {
	return Stats{
		Served:         s.served.Load(),
		Rejected:       s.rejected.Load(),
		Expired:        s.expired.Load(),
		Batches:        s.batches.Load(),
		BatchedSamples: s.batched.Load(),
	}
}

// Close stops admission, waits for in-flight batches to finish, and fails
// any still-queued requests with ErrClosed. Idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stop)
	s.wg.Wait()
	// Workers are gone; anything still queued was admitted before the flag
	// flipped and gets a definitive error.
	for {
		select {
		case req := <-s.queue:
			req.done <- response{err: ErrClosed}
		default:
			return
		}
	}
}

// dispatch is one worker loop: pull the oldest request, coalesce, run.
func (s *Server) dispatch() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		case req := <-s.queue:
			s.runBatch(s.coalesce(req))
		}
	}
}

// coalesce gathers up to MaxBatch requests around the first: an immediate
// greedy drain, then (if underfull and Linger > 0) a bounded wait for
// stragglers.
func (s *Server) coalesce(first *request) []*request {
	batch := make([]*request, 1, s.cfg.MaxBatch)
	batch[0] = first
	for len(batch) < s.cfg.MaxBatch {
		select {
		case r := <-s.queue:
			batch = append(batch, r)
			continue
		default:
		}
		break
	}
	if len(batch) >= s.cfg.MaxBatch || s.cfg.Linger <= 0 {
		return batch
	}
	timer := time.NewTimer(s.cfg.Linger)
	defer timer.Stop()
	for len(batch) < s.cfg.MaxBatch {
		select {
		case r := <-s.queue:
			batch = append(batch, r)
		case <-timer.C:
			return batch
		case <-s.stop:
			return batch
		}
	}
	return batch
}

// runBatch drops expired requests, runs the survivors as one stage-major
// engine pass, and delivers each caller its scores.
func (s *Server) runBatch(batch []*request) {
	live := batch[:0]
	for _, r := range batch {
		if err := r.ctx.Err(); err != nil {
			r.done <- response{err: err}
			s.expired.Add(1)
			continue
		}
		live = append(live, r)
	}
	if len(live) == 0 {
		return
	}
	samples := make([]*tensor.Tensor, len(live))
	for i, r := range live {
		samples[i] = r.sample
	}
	outs := s.eng.InferBatch(samples)
	for i, r := range live {
		r.done <- response{scores: outs[i]}
	}
	s.batches.Add(1)
	s.batched.Add(int64(len(live)))
}
