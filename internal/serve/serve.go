// Package serve is the multi-tenant serving layer over the compiled
// event-driven inference engine: one immutable engine (float or QCSR
// integer) shared by any number of concurrent callers, fronted by a
// coalescing queue with an explicit failure model.
//
// The serving primitive is request coalescing: concurrent single-sample
// Classify/Infer calls are batched into one stage-major engine pass
// (Engine.InferBatch), which traverses each stage's compiled weight tables
// while cache-hot for the whole batch — the FuseTimesteps amortization
// argument applied across requests instead of across timesteps. Because the
// batched pass preserves every sample's exact serial arithmetic, serving
// output is bit-identical to the serial single-caller engine.
//
// The lifecycle of a request:
//
//  1. Validation. Nil or mis-shaped samples fail fast with ErrBadRequest
//     before touching the queue — the compiled engine never sees them.
//  2. Admission. The queue is bounded (Config.MaxQueue); a full queue
//     fast-fails with ErrOverloaded instead of building unbounded latency —
//     callers shed load or retry with backoff (see Retry). With
//     Config.AdaptiveShed, a request whose deadline budget is smaller than
//     the EWMA-predicted queue wait is also shed with ErrOverloaded: work
//     that would expire anyway is refused before it costs anything. A
//     closed or draining server fails with ErrClosed.
//  3. Coalescing. A dispatcher goroutine takes the oldest request, then
//     greedily drains the queue up to Config.MaxBatch; if the batch is
//     underfull and Config.Linger > 0 it holds the batch open up to that
//     long for stragglers. Linger trades batch-1 latency for throughput.
//  4. Deadlines. Every request carries a context.Context. Expired requests
//     are dropped at dispatch (before any compute) with the context's
//     error; a caller whose context expires mid-flight unblocks immediately
//     with ctx.Err() while the already-admitted sample finishes its batch
//     (the result is discarded — the engine pass is not interruptible).
//  5. Execution. The live batch runs one InferBatch pass under panic
//     isolation: a panic anywhere in the engine is recovered, converted to
//     ErrInternal for exactly that batch's requests, and the pass's scratch
//     arenas are abandoned to the garbage collector instead of being
//     repooled (the engine only repools an arena after a pass completes
//     normally, so no possibly-poisoned state survives). The server keeps
//     serving.
//  6. Shutdown. Close stops admission and fails queued work immediately;
//     Drain stops admission but keeps dispatching until the queue and all
//     in-flight work are flushed or its context expires, then fails only
//     the stragglers. Both are idempotent and safe to combine.
//
// Every admitted request is counted exactly once at resolution — Served,
// ExpiredInQueue, ExpiredInFlight or Failed — so after shutdown
//
//	Admitted == Served + ExpiredInQueue + ExpiredInFlight + Failed
//
// holds exactly (Stats.Resolved). Submissions that were never admitted are
// counted separately as Rejected (queue full), Shed (adaptive), or Invalid
// (bad request). The chaos harness (chaos_test.go) asserts this
// conservation law with every fault site armed.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ndsnn/internal/fault"
	"ndsnn/internal/infer"
	"ndsnn/internal/obs"
	"ndsnn/internal/tensor"
)

// ErrOverloaded is returned by Infer/Classify when the admission queue is
// full, or when adaptive shedding predicts the request would miss its
// deadline in the queue — the fast-fail signal to shed or defer load.
var ErrOverloaded = errors.New("serve: queue full (over capacity)")

// ErrClosed is returned for requests submitted to (or stranded in) a closed
// or draining server.
var ErrClosed = errors.New("serve: server closed")

// ErrInternal is returned to every request of a batch whose engine pass
// panicked. The panic is isolated to that batch: the server keeps serving,
// and the pass's scratch arenas are discarded rather than repooled.
var ErrInternal = errors.New("serve: internal engine failure (batch isolated)")

// ErrBadRequest is returned for samples rejected by admission validation:
// nil tensors, empty data, or a shape that does not match the engine's
// input. Validation runs before the queue, so the compiled engine never
// panics on caller mistakes.
var ErrBadRequest = errors.New("serve: bad request")

// Fault-injection sites of the serving layer (no-ops unless armed; see
// internal/fault). The chaos harness arms each in turn and asserts the
// failure model holds.
var (
	// faultAdmit delays the admission path — a slow caller-side stall.
	faultAdmit = fault.New("serve.admit", fault.CanDelay)
	// faultBatch fires just before the engine pass: a panic or error here is
	// the serving layer's own failure, isolated exactly like an engine panic;
	// a delay models a descheduled dispatcher.
	faultBatch = fault.New("serve.batch", fault.CanPanic|fault.CanDelay|fault.CanError)
	// faultDeliver delays between compute and delivery — widens the window
	// where a caller's deadline expires mid-flight.
	faultDeliver = fault.New("serve.deliver", fault.CanDelay)
)

// Config tunes one Server. The zero value is usable: every field has a
// sensible default applied by New.
type Config struct {
	// MaxBatch caps how many queued single-sample requests coalesce into
	// one batched engine pass. 1 disables coalescing. Default 8.
	MaxBatch int
	// Linger is how long a dispatcher holds an underfull batch open waiting
	// for more requests. 0 (default) never waits: a batch is whatever the
	// queue holds at dispatch — under sustained load batches still fill,
	// because requests queue up while the previous pass computes.
	Linger time.Duration
	// MaxQueue bounds the admission queue; submissions beyond it fast-fail
	// with ErrOverloaded. Default 4×MaxBatch (at least MaxBatch).
	MaxQueue int
	// Workers is the number of dispatcher goroutines running batched engine
	// passes concurrently. Default GOMAXPROCS.
	Workers int
	// InputShape, when non-nil, is the exact sample shape admission
	// accepts; anything else fails with ErrBadRequest. Nil skips the shape
	// check (nil samples and empty data are always rejected).
	InputShape []int
	// AdaptiveShed enables deadline-aware admission shedding: the server
	// keeps an EWMA of realized queue wait, and a request whose context
	// deadline budget is below the predicted wait is rejected with
	// ErrOverloaded at admission — before it costs queue space or compute
	// it would only waste. Requests without a deadline are never shed.
	AdaptiveShed bool
	// ShedAlpha is the EWMA smoothing factor in (0,1]; larger reacts
	// faster. 0 defaults to 0.2.
	ShedAlpha float64
	// Metrics, when non-nil, attaches telemetry: per-request queue-wait,
	// batch-assembly and compute histograms, admission-outcome counters, the
	// realized batch-size distribution, a queue-depth gauge, and sampled
	// request traces. Nil (the default) keeps the hot path free of clock
	// reads — every telemetry hook is one branch.
	Metrics *obs.Registry
	// TraceEvery samples full request traces: one batch in TraceEvery gets a
	// queue-wait/assembly/per-stage/compute span breakdown pushed to the
	// registry's trace ring. 0 defaults to DefaultTraceEvery; negative
	// disables tracing while keeping histograms and counters.
	TraceEvery int
}

// DefaultTraceEvery is the trace sampling period used when Config.Metrics
// is set and Config.TraceEvery is zero.
const DefaultTraceEvery = 8

// DefaultShedAlpha is the queue-wait EWMA smoothing factor used when
// Config.AdaptiveShed is set and Config.ShedAlpha is zero.
const DefaultShedAlpha = 0.2

// withDefaults normalizes a Config.
func (c Config) withDefaults() Config {
	if c.MaxBatch < 1 {
		c.MaxBatch = 8
	}
	if c.MaxQueue < 1 {
		c.MaxQueue = 4 * c.MaxBatch
	}
	if c.MaxQueue < c.MaxBatch {
		c.MaxQueue = c.MaxBatch
	}
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.ShedAlpha <= 0 || c.ShedAlpha > 1 {
		c.ShedAlpha = DefaultShedAlpha
	}
	return c
}

// Stats is a snapshot of a server's counters. Admitted requests resolve
// exactly once (Served, ExpiredInQueue, ExpiredInFlight or Failed);
// submissions refused at admission count once under Rejected, Shed or
// Invalid and are never admitted.
type Stats struct {
	// Admitted counts requests accepted into the queue.
	Admitted int64
	// Served counts requests answered with scores.
	Served int64
	// Rejected counts admissions fast-failed with ErrOverloaded on a full
	// queue.
	Rejected int64
	// Shed counts admissions refused by adaptive shedding: the predicted
	// queue wait exceeded the request's deadline budget (also
	// ErrOverloaded).
	Shed int64
	// Invalid counts admissions refused with ErrBadRequest.
	Invalid int64
	// ExpiredInQueue counts requests dropped at dispatch because their
	// context was already done (deadline exceeded or canceled before any
	// compute was spent on them).
	ExpiredInQueue int64
	// ExpiredInFlight counts requests whose context expired while their
	// batch was computing: the caller already unblocked with ctx.Err(), the
	// computed result was discarded at delivery. A high value means
	// deadlines are tighter than a batched pass — compute spent for nothing.
	ExpiredInFlight int64
	// Failed counts admitted requests resolved with an error that is not a
	// deadline: batch-isolated engine panics (ErrInternal) and requests
	// stranded at Close/Drain (ErrClosed).
	Failed int64
	// Panics counts engine passes that panicked (each fails a whole batch;
	// Failed counts the per-request fallout).
	Panics int64
	// Retries counts backoff re-submissions made through InferRetry.
	Retries int64
	// Batches counts completed engine passes; BatchedSamples counts the
	// samples they carried. BatchedSamples/Batches is the realized
	// coalescing factor. Panicked passes count in neither.
	Batches        int64
	BatchedSamples int64
	// DrainClean / DrainForced / DrainStragglers record Drain outcomes:
	// drains that flushed everything, drains cut short by their context,
	// and the queued requests those failed.
	DrainClean      int64
	DrainForced     int64
	DrainStragglers int64
}

// Expired returns all deadline-expired requests, wherever the deadline
// caught them.
func (s Stats) Expired() int64 { return s.ExpiredInQueue + s.ExpiredInFlight }

// Resolved returns the admitted requests that have been counted to a final
// outcome. After Close or Drain returns, Resolved() == Admitted — the
// conservation law the chaos harness asserts under every injected fault.
func (s Stats) Resolved() int64 {
	return s.Served + s.ExpiredInQueue + s.ExpiredInFlight + s.Failed
}

// MeanBatch returns the realized mean coalesced batch size (0 before any
// pass).
func (s Stats) MeanBatch() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.BatchedSamples) / float64(s.Batches)
}

// request is one queued inference.
type request struct {
	ctx    context.Context
	sample *tensor.Tensor
	done   chan response // buffered(1): dispatcher never blocks on delivery
	enq    time.Time     // enqueue instant; stamped with telemetry or shedding on
}

type response struct {
	scores []float32
	err    error
}

// Server fronts one compiled engine with admission control and request
// coalescing. All methods are safe for concurrent use.
type Server struct {
	eng   *infer.Engine
	cfg   Config
	queue chan *request
	stop  chan struct{}
	once  sync.Once // guards close(stop)
	wg    sync.WaitGroup

	mu     sync.RWMutex
	closed bool

	admitted, served, rejected, shed, invalid atomic.Int64
	expiredQueue, expiredFlight, failed       atomic.Int64
	panics, retries, batches, batched         atomic.Int64
	drainClean, drainForced, drainStrag       atomic.Int64

	// waitEWMA is the exponentially-weighted moving average of realized
	// queue wait in nanoseconds — the adaptive shedder's predictor. Updated
	// with plain atomic store (a lost update only delays convergence).
	waitEWMA atomic.Int64

	tel *telemetry // nil unless Config.Metrics is set
}

// New starts a server over a compiled engine. The engine must not be
// recompiled or mutated while serving (engines are immutable plans, so this
// only rules out swapping the pointer's target). Callers own the engine and
// may share it with other servers or direct Infer callers — all outputs
// remain bit-identical.
func New(eng *infer.Engine, cfg Config) *Server {
	s := &Server{
		eng:  eng,
		cfg:  cfg.withDefaults(),
		stop: make(chan struct{}),
	}
	s.queue = make(chan *request, s.cfg.MaxQueue)
	s.initTelemetry()
	s.wg.Add(s.cfg.Workers)
	for i := 0; i < s.cfg.Workers; i++ {
		go s.dispatch()
	}
	return s
}

// Config returns the normalized configuration the server runs with.
func (s *Server) Config() Config { return s.cfg }

// Healthy reports whether the server is accepting requests: true until
// Close or Drain stops admission. Exported as the serve_healthy gauge when
// telemetry is attached — the readiness signal a load balancer should poll.
func (s *Server) Healthy() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return !s.closed
}

// validate applies admission validation: nil/empty samples and (when
// Config.InputShape is set) shape mismatches fail with ErrBadRequest.
func (s *Server) validate(sample *tensor.Tensor) error {
	if sample == nil || len(sample.Data) == 0 {
		return fmt.Errorf("%w: nil or empty sample", ErrBadRequest)
	}
	if want := s.cfg.InputShape; want != nil {
		if sample.NumDims() != len(want) {
			return fmt.Errorf("%w: sample has %d dims, engine input wants %v", ErrBadRequest, sample.NumDims(), want)
		}
		for i, d := range want {
			if sample.Dim(i) != d {
				return fmt.Errorf("%w: sample dim %d is %d, engine input wants %v", ErrBadRequest, i, sample.Dim(i), want)
			}
		}
	}
	return nil
}

// shouldShed reports whether adaptive shedding refuses this request: its
// deadline budget is smaller than the EWMA-predicted queue wait, so it
// would expire in the queue with near-certainty.
func (s *Server) shouldShed(ctx context.Context) bool {
	if !s.cfg.AdaptiveShed {
		return false
	}
	predicted := s.waitEWMA.Load()
	if predicted <= 0 {
		return false // cold start: no evidence yet, admit
	}
	deadline, ok := ctx.Deadline()
	if !ok {
		return false // no deadline, nothing to protect
	}
	return time.Until(deadline) < time.Duration(predicted)
}

// WaitPrediction returns the shedder's current predicted queue wait — the
// EWMA of realized waits that admission compares deadline budgets against.
// Zero until the first dispatch (or when AdaptiveShed is off). Also exported
// as the serve_shed_predicted_wait_ns gauge when metrics are on.
func (s *Server) WaitPrediction() time.Duration {
	return time.Duration(s.waitEWMA.Load())
}

// observeWait folds one realized queue wait into the shedding predictor.
func (s *Server) observeWait(wait time.Duration) {
	if !s.cfg.AdaptiveShed {
		return
	}
	w := wait.Nanoseconds()
	if w < 0 {
		w = 0
	}
	old := s.waitEWMA.Load()
	if old == 0 {
		s.waitEWMA.Store(w)
		return
	}
	a := s.cfg.ShedAlpha
	s.waitEWMA.Store(int64(a*float64(w) + (1-a)*float64(old)))
}

// Infer submits one sample (shape [C,H,W], direct encoding) and blocks
// until its scores are ready, its context expires, or admission fails. The
// returned slice is owned by the caller.
func (s *Server) Infer(ctx context.Context, sample *tensor.Tensor) ([]float32, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := s.validate(sample); err != nil {
		s.invalid.Add(1)
		return nil, err
	}
	faultAdmit.Fire()
	if s.shouldShed(ctx) {
		s.shed.Add(1)
		return nil, ErrOverloaded
	}
	req := &request{ctx: ctx, sample: sample, done: make(chan response, 1)}
	if s.tel != nil || s.cfg.AdaptiveShed {
		req.enq = time.Now()
	}
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, ErrClosed
	}
	// Admitted is incremented before the enqueue (and rolled back on a full
	// queue) so Admitted ≥ in-system holds at every instant — the invariant
	// Drain's quiescence check rests on.
	s.admitted.Add(1)
	select {
	case s.queue <- req:
		s.mu.RUnlock()
	default:
		s.mu.RUnlock()
		s.admitted.Add(-1)
		s.rejected.Add(1)
		return nil, ErrOverloaded
	}
	select {
	case resp := <-req.done:
		return resp.scores, resp.err
	case <-ctx.Done():
		// The sample may still ride its batch; the buffered done channel
		// absorbs the late (discarded) result.
		return nil, ctx.Err()
	}
}

// Classify submits one sample and returns its argmax class.
func (s *Server) Classify(ctx context.Context, sample *tensor.Tensor) (int, error) {
	scores, err := s.Infer(ctx, sample)
	if err != nil {
		return 0, err
	}
	best, bestIdx := scores[0], 0
	for i, v := range scores[1:] {
		if v > best {
			best = v
			bestIdx = i + 1
		}
	}
	return bestIdx, nil
}

// Stats returns a snapshot of the server's counters.
func (s *Server) Stats() Stats {
	return Stats{
		Admitted:        s.admitted.Load(),
		Served:          s.served.Load(),
		Rejected:        s.rejected.Load(),
		Shed:            s.shed.Load(),
		Invalid:         s.invalid.Load(),
		ExpiredInQueue:  s.expiredQueue.Load(),
		ExpiredInFlight: s.expiredFlight.Load(),
		Failed:          s.failed.Load(),
		Panics:          s.panics.Load(),
		Retries:         s.retries.Load(),
		Batches:         s.batches.Load(),
		BatchedSamples:  s.batched.Load(),
		DrainClean:      s.drainClean.Load(),
		DrainForced:     s.drainForced.Load(),
		DrainStragglers: s.drainStrag.Load(),
	}
}

// markClosed stops admission. Idempotent.
func (s *Server) markClosed() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
}

// shutdown stops the dispatchers, waits for in-flight batches, and fails
// anything still queued with ErrClosed. Safe to call more than once and
// from concurrent goroutines; returns how many stragglers this call failed.
func (s *Server) shutdown() int64 {
	s.once.Do(func() { close(s.stop) })
	s.wg.Wait()
	// Workers are gone; anything still queued was admitted before the flag
	// flipped and gets a definitive error.
	var n int64
	for {
		select {
		case req := <-s.queue:
			n++
			s.failed.Add(1)
			req.done <- response{err: ErrClosed}
		default:
			return n
		}
	}
}

// Close stops admission, waits for in-flight batches to finish, and fails
// any still-queued requests with ErrClosed (counted as Failed). Idempotent,
// and safe to call after (or concurrently with) Drain.
func (s *Server) Close() {
	s.markClosed()
	s.shutdown()
}

// DrainResult reports how a Drain ended.
type DrainResult struct {
	// Clean is true when the queue and all in-flight work were fully
	// flushed before ctx expired: every admitted request resolved with its
	// natural outcome and nothing was failed by the drain itself.
	Clean bool
	// Stragglers counts queued requests failed with ErrClosed because ctx
	// expired first.
	Stragglers int64
}

// Drain gracefully shuts the server down: admission stops immediately (new
// submissions fail with ErrClosed), dispatchers keep flushing the queue,
// and Drain blocks until every admitted request has resolved or ctx
// expires — whichever comes first. Stragglers still queued at expiry are
// failed with ErrClosed; an in-flight engine pass always runs to completion
// (passes are not interruptible). Idempotent with itself and with Close: a
// second Drain or a following Close finds nothing left to do.
func (s *Server) Drain(ctx context.Context) DrainResult {
	s.markClosed()
	clean := s.awaitQuiesce(ctx)
	n := s.shutdown()
	res := DrainResult{Clean: clean && n == 0, Stragglers: n}
	if res.Clean {
		s.drainClean.Add(1)
	} else {
		s.drainForced.Add(1)
		s.drainStrag.Add(n)
	}
	return res
}

// awaitQuiesce blocks until every admitted request has resolved (true) or
// ctx expires (false). The quiet condition is checked before the context so
// a Drain with an already-expired context still reports an already-quiet
// server as clean.
func (s *Server) awaitQuiesce(ctx context.Context) bool {
	tick := time.NewTicker(200 * time.Microsecond)
	defer tick.Stop()
	for {
		if len(s.queue) == 0 && s.Stats().Resolved() == s.admitted.Load() {
			return true
		}
		select {
		case <-ctx.Done():
			return false
		case <-tick.C:
		}
	}
}

// dispatch is one worker loop: pull the oldest request, coalesce, run. Each
// worker owns a dispatchScratch so trace collection reuses its buffers.
func (s *Server) dispatch() {
	defer s.wg.Done()
	var ds *dispatchScratch
	if s.tel != nil {
		ds = &dispatchScratch{}
	}
	for {
		select {
		case <-s.stop:
			return
		case req := <-s.queue:
			var t0 time.Time
			if s.tel != nil {
				t0 = time.Now()
			}
			s.runBatch(s.coalesce(req), t0, ds)
		}
	}
}

// coalesce gathers up to MaxBatch requests around the first: an immediate
// greedy drain, then (if underfull and Linger > 0) a bounded wait for
// stragglers.
func (s *Server) coalesce(first *request) []*request {
	batch := make([]*request, 1, s.cfg.MaxBatch)
	batch[0] = first
	for len(batch) < s.cfg.MaxBatch {
		select {
		case r := <-s.queue:
			batch = append(batch, r)
			continue
		default:
		}
		break
	}
	if len(batch) >= s.cfg.MaxBatch || s.cfg.Linger <= 0 {
		return batch
	}
	timer := time.NewTimer(s.cfg.Linger)
	defer timer.Stop()
	for len(batch) < s.cfg.MaxBatch {
		select {
		case r := <-s.queue:
			batch = append(batch, r)
		case <-timer.C:
			return batch
		case <-s.stop:
			return batch
		}
	}
	return batch
}

// computeBatch runs one engine pass under panic isolation: a panic anywhere
// below (an engine stage, or the serve.batch fault site standing in for
// one) is recovered and converted to ErrInternal, and the pass's scratch
// arenas are left to the garbage collector — infer only repools an arena
// after its pass completes, so a panic can never leak poisoned state into
// the pool.
func (s *Server) computeBatch(samples []*tensor.Tensor, traced bool, ds *dispatchScratch) (outs [][]float32, err error) {
	defer func() {
		if r := recover(); r != nil {
			outs, err = nil, fmt.Errorf("%w: %v", ErrInternal, r)
		}
	}()
	if ferr := faultBatch.Err(); ferr != nil {
		return nil, fmt.Errorf("%w: %v", ErrInternal, ferr)
	}
	if traced {
		return s.eng.InferBatchTraced(samples, &ds.pt), nil
	}
	return s.eng.InferBatch(samples), nil
}

// runBatch drops expired requests, runs the survivors as one stage-major
// engine pass under panic isolation, and resolves each caller exactly once:
// scores (Served), the context's error (ExpiredInFlight), or ErrInternal
// for the whole batch if the pass panicked (Failed). t0 is the dispatch
// instant (zero when telemetry is off); ds is the worker's reused trace
// scratch (nil when telemetry is off).
func (s *Server) runBatch(batch []*request, t0 time.Time, ds *dispatchScratch) {
	tel := s.tel
	var tStart time.Time
	if tel != nil || s.cfg.AdaptiveShed {
		tStart = time.Now()
	}
	live := batch[:0]
	for _, r := range batch {
		if err := r.ctx.Err(); err != nil {
			s.expiredQueue.Add(1)
			r.done <- response{err: err}
			continue
		}
		if tel != nil {
			tel.queueWait.Record(tStart.Sub(r.enq).Nanoseconds())
		}
		s.observeWait(tStart.Sub(r.enq))
		live = append(live, r)
	}
	if len(live) == 0 {
		return
	}
	samples := make([]*tensor.Tensor, len(live))
	for i, r := range live {
		samples[i] = r.sample
	}
	traced := tel != nil && ds != nil && tel.sample()
	outs, err := s.computeBatch(samples, traced, ds)
	if err != nil {
		// Panic isolation: exactly this batch fails; the server keeps
		// serving. Requests whose deadline expired during the doomed pass
		// still count as expired, not failed — their callers saw ctx.Err().
		s.panics.Add(1)
		for _, r := range live {
			if cerr := r.ctx.Err(); cerr != nil {
				s.expiredFlight.Add(1)
				r.done <- response{err: cerr}
			} else {
				s.failed.Add(1)
				r.done <- response{err: err}
			}
		}
		return
	}
	if tel != nil {
		computeNS := time.Since(tStart).Nanoseconds()
		tel.assembly.Record(tStart.Sub(t0).Nanoseconds())
		tel.compute.Record(computeNS)
		tel.batchSize.Record(int64(len(live)))
		if traced {
			s.pushTrace(ds, live[0], t0, tStart, computeNS, len(live))
		}
	}
	faultDeliver.Fire()
	for i, r := range live {
		if cerr := r.ctx.Err(); cerr != nil {
			// The caller already unblocked with ctx.Err(); the buffered done
			// channel absorbs the discarded result.
			s.expiredFlight.Add(1)
			r.done <- response{err: cerr}
		} else {
			s.served.Add(1)
			r.done <- response{scores: outs[i]}
		}
	}
	s.batches.Add(1)
	s.batched.Add(int64(len(live)))
}
