// Package serve is the multi-tenant serving layer over the compiled
// event-driven inference engine: one immutable engine (float or QCSR
// integer) shared by any number of concurrent callers, fronted by a
// coalescing queue.
//
// The serving primitive is request coalescing: concurrent single-sample
// Classify/Infer calls are batched into one stage-major engine pass
// (Engine.InferBatch), which traverses each stage's compiled weight tables
// while cache-hot for the whole batch — the FuseTimesteps amortization
// argument applied across requests instead of across timesteps. Because the
// batched pass preserves every sample's exact serial arithmetic, serving
// output is bit-identical to the serial single-caller engine.
//
// The lifecycle of a request:
//
//  1. Admission. The queue is bounded (Config.MaxQueue); a full queue
//     fast-fails with ErrOverloaded instead of building unbounded latency —
//     callers shed load or retry with backoff. A closed server fails with
//     ErrClosed.
//  2. Coalescing. A dispatcher goroutine takes the oldest request, then
//     greedily drains the queue up to Config.MaxBatch; if the batch is
//     underfull and Config.Linger > 0 it holds the batch open up to that
//     long for stragglers. Linger trades batch-1 latency for throughput.
//  3. Deadlines. Every request carries a context.Context. Expired requests
//     are dropped at dispatch (before any compute) with the context's
//     error; a caller whose context expires mid-flight unblocks immediately
//     with ctx.Err() while the already-admitted sample finishes its batch
//     (the result is discarded — the engine pass is not interruptible).
//  4. Execution. The live batch runs one InferBatch pass; each caller gets
//     its own score vector.
//
// Stats exposes served/rejected/expired counts and the realized coalescing
// (batches vs batched samples) for capacity tuning.
package serve

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ndsnn/internal/infer"
	"ndsnn/internal/obs"
	"ndsnn/internal/tensor"
)

// ErrOverloaded is returned by Infer/Classify when the admission queue is
// full — the fast-fail signal to shed or defer load.
var ErrOverloaded = errors.New("serve: queue full (over capacity)")

// ErrClosed is returned for requests submitted to (or stranded in) a closed
// server.
var ErrClosed = errors.New("serve: server closed")

// Config tunes one Server. The zero value is usable: every field has a
// sensible default applied by New.
type Config struct {
	// MaxBatch caps how many queued single-sample requests coalesce into
	// one batched engine pass. 1 disables coalescing. Default 8.
	MaxBatch int
	// Linger is how long a dispatcher holds an underfull batch open waiting
	// for more requests. 0 (default) never waits: a batch is whatever the
	// queue holds at dispatch — under sustained load batches still fill,
	// because requests queue up while the previous pass computes.
	Linger time.Duration
	// MaxQueue bounds the admission queue; submissions beyond it fast-fail
	// with ErrOverloaded. Default 4×MaxBatch (at least MaxBatch).
	MaxQueue int
	// Workers is the number of dispatcher goroutines running batched engine
	// passes concurrently. Default GOMAXPROCS.
	Workers int
	// Metrics, when non-nil, attaches telemetry: per-request queue-wait,
	// batch-assembly and compute histograms, admission-outcome counters, the
	// realized batch-size distribution, a queue-depth gauge, and sampled
	// request traces. Nil (the default) keeps the hot path free of clock
	// reads — every telemetry hook is one branch.
	Metrics *obs.Registry
	// TraceEvery samples full request traces: one batch in TraceEvery gets a
	// queue-wait/assembly/per-stage/compute span breakdown pushed to the
	// registry's trace ring. 0 defaults to DefaultTraceEvery; negative
	// disables tracing while keeping histograms and counters.
	TraceEvery int
}

// DefaultTraceEvery is the trace sampling period used when Config.Metrics
// is set and Config.TraceEvery is zero.
const DefaultTraceEvery = 8

// withDefaults normalizes a Config.
func (c Config) withDefaults() Config {
	if c.MaxBatch < 1 {
		c.MaxBatch = 8
	}
	if c.MaxQueue < 1 {
		c.MaxQueue = 4 * c.MaxBatch
	}
	if c.MaxQueue < c.MaxBatch {
		c.MaxQueue = c.MaxBatch
	}
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Stats is a snapshot of a server's counters.
type Stats struct {
	// Served counts requests answered with scores.
	Served int64
	// Rejected counts admissions fast-failed with ErrOverloaded.
	Rejected int64
	// ExpiredInQueue counts requests dropped at dispatch because their
	// context was already done (deadline exceeded or canceled before any
	// compute was spent on them).
	ExpiredInQueue int64
	// ExpiredInFlight counts requests whose context expired while their
	// batch was computing: the caller already unblocked with ctx.Err(), the
	// computed result was discarded at delivery. A high value means
	// deadlines are tighter than a batched pass — compute spent for nothing.
	ExpiredInFlight int64
	// Batches counts engine passes; BatchedSamples counts the samples they
	// carried. BatchedSamples/Batches is the realized coalescing factor.
	Batches        int64
	BatchedSamples int64
}

// Expired returns all deadline-expired requests, wherever the deadline
// caught them.
func (s Stats) Expired() int64 { return s.ExpiredInQueue + s.ExpiredInFlight }

// MeanBatch returns the realized mean coalesced batch size (0 before any
// pass).
func (s Stats) MeanBatch() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.BatchedSamples) / float64(s.Batches)
}

// request is one queued inference.
type request struct {
	ctx    context.Context
	sample *tensor.Tensor
	done   chan response // buffered(1): dispatcher never blocks on delivery
	enq    time.Time     // enqueue instant; stamped only with telemetry on
}

type response struct {
	scores []float32
	err    error
}

// Server fronts one compiled engine with admission control and request
// coalescing. All methods are safe for concurrent use.
type Server struct {
	eng   *infer.Engine
	cfg   Config
	queue chan *request
	stop  chan struct{}
	wg    sync.WaitGroup

	mu     sync.RWMutex
	closed bool

	served, rejected, batches, batched atomic.Int64
	expiredQueue, expiredFlight        atomic.Int64

	tel *telemetry // nil unless Config.Metrics is set
}

// New starts a server over a compiled engine. The engine must not be
// recompiled or mutated while serving (engines are immutable plans, so this
// only rules out swapping the pointer's target). Callers own the engine and
// may share it with other servers or direct Infer callers — all outputs
// remain bit-identical.
func New(eng *infer.Engine, cfg Config) *Server {
	s := &Server{
		eng:  eng,
		cfg:  cfg.withDefaults(),
		stop: make(chan struct{}),
	}
	s.queue = make(chan *request, s.cfg.MaxQueue)
	s.initTelemetry()
	s.wg.Add(s.cfg.Workers)
	for i := 0; i < s.cfg.Workers; i++ {
		go s.dispatch()
	}
	return s
}

// Config returns the normalized configuration the server runs with.
func (s *Server) Config() Config { return s.cfg }

// Infer submits one sample (shape [C,H,W], direct encoding) and blocks
// until its scores are ready, its context expires, or admission fails. The
// returned slice is owned by the caller.
func (s *Server) Infer(ctx context.Context, sample *tensor.Tensor) ([]float32, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	req := &request{ctx: ctx, sample: sample, done: make(chan response, 1)}
	if s.tel != nil {
		req.enq = time.Now()
	}
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, ErrClosed
	}
	select {
	case s.queue <- req:
		s.mu.RUnlock()
	default:
		s.mu.RUnlock()
		s.rejected.Add(1)
		return nil, ErrOverloaded
	}
	select {
	case resp := <-req.done:
		if resp.err == nil {
			s.served.Add(1)
		}
		return resp.scores, resp.err
	case <-ctx.Done():
		// The sample may still ride its batch; the buffered done channel
		// absorbs the late (discarded) result.
		return nil, ctx.Err()
	}
}

// Classify submits one sample and returns its argmax class.
func (s *Server) Classify(ctx context.Context, sample *tensor.Tensor) (int, error) {
	scores, err := s.Infer(ctx, sample)
	if err != nil {
		return 0, err
	}
	best, bestIdx := scores[0], 0
	for i, v := range scores[1:] {
		if v > best {
			best = v
			bestIdx = i + 1
		}
	}
	return bestIdx, nil
}

// Stats returns a snapshot of the server's counters.
func (s *Server) Stats() Stats {
	return Stats{
		Served:          s.served.Load(),
		Rejected:        s.rejected.Load(),
		ExpiredInQueue:  s.expiredQueue.Load(),
		ExpiredInFlight: s.expiredFlight.Load(),
		Batches:         s.batches.Load(),
		BatchedSamples:  s.batched.Load(),
	}
}

// Close stops admission, waits for in-flight batches to finish, and fails
// any still-queued requests with ErrClosed. Idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stop)
	s.wg.Wait()
	// Workers are gone; anything still queued was admitted before the flag
	// flipped and gets a definitive error.
	for {
		select {
		case req := <-s.queue:
			req.done <- response{err: ErrClosed}
		default:
			return
		}
	}
}

// dispatch is one worker loop: pull the oldest request, coalesce, run. Each
// worker owns a dispatchScratch so trace collection reuses its buffers.
func (s *Server) dispatch() {
	defer s.wg.Done()
	var ds *dispatchScratch
	if s.tel != nil {
		ds = &dispatchScratch{}
	}
	for {
		select {
		case <-s.stop:
			return
		case req := <-s.queue:
			var t0 time.Time
			if s.tel != nil {
				t0 = time.Now()
			}
			s.runBatch(s.coalesce(req), t0, ds)
		}
	}
}

// coalesce gathers up to MaxBatch requests around the first: an immediate
// greedy drain, then (if underfull and Linger > 0) a bounded wait for
// stragglers.
func (s *Server) coalesce(first *request) []*request {
	batch := make([]*request, 1, s.cfg.MaxBatch)
	batch[0] = first
	for len(batch) < s.cfg.MaxBatch {
		select {
		case r := <-s.queue:
			batch = append(batch, r)
			continue
		default:
		}
		break
	}
	if len(batch) >= s.cfg.MaxBatch || s.cfg.Linger <= 0 {
		return batch
	}
	timer := time.NewTimer(s.cfg.Linger)
	defer timer.Stop()
	for len(batch) < s.cfg.MaxBatch {
		select {
		case r := <-s.queue:
			batch = append(batch, r)
		case <-timer.C:
			return batch
		case <-s.stop:
			return batch
		}
	}
	return batch
}

// runBatch drops expired requests, runs the survivors as one stage-major
// engine pass, and delivers each caller its scores. t0 is the dispatch
// instant (zero when telemetry is off); ds is the worker's reused trace
// scratch (nil when telemetry is off).
func (s *Server) runBatch(batch []*request, t0 time.Time, ds *dispatchScratch) {
	tel := s.tel
	var tStart time.Time
	if tel != nil {
		tStart = time.Now()
	}
	live := batch[:0]
	for _, r := range batch {
		if err := r.ctx.Err(); err != nil {
			r.done <- response{err: err}
			s.expiredQueue.Add(1)
			continue
		}
		if tel != nil {
			tel.queueWait.Record(tStart.Sub(r.enq).Nanoseconds())
		}
		live = append(live, r)
	}
	if len(live) == 0 {
		return
	}
	samples := make([]*tensor.Tensor, len(live))
	for i, r := range live {
		samples[i] = r.sample
	}
	var outs [][]float32
	traced := tel != nil && ds != nil && tel.sample()
	if traced {
		outs = s.eng.InferBatchTraced(samples, &ds.pt)
	} else {
		outs = s.eng.InferBatch(samples)
	}
	if tel != nil {
		computeNS := time.Since(tStart).Nanoseconds()
		tel.assembly.Record(tStart.Sub(t0).Nanoseconds())
		tel.compute.Record(computeNS)
		tel.batchSize.Record(int64(len(live)))
		if traced {
			s.pushTrace(ds, live[0], t0, tStart, computeNS, len(live))
		}
	}
	for i, r := range live {
		if r.ctx.Err() != nil {
			// The caller already unblocked with ctx.Err(); the buffered done
			// channel absorbs the discarded result.
			s.expiredFlight.Add(1)
		}
		r.done <- response{scores: outs[i]}
	}
	s.batches.Add(1)
	s.batched.Add(int64(len(live)))
}
