package serve_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"ndsnn/internal/baselines"
	"ndsnn/internal/data"
	"ndsnn/internal/infer"
	"ndsnn/internal/serve"
	"ndsnn/internal/tensor"
	"ndsnn/internal/testutil"
	"ndsnn/internal/train"
)

// buildEngine trains a tiny model and compiles it. bits == 0 compiles the
// float engine; otherwise the QCSR integer engine.
func buildEngine(t *testing.T, bits int, seed uint64) (*infer.Engine, []*tensor.Tensor) {
	t.Helper()
	ds := data.SynthEasy(4, 64, 16, seed)
	net := testutil.TinyNet(4, 3, seed)
	_, err := baselines.TrainDense(net, ds, train.Common{
		Epochs: 2, BatchSize: 16, LR: 0.05, Momentum: 0.9, WeightDecay: 5e-4, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	var eng *infer.Engine
	if bits == 0 {
		eng, err = infer.Compile(net)
	} else {
		eng, err = infer.CompileQuantized(net, bits)
	}
	if err != nil {
		t.Fatal(err)
	}
	pix := ds.Config.C * ds.Config.H * ds.Config.W
	samples := make([]*tensor.Tensor, ds.Test.N())
	for i := range samples {
		samples[i] = tensor.FromSlice(ds.Test.Images[i*pix:(i+1)*pix], ds.Config.C, ds.Config.H, ds.Config.W)
	}
	return eng, samples
}

// serialScores is the single-caller reference the served outputs must match
// bit-for-bit.
func serialScores(eng *infer.Engine, samples []*tensor.Tensor) [][]float32 {
	ref := make([][]float32, len(samples))
	for i, s := range samples {
		ref[i] = eng.Infer(s)
	}
	return ref
}

func assertExact(t *testing.T, got, want []float32, ctxmsg string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d scores, want %d", ctxmsg, len(got), len(want))
	}
	for j := range got {
		if got[j] != want[j] {
			t.Fatalf("%s: score %d: served %v vs serial %v (must be bit-identical)", ctxmsg, j, got[j], want[j])
		}
	}
}

// TestServerBitIdenticalUnderConcurrency is the serving-layer identity pin:
// many goroutines hammering one coalescing server must each receive exactly
// the serial single-caller scores, for the float and integer engines alike.
// Run under -race in CI.
func TestServerBitIdenticalUnderConcurrency(t *testing.T) {
	for _, tc := range []struct {
		name string
		bits int
	}{
		{"float32", 0}, {"int8", 8}, {"int4", 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			eng, samples := buildEngine(t, tc.bits, 31)
			ref := serialScores(eng, samples)
			srv := serve.New(eng, serve.Config{MaxBatch: 4, Linger: 100 * time.Microsecond, MaxQueue: 256, Workers: 2})
			defer srv.Close()

			const goroutines = 8
			const perG = 24
			var wg sync.WaitGroup
			errc := make(chan error, goroutines)
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for k := 0; k < perG; k++ {
						idx := (g*perG + k) % len(samples)
						scores, err := srv.Infer(context.Background(), samples[idx])
						if err != nil {
							errc <- err
							return
						}
						for j := range scores {
							if scores[j] != ref[idx][j] {
								errc <- errors.New("served scores diverge from serial reference")
								return
							}
						}
					}
				}(g)
			}
			wg.Wait()
			close(errc)
			for err := range errc {
				t.Fatal(err)
			}
			st := srv.Stats()
			if st.Served != goroutines*perG {
				t.Fatalf("served %d, want %d", st.Served, goroutines*perG)
			}
			if st.Batches == 0 || st.BatchedSamples != st.Served {
				t.Fatalf("batch accounting: %+v", st)
			}
		})
	}
}

// TestServerCoalesces drives the server with enough concurrency that at
// least one multi-sample batch forms.
func TestServerCoalesces(t *testing.T) {
	eng, samples := buildEngine(t, 0, 33)
	srv := serve.New(eng, serve.Config{MaxBatch: 8, Linger: 2 * time.Millisecond, MaxQueue: 128, Workers: 1})
	defer srv.Close()

	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := srv.Infer(context.Background(), samples[i%len(samples)]); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	st := srv.Stats()
	if st.Served != n {
		t.Fatalf("served %d, want %d", st.Served, n)
	}
	if st.MeanBatch() <= 1.0 {
		t.Fatalf("no coalescing happened: mean batch %.2f over %d batches", st.MeanBatch(), st.Batches)
	}
}

// TestServerClassifyAgreesWithEngine pins the argmax path.
func TestServerClassifyAgreesWithEngine(t *testing.T) {
	eng, samples := buildEngine(t, 0, 35)
	srv := serve.New(eng, serve.Config{MaxBatch: 4})
	defer srv.Close()
	for i, s := range samples[:8] {
		want := eng.Classify(s)
		got, err := srv.Classify(context.Background(), s)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("sample %d: served class %d, engine class %d", i, got, want)
		}
	}
}

// TestServerAdmissionControl fills the queue to capacity with no dispatcher
// draining it and expects every further submission to fast-fail with
// ErrOverloaded, not block. Uses the unstarted-server test hook so the
// full-queue state is deterministic rather than a race against dispatch.
func TestServerAdmissionControl(t *testing.T) {
	eng, samples := buildEngine(t, 0, 37)
	// Note MaxQueue is floored at MaxBatch by the config defaults, so both
	// must be 2 for a genuinely 2-deep queue.
	srv := serve.NewUnstarted(eng, serve.Config{MaxBatch: 2, MaxQueue: 2, Workers: 1})

	// Admit exactly MaxQueue requests; they sit in the queue because no
	// dispatcher is running.
	var wg sync.WaitGroup
	admitted := make(chan error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := srv.Infer(context.Background(), samples[i%len(samples)])
			admitted <- err
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.QueueLen() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("admitted requests never reached the queue")
		}
		time.Sleep(time.Millisecond)
	}

	// The queue is full: submissions must fail immediately, never block.
	const burst = 8
	for i := 0; i < burst; i++ {
		if _, err := srv.Infer(context.Background(), samples[0]); !errors.Is(err, serve.ErrOverloaded) {
			t.Fatalf("submission %d into a full queue: got %v, want ErrOverloaded", i, err)
		}
	}
	if got := srv.Stats().Rejected; got != burst {
		t.Fatalf("Stats().Rejected = %d, want %d", got, burst)
	}

	// One dispatch serves both admitted requests (coalesced, MaxBatch 2).
	srv.DispatchOnce()
	wg.Wait()
	close(admitted)
	for err := range admitted {
		if err != nil {
			t.Fatal(err)
		}
	}
	st := srv.Stats()
	if st.Served != 2 || st.Batches != 1 || st.BatchedSamples != 2 {
		t.Fatalf("post-dispatch stats: %+v", st)
	}
	srv.Close()
}

// TestServerDeadline: an already-expired context fails immediately; one
// expiring in the queue is dropped before compute.
func TestServerDeadline(t *testing.T) {
	eng, samples := buildEngine(t, 0, 39)
	srv := serve.New(eng, serve.Config{MaxBatch: 1, MaxQueue: 8, Workers: 1})
	defer srv.Close()

	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := srv.Infer(expired, samples[0]); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("pre-expired context: got %v, want DeadlineExceeded", err)
	}

	// A canceled-while-queued request unblocks with ctx.Err() even though
	// the server is busy.
	ctx, cancelQueued := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := srv.Infer(ctx, samples[0])
		done <- err
	}()
	cancelQueued()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) && err != nil {
			// nil is possible if the request completed before the cancel won
			// the race — both are correct; only a hang or a foreign error fails.
			t.Fatalf("canceled request: got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled request did not unblock")
	}

	// Deterministic drop-at-dispatch: cancel a request while it is queued in
	// an unstarted server, then dispatch by hand — the batch must drop it
	// before compute and count it as Expired.
	unstarted := serve.NewUnstarted(eng, serve.Config{MaxQueue: 4})
	cctx, ccancel := context.WithCancel(context.Background())
	dropped := make(chan error, 1)
	go func() {
		_, err := unstarted.Infer(cctx, samples[0])
		dropped <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for unstarted.QueueLen() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("queued request never landed")
		}
		time.Sleep(time.Millisecond)
	}
	ccancel()
	if err := <-dropped; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled-in-queue request: got %v, want Canceled", err)
	}
	unstarted.DispatchOnce()
	if st := unstarted.Stats(); st.ExpiredInQueue != 1 || st.ExpiredInFlight != 0 || st.Expired() != 1 || st.Batches != 0 {
		t.Fatalf("expired-drop stats: %+v (want ExpiredInQueue 1, Batches 0)", st)
	}
	unstarted.Close()
}

// TestServerClose: submissions after Close fail with ErrClosed; Close is
// idempotent and releases resources promptly.
func TestServerClose(t *testing.T) {
	eng, samples := buildEngine(t, 0, 41)
	srv := serve.New(eng, serve.Config{MaxBatch: 2, Workers: 2})
	if _, err := srv.Infer(context.Background(), samples[0]); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	srv.Close() // idempotent
	if _, err := srv.Infer(context.Background(), samples[0]); !errors.Is(err, serve.ErrClosed) {
		t.Fatalf("post-close submit: got %v, want ErrClosed", err)
	}
}

// TestServerSynOpsRollUp: the engine-level SynOps counter aggregates served
// requests' work exactly as the serial engine would count it.
func TestServerSynOpsRollUp(t *testing.T) {
	eng, samples := buildEngine(t, 0, 43)
	// Serial reference count for 8 samples.
	eng.ResetStats()
	for _, s := range samples[:8] {
		eng.Infer(s)
	}
	want := eng.SynOps()

	eng.ResetStats()
	srv := serve.New(eng, serve.Config{MaxBatch: 4, Linger: time.Millisecond, Workers: 2})
	defer srv.Close()
	var wg sync.WaitGroup
	for _, s := range samples[:8] {
		wg.Add(1)
		go func(s *tensor.Tensor) {
			defer wg.Done()
			if _, err := srv.Infer(context.Background(), s); err != nil {
				t.Error(err)
			}
		}(s)
	}
	wg.Wait()
	if got := eng.SynOps(); got != want {
		t.Fatalf("served SynOps %d != serial %d", got, want)
	}
}
