package serve

import (
	"sync/atomic"
	"time"

	"ndsnn/internal/infer"
	"ndsnn/internal/obs"
)

// Serving telemetry: where does a request's latency go — the admission
// queue, batch assembly (linger), or compute — and how well does coalescing
// realize. All recording is histogram/counter atomics; sampled batches
// additionally push a span trace composing the serving segments with the
// engine's per-stage breakdown (InferBatchTraced).
//
// The counters the server already keeps (served/rejected/expired/batches)
// export as callback counters so nothing is double-counted; the queue depth
// exports as a gauge sampled at snapshot time.

// telemetry is a server's recording state, built once in initTelemetry.
type telemetry struct {
	reg       *obs.Registry
	queueWait *obs.Histogram // serve_queue_wait_ns: enqueue → batch start, per admitted request
	assembly  *obs.Histogram // serve_batch_assembly_ns: dispatch pull → batch start (coalesce + linger)
	compute   *obs.Histogram // serve_compute_ns: the batched engine pass
	batchSize *obs.Histogram // serve_batch_size: realized coalesced batch sizes

	traceEvery uint32
	seq        atomic.Uint32
}

// sample decides whether the next batch carries a full request trace.
func (t *telemetry) sample() bool {
	return t.traceEvery > 0 && t.seq.Add(1)%t.traceEvery == 0
}

// initTelemetry attaches Config.Metrics to the server. Called once during
// construction, before any dispatcher runs.
func (s *Server) initTelemetry() {
	reg := s.cfg.Metrics
	if reg == nil {
		return
	}
	te := s.cfg.TraceEvery
	if te == 0 {
		te = DefaultTraceEvery
	}
	t := &telemetry{reg: reg}
	if te > 0 {
		t.traceEvery = uint32(te)
	}
	t.queueWait = reg.Histogram("serve_queue_wait_ns", "ns")
	t.assembly = reg.Histogram("serve_batch_assembly_ns", "ns")
	t.compute = reg.Histogram("serve_compute_ns", "ns")
	t.batchSize = reg.Histogram("serve_batch_size", "samples")
	reg.CounterFunc("serve_admitted_total", s.admitted.Load)
	reg.CounterFunc("serve_served_total", s.served.Load)
	reg.CounterFunc("serve_rejected_total", s.rejected.Load)
	reg.CounterFunc("serve_shed_total", s.shed.Load)
	reg.CounterFunc("serve_invalid_total", s.invalid.Load)
	reg.CounterFunc("serve_expired_queue_total", s.expiredQueue.Load)
	reg.CounterFunc("serve_expired_inflight_total", s.expiredFlight.Load)
	reg.CounterFunc("serve_failed_total", s.failed.Load)
	reg.CounterFunc("serve_panics_isolated_total", s.panics.Load)
	reg.CounterFunc("serve_retries_total", s.retries.Load)
	reg.CounterFunc("serve_batches_total", s.batches.Load)
	reg.CounterFunc("serve_batched_samples_total", s.batched.Load)
	reg.CounterFunc("serve_drain_clean_total", s.drainClean.Load)
	reg.CounterFunc("serve_drain_forced_total", s.drainForced.Load)
	reg.CounterFunc("serve_drain_stragglers_total", s.drainStrag.Load)
	reg.Gauge("serve_queue_depth", func() int64 { return int64(len(s.queue)) })
	// Readiness: 1 while admission is open, 0 once Close/Drain stopped it —
	// the gauge a load balancer's health poll reads off obs.Handler.
	reg.Gauge("serve_healthy", func() int64 {
		if s.Healthy() {
			return 1
		}
		return 0
	})
	// Predicted queue wait of the adaptive shedder (0 with shedding off).
	reg.Gauge("serve_shed_predicted_wait_ns", s.waitEWMA.Load)
	s.tel = t
}

// dispatchScratch is a dispatcher worker's reused trace buffers: the engine
// span collector and the composed serving-trace span list.
type dispatchScratch struct {
	pt    infer.PassTrace
	spans []obs.Span
}

// pushTrace composes one sampled batch's trace — the oldest request's queue
// wait, the assembly window, then the engine's per-stage spans shifted onto
// the request timeline (or one aggregate compute span when the engine has
// no telemetry attached) — and pushes it to the registry's trace ring.
func (s *Server) pushTrace(ds *dispatchScratch, oldest *request, t0, tStart time.Time, computeNS int64, n int) {
	qw := t0.Sub(oldest.enq).Nanoseconds()
	if qw < 0 {
		qw = 0
	}
	asm := tStart.Sub(t0).Nanoseconds()
	spans := ds.spans[:0]
	spans = append(spans,
		obs.Span{Name: "queue_wait", StartNs: 0, DurNs: qw},
		obs.Span{Name: "assembly", StartNs: qw, DurNs: asm},
	)
	off := qw + asm
	if len(ds.pt.Spans) > 0 {
		for _, sp := range ds.pt.Spans {
			sp.StartNs += off
			spans = append(spans, sp)
		}
	} else {
		spans = append(spans, obs.Span{Name: "compute", StartNs: off, DurNs: computeNS})
	}
	ds.spans = spans
	s.tel.reg.Ring().Push("serve", oldest.enq, n, spans)
}
