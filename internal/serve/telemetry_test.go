package serve_test

import (
	"context"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ndsnn/internal/obs"
	"ndsnn/internal/serve"
)

// TestServerMeanBatchZeroSafe pins the division guard: a server that has
// dispatched nothing reports a mean batch of 0, not NaN.
func TestServerMeanBatchZeroSafe(t *testing.T) {
	eng, _ := buildEngine(t, 0, 51)
	srv := serve.NewUnstarted(eng, serve.Config{})
	defer srv.Close()
	st := srv.Stats()
	if st.Batches != 0 {
		t.Fatalf("unstarted server ran %d batches", st.Batches)
	}
	if mb := st.MeanBatch(); mb != 0 || math.IsNaN(mb) {
		t.Fatalf("MeanBatch() on zero batches = %v, want 0", mb)
	}
}

// countdownCtx is a context whose Err() stays nil for the first `free` calls
// and reports Canceled from then on, while Done() is always closed. It makes
// the expired-in-flight path deterministic: with an unstarted server the
// Err() call order is exactly (1) Infer admission, (2) Infer's select return
// after Done fires, (3) the dispatch drop check, (4) the delivery check — so
// free=3 admits the request, survives the drop check, and expires precisely
// at delivery.
type countdownCtx struct {
	context.Context
	calls atomic.Int32
	free  int32
	done  chan struct{}
}

func newCountdownCtx(free int32) *countdownCtx {
	c := &countdownCtx{Context: context.Background(), free: free, done: make(chan struct{})}
	close(c.done)
	return c
}

func (c *countdownCtx) Err() error {
	if c.calls.Add(1) <= c.free {
		return nil
	}
	return context.Canceled
}

func (c *countdownCtx) Done() <-chan struct{} { return c.done }

// TestServerExpiredInFlight drives a request through compute with a context
// that expires only at the delivery check, and expects it counted as
// ExpiredInFlight (compute spent, result discarded) — not ExpiredInQueue.
func TestServerExpiredInFlight(t *testing.T) {
	eng, samples := buildEngine(t, 0, 53)
	srv := serve.NewUnstarted(eng, serve.Config{MaxQueue: 4})
	defer srv.Close()

	ctx := newCountdownCtx(3)
	// Done() is already closed, so Infer enqueues and returns immediately
	// (its select takes the ctx.Done branch; Err() call #2 is still nil, so
	// the caller sees no error and no scores — the batch hasn't run yet).
	if scores, err := srv.Infer(ctx, samples[0]); err != nil || scores != nil {
		t.Fatalf("pre-dispatch return: scores=%v err=%v, want nil/nil", scores, err)
	}
	if srv.QueueLen() != 1 {
		t.Fatalf("queue length %d, want 1", srv.QueueLen())
	}
	srv.DispatchOnce()
	st := srv.Stats()
	if st.ExpiredInFlight != 1 || st.ExpiredInQueue != 0 {
		t.Fatalf("expired split: %+v (want ExpiredInFlight 1, ExpiredInQueue 0)", st)
	}
	if st.Expired() != 1 {
		t.Fatalf("Expired() = %d, want 1", st.Expired())
	}
	if st.Batches != 1 || st.BatchedSamples != 1 {
		t.Fatalf("the expired-in-flight request must still ride a batch: %+v", st)
	}
	if st.Served != 0 {
		t.Fatalf("a discarded result must not count as served: %+v", st)
	}
}

// TestServerTelemetry is the serving-layer telemetry pin: with a registry
// attached and every batch traced, served outputs stay bit-identical to the
// serial reference, the latency histograms see every request, the callback
// counters agree with Stats, and the trace ring holds composed
// queue-wait/assembly/per-stage spans.
func TestServerTelemetry(t *testing.T) {
	eng, samples := buildEngine(t, 8, 55)
	ref := serialScores(eng, samples)

	reg := obs.New()
	eng.EnableTelemetry(reg, 1)
	srv := serve.New(eng, serve.Config{
		MaxBatch: 4, Linger: 500 * time.Microsecond, MaxQueue: 128, Workers: 2,
		Metrics: reg, TraceEvery: 1,
	})
	defer srv.Close()

	const n = 48
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			idx := i % len(samples)
			scores, err := srv.Infer(context.Background(), samples[idx])
			if err != nil {
				t.Error(err)
				return
			}
			for j := range scores {
				if scores[j] != ref[idx][j] {
					t.Errorf("sample %d score %d: %v vs %v (telemetry must not perturb outputs)", idx, j, scores[j], ref[idx][j])
					return
				}
			}
		}(i)
	}
	wg.Wait()

	st := srv.Stats()
	snap := reg.Snapshot()

	qw := snap.Hist("serve_queue_wait_ns")
	if qw == nil || qw.Count != uint64(n) {
		t.Fatalf("serve_queue_wait_ns: %+v, want count %d", qw, n)
	}
	bs := snap.Hist("serve_batch_size")
	if bs == nil || bs.Count != uint64(st.Batches) {
		t.Fatalf("serve_batch_size count %v != batches %d", bs, st.Batches)
	}
	if bs.MaxValue() > 4 {
		t.Fatalf("batch size histogram saw %d > MaxBatch 4", bs.MaxValue())
	}
	if c := snap.Hist("serve_compute_ns"); c == nil || c.Count != uint64(st.Batches) || c.P50 <= 0 {
		t.Fatalf("serve_compute_ns: %+v, want %d positive records", c, st.Batches)
	}
	for name, want := range map[string]int64{
		"serve_served_total":          st.Served,
		"serve_rejected_total":        st.Rejected,
		"serve_batches_total":         st.Batches,
		"serve_batched_samples_total": st.BatchedSamples,
	} {
		if got := snap.Counter(name); got != want {
			t.Fatalf("counter %s = %d, want %d (Stats agreement)", name, got, want)
		}
	}

	if len(snap.Traces) == 0 {
		t.Fatal("TraceEvery=1 produced no traces")
	}
	tr := snap.Traces[len(snap.Traces)-1]
	if tr.Kind != "serve" {
		t.Fatalf("trace kind %q, want serve", tr.Kind)
	}
	if len(tr.Spans) < 3 || tr.Spans[0].Name != "queue_wait" || tr.Spans[1].Name != "assembly" {
		t.Fatalf("trace spans %+v: want queue_wait, assembly, then engine stages", tr.Spans)
	}
	var names []string
	for _, sp := range tr.Spans {
		names = append(names, sp.Name)
	}
	if joined := strings.Join(names, " "); !strings.Contains(joined, "lif") {
		t.Fatalf("trace lacks engine per-stage spans: %v", names)
	}
	// Engine spans are shifted onto the request timeline: they must start at
	// or after the assembly window ends.
	off := tr.Spans[1].StartNs + tr.Spans[1].DurNs
	if tr.Spans[2].StartNs < off {
		t.Fatalf("engine span starts at %d, before assembly ends at %d", tr.Spans[2].StartNs, off)
	}
}

// TestServerTelemetryWithoutEngineTelemetry: a metered server over an
// unmetered engine falls back to a single aggregate compute span.
func TestServerTelemetryWithoutEngineTelemetry(t *testing.T) {
	eng, samples := buildEngine(t, 0, 57)
	reg := obs.New()
	srv := serve.New(eng, serve.Config{MaxBatch: 2, Metrics: reg, TraceEvery: 1, Workers: 1})
	defer srv.Close()
	for i := 0; i < 4; i++ {
		if _, err := srv.Infer(context.Background(), samples[i%len(samples)]); err != nil {
			t.Fatal(err)
		}
	}
	snap := reg.Snapshot()
	if len(snap.Traces) == 0 {
		t.Fatal("no traces")
	}
	tr := snap.Traces[len(snap.Traces)-1]
	want := []string{"queue_wait", "assembly", "compute"}
	if len(tr.Spans) != len(want) {
		t.Fatalf("spans %+v, want exactly %v", tr.Spans, want)
	}
	for i, sp := range tr.Spans {
		if sp.Name != want[i] {
			t.Fatalf("span %d is %q, want %q", i, sp.Name, want[i])
		}
	}
}
