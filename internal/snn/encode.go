package snn

import (
	"math"

	"ndsnn/internal/rng"
	"ndsnn/internal/tensor"
)

// InputEncoder transforms a static input tensor into its presentation at
// timestep t. A nil encoder on Network means direct (constant-current)
// encoding — the paper's setup, where the first convolution acts as the
// spike encoder.
type InputEncoder interface {
	Encode(x *tensor.Tensor, t int) *tensor.Tensor
}

// PoissonEncoder emits Bernoulli spike trains whose firing probability is a
// logistic squash of the (standardized) input intensity — the classic
// rate-coding front end used by pre-deep-learning SNNs and neuromorphic
// sensors. It exists as an alternative input path; accuracy is typically
// below direct encoding at small T, matching the literature.
type PoissonEncoder struct {
	// Gain scales the logistic: p = σ(Gain·x). 0 means 1.
	Gain float32
	// Rng drives the Bernoulli draws; required.
	Rng *rng.RNG
}

// Encode samples one timestep of spikes.
func (e *PoissonEncoder) Encode(x *tensor.Tensor, t int) *tensor.Tensor {
	gain := e.Gain
	if gain == 0 {
		gain = 1
	}
	out := tensor.New(x.Shape()...)
	for i, v := range x.Data {
		p := 1 / (1 + math.Exp(-float64(gain*v)))
		if e.Rng.Float64() < p {
			out.Data[i] = 1
		}
	}
	return out
}

// LatencyEncoder emits exactly one spike per input, earlier for stronger
// inputs: input quantile q fires at timestep floor((1-q)·T). It needs the
// total timestep count up front.
type LatencyEncoder struct {
	// T is the simulation length the spike times are quantized to.
	T int
	// Lo and Hi bound the input range mapped onto [0, T); values at or
	// above Hi fire at t=0, values at or below Lo never fire.
	Lo, Hi float32
}

// Encode emits the spikes scheduled for timestep t.
func (e *LatencyEncoder) Encode(x *tensor.Tensor, t int) *tensor.Tensor {
	out := tensor.New(x.Shape()...)
	span := e.Hi - e.Lo
	if span <= 0 {
		span = 1
	}
	for i, v := range x.Data {
		q := (v - e.Lo) / span
		if q <= 0 {
			continue // never fires
		}
		if q > 1 {
			q = 1
		}
		fireAt := int(float32(e.T) * (1 - q))
		if fireAt >= e.T {
			fireAt = e.T - 1
		}
		if fireAt == t {
			out.Data[i] = 1
		}
	}
	return out
}
