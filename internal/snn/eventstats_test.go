package snn_test

import (
	"testing"

	"ndsnn/internal/layers"
	"ndsnn/internal/metrics"
	"ndsnn/internal/rng"
	"ndsnn/internal/snn"
	"ndsnn/internal/tensor"
)

// TestNetworkEventStatsAggregation runs a conv→LIF→conv spiking stack and
// checks that the second convolution — whose input is the LIF's binary
// spike train — is routed through the event-driven kernel and that the
// network-level rollup reflects it.
func TestNetworkEventStatsAggregation(t *testing.T) {
	oldD, oldR := layers.CSRMaxDensity, layers.EventMaxRate
	layers.CSRMaxDensity, layers.EventMaxRate = 1, 1
	defer func() { layers.CSRMaxDensity, layers.EventMaxRate = oldD, oldR }()

	r := rng.New(301)
	c1 := layers.NewConv2d("c1", 2, 4, 3, 1, 1, false, r)
	c2 := layers.NewConv2d("c2", 4, 4, 3, 1, 1, false, r)
	for _, l := range []*layers.Conv2d{c1, c2} {
		l.Weight.Mask = tensor.New(l.Weight.W.Shape()...)
		for i := range l.Weight.Mask.Data {
			if r.Float64() < 0.3 {
				l.Weight.Mask.Data[i] = 1
			}
		}
		l.Weight.ApplyMask()
	}
	net := &snn.Network{
		Layers: []layers.Layer{c1, snn.DefaultNeuron().New(), c2},
		T:      3,
	}
	x := tensor.New(2, 2, 5, 5)
	for i := range x.Data {
		x.Data[i] = 2 * r.Float32()
	}
	net.Forward(x, false)

	es := net.EventStats()
	// Both convs are sparse-capable: 2 samples × 3 timesteps × 2 layers.
	if es.Forwards != 12 {
		t.Fatalf("aggregate Forwards = %d, want 12", es.Forwards)
	}
	// c1 sees analog input (direct encoding) and must not take the event
	// path; c2 sees LIF spikes and must.
	if st := c1.EventStats(); st.EventForwards != 0 {
		t.Fatalf("encoder conv took the event path %d times on analog input", st.EventForwards)
	}
	if st := c2.EventStats(); st.EventForwards != st.Forwards {
		t.Fatalf("spike-fed conv took the event path %d of %d times", st.EventForwards, st.Forwards)
	}
	if es.EventCoverage() != 0.5 {
		t.Fatalf("aggregate coverage %v, want 0.5", es.EventCoverage())
	}
	if es.Occupancy() <= 0 || es.Occupancy() > 1 {
		t.Fatalf("aggregate occupancy %v outside (0,1]", es.Occupancy())
	}

	net.ResetEventStats()
	if es := net.EventStats(); es != (metrics.EventStats{}) {
		t.Fatalf("counters after reset: %+v", es)
	}
	c1.Weight.InvalidateCSR()
	c2.Weight.InvalidateCSR()
}
