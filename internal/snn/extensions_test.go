package snn_test

import (
	"math"
	"testing"

	"ndsnn/internal/rng"
	"ndsnn/internal/snn"
	"ndsnn/internal/tensor"
	"ndsnn/internal/testutil"
)

func TestHardResetHandComputedSequence(t *testing.T) {
	// α=0.5, ϑ=1, hard reset. Constant input 1.2:
	// t0: v=1.2 → spike; t1: v = 0.5·1.2·(1-1) + 1.2 = 1.2 → spike again
	// (membrane zeroed by the multiplicative reset, then recharged).
	cfg := snn.NeuronConfig{Alpha: 0.5, Threshold: 1, DetachReset: true, HardReset: true}
	l := cfg.New()
	x := tensor.FromSlice([]float32{1.2}, 1, 1)
	for step := 0; step < 3; step++ {
		if o := l.Forward(x, false); o.Data[0] != 1 {
			t.Fatalf("step %d: no spike", step)
		}
	}
}

func TestHardVsSoftResetDiffer(t *testing.T) {
	// Input 1.6 with ϑ=1: soft reset carries v-ϑ=0.6 forward, hard reset
	// zeroes the membrane, so the two accumulate differently.
	soft := snn.NeuronConfig{Alpha: 1, Threshold: 1, DetachReset: true}.New()
	hard := snn.NeuronConfig{Alpha: 1, Threshold: 1, DetachReset: true, HardReset: true}.New()
	x := tensor.FromSlice([]float32{0.7}, 1, 1)
	var softSpikes, hardSpikes int
	for step := 0; step < 10; step++ {
		if soft.Forward(x, false).Data[0] == 1 {
			softSpikes++
		}
		if hard.Forward(x, false).Data[0] == 1 {
			hardSpikes++
		}
	}
	if softSpikes <= hardSpikes {
		t.Fatalf("soft reset (%d spikes) should out-fire hard reset (%d) at α=1", softSpikes, hardSpikes)
	}
}

func TestHardResetSmoothGradients(t *testing.T) {
	cfg := snn.NeuronConfig{Alpha: 0.6, Threshold: 0.8, DetachReset: false, HardReset: true, Surrogate: snn.ATan{}}
	l := cfg.New()
	l.Smooth = true
	testutil.GradCheck(t, "lif-hardreset-bptt", l, testutil.GradCheckConfig{InShape: []int{2, 5}, Timesteps: 4, Eps: 3e-3, Tol: 4e-2})
}

func TestHardResetTrainEvalConsistency(t *testing.T) {
	// Train-mode and eval-mode forwards must produce identical spikes (the
	// extra caching must not change dynamics).
	cfg := snn.NeuronConfig{Alpha: 0.7, Threshold: 1, HardReset: true}
	a, b := cfg.New(), cfg.New()
	r := rng.New(8)
	for step := 0; step < 5; step++ {
		x := tensor.New(2, 4)
		for i := range x.Data {
			x.Data[i] = r.NormFloat32()
		}
		oa := a.Forward(x, true)
		ob := b.Forward(x, false)
		for i := range oa.Data {
			if oa.Data[i] != ob.Data[i] {
				t.Fatalf("step %d: train/eval outputs differ", step)
			}
		}
	}
}

func TestPoissonEncoderRateTracksInput(t *testing.T) {
	r := rng.New(4)
	enc := &snn.PoissonEncoder{Rng: r}
	strong := tensor.New(1, 2000)
	strong.Fill(3) // σ(3) ≈ 0.95
	weak := tensor.New(1, 2000)
	weak.Fill(-3) // σ(-3) ≈ 0.05
	var strongRate, weakRate float64
	const T = 20
	for t2 := 0; t2 < T; t2++ {
		strongRate += enc.Encode(strong, t2).Mean()
		weakRate += enc.Encode(weak, t2).Mean()
	}
	strongRate /= T
	weakRate /= T
	if math.Abs(strongRate-0.953) > 0.02 {
		t.Fatalf("strong input rate = %v, want ~0.95", strongRate)
	}
	if math.Abs(weakRate-0.047) > 0.02 {
		t.Fatalf("weak input rate = %v, want ~0.05", weakRate)
	}
}

func TestPoissonEncoderBinaryOutput(t *testing.T) {
	enc := &snn.PoissonEncoder{Rng: rng.New(5), Gain: 2}
	x := tensor.New(4, 7)
	for i := range x.Data {
		x.Data[i] = float32(i%5) - 2
	}
	out := enc.Encode(x, 0)
	for _, v := range out.Data {
		if v != 0 && v != 1 {
			t.Fatalf("non-binary spike %v", v)
		}
	}
}

func TestLatencyEncoderSingleSpikeTiming(t *testing.T) {
	enc := &snn.LatencyEncoder{T: 4, Lo: 0, Hi: 1}
	x := tensor.FromSlice([]float32{1.0, 0.6, 0.3, 0.0}, 4)
	spikeAt := make([]int, 4)
	for i := range spikeAt {
		spikeAt[i] = -1
	}
	for t2 := 0; t2 < 4; t2++ {
		out := enc.Encode(x, t2)
		for i, v := range out.Data {
			if v == 1 {
				if spikeAt[i] != -1 {
					t.Fatalf("input %d spiked twice", i)
				}
				spikeAt[i] = t2
			}
		}
	}
	// Strongest fires first; zero never fires.
	if spikeAt[0] != 0 {
		t.Fatalf("strongest input fired at %d, want 0", spikeAt[0])
	}
	if spikeAt[3] != -1 {
		t.Fatalf("zero input fired at %d, want never", spikeAt[3])
	}
	if !(spikeAt[0] <= spikeAt[1] && spikeAt[1] <= spikeAt[2]) {
		t.Fatalf("latency ordering violated: %v", spikeAt)
	}
}

func TestNetworkWithPoissonEncoder(t *testing.T) {
	r := rng.New(6)
	net := buildTinyNet(3, false, r)
	net.Encoder = &snn.PoissonEncoder{Rng: rng.New(7)}
	x := tensor.New(2, 1, 6, 6)
	for i := range x.Data {
		x.Data[i] = r.NormFloat32()
	}
	outs := net.Forward(x, false)
	if len(outs) != 3 {
		t.Fatalf("timestep outputs = %d", len(outs))
	}
	// Encoded presentations differ across timesteps (stochastic), unlike
	// direct encoding — verify indirectly via spike variability.
	if outs[0].SameShape(outs[1]) {
		diff := false
		for i := range outs[0].Data {
			if outs[0].Data[i] != outs[1].Data[i] {
				diff = true
				break
			}
		}
		_ = diff // identical outputs are possible but rare; no hard assert
	}
}
