package snn

import (
	"ndsnn/internal/layers"
	"ndsnn/internal/tape"
	"ndsnn/internal/tensor"
)

// NeuronConfig carries the LIF hyperparameters shared by all neurons in a
// model.
type NeuronConfig struct {
	// Alpha is the membrane decay constant in (0,1]; the paper's α.
	Alpha float32
	// Threshold is the firing threshold ϑ.
	Threshold float32
	// DetachReset stops gradients from flowing through the reset term
	// (the usual stabilization in surrogate-gradient training).
	DetachReset bool
	// HardReset switches from the paper's soft (subtractive) reset to a
	// multiplicative reset v[t] = α·v[t-1]·(1-o[t-1]) + I[t], the other
	// common LIF formulation (e.g. SpikingJelly's default).
	HardReset bool
	// Surrogate is the Heaviside-derivative approximation; nil means ATan.
	Surrogate Surrogate
	// TimeParallel selects the ParLIF neuron: the membrane is computed for
	// all T timesteps at once as a banded causal filter (see ParLIF) instead
	// of the sequential recurrence. Ignored (sequential LIF is used) when
	// HardReset is set — the multiplicative reset's spike-dependent decay has
	// no parallel filter form.
	TimeParallel bool
}

// DefaultNeuron returns the paper's configuration: α=0.5, ϑ=1, detached
// reset, arctangent surrogate.
func DefaultNeuron() NeuronConfig {
	return NeuronConfig{Alpha: 0.5, Threshold: 1, DetachReset: true, Surrogate: ATan{}}
}

func (c NeuronConfig) surrogate() Surrogate {
	if c.Surrogate == nil {
		return ATan{}
	}
	return c.Surrogate
}

// New constructs a LIF layer from the configuration.
func (c NeuronConfig) New() *LIF {
	return &LIF{Config: c}
}

// NewNeuron constructs the configured spiking layer: ParLIF when
// TimeParallel is set (soft reset only), sequential LIF otherwise. Model
// builders go through this so the selection knob reaches every neuron.
func (c NeuronConfig) NewNeuron() layers.Layer {
	if c.TimeParallel && !c.HardReset {
		return NewParLIF(c)
	}
	return c.New()
}

// LIF is a layer of Leaky Integrate-and-Fire neurons with soft (subtractive)
// reset. Forward implements Eq. (1); Backward implements the surrogate BPTT
// recursion of Eq. (2):
//
//	ε[t] = δ[t]·φ(v[t]-ϑ) + α·ε[t+1]
//
// where δ[t] is the incoming output gradient (plus the reset pathway when
// DetachReset is false) and ε[t] = ∂L/∂v[t] is both what flows to the
// previous timestep and, because v[t] is linear in the input current, the
// gradient returned to the upstream layer.
//
// Smooth mode replaces the Heaviside output with the surrogate's primitive,
// making forward and backward exactly consistent; it exists so the entire
// BPTT machinery can be validated against finite differences in tests.
type LIF struct {
	Config NeuronConfig
	// Smooth switches the forward nonlinearity to the surrogate primitive.
	Smooth bool

	v     *tensor.Tensor // membrane potential after the current timestep
	oPrev *tensor.Tensor // previous timestep's spikes (for the reset term)
	vs    []*tensor.Tensor
	// os tapes the per-timestep outputs needed by the hard-reset backward;
	// spiking-mode outputs are binary and get event-encoded (~spikeRate of
	// the dense footprint), smooth-mode outputs stay dense automatically.
	os    tape.Stack
	gNext *tensor.Tensor // ε[t+1] carried between Backward calls

	spikeSum   float64
	spikeElems int64
}

// Forward integrates one timestep and emits spikes.
func (l *LIF) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if l.v == nil || l.v.Size() != x.Size() {
		l.v = tensor.New(x.Shape()...)
		l.oPrev = tensor.New(x.Shape()...)
	}
	cfg := l.Config
	sur := cfg.surrogate()
	vNew := tensor.New(x.Shape()...)
	out := tensor.New(x.Shape()...)
	vd, od, xd := vNew.Data, out.Data, x.Data
	pv, po := l.v.Data, l.oPrev.Data
	integrate := func(i int) float32 {
		if cfg.HardReset {
			return cfg.Alpha*pv[i]*(1-po[i]) + xd[i]
		}
		return cfg.Alpha*pv[i] + xd[i] - cfg.Threshold*po[i]
	}
	var sum float64
	if l.Smooth {
		for i := range xd {
			v := integrate(i)
			vd[i] = v
			o := sur.Primitive(v - cfg.Threshold)
			od[i] = o
			sum += float64(o)
		}
	} else {
		for i := range xd {
			v := integrate(i)
			vd[i] = v
			if v >= cfg.Threshold {
				od[i] = 1
				sum++
			}
		}
	}
	l.spikeSum += sum
	l.spikeElems += int64(len(xd))
	l.v = vNew
	l.oPrev = out
	if train {
		l.vs = append(l.vs, vNew)
		if cfg.HardReset {
			l.os.Push(out)
		}
	}
	return out
}

// Backward propagates the temporal error recursion for one timestep.
func (l *LIF) Backward(dy *tensor.Tensor) *tensor.Tensor {
	if len(l.vs) == 0 {
		panic("snn: LIF.Backward called with no cached timestep")
	}
	v := l.vs[len(l.vs)-1]
	l.vs = l.vs[:len(l.vs)-1]
	cfg := l.Config
	sur := cfg.surrogate()
	g := tensor.New(dy.Shape()...)
	gd, dyd, vd := g.Data, dy.Data, v.Data
	var gn []float32
	if l.gNext != nil && l.gNext.Size() == dy.Size() {
		gn = l.gNext.Data
	}
	var od []float32
	if cfg.HardReset {
		if l.os.Len() == 0 {
			panic("snn: hard-reset LIF missing cached outputs")
		}
		od = l.os.Pop().Materialize().Data
	}
	for i := range dyd {
		do := dyd[i]
		var next float32
		if gn != nil {
			next = gn[i]
		}
		decay := cfg.Alpha
		if cfg.HardReset {
			// v[t+1] = α·v[t]·(1-o[t]) + I[t+1]: the membrane path decays
			// by α(1-o[t]) and, when the reset is not detached, o[t]
			// additionally receives -α·v[t]·ε[t+1].
			decay *= 1 - od[i]
			if !cfg.DetachReset {
				do -= cfg.Alpha * vd[i] * next
			}
		} else if !cfg.DetachReset {
			do -= cfg.Threshold * next
		}
		phi := sur.Grad(vd[i] - cfg.Threshold)
		gd[i] = do*phi + decay*next
	}
	l.gNext = g
	return g
}

// Params returns nil; LIF has no trainable parameters.
func (l *LIF) Params() []*layers.Param { return nil }

// Reset clears membrane state, caches and the carried error signal.
func (l *LIF) Reset() {
	l.v = nil
	l.oPrev = nil
	l.vs = nil
	l.os.Clear()
	l.gNext = nil
}

// SpikeStats returns the total spikes emitted and neuron-timestep count
// since the last ResetSpikeStats.
func (l *LIF) SpikeStats() (sum float64, elems int64) { return l.spikeSum, l.spikeElems }

// ResetSpikeStats zeroes the spike counters.
func (l *LIF) ResetSpikeStats() {
	l.spikeSum = 0
	l.spikeElems = 0
}
