package snn_test

import (
	"testing"

	"ndsnn/internal/snn"
	"ndsnn/internal/tensor"
)

// TestLIFSpikeStatsHandComputed pins the spike-occupancy counters against a
// fully hand-computed trace. α=0.5, ϑ=1, soft (subtractive) detached reset:
//
//	neuron A, constant current 1.0:
//	  t0: v=1.0            → spike
//	  t1: v=0.5·1.0+1.0-1=0.5  → no
//	  t2: v=0.25+1.0       → spike (1.25 ≥ 1)
//	neuron B, constant current 0.4:
//	  t0: 0.4, t1: 0.6, t2: 0.7 → never spikes
//
// So after 3 timesteps of a 2-neuron layer: 2 spikes over 6
// neuron-timesteps.
func TestLIFSpikeStatsHandComputed(t *testing.T) {
	cfg := snn.NeuronConfig{Alpha: 0.5, Threshold: 1, DetachReset: true}
	l := cfg.New()
	x := tensor.FromSlice([]float32{1.0, 0.4}, 1, 2)
	perStep := [][2]float32{{1, 0}, {0, 0}, {1, 0}} // expected spikes per timestep
	for step, want := range perStep {
		out := l.Forward(x.Clone(), false)
		for i, w := range want {
			if out.Data[i] != w {
				t.Fatalf("t%d neuron %d: spike %v, want %v", step, i, out.Data[i], w)
			}
		}
	}
	sum, elems := l.SpikeStats()
	if sum != 2 || elems != 6 {
		t.Fatalf("SpikeStats = (%v, %v), want (2, 6)", sum, elems)
	}

	// Counters accumulate across batches until reset.
	l.Reset()
	l.Forward(x.Clone(), false) // t0 again: one more spike, 2 more elems
	sum, elems = l.SpikeStats()
	if sum != 3 || elems != 8 {
		t.Fatalf("accumulated SpikeStats = (%v, %v), want (3, 8)", sum, elems)
	}

	l.ResetSpikeStats()
	if sum, elems = l.SpikeStats(); sum != 0 || elems != 0 {
		t.Fatalf("reset SpikeStats = (%v, %v), want (0, 0)", sum, elems)
	}
}
