package snn

import (
	"ndsnn/internal/layers"
	"ndsnn/internal/metrics"
	"ndsnn/internal/tape"
	"ndsnn/internal/tensor"
)

// LayerWalker is implemented by composite layers (e.g. ResidualBlock) to
// expose their children for introspection (spike probes, parameter census).
type LayerWalker interface {
	WalkLayers(fn func(layers.Layer))
}

// SpikeRecorder is implemented by layers that count emitted spikes.
type SpikeRecorder interface {
	SpikeStats() (sum float64, elems int64)
	ResetSpikeStats()
}

// Network is a sequential spiking network unrolled over T timesteps with
// direct (constant-current) input encoding: the analog input is presented
// identically at every timestep and the first convolution acts as the spike
// encoder, the standard setup for directly-trained deep SNNs.
type Network struct {
	Layers []layers.Layer
	// T is the number of simulation timesteps (the paper uses 5, and 2 for
	// the small-timestep study of Fig. 4).
	T int
	// Encoder transforms the input per timestep; nil means direct
	// (constant-current) encoding, the paper's configuration.
	Encoder InputEncoder
}

// Forward resets temporal state and runs the network time-major through the
// tape execution engine: all T timestep inputs are materialized up front and
// tape.Run drives each layer across the whole sequence, which lets
// Conv2d/Linear fuse the timesteps of a sample into one weight traversal
// each way (sparse.FuseTimesteps / sparse.StackTimesteps) and engages the
// SequenceLayer fast paths (ParLIF's fused membrane solve). It returns the
// output of the final layer at each timestep. The step-major schedule this
// replaced — timesteps outer, layers inner — is pinned as golden fixtures in
// tape_equiv_test.go; the two orders accumulate identical results for these
// temporally-unrolled feedforward networks.
func (n *Network) Forward(x *tensor.Tensor, train bool) []*tensor.Tensor {
	n.ResetState()
	xs := make([]*tensor.Tensor, n.T)
	for t := 0; t < n.T; t++ {
		h := x
		if n.Encoder != nil {
			h = n.Encoder.Encode(x, t)
		}
		xs[t] = h
	}
	return tape.Run(tapeLayers(n.Layers), xs, train)
}

// Backward runs BPTT. douts[t] is the loss gradient w.r.t. the timestep-t
// output. Layers run in reverse order with all timesteps replayed per layer
// — the order the per-layer tapes and the LIF error recursion expect.
func (n *Network) Backward(douts []*tensor.Tensor) {
	tape.RunBackward(tapeLayers(n.Layers), douts)
}

// tapeLayers adapts the layer slice to the execution engine's interface
// (satisfied structurally; the tape package does not import the layer
// library).
func tapeLayers(ls []layers.Layer) []tape.Layer {
	out := make([]tape.Layer, len(ls))
	for i, l := range ls {
		out[i] = l
	}
	return out
}

// ResetState clears every layer's temporal state and caches.
func (n *Network) ResetState() {
	for _, l := range n.Layers {
		l.Reset()
	}
}

// Params returns all trainable parameters in layer order.
func (n *Network) Params() []*layers.Param {
	var ps []*layers.Param
	for _, l := range n.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ZeroGrads clears all parameter gradients.
func (n *Network) ZeroGrads() { layers.ZeroGrads(n.Params()) }

// Walk applies fn to every layer, recursing into composite layers.
func (n *Network) Walk(fn func(layers.Layer)) {
	for _, l := range n.Layers {
		fn(l)
		if w, ok := l.(LayerWalker); ok {
			w.WalkLayers(fn)
		}
	}
}

// SpikeRate returns the average firing probability per neuron per timestep
// across all spiking layers since the last ResetSpikeStats, or 0 if the
// network has no spiking layers or has not run.
func (n *Network) SpikeRate() float64 {
	var sum float64
	var elems int64
	n.Walk(func(l layers.Layer) {
		if rec, ok := l.(SpikeRecorder); ok {
			s, e := rec.SpikeStats()
			sum += s
			elems += e
		}
	})
	if elems == 0 {
		return 0
	}
	return sum / float64(elems)
}

// ResetSpikeStats zeroes all spike counters.
func (n *Network) ResetSpikeStats() {
	n.Walk(func(l layers.Layer) {
		if rec, ok := l.(SpikeRecorder); ok {
			rec.ResetSpikeStats()
		}
	})
}

// EventStats rolls the per-layer event-driven forward counters up into the
// metrics aggregate: measured spike occupancy, event-path coverage and
// column occupancy across every sparse-capable layer since the last
// ResetEventStats. This is the measured side of the efficiency accounting —
// the LIF layers' SpikeStats say how often neurons fired, these counters say
// how much forward work the engine skipped because of it.
func (n *Network) EventStats() metrics.EventStats {
	var es metrics.EventStats
	n.Walk(func(l layers.Layer) {
		if rec, ok := l.(layers.EventRecorder); ok {
			es.Merge(rec.EventStats())
		}
	})
	return es
}

// ResetEventStats zeroes every layer's event-path counters.
func (n *Network) ResetEventStats() {
	n.Walk(func(l layers.Layer) {
		if rec, ok := l.(layers.EventRecorder); ok {
			rec.ResetEventStats()
		}
	})
}

// SetSmooth switches every spiking layer between spiking and smooth mode
// (smooth mode exists for finite-difference gradient verification).
func (n *Network) SetSmooth(smooth bool) {
	n.Walk(func(l layers.Layer) {
		switch nl := l.(type) {
		case *LIF:
			nl.Smooth = smooth
		case *ParLIF:
			nl.Smooth = smooth
		}
	})
}

// MeanOutput averages per-timestep outputs into a single [B,Classes] tensor,
// the rate-decoded prediction.
func MeanOutput(outs []*tensor.Tensor) *tensor.Tensor {
	avg := outs[0].Clone()
	for _, o := range outs[1:] {
		avg.AddInPlace(o)
	}
	avg.Scale(1 / float32(len(outs)))
	return avg
}
