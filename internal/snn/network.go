package snn

import (
	"ndsnn/internal/layers"
	"ndsnn/internal/metrics"
	"ndsnn/internal/tape"
	"ndsnn/internal/tensor"
)

// LayerWalker is implemented by composite layers (e.g. ResidualBlock) to
// expose their children for introspection (spike probes, parameter census).
type LayerWalker interface {
	WalkLayers(fn func(layers.Layer))
}

// SpikeRecorder is implemented by layers that count emitted spikes.
type SpikeRecorder interface {
	SpikeStats() (sum float64, elems int64)
	ResetSpikeStats()
}

// Network is a sequential spiking network unrolled over T timesteps with
// direct (constant-current) input encoding: the analog input is presented
// identically at every timestep and the first convolution acts as the spike
// encoder, the standard setup for directly-trained deep SNNs.
type Network struct {
	Layers []layers.Layer
	// T is the number of simulation timesteps (the paper uses 5, and 2 for
	// the small-timestep study of Fig. 4).
	T int
	// Encoder transforms the input per timestep; nil means direct
	// (constant-current) encoding, the paper's configuration.
	Encoder InputEncoder
	// TimeMajor routes Forward/Backward through the tape execution engine:
	// each layer processes all T timesteps before the next layer runs, which
	// lets Conv2d/Linear fuse the timesteps of a sample into one weight
	// traversal each way (sparse.FuseTimesteps / sparse.StackTimesteps).
	// Outputs and gradients are identical to the step-major schedule — only
	// execution order and speed change. Networks from the model zoo
	// (internal/models.Build) set it; the zero value keeps the step-major
	// loop, which survives as the equivalence-test reference.
	TimeMajor bool
}

// Forward resets temporal state and runs T timesteps, returning the output
// of the final layer at each timestep. With TimeMajor set it delegates to
// ForwardTimeMajor.
func (n *Network) Forward(x *tensor.Tensor, train bool) []*tensor.Tensor {
	if n.TimeMajor {
		return n.ForwardTimeMajor(x, train)
	}
	n.ResetState()
	outs := make([]*tensor.Tensor, n.T)
	for t := 0; t < n.T; t++ {
		h := x
		if n.Encoder != nil {
			h = n.Encoder.Encode(x, t)
		}
		for _, l := range n.Layers {
			h = l.Forward(h, train)
		}
		outs[t] = h
	}
	return outs
}

// ForwardTimeMajor resets temporal state and runs the network layer-major:
// all T timestep inputs are materialized up front and tape.Run drives each
// layer across the whole sequence (SequenceLayer fast paths engage here).
// Equivalent to Forward for these temporally-unrolled feedforward networks.
func (n *Network) ForwardTimeMajor(x *tensor.Tensor, train bool) []*tensor.Tensor {
	n.ResetState()
	xs := make([]*tensor.Tensor, n.T)
	for t := 0; t < n.T; t++ {
		h := x
		if n.Encoder != nil {
			h = n.Encoder.Encode(x, t)
		}
		xs[t] = h
	}
	return tape.Run(tapeLayers(n.Layers), xs, train)
}

// Backward runs BPTT. douts[t] is the loss gradient w.r.t. the timestep-t
// output. Step-major: timesteps in reverse order, layers in reverse order;
// with TimeMajor set, layers in reverse order with all timesteps replayed
// per layer (the order the per-layer tapes and the LIF error recursion
// expect either way — the two schedules accumulate identical gradients).
func (n *Network) Backward(douts []*tensor.Tensor) {
	if n.TimeMajor {
		tape.RunBackward(tapeLayers(n.Layers), douts)
		return
	}
	for t := n.T - 1; t >= 0; t-- {
		g := douts[t]
		for i := len(n.Layers) - 1; i >= 0; i-- {
			g = n.Layers[i].Backward(g)
		}
	}
}

// tapeLayers adapts the layer slice to the execution engine's interface
// (satisfied structurally; the tape package does not import the layer
// library).
func tapeLayers(ls []layers.Layer) []tape.Layer {
	out := make([]tape.Layer, len(ls))
	for i, l := range ls {
		out[i] = l
	}
	return out
}

// ResetState clears every layer's temporal state and caches.
func (n *Network) ResetState() {
	for _, l := range n.Layers {
		l.Reset()
	}
}

// Params returns all trainable parameters in layer order.
func (n *Network) Params() []*layers.Param {
	var ps []*layers.Param
	for _, l := range n.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ZeroGrads clears all parameter gradients.
func (n *Network) ZeroGrads() { layers.ZeroGrads(n.Params()) }

// Walk applies fn to every layer, recursing into composite layers.
func (n *Network) Walk(fn func(layers.Layer)) {
	for _, l := range n.Layers {
		fn(l)
		if w, ok := l.(LayerWalker); ok {
			w.WalkLayers(fn)
		}
	}
}

// SpikeRate returns the average firing probability per neuron per timestep
// across all spiking layers since the last ResetSpikeStats, or 0 if the
// network has no spiking layers or has not run.
func (n *Network) SpikeRate() float64 {
	var sum float64
	var elems int64
	n.Walk(func(l layers.Layer) {
		if rec, ok := l.(SpikeRecorder); ok {
			s, e := rec.SpikeStats()
			sum += s
			elems += e
		}
	})
	if elems == 0 {
		return 0
	}
	return sum / float64(elems)
}

// ResetSpikeStats zeroes all spike counters.
func (n *Network) ResetSpikeStats() {
	n.Walk(func(l layers.Layer) {
		if rec, ok := l.(SpikeRecorder); ok {
			rec.ResetSpikeStats()
		}
	})
}

// EventStats rolls the per-layer event-driven forward counters up into the
// metrics aggregate: measured spike occupancy, event-path coverage and
// column occupancy across every sparse-capable layer since the last
// ResetEventStats. This is the measured side of the efficiency accounting —
// the LIF layers' SpikeStats say how often neurons fired, these counters say
// how much forward work the engine skipped because of it.
func (n *Network) EventStats() metrics.EventStats {
	var es metrics.EventStats
	n.Walk(func(l layers.Layer) {
		if rec, ok := l.(layers.EventRecorder); ok {
			es.Merge(rec.EventStats())
		}
	})
	return es
}

// ResetEventStats zeroes every layer's event-path counters.
func (n *Network) ResetEventStats() {
	n.Walk(func(l layers.Layer) {
		if rec, ok := l.(layers.EventRecorder); ok {
			rec.ResetEventStats()
		}
	})
}

// SetSmooth switches every LIF layer between spiking and smooth mode
// (smooth mode exists for finite-difference gradient verification).
func (n *Network) SetSmooth(smooth bool) {
	n.Walk(func(l layers.Layer) {
		if lif, ok := l.(*LIF); ok {
			lif.Smooth = smooth
		}
	})
}

// MeanOutput averages per-timestep outputs into a single [B,Classes] tensor,
// the rate-decoded prediction.
func MeanOutput(outs []*tensor.Tensor) *tensor.Tensor {
	avg := outs[0].Clone()
	for _, o := range outs[1:] {
		avg.AddInPlace(o)
	}
	avg.Scale(1 / float32(len(outs)))
	return avg
}
