package snn

import (
	"ndsnn/internal/layers"
	"ndsnn/internal/rng"
	"ndsnn/internal/sparse"
	"ndsnn/internal/tape"
	"ndsnn/internal/tensor"
)

// ParReset selects the reset behaviour of a ParLIF layer.
type ParReset int

const (
	// ParResetSoft is the paper's subtractive reset, reproduced exactly by
	// the parallel formulation: v[t] = u[t] - ϑ·W[t] where u is the reset-free
	// filtered membrane and W[t] = α·W[t-1] + o[t-1] is a cheap elementwise
	// correction trace. Matches sequential soft-reset LIF dynamics.
	ParResetSoft ParReset = iota
	// ParResetNone drops the reset entirely — the pure SPSN formulation of
	// arXiv 2306.12666, where the membrane is exactly the causal filter and
	// the whole forward is one banded matmul plus thresholding.
	ParResetNone
)

// ParLIF is a time-parallelizable spiking neuron in the style of the
// Stochastic Parallelizable Spiking Neuron (arXiv 2306.12666). Its reset-free
// membrane is a causal geometric filter of the input currents,
//
//	u[t] = Σ_{s ≤ t} α^(t-s) · I[s],
//
// so ForwardSeq computes all T membrane values in one banded lower-triangular
// matmul (sparse.DecayFilter) instead of a t = 0..T-1 recurrence — the last
// strictly-sequential axis in the engine becomes strip-parallel. With
// ParResetSoft the subtractive reset is restored exactly through the
// elementwise trace v[t] = u[t] - ϑ·W[t], W[t] = α·W[t-1] + o[t-1]: the
// expensive O(T·Band·N) filter stays parallel and only an O(T·N) elementwise
// sweep (itself parallel over neurons) runs through time. Firing is
// thresholded per timestep, optionally stochastic (spike ~ Bernoulli of the
// surrogate primitive) with draws from a deterministic internal/rng stream so
// runs are reproducible at any GOMAXPROCS.
//
// With DetachReset (the default) the BPTT recursion ε[t] = e[t] + α·ε[t+1],
// e[t] = δ[t]·φ'(v[t]-ϑ), is the anticausal transpose of the same filter, so
// BackwardSeq is also one banded matmul. The non-detached soft reset stays an
// elementwise recursion, parallel over neurons.
//
// ParLIF's tape state is leaner than LIF's: only the membrane sequence is
// cached (one fused buffer per sample, metered through tape.Stack so
// PeakBytes sees it — LIF's dense vs cache predates the meter), and no spike
// stack is retained in any supported mode. Hard (multiplicative) reset is not
// parallelizable — its decay is spike-dependent — and is not supported here;
// NeuronConfig.NewNeuron falls back to sequential LIF for that combination.
type ParLIF struct {
	Config NeuronConfig
	// ResetMode selects soft-subtractive (default) or no reset.
	ResetMode ParReset
	// Stochastic switches firing to Bernoulli draws with probability
	// φ(v-ϑ) (the surrogate primitive), the SPSN paper's stochastic neuron.
	Stochastic bool
	// StochSeed seeds the stochastic firing stream; 0 means a fixed default.
	// Two layers with equal seeds consume identical draw sequences in (t,
	// element) order, so sequential and parallel paths see the same noise.
	StochSeed uint64
	// Smooth switches the forward nonlinearity to the surrogate primitive
	// (finite-difference gradient verification, as in LIF).
	Smooth bool
	// ForceSequential makes ForwardSeq/BackwardSeq run the per-timestep
	// recurrence instead of the banded kernels — the in-layer reference the
	// equivalence tests and bench diff columns compare against.
	ForceSequential bool
	// BandEps is the filter truncation tolerance (see sparse.NewDecayFilter);
	// 0 means 1e-9.
	BandEps float64

	filter  *sparse.DecayFilter
	filterT int

	// vs is the membrane tape: one dense record per timestep, metered so the
	// BPTT cache accounting covers neuron state.
	vs    tape.Stack
	v     *tensor.Tensor // sequential-path membrane after the current step
	oPrev *tensor.Tensor // sequential-path previous spikes (soft reset)
	gNext *tensor.Tensor // ε[t+1] carried between per-step Backward calls
	stoch *rng.RNG

	spikeSum   float64
	spikeElems int64
}

// NewParLIF constructs a soft-reset ParLIF layer from the configuration.
func NewParLIF(c NeuronConfig) *ParLIF {
	return &ParLIF{Config: c}
}

// defaultStochSeed keeps stochastic firing reproducible when no seed is set.
const defaultStochSeed = 0x5350534e // "SPSN"

func (l *ParLIF) rng() *rng.RNG {
	if l.stoch == nil {
		seed := l.StochSeed
		if seed == 0 {
			seed = defaultStochSeed
		}
		l.stoch = rng.New(seed)
	}
	return l.stoch
}

func (l *ParLIF) filterFor(T int) *sparse.DecayFilter {
	if l.filter == nil || l.filter.Alpha != l.Config.Alpha || l.filterT != T {
		eps := l.BandEps
		if eps == 0 {
			eps = 1e-9
		}
		l.filter = sparse.NewDecayFilter(l.Config.Alpha, T, eps)
		l.filterT = T
	}
	return l.filter
}

// fire computes the timestep output for a membrane value. u is the uniform
// draw for this element (ignored unless Stochastic).
func (l *ParLIF) fire(v float32, u float32) float32 {
	cfg := l.Config
	if l.Smooth {
		return cfg.surrogate().Primitive(v - cfg.Threshold)
	}
	if l.Stochastic {
		if u < cfg.surrogate().Primitive(v-cfg.Threshold) {
			return 1
		}
		return 0
	}
	if v >= cfg.Threshold {
		return 1
	}
	return 0
}

// Forward integrates one timestep with the sequential recurrence — the
// reference dynamics ForwardSeq must reproduce. ParResetSoft is identical to
// soft-reset LIF; ParResetNone drops the subtraction.
func (l *ParLIF) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if l.v == nil || l.v.Size() != x.Size() {
		l.v = tensor.New(x.Shape()...)
		l.oPrev = tensor.New(x.Shape()...)
	}
	cfg := l.Config
	vNew := tensor.New(x.Shape()...)
	out := tensor.New(x.Shape()...)
	vd, od, xd := vNew.Data, out.Data, x.Data
	pv, po := l.v.Data, l.oPrev.Data
	var uni []float32
	if l.Stochastic && !l.Smooth {
		uni = l.uniforms(len(xd))
	}
	var sum float64
	for i := range xd {
		v := cfg.Alpha*pv[i] + xd[i]
		if l.ResetMode == ParResetSoft {
			v -= cfg.Threshold * po[i]
		}
		vd[i] = v
		var u float32
		if uni != nil {
			u = uni[i]
		}
		o := l.fire(v, u)
		od[i] = o
		sum += float64(o)
	}
	l.spikeSum += sum
	l.spikeElems += int64(len(xd))
	l.v = vNew
	l.oPrev = out
	if train {
		l.vs.PushDense(vNew)
	}
	return out
}

// uniforms draws n uniform float32s from the layer's stochastic stream.
func (l *ParLIF) uniforms(n int) []float32 {
	r := l.rng()
	u := make([]float32, n)
	for i := range u {
		u[i] = r.Float32()
	}
	return u
}

// ForwardSeq computes the whole timestep sequence at once: one banded filter
// for the reset-free membrane, then a neuron-parallel elementwise sweep for
// reset correction and firing. Semantically identical to T Forward calls up
// to float reassociation (≤ the band-truncation + reordering tolerance the
// equivalence tests pin at 1e-5).
func (l *ParLIF) ForwardSeq(xs []*tensor.Tensor, train bool) []*tensor.Tensor {
	if len(xs) == 0 {
		return nil
	}
	if l.ForceSequential {
		outs := make([]*tensor.Tensor, len(xs))
		for t, x := range xs {
			outs[t] = l.Forward(x, train)
		}
		return outs
	}
	T := len(xs)
	shape := xs[0].Shape()
	n := xs[0].Size()
	cfg := l.Config
	f := l.filterFor(T)

	// Fused membrane buffer: T rows over one allocation; per-timestep tensor
	// views go onto the tape without copying.
	vbuf := make([]float32, T*n)
	vrows := make([][]float32, T)
	vts := make([]*tensor.Tensor, T)
	outs := make([]*tensor.Tensor, T)
	for t := 0; t < T; t++ {
		vrows[t] = vbuf[t*n : (t+1)*n]
		vts[t] = tensor.FromSlice(vrows[t], shape...)
		outs[t] = tensor.New(shape...)
	}
	f.ForwardInto(vrows, sparse.SeqRows(xs))

	var uni []float32
	if l.Stochastic && !l.Smooth {
		// Drawn serially in (t, element) order — the same sequence the
		// per-step path consumes, so both paths see identical noise.
		uni = l.uniforms(T * n)
	}
	if l.ResetMode == ParResetNone {
		tensor.ParallelFor(n, 2*T, func(lo, hi int) {
			for t := 0; t < T; t++ {
				vd := vrows[t][lo:hi]
				od := outs[t].Data[lo:hi]
				for j := range vd {
					var u float32
					if uni != nil {
						u = uni[t*n+lo+j]
					}
					od[j] = l.fire(vd[j], u)
				}
			}
		})
	} else {
		// Soft reset: v[t] = u[t] - ϑ·W[t] with the per-element trace
		// W[t] = α·W[t-1] + o[t-1]. Element-local, so strips are disjoint and
		// results are bit-identical at any GOMAXPROCS.
		tensor.ParallelFor(n, 4*T, func(lo, hi int) {
			w := make([]float32, hi-lo)
			for t := 0; t < T; t++ {
				vd := vrows[t][lo:hi]
				od := outs[t].Data[lo:hi]
				for j := range vd {
					v := vd[j] - cfg.Threshold*w[j]
					vd[j] = v
					var u float32
					if uni != nil {
						u = uni[t*n+lo+j]
					}
					o := l.fire(v, u)
					od[j] = o
					w[j] = cfg.Alpha*w[j] + o
				}
			}
		})
	}

	var sum float64
	for t := 0; t < T; t++ {
		for _, o := range outs[t].Data {
			sum += float64(o)
		}
	}
	l.spikeSum += sum
	l.spikeElems += int64(T) * int64(n)
	l.v = vts[T-1]
	l.oPrev = outs[T-1]
	if train {
		for t := 0; t < T; t++ {
			l.vs.PushDense(vts[t])
		}
	}
	return outs
}

// Backward propagates the temporal error recursion for one timestep — the
// sequential reference mirroring LIF's soft-reset backward (ParResetNone has
// no reset pathway, so detached and non-detached coincide).
func (l *ParLIF) Backward(dy *tensor.Tensor) *tensor.Tensor {
	if l.vs.Len() == 0 {
		panic("snn: ParLIF.Backward called with no cached timestep")
	}
	v := l.vs.Pop().Materialize()
	cfg := l.Config
	sur := cfg.surrogate()
	g := tensor.New(dy.Shape()...)
	gd, dyd, vd := g.Data, dy.Data, v.Data
	var gn []float32
	if l.gNext != nil && l.gNext.Size() == dy.Size() {
		gn = l.gNext.Data
	}
	resetGrad := l.ResetMode == ParResetSoft && !cfg.DetachReset
	for i := range dyd {
		do := dyd[i]
		var next float32
		if gn != nil {
			next = gn[i]
		}
		if resetGrad {
			do -= cfg.Threshold * next
		}
		gd[i] = do*sur.Grad(vd[i]-cfg.Threshold) + cfg.Alpha*next
	}
	l.gNext = g
	return g
}

// BackwardSeq replays the whole tape at once. With a detached (or absent)
// reset the recursion ε[t] = δ[t]·φ'(v[t]-ϑ) + α·ε[t+1] unrolls to the
// anticausal banded filter — one matmul for all T input gradients. The
// non-detached soft reset keeps its elementwise recursion, parallel over
// neurons. Gradients match T Backward calls up to float reassociation.
func (l *ParLIF) BackwardSeq(dys []*tensor.Tensor) []*tensor.Tensor {
	T := len(dys)
	if T == 0 {
		return nil
	}
	if l.ForceSequential {
		gs := make([]*tensor.Tensor, T)
		for t := T - 1; t >= 0; t-- {
			gs[t] = l.Backward(dys[t])
		}
		return gs
	}
	if l.vs.Len() < T {
		panic("snn: ParLIF.BackwardSeq with fewer cached timesteps than gradients")
	}
	cfg := l.Config
	sur := cfg.surrogate()
	shape := dys[0].Shape()
	n := dys[0].Size()
	vrows := make([][]float32, T)
	for t := T - 1; t >= 0; t-- {
		vrows[t] = l.vs.Pop().Materialize().Data
	}
	gbuf := make([]float32, T*n)
	grows := make([][]float32, T)
	gs := make([]*tensor.Tensor, T)
	for t := 0; t < T; t++ {
		grows[t] = gbuf[t*n : (t+1)*n]
		gs[t] = tensor.FromSlice(grows[t], shape...)
	}
	if l.ResetMode == ParResetNone || cfg.DetachReset {
		// e[t] = δ[t]·φ'(v[t]-ϑ), then one anticausal filter.
		ebuf := make([]float32, T*n)
		erows := make([][]float32, T)
		for t := 0; t < T; t++ {
			erows[t] = ebuf[t*n : (t+1)*n]
		}
		tensor.ParallelFor(n, 2*T, func(lo, hi int) {
			for t := 0; t < T; t++ {
				ed := erows[t][lo:hi]
				dyd := dys[t].Data[lo:hi]
				vd := vrows[t][lo:hi]
				for j := range ed {
					ed[j] = dyd[j] * sur.Grad(vd[j]-cfg.Threshold)
				}
			}
		})
		l.filterFor(T).BackwardInto(grows, erows)
	} else {
		// ε[t] = (δ[t] - ϑ·ε[t+1])·φ'(v[t]-ϑ) + α·ε[t+1]: element-local, so
		// the time recursion runs per neuron strip.
		tensor.ParallelFor(n, 4*T, func(lo, hi int) {
			eps := make([]float32, hi-lo)
			for t := T - 1; t >= 0; t-- {
				gd := grows[t][lo:hi]
				dyd := dys[t].Data[lo:hi]
				vd := vrows[t][lo:hi]
				for j := range gd {
					next := eps[j]
					g := (dyd[j]-cfg.Threshold*next)*sur.Grad(vd[j]-cfg.Threshold) + cfg.Alpha*next
					gd[j] = g
					eps[j] = g
				}
			}
		})
	}
	l.gNext = gs[0]
	return gs
}

// Params returns nil; ParLIF has no trainable parameters.
func (l *ParLIF) Params() []*layers.Param { return nil }

// Reset clears membrane state, the tape and the carried error signal. The
// stochastic stream is NOT rewound — successive batches see fresh noise.
func (l *ParLIF) Reset() {
	l.v = nil
	l.oPrev = nil
	l.vs.Clear()
	l.gNext = nil
}

// SpikeStats returns the total spikes emitted and neuron-timestep count
// since the last ResetSpikeStats.
func (l *ParLIF) SpikeStats() (sum float64, elems int64) { return l.spikeSum, l.spikeElems }

// ResetSpikeStats zeroes the spike counters.
func (l *ParLIF) ResetSpikeStats() {
	l.spikeSum = 0
	l.spikeElems = 0
}
