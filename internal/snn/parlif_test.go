package snn_test

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"ndsnn/internal/rng"
	"ndsnn/internal/snn"
	"ndsnn/internal/tensor"
	"ndsnn/internal/testutil"
)

// parLIFShape is big enough that ForwardSeq's strip sweeps clear the
// tensor-pool parallelism bar, so the GOMAXPROCS sweep actually exercises
// multi-worker execution.
var parLIFShape = []int{2, 256}

// rateBiases drive the membrane toward a target firing regime: the input is
// ϑ·(bias + noise), so "0" never crosses threshold, "1" always does, and the
// middle settings land in sparse/busy spiking.
var rateBiases = []struct {
	name string
	bias float32
}{
	{"rate0", -2.5},
	{"rate0.05", -0.55},
	{"rate0.5", 0.75},
	{"rate1", 3.5},
}

func parLIFInputs(seed uint64, T int, bias float32, theta float32) ([]*tensor.Tensor, []*tensor.Tensor) {
	r := rng.New(seed)
	xs := make([]*tensor.Tensor, T)
	douts := make([]*tensor.Tensor, T)
	for t := range xs {
		xs[t] = tensor.New(parLIFShape...)
		for i := range xs[t].Data {
			xs[t].Data[i] = theta * (bias + 0.6*r.NormFloat32())
		}
		douts[t] = tensor.New(parLIFShape...)
		for i := range douts[t].Data {
			douts[t].Data[i] = r.NormFloat32()
		}
	}
	return xs, douts
}

func cloneSeq(ts []*tensor.Tensor) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(ts))
	for i, x := range ts {
		out[i] = x.Clone()
	}
	return out
}

func maxAbsDiff(a, b []*tensor.Tensor) float64 {
	var m float64
	for t := range a {
		for i := range a[t].Data {
			d := math.Abs(float64(a[t].Data[i]) - float64(b[t].Data[i]))
			if d > m {
				m = d
			}
		}
	}
	return m
}

// TestParLIFEquivalence is the tentpole pin: the time-parallel forward and
// backward reproduce the sequential reference within 1e-5 — spikes exactly —
// across reset modes × spike-rate regimes × GOMAXPROCS {1,2,8}. The soft
// reset is compared against the actual sequential LIF layer (identical
// dynamics); ParResetNone has no LIF counterpart and is compared against
// ParLIF's own per-timestep recurrence (ForceSequential).
func TestParLIFEquivalence(t *testing.T) {
	const T = 8
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, detach := range []bool{true, false} {
		for _, mode := range []snn.ParReset{snn.ParResetSoft, snn.ParResetNone} {
			for ri, rb := range rateBiases {
				for _, procs := range []int{1, 2, 8} {
					runtime.GOMAXPROCS(procs)
					name := fmt.Sprintf("detach=%v/mode=%d/%s/procs=%d", detach, mode, rb.name, procs)
					cfg := snn.DefaultNeuron()
					cfg.DetachReset = detach
					seed := uint64(1000 + ri)
					xs, douts := parLIFInputs(seed, T, rb.bias, cfg.Threshold)

					par := snn.NewParLIF(cfg)
					par.ResetMode = mode
					outsPar := par.ForwardSeq(cloneSeq(xs), true)
					gradsPar := par.BackwardSeq(douts)

					var outsRef, gradsRef []*tensor.Tensor
					if mode == snn.ParResetSoft {
						lif := cfg.New()
						outsRef = make([]*tensor.Tensor, T)
						for ti, x := range cloneSeq(xs) {
							outsRef[ti] = lif.Forward(x, true)
						}
						gradsRef = make([]*tensor.Tensor, T)
						for ti := T - 1; ti >= 0; ti-- {
							gradsRef[ti] = lif.Backward(douts[ti])
						}
					} else {
						ref := snn.NewParLIF(cfg)
						ref.ResetMode = mode
						ref.ForceSequential = true
						outsRef = ref.ForwardSeq(cloneSeq(xs), true)
						gradsRef = ref.BackwardSeq(douts)
					}

					if d := maxAbsDiff(outsPar, outsRef); d != 0 {
						t.Fatalf("%s: spike outputs differ (max |Δ| = %g)", name, d)
					}
					if d := maxAbsDiff(gradsPar, gradsRef); d > 1e-5 {
						t.Fatalf("%s: input gradients differ by %g > 1e-5", name, d)
					}

					// Sanity: the regime labels mean what they claim.
					sum, elems := par.SpikeStats()
					rate := sum / float64(elems)
					switch rb.name {
					case "rate0":
						if rate != 0 {
							t.Fatalf("%s: expected silent regime, got rate %v", name, rate)
						}
					case "rate1":
						if rate != 1 {
							t.Fatalf("%s: expected saturated regime, got rate %v", name, rate)
						}
					default:
						if rate <= 0 || rate >= 1 {
							t.Fatalf("%s: expected intermediate rate, got %v", name, rate)
						}
					}
				}
			}
		}
	}
}

// TestParLIFZeroSpikesResetModesCoincide: with no spikes the reset never
// engages, so soft and none dynamics are the same trajectory.
func TestParLIFZeroSpikesResetModesCoincide(t *testing.T) {
	const T = 6
	cfg := snn.DefaultNeuron()
	xs, douts := parLIFInputs(77, T, -2.5, cfg.Threshold)

	soft := snn.NewParLIF(cfg)
	outsSoft := soft.ForwardSeq(cloneSeq(xs), true)
	gradsSoft := soft.BackwardSeq(douts)

	none := snn.NewParLIF(cfg)
	none.ResetMode = snn.ParResetNone
	outsNone := none.ForwardSeq(cloneSeq(xs), true)
	gradsNone := none.BackwardSeq(douts)

	if sum, _ := soft.SpikeStats(); sum != 0 {
		t.Fatalf("regime not silent: %v spikes", sum)
	}
	if d := maxAbsDiff(outsSoft, outsNone); d != 0 {
		t.Fatalf("silent outputs differ by %g", d)
	}
	if d := maxAbsDiff(gradsSoft, gradsNone); d > 1e-6 {
		t.Fatalf("silent gradients differ by %g", d)
	}
}

// TestParLIFStochasticEquivalence: with equal seeds the sequential and
// parallel paths consume the same uniform draws in the same order, so spikes
// agree except where the ~1e-7 membrane reassociation flips a draw sitting
// exactly on the firing probability — allowed for a vanishing fraction.
// ParResetNone keeps a flipped spike from cascading into later membranes.
func TestParLIFStochasticEquivalence(t *testing.T) {
	const T = 8
	cfg := snn.DefaultNeuron()
	xs, _ := parLIFInputs(301, T, 0.0, cfg.Threshold)

	mk := func(forceSeq bool) []*tensor.Tensor {
		l := snn.NewParLIF(cfg)
		l.ResetMode = snn.ParResetNone
		l.Stochastic = true
		l.StochSeed = 99
		l.ForceSequential = forceSeq
		return l.ForwardSeq(cloneSeq(xs), false)
	}
	seq := mk(true)
	par := mk(false)

	var mismatches, total int
	for ti := range seq {
		for i := range seq[ti].Data {
			total++
			if seq[ti].Data[i] != par[ti].Data[i] {
				mismatches++
			}
		}
	}
	if frac := float64(mismatches) / float64(total); frac > 0.005 {
		t.Fatalf("stochastic spike mismatch fraction %v (%d/%d) exceeds 0.5%%", frac, mismatches, total)
	}
}

// TestParLIFSmoothGradCheck validates the whole seq forward/backward against
// central finite differences in smooth mode (the differentiable surrogate
// primitive), for both reset modes.
func TestParLIFSmoothGradCheck(t *testing.T) {
	const T = 4
	const n = 12
	for _, mode := range []snn.ParReset{snn.ParResetSoft, snn.ParResetNone} {
		for _, detach := range []bool{true, false} {
			if mode == snn.ParResetSoft && detach {
				// A detached soft reset drops the reset-path gradient on
				// purpose; finite differences would (correctly) flag it.
				continue
			}
			cfg := snn.NeuronConfig{Alpha: 0.5, Threshold: 0.8, DetachReset: detach, Surrogate: snn.ATan{}}
			r := rng.New(505)
			xs := make([]*tensor.Tensor, T)
			cs := make([]*tensor.Tensor, T)
			for ti := range xs {
				xs[ti] = tensor.New(1, n)
				cs[ti] = tensor.New(1, n)
				for i := 0; i < n; i++ {
					xs[ti].Data[i] = r.NormFloat32()
					cs[ti].Data[i] = r.NormFloat32()
				}
			}
			loss := func(in []*tensor.Tensor) float64 {
				l := snn.NewParLIF(cfg)
				l.ResetMode = mode
				l.Smooth = true
				outs := l.ForwardSeq(in, false)
				var s float64
				for ti := range outs {
					for i := range outs[ti].Data {
						s += float64(cs[ti].Data[i] * outs[ti].Data[i])
					}
				}
				return s
			}

			l := snn.NewParLIF(cfg)
			l.ResetMode = mode
			l.Smooth = true
			l.ForwardSeq(cloneSeq(xs), true)
			grads := l.BackwardSeq(cloneSeq(cs))

			const eps = 1e-2
			for ti := 0; ti < T; ti++ {
				for i := 0; i < n; i += 5 {
					probe := cloneSeq(xs)
					probe[ti].Data[i] += eps
					up := loss(probe)
					probe = cloneSeq(xs)
					probe[ti].Data[i] -= eps
					down := loss(probe)
					numeric := (up - down) / (2 * eps)
					analytic := float64(grads[ti].Data[i])
					if d := math.Abs(analytic - numeric); d > 2e-2*math.Max(1, math.Abs(numeric)) {
						t.Fatalf("mode=%d detach=%v d/dx[%d][%d]: analytic %v vs numeric %v",
							mode, detach, ti, i, analytic, numeric)
					}
				}
			}
		}
	}
}

// TestParLIFStepProtocol drives ParLIF through the plain per-timestep
// Forward/Backward protocol (the tape engine's fallback path) and pins it
// against the fused path.
func TestParLIFStepProtocol(t *testing.T) {
	const T = 5
	cfg := snn.DefaultNeuron()
	xs, douts := parLIFInputs(909, T, 0.75, cfg.Threshold)

	step := snn.NewParLIF(cfg)
	outsStep := make([]*tensor.Tensor, T)
	for ti, x := range cloneSeq(xs) {
		outsStep[ti] = step.Forward(x, true)
	}
	gradsStep := make([]*tensor.Tensor, T)
	for ti := T - 1; ti >= 0; ti-- {
		gradsStep[ti] = step.Backward(douts[ti])
	}

	fused := snn.NewParLIF(cfg)
	outsFused := fused.ForwardSeq(cloneSeq(xs), true)
	gradsFused := fused.BackwardSeq(douts)

	if d := maxAbsDiff(outsStep, outsFused); d != 0 {
		t.Fatalf("per-step vs fused outputs differ by %g", d)
	}
	if d := maxAbsDiff(gradsStep, gradsFused); d > 1e-5 {
		t.Fatalf("per-step vs fused gradients differ by %g", d)
	}
}

// TestParLIFLongT is the race-matrix smoke: a longer sequence (T=25, the
// regime the time-parallel neuron exists for) through forward+backward with
// the equivalence pin, kept -short friendly so CI can run it under -race at
// GOMAXPROCS {1,4}.
func TestParLIFLongT(t *testing.T) {
	const T = 25
	cfg := snn.DefaultNeuron()
	xs, douts := parLIFInputs(4242, T, 0.6, cfg.Threshold)

	par := snn.NewParLIF(cfg)
	outsPar := par.ForwardSeq(cloneSeq(xs), true)
	gradsPar := par.BackwardSeq(douts)

	lif := cfg.New()
	outsRef := make([]*tensor.Tensor, T)
	for ti, x := range cloneSeq(xs) {
		outsRef[ti] = lif.Forward(x, true)
	}
	gradsRef := make([]*tensor.Tensor, T)
	for ti := T - 1; ti >= 0; ti-- {
		gradsRef[ti] = lif.Backward(douts[ti])
	}

	if d := maxAbsDiff(outsPar, outsRef); d != 0 {
		t.Fatalf("T=25 spike outputs differ by %g", d)
	}
	if d := maxAbsDiff(gradsPar, gradsRef); d > 1e-5 {
		t.Fatalf("T=25 input gradients differ by %g > 1e-5", d)
	}
}

// TestParLIFNetworkGradCheck runs the standard finite-difference harness over
// a small network whose neuron is time-parallel, exercising ParLIF inside the
// tape engine next to layers with parameters.
func TestParLIFNetworkGradCheck(t *testing.T) {
	// Non-detached reset: with DetachReset the backward intentionally drops
	// the reset pathway, which finite differences would flag as an error.
	cfg := snn.NeuronConfig{Alpha: 0.5, Threshold: 0.8, DetachReset: false, Surrogate: snn.ATan{}, TimeParallel: true}
	r := rng.New(32)
	b := snn.NewResidualBlock("rb", 2, 3, 2, cfg, r)
	if _, ok := b.LIF1.(*snn.ParLIF); !ok {
		t.Fatalf("NewNeuron did not select ParLIF (got %T)", b.LIF1)
	}
	b.LIF1.(*snn.ParLIF).Smooth = true
	b.LIF2.(*snn.ParLIF).Smooth = true
	testutil.GradCheck(t, "residual-parlif", b, testutil.GradCheckConfig{InShape: []int{2, 2, 6, 6}, Timesteps: 2, Eps: 3e-3, Tol: 4e-2})
}
