package snn

import (
	"fmt"

	"ndsnn/internal/layers"
	"ndsnn/internal/rng"
	"ndsnn/internal/tape"
	"ndsnn/internal/tensor"
)

// ResidualBlock is the spiking basic block used by ResNet-19:
//
//	out = LIF( BN2(Conv2( LIF(BN1(Conv1(x))) )) + shortcut(x) )
//
// where shortcut is the identity when shapes match and a 1×1
// convolution + BN otherwise. Both convolutions are 3×3; the first carries
// the stride. The block behaves as a single Layer so Network can stay a
// plain sequence; internally it routes Forward/Backward through both paths
// and the elementwise addition.
type ResidualBlock struct {
	Conv1 *layers.Conv2d
	BN1   *layers.BatchNorm
	// LIF1/LIF2 hold the block's spiking nonlinearities — historically always
	// *LIF, now whatever NeuronConfig.NewNeuron selects (ParLIF included), so
	// the fields are typed by the layer contract.
	LIF1  layers.Layer
	Conv2 *layers.Conv2d
	BN2   *layers.BatchNorm
	// SCConv/SCBN form the projection shortcut; both nil for identity.
	SCConv *layers.Conv2d
	SCBN   *layers.BatchNorm
	LIF2   layers.Layer
}

// NewResidualBlock constructs a spiking basic block mapping inC channels to
// outC with the given stride on the first convolution.
func NewResidualBlock(name string, inC, outC, stride int, neuron NeuronConfig, r *rng.RNG) *ResidualBlock {
	b := &ResidualBlock{
		Conv1: layers.NewConv2d(name+".conv1", inC, outC, 3, stride, 1, false, r),
		BN1:   layers.NewBatchNorm(name+".bn1", outC),
		LIF1:  neuron.NewNeuron(),
		Conv2: layers.NewConv2d(name+".conv2", outC, outC, 3, 1, 1, false, r),
		BN2:   layers.NewBatchNorm(name+".bn2", outC),
		LIF2:  neuron.NewNeuron(),
	}
	if inC != outC || stride != 1 {
		b.SCConv = layers.NewConv2d(name+".sc", inC, outC, 1, stride, 0, false, r)
		b.SCBN = layers.NewBatchNorm(name+".scbn", outC)
	}
	return b
}

// Forward runs one timestep through both paths and the output neuron.
func (b *ResidualBlock) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	h := b.Conv1.Forward(x, train)
	h = b.BN1.Forward(h, train)
	h = b.LIF1.Forward(h, train)
	h = b.Conv2.Forward(h, train)
	h = b.BN2.Forward(h, train)
	sc := x
	if b.SCConv != nil {
		sc = b.SCConv.Forward(x, train)
		sc = b.SCBN.Forward(sc, train)
	}
	if !h.SameShape(sc) {
		panic(fmt.Sprintf("snn: residual shapes diverge: %v vs %v", h.Shape(), sc.Shape()))
	}
	return b.LIF2.Forward(tensor.Add(h, sc), train)
}

// ForwardSeq runs all T timesteps time-major through both paths: the
// sublayer chains are driven by the tape engine (so the inner convolutions
// get the fused batched-timestep GEMM and a time-parallel output neuron gets
// its whole summed sequence at once), with the per-timestep addition in
// between. Identical to T Forward calls.
func (b *ResidualBlock) ForwardSeq(xs []*tensor.Tensor, train bool) []*tensor.Tensor {
	main := tape.Run([]tape.Layer{b.Conv1, b.BN1, b.LIF1, b.Conv2, b.BN2}, xs, train)
	sc := xs
	if b.SCConv != nil {
		sc = tape.Run([]tape.Layer{b.SCConv, b.SCBN}, xs, train)
	}
	sums := make([]*tensor.Tensor, len(xs))
	for t := range xs {
		if !main[t].SameShape(sc[t]) {
			panic(fmt.Sprintf("snn: residual shapes diverge: %v vs %v", main[t].Shape(), sc[t].Shape()))
		}
		sums[t] = tensor.Add(main[t], sc[t])
	}
	return tape.Run([]tape.Layer{b.LIF2}, sums, train)
}

// BackwardSeq replays the whole tape time-major through both paths: each
// sublayer chain is driven by tape.RunBackward, so fused sequence backwards
// (Conv2d's stacked-timestep SDDMM, ParLIF's anticausal filter) engage.
// Accumulates the same parameter gradients and returns the same input
// gradients as T Backward calls, up to float summation order.
func (b *ResidualBlock) BackwardSeq(dys []*tensor.Tensor) []*tensor.Tensor {
	dsums := tape.RunBackward([]tape.Layer{b.LIF2}, dys)
	dmain := tape.RunBackward([]tape.Layer{b.Conv1, b.BN1, b.LIF1, b.Conv2, b.BN2}, dsums)
	dsc := dsums
	if b.SCConv != nil {
		dsc = tape.RunBackward([]tape.Layer{b.SCConv, b.SCBN}, dsums)
	}
	out := make([]*tensor.Tensor, len(dys))
	for t := range out {
		out[t] = tensor.Add(dmain[t], dsc[t])
	}
	return out
}

// Backward reverses one timestep through both paths.
func (b *ResidualBlock) Backward(dy *tensor.Tensor) *tensor.Tensor {
	dsum := b.LIF2.Backward(dy)
	dmain := b.BN2.Backward(dsum)
	dmain = b.Conv2.Backward(dmain)
	dmain = b.LIF1.Backward(dmain)
	dmain = b.BN1.Backward(dmain)
	dmain = b.Conv1.Backward(dmain)
	dsc := dsum
	if b.SCConv != nil {
		dsc = b.SCBN.Backward(dsum)
		dsc = b.SCConv.Backward(dsc)
	}
	return tensor.Add(dmain, dsc)
}

// Params returns the parameters of every sublayer.
func (b *ResidualBlock) Params() []*layers.Param {
	var ps []*layers.Param
	b.WalkLayers(func(l layers.Layer) { ps = append(ps, l.Params()...) })
	return ps
}

// Reset clears every sublayer's temporal state.
func (b *ResidualBlock) Reset() {
	b.WalkLayers(func(l layers.Layer) { l.Reset() })
}

// WalkLayers exposes the block's children for introspection.
func (b *ResidualBlock) WalkLayers(fn func(layers.Layer)) {
	fn(b.Conv1)
	fn(b.BN1)
	fn(b.LIF1)
	fn(b.Conv2)
	fn(b.BN2)
	if b.SCConv != nil {
		fn(b.SCConv)
		fn(b.SCBN)
	}
	fn(b.LIF2)
}
