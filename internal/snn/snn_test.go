package snn_test

import (
	"math"
	"testing"

	"ndsnn/internal/layers"
	"ndsnn/internal/rng"
	"ndsnn/internal/snn"
	"ndsnn/internal/tensor"
	"ndsnn/internal/testutil"
)

func TestLIFHandComputedSequence(t *testing.T) {
	// α=0.5, ϑ=1. Constant input 0.6.
	// t0: v = 0.6          → no spike
	// t1: v = 0.3+0.6=0.9  → no spike
	// t2: v = 0.45+0.6=1.05 → spike
	// t3: v = 0.5*1.05+0.6-1 = 0.125 → no spike (soft reset)
	cfg := snn.NeuronConfig{Alpha: 0.5, Threshold: 1, DetachReset: true}
	l := cfg.New()
	x := tensor.FromSlice([]float32{0.6}, 1, 1)
	wantSpikes := []float32{0, 0, 1, 0}
	for step, want := range wantSpikes {
		out := l.Forward(x, false)
		if out.Data[0] != want {
			t.Fatalf("step %d: spike = %v, want %v", step, out.Data[0], want)
		}
	}
}

func TestLIFImmediateSpikeAndReset(t *testing.T) {
	cfg := snn.NeuronConfig{Alpha: 1, Threshold: 1, DetachReset: true}
	l := cfg.New()
	x := tensor.FromSlice([]float32{1.5}, 1, 1)
	// t0: v=1.5 → spike. t1: v = 1.5 + 1.5 - 1 = 2.0 → spike.
	o := l.Forward(x, false)
	if o.Data[0] != 1 {
		t.Fatal("no spike at t0 despite v >= threshold")
	}
	o = l.Forward(x, false)
	if o.Data[0] != 1 {
		t.Fatal("no spike at t1")
	}
}

func TestLIFSubthresholdNeverSpikes(t *testing.T) {
	cfg := snn.NeuronConfig{Alpha: 0.5, Threshold: 1, DetachReset: true}
	l := cfg.New()
	// With α=0.5, constant input c converges to v∞ = c/(1-α) = 2c.
	// c=0.4 → v∞=0.8 < 1: never spikes.
	x := tensor.FromSlice([]float32{0.4}, 1, 1)
	for i := 0; i < 50; i++ {
		if o := l.Forward(x, false); o.Data[0] != 0 {
			t.Fatalf("unexpected spike at step %d", i)
		}
	}
}

func TestLIFResetClearsState(t *testing.T) {
	cfg := snn.DefaultNeuron()
	l := cfg.New()
	x := tensor.FromSlice([]float32{0.9}, 1, 1)
	first := []float32{}
	for i := 0; i < 4; i++ {
		first = append(first, l.Forward(x, false).Data[0])
	}
	l.Reset()
	for i := 0; i < 4; i++ {
		if got := l.Forward(x, false).Data[0]; got != first[i] {
			t.Fatalf("sequence differs after Reset at step %d: %v vs %v", i, got, first[i])
		}
	}
}

func TestLIFSpikeStats(t *testing.T) {
	cfg := snn.NeuronConfig{Alpha: 0.5, Threshold: 1, DetachReset: true}
	l := cfg.New()
	x := tensor.FromSlice([]float32{2, 0}, 1, 2) // neuron 0 always spikes, neuron 1 never
	for i := 0; i < 10; i++ {
		l.Forward(x, false)
	}
	sum, elems := l.SpikeStats()
	if elems != 20 {
		t.Fatalf("elems = %d, want 20", elems)
	}
	if sum != 10 {
		t.Fatalf("spike sum = %v, want 10", sum)
	}
	l.ResetSpikeStats()
	sum, elems = l.SpikeStats()
	if sum != 0 || elems != 0 {
		t.Fatal("ResetSpikeStats did not zero counters")
	}
}

func TestSurrogateValues(t *testing.T) {
	atan := snn.ATan{}
	if g := atan.Grad(0); g != 1 {
		t.Fatalf("ATan.Grad(0) = %v, want 1", g)
	}
	if g := atan.Grad(1); math.Abs(float64(g)-1/(1+math.Pi*math.Pi)) > 1e-6 {
		t.Fatalf("ATan.Grad(1) = %v", g)
	}
	rect := snn.Rectangular{A: 0.5}
	if g := rect.Grad(0); g != 1 {
		t.Fatalf("Rect.Grad(0) = %v, want 1", g)
	}
	if g := rect.Grad(1); g != 0 {
		t.Fatalf("Rect.Grad(1) = %v, want 0", g)
	}
	sig := snn.Sigmoid{}
	if g := sig.Grad(0); math.Abs(float64(g)-0.25) > 1e-6 {
		t.Fatalf("Sigmoid.Grad(0) = %v, want 0.25", g)
	}
}

func TestSurrogatePrimitiveDerivative(t *testing.T) {
	// Primitive' ≈ Grad for every surrogate (the consistency smooth-mode
	// gradient checking relies on).
	surs := []snn.Surrogate{snn.ATan{}, snn.Rectangular{A: 0.7}, snn.Sigmoid{A: 2}}
	for _, s := range surs {
		for _, x := range []float32{-1.3, -0.2, 0, 0.3, 1.1} {
			const eps = 1e-3
			num := (s.Primitive(x+eps) - s.Primitive(x-eps)) / (2 * eps)
			ana := s.Grad(x)
			if math.Abs(float64(num-ana)) > 5e-3 {
				t.Fatalf("%s: primitive'(%v) = %v but Grad = %v", s.Name(), x, num, ana)
			}
		}
	}
}

func TestSurrogateByName(t *testing.T) {
	if snn.SurrogateByName("rect").Name() != "rect" {
		t.Fatal("rect lookup failed")
	}
	if snn.SurrogateByName("sigmoid").Name() != "sigmoid" {
		t.Fatal("sigmoid lookup failed")
	}
	if snn.SurrogateByName("nope").Name() != "atan" {
		t.Fatal("unknown name should default to atan")
	}
}

func TestLIFSmoothGradientsDetachedReset(t *testing.T) {
	cfg := snn.NeuronConfig{Alpha: 0.6, Threshold: 1, DetachReset: true, Surrogate: snn.ATan{}}
	l := cfg.New()
	l.Smooth = true
	// DetachReset drops the -ϑ·o[t-1] path in backward, but smooth forward
	// keeps it, so FD only matches when the reset path's contribution is
	// excluded... it is NOT; therefore check only with 1 timestep where no
	// reset has occurred yet.
	testutil.GradCheck(t, "lif-smooth-detach", l, testutil.GradCheckConfig{InShape: []int{2, 6}, Timesteps: 1})
}

func TestLIFSmoothGradientsFullBPTT(t *testing.T) {
	// With DetachReset=false the smooth LIF is exactly differentiable, so
	// multi-timestep BPTT (membrane decay path + reset path) must match
	// finite differences.
	cfg := snn.NeuronConfig{Alpha: 0.6, Threshold: 0.8, DetachReset: false, Surrogate: snn.ATan{}}
	l := cfg.New()
	l.Smooth = true
	testutil.GradCheck(t, "lif-smooth-bptt", l, testutil.GradCheckConfig{InShape: []int{2, 6}, Timesteps: 4})
}

func TestLIFSmoothGradientsSigmoidSurrogate(t *testing.T) {
	cfg := snn.NeuronConfig{Alpha: 0.4, Threshold: 0.5, DetachReset: false, Surrogate: snn.Sigmoid{A: 1.5}}
	l := cfg.New()
	l.Smooth = true
	testutil.GradCheck(t, "lif-smooth-sigmoid", l, testutil.GradCheckConfig{InShape: []int{3, 4}, Timesteps: 3})
}

func buildTinyNet(tsteps int, smooth bool, r *rng.RNG) *snn.Network {
	neuron := snn.NeuronConfig{Alpha: 0.5, Threshold: 0.9, DetachReset: false, Surrogate: snn.ATan{}}
	net := &snn.Network{
		T: tsteps,
		Layers: []layers.Layer{
			layers.NewConv2d("c1", 1, 3, 3, 1, 1, false, r),
			layers.NewBatchNorm("bn1", 3),
			neuron.New(),
			layers.NewMaxPool2d(2, 2),
			layers.NewFlatten(),
			layers.NewLinear("fc", 3*3*3, 4, true, r),
		},
	}
	net.SetSmooth(smooth)
	return net
}

func TestNetworkForwardShapes(t *testing.T) {
	r := rng.New(30)
	net := buildTinyNet(3, false, r)
	x := tensor.New(2, 1, 6, 6)
	outs := net.Forward(x, false)
	if len(outs) != 3 {
		t.Fatalf("got %d timestep outputs, want 3", len(outs))
	}
	for _, o := range outs {
		if o.Dim(0) != 2 || o.Dim(1) != 4 {
			t.Fatalf("output shape %v, want [2 4]", o.Shape())
		}
	}
}

func TestNetworkEndToEndGradients(t *testing.T) {
	// Whole-network BPTT vs finite differences, in smooth mode, probing a
	// linear loss on per-timestep outputs.
	r := rng.New(31)
	net := buildTinyNet(3, true, r)
	x := tensor.New(2, 1, 6, 6)
	for i := range x.Data {
		x.Data[i] = r.NormFloat32()
	}
	cs := make([]*tensor.Tensor, net.T)
	for i := range cs {
		cs[i] = tensor.New(2, 4)
		for j := range cs[i].Data {
			cs[i].Data[j] = r.NormFloat32()
		}
	}
	lossOf := func() float64 {
		outs := net.Forward(x, true)
		total := 0.0
		for ti, o := range outs {
			for j, v := range o.Data {
				total += float64(cs[ti].Data[j]) * float64(v)
			}
		}
		return total
	}
	net.ZeroGrads()
	outs := net.Forward(x, true)
	_ = outs
	douts := make([]*tensor.Tensor, net.T)
	for i := range douts {
		douts[i] = cs[i].Clone()
	}
	net.Backward(douts)

	checked := 0
	for _, p := range net.Params() {
		idxs := []int{0, p.W.Size() / 2, p.W.Size() - 1}
		for _, i := range idxs {
			analytic := float64(p.Grad.Data[i])
			const eps = 1e-2
			p.W.Data[i] += eps
			up := lossOf()
			p.W.Data[i] -= 2 * eps
			down := lossOf()
			p.W.Data[i] += eps
			numeric := (up - down) / (2 * eps)
			denom := math.Max(1, math.Abs(numeric))
			if math.Abs(analytic-numeric)/denom > 3e-2 {
				t.Errorf("param %s[%d]: analytic %v vs numeric %v", p.Name, i, analytic, numeric)
			}
			checked++
		}
	}
	if checked < 15 {
		t.Fatalf("only %d gradient probes executed", checked)
	}
}

func TestResidualBlockGradients(t *testing.T) {
	r := rng.New(32)
	neuron := snn.NeuronConfig{Alpha: 0.5, Threshold: 0.8, DetachReset: false, Surrogate: snn.ATan{}}
	b := snn.NewResidualBlock("rb", 2, 3, 2, neuron, r)
	b.LIF1.(*snn.LIF).Smooth = true
	b.LIF2.(*snn.LIF).Smooth = true
	// eps below the default: BN statistics over a tiny batch plus the smooth
	// LIF make the probe loss strongly curved, so 1e-2 steps overshoot.
	testutil.GradCheck(t, "residual-projection", b, testutil.GradCheckConfig{InShape: []int{2, 2, 6, 6}, Timesteps: 2, Eps: 3e-3, Tol: 4e-2})
}

func TestResidualBlockIdentityGradients(t *testing.T) {
	r := rng.New(33)
	neuron := snn.NeuronConfig{Alpha: 0.5, Threshold: 0.8, DetachReset: false, Surrogate: snn.ATan{}}
	b := snn.NewResidualBlock("rb", 3, 3, 1, neuron, r)
	if b.SCConv != nil {
		t.Fatal("identity block unexpectedly has a projection shortcut")
	}
	b.LIF1.(*snn.LIF).Smooth = true
	b.LIF2.(*snn.LIF).Smooth = true
	testutil.GradCheck(t, "residual-identity", b, testutil.GradCheckConfig{InShape: []int{2, 3, 5, 5}, Timesteps: 2, Eps: 3e-3, Tol: 4e-2})
}

func TestResidualBlockShapes(t *testing.T) {
	r := rng.New(34)
	neuron := snn.DefaultNeuron()
	b := snn.NewResidualBlock("rb", 4, 8, 2, neuron, r)
	out := b.Forward(tensor.New(2, 4, 8, 8), false)
	want := []int{2, 8, 4, 4}
	for i, d := range want {
		if out.Dim(i) != d {
			t.Fatalf("residual output shape %v, want %v", out.Shape(), want)
		}
	}
}

func TestNetworkSpikeRate(t *testing.T) {
	r := rng.New(35)
	net := buildTinyNet(4, false, r)
	x := tensor.New(2, 1, 6, 6)
	for i := range x.Data {
		x.Data[i] = r.Float32() * 2
	}
	net.Forward(x, false)
	rate := net.SpikeRate()
	if rate < 0 || rate > 1 {
		t.Fatalf("spike rate = %v, want within [0,1]", rate)
	}
	net.ResetSpikeStats()
	if net.SpikeRate() != 0 {
		t.Fatal("spike rate not zero after reset")
	}
}

func TestNetworkWalkVisitsResidualChildren(t *testing.T) {
	r := rng.New(36)
	neuron := snn.DefaultNeuron()
	net := &snn.Network{T: 1, Layers: []layers.Layer{
		snn.NewResidualBlock("rb", 2, 4, 2, neuron, r),
	}}
	count := 0
	net.Walk(func(l layers.Layer) { count++ })
	// Block itself + conv1,bn1,lif1,conv2,bn2,sc,scbn,lif2 = 9.
	if count != 9 {
		t.Fatalf("Walk visited %d layers, want 9", count)
	}
}

func TestMeanOutput(t *testing.T) {
	a := tensor.FromSlice([]float32{1, 2}, 1, 2)
	b := tensor.FromSlice([]float32{3, 4}, 1, 2)
	m := snn.MeanOutput([]*tensor.Tensor{a, b})
	if m.Data[0] != 2 || m.Data[1] != 3 {
		t.Fatalf("MeanOutput = %v, want [2 3]", m.Data)
	}
}

func TestDeterministicForward(t *testing.T) {
	build := func() (*snn.Network, *tensor.Tensor) {
		r := rng.New(77)
		net := buildTinyNet(3, false, r)
		x := tensor.New(2, 1, 6, 6)
		rx := rng.New(78)
		for i := range x.Data {
			x.Data[i] = rx.NormFloat32()
		}
		return net, x
	}
	n1, x1 := build()
	n2, x2 := build()
	o1 := n1.Forward(x1, false)
	o2 := n2.Forward(x2, false)
	for t2 := range o1 {
		for i := range o1[t2].Data {
			if o1[t2].Data[i] != o2[t2].Data[i] {
				t.Fatal("identical seeds produced different outputs")
			}
		}
	}
}
