// Package snn implements the spiking-neuron substrate: Leaky
// Integrate-and-Fire (LIF) neurons with surrogate-gradient backpropagation
// through time (BPTT), a sequential network container, and the spiking
// residual block used by ResNet-style SNNs.
//
// Forward dynamics follow the paper's Eq. (1):
//
//	v[t] = α·v[t-1] + Σᵢ wᵢsᵢ[t] - ϑ·o[t-1]
//	o[t] = u(v[t] - ϑ)
//
// and the backward pass follows the temporal error recursion of Eq. (2),
// with the Heaviside derivative replaced by a surrogate (Eq. (3) by
// default: ∂u/∂x ≈ 1/(1+π²x²)).
package snn

import "math"

// Surrogate approximates the derivative of the Heaviside step function for
// the backward pass. Primitive returns the smooth activation whose
// derivative is Grad; the LIF neuron can run in a "smooth" mode that uses
// Primitive as its forward nonlinearity, making the whole network
// differentiable so BPTT can be verified against finite differences.
type Surrogate interface {
	// Grad evaluates the surrogate derivative at x = v - ϑ.
	Grad(x float32) float32
	// Primitive evaluates the smooth activation whose derivative is Grad.
	Primitive(x float32) float32
	// Name identifies the surrogate in logs and ablation tables.
	Name() string
}

// ATan is the arctangent surrogate of Fang et al. (NeurIPS 2021), the one
// the paper adopts (Eq. 3): Grad(x) = 1/(1+π²x²).
type ATan struct{}

// Grad returns 1/(1+π²x²).
func (ATan) Grad(x float32) float32 {
	px := math.Pi * float64(x)
	return float32(1 / (1 + px*px))
}

// Primitive returns arctan(πx)/π + 1/2.
func (ATan) Primitive(x float32) float32 {
	return float32(math.Atan(math.Pi*float64(x))/math.Pi + 0.5)
}

// Name returns "atan".
func (ATan) Name() string { return "atan" }

// Rectangular is the boxcar surrogate: Grad(x) = 1/(2a) for |x| ≤ a, else 0.
type Rectangular struct {
	// A is the half-width of the box; 0 means the default 0.5.
	A float32
}

func (s Rectangular) a() float32 {
	if s.A <= 0 {
		return 0.5
	}
	return s.A
}

// Grad returns the boxcar derivative.
func (s Rectangular) Grad(x float32) float32 {
	a := s.a()
	if x >= -a && x <= a {
		return 1 / (2 * a)
	}
	return 0
}

// Primitive returns the clamped ramp.
func (s Rectangular) Primitive(x float32) float32 {
	a := s.a()
	switch {
	case x < -a:
		return 0
	case x > a:
		return 1
	default:
		return (x + a) / (2 * a)
	}
}

// Name returns "rect".
func (Rectangular) Name() string { return "rect" }

// Sigmoid is the sigmoid-derivative surrogate with slope 1/A.
type Sigmoid struct {
	// A is the temperature; 0 means the default 1.
	A float32
}

func (s Sigmoid) a() float32 {
	if s.A <= 0 {
		return 1
	}
	return s.A
}

// Grad returns σ'(x/a)/a.
func (s Sigmoid) Grad(x float32) float32 {
	a := s.a()
	sg := 1 / (1 + float32(math.Exp(-float64(x/a))))
	return sg * (1 - sg) / a
}

// Primitive returns σ(x/a).
func (s Sigmoid) Primitive(x float32) float32 {
	return 1 / (1 + float32(math.Exp(-float64(x/s.a()))))
}

// Name returns "sigmoid".
func (Sigmoid) Name() string { return "sigmoid" }

// SurrogateByName returns the surrogate registered under name
// ("atan", "rect", "sigmoid"); it returns ATan for unknown names.
func SurrogateByName(name string) Surrogate {
	switch name {
	case "rect":
		return Rectangular{}
	case "sigmoid":
		return Sigmoid{}
	default:
		return ATan{}
	}
}
