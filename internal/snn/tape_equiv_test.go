package snn_test

import (
	"fmt"
	"path/filepath"
	"testing"

	"ndsnn/internal/layers"
	"ndsnn/internal/rng"
	"ndsnn/internal/snn"
	"ndsnn/internal/tape"
	"ndsnn/internal/tensor"
	"ndsnn/internal/testutil"
)

// The acceptance property of the time-major tape engine: forward outputs and
// every parameter gradient must reproduce recorded golden fixtures within
// 1e-5, across sparse-gradient modes, cache encodings (dense and event),
// architectures (sequential and residual) and neuron variants (soft and hard
// reset). The fixtures were recorded from the step-major dense-cache loop —
// the original reference engine, deleted once these goldens pinned its
// behavior. Re-record with -update only after an intentional numeric change
// (that records from the current dense-cache time-major engine).

// buildEquivNet constructs a masked spiking stack deterministically from
// seed. kind is "plain" or "residual"; hardReset switches the LIF variant.
func buildEquivNet(seed uint64, kind string, hardReset bool) *snn.Network {
	r := rng.New(seed)
	neuron := snn.DefaultNeuron()
	neuron.HardReset = hardReset
	mask := func(p *layers.Param, density float64, mr *rng.RNG) {
		p.Mask = tensor.New(p.W.Shape()...)
		for i := range p.Mask.Data {
			if mr.Float64() < density {
				p.Mask.Data[i] = 1
			}
		}
		p.ApplyMask()
	}
	switch kind {
	case "plain":
		c1 := layers.NewConv2d("c1", 3, 6, 3, 1, 1, false, r)
		c2 := layers.NewConv2d("c2", 6, 6, 3, 1, 1, true, r)
		fc := layers.NewLinear("fc", 6*6*6, 5, true, r)
		mr := rng.New(seed * 7)
		mask(c1.Weight, 0.1, mr)
		mask(c2.Weight, 0.1, mr)
		mask(fc.Weight, 0.1, mr)
		return &snn.Network{
			Layers: []layers.Layer{
				c1, neuron.New(),
				c2, neuron.New(),
				layers.NewFlatten(), fc,
			},
			T: 4,
		}
	case "residual":
		c1 := layers.NewConv2d("c1", 3, 6, 3, 1, 1, false, r)
		blk := snn.NewResidualBlock("b1", 6, 8, 2, neuron, r)
		fc := layers.NewLinear("fc", 8*3*3, 5, false, r)
		mr := rng.New(seed * 7)
		mask(c1.Weight, 0.1, mr)
		mask(blk.Conv1.Weight, 0.1, mr)
		mask(blk.Conv2.Weight, 0.1, mr)
		mask(fc.Weight, 0.1, mr)
		return &snn.Network{
			Layers: []layers.Layer{
				c1, neuron.New(),
				blk,
				layers.NewFlatten(), fc,
			},
			T: 4,
		}
	}
	panic("unknown kind " + kind)
}

// runEquivNet runs one forward+backward on deterministic data and returns
// the per-timestep outputs and all parameter gradients.
func runEquivNet(net *snn.Network, seed uint64, sparseGrad bool) ([]*tensor.Tensor, []*tensor.Tensor) {
	r := rng.New(seed * 13)
	x := tensor.New(3, 3, 6, 6)
	for i := range x.Data {
		x.Data[i] = r.NormFloat32()
	}
	for _, p := range net.Params() {
		p.SparseGradOK = sparseGrad
	}
	outs := net.Forward(x, true)
	douts := make([]*tensor.Tensor, len(outs))
	for t, o := range outs {
		douts[t] = tensor.New(o.Shape()...)
		for i := range douts[t].Data {
			douts[t].Data[i] = r.NormFloat32()
		}
	}
	net.ZeroGrads()
	net.Backward(douts)
	var grads []*tensor.Tensor
	for _, p := range net.Params() {
		grads = append(grads, p.Grad)
	}
	return outs, grads
}

func equivFixturePath(kind string, hardReset bool) string {
	reset := "soft"
	if hardReset {
		reset = "hard"
	}
	return filepath.Join("testdata", fmt.Sprintf("tape_equiv_%s_%s.json", kind, reset))
}

// equivTensors names one run's results for fixture storage: outputs by
// timestep, gradients by parameter index and name.
func equivTensors(outs, grads []*tensor.Tensor, params []*layers.Param) map[string]*tensor.Tensor {
	m := make(map[string]*tensor.Tensor, len(outs)+len(grads))
	for t, o := range outs {
		m[fmt.Sprintf("out.%d", t)] = o
	}
	for i, g := range grads {
		m[fmt.Sprintf("grad.%d.%s", i, params[i].Name)] = g
	}
	return m
}

// maskGrads projects a fixture's gradient tensors onto each parameter's
// active-weight mask (unmasked parameters pass through), the subset a
// sparse-gradient run computes.
func maskGrads(want map[string]*tensor.Tensor, params []*layers.Param) map[string]*tensor.Tensor {
	out := make(map[string]*tensor.Tensor, len(want))
	for name, w := range want {
		out[name] = w
	}
	for i, p := range params {
		if p.Mask == nil {
			continue
		}
		name := fmt.Sprintf("grad.%d.%s", i, p.Name)
		g := want[name].Clone()
		for j := range g.Data {
			g.Data[j] *= p.Mask.Data[j]
		}
		out[name] = g
	}
	return out
}

func TestTapeMatchesGoldenFixtures(t *testing.T) {
	oldD, oldR := layers.CSRMaxDensity, layers.EventMaxRate
	layers.CSRMaxDensity, layers.EventMaxRate = 1, 1
	defer func() { layers.CSRMaxDensity, layers.EventMaxRate = oldD, oldR }()

	const seed = uint64(97)
	for _, kind := range []string{"plain", "residual"} {
		for _, hardReset := range []bool{false, true} {
			path := equivFixturePath(kind, hardReset)
			if testutil.UpdateFixtures() {
				old := tape.CacheEvents
				tape.CacheEvents = false
				net := buildEquivNet(seed, kind, hardReset)
				outs, grads := runEquivNet(net, seed, false)
				tape.CacheEvents = old
				testutil.WriteFixture(t, path,
					"dense-cache reference run of buildEquivNet(seed 97): per-timestep outputs and parameter gradients (originally recorded from the step-major loop, since deleted)",
					equivTensors(outs, grads, net.Params()))
				for _, p := range net.Params() {
					p.InvalidateCSR()
				}
			}
			want := testutil.ReadFixture(t, path)

			// Every engine mode must agree with the same golden: dense and
			// event-encoded caches, dense and active-position-only gradients.
			// Sparse-grad mode skips masked-out positions entirely (they stay
			// zero), so it is compared against the mask-projected fixture —
			// equivalence at every position the mode promises to compute.
			for _, sparseGrad := range []bool{false, true} {
				for _, events := range []bool{false, true} {
					label := fmt.Sprintf("%s/hard=%v/sparseGrad=%v/events=%v", kind, hardReset, sparseGrad, events)
					old := tape.CacheEvents
					tape.CacheEvents = events
					net := buildEquivNet(seed, kind, hardReset)
					outs, grads := runEquivNet(net, seed, sparseGrad)
					tape.CacheEvents = old
					ref := want
					if sparseGrad {
						ref = maskGrads(want, net.Params())
					}
					testutil.CompareFixture(t, label, ref, equivTensors(outs, grads, net.Params()), 1e-5)
					for _, p := range net.Params() {
						p.InvalidateCSR()
					}
				}
			}
		}
	}
}

// TestTapeCachesAreEventEncoded pins the memory story: during a training
// forward over binary spike activations, the tape retains event-encoded
// caches that are measurably smaller than the dense baseline's.
func TestTapeCachesAreEventEncoded(t *testing.T) {
	oldD, oldR := layers.CSRMaxDensity, layers.EventMaxRate
	layers.CSRMaxDensity, layers.EventMaxRate = 1, 1
	defer func() { layers.CSRMaxDensity, layers.EventMaxRate = oldD, oldR }()

	seed := uint64(131)
	measure := func(events bool) int64 {
		old := tape.CacheEvents
		tape.CacheEvents = events
		defer func() { tape.CacheEvents = old }()
		net := buildEquivNet(seed, "plain", false)
		base := tape.CacheBytes()
		r := rng.New(seed * 13)
		x := tensor.New(3, 3, 6, 6)
		for i := range x.Data {
			x.Data[i] = r.NormFloat32()
		}
		net.Forward(x, true)
		retained := tape.CacheBytes() - base
		net.ResetState() // release the caches
		for _, p := range net.Params() {
			p.InvalidateCSR()
		}
		if got := tape.CacheBytes(); got != base {
			t.Fatalf("ResetState leaked %d tape bytes", got-base)
		}
		return retained
	}
	dense := measure(false)
	tape1 := measure(true)
	if tape1 >= dense {
		t.Fatalf("event caches (%d B) not smaller than dense caches (%d B)", tape1, dense)
	}
}
