package snn_test

import (
	"fmt"
	"testing"

	"ndsnn/internal/layers"
	"ndsnn/internal/rng"
	"ndsnn/internal/snn"
	"ndsnn/internal/tape"
	"ndsnn/internal/tensor"
)

// The acceptance property of the sparse temporal tape: running a network
// time-major with event-encoded activation caches must reproduce the
// step-major dense-cache reference — forward outputs and every parameter
// gradient — within 1e-5, across sparse-gradient modes, architectures
// (sequential and residual) and neuron variants (soft and hard reset).

// buildEquivNet constructs a masked spiking stack deterministically from
// seed. kind is "plain" or "residual"; hardReset switches the LIF variant.
func buildEquivNet(seed uint64, kind string, hardReset bool) *snn.Network {
	r := rng.New(seed)
	neuron := snn.DefaultNeuron()
	neuron.HardReset = hardReset
	mask := func(p *layers.Param, density float64, mr *rng.RNG) {
		p.Mask = tensor.New(p.W.Shape()...)
		for i := range p.Mask.Data {
			if mr.Float64() < density {
				p.Mask.Data[i] = 1
			}
		}
		p.ApplyMask()
	}
	switch kind {
	case "plain":
		c1 := layers.NewConv2d("c1", 3, 6, 3, 1, 1, false, r)
		c2 := layers.NewConv2d("c2", 6, 6, 3, 1, 1, true, r)
		fc := layers.NewLinear("fc", 6*6*6, 5, true, r)
		mr := rng.New(seed * 7)
		mask(c1.Weight, 0.1, mr)
		mask(c2.Weight, 0.1, mr)
		mask(fc.Weight, 0.1, mr)
		return &snn.Network{
			Layers: []layers.Layer{
				c1, neuron.New(),
				c2, neuron.New(),
				layers.NewFlatten(), fc,
			},
			T: 4,
		}
	case "residual":
		c1 := layers.NewConv2d("c1", 3, 6, 3, 1, 1, false, r)
		blk := snn.NewResidualBlock("b1", 6, 8, 2, neuron, r)
		fc := layers.NewLinear("fc", 8*3*3, 5, false, r)
		mr := rng.New(seed * 7)
		mask(c1.Weight, 0.1, mr)
		mask(blk.Conv1.Weight, 0.1, mr)
		mask(blk.Conv2.Weight, 0.1, mr)
		mask(fc.Weight, 0.1, mr)
		return &snn.Network{
			Layers: []layers.Layer{
				c1, neuron.New(),
				blk,
				layers.NewFlatten(), fc,
			},
			T: 4,
		}
	}
	panic("unknown kind " + kind)
}

// runEquivNet runs one forward+backward on deterministic data and returns
// the per-timestep outputs and all parameter gradients.
func runEquivNet(net *snn.Network, seed uint64, sparseGrad bool) ([]*tensor.Tensor, []*tensor.Tensor) {
	r := rng.New(seed * 13)
	x := tensor.New(3, 3, 6, 6)
	for i := range x.Data {
		x.Data[i] = r.NormFloat32()
	}
	for _, p := range net.Params() {
		p.SparseGradOK = sparseGrad
	}
	outs := net.Forward(x, true)
	douts := make([]*tensor.Tensor, len(outs))
	for t, o := range outs {
		douts[t] = tensor.New(o.Shape()...)
		for i := range douts[t].Data {
			douts[t].Data[i] = r.NormFloat32()
		}
	}
	net.ZeroGrads()
	net.Backward(douts)
	var grads []*tensor.Tensor
	for _, p := range net.Params() {
		grads = append(grads, p.Grad)
	}
	return outs, grads
}

func maxDiffT(a, b *tensor.Tensor) float64 {
	var d float64
	for i := range a.Data {
		x := float64(a.Data[i] - b.Data[i])
		if x < 0 {
			x = -x
		}
		if x > d {
			d = x
		}
	}
	return d
}

func TestTapeTimeMajorMatchesDenseReference(t *testing.T) {
	oldD, oldR := layers.CSRMaxDensity, layers.EventMaxRate
	layers.CSRMaxDensity, layers.EventMaxRate = 1, 1
	defer func() { layers.CSRMaxDensity, layers.EventMaxRate = oldD, oldR }()

	for _, kind := range []string{"plain", "residual"} {
		for _, hardReset := range []bool{false, true} {
			for _, sparseGrad := range []bool{false, true} {
				name := fmt.Sprintf("%s/hard=%v/sparseGrad=%v", kind, hardReset, sparseGrad)
				seed := uint64(97)

				// Reference: step-major, dense caches (the PR 2 behavior).
				ref := buildEquivNet(seed, kind, hardReset)
				var refOuts, refGrads []*tensor.Tensor
				oldCache := tape.CacheEvents
				tape.CacheEvents = false
				refOuts, refGrads = runEquivNet(ref, seed, sparseGrad)
				tape.CacheEvents = oldCache

				// Tape path: time-major execution, event-encoded caches.
				got := buildEquivNet(seed, kind, hardReset)
				got.TimeMajor = true
				gotOuts, gotGrads := runEquivNet(got, seed, sparseGrad)

				for tt := range refOuts {
					if d := maxDiffT(refOuts[tt], gotOuts[tt]); d > 1e-5 {
						t.Fatalf("%s: timestep %d forward differs by %v", name, tt, d)
					}
				}
				if len(refGrads) != len(gotGrads) {
					t.Fatalf("%s: grad count %d vs %d", name, len(refGrads), len(gotGrads))
				}
				for i := range refGrads {
					if d := maxDiffT(refGrads[i], gotGrads[i]); d > 1e-5 {
						t.Fatalf("%s: grad %d differs by %v (tape replay vs dense reference)", name, i, d)
					}
				}
				for _, p := range append(ref.Params(), got.Params()...) {
					p.InvalidateCSR()
				}
			}
		}
	}
}

// TestTapeCachesAreEventEncoded pins the memory story: during a training
// forward over binary spike activations, the tape retains event-encoded
// caches that are measurably smaller than the dense baseline's.
func TestTapeCachesAreEventEncoded(t *testing.T) {
	oldD, oldR := layers.CSRMaxDensity, layers.EventMaxRate
	layers.CSRMaxDensity, layers.EventMaxRate = 1, 1
	defer func() { layers.CSRMaxDensity, layers.EventMaxRate = oldD, oldR }()

	seed := uint64(131)
	measure := func(events bool) int64 {
		old := tape.CacheEvents
		tape.CacheEvents = events
		defer func() { tape.CacheEvents = old }()
		net := buildEquivNet(seed, "plain", false)
		base := tape.CacheBytes()
		r := rng.New(seed * 13)
		x := tensor.New(3, 3, 6, 6)
		for i := range x.Data {
			x.Data[i] = r.NormFloat32()
		}
		net.Forward(x, true)
		retained := tape.CacheBytes() - base
		net.ResetState() // release the caches
		for _, p := range net.Params() {
			p.InvalidateCSR()
		}
		if got := tape.CacheBytes(); got != base {
			t.Fatalf("ResetState leaked %d tape bytes", got-base)
		}
		return retained
	}
	dense := measure(false)
	tape1 := measure(true)
	if tape1 >= dense {
		t.Fatalf("event caches (%d B) not smaller than dense caches (%d B)", tape1, dense)
	}
}
