package sparse

import (
	"fmt"
	"math"

	"ndsnn/internal/tensor"
)

// Banded time-filter kernels: the time-parallel membrane of the ParLIF
// neuron. A reset-free LIF membrane is a causal geometric filter of the
// input-current sequence,
//
//	v[t] = Σ_{d=0..t} α^d · I[t-d],
//
// i.e. V = L·X for the lower-triangular Toeplitz matrix L[t,s] = α^(t-s)
// stacked over timesteps (rows) and neurons (columns). Because α^d decays
// geometrically, L is effectively *banded*: terms beyond the band where
// α^d < eps contribute less than eps·|I| each, so the filter truncates to
// Band diagonals with a bounded error (NewDecayFilter picks the band from
// the requested tolerance). The transposed filter
//
//	g[s] = Σ_{d=0..} α^d · e[s+d]
//
// is the BPTT error recursion ε[t] = e[t] + α·ε[t+1] unrolled — the backward
// pass of the same neuron — so one structure serves both directions.
//
// Both kernels parallelize over the *neuron* axis in disjoint element
// strips: each strip accumulates its own output range with the full
// ascending-diagonal summation order, so results are bit-identical at any
// GOMAXPROCS and any strip count. They differ from the sequential (Horner)
// recurrence only in float summation order, which is what the ParLIF
// equivalence pins bound at 1e-5.

// DecayFilter is the precomputed banded geometric filter: W[d] = Alpha^d for
// d < Band. Build one per (α, T) with NewDecayFilter and reuse it across
// batches; it is immutable and safe for concurrent use.
type DecayFilter struct {
	// Alpha is the membrane decay constant the powers are taken from.
	Alpha float32
	// W holds the Band precomputed diagonal weights, W[d] = Alpha^d.
	W []float32
	// Band is the number of retained diagonals (≤ T).
	Band int
}

// NewDecayFilter precomputes the decay powers for sequences of length T,
// truncating the band where |α|^d drops below eps (eps <= 0 keeps all T
// diagonals — the exact lower-triangular filter). The truncation error per
// output element is below eps·Σ|I|, which the default 1e-9 keeps far under
// the 1e-5 equivalence tolerance even at T=100.
func NewDecayFilter(alpha float32, T int, eps float64) *DecayFilter {
	if T < 1 {
		panic(fmt.Sprintf("sparse: NewDecayFilter T=%d", T))
	}
	band := T
	if eps > 0 && alpha != 0 {
		a := math.Abs(float64(alpha))
		if a < 1 {
			// Smallest band with a^band < eps.
			b := int(math.Ceil(math.Log(eps)/math.Log(a))) + 1
			if b < 1 {
				b = 1
			}
			if b < band {
				band = b
			}
		}
	}
	if alpha == 0 {
		band = 1
	}
	f := &DecayFilter{Alpha: alpha, Band: band, W: make([]float32, band)}
	p := float32(1)
	for d := 0; d < band; d++ {
		f.W[d] = p
		p *= alpha
	}
	return f
}

// checkSeq validates a timestep sequence of equal-length rows and returns
// (T, n).
func (f *DecayFilter) checkSeq(dst, xs [][]float32, kernel string) (int, int) {
	if len(dst) != len(xs) {
		panic(fmt.Sprintf("sparse: %s dst timesteps %d, want %d", kernel, len(dst), len(xs)))
	}
	if len(xs) == 0 {
		return 0, 0
	}
	n := len(xs[0])
	for t := range xs {
		if len(xs[t]) != n || len(dst[t]) != n {
			panic(fmt.Sprintf("sparse: %s ragged rows at t=%d (want %d elements)", kernel, t, n))
		}
	}
	return len(xs), n
}

// ForwardInto computes the causal filter dst[t] = Σ_{d=0..min(t,Band-1)}
// W[d]·xs[t-d] for every timestep at once — the one-shot banded
// lower-triangular matmul over the stacked timestep sequence. dst rows are
// overwritten. dst[t] must not alias xs[s] for s < t (in-place on the same
// row, dst[t] == xs[t], is NOT supported either: earlier inputs must stay
// readable while later outputs accumulate).
func (f *DecayFilter) ForwardInto(dst, xs [][]float32) {
	T, n := f.checkSeq(dst, xs, "DecayFilter.ForwardInto")
	if T == 0 || n == 0 {
		return
	}
	work := 2 * T * f.Band
	tensor.ParallelFor(n, work, func(lo, hi int) {
		for t := 0; t < T; t++ {
			out := dst[t][lo:hi]
			x0 := xs[t][lo:hi]
			w0 := f.W[0]
			for j := range out {
				out[j] = w0 * x0[j]
			}
			dmax := t
			if dmax > f.Band-1 {
				dmax = f.Band - 1
			}
			for d := 1; d <= dmax; d++ {
				w := f.W[d]
				xd := xs[t-d][lo:hi]
				for j := range out {
					out[j] += w * xd[j]
				}
			}
		}
	})
}

// BackwardInto computes the anticausal (transposed) filter dst[s] =
// Σ_{d=0..min(T-1-s,Band-1)} W[d]·es[s+d] — the unrolled BPTT error
// recursion ε[s] = e[s] + α·ε[s+1] of the reset-free membrane, all timesteps
// in one shot. dst rows are overwritten; the same aliasing rule as
// ForwardInto applies (mirrored: dst[s] must not alias es[t] for t > s).
func (f *DecayFilter) BackwardInto(dst, es [][]float32) {
	T, n := f.checkSeq(dst, es, "DecayFilter.BackwardInto")
	if T == 0 || n == 0 {
		return
	}
	work := 2 * T * f.Band
	tensor.ParallelFor(n, work, func(lo, hi int) {
		for s := 0; s < T; s++ {
			out := dst[s][lo:hi]
			e0 := es[s][lo:hi]
			w0 := f.W[0]
			for j := range out {
				out[j] = w0 * e0[j]
			}
			dmax := T - 1 - s
			if dmax > f.Band-1 {
				dmax = f.Band - 1
			}
			for d := 1; d <= dmax; d++ {
				w := f.W[d]
				ed := es[s+d][lo:hi]
				for j := range out {
					out[j] += w * ed[j]
				}
			}
		}
	})
}

// SeqRows adapts a timestep slice of equal-shaped tensors to the [][]float32
// rows the filter kernels consume (no copies — rows alias the tensors).
func SeqRows(ts []*tensor.Tensor) [][]float32 {
	rows := make([][]float32, len(ts))
	for t, x := range ts {
		rows[t] = x.Data
	}
	return rows
}
