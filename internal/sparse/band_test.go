package sparse

import (
	"math"
	"runtime"
	"testing"

	"ndsnn/internal/rng"
)

// naiveFilter is the O(T²) dense lower-triangular reference: out[t][j] =
// Σ_{d=0..min(t,band-1)} α^d·xs[t-d][j], summed in the same ascending-d order
// the kernel uses so exact (bit) comparison is meaningful.
func naiveFilter(alpha float32, band int, xs [][]float32, anticausal bool) [][]float32 {
	T := len(xs)
	out := make([][]float32, T)
	for t := range out {
		out[t] = make([]float32, len(xs[t]))
		for d := 0; d < band && d <= maxLag(t, T, anticausal); d++ {
			w := powf(alpha, d)
			src := t + d
			if !anticausal {
				src = t - d
			}
			for j := range out[t] {
				out[t][j] += w * xs[src][j]
			}
		}
	}
	return out
}

func maxLag(t, T int, anticausal bool) int {
	if anticausal {
		return T - 1 - t
	}
	return t
}

func powf(a float32, d int) float32 {
	p := float32(1)
	for i := 0; i < d; i++ {
		p *= a
	}
	return p
}

func randSeq(r *rng.RNG, T, n int) [][]float32 {
	xs := make([][]float32, T)
	for t := range xs {
		xs[t] = make([]float32, n)
		for j := range xs[t] {
			xs[t][j] = r.NormFloat32()
		}
	}
	return xs
}

func newSeq(T, n int) [][]float32 {
	xs := make([][]float32, T)
	for t := range xs {
		xs[t] = make([]float32, n)
	}
	return xs
}

func TestDecayFilterMatchesNaive(t *testing.T) {
	r := rng.New(41)
	cases := []struct {
		alpha float32
		T, n  int
		eps   float64
	}{
		{0.5, 1, 7, 0},      // T=1
		{0.5, 4, 1, 0},      // single element per step
		{0.5, 8, 33, 0},     // exact: band = T
		{0.5, 25, 17, 1e-9}, // truncated band < T
		{0.9, 100, 5, 1e-9},
		{0, 6, 9, 1e-9}, // alpha=0: identity filter, band=1
		{1, 6, 9, 0},    // alpha=1: running prefix sums
	}
	for _, c := range cases {
		f := NewDecayFilter(c.alpha, c.T, c.eps)
		if f.Band < 1 || f.Band > c.T {
			t.Fatalf("alpha=%v T=%d eps=%g: band %d out of range", c.alpha, c.T, c.eps, f.Band)
		}
		xs := randSeq(r, c.T, c.n)
		for _, anti := range []bool{false, true} {
			want := naiveFilter(c.alpha, f.Band, xs, anti)
			got := newSeq(c.T, c.n)
			if anti {
				f.BackwardInto(got, xs)
			} else {
				f.ForwardInto(got, xs)
			}
			for ti := range want {
				for j := range want[ti] {
					if got[ti][j] != want[ti][j] {
						t.Fatalf("alpha=%v T=%d anti=%v: [%d][%d] = %v, want %v",
							c.alpha, c.T, anti, ti, j, got[ti][j], want[ti][j])
					}
				}
			}
		}
	}
}

// TestDecayFilterMatchesRecurrence pins the forward filter against the
// sequential Horner recurrence v[t] = α·v[t-1] + x[t] (the reset-free LIF
// membrane) within the band-truncation + reassociation tolerance, and the
// backward filter against ε[s] = e[s] + α·ε[s+1].
func TestDecayFilterMatchesRecurrence(t *testing.T) {
	r := rng.New(43)
	const T, n = 100, 13
	const alpha = 0.5
	f := NewDecayFilter(alpha, T, 1e-9)
	if f.Band >= T {
		t.Fatalf("band %d not truncated below T=%d", f.Band, T)
	}
	xs := randSeq(r, T, n)

	got := newSeq(T, n)
	f.ForwardInto(got, xs)
	v := make([]float64, n)
	for ti := 0; ti < T; ti++ {
		for j := 0; j < n; j++ {
			v[j] = alpha*v[j] + float64(xs[ti][j])
			if d := math.Abs(float64(got[ti][j]) - v[j]); d > 1e-5 {
				t.Fatalf("forward [%d][%d]: filter %v vs recurrence %v (diff %g)", ti, j, got[ti][j], v[j], d)
			}
		}
	}

	f.BackwardInto(got, xs)
	eps := make([]float64, n)
	for ti := T - 1; ti >= 0; ti-- {
		for j := 0; j < n; j++ {
			eps[j] = float64(xs[ti][j]) + alpha*eps[j]
			if d := math.Abs(float64(got[ti][j]) - eps[j]); d > 1e-5 {
				t.Fatalf("backward [%d][%d]: filter %v vs recurrence %v (diff %g)", ti, j, got[ti][j], eps[j], d)
			}
		}
	}
}

// TestDecayFilterWorkerInvariance pins bit-identical output across
// GOMAXPROCS: the kernels parallelize over disjoint element strips and each
// element keeps the full ascending-diagonal summation order, so the chunk
// partition cannot change any result bit.
func TestDecayFilterWorkerInvariance(t *testing.T) {
	r := rng.New(47)
	const T, n = 25, 4096
	f := NewDecayFilter(0.5, T, 1e-9)
	xs := randSeq(r, T, n)

	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	runtime.GOMAXPROCS(1)
	serial := newSeq(T, n)
	f.ForwardInto(serial, xs)
	serialB := newSeq(T, n)
	f.BackwardInto(serialB, xs)

	for _, w := range []int{2, 4, 8} {
		runtime.GOMAXPROCS(w)
		got := newSeq(T, n)
		f.ForwardInto(got, xs)
		gotB := newSeq(T, n)
		f.BackwardInto(gotB, xs)
		for ti := 0; ti < T; ti++ {
			for j := 0; j < n; j++ {
				if got[ti][j] != serial[ti][j] {
					t.Fatalf("procs=%d forward [%d][%d]: %v != serial %v", w, ti, j, got[ti][j], serial[ti][j])
				}
				if gotB[ti][j] != serialB[ti][j] {
					t.Fatalf("procs=%d backward [%d][%d]: %v != serial %v", w, ti, j, gotB[ti][j], serialB[ti][j])
				}
			}
		}
	}
}
