package sparse

import "ndsnn/internal/tensor"

// CSR is a compressed-sparse-row matrix, the storage format the paper's
// memory-footprint analysis assumes for deployed sparse weights. A 4-D conv
// weight [F,C,Kh,Kw] is stored as its [F, C·Kh·Kw] reshape, one row per
// filter.
type CSR struct {
	Rows, Cols int
	// RowPtr has Rows+1 entries; row r's nonzeros live at [RowPtr[r],
	// RowPtr[r+1]) in ColIdx/Val.
	RowPtr []int32
	ColIdx []int32
	Val    []float32
}

// EncodeCSR converts a 2-D tensor to CSR, keeping exact non-zeros. Note that
// this drops active-but-exactly-zero weights (e.g. freshly grown connections);
// use EncodeCSRWithMask when the mask topology must survive the encoding.
func EncodeCSR(w *tensor.Tensor) *CSR {
	if w.NumDims() != 2 {
		panic("sparse: EncodeCSR requires a 2-D tensor (reshape conv weights first)")
	}
	rows, cols := w.Dim(0), w.Dim(1)
	c := &CSR{Rows: rows, Cols: cols, RowPtr: make([]int32, rows+1)}
	for r := 0; r < rows; r++ {
		for j := 0; j < cols; j++ {
			v := w.Data[r*cols+j]
			if v != 0 {
				c.ColIdx = append(c.ColIdx, int32(j))
				c.Val = append(c.Val, v)
			}
		}
		c.RowPtr[r+1] = int32(len(c.Val))
	}
	return c
}

// EncodeCSRWithMask converts a 2-D tensor to CSR keyed on a 0/1 mask of the
// same shape: every mask=1 position is stored, including positions whose
// value is exactly zero (drop-and-grow regrows connections at zero, and they
// must stay addressable so later weight updates land in the encoding). The
// resulting sparsity pattern equals the mask topology exactly.
func EncodeCSRWithMask(w, mask *tensor.Tensor) *CSR {
	if w.NumDims() != 2 || mask.NumDims() != 2 {
		panic("sparse: EncodeCSRWithMask requires 2-D tensors (reshape conv weights first)")
	}
	rows, cols := w.Dim(0), w.Dim(1)
	if mask.Dim(0) != rows || mask.Dim(1) != cols {
		panic("sparse: EncodeCSRWithMask mask shape mismatch")
	}
	c := &CSR{Rows: rows, Cols: cols, RowPtr: make([]int32, rows+1)}
	for r := 0; r < rows; r++ {
		for j := 0; j < cols; j++ {
			if mask.Data[r*cols+j] != 0 {
				c.ColIdx = append(c.ColIdx, int32(j))
				c.Val = append(c.Val, w.Data[r*cols+j])
			}
		}
		c.RowPtr[r+1] = int32(len(c.Val))
	}
	return c
}

// GatherValues refreshes Val in place from a dense tensor with Rows·Cols
// elements, keeping the sparsity pattern fixed. This is the cheap O(nnz)
// re-encode used between rewire events, when optimizer steps change weight
// values but not the mask topology.
func (c *CSR) GatherValues(w *tensor.Tensor) {
	if w.Size() != c.Rows*c.Cols {
		panic("sparse: GatherValues size mismatch")
	}
	wd := w.Data
	for r := 0; r < c.Rows; r++ {
		base := r * c.Cols
		for p := c.RowPtr[r]; p < c.RowPtr[r+1]; p++ {
			c.Val[p] = wd[base+int(c.ColIdx[p])]
		}
	}
}

// Decode reconstructs the dense 2-D tensor.
func (c *CSR) Decode() *tensor.Tensor {
	out := tensor.New(c.Rows, c.Cols)
	for r := 0; r < c.Rows; r++ {
		for p := c.RowPtr[r]; p < c.RowPtr[r+1]; p++ {
			out.Data[r*c.Cols+int(c.ColIdx[p])] = c.Val[p]
		}
	}
	return out
}

// NNZ returns the number of stored non-zeros.
func (c *CSR) NNZ() int { return len(c.Val) }

// MemoryBits returns the storage cost with weightBits-per-value and
// idxBits-per-index (column indices plus the Rows+1 row pointers), matching
// the paper's accounting of (1-θ)·N·(b_w + b_idx) + (F+1)·b_idx per layer.
func (c *CSR) MemoryBits(weightBits, idxBits int) int64 {
	return int64(c.NNZ())*int64(weightBits+idxBits) + int64(c.Rows+1)*int64(idxBits)
}

// MatVec computes y = A·x for the CSR matrix, the event-driven inference
// primitive: only stored synapses contribute.
func (c *CSR) MatVec(x []float32) []float32 {
	if len(x) != c.Cols {
		panic("sparse: CSR.MatVec dimension mismatch")
	}
	y := make([]float32, c.Rows)
	for r := 0; r < c.Rows; r++ {
		var s float32
		for p := c.RowPtr[r]; p < c.RowPtr[r+1]; p++ {
			s += c.Val[p] * x[c.ColIdx[p]]
		}
		y[r] = s
	}
	return y
}
