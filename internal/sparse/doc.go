// Package sparse implements the sparsity substrate shared by every sparse
// training method in this repository: layerwise sparsity allocation (ERK and
// uniform), binary mask construction, deterministic magnitude/gradient top-k
// selection, compressed sparse row/column storage, the training/inference
// memory-footprint model of the paper's Section III-D, and the sparse compute
// engine — the CSR/SDDMM/event kernel zoo behind Conv2d and Linear.
//
// # Storage formats
//
//   - CSR (csr.go) stores a weight matrix row-compressed, one row per output
//     unit/filter. EncodeCSRWithMask keys the pattern on the 0/1 mask rather
//     than the values, so grown-at-zero connections stay addressable;
//     GatherValues refreshes values in O(nnz) between rewires.
//   - CSC (event.go) is the column-compressed transpose view used when the
//     access pattern is "incoming spike selects a weight column" (the
//     event-driven linear forward).
//   - Events (event.go) is a values-free CSR pattern of a binary {0,1}
//     activation: per row, the ascending list of active columns. It is how
//     spike rasters and im2col spike columns enter the event-driven kernels.
//
// # Kernel naming scheme
//
// The CSR operand is always called A; dense tensors keep their math-side
// names (B for the right operand, X for batch-major activations). Suffixes
// compose left to right:
//
//   - "ATB"/"ABT" follow the dense-kernel convention in internal/tensor:
//     Aᵀ·B and A·Bᵀ respectively. Plain CSRMatMul is A·B.
//   - "MatMulDenseCSR*" puts the dense operand on the left (X·A, X·Aᵀ),
//     which lets batch-major activations parallelize over batch rows.
//   - "Events" means the binary operand is an Events pattern and the kernel
//     is fully event-driven (work ∝ spike count). "Masked" means a
//     colActive []bool restricts the dense operand's columns — the
//     whole-column skip for operands that are sparse but not binary.
//   - "Batch" means one traversal of A serves all T timesteps of a batch
//     (the batched-timestep GEMM; pattern and values are shared across
//     timesteps, only the spike columns differ).
//   - "Serial" variants run on the calling goroutine, for callers that
//     already parallelize across the batch (the conv layers); "Into"
//     variants write (or accumulate) into a caller-owned destination.
//
// The gradient kernels CSRGradABTSerial and CSRGradATBInto are SDDMM
// (sampled dense–dense matrix multiplication) forms: they compute dense·dense
// products only at the stored positions of a CSR pattern, which is exactly
// the weight gradient restricted to live weights — dW = dy·colᵀ for conv,
// dW = dyᵀ·x for linear.
//
// Every kernel visits contributions in the same ascending-index order as its
// dense counterpart and multiplies by exact {0,1} spike values where
// applicable, so for finite inputs the sparse, event-driven and dense paths
// produce bit-identical results; the property tests in this package and in
// internal/layers pin that equivalence.
//
// # Thread scalability
//
// The Workers knob (parallel.go) gates kernel-level parallelism: banded
// variants of the event forwards (CSCBands pre-buckets the weight matrix
// into disjoint destination row bands) and nnz-row-blocked variants of the
// SDDMM gradients fan one kernel call out across the persistent worker pool
// in internal/tensor. Band and block boundaries derive from the pattern and
// the knob alone — never from GOMAXPROCS — and every parallel kernel
// preserves the serial per-element summation order, so results stay
// bit-identical to the serial kernels at any thread budget. The integer and
// float event accumulates are register-blocked (4×-unrolled) in their
// primary forms, with *Scalar reference kernels kept for pinning.
package sparse
