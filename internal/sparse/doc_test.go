package sparse

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"strings"
	"testing"
)

// TestExportedDocCoverage fails if any exported identifier in this package
// lacks a godoc comment. The CSR/SDDMM/event kernel zoo is the part of the
// codebase where an undocumented export costs the most — the kernels differ
// only in operand layout and loop order, which the names alone cannot carry.
// CI runs this as part of the docs job.
func TestExportedDocCoverage(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		for fname, f := range pkg.Files {
			for _, decl := range f.Decls {
				checkDeclDocs(t, fset, fname, decl)
			}
		}
	}
}

func checkDeclDocs(t *testing.T, fset *token.FileSet, fname string, decl ast.Decl) {
	t.Helper()
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if d.Name.IsExported() && d.Doc == nil {
			t.Errorf("%s: exported %s %s has no doc comment", fset.Position(d.Pos()), declKind(d), d.Name.Name)
		}
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
					t.Errorf("%s: exported type %s has no doc comment", fset.Position(s.Pos()), s.Name.Name)
				}
			case *ast.ValueSpec:
				for _, name := range s.Names {
					if name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
						t.Errorf("%s: exported %s %s has no doc comment", fset.Position(s.Pos()), d.Tok, name.Name)
					}
				}
			}
		}
	}
}

func declKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "func"
}
