package sparse

import (
	"fmt"
)

// ERKDensities allocates per-layer densities with the Erdős–Rényi-Kernel
// rule used by SET/RigL and the paper's step ❶: layer l's density is scaled
// proportionally to (Σ dims)/(Π dims) — for a conv kernel [F,C,Kh,Kw] that
// is (F+C+Kh+Kw)/(F·C·Kh·Kw) — subject to Σ density_l·N_l = density·Σ N_l.
// Layers whose scaled density would exceed 1 are fixed dense and the scale
// factor is re-solved for the rest.
//
// shapes are the prunable parameter shapes; density is the global density
// (1 - sparsity) in (0, 1]. The result has one density per shape, each in
// (0, 1].
func ERKDensities(shapes [][]int, density float64) []float64 {
	if density <= 0 || density > 1 {
		panic(fmt.Sprintf("sparse: global density %v outside (0,1]", density))
	}
	n := len(shapes)
	sizes := make([]int, n)
	raw := make([]float64, n)
	total := 0
	for i, s := range shapes {
		size := 1
		sumDims := 0
		for _, d := range s {
			size *= d
			sumDims += d
		}
		sizes[i] = size
		raw[i] = float64(sumDims) / float64(size)
		total += size
	}
	targetNZ := density * float64(total)

	dense := make([]bool, n)
	for {
		var denseNZ, sparseMass float64
		for i := range shapes {
			if dense[i] {
				denseNZ += float64(sizes[i])
			} else {
				sparseMass += raw[i] * float64(sizes[i])
			}
		}
		if sparseMass == 0 {
			break
		}
		eps := (targetNZ - denseNZ) / sparseMass
		overflow := false
		for i := range shapes {
			if !dense[i] && eps*raw[i] > 1 {
				dense[i] = true
				overflow = true
			}
		}
		if !overflow {
			out := make([]float64, n)
			for i := range shapes {
				if dense[i] {
					out[i] = 1
				} else {
					d := eps * raw[i]
					if d < 0 {
						d = 0
					}
					out[i] = d
				}
			}
			return out
		}
	}
	// Everything ended up dense (density ~ 1).
	out := make([]float64, n)
	for i := range out {
		out[i] = 1
	}
	return out
}

// UniformDensities assigns the same density to every layer.
func UniformDensities(n int, density float64) []float64 {
	if density <= 0 || density > 1 {
		panic(fmt.Sprintf("sparse: global density %v outside (0,1]", density))
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = density
	}
	return out
}

// GlobalDensityOf returns the overall density implied by per-layer densities
// and shapes (the inverse check of ERKDensities).
func GlobalDensityOf(shapes [][]int, densities []float64) float64 {
	var nz, total float64
	for i, s := range shapes {
		size := 1
		for _, d := range s {
			size *= d
		}
		nz += densities[i] * float64(size)
		total += float64(size)
	}
	return nz / total
}
