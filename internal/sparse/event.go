package sparse

import (
	"fmt"

	"ndsnn/internal/tensor"
)

// Event-driven kernels: the spike-sparsity half of the dual-sparse forward
// pass. The CSR kernels in gemm.go make training cost scale with live-weight
// density; the kernels here additionally skip the zeros of the *activation*
// operand, which for spiking networks is a {0,1} tensor that is mostly zero.
// Forward cost then scales with weightDensity × spikeRate instead of either
// alone.
//
// Binary inputs are represented as an Events pattern (a value-less CSR: per
// row, the ascending list of active columns). Because every stored entry is
// exactly 1, multiplication degenerates to accumulation of weight values, and
// every kernel visits contributions in the same ascending-index order as the
// dense kernels — outputs are bit-identical to the dense path.

// Events is the positions-only CSR pattern of a binary {0,1} matrix: row r's
// active columns are ColIdx[RowPtr[r]:RowPtr[r+1]], ascending. It is the
// compressed form of a spike raster (one row per im2col patch row or per
// batch sample) consumed by the event-driven kernels.
type Events struct {
	Rows, Cols int
	// RowPtr has Rows+1 entries delimiting each row's span in ColIdx.
	RowPtr []int32
	// ColIdx holds the active-column indices, grouped by row, ascending.
	ColIdx []int32
}

// NNZ returns the number of recorded events (active entries).
func (e *Events) NNZ() int { return len(e.ColIdx) }

// ScatterRowInto sets dst[j] = v at every active column j of row r, leaving
// other entries untouched. With v=1 over a zeroed buffer it decodes one row
// of the binary matrix; calling again with v=0 erases exactly what was
// written, which is how tape replay reuses one scratch row across a batch in
// O(nnz) instead of re-zeroing the whole buffer.
func (e *Events) ScatterRowInto(r int, dst []float32, v float32) {
	for _, j := range e.ColIdx[e.RowPtr[r]:e.RowPtr[r+1]] {
		dst[j] = v
	}
}

// RowNNZ returns the number of active entries in row r.
func (e *Events) RowNNZ(r int) int { return int(e.RowPtr[r+1] - e.RowPtr[r]) }

// Occupancy returns the fraction of entries that are active — the measured
// spike rate of the encoded tensor.
func (e *Events) Occupancy() float64 {
	if e.Rows*e.Cols == 0 {
		return 0
	}
	return float64(e.NNZ()) / float64(e.Rows*e.Cols)
}

// EncodeEvents extracts the event pattern of a 2-D binary tensor. It returns
// ok=false (with a nil pattern) as soon as it sees a value outside {0,1} —
// the caller then knows the input is analog and falls back to a dense-operand
// kernel. The scan is O(rows·cols); reuse tensor.Im2ColEvents when the
// pattern can be extracted during im2col instead.
func EncodeEvents(t *tensor.Tensor) (*Events, bool) {
	rows, cols := dims2(t, "EncodeEvents")
	e := &Events{Rows: rows, Cols: cols, RowPtr: make([]int32, rows+1)}
	for r := 0; r < rows; r++ {
		row := t.Data[r*cols : (r+1)*cols]
		for j, v := range row {
			if v == 0 {
				continue
			}
			if v != 1 {
				return nil, false
			}
			e.ColIdx = append(e.ColIdx, int32(j))
		}
		e.RowPtr[r+1] = int32(len(e.ColIdx))
	}
	return e, true
}

// CSCMatMulEventsSerialInto computes dst = A·B for A in CSC form [m,k] and a
// binary B [k,n] given as its event pattern — the dual-sparse conv forward:
// sparse filters × sparse spike columns. The loop nest is inverted relative
// to the weight-only CSR kernel: spike rows are the outer loop, so each
// weight *column* (contiguous in CSC) is streamed exactly once per active
// spike row and the per-event overhead amortizes over the column's stored
// weights. Work is nnz(W) × spikeRate × n adds instead of the weight-only
// kernel's nnz(W) × n multiply-adds.
//
// For each fixed output element the contributions still arrive in ascending
// weight-column order (the outer loop), which is the dense kernel's
// summation order, so results are bit-identical to the dense path. Serial
// because the conv layers already parallelize across the batch.
func CSCMatMulEventsSerialInto(dst *tensor.Tensor, a *CSC, ev *Events, accumulate bool) {
	n := checkCSCMatMulEvents(dst, a, ev)
	od := dst.Data
	if !accumulate {
		for i := range od {
			od[i] = 0
		}
	}
	cscMatMulEventsBand(od, a, ev, n)
}

// addEventsUnrolled accumulates orow[j] += v at every event column j — the
// register-blocked inner loop shared by the float CSC event kernels. Four
// (index, add) pairs are kept in flight per iteration, which removes most of
// the per-event loop and bounds-check overhead of the scalar form. Every
// event column is a distinct element and each receives exactly one add, in
// the same left-to-right order as the scalar loop, so results are
// bit-identical at any unroll factor.
func addEventsUnrolled(orow []float32, v float32, evRow []int32) {
	n := len(evRow) &^ 3
	for e := 0; e < n; e += 4 {
		j0, j1, j2, j3 := evRow[e], evRow[e+1], evRow[e+2], evRow[e+3]
		orow[j0] += v
		orow[j1] += v
		orow[j2] += v
		orow[j3] += v
	}
	for _, j := range evRow[n:] {
		orow[j] += v
	}
}

func checkCSCMatMulEvents(dst *tensor.Tensor, a *CSC, ev *Events) int {
	if ev.Rows != a.Cols {
		panic(fmt.Sprintf("sparse: CSCMatMulEvents inner dims %d vs %d", a.Cols, ev.Rows))
	}
	dm, dn := dims2(dst, "CSCMatMulEvents dst")
	if dm != a.Rows || dn != ev.Cols {
		panic(fmt.Sprintf("sparse: CSCMatMulEvents dst shape [%d,%d], want [%d,%d]", dm, dn, a.Rows, ev.Cols))
	}
	return ev.Cols
}

// FuseTimesteps merges the event patterns of T same-shaped binary matrices
// (the T timesteps of one sample) into a single pattern over
// column-concatenated timesteps: row q of the result lists timestep t's
// active columns shifted by t·Cols, ascending. Feeding the fused pattern to
// CSCMatMulEventsSerialInto with an [A.Rows, T·Cols] destination computes
// all T forward passes in ONE traversal of the weight matrix — the
// batched-timestep GEMM: the pattern and values are shared across timesteps
// (only the spike columns differ), so every index/value load is amortized
// by T. Timestep t's output is dst[r, t·Cols : (t+1)·Cols], bit-identical
// to T per-timestep kernel calls. The merge itself is O(total events).
func FuseTimesteps(evs []*Events) *Events {
	if len(evs) == 0 {
		return &Events{}
	}
	rows, cols := evs[0].Rows, evs[0].Cols
	total := 0
	for _, ev := range evs {
		if ev.Rows != rows || ev.Cols != cols {
			panic(fmt.Sprintf("sparse: FuseTimesteps shape [%d,%d] vs [%d,%d]", ev.Rows, ev.Cols, rows, cols))
		}
		total += ev.NNZ()
	}
	f := &Events{
		Rows:   rows,
		Cols:   len(evs) * cols,
		RowPtr: make([]int32, rows+1),
		ColIdx: make([]int32, 0, total),
	}
	for q := 0; q < rows; q++ {
		for t, ev := range evs {
			off := int32(t * cols)
			for _, j := range ev.ColIdx[ev.RowPtr[q]:ev.RowPtr[q+1]] {
				f.ColIdx = append(f.ColIdx, off+j)
			}
		}
		f.RowPtr[q+1] = int32(len(f.ColIdx))
	}
	return f
}

// StackTimesteps concatenates the event patterns of T same-shaped binary
// matrices along the *row* dimension: the result has T·Rows rows, timestep
// t's sample i at row t·Rows+i, columns unchanged. Where FuseTimesteps
// column-concatenates (one weight traversal serves T *outputs*, the forward
// fusion), StackTimesteps row-concatenates — timesteps become extra batch
// samples, which is the backward fusion for batch-major kernels:
// CSRGradATBEventsInto over the stacked pattern and the row-stacked dy
// computes all T timestep gradients in one weight-pattern traversal, and one
// MatMulDenseCSRInto over the stacked dy yields every timestep's input
// gradient in one weight traversal. The merge is O(total events).
func StackTimesteps(evs []*Events) *Events {
	if len(evs) == 0 {
		return &Events{}
	}
	rows, cols := evs[0].Rows, evs[0].Cols
	total := 0
	for _, ev := range evs {
		if ev.Rows != rows || ev.Cols != cols {
			panic(fmt.Sprintf("sparse: StackTimesteps shape [%d,%d] vs [%d,%d]", ev.Rows, ev.Cols, rows, cols))
		}
		total += ev.NNZ()
	}
	s := &Events{
		Rows:   len(evs) * rows,
		Cols:   cols,
		RowPtr: make([]int32, len(evs)*rows+1),
		ColIdx: make([]int32, 0, total),
	}
	r := 0
	for _, ev := range evs {
		for q := 0; q < rows; q++ {
			s.ColIdx = append(s.ColIdx, ev.ColIdx[ev.RowPtr[q]:ev.RowPtr[q+1]]...)
			r++
			s.RowPtr[r] = int32(len(s.ColIdx))
		}
	}
	return s
}

// CSRGradABTEventsSerial is CSRGradABTSerial with the b operand given as the
// event pattern of a binary matrix — the tape-replay form of the conv weight
// gradient: vals[p] += Σ_j a[r,j]·b[c,j] degenerates to accumulating a[r,j]
// over b's recorded events, so backward-weight work scales with
// nnz(pattern) × spike occupancy instead of nnz(pattern) × q. Rows of the
// pattern with zero recorded spikes are skipped entirely. Contributions
// arrive in ascending-j order (the dense kernel's summation order, minus its
// exact-zero terms), so results match the dense path within float rounding.
// a is [pattern.Rows, q]; evB is [pattern.Cols, q]. Serial because the conv
// layer parallelizes across the batch.
func CSRGradABTEventsSerial(vals []float32, pattern *CSR, a *tensor.Tensor, evB *Events) {
	am, q := dims2(a, "CSRGradABTEvents a")
	if am != pattern.Rows {
		panic(fmt.Sprintf("sparse: CSRGradABTEvents a rows %d vs pattern rows %d", am, pattern.Rows))
	}
	if evB.Rows != pattern.Cols || evB.Cols != q {
		panic(fmt.Sprintf("sparse: CSRGradABTEvents events [%d,%d] vs pattern cols %d, q %d", evB.Rows, evB.Cols, pattern.Cols, q))
	}
	if len(vals) != pattern.NNZ() {
		panic(fmt.Sprintf("sparse: CSRGradABTEvents vals length %d, want %d", len(vals), pattern.NNZ()))
	}
	csrGradABTEventsRows(vals, pattern, a.Data, q, evB, 0, pattern.Rows)
}

// CSRGradATBEventsInto is CSRGradATBInto with the b operand given as the
// event pattern of a binary matrix — the tape-replay form of the linear
// weight gradient: vals[p] += Σ_i a[i,r]·b[i,c] becomes a gather of a's
// column r over the samples that spiked at feature c. The kernel
// column-compresses the event pattern (which samples spiked at each feature)
// and transposes a once, so the inner loop reads one contiguous a row with
// O(spikes-at-c) indexed gathers. a is [batch, pattern.Rows]; evB is
// [batch, pattern.Cols]. Parallelized over pattern rows.
func CSRGradATBEventsInto(vals []float32, pattern *CSR, a *tensor.Tensor, evB *Events) {
	ab, m := dims2(a, "CSRGradATBEvents a")
	if evB.Rows != ab {
		panic(fmt.Sprintf("sparse: CSRGradATBEvents batch dims %d vs %d", ab, evB.Rows))
	}
	if m != pattern.Rows || evB.Cols != pattern.Cols {
		panic(fmt.Sprintf("sparse: CSRGradATBEvents operands [%d,%d]/[%d,%d] vs pattern [%d,%d]", ab, m, evB.Rows, evB.Cols, pattern.Rows, pattern.Cols))
	}
	if len(vals) != pattern.NNZ() {
		panic(fmt.Sprintf("sparse: CSRGradATBEvents vals length %d, want %d", len(vals), pattern.NNZ()))
	}
	ad := a.Data
	aT := make([]float32, m*ab)
	for i := 0; i < ab; i++ {
		for r := 0; r < m; r++ {
			aT[r*ab+i] = ad[i*m+r]
		}
	}
	// Column-compress the events: colPtr/sampleIdx list, per feature c, the
	// ascending sample indices that spiked at c (a counting sort, O(nnz)).
	k := evB.Cols
	colPtr := make([]int32, k+1)
	for _, c := range evB.ColIdx {
		colPtr[c+1]++
	}
	for c := 0; c < k; c++ {
		colPtr[c+1] += colPtr[c]
	}
	sampleIdx := make([]int32, evB.NNZ())
	next := make([]int32, k)
	copy(next, colPtr[:k])
	for i := 0; i < evB.Rows; i++ {
		for p := evB.RowPtr[i]; p < evB.RowPtr[i+1]; p++ {
			c := evB.ColIdx[p]
			sampleIdx[next[c]] = int32(i)
			next[c]++
		}
	}
	rowWork := 2 * (2 + evB.NNZ()/max1(pattern.Rows))
	tensor.ParallelFor(pattern.Rows, rowWork, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			arow := aT[r*ab : (r+1)*ab]
			for p := pattern.RowPtr[r]; p < pattern.RowPtr[r+1]; p++ {
				c := pattern.ColIdx[p]
				clo, chi := colPtr[c], colPtr[c+1]
				if clo == chi {
					continue
				}
				var s float32
				for _, i := range sampleIdx[clo:chi] {
					s += arow[i]
				}
				vals[p] += s
			}
		}
	})
}

// CSC is a compressed-sparse-column view of a weight matrix: column q's
// stored rows are RowIdx[ColPtr[q]:ColPtr[q+1]], ascending, with values
// aligned in Val. It is the access order the event-driven linear forward
// needs (incoming spikes select weight *columns*), derived from the
// mask-keyed CSR pattern.
type CSC struct {
	Rows, Cols int
	// ColPtr has Cols+1 entries delimiting each column's span in RowIdx/Val.
	ColPtr []int32
	RowIdx []int32
	Val    []float32
}

// NewCSCFromCSR transposes a CSR pattern into CSC form (values copied). The
// two views share no storage; re-gather values with GatherValues after
// optimizer steps, and rebuild on mask changes alongside the CSR encoding.
func NewCSCFromCSR(c *CSR) *CSC {
	t := &CSC{
		Rows: c.Rows, Cols: c.Cols,
		ColPtr: make([]int32, c.Cols+1),
		RowIdx: make([]int32, c.NNZ()),
		Val:    make([]float32, c.NNZ()),
	}
	for _, j := range c.ColIdx {
		t.ColPtr[j+1]++
	}
	for q := 0; q < c.Cols; q++ {
		t.ColPtr[q+1] += t.ColPtr[q]
	}
	next := make([]int32, c.Cols)
	copy(next, t.ColPtr[:c.Cols])
	for r := 0; r < c.Rows; r++ {
		for p := c.RowPtr[r]; p < c.RowPtr[r+1]; p++ {
			q := c.ColIdx[p]
			t.RowIdx[next[q]] = int32(r)
			t.Val[next[q]] = c.Val[p]
			next[q]++
		}
	}
	return t
}

// NNZ returns the number of stored non-zeros.
func (c *CSC) NNZ() int { return len(c.Val) }

// GatherValues refreshes Val in place from a dense tensor with Rows·Cols
// elements, keeping the pattern fixed — the CSC counterpart of
// CSR.GatherValues, used between rewire events.
func (c *CSC) GatherValues(w *tensor.Tensor) {
	if w.Size() != c.Rows*c.Cols {
		panic("sparse: CSC.GatherValues size mismatch")
	}
	wd := w.Data
	for q := 0; q < c.Cols; q++ {
		for p := c.ColPtr[q]; p < c.ColPtr[q+1]; p++ {
			c.Val[p] = wd[int(c.RowIdx[p])*c.Cols+q]
		}
	}
}

// MatMulEventsCSCInto computes dst = X·Aᵀ for a binary X [bRows,k] given as
// its event pattern and A in CSC form [m,k] — the dual-sparse linear
// forward: each incoming spike at feature q scatter-adds weight column q
// into the output row. Work is nnz(X) × colDensity(A) instead of the
// weight-only kernel's bRows × nnz(A). Parallelized over X's rows.
func MatMulEventsCSCInto(dst *tensor.Tensor, ev *Events, a *CSC, accumulate bool) {
	if ev.Cols != a.Cols {
		panic(fmt.Sprintf("sparse: MatMulEventsCSC inner dims %d vs %d", ev.Cols, a.Cols))
	}
	dm, dn := dims2(dst, "MatMulEventsCSC dst")
	if dm != ev.Rows || dn != a.Rows {
		panic(fmt.Sprintf("sparse: MatMulEventsCSC dst shape [%d,%d], want [%d,%d]", dm, dn, ev.Rows, a.Rows))
	}
	od := dst.Data
	rowWork := 2 * (1 + a.NNZ())
	tensor.ParallelFor(ev.Rows, rowWork, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			orow := od[i*a.Rows : (i+1)*a.Rows]
			if !accumulate {
				for j := range orow {
					orow[j] = 0
				}
			}
			for e := ev.RowPtr[i]; e < ev.RowPtr[i+1]; e++ {
				q := ev.ColIdx[e]
				for p := a.ColPtr[q]; p < a.ColPtr[q+1]; p++ {
					orow[a.RowIdx[p]] += a.Val[p]
				}
			}
		}
	})
}

// CSRMatMulMaskedInto is CSRMatMulInto restricted to the active columns of
// B: dst[:,j] is computed only where colActive[j] (and zeroed elsewhere
// unless accumulate). colActive[j]=false asserts B's column j is entirely
// zero, so the skipped outputs are exactly zero in the dense result too.
// This is the whole-column event skip for operands that are sparse but not
// binary. Parallelized over A's rows.
func CSRMatMulMaskedInto(dst *tensor.Tensor, a *CSR, b *tensor.Tensor, colActive []bool, accumulate bool) {
	n, act := checkCSRMatMulMasked(dst, a, b, colActive)
	rowWork := len(act) * (1 + a.NNZ()/max1(a.Rows))
	tensor.ParallelFor(a.Rows, 1+rowWork, func(lo, hi int) {
		csrMatMulMaskedRows(dst.Data, a, b.Data, n, act, accumulate, lo, hi)
	})
}

// CSRMatMulMaskedSerialInto is CSRMatMulMaskedInto on the calling goroutine.
func CSRMatMulMaskedSerialInto(dst *tensor.Tensor, a *CSR, b *tensor.Tensor, colActive []bool, accumulate bool) {
	n, act := checkCSRMatMulMasked(dst, a, b, colActive)
	csrMatMulMaskedRows(dst.Data, a, b.Data, n, act, accumulate, 0, a.Rows)
}

func csrMatMulMaskedRows(od []float32, a *CSR, bd []float32, n int, act []int32, accumulate bool, lo, hi int) {
	for r := lo; r < hi; r++ {
		orow := od[r*n : (r+1)*n]
		if !accumulate {
			for j := range orow {
				orow[j] = 0
			}
		}
		for p := a.RowPtr[r]; p < a.RowPtr[r+1]; p++ {
			v := a.Val[p]
			if v == 0 {
				continue
			}
			brow := bd[int(a.ColIdx[p])*n:]
			brow = brow[:n]
			for _, j := range act {
				orow[j] += v * brow[j]
			}
		}
	}
}

func checkCSRMatMulMasked(dst *tensor.Tensor, a *CSR, b *tensor.Tensor, colActive []bool) (int, []int32) {
	n := checkCSRMatMul(dst, a, b)
	if len(colActive) != n {
		panic(fmt.Sprintf("sparse: CSRMatMulMasked colActive length %d, want %d", len(colActive), n))
	}
	act := make([]int32, 0, n)
	for j, a := range colActive {
		if a {
			act = append(act, int32(j))
		}
	}
	return n, act
}

// MatMulDenseCSRTMaskedInto is MatMulDenseCSRTInto restricted to the active
// columns of X: terms whose feature index q has colActive[q]=false are
// skipped. colActive[q]=false asserts X's column q is entirely zero (no
// sample has a spike at feature q), so skipping it never changes the result.
// Parallelized over X's rows.
func MatMulDenseCSRTMaskedInto(dst, x *tensor.Tensor, a *CSR, colActive []bool, accumulate bool) {
	bRows, k := dims2(x, "MatMulDenseCSRTMasked x")
	if k != a.Cols {
		panic(fmt.Sprintf("sparse: MatMulDenseCSRTMasked inner dims %d vs %d", k, a.Cols))
	}
	if len(colActive) != k {
		panic(fmt.Sprintf("sparse: MatMulDenseCSRTMasked colActive length %d, want %d", len(colActive), k))
	}
	dm, dn := dims2(dst, "MatMulDenseCSRTMasked dst")
	if dm != bRows || dn != a.Rows {
		panic(fmt.Sprintf("sparse: MatMulDenseCSRTMasked dst shape [%d,%d], want [%d,%d]", dm, dn, bRows, a.Rows))
	}
	xd, od := x.Data, dst.Data
	rowWork := 2 * (1 + a.NNZ())
	tensor.ParallelFor(bRows, rowWork, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			xrow := xd[i*k : (i+1)*k]
			orow := od[i*a.Rows : (i+1)*a.Rows]
			for r := 0; r < a.Rows; r++ {
				var s float32
				for p := a.RowPtr[r]; p < a.RowPtr[r+1]; p++ {
					if q := a.ColIdx[p]; colActive[q] {
						s += a.Val[p] * xrow[q]
					}
				}
				if accumulate {
					orow[r] += s
				} else {
					orow[r] = s
				}
			}
		}
	})
}
