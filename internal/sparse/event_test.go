package sparse

import (
	"testing"

	"ndsnn/internal/rng"
	"ndsnn/internal/tensor"
)

// spikeMatrix builds a [rows,cols] binary tensor with the given firing rate.
// rate 0 and 1 exercise the all-zero and all-ones edge cases.
func spikeMatrix(rows, cols int, rate float64, r *rng.RNG) *tensor.Tensor {
	t := tensor.New(rows, cols)
	for i := range t.Data {
		if r.Float64() < rate {
			t.Data[i] = 1
		}
	}
	return t
}

// maskedWeights builds a [rows,cols] weight matrix and mask at the given
// density, plus its mask-keyed CSR encoding.
func maskedWeights(rows, cols int, density float64, r *rng.RNG) (*tensor.Tensor, *CSR) {
	w := tensor.New(rows, cols)
	mask := tensor.New(rows, cols)
	for i := range w.Data {
		if r.Float64() < density {
			mask.Data[i] = 1
			w.Data[i] = r.NormFloat32()
		}
	}
	return w, EncodeCSRWithMask(w, mask)
}

// maxAbsDiffT adapts gemm_test.go's maxAbsDiff to tensors.
func maxAbsDiffT(a, b *tensor.Tensor) float64 { return maxAbsDiff(a.Data, b.Data) }

var spikeRates = []float64{0, 0.05, 0.5, 1.0}

func TestEncodeEvents(t *testing.T) {
	r := rng.New(41)
	for _, rate := range spikeRates {
		b := spikeMatrix(9, 13, rate, r)
		ev, ok := EncodeEvents(b)
		if !ok {
			t.Fatalf("rate %v: binary tensor rejected", rate)
		}
		dec := tensor.New(9, 13)
		for row := 0; row < ev.Rows; row++ {
			for e := ev.RowPtr[row]; e < ev.RowPtr[row+1]; e++ {
				dec.Data[row*ev.Cols+int(ev.ColIdx[e])] = 1
			}
		}
		if d := maxAbsDiffT(b, dec); d != 0 {
			t.Fatalf("rate %v: decoded events differ by %v", rate, d)
		}
		wantOcc := float64(ev.NNZ()) / float64(9*13)
		if ev.Occupancy() != wantOcc {
			t.Fatalf("rate %v: occupancy %v, want %v", rate, ev.Occupancy(), wantOcc)
		}
	}
	analog := spikeMatrix(4, 4, 0.5, r)
	analog.Data[3] = 0.25
	if _, ok := EncodeEvents(analog); ok {
		t.Fatal("analog tensor accepted as binary")
	}
}

// TestCSCMatMulEventsMatchesDense is the kernel-level half of the
// event-driven ≡ dense property: A·B via the dual-sparse kernel must be
// bit-identical to the dense product across spike rates including the
// all-zero and all-ones edge cases.
func TestCSCMatMulEventsMatchesDense(t *testing.T) {
	const m, k, n = 12, 40, 18
	for _, rate := range spikeRates {
		for _, density := range []float64{0.08, 0.35, 1} {
			r := rng.New(51 + uint64(rate*100) + uint64(density*10))
			w, c := maskedWeights(m, k, density, r)
			csc := NewCSCFromCSR(c)
			b := spikeMatrix(k, n, rate, r)
			ev, ok := EncodeEvents(b)
			if !ok {
				t.Fatal("binary operand rejected")
			}
			want := tensor.MatMul(w, b)
			got := tensor.New(m, n)
			CSCMatMulEventsSerialInto(got, csc, ev, false)
			if d := maxAbsDiffT(want, got); d != 0 {
				t.Fatalf("rate %v density %v: event kernel differs by %v", rate, density, d)
			}
			// Accumulate mode adds on top of prior contents.
			CSCMatMulEventsSerialInto(got, csc, ev, true)
			doubled := want.Clone()
			doubled.AddInPlace(want)
			if d := maxAbsDiffT(doubled, got); d > 1e-5 {
				t.Fatalf("rate %v density %v: accumulate differs by %v", rate, density, d)
			}
		}
	}
}

// TestFusedTimestepsMatchPerTimestep checks the batched-timestep GEMM — the
// event kernel run once on a FuseTimesteps pattern — against T independent
// per-timestep products.
func TestFusedTimestepsMatchPerTimestep(t *testing.T) {
	const m, k, n, T = 10, 36, 14, 5
	r := rng.New(61)
	_, c := maskedWeights(m, k, 0.2, r)
	csc := NewCSCFromCSR(c)
	evs := make([]*Events, T)
	wants := make([]*tensor.Tensor, T)
	for tt := 0; tt < T; tt++ {
		b := spikeMatrix(k, n, 0.1, r)
		ev, ok := EncodeEvents(b)
		if !ok {
			t.Fatal("binary operand rejected")
		}
		evs[tt] = ev
		wants[tt] = tensor.New(m, n)
		CSCMatMulEventsSerialInto(wants[tt], csc, ev, false)
	}
	fused := FuseTimesteps(evs)
	if fused.Rows != k || fused.Cols != T*n {
		t.Fatalf("fused shape [%d,%d], want [%d,%d]", fused.Rows, fused.Cols, k, T*n)
	}
	dst := tensor.New(m, T*n)
	CSCMatMulEventsSerialInto(dst, csc, fused, false)
	for tt := 0; tt < T; tt++ {
		for row := 0; row < m; row++ {
			for j := 0; j < n; j++ {
				got := dst.Data[row*T*n+tt*n+j]
				want := wants[tt].Data[row*n+j]
				if got != want {
					t.Fatalf("timestep %d [%d,%d]: fused %v, per-timestep %v", tt, row, j, got, want)
				}
			}
		}
	}
}

func TestMatMulEventsCSCMatchesDense(t *testing.T) {
	const batch, in, out = 7, 50, 16
	for _, rate := range spikeRates {
		r := rng.New(71 + uint64(rate*100))
		w, c := maskedWeights(out, in, 0.15, r)
		csc := NewCSCFromCSR(c)
		x := spikeMatrix(batch, in, rate, r)
		ev, ok := EncodeEvents(x)
		if !ok {
			t.Fatal("binary operand rejected")
		}
		want := tensor.MatMulABT(x, w)
		got := tensor.New(batch, out)
		MatMulEventsCSCInto(got, ev, csc, false)
		if d := maxAbsDiffT(want, got); d != 0 {
			t.Fatalf("rate %v: CSC event kernel differs by %v", rate, d)
		}
	}
}

func TestCSCGatherValues(t *testing.T) {
	r := rng.New(81)
	w, c := maskedWeights(9, 21, 0.3, r)
	csc := NewCSCFromCSR(c)
	// Drift the weights as an optimizer step would, re-gather, recompute.
	for i := range w.Data {
		w.Data[i] *= 1.5
	}
	c.GatherValues(w)
	csc.GatherValues(w)
	x := spikeMatrix(4, 21, 0.4, r)
	ev, _ := EncodeEvents(x)
	want := tensor.MatMulABT(x, w)
	got := tensor.New(4, 9)
	MatMulEventsCSCInto(got, ev, csc, false)
	if d := maxAbsDiffT(want, got); d != 0 {
		t.Fatalf("post-gather CSC kernel differs by %v", d)
	}
}

func TestCSRMatMulMaskedMatchesDense(t *testing.T) {
	const m, k, n = 11, 30, 20
	for _, rate := range spikeRates {
		r := rng.New(91 + uint64(rate*100))
		w, c := maskedWeights(m, k, 0.25, r)
		// Non-binary sparse operand: scale spikes by arbitrary values so the
		// masked (not event) path is the right tool.
		b := spikeMatrix(k, n, rate, r)
		for i := range b.Data {
			b.Data[i] *= r.NormFloat32()
		}
		colActive := make([]bool, n)
		for j := 0; j < n; j++ {
			for q := 0; q < k; q++ {
				if b.Data[q*n+j] != 0 {
					colActive[j] = true
					break
				}
			}
		}
		want := tensor.MatMul(w, b)
		got := tensor.New(m, n)
		CSRMatMulMaskedInto(got, c, b, colActive, false)
		if d := maxAbsDiffT(want, got); d != 0 {
			t.Fatalf("rate %v: masked kernel differs by %v", rate, d)
		}
		got.Zero()
		CSRMatMulMaskedSerialInto(got, c, b, colActive, false)
		if d := maxAbsDiffT(want, got); d != 0 {
			t.Fatalf("rate %v: serial masked kernel differs by %v", rate, d)
		}
	}
}

func TestMatMulDenseCSRTMaskedMatchesDense(t *testing.T) {
	const batch, in, out = 6, 44, 13
	for _, rate := range spikeRates {
		r := rng.New(101 + uint64(rate*100))
		w, c := maskedWeights(out, in, 0.2, r)
		x := spikeMatrix(batch, in, rate, r)
		for i := range x.Data {
			x.Data[i] *= r.NormFloat32()
		}
		colActive := make([]bool, in)
		for q := 0; q < in; q++ {
			for i := 0; i < batch; i++ {
				if x.Data[i*in+q] != 0 {
					colActive[q] = true
					break
				}
			}
		}
		want := tensor.MatMulABT(x, w)
		got := tensor.New(batch, out)
		MatMulDenseCSRTMaskedInto(got, x, c, colActive, false)
		if d := maxAbsDiffT(want, got); d != 0 {
			t.Fatalf("rate %v: masked linear kernel differs by %v", rate, d)
		}
	}
}
