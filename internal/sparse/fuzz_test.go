package sparse

import (
	"math"
	"testing"

	"ndsnn/internal/tensor"
)

// Go-native fuzz targets for the event kernels. Each target decodes a small
// structured problem from fuzzer-controlled bytes, computes an independent
// reference (the dense path for float kernels, the exported *Scalar kernels
// for integer ones) and requires exact agreement — the kernels' documented
// contract is bit-identical results, not "close", because they replay the
// serial summation order. The seed corpus (f.Add here plus the checked-in
// testdata/fuzz entries) pins the edge cases a random seed would rarely hit:
// no events at all, every position firing, and single-row shapes. CI runs
// these corpus-only (a plain `go test` executes every seed without fuzzing);
// `go test -fuzz=FuzzName ./internal/sparse` explores from there.

// fuzzByte cycles through fuzzer bytes, treating an empty slice as all-zero.
func fuzzByte(bits []byte, i int) byte {
	if len(bits) == 0 {
		return 0
	}
	return bits[i%len(bits)]
}

// fuzzWeight maps a byte to a weight value with built-in sparsity: ~1/3 of
// bytes decode to an exact zero (a masked-out synapse), the rest to a small
// signed value that is exactly representable in float32.
func fuzzWeight(bits []byte, i int) float32 {
	b := fuzzByte(bits, i)
	if b%3 == 0 {
		return 0
	}
	return float32(int(b)-128) / 32
}

// fuzzBit decodes one {0,1} spike from the byte stream.
func fuzzBit(bits []byte, i int) float32 {
	b := fuzzByte(bits, i)
	if (b>>(uint(i)%8))&1 == 1 {
		return 1
	}
	return 0
}

// FuzzCSCEventForward checks the dual-sparse forward kernels: the serial CSC
// event matmul against a naive dense matmul, and the row-banded parallel
// kernel against the serial one — both exact, for any weight pattern, spike
// pattern and band count the fuzzer can construct.
func FuzzCSCEventForward(f *testing.F) {
	f.Add(uint8(3), uint8(4), uint8(2), []byte{1, 7, 40, 200, 13}, []byte{0xa5, 0x3c})
	f.Add(uint8(2), uint8(3), uint8(2), []byte{5, 9, 77}, []byte{})          // no events at all
	f.Add(uint8(4), uint8(4), uint8(3), []byte{11, 250, 8}, []byte{0xff})    // every position fires
	f.Add(uint8(0), uint8(5), uint8(0), []byte{19, 4, 128, 3}, []byte{0x55}) // single output row, single column
	f.Fuzz(func(t *testing.T, mB, kB, nB uint8, wBits, evBits []byte) {
		m := 1 + int(mB)%6
		k := 1 + int(kB)%6
		n := 1 + int(nB)%5

		w := tensor.New(m, k)
		for i := range w.Data {
			w.Data[i] = fuzzWeight(wBits, i)
		}
		b := tensor.New(k, n)
		for i := range b.Data {
			b.Data[i] = fuzzBit(evBits, i)
		}
		ev, ok := EncodeEvents(b)
		if !ok {
			t.Fatal("EncodeEvents rejected a binary matrix")
		}

		// Dense reference, in the kernels' summation order (ascending inner
		// index): the event kernels only skip exact-zero terms, which can
		// never perturb a float sum.
		want := tensor.New(m, n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				var s float32
				for q := 0; q < k; q++ {
					s += w.Data[i*k+q] * b.Data[q*n+j]
				}
				want.Data[i*n+j] = s
			}
		}

		csr := EncodeCSR(w)
		serial := tensor.New(m, n)
		CSCMatMulEventsSerialInto(serial, NewCSCFromCSR(csr), ev, false)
		for i := range want.Data {
			if serial.Data[i] != want.Data[i] {
				t.Fatalf("serial event kernel [%d]: got %v, dense reference %v (m=%d k=%d n=%d)",
					i, serial.Data[i], want.Data[i], m, k, n)
			}
		}

		for _, bands := range []int{1, 3} {
			par := tensor.New(m, n)
			CSCMatMulEventsInto(par, NewCSCBands(csr, bands), ev, false)
			for i := range want.Data {
				if math.Float32bits(par.Data[i]) != math.Float32bits(serial.Data[i]) {
					t.Fatalf("banded kernel (bands=%d) [%d]: got %v, serial %v", bands, i, par.Data[i], serial.Data[i])
				}
			}
		}
	})
}

// FuzzCSRGradABTEvents checks the tape-replay SDDMM weight gradient: the
// serial event kernel against the dense-operand SDDMM over the decoded spike
// matrix, and the nnz-blocked parallel kernel against the serial one.
func FuzzCSRGradABTEvents(f *testing.F) {
	f.Add(uint8(3), uint8(4), uint8(2), []byte{1, 7, 40, 200}, []byte{90, 180, 14}, []byte{0xa5})
	f.Add(uint8(2), uint8(2), uint8(3), []byte{5, 9}, []byte{66, 7}, []byte{})      // no recorded events
	f.Add(uint8(3), uint8(3), uint8(2), []byte{11, 8}, []byte{3, 99}, []byte{0xff}) // full-rate replay
	f.Add(uint8(0), uint8(0), uint8(4), []byte{19, 4}, []byte{128}, []byte{0x0f})   // 1×1 pattern
	f.Fuzz(func(t *testing.T, mB, kB, qB uint8, wBits, aBits, evBits []byte) {
		m := 1 + int(mB)%6
		k := 1 + int(kB)%6
		q := 1 + int(qB)%6

		w := tensor.New(m, k)
		for i := range w.Data {
			w.Data[i] = fuzzWeight(wBits, i)
		}
		pattern := EncodeCSR(w)
		if pattern.NNZ() == 0 {
			t.Skip("empty pattern: nothing to accumulate into")
		}
		a := tensor.New(m, q)
		for i := range a.Data {
			a.Data[i] = float32(int(fuzzByte(aBits, i))-128) / 32
		}
		bm := tensor.New(k, q)
		for i := range bm.Data {
			bm.Data[i] = fuzzBit(evBits, i)
		}
		evB, ok := EncodeEvents(bm)
		if !ok {
			t.Fatal("EncodeEvents rejected a binary matrix")
		}

		// Dense-operand SDDMM reference over the decoded spike matrix. The
		// event kernel's per-position sum visits the same j ascending, minus
		// exact zeros, so agreement must be exact.
		want := make([]float32, pattern.NNZ())
		CSRGradABTSerial(want, pattern, a, bm)

		serial := make([]float32, pattern.NNZ())
		CSRGradABTEventsSerial(serial, pattern, a, evB)
		for p := range want {
			if serial[p] != want[p] {
				t.Fatalf("serial event SDDMM [%d]: got %v, dense reference %v (m=%d k=%d q=%d)",
					p, serial[p], want[p], m, k, q)
			}
		}

		par := make([]float32, pattern.NNZ())
		CSRGradABTEventsInto(par, pattern, a, evB, 4)
		for p := range serial {
			if math.Float32bits(par[p]) != math.Float32bits(serial[p]) {
				t.Fatalf("parallel event SDDMM (workers=4) [%d]: got %v, serial %v", p, par[p], serial[p])
			}
		}
	})
}

// FuzzCSCAccumulateColumnsInt checks the register-blocked integer event
// accumulates — int8 and the packed-nibble int4 — against their exported
// *Scalar reference kernels: identical accumulators and identical SynOps
// counts for any pattern, level assignment and event-column list.
func FuzzCSCAccumulateColumnsInt(f *testing.F) {
	f.Add(uint8(5), uint8(4), []byte{1, 7, 40, 200, 13, 77}, []byte{0xa5})
	f.Add(uint8(3), uint8(3), []byte{5, 9, 250}, []byte{})      // no incoming spikes
	f.Add(uint8(6), uint8(5), []byte{11, 8, 129}, []byte{0xff}) // every column fires
	f.Add(uint8(0), uint8(0), []byte{19}, []byte{0x01})         // 1×1 matrix
	f.Fuzz(func(t *testing.T, rowsB, colsB uint8, wBits, colBits []byte) {
		m := 1 + int(rowsB)%16
		k := 1 + int(colsB)%16

		// Build matching int8 and packed-int4 CSC views of one fuzzed
		// pattern. Levels: full int8 range for the 8-bit kernel; the same
		// byte's sign-extended low nibble ([-8,7]) for the 4-bit one.
		a8 := &CSCInt8{Rows: m, Cols: k, ColPtr: make([]int32, k+1)}
		a4 := &CSCInt4{Rows: m, Cols: k, ColPtr: make([]int32, k+1)}
		var nibbles []int32
		for q := 0; q < k; q++ {
			for i := 0; i < m; i++ {
				b := fuzzByte(wBits, q*m+i)
				if b%3 == 0 { // masked-out synapse
					continue
				}
				a8.RowIdx = append(a8.RowIdx, int32(i))
				a8.Q = append(a8.Q, int8(b))
				a4.RowIdx = append(a4.RowIdx, int32(i))
				nibbles = append(nibbles, int32(int8(b<<4)>>4))
			}
			a8.ColPtr[q+1] = int32(len(a8.RowIdx))
			a4.ColPtr[q+1] = int32(len(a4.RowIdx))
		}
		a4.Packed = make([]byte, (len(nibbles)+1)/2)
		for p, lv := range nibbles {
			nib := byte(lv) & 0xF
			if p&1 == 0 {
				a4.Packed[p>>1] |= nib
			} else {
				a4.Packed[p>>1] |= nib << 4
			}
		}
		var cols []int32
		for q := 0; q < k; q++ {
			if fuzzBit(colBits, q) == 1 {
				cols = append(cols, int32(q))
			}
		}

		acc8 := make([]int32, m)
		ref8 := make([]int32, m)
		ops8 := CSCAccumulateColumnsInt8(acc8, a8, cols)
		wops8 := CSCAccumulateColumnsInt8Scalar(ref8, a8, cols)
		if ops8 != wops8 {
			t.Fatalf("int8 SynOps: unrolled %d, scalar %d", ops8, wops8)
		}
		for i := range ref8 {
			if acc8[i] != ref8[i] {
				t.Fatalf("int8 acc[%d]: unrolled %d, scalar %d (m=%d k=%d nnz=%d)",
					i, acc8[i], ref8[i], m, k, a8.NNZ())
			}
		}

		acc4 := make([]int32, m)
		ref4 := make([]int32, m)
		ops4 := CSCAccumulateColumnsInt4(acc4, a4, cols)
		wops4 := CSCAccumulateColumnsInt4Scalar(ref4, a4, cols)
		if ops4 != wops4 {
			t.Fatalf("int4 SynOps: unrolled %d, scalar %d", ops4, wops4)
		}
		for i := range ref4 {
			if acc4[i] != ref4[i] {
				t.Fatalf("int4 acc[%d]: unrolled %d, scalar %d (m=%d k=%d nnz=%d)",
					i, acc4[i], ref4[i], m, k, a4.NNZ())
			}
		}
		// The packed decode itself must match the nibble list the matrix was
		// built from.
		for p := range nibbles {
			if a4.Level(int32(p)) != nibbles[p] {
				t.Fatalf("int4 Level(%d): got %d, packed %d", p, a4.Level(int32(p)), nibbles[p])
			}
		}
	})
}
