package sparse

import (
	"fmt"

	"ndsnn/internal/tensor"
)

// CSR GEMM kernels: the sparsity-aware compute engine behind Conv2d/Linear.
// All kernels compute exactly what their dense counterparts in
// internal/tensor compute, but touch only the stored (active) positions, so
// training cost scales with live-weight density instead of layer size.
//
// Accumulation visits non-zeros in the same ascending-index order as the
// dense kernels (which skip exact zeros), so for finite inputs the results
// are bit-identical to the dense path.
//
// Naming: the CSR operand is A. "ATB"/"ABT" follow the dense kernel
// convention (Aᵀ·B, A·Bᵀ); the MatMulDense* kernels put the dense operand on
// the left, which lets batch-major activations parallelize over batch rows.

// CSRMatMulInto computes dst = A·B (or dst += A·B when accumulate) for A in
// CSR form [m,k] and dense B [k,n]. Parallelized over A's rows. This is the
// conv forward primitive: sparse filters × dense im2col columns.
func CSRMatMulInto(dst *tensor.Tensor, a *CSR, b *tensor.Tensor, accumulate bool) {
	n := checkCSRMatMul(dst, a, b)
	rowWork := n * (1 + a.NNZ()/max1(a.Rows))
	tensor.ParallelFor(a.Rows, rowWork, func(lo, hi int) {
		csrMatMulRows(dst.Data, a, b.Data, n, accumulate, lo, hi)
	})
}

// CSRMatMulSerialInto is CSRMatMulInto on the calling goroutine, for callers
// that already parallelize across the batch (the conv layers).
func CSRMatMulSerialInto(dst *tensor.Tensor, a *CSR, b *tensor.Tensor, accumulate bool) {
	n := checkCSRMatMul(dst, a, b)
	csrMatMulRows(dst.Data, a, b.Data, n, accumulate, 0, a.Rows)
}

func csrMatMulRows(od []float32, a *CSR, bd []float32, n int, accumulate bool, lo, hi int) {
	for r := lo; r < hi; r++ {
		orow := od[r*n : (r+1)*n]
		if !accumulate {
			for j := range orow {
				orow[j] = 0
			}
		}
		for p := a.RowPtr[r]; p < a.RowPtr[r+1]; p++ {
			v := a.Val[p]
			if v == 0 {
				continue
			}
			brow := bd[int(a.ColIdx[p])*n:]
			brow = brow[:n]
			for j, bv := range brow {
				orow[j] += v * bv
			}
		}
	}
}

func checkCSRMatMul(dst *tensor.Tensor, a *CSR, b *tensor.Tensor) int {
	bk, n := dims2(b, "CSRMatMul b")
	if bk != a.Cols {
		panic(fmt.Sprintf("sparse: CSRMatMul inner dims %d vs %d", a.Cols, bk))
	}
	dm, dn := dims2(dst, "CSRMatMul dst")
	if dm != a.Rows || dn != n {
		panic(fmt.Sprintf("sparse: CSRMatMul dst shape [%d,%d], want [%d,%d]", dm, dn, a.Rows, n))
	}
	return n
}

// CSRMatMulATBInto computes dst = Aᵀ·B (or += when accumulate) for A in CSR
// form [m,k] and dense B [m,n]; dst is [k,n]. Parallelized over output
// columns (each worker owns a column slab, so the row-major scatter is
// race-free). This is the conv backward-data primitive: dcol = Wᵀ·dy.
func CSRMatMulATBInto(dst *tensor.Tensor, a *CSR, b *tensor.Tensor, accumulate bool) {
	n := checkCSRMatMulATB(dst, a, b)
	// Each output column receives one multiply-add per stored non-zero, so
	// the per-index cost handed to ParallelFor is ~NNZ, not NNZ/n.
	colWork := 2 * (1 + a.NNZ())
	tensor.ParallelFor(n, colWork, func(lo, hi int) {
		csrMatMulATBCols(dst.Data, a, b.Data, n, accumulate, lo, hi)
	})
}

// CSRMatMulATBSerialInto is CSRMatMulATBInto on the calling goroutine.
func CSRMatMulATBSerialInto(dst *tensor.Tensor, a *CSR, b *tensor.Tensor, accumulate bool) {
	n := checkCSRMatMulATB(dst, a, b)
	csrMatMulATBCols(dst.Data, a, b.Data, n, accumulate, 0, n)
}

func csrMatMulATBCols(od []float32, a *CSR, bd []float32, n int, accumulate bool, lo, hi int) {
	if !accumulate {
		for c := 0; c < a.Cols; c++ {
			row := od[c*n+lo : c*n+hi]
			for j := range row {
				row[j] = 0
			}
		}
	}
	for r := 0; r < a.Rows; r++ {
		brow := bd[r*n+lo : r*n+hi]
		for p := a.RowPtr[r]; p < a.RowPtr[r+1]; p++ {
			v := a.Val[p]
			if v == 0 {
				continue
			}
			c := int(a.ColIdx[p])
			orow := od[c*n+lo : c*n+hi]
			for j, bv := range brow {
				orow[j] += v * bv
			}
		}
	}
}

func checkCSRMatMulATB(dst *tensor.Tensor, a *CSR, b *tensor.Tensor) int {
	bm, n := dims2(b, "CSRMatMulATB b")
	if bm != a.Rows {
		panic(fmt.Sprintf("sparse: CSRMatMulATB inner dims %d vs %d", a.Rows, bm))
	}
	dk, dn := dims2(dst, "CSRMatMulATB dst")
	if dk != a.Cols || dn != n {
		panic(fmt.Sprintf("sparse: CSRMatMulATB dst shape [%d,%d], want [%d,%d]", dk, dn, a.Cols, n))
	}
	return n
}

// MatMulDenseCSRTInto computes dst = X·Aᵀ (or += when accumulate) for dense
// X [bRows,k] and A in CSR form [m,k]; dst is [bRows,m]. Parallelized over
// X's rows. This is the linear forward primitive: y = x·Wᵀ.
func MatMulDenseCSRTInto(dst, x *tensor.Tensor, a *CSR, accumulate bool) {
	bRows, k := dims2(x, "MatMulDenseCSRT x")
	if k != a.Cols {
		panic(fmt.Sprintf("sparse: MatMulDenseCSRT inner dims %d vs %d", k, a.Cols))
	}
	dm, dn := dims2(dst, "MatMulDenseCSRT dst")
	if dm != bRows || dn != a.Rows {
		panic(fmt.Sprintf("sparse: MatMulDenseCSRT dst shape [%d,%d], want [%d,%d]", dm, dn, bRows, a.Rows))
	}
	xd, od := x.Data, dst.Data
	rowWork := 2 * (1 + a.NNZ())
	tensor.ParallelFor(bRows, rowWork, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			xrow := xd[i*k : (i+1)*k]
			orow := od[i*a.Rows : (i+1)*a.Rows]
			for r := 0; r < a.Rows; r++ {
				var s float32
				for p := a.RowPtr[r]; p < a.RowPtr[r+1]; p++ {
					s += a.Val[p] * xrow[a.ColIdx[p]]
				}
				if accumulate {
					orow[r] += s
				} else {
					orow[r] = s
				}
			}
		}
	})
}

// MatMulDenseCSRInto computes dst = X·A (or += when accumulate) for dense
// X [bRows,m] and A in CSR form [m,k]; dst is [bRows,k]. Parallelized over
// X's rows. This is the linear backward-data primitive: dx = dy·W.
func MatMulDenseCSRInto(dst, x *tensor.Tensor, a *CSR, accumulate bool) {
	bRows, m := dims2(x, "MatMulDenseCSR x")
	if m != a.Rows {
		panic(fmt.Sprintf("sparse: MatMulDenseCSR inner dims %d vs %d", m, a.Rows))
	}
	dm, dn := dims2(dst, "MatMulDenseCSR dst")
	if dm != bRows || dn != a.Cols {
		panic(fmt.Sprintf("sparse: MatMulDenseCSR dst shape [%d,%d], want [%d,%d]", dm, dn, bRows, a.Cols))
	}
	xd, od := x.Data, dst.Data
	rowWork := 2 * (1 + a.NNZ())
	tensor.ParallelFor(bRows, rowWork, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			xrow := xd[i*m : (i+1)*m]
			orow := od[i*a.Cols : (i+1)*a.Cols]
			if !accumulate {
				for j := range orow {
					orow[j] = 0
				}
			}
			for r, v := range xrow {
				if v == 0 {
					continue
				}
				for p := a.RowPtr[r]; p < a.RowPtr[r+1]; p++ {
					orow[a.ColIdx[p]] += v * a.Val[p]
				}
			}
		}
	})
}

// CSRGradABTSerial accumulates vals[p] += Σ_j a[r,j]·b[c,j] for every stored
// position (r,c) of the pattern — the sampled dense·denseᵀ product (SDDMM)
// that computes conv weight gradients only where the mask is live:
// dW[f,q] = Σ_p dy[f,p]·col[q,p]. a is [pattern.Rows, q], b is
// [pattern.Cols, q], vals is aligned with pattern.Val. Serial because the
// conv layer already parallelizes across the batch.
func CSRGradABTSerial(vals []float32, pattern *CSR, a, b *tensor.Tensor) {
	q := checkCSRGrad(vals, pattern, a, b, pattern.Rows, pattern.Cols)
	csrGradABTRows(vals, pattern, a.Data, b.Data, q, 0, pattern.Rows)
}

// CSRGradATBInto accumulates vals[p] += Σ_i a[i,r]·b[i,c] for every stored
// position (r,c) of the pattern — the SDDMM form of dW = dyᵀ·x restricted to
// active positions (the linear layer's weight gradient). a is
// [batch, pattern.Rows], b is [batch, pattern.Cols]. Parallelized over
// pattern rows (vals is indexed by p, so writes never race).
func CSRGradATBInto(vals []float32, pattern *CSR, a, b *tensor.Tensor) {
	ab, m := dims2(a, "CSRGradATB a")
	bb, k := dims2(b, "CSRGradATB b")
	if ab != bb {
		panic(fmt.Sprintf("sparse: CSRGradATB batch dims %d vs %d", ab, bb))
	}
	if m != pattern.Rows || k != pattern.Cols {
		panic(fmt.Sprintf("sparse: CSRGradATB operands [%d,%d]/[%d,%d] vs pattern [%d,%d]", ab, m, bb, k, pattern.Rows, pattern.Cols))
	}
	if len(vals) != pattern.NNZ() {
		panic(fmt.Sprintf("sparse: CSRGradATB vals length %d, want %d", len(vals), pattern.NNZ()))
	}
	ad, bd := a.Data, b.Data
	rowWork := ab * (2 + pattern.NNZ()/max1(pattern.Rows))
	tensor.ParallelFor(pattern.Rows, rowWork, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			for p := pattern.RowPtr[r]; p < pattern.RowPtr[r+1]; p++ {
				c := int(pattern.ColIdx[p])
				var s float32
				for i := 0; i < ab; i++ {
					s += ad[i*m+r] * bd[i*k+c]
				}
				vals[p] += s
			}
		}
	})
}

// CSRGradATBTransposedInto computes exactly what CSRGradATBInto computes —
// vals[p] += Σ_i a[i,r]·b[i,c] at every stored position — but first
// transposes both operands into [rows, batch] scratch so the per-position dot
// product streams two contiguous rows instead of walking a and b
// column-strided. The O(batch·(m+k)) transpose is amortized over
// nnz(pattern) dot products of length batch, which wins on wide layers where
// the column stride defeats the cache; the summation order per position is
// unchanged (i ascending), so results are bit-identical to CSRGradATBInto.
// Parallelized over pattern rows.
func CSRGradATBTransposedInto(vals []float32, pattern *CSR, a, b *tensor.Tensor) {
	ab, m := dims2(a, "CSRGradATBTransposed a")
	bb, k := dims2(b, "CSRGradATBTransposed b")
	if ab != bb {
		panic(fmt.Sprintf("sparse: CSRGradATBTransposed batch dims %d vs %d", ab, bb))
	}
	if m != pattern.Rows || k != pattern.Cols {
		panic(fmt.Sprintf("sparse: CSRGradATBTransposed operands [%d,%d]/[%d,%d] vs pattern [%d,%d]", ab, m, bb, k, pattern.Rows, pattern.Cols))
	}
	if len(vals) != pattern.NNZ() {
		panic(fmt.Sprintf("sparse: CSRGradATBTransposed vals length %d, want %d", len(vals), pattern.NNZ()))
	}
	ad, bd := a.Data, b.Data
	aT := make([]float32, m*ab)
	for i := 0; i < ab; i++ {
		row := ad[i*m : (i+1)*m]
		for r, v := range row {
			aT[r*ab+i] = v
		}
	}
	bT := make([]float32, k*ab)
	for i := 0; i < ab; i++ {
		row := bd[i*k : (i+1)*k]
		for c, v := range row {
			bT[c*ab+i] = v
		}
	}
	rowWork := ab * (2 + pattern.NNZ()/max1(pattern.Rows))
	tensor.ParallelFor(pattern.Rows, rowWork, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			arow := aT[r*ab : (r+1)*ab]
			for p := pattern.RowPtr[r]; p < pattern.RowPtr[r+1]; p++ {
				brow := bT[int(pattern.ColIdx[p])*ab:]
				brow = brow[:ab]
				var s float32
				for i, av := range arow {
					s += av * brow[i]
				}
				vals[p] += s
			}
		}
	})
}

func checkCSRGrad(vals []float32, pattern *CSR, a, b *tensor.Tensor, wantARows, wantBRows int) int {
	am, q := dims2(a, "CSRGrad a")
	bk, q2 := dims2(b, "CSRGrad b")
	if q != q2 {
		panic(fmt.Sprintf("sparse: CSRGrad inner dims %d vs %d", q, q2))
	}
	if am != wantARows || bk != wantBRows {
		panic(fmt.Sprintf("sparse: CSRGrad operands [%d,·]/[%d,·] vs pattern [%d,%d]", am, bk, wantARows, wantBRows))
	}
	if len(vals) != pattern.NNZ() {
		panic(fmt.Sprintf("sparse: CSRGrad vals length %d, want %d", len(vals), pattern.NNZ()))
	}
	return q
}

// AddValsInto scatter-adds pattern-aligned values into a dense tensor with
// pattern.Rows·pattern.Cols elements: dst[r,ColIdx[p]] += vals[p]. Used to
// fold sparse weight-gradient accumulators back into the dense Grad buffer.
func AddValsInto(dst *tensor.Tensor, pattern *CSR, vals []float32) {
	if dst.Size() != pattern.Rows*pattern.Cols {
		panic("sparse: AddValsInto size mismatch")
	}
	if len(vals) != pattern.NNZ() {
		panic(fmt.Sprintf("sparse: AddValsInto vals length %d, want %d", len(vals), pattern.NNZ()))
	}
	od := dst.Data
	for r := 0; r < pattern.Rows; r++ {
		base := r * pattern.Cols
		for p := pattern.RowPtr[r]; p < pattern.RowPtr[r+1]; p++ {
			od[base+int(pattern.ColIdx[p])] += vals[p]
		}
	}
}

func dims2(t *tensor.Tensor, what string) (int, int) {
	if t.NumDims() != 2 {
		panic(fmt.Sprintf("sparse: %s must be 2-D, got shape %v", what, t.Shape()))
	}
	return t.Dim(0), t.Dim(1)
}

func max1(n int) int {
	if n < 1 {
		return 1
	}
	return n
}
