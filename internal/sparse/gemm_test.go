package sparse

import (
	"math"
	"testing"

	"ndsnn/internal/rng"
	"ndsnn/internal/tensor"
)

// randMasked returns a [rows,cols] matrix with ~density non-zeros, its 0/1
// mask, and a few active-but-exactly-zero positions (freshly grown weights).
func randMasked(r *rng.RNG, rows, cols int, density float64) (w, mask *tensor.Tensor) {
	w = tensor.New(rows, cols)
	mask = tensor.New(rows, cols)
	for i := range w.Data {
		if r.Float64() < density {
			mask.Data[i] = 1
			if r.Float64() < 0.1 {
				w.Data[i] = 0 // active zero: must stay in the pattern
			} else {
				w.Data[i] = r.NormFloat32()
			}
		}
	}
	return w, mask
}

func randDense(r *rng.RNG, shape ...int) *tensor.Tensor {
	t := tensor.New(shape...)
	for i := range t.Data {
		t.Data[i] = r.NormFloat32()
	}
	return t
}

func maxAbsDiff(a, b []float32) float64 {
	var m float64
	for i := range a {
		d := math.Abs(float64(a[i] - b[i]))
		if d > m {
			m = d
		}
	}
	return m
}

func TestEncodeCSRWithMaskKeepsZeroActives(t *testing.T) {
	w := tensor.New(2, 3)
	mask := tensor.New(2, 3)
	w.Data = []float32{0, 1.5, 0, 0, 0, -2}
	mask.Data = []float32{1, 1, 0, 0, 1, 1} // (0,0) and (1,1) are active zeros

	if got := EncodeCSR(w).NNZ(); got != 2 {
		t.Fatalf("EncodeCSR stored %d values, want 2 (drops active zeros by design)", got)
	}
	c := EncodeCSRWithMask(w, mask)
	if c.NNZ() != 4 {
		t.Fatalf("EncodeCSRWithMask stored %d values, want 4 (mask topology)", c.NNZ())
	}
	// Round-trip: the pattern must equal the mask exactly.
	got := tensor.New(2, 3)
	for r := 0; r < c.Rows; r++ {
		for p := c.RowPtr[r]; p < c.RowPtr[r+1]; p++ {
			got.Data[r*c.Cols+int(c.ColIdx[p])] = 1
		}
	}
	for i := range mask.Data {
		if got.Data[i] != mask.Data[i] {
			t.Fatalf("pattern[%d] = %v, mask = %v: topology lost in round-trip", i, got.Data[i], mask.Data[i])
		}
	}
	if d := maxAbsDiff(c.Decode().Data, w.Data); d != 0 {
		t.Fatalf("decode differs from source by %v", d)
	}
}

func TestEncodeCSRWithMaskRoundTripRandom(t *testing.T) {
	r := rng.New(42)
	for _, density := range []float64{0.01, 0.1, 0.5, 1.0} {
		w, mask := randMasked(r, 17, 29, density)
		c := EncodeCSRWithMask(w, mask)
		active := 0
		for _, m := range mask.Data {
			if m != 0 {
				active++
			}
		}
		if c.NNZ() != active {
			t.Fatalf("density %v: NNZ %d != active %d", density, c.NNZ(), active)
		}
		if d := maxAbsDiff(c.Decode().Data, w.Data); d != 0 {
			t.Fatalf("density %v: decode differs by %v", density, d)
		}
	}
}

func TestGatherValuesRefreshesInPlace(t *testing.T) {
	r := rng.New(7)
	w, mask := randMasked(r, 9, 13, 0.3)
	c := EncodeCSRWithMask(w, mask)
	// Simulate optimizer steps: perturb every active value, keep topology.
	for i, m := range mask.Data {
		if m != 0 {
			w.Data[i] += r.NormFloat32()
		}
	}
	c.GatherValues(w)
	if d := maxAbsDiff(c.Decode().Data, w.Data); d != 0 {
		t.Fatalf("gathered values differ by %v", d)
	}
}

// kernelShapes spans tall, wide and square operands across the density range
// the Eq. 4 ramp reaches.
var kernelShapes = []struct{ m, k, n int }{
	{1, 1, 1}, {3, 7, 5}, {16, 64, 9}, {64, 16, 33}, {31, 31, 31},
}

var kernelDensities = []float64{0, 0.01, 0.1, 0.5, 1.0}

func TestCSRMatMulMatchesDense(t *testing.T) {
	r := rng.New(1)
	for _, s := range kernelShapes {
		for _, d := range kernelDensities {
			w, mask := randMasked(r, s.m, s.k, d)
			b := randDense(r, s.k, s.n)
			a := EncodeCSRWithMask(w, mask)
			want := tensor.MatMul(w, b)

			got := tensor.New(s.m, s.n)
			CSRMatMulInto(got, a, b, false)
			if diff := maxAbsDiff(got.Data, want.Data); diff > 1e-5 {
				t.Fatalf("[%d,%d]x[%d,%d] d=%v: CSRMatMul differs by %v", s.m, s.k, s.k, s.n, d, diff)
			}
			// Accumulate: dst pre-seeded, expect seed+product.
			seed := randDense(r, s.m, s.n)
			got2 := seed.Clone()
			CSRMatMulSerialInto(got2, a, b, true)
			for i := range got2.Data {
				if diff := math.Abs(float64(got2.Data[i] - (seed.Data[i] + want.Data[i]))); diff > 1e-5 {
					t.Fatalf("d=%v: accumulate differs by %v", d, diff)
				}
			}
		}
	}
}

func TestCSRMatMulATBMatchesDense(t *testing.T) {
	r := rng.New(2)
	for _, s := range kernelShapes {
		for _, d := range kernelDensities {
			w, mask := randMasked(r, s.m, s.k, d)
			b := randDense(r, s.m, s.n)
			a := EncodeCSRWithMask(w, mask)
			want := tensor.MatMulATB(w, b)

			got := tensor.New(s.k, s.n)
			CSRMatMulATBInto(got, a, b, false)
			if diff := maxAbsDiff(got.Data, want.Data); diff > 1e-5 {
				t.Fatalf("shape %+v d=%v: CSRMatMulATB differs by %v", s, d, diff)
			}
			got.Zero()
			CSRMatMulATBSerialInto(got, a, b, false)
			if diff := maxAbsDiff(got.Data, want.Data); diff > 1e-5 {
				t.Fatalf("shape %+v d=%v: serial CSRMatMulATB differs by %v", s, d, diff)
			}
		}
	}
}

func TestMatMulDenseCSRTMatchesDense(t *testing.T) {
	r := rng.New(3)
	for _, s := range kernelShapes {
		for _, d := range kernelDensities {
			w, mask := randMasked(r, s.m, s.k, d) // weight [out=m, in=k]
			x := randDense(r, s.n, s.k)           // batch n
			a := EncodeCSRWithMask(w, mask)
			want := tensor.MatMulABT(x, w)

			got := tensor.New(s.n, s.m)
			MatMulDenseCSRTInto(got, x, a, false)
			if diff := maxAbsDiff(got.Data, want.Data); diff > 1e-5 {
				t.Fatalf("shape %+v d=%v: MatMulDenseCSRT differs by %v", s, d, diff)
			}
		}
	}
}

func TestMatMulDenseCSRMatchesDense(t *testing.T) {
	r := rng.New(4)
	for _, s := range kernelShapes {
		for _, d := range kernelDensities {
			w, mask := randMasked(r, s.m, s.k, d)
			x := randDense(r, s.n, s.m)
			a := EncodeCSRWithMask(w, mask)
			want := tensor.MatMul(x, w)

			got := tensor.New(s.n, s.k)
			MatMulDenseCSRInto(got, x, a, false)
			if diff := maxAbsDiff(got.Data, want.Data); diff > 1e-5 {
				t.Fatalf("shape %+v d=%v: MatMulDenseCSR differs by %v", s, d, diff)
			}
		}
	}
}

func TestCSRGradABTMatchesDenseAtActivePositions(t *testing.T) {
	r := rng.New(5)
	for _, s := range kernelShapes {
		for _, d := range kernelDensities {
			w, mask := randMasked(r, s.m, s.k, d)
			pat := EncodeCSRWithMask(w, mask)
			dy := randDense(r, s.m, s.n)
			colT := randDense(r, s.k, s.n)
			want := tensor.MatMulABT(dy, colT) // dense dW [m,k]

			vals := make([]float32, pat.NNZ())
			CSRGradABTSerial(vals, pat, dy, colT)
			grad := tensor.New(s.m, s.k)
			AddValsInto(grad, pat, vals)
			for i, m := range mask.Data {
				if m != 0 {
					if diff := math.Abs(float64(grad.Data[i] - want.Data[i])); diff > 1e-5 {
						t.Fatalf("shape %+v d=%v: active grad[%d] differs by %v", s, d, i, diff)
					}
				} else if grad.Data[i] != 0 {
					t.Fatalf("shape %+v d=%v: inactive grad[%d] = %v, want 0", s, d, i, grad.Data[i])
				}
			}
		}
	}
}

func TestCSRGradATBMatchesDenseAtActivePositions(t *testing.T) {
	r := rng.New(6)
	for _, s := range kernelShapes {
		for _, d := range kernelDensities {
			w, mask := randMasked(r, s.m, s.k, d) // pattern [out=m, in=k]
			pat := EncodeCSRWithMask(w, mask)
			dy := randDense(r, s.n, s.m) // [batch, out]
			x := randDense(r, s.n, s.k)  // [batch, in]
			want := tensor.MatMulATB(dy, x)

			vals := make([]float32, pat.NNZ())
			CSRGradATBInto(vals, pat, dy, x)
			grad := tensor.New(s.m, s.k)
			AddValsInto(grad, pat, vals)
			for i, m := range mask.Data {
				if m != 0 {
					if diff := math.Abs(float64(grad.Data[i] - want.Data[i])); diff > 1e-5 {
						t.Fatalf("shape %+v d=%v: active grad[%d] differs by %v", s, d, i, diff)
					}
				}
			}
		}
	}
}
