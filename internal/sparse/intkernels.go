package sparse

import "fmt"

// Integer event kernels: the deployed-arithmetic half of the event-driven
// story. The float kernels in event.go make inference work scale with
// weightDensity × spikeRate; the kernels here additionally compute in the
// integer precision the Sec. III-D platforms actually ship (Loihi 8-bit,
// HICANN 4-bit) — per incoming spike, one signed-integer column accumulate
// into an int32 accumulator, mirroring CSCMatMulEventsSerialInto with the
// multiply dropped entirely (binary events × integer levels = adds). The
// accumulator only returns to float at the layer boundary, where a single
// per-channel requantization scale applies (see internal/quant.QCSR).
//
// The primary accumulates are register-blocked: four (row index, level)
// pairs are kept in flight per iteration, which strips most of the per-entry
// loop and bounds-check overhead that made the scalar forms run at float
// speed (the ROADMAP "Integer SIMD" latency item). Integer accumulation is
// exact at any order, and the unrolled loops apply the same adds
// sequentially, so results are identical to the *Scalar reference kernels —
// which stay exported as the pinned baselines for tests and the
// parallel-kernels benchmark.

// CSCInt8 is a column-compressed weight matrix quantized to signed 8-bit
// levels: column q's stored rows are RowIdx[ColPtr[q]:ColPtr[q+1]],
// ascending, with levels aligned in Q. Values are levels, not weights —
// dequantize with the owning QCSR's per-row scale.
type CSCInt8 struct {
	Rows, Cols int
	// ColPtr has Cols+1 entries delimiting each column's span in RowIdx/Q.
	ColPtr []int32
	RowIdx []int32
	// Q holds the signed 8-bit quantized levels.
	Q []int8
}

// NNZ returns the number of stored synapses.
func (c *CSCInt8) NNZ() int { return len(c.RowIdx) }

// CSCAccumulateColumnsInt8 is the int8 event kernel: for every event column
// q in cols (the flat indices of one timestep's incoming spikes), it
// accumulates weight column q into the int32 accumulator —
// acc[RowIdx[p]] += Q[p] for each stored synapse p of the column — with the
// register-blocked 4×-unrolled inner loop. Integer accumulation is exact, so
// the result is identical to CSCAccumulateColumnsInt8Scalar. It returns the
// number of accumulates performed (the SynOps of the call).
func CSCAccumulateColumnsInt8(acc []int32, a *CSCInt8, cols []int32) int64 {
	if len(acc) != a.Rows {
		panic(fmt.Sprintf("sparse: CSCAccumulateColumnsInt8 acc length %d, want %d", len(acc), a.Rows))
	}
	var ops int64
	for _, q := range cols {
		lo, hi := a.ColPtr[q], a.ColPtr[q+1]
		idx := a.RowIdx[lo:hi]
		lev := a.Q[lo:hi:hi]
		ops += int64(len(idx))
		n := len(idx) &^ 3
		for p := 0; p < n; p += 4 {
			i0, i1, i2, i3 := idx[p], idx[p+1], idx[p+2], idx[p+3]
			q0, q1, q2, q3 := lev[p], lev[p+1], lev[p+2], lev[p+3]
			acc[i0] += int32(q0)
			acc[i1] += int32(q1)
			acc[i2] += int32(q2)
			acc[i3] += int32(q3)
		}
		for p := n; p < len(idx); p++ {
			acc[idx[p]] += int32(lev[p])
		}
	}
	return ops
}

// CSCAccumulateColumnsInt8Scalar is the scalar reference form of
// CSCAccumulateColumnsInt8: one load-add-store per stored synapse, no
// unrolling. It computes the identical result and is kept exported as the
// baseline the unrolled kernel is benchmarked and equivalence-tested
// against.
func CSCAccumulateColumnsInt8Scalar(acc []int32, a *CSCInt8, cols []int32) int64 {
	if len(acc) != a.Rows {
		panic(fmt.Sprintf("sparse: CSCAccumulateColumnsInt8Scalar acc length %d, want %d", len(acc), a.Rows))
	}
	var ops int64
	for _, q := range cols {
		for p := a.ColPtr[q]; p < a.ColPtr[q+1]; p++ {
			acc[a.RowIdx[p]] += int32(a.Q[p])
			ops++
		}
	}
	return ops
}

// addEventsUnrolledInt32 is addEventsUnrolled for the int32 accumulators of
// the integer event matmuls: orow[j] += v at every event column j, four
// indexed adds in flight per iteration. Exact (integer) at any order.
func addEventsUnrolledInt32(orow []int32, v int32, evRow []int32) {
	n := len(evRow) &^ 3
	for e := 0; e < n; e += 4 {
		j0, j1, j2, j3 := evRow[e], evRow[e+1], evRow[e+2], evRow[e+3]
		orow[j0] += v
		orow[j1] += v
		orow[j2] += v
		orow[j3] += v
	}
	for _, j := range evRow[n:] {
		orow[j] += v
	}
}

// CSCMatMulEventsInt8SerialInto computes dst = A·B for A in int8 CSC form
// [m,k] and a binary B [k,n] given as its event pattern — the integer twin
// of CSCMatMulEventsSerialInto, with dst an int32 accumulator laid out
// row-major [m,n]. Multiplication by {0,1} spikes degenerates to integer
// accumulation of levels, which is exact at any summation order; the inner
// event loop is register-blocked like the float kernel's.
func CSCMatMulEventsInt8SerialInto(dst []int32, a *CSCInt8, ev *Events, accumulate bool) {
	n := checkCSCMatMulEventsInt(len(dst), a.Rows, a.Cols, ev)
	if !accumulate {
		for i := range dst {
			dst[i] = 0
		}
	}
	for q := 0; q < ev.Rows; q++ {
		evRow := ev.ColIdx[ev.RowPtr[q]:ev.RowPtr[q+1]]
		if len(evRow) == 0 {
			continue
		}
		for p := a.ColPtr[q]; p < a.ColPtr[q+1]; p++ {
			v := int32(a.Q[p])
			orow := dst[int(a.RowIdx[p])*n:]
			addEventsUnrolledInt32(orow[:n], v, evRow)
		}
	}
}

// CSCInt4 is CSCInt8 with the levels packed two per byte (low nibble =
// even entry, high nibble = odd entry, sign-extended on read) — the HICANN
// 4-bit deployment layout. The kernels unpack nibbles inline, so packed
// storage is also what is computed from.
type CSCInt4 struct {
	Rows, Cols int
	// ColPtr has Cols+1 entries delimiting each column's span in RowIdx.
	ColPtr []int32
	RowIdx []int32
	// Packed holds ⌈nnz/2⌉ bytes of two-per-byte signed 4-bit levels.
	Packed []byte
}

// NNZ returns the number of stored synapses.
func (c *CSCInt4) NNZ() int { return len(c.RowIdx) }

// Level returns the sign-extended 4-bit level of stored entry p.
func (c *CSCInt4) Level(p int32) int32 {
	b := c.Packed[p>>1]
	if p&1 == 0 {
		return int32(int8(b<<4) >> 4)
	}
	return int32(int8(b) >> 4)
}

// CSCAccumulateColumnsInt4 is CSCAccumulateColumnsInt8 over the packed
// 4-bit layout: per event column, each stored byte is split into its two
// sign-extended nibbles and both land in the int32 accumulator in one
// iteration — the packed layout's natural 2×-register-blocked walk (columns
// start on an entry boundary only when the column offset is even, so the
// kernel peels a leading odd nibble first). Identical result to
// CSCAccumulateColumnsInt4Scalar. Returns the accumulate count.
func CSCAccumulateColumnsInt4(acc []int32, a *CSCInt4, cols []int32) int64 {
	if len(acc) != a.Rows {
		panic(fmt.Sprintf("sparse: CSCAccumulateColumnsInt4 acc length %d, want %d", len(acc), a.Rows))
	}
	var ops int64
	for _, q := range cols {
		lo, hi := a.ColPtr[q], a.ColPtr[q+1]
		ops += int64(hi - lo)
		p := lo
		if p < hi && p&1 == 1 { // leading odd nibble: high half of its byte
			acc[a.RowIdx[p]] += int32(int8(a.Packed[p>>1]) >> 4)
			p++
		}
		for ; p+1 < hi; p += 2 {
			b := a.Packed[p>>1]
			i0, i1 := a.RowIdx[p], a.RowIdx[p+1]
			acc[i0] += int32(int8(b<<4) >> 4)
			acc[i1] += int32(int8(b) >> 4)
		}
		if p < hi { // trailing even nibble: low half of its byte
			acc[a.RowIdx[p]] += int32(int8(a.Packed[p>>1]<<4) >> 4)
		}
	}
	return ops
}

// CSCAccumulateColumnsInt4Scalar is the scalar reference form of
// CSCAccumulateColumnsInt4: one Level decode and add per stored synapse.
// Kept exported as the pinned baseline for tests and the parallel-kernels
// benchmark.
func CSCAccumulateColumnsInt4Scalar(acc []int32, a *CSCInt4, cols []int32) int64 {
	if len(acc) != a.Rows {
		panic(fmt.Sprintf("sparse: CSCAccumulateColumnsInt4Scalar acc length %d, want %d", len(acc), a.Rows))
	}
	var ops int64
	for _, q := range cols {
		for p := a.ColPtr[q]; p < a.ColPtr[q+1]; p++ {
			acc[a.RowIdx[p]] += a.Level(p)
			ops++
		}
	}
	return ops
}

// CSCMatMulEventsInt4SerialInto is CSCMatMulEventsInt8SerialInto over the
// packed 4-bit layout, with the same register-blocked event loop.
func CSCMatMulEventsInt4SerialInto(dst []int32, a *CSCInt4, ev *Events, accumulate bool) {
	n := checkCSCMatMulEventsInt(len(dst), a.Rows, a.Cols, ev)
	if !accumulate {
		for i := range dst {
			dst[i] = 0
		}
	}
	for q := 0; q < ev.Rows; q++ {
		evRow := ev.ColIdx[ev.RowPtr[q]:ev.RowPtr[q+1]]
		if len(evRow) == 0 {
			continue
		}
		for p := a.ColPtr[q]; p < a.ColPtr[q+1]; p++ {
			v := a.Level(p)
			orow := dst[int(a.RowIdx[p])*n:]
			addEventsUnrolledInt32(orow[:n], v, evRow)
		}
	}
}

func checkCSCMatMulEventsInt(dstLen, rows, cols int, ev *Events) int {
	if ev.Rows != cols {
		panic(fmt.Sprintf("sparse: CSCMatMulEventsInt inner dims %d vs %d", cols, ev.Rows))
	}
	if dstLen != rows*ev.Cols {
		panic(fmt.Sprintf("sparse: CSCMatMulEventsInt dst length %d, want %d", dstLen, rows*ev.Cols))
	}
	return ev.Cols
}
