package sparse

import "fmt"

// Integer event kernels: the deployed-arithmetic half of the event-driven
// story. The float kernels in event.go make inference work scale with
// weightDensity × spikeRate; the kernels here additionally compute in the
// integer precision the Sec. III-D platforms actually ship (Loihi 8-bit,
// HICANN 4-bit) — per incoming spike, one signed-integer column accumulate
// into an int32 accumulator, mirroring CSCMatMulEventsSerialInto with the
// multiply dropped entirely (binary events × integer levels = adds). The
// accumulator only returns to float at the layer boundary, where a single
// per-channel requantization scale applies (see internal/quant.QCSR).

// CSCInt8 is a column-compressed weight matrix quantized to signed 8-bit
// levels: column q's stored rows are RowIdx[ColPtr[q]:ColPtr[q+1]],
// ascending, with levels aligned in Q. Values are levels, not weights —
// dequantize with the owning QCSR's per-row scale.
type CSCInt8 struct {
	Rows, Cols int
	// ColPtr has Cols+1 entries delimiting each column's span in RowIdx/Q.
	ColPtr []int32
	RowIdx []int32
	// Q holds the signed 8-bit quantized levels.
	Q []int8
}

// NNZ returns the number of stored synapses.
func (c *CSCInt8) NNZ() int { return len(c.RowIdx) }

// CSCAccumulateColumnsInt8 is the int8 event kernel: for every event column
// q in cols (the flat indices of one timestep's incoming spikes), it
// accumulates weight column q into the int32 accumulator —
// acc[RowIdx[p]] += Q[p] for each stored synapse p of the column. Integer
// accumulation is exact, so the order of events cannot change the result.
// It returns the number of accumulates performed (the SynOps of the call).
func CSCAccumulateColumnsInt8(acc []int32, a *CSCInt8, cols []int32) int64 {
	if len(acc) != a.Rows {
		panic(fmt.Sprintf("sparse: CSCAccumulateColumnsInt8 acc length %d, want %d", len(acc), a.Rows))
	}
	var ops int64
	for _, q := range cols {
		for p := a.ColPtr[q]; p < a.ColPtr[q+1]; p++ {
			acc[a.RowIdx[p]] += int32(a.Q[p])
			ops++
		}
	}
	return ops
}

// CSCMatMulEventsInt8SerialInto computes dst = A·B for A in int8 CSC form
// [m,k] and a binary B [k,n] given as its event pattern — the integer twin
// of CSCMatMulEventsSerialInto, with dst an int32 accumulator laid out
// row-major [m,n]. Multiplication by {0,1} spikes degenerates to integer
// accumulation of levels, which is exact at any summation order.
func CSCMatMulEventsInt8SerialInto(dst []int32, a *CSCInt8, ev *Events, accumulate bool) {
	n := checkCSCMatMulEventsInt(len(dst), a.Rows, a.Cols, ev)
	if !accumulate {
		for i := range dst {
			dst[i] = 0
		}
	}
	for q := 0; q < ev.Rows; q++ {
		evRow := ev.ColIdx[ev.RowPtr[q]:ev.RowPtr[q+1]]
		if len(evRow) == 0 {
			continue
		}
		for p := a.ColPtr[q]; p < a.ColPtr[q+1]; p++ {
			v := int32(a.Q[p])
			orow := dst[int(a.RowIdx[p])*n:]
			orow = orow[:n]
			for _, j := range evRow {
				orow[j] += v
			}
		}
	}
}

// CSCInt4 is CSCInt8 with the levels packed two per byte (low nibble =
// even entry, high nibble = odd entry, sign-extended on read) — the HICANN
// 4-bit deployment layout. The kernels unpack nibbles inline, so packed
// storage is also what is computed from.
type CSCInt4 struct {
	Rows, Cols int
	// ColPtr has Cols+1 entries delimiting each column's span in RowIdx.
	ColPtr []int32
	RowIdx []int32
	// Packed holds ⌈nnz/2⌉ bytes of two-per-byte signed 4-bit levels.
	Packed []byte
}

// NNZ returns the number of stored synapses.
func (c *CSCInt4) NNZ() int { return len(c.RowIdx) }

// Level returns the sign-extended 4-bit level of stored entry p.
func (c *CSCInt4) Level(p int32) int32 {
	b := c.Packed[p>>1]
	if p&1 == 0 {
		return int32(int8(b<<4) >> 4)
	}
	return int32(int8(b) >> 4)
}

// CSCAccumulateColumnsInt4 is CSCAccumulateColumnsInt8 over the packed
// 4-bit layout: per event column, each stored nibble is sign-extended and
// added into the int32 accumulator. Returns the accumulate count.
func CSCAccumulateColumnsInt4(acc []int32, a *CSCInt4, cols []int32) int64 {
	if len(acc) != a.Rows {
		panic(fmt.Sprintf("sparse: CSCAccumulateColumnsInt4 acc length %d, want %d", len(acc), a.Rows))
	}
	var ops int64
	for _, q := range cols {
		for p := a.ColPtr[q]; p < a.ColPtr[q+1]; p++ {
			acc[a.RowIdx[p]] += a.Level(p)
			ops++
		}
	}
	return ops
}

// CSCMatMulEventsInt4SerialInto is CSCMatMulEventsInt8SerialInto over the
// packed 4-bit layout.
func CSCMatMulEventsInt4SerialInto(dst []int32, a *CSCInt4, ev *Events, accumulate bool) {
	n := checkCSCMatMulEventsInt(len(dst), a.Rows, a.Cols, ev)
	if !accumulate {
		for i := range dst {
			dst[i] = 0
		}
	}
	for q := 0; q < ev.Rows; q++ {
		evRow := ev.ColIdx[ev.RowPtr[q]:ev.RowPtr[q+1]]
		if len(evRow) == 0 {
			continue
		}
		for p := a.ColPtr[q]; p < a.ColPtr[q+1]; p++ {
			v := a.Level(p)
			orow := dst[int(a.RowIdx[p])*n:]
			orow = orow[:n]
			for _, j := range evRow {
				orow[j] += v
			}
		}
	}
}

func checkCSCMatMulEventsInt(dstLen, rows, cols int, ev *Events) int {
	if ev.Rows != cols {
		panic(fmt.Sprintf("sparse: CSCMatMulEventsInt inner dims %d vs %d", cols, ev.Rows))
	}
	if dstLen != rows*ev.Cols {
		panic(fmt.Sprintf("sparse: CSCMatMulEventsInt dst length %d, want %d", dstLen, rows*ev.Cols))
	}
	return ev.Cols
}
