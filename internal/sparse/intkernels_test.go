package sparse

import (
	"testing"

	"ndsnn/internal/rng"
	"ndsnn/internal/tensor"
)

// randomIntCSC builds matching float CSC / int8 CSC / packed int4 CSC views
// of the same random integer-valued sparse matrix (levels in [-7,7] so all
// three precisions represent it exactly).
func randomIntCSC(rows, cols int, density float64, r *rng.RNG) (*CSC, *CSCInt8, *CSCInt4) {
	w := tensor.New(rows, cols)
	mask := tensor.New(rows, cols)
	for i := range w.Data {
		if r.Float64() < density {
			l := int8(r.Float64()*15) - 7
			if l == 0 {
				l = 1
			}
			w.Data[i] = float32(l)
			mask.Data[i] = 1
		}
	}
	csc := NewCSCFromCSR(EncodeCSRWithMask(w, mask))
	i8 := &CSCInt8{
		Rows: csc.Rows, Cols: csc.Cols,
		ColPtr: csc.ColPtr, RowIdx: csc.RowIdx,
		Q: make([]int8, csc.NNZ()),
	}
	for p, v := range csc.Val {
		i8.Q[p] = int8(v)
	}
	packed := make([]byte, (len(i8.Q)+1)/2)
	for p, v := range i8.Q {
		nib := byte(v) & 0xF
		if p%2 == 0 {
			packed[p/2] = nib
		} else {
			packed[p/2] |= nib << 4
		}
	}
	i4 := &CSCInt4{Rows: csc.Rows, Cols: csc.Cols, ColPtr: csc.ColPtr, RowIdx: csc.RowIdx, Packed: packed}
	return csc, i8, i4
}

func randomEvents(rows, cols int, rate float64, r *rng.RNG) (*Events, *tensor.Tensor) {
	b := tensor.New(rows, cols)
	for i := range b.Data {
		if r.Float64() < rate {
			b.Data[i] = 1
		}
	}
	ev, ok := EncodeEvents(b)
	if !ok {
		panic("sparse: test raster not binary")
	}
	return ev, b
}

func TestCSCAccumulateColumnsIntMatchesFloatKernel(t *testing.T) {
	r := rng.New(41)
	for _, rate := range []float64{0, 0.1, 0.5, 1} {
		csc, i8, i4 := randomIntCSC(17, 29, 0.4, r)
		ev, _ := randomEvents(29, 1, rate, r)
		// The float reference: one event column per active row of ev.
		var cols []int32
		for q := 0; q < ev.Rows; q++ {
			if ev.RowNNZ(q) > 0 {
				cols = append(cols, int32(q))
			}
		}
		want := tensor.New(17, 1)
		CSCMatMulEventsSerialInto(want, csc, ev, false)

		acc8 := make([]int32, 17)
		ops8 := CSCAccumulateColumnsInt8(acc8, i8, cols)
		acc4 := make([]int32, 17)
		ops4 := CSCAccumulateColumnsInt4(acc4, i4, cols)
		if ops8 != ops4 {
			t.Fatalf("rate=%v: int8 ops %d != int4 ops %d", rate, ops8, ops4)
		}
		var wantOps int64
		for _, q := range cols {
			wantOps += int64(i8.ColPtr[q+1] - i8.ColPtr[q])
		}
		if ops8 != wantOps {
			t.Fatalf("rate=%v: reported ops %d, want %d", rate, ops8, wantOps)
		}
		for i := range acc8 {
			if float32(acc8[i]) != want.Data[i] || acc4[i] != acc8[i] {
				t.Fatalf("rate=%v row %d: int8=%d int4=%d float=%v", rate, i, acc8[i], acc4[i], want.Data[i])
			}
		}
	}
}

func TestCSCMatMulEventsIntMatchesFloatKernel(t *testing.T) {
	r := rng.New(43)
	for _, rate := range []float64{0, 0.05, 0.3, 1} {
		csc, i8, i4 := randomIntCSC(23, 31, 0.35, r)
		ev, _ := randomEvents(31, 7, rate, r)
		want := tensor.New(23, 7)
		CSCMatMulEventsSerialInto(want, csc, ev, false)
		got8 := make([]int32, 23*7)
		CSCMatMulEventsInt8SerialInto(got8, i8, ev, false)
		got4 := make([]int32, 23*7)
		CSCMatMulEventsInt4SerialInto(got4, i4, ev, false)
		for i := range got8 {
			if float32(got8[i]) != want.Data[i] || got4[i] != got8[i] {
				t.Fatalf("rate=%v entry %d: int8=%d int4=%d float=%v", rate, i, got8[i], got4[i], want.Data[i])
			}
		}
		// Accumulate mode adds on top instead of overwriting.
		CSCMatMulEventsInt8SerialInto(got8, i8, ev, true)
		CSCMatMulEventsInt4SerialInto(got4, i4, ev, true)
		for i := range got8 {
			if got8[i] != 2*int32(want.Data[i]) || got4[i] != got8[i] {
				t.Fatalf("accumulate rate=%v entry %d: int8=%d int4=%d want %v", rate, i, got8[i], got4[i], 2*int32(want.Data[i]))
			}
		}
	}
}

func TestCSCInt4LevelSignExtension(t *testing.T) {
	levels := []int8{-7, -1, 0, 1, 7, 3, -4}
	packed := make([]byte, (len(levels)+1)/2)
	for p, v := range levels {
		nib := byte(v) & 0xF
		if p%2 == 0 {
			packed[p/2] = nib
		} else {
			packed[p/2] |= nib << 4
		}
	}
	c := &CSCInt4{Rows: 1, Cols: 1, RowIdx: make([]int32, len(levels)), Packed: packed}
	for p, v := range levels {
		if got := c.Level(int32(p)); got != int32(v) {
			t.Fatalf("entry %d: Level=%d, want %d", p, got, v)
		}
	}
}
