package sparse

import (
	"math"
	"sort"

	"ndsnn/internal/rng"
	"ndsnn/internal/tensor"
)

// RandomMask returns a 0/1 tensor with exactly round(density·size) ones
// placed uniformly at random — the sparse-from-scratch initialization used
// by SET, RigL and NDSNN.
func RandomMask(shape []int, density float64, r *rng.RNG) *tensor.Tensor {
	m := tensor.New(shape...)
	k := CountForDensity(m.Size(), density)
	for _, i := range r.Choice(m.Size(), k) {
		m.Data[i] = 1
	}
	return m
}

// CountForDensity returns round(density·n) clamped to [0, n].
func CountForDensity(n int, density float64) int {
	k := int(math.Round(density * float64(n)))
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	return k
}

// scoredIndex pairs an element index with its selection key.
type scoredIndex struct {
	idx int
	key float32
}

// selectSmallest returns the indices of the k smallest keys among the
// candidates, breaking ties by index so selection is deterministic.
func selectSmallest(cands []scoredIndex, k int) []int {
	if k >= len(cands) {
		out := make([]int, len(cands))
		for i, c := range cands {
			out[i] = c.idx
		}
		return out
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].key != cands[j].key {
			return cands[i].key < cands[j].key
		}
		return cands[i].idx < cands[j].idx
	})
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = cands[i].idx
	}
	return out
}

func abs32(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}

// BottomKActive returns the indices of the k active (mask=1) weights with
// the smallest absolute magnitude — the paper's "drop" set: the smallest
// positive and largest negative weights, i.e. those closest to zero.
func BottomKActive(w, mask *tensor.Tensor, k int) []int {
	if k <= 0 {
		return nil
	}
	cands := make([]scoredIndex, 0, mask.Size())
	for i, m := range mask.Data {
		if m != 0 {
			cands = append(cands, scoredIndex{i, abs32(w.Data[i])})
		}
	}
	return selectSmallest(cands, k)
}

// TopKInactive returns the indices of the k inactive (mask=0) positions with
// the largest absolute gradient — the RigL/NDSNN "grow" criterion.
func TopKInactive(grad, mask *tensor.Tensor, k int) []int {
	if k <= 0 {
		return nil
	}
	cands := make([]scoredIndex, 0, mask.Size())
	for i, m := range mask.Data {
		if m == 0 {
			cands = append(cands, scoredIndex{i, -abs32(grad.Data[i])})
		}
	}
	return selectSmallest(cands, k)
}

// RandomInactive returns k inactive positions chosen uniformly at random —
// the SET grow criterion. If fewer than k positions are inactive, all of
// them are returned.
func RandomInactive(mask *tensor.Tensor, k int, r *rng.RNG) []int {
	if k <= 0 {
		return nil
	}
	var zeros []int
	for i, m := range mask.Data {
		if m == 0 {
			zeros = append(zeros, i)
		}
	}
	if k >= len(zeros) {
		return zeros
	}
	perm := r.Perm(len(zeros))
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = zeros[perm[i]]
	}
	return out
}

// TopKMagnitude returns the indices of the k largest-|w| elements over the
// whole tensor — the keep-set of magnitude pruning (LTH, ADMM projection).
func TopKMagnitude(w *tensor.Tensor, k int) []int {
	if k <= 0 {
		return nil
	}
	cands := make([]scoredIndex, w.Size())
	for i, v := range w.Data {
		cands[i] = scoredIndex{i, -abs32(v)}
	}
	return selectSmallest(cands, k)
}

// MaskFromKeep returns a 0/1 tensor of the given shape with ones at the
// keep indices.
func MaskFromKeep(shape []int, keep []int) *tensor.Tensor {
	m := tensor.New(shape...)
	for _, i := range keep {
		m.Data[i] = 1
	}
	return m
}
