package sparse

// Memory-footprint model from the paper's Section III-D.
//
// During training, weights and gradients are FP32; a sparse model with
// sparsity θ stores (1-θ)N weights, t·(1-θ)N gradients across t timesteps,
// and (1-θ)N column indices plus per-layer row pointers for the CSR
// topology. For inference the weight precision b_w is platform-specific
// (Loihi 8 b, HICANN 4 b, FPGA designs 4–16 b).

// Platform describes a neuromorphic deployment target's weight precision.
type Platform struct {
	Name string
	// WeightBits is the synaptic weight precision in bits.
	WeightBits int
}

// Platforms lists the deployment targets cited in Section III-D.
var Platforms = []Platform{
	{Name: "Loihi", WeightBits: 8},
	{Name: "HICANN", WeightBits: 4},
	{Name: "FPGA-SyncNN", WeightBits: 16},
}

// DefaultIndexBits is the CSR index width b_idx used throughout the paper's
// analysis (16-bit column indices cover every layer of VGG-16/ResNet-19).
const DefaultIndexBits = 16

// TrainingBits is the FP32 precision used for weights and gradients during
// training, per Section III-D.
const TrainingBits = 32

// TrainingFootprintBits returns the paper's approximate training memory
//
//	(1-θ)·((1+t)·N·b_w + N·b_idx)
//
// for a model with N total weights at sparsity θ trained over t timesteps
// with b_w-bit weights/gradients and b_idx-bit sparse indices.
func TrainingFootprintBits(n int, theta float64, timesteps, bw, bidx int) float64 {
	return (1 - theta) * (float64(1+timesteps)*float64(n)*float64(bw) + float64(n)*float64(bidx))
}

// TrainingFootprintExactBits adds the per-layer row-pointer term
// Σ_l (F_l+1)·b_idx that the approximation drops (F_l = filters in layer l).
func TrainingFootprintExactBits(n int, filtersPerLayer []int, theta float64, timesteps, bw, bidx int) float64 {
	total := TrainingFootprintBits(n, theta, timesteps, bw, bidx)
	for _, f := range filtersPerLayer {
		total += float64(f+1) * float64(bidx)
	}
	return total
}

// InferenceFootprintBits returns the deployed-model memory
//
//	(1-θ)·N·(b_w + b_idx)
//
// for platform weight precision b_w.
func InferenceFootprintBits(n int, theta float64, bw, bidx int) float64 {
	return (1 - theta) * float64(n) * float64(bw+bidx)
}

// DenseFootprintBits returns the dense-model memory N·b_w (no indices).
func DenseFootprintBits(n, bw int) float64 { return float64(n) * float64(bw) }

// BitsToMiB converts bits to mebibytes.
func BitsToMiB(bits float64) float64 { return bits / 8 / 1024 / 1024 }
